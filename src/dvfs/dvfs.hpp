#pragma once
// Dynamic voltage and frequency scaling (paper §4, ref [24]).
//
// "The computation energy is usually a strong function of the CPU clock
//  frequency of the multimedia system, which may be varied by using methods
//  such as dynamic voltage and frequency scaling."
//
// Power model: P(f, V) = Ceff * V^2 * f + P_leak(V).  The default operating
// points mimic an XScale-class embedded CPU (the testbed of [28]) — the
// substitution documented in DESIGN.md §2.

#include <cstddef>
#include <span>
#include <vector>

namespace holms::dvfs {

/// One voltage/frequency pair the processor can run at.
struct OperatingPoint {
  double frequency_hz = 0.0;
  double voltage = 0.0;
};

/// Switched-capacitance power model shared by all DVFS users.
struct PowerModel {
  double ceff_farad = 1.2e-9;       // effective switched capacitance
  double leak_per_volt = 5e-3;      // P_leak = leak_per_volt * V (watts)

  double dynamic_power(const OperatingPoint& op) const {
    return ceff_farad * op.voltage * op.voltage * op.frequency_hz;
  }
  double total_power(const OperatingPoint& op) const {
    return dynamic_power(op) + leak_per_volt * op.voltage;
  }
  /// Energy to execute `cycles` at the given point (active energy only).
  double energy_for_cycles(double cycles, const OperatingPoint& op) const {
    return total_power(op) * cycles / op.frequency_hz;
  }
};

/// XScale-like operating points: 150..1000 MHz, 0.75..1.5 V.
std::vector<OperatingPoint> xscale_points();

/// A DVFS-capable processor: a sorted ladder of operating points plus a
/// power model, with energy/time accounting helpers.
class Processor {
 public:
  Processor(std::vector<OperatingPoint> points, PowerModel model);

  std::size_t num_points() const { return points_.size(); }
  const OperatingPoint& point(std::size_t i) const { return points_.at(i); }
  const OperatingPoint& current() const { return points_[level_]; }
  std::size_t level() const { return level_; }
  void set_level(std::size_t level);
  const PowerModel& model() const { return model_; }

  double time_for_cycles(double cycles) const {
    return cycles / current().frequency_hz;
  }
  double energy_for_cycles(double cycles) const {
    return model_.energy_for_cycles(cycles, current());
  }

  /// Lowest-power level that still finishes `cycles` within `deadline`
  /// seconds; returns num_points() if even the fastest level misses.
  std::size_t min_level_for(double cycles, double deadline) const;

  /// Energy saved by running `cycles` with deadline `deadline` at the minimal
  /// feasible level instead of flat-out (the canonical DVS win).
  double slack_energy_saving(double cycles, double deadline) const;

 private:
  std::vector<OperatingPoint> points_;  // ascending frequency
  PowerModel model_;
  std::size_t level_ = 0;
};

/// Feedback governor driving utilization toward a target (the client-side
/// mechanism of energy-aware FGS streaming, §4.1): each control period it
/// observes the achieved utilization (busy / period) and steps the ladder.
class LoadTrackingGovernor {
 public:
  LoadTrackingGovernor(Processor& cpu, double target_utilization = 0.9,
                       double deadband = 0.08);

  /// Reports one control period's utilization; adjusts the level and returns
  /// the (possibly new) level.
  std::size_t observe(double utilization);

  double target() const { return target_; }

 private:
  Processor& cpu_;
  double target_;
  double deadband_;
};

}  // namespace holms::dvfs
