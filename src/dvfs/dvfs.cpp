#include "dvfs/dvfs.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::dvfs {

std::vector<OperatingPoint> xscale_points() {
  return {
      {150e6, 0.75}, {250e6, 0.85}, {400e6, 1.0},
      {600e6, 1.15}, {800e6, 1.3},  {1000e6, 1.5},
  };
}

Processor::Processor(std::vector<OperatingPoint> points, PowerModel model)
    : points_(std::move(points)), model_(model) {
  if (points_.empty()) {
    throw holms::InvalidArgument("Processor: need >= 1 operating point");
  }
  std::sort(points_.begin(), points_.end(),
            [](const OperatingPoint& a, const OperatingPoint& b) {
              return a.frequency_hz < b.frequency_hz;
            });
  for (const auto& p : points_) {
    if (!(p.frequency_hz > 0.0) || !(p.voltage > 0.0)) {
      throw holms::InvalidArgument("Processor: invalid operating point");
    }
  }
  level_ = points_.size() - 1;  // boot at full speed
}

void Processor::set_level(std::size_t level) {
  if (level >= points_.size()) {
    throw holms::OutOfRange("Processor::set_level");
  }
  level_ = level;
}

std::size_t Processor::min_level_for(double cycles, double deadline) const {
  if (!(deadline > 0.0)) return points_.size();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (cycles / points_[i].frequency_hz <= deadline) return i;
  }
  return points_.size();
}

double Processor::slack_energy_saving(double cycles, double deadline) const {
  const std::size_t lvl = min_level_for(cycles, deadline);
  const double e_max =
      model_.energy_for_cycles(cycles, points_.back());
  if (lvl >= points_.size()) return 0.0;  // infeasible: no saving possible
  const double e_min = model_.energy_for_cycles(cycles, points_[lvl]);
  return e_max - e_min;
}

LoadTrackingGovernor::LoadTrackingGovernor(Processor& cpu,
                                           double target_utilization,
                                           double deadband)
    : cpu_(cpu), target_(target_utilization), deadband_(deadband) {
  if (!(target_utilization > 0.0 && target_utilization <= 1.0)) {
    throw holms::InvalidArgument("LoadTrackingGovernor: bad target");
  }
}

std::size_t LoadTrackingGovernor::observe(double utilization) {
  const std::size_t lvl = cpu_.level();
  if (utilization > target_ + deadband_ && lvl + 1 < cpu_.num_points()) {
    cpu_.set_level(lvl + 1);
  } else if (utilization < target_ - deadband_ && lvl > 0) {
    // Only step down if the lower level could still carry the observed load:
    // load scales with f_current / f_lower.
    const double scaled = utilization * cpu_.point(lvl).frequency_hz /
                          cpu_.point(lvl - 1).frequency_hz;
    if (scaled <= 1.0) cpu_.set_level(lvl - 1);
  }
  return cpu_.level();
}

}  // namespace holms::dvfs
