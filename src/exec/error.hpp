#pragma once
// Typed exception hierarchy for every throw that crosses a public HolMS API.
//
// Each class below derives from the matching <stdexcept> type, so existing
// callers (and tests) that catch std::invalid_argument / std::runtime_error /
// std::out_of_range keep working unchanged — the hierarchy adds a common
// holms::Error tag base that callers can catch to mean "any HolMS-originated
// failure" without also swallowing allocator or iostream exceptions.
//
// The contract (enforced by holms_lint rule C002, DESIGN.md §5f): library
// code under src/ never throws a bare std::* exception; it throws one of
// these.  Precondition violations use InvalidArgument, index/key misses use
// OutOfRange, and numerical / environmental failures use RuntimeError.

#include <stdexcept>
#include <string>

namespace holms {

/// Tag base for every exception HolMS throws.  Not constructible on its own;
/// catch `const holms::Error&` to handle any library failure, then rethrow or
/// call what() via the std::exception side of the concrete type.
class Error {
 public:
  virtual ~Error() = default;

 protected:
  Error() = default;
};

/// A caller-supplied value violated a documented precondition (bad rate,
/// empty vector, inconsistent sizes, ...).  Also the type Params/Options
/// validate() members throw.
class InvalidArgument : public std::invalid_argument, public Error {
 public:
  using std::invalid_argument::invalid_argument;
};

/// An index, id, or key was outside the valid domain of a container or model.
class OutOfRange : public std::out_of_range, public Error {
 public:
  using std::out_of_range::out_of_range;
};

/// The computation itself failed: singular system, non-convergence, corrupt
/// trace file — conditions only detectable while running.
class RuntimeError : public std::runtime_error, public Error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace holms
