// Scalar reference implementation of the holms::exec::simd kernels: 8
// explicit f64 chains and the canonical combine tree from simd.hpp, so this
// TU defines the bit pattern every vector ISA must reproduce.  Compiled with
// -ffp-contract=off -fno-tree-vectorize (see exec/CMakeLists.txt) so the
// compiler neither fuses FMAs nor SLP-vectorizes the lane chains — the
// reference stays honestly scalar.

#include "exec/simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace holms::exec::simd::detail {
namespace {

struct Mask {
  bool m[8];
};

struct Pack {
  double l[8];

  static Pack zero() { return broadcast(0.0); }
  static Pack broadcast(double v) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = v;
    return p;
  }
  static Pack load(const double* src) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = src[k];
    return p;
  }
  static Pack gather(const double* x, const std::uint32_t* idx) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = x[idx[k]];
    return p;
  }
  void store(double* dst) const {
    for (int k = 0; k < 8; ++k) dst[k] = l[k];
  }

  friend Pack operator+(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = a.l[k] + b.l[k];
    return p;
  }
  friend Pack operator-(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = a.l[k] - b.l[k];
    return p;
  }
  friend Pack operator*(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = a.l[k] * b.l[k];
    return p;
  }
  friend Pack operator/(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = a.l[k] / b.l[k];
    return p;
  }

  // minpd/maxpd convention: second operand on ties.
  static Pack vmin(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = a.l[k] < b.l[k] ? a.l[k] : b.l[k];
    return p;
  }
  static Pack vmax(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = a.l[k] > b.l[k] ? a.l[k] : b.l[k];
    return p;
  }
  static Pack vabs(Pack a) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = std::fabs(a.l[k]);
    return p;
  }
  static Mask gt(Pack a, Pack b) {
    Mask m;
    for (int k = 0; k < 8; ++k) m.m[k] = a.l[k] > b.l[k];
    return m;
  }
  static Mask ge(Pack a, Pack b) {
    Mask m;
    for (int k = 0; k < 8; ++k) m.m[k] = a.l[k] >= b.l[k];
    return m;
  }
  static Pack blend(Mask m, Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 8; ++k) p.l[k] = m.m[k] ? a.l[k] : b.l[k];
    return p;
  }

  double reduce() const {
    return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
  }
};

#include "exec/simd_kernels.inc"

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels k = make_table(Isa::kScalar, "scalar");
  return k;
}

}  // namespace holms::exec::simd::detail
