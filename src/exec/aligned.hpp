#pragma once
// 64-byte-aligned storage helpers for the hot-path kernels (DESIGN.md §5i).
//
// The SIMD layer (exec/simd.hpp) loads packs with unaligned instructions, so
// alignment is never required for correctness — but starting every hot array
// on its own cache line keeps pack loads from straddling lines and makes the
// slab event pool's 64-byte slots line-exact.  Two shapes are provided:
//
//   aligned_vector<T>        drop-in std::vector with 64-byte-aligned data()
//   make_aligned_array<T>(n) fixed-size array of trivially-destructible T,
//                            value-initialized, freed with the matching
//                            aligned operator delete

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace holms::exec {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator backing aligned_vector: every allocation starts on a
/// cache-line boundary.  Stateless, so all instances compare equal and
/// vectors swap/move freely.
template <class T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(static_cast<void*>(p),
                      std::align_val_t{kCacheLineBytes});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned.  Used for the CsrMatrix
/// value/column arrays and the SIMD scratch buffers.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

namespace detail {
template <class T>
struct AlignedArrayDeleter {
  void operator()(T* p) const noexcept {
    // Destruction is a no-op by the static_assert in make_aligned_array;
    // only the aligned storage needs releasing.
    ::operator delete(static_cast<void*>(p),
                      std::align_val_t{kCacheLineBytes});
  }
};
}  // namespace detail

template <class T>
using AlignedArray = std::unique_ptr<T[], detail::AlignedArrayDeleter<T>>;

/// Allocates a 64-byte-aligned, value-initialized array of `n` elements.
/// Restricted to trivially-destructible T so the deleter can skip element
/// destruction (there is no array cookie to recover the length from).
template <class T>
AlignedArray<T> make_aligned_array(std::size_t n) {
  static_assert(std::is_trivially_destructible_v<T>,
                "make_aligned_array requires trivially-destructible T");
  T* p = static_cast<T*>(::operator new(
      n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
  return AlignedArray<T>(p);
}

}  // namespace holms::exec
