// NEON (aarch64) implementation of the holms::exec::simd kernels.  One Pack
// is four float64x2_t registers v[0]={l0,l1} .. v[3]={l6,l7}; reduce() adds
// v[0]+v[2] and v[1]+v[3] (giving {l0+l4, l1+l5} and {l2+l6, l3+l7}), adds
// those, then the two remaining lanes — the canonical
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) tree.  min/max are built from
// compare+bsl rather than vminq/vmaxq so the minpd/maxpd tie convention is
// reproduced exactly.  Compiled with -ffp-contract=off; only built on
// aarch64 (see exec/CMakeLists.txt).

#include "exec/simd.hpp"

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace holms::exec::simd::detail {
namespace {

struct Mask {
  uint64x2_t v[4];
};

struct Pack {
  float64x2_t v[4];

  static Pack zero() { return broadcast(0.0); }
  static Pack broadcast(double d) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vdupq_n_f64(d);
    return p;
  }
  static Pack load(const double* src) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vld1q_f64(src + 2 * k);
    return p;
  }
  static Pack gather(const double* x, const std::uint32_t* idx) {
    const double t[8] = {x[idx[0]], x[idx[1]], x[idx[2]], x[idx[3]],
                         x[idx[4]], x[idx[5]], x[idx[6]], x[idx[7]]};
    return load(t);
  }
  void store(double* dst) const {
    for (int k = 0; k < 4; ++k) vst1q_f64(dst + 2 * k, v[k]);
  }

  friend Pack operator+(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vaddq_f64(a.v[k], b.v[k]);
    return p;
  }
  friend Pack operator-(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vsubq_f64(a.v[k], b.v[k]);
    return p;
  }
  friend Pack operator*(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vmulq_f64(a.v[k], b.v[k]);
    return p;
  }
  friend Pack operator/(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vdivq_f64(a.v[k], b.v[k]);
    return p;
  }

  // minpd/maxpd convention (second operand on ties/NaN), via compare+bsl —
  // NOT vminq_f64/vmaxq_f64, whose IEEE minNum semantics differ on ±0/NaN.
  static Pack vmin(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) {
      p.v[k] = vbslq_f64(vcltq_f64(a.v[k], b.v[k]), a.v[k], b.v[k]);
    }
    return p;
  }
  static Pack vmax(Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) {
      p.v[k] = vbslq_f64(vcgtq_f64(a.v[k], b.v[k]), a.v[k], b.v[k]);
    }
    return p;
  }
  static Pack vabs(Pack a) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vabsq_f64(a.v[k]);
    return p;
  }
  static Mask gt(Pack a, Pack b) {
    Mask m;
    for (int k = 0; k < 4; ++k) m.v[k] = vcgtq_f64(a.v[k], b.v[k]);
    return m;
  }
  static Mask ge(Pack a, Pack b) {
    Mask m;
    for (int k = 0; k < 4; ++k) m.v[k] = vcgeq_f64(a.v[k], b.v[k]);
    return m;
  }
  static Pack blend(Mask m, Pack a, Pack b) {
    Pack p;
    for (int k = 0; k < 4; ++k) p.v[k] = vbslq_f64(m.v[k], a.v[k], b.v[k]);
    return p;
  }

  double reduce() const {
    const float64x2_t s02 = vaddq_f64(v[0], v[2]);  // {l0+l4, l1+l5}
    const float64x2_t s13 = vaddq_f64(v[1], v[3]);  // {l2+l6, l3+l7}
    const float64x2_t t = vaddq_f64(s02, s13);
    return vgetq_lane_f64(t, 0) + vgetq_lane_f64(t, 1);
  }
};

#include "exec/simd_kernels.inc"

}  // namespace

const Kernels& neon_kernels() {
  static const Kernels k = make_table(Isa::kNeon, "neon");
  return k;
}

}  // namespace holms::exec::simd::detail
