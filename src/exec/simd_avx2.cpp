// AVX2 implementation of the holms::exec::simd kernels.  One Pack is two
// __m256d accumulators (lanes 0-3 and 4-7); reduce() adds them, folds the
// register halves, then the final pair — which is precisely the canonical
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) tree the scalar reference emulates.
// Compiled with -mavx2 -ffp-contract=off; only built on x86_64 (see
// exec/CMakeLists.txt).

#include "exec/simd.hpp"

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace holms::exec::simd::detail {
namespace {

struct Mask {
  __m256d a, b;
};

struct Pack {
  __m256d a, b;  // lanes 0-3, lanes 4-7

  static Pack zero() {
    return {_mm256_setzero_pd(), _mm256_setzero_pd()};
  }
  static Pack broadcast(double v) {
    return {_mm256_set1_pd(v), _mm256_set1_pd(v)};
  }
  static Pack load(const double* src) {
    return {_mm256_loadu_pd(src), _mm256_loadu_pd(src + 4)};
  }
  static Pack gather(const double* x, const std::uint32_t* idx) {
    // set_pd outruns vgatherdpd on these short rows and keeps the port
    // pressure off the load units; operands are listed high lane first.
    return {_mm256_set_pd(x[idx[3]], x[idx[2]], x[idx[1]], x[idx[0]]),
            _mm256_set_pd(x[idx[7]], x[idx[6]], x[idx[5]], x[idx[4]])};
  }
  void store(double* dst) const {
    _mm256_storeu_pd(dst, a);
    _mm256_storeu_pd(dst + 4, b);
  }

  friend Pack operator+(Pack x, Pack y) {
    return {_mm256_add_pd(x.a, y.a), _mm256_add_pd(x.b, y.b)};
  }
  friend Pack operator-(Pack x, Pack y) {
    return {_mm256_sub_pd(x.a, y.a), _mm256_sub_pd(x.b, y.b)};
  }
  friend Pack operator*(Pack x, Pack y) {
    return {_mm256_mul_pd(x.a, y.a), _mm256_mul_pd(x.b, y.b)};
  }
  friend Pack operator/(Pack x, Pack y) {
    return {_mm256_div_pd(x.a, y.a), _mm256_div_pd(x.b, y.b)};
  }

  static Pack vmin(Pack x, Pack y) {
    return {_mm256_min_pd(x.a, y.a), _mm256_min_pd(x.b, y.b)};
  }
  static Pack vmax(Pack x, Pack y) {
    return {_mm256_max_pd(x.a, y.a), _mm256_max_pd(x.b, y.b)};
  }
  static Pack vabs(Pack x) {
    const __m256d sign = _mm256_set1_pd(-0.0);
    return {_mm256_andnot_pd(sign, x.a), _mm256_andnot_pd(sign, x.b)};
  }
  static Mask gt(Pack x, Pack y) {
    return {_mm256_cmp_pd(x.a, y.a, _CMP_GT_OQ),
            _mm256_cmp_pd(x.b, y.b, _CMP_GT_OQ)};
  }
  static Mask ge(Pack x, Pack y) {
    return {_mm256_cmp_pd(x.a, y.a, _CMP_GE_OQ),
            _mm256_cmp_pd(x.b, y.b, _CMP_GE_OQ)};
  }
  static Pack blend(Mask m, Pack x, Pack y) {
    return {_mm256_blendv_pd(y.a, x.a, m.a),
            _mm256_blendv_pd(y.b, x.b, m.b)};
  }

  double reduce() const {
    const __m256d s = _mm256_add_pd(a, b);  // (l0+l4, l1+l5, l2+l6, l3+l7)
    const __m128d t = _mm_add_pd(_mm256_castpd256_pd128(s),
                                 _mm256_extractf128_pd(s, 1));
    return _mm_cvtsd_f64(_mm_add_sd(t, _mm_unpackhi_pd(t, t)));
  }
};

#include "exec/simd_kernels.inc"

}  // namespace

const Kernels& avx2_kernels() {
  static const Kernels k = make_table(Isa::kAvx2, "avx2");
  return k;
}

}  // namespace holms::exec::simd::detail
