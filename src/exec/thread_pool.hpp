#pragma once
// Deterministic parallel execution for the design-space explorer.
//
// The pool is deliberately work-stealing-free: a parallel loop hands out
// indices from a single atomic counter, every task writes only to its own
// result slot, and any randomness a task needs comes from a counter-based
// stream derived from (caller seed, index) — see exec/rng_stream.hpp.  The
// *schedule* is nondeterministic (whichever worker grabs index i first) but
// the *result* is a pure function of the inputs, so parallel runs are
// bitwise-identical to serial ones independent of thread count.
//
// `threads == 0` means "use the hardware", `threads == 1` is the legacy
// serial path (the loop body runs inline on the caller, no pool, no atomics
// beyond the ones the body itself uses).

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace holms::exec {

/// Resolves a `threads` knob: 0 -> hardware concurrency (at least 1).
inline std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Thread count requested by the HOLMS_THREADS environment variable, or
/// `fallback` when the variable is unset / empty / not a positive integer.
/// The CI matrix runs the whole test suite under HOLMS_THREADS=1 and =4;
/// tests fold this value into their thread-count sweeps so both runs
/// exercise genuinely different pool sizes (results must not change —
/// every parallel kernel here is thread-count invariant by construction).
std::size_t env_threads(std::size_t fallback = 1);

/// Fixed-size pool of persistent workers executing index-parallel loops.
/// One loop at a time: parallel_for blocks until every index has run (the
/// caller participates as a worker, so a pool of size N uses N-1 threads).
/// Exceptions thrown by the body are captured and the first one rethrown on
/// the caller after the loop completes.
class ThreadPool {
 public:
  /// `threads` is resolved via resolve_threads(); a pool of size <= 1 spawns
  /// no workers and runs loops inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return size_; }

  /// Runs body(i) for every i in [0, n), distributing indices across the
  /// pool.  Safe to call repeatedly; not safe to call concurrently from two
  /// threads on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null for the serial (size <= 1) pool
  std::size_t size_ = 1;
};

/// Convenience: runs body(i) for i in [0, n) on `pool`, or serially when
/// `pool` is null.  The explorer passes null for the legacy serial path.
inline void parallel_for_each(ThreadPool* pool, std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->parallel_for(n, body);
}

/// Maps fn over [0, n) into a vector, in parallel; result order is by index
/// regardless of execution order.  T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallel_transform(ThreadPool* pool, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for_each(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace holms::exec
