#include "exec/metrics.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace holms::exec {

std::atomic<MetricsRegistry*> MetricsRegistry::global_{nullptr};

namespace {

// Atomic min/max for doubles via compare-exchange.
template <typename Cmp>
void atomic_extreme(std::atomic<double>& slot, double x, Cmp better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (better(x, cur) &&
         !slot.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double x) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t now_ns() {
  // Metrics wall-time is allowlisted by design: ScopedTimer histograms are
  // observability output only and never feed back into simulation state, so
  // the reproducibility guarantee (DESIGN.md §5c) is unaffected.
  // HOLMS_LINT_ALLOW(D002): observability-only wall clock, never model state
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
          .count());
}

}  // namespace

void Histogram::observe(double x) {
  // Scale so 1 ns lands near bucket 0 and 1 s near bucket 30; clamp the
  // rest.  The exact bucket bounds matter less than sum/count/min/max.
  const double scaled = std::abs(x) * 1e9;
  std::size_t b = 0;
  if (scaled >= 1.0) {
    b = static_cast<std::size_t>(std::ilogb(scaled)) + 1;
    if (b >= kBuckets) b = kBuckets - 1;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  if (!seeded_.exchange(true, std::memory_order_acq_rel)) {
    // First observer initializes both extremes; racers fall through to the
    // CAS loops below, which handle any interleaving.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  }
  atomic_extreme(min_, x, [](double a, double b2) { return a < b2; });
  atomic_extreme(max_, x, [](double a, double b2) { return a > b2; });
  count_.fetch_add(1, std::memory_order_release);
}

double Histogram::min() const {
  return count() ? min_.load(std::memory_order_relaxed)
                 : std::numeric_limits<double>::quiet_NaN();
}

double Histogram::max() const {
  return count() ? max_.load(std::memory_order_relaxed)
                 : std::numeric_limits<double>::quiet_NaN();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return histograms_[name];
}

namespace {

std::string json_number(double v) {
  if (std::isnan(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::dump_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << c.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    const std::uint64_t n = h.count();
    os << '"' << name << "\":{\"count\":" << n
       << ",\"sum\":" << json_number(h.sum())
       << ",\"mean\":" << json_number(n ? h.sum() / static_cast<double>(n)
                                        : std::numeric_limits<double>::quiet_NaN())
       << ",\"min\":" << json_number(h.min())
       << ",\"max\":" << json_number(h.max()) << '}';
  }
  os << "}}";
  return os.str();
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  if (MetricsRegistry::global()) start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ == 0) return;
  if (MetricsRegistry* r = MetricsRegistry::global()) {
    r->histogram(name_).observe(
        static_cast<double>(now_ns() - start_ns_) * 1e-9);
  }
}

}  // namespace holms::exec
