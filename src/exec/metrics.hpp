#pragma once
// Lightweight observability for the exploration stack (ROADMAP: make the
// hot path measurable before making it fast).
//
// Design rules:
//   * Zero cost when no sink is registered: every instrumentation site goes
//     through the free helpers below, which load one atomic pointer and
//     return immediately when no MetricsRegistry is installed.  No strings
//     are hashed, no locks taken.
//   * Thread-safe by construction: counters and histogram cells are
//     std::atomic, so instrumented code inside exec::ThreadPool workers
//     (explorer candidates, SA moves, simulator runs) needs no coordination.
//   * Machine-readable: MetricsRegistry::dump_json() emits the whole
//     registry as one JSON object; the benches write it to BENCH_<name>.json
//     so runs can be compared by scripts rather than by eyeballing tables.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace holms::exec {

/// Monotonic counter (events, cache hits, SA accepts, ...).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed histogram over non-negative samples, plus exact sum / count
/// / min / max.  Buckets hold |x| in [2^(i-1), 2^i) scaled by 1e9 so
/// sub-second timings land in distinct buckets; good enough to see shape
/// (uniform vs heavy-tailed) without configuring bucket bounds per metric.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double x);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> seeded_{false};  // min/max valid once count > 0
};

/// Named counters + histograms.  Lookup takes a mutex (instrumentation sites
/// are expected to be coarse: once per run / per candidate / per SA batch,
/// not per event); the returned references stay valid for the registry's
/// lifetime, so hot loops may cache them.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Serializes every metric: {"counters":{name:value,...},
  /// "histograms":{name:{count,sum,mean,min,max},...}}.
  std::string dump_json() const;

  /// Process-wide sink.  nullptr (the default) disables all instrumentation.
  /// The caller owns the registry and must keep it alive while installed.
  static MetricsRegistry* global() {
    return global_.load(std::memory_order_acquire);
  }
  static void set_global(MetricsRegistry* r) {
    global_.store(r, std::memory_order_release);
  }

 private:
  static std::atomic<MetricsRegistry*> global_;

  mutable std::mutex mu_;
  // std::map: stable references across inserts, sorted dump output.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Installs `r` as the global sink for the current scope (RAII), restoring
/// the previous sink on destruction.
class ScopedMetricsSink {
 public:
  explicit ScopedMetricsSink(MetricsRegistry& r)
      : previous_(MetricsRegistry::global()) {
    MetricsRegistry::set_global(&r);
  }
  ~ScopedMetricsSink() { MetricsRegistry::set_global(previous_); }
  ScopedMetricsSink(const ScopedMetricsSink&) = delete;
  ScopedMetricsSink& operator=(const ScopedMetricsSink&) = delete;

 private:
  MetricsRegistry* previous_;
};

// ---- instrumentation helpers (no-ops when no sink installed) ----

inline void count(const char* name, std::uint64_t delta = 1) {
  if (MetricsRegistry* r = MetricsRegistry::global()) {
    r->counter(name).add(delta);
  }
}

inline void observe(const char* name, double value) {
  if (MetricsRegistry* r = MetricsRegistry::global()) {
    r->histogram(name).observe(value);
  }
}

/// Times a scope into histogram `<name>` (seconds).  Reads the clock only
/// when a sink is installed.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;  // 0 = no sink at construction, do nothing
};

}  // namespace holms::exec
