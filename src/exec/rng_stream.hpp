#pragma once
// Counter-based RNG stream derivation for deterministic parallelism.
//
// The explorer's parallel refactor must keep the promise the sim kernel's
// header makes: runs are exactly reproducible from a seed.  Forking a shared
// Rng inside a parallel loop would make child seeds depend on the order in
// which worker threads reach the fork — i.e. on the schedule.  Instead, each
// task index derives its own stream seed purely from (base seed, index) with
// a strong 64-bit mixer, so stream i is the same whether the loop runs on
// one thread or sixteen, and adding a task never perturbs another task's
// stream.
//
// The mixer is splitmix64 (Steele/Vigna), the standard seed-sequence mixer:
// a bijective avalanche function, so distinct (base, index) pairs map to
// distinct 64-bit seeds with no cheap collisions.

#include <cstdint>

namespace holms::exec {

/// One splitmix64 scramble step: bijective on 64-bit values.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of the `index`-th parallel stream derived from `base`.  Independent
/// of thread count and schedule by construction; two mixing rounds decouple
/// consecutive indices from consecutive-looking seeds.
constexpr std::uint64_t stream_seed(std::uint64_t base, std::uint64_t index) {
  return splitmix64(splitmix64(base) ^ splitmix64(index * 0xd1342543de82ef95ULL + 1));
}

/// Hierarchical substream derivation for nested parallel axes — the island
/// explorer's (island, epoch) and (island, epoch, slot) streams.  Each level
/// re-applies stream_seed, so substream_seed(base, a, b) is exactly
/// stream_seed(stream_seed(base, a), b): a parent axis owns a full 64-bit
/// stream space and its children subdivide it, which means adding an epoch
/// (or a slot) never perturbs any other island's draws, and a resumed run
/// re-derives the identical stream for (island, epoch, slot) from the
/// checkpointed base alone — no engine state needs serializing.
constexpr std::uint64_t substream_seed(std::uint64_t base, std::uint64_t a,
                                       std::uint64_t b) {
  return stream_seed(stream_seed(base, a), b);
}

constexpr std::uint64_t substream_seed(std::uint64_t base, std::uint64_t a,
                                       std::uint64_t b, std::uint64_t c) {
  return stream_seed(substream_seed(base, a, b), c);
}

}  // namespace holms::exec
