#pragma once
// holms::exec::simd — portable fixed-lane SIMD kernels for the hot paths
// (DESIGN.md §5i).
//
// Determinism model: every kernel computes with 8 virtual f64 lanes and ONE
// canonical reduction order, regardless of the instruction set that executes
// it.  Element i of a stream is assigned to lane i % 8 (in blocks of 8); a
// reduction combines the lane partials as
//
//     ((l0 + l4) + (l2 + l6)) + ((l1 + l5) + (l3 + l7))
//
// — exactly the tree an AVX2 implementation gets from adding its two
// 4-lane accumulators, then adding the register halves, then the final pair
// — and any tail elements (n % 8) are folded in sequentially AFTER the lane
// combine.  The scalar fallback emulates the same 8 chains and the same
// combine tree, so `HOLMS_SIMD=off`, AVX2 and NEON builds produce bitwise
// identical results.  Elementwise operations (add/mul/div/min/max/blend)
// are IEEE-identical per lane on every ISA; the kernel translation units are
// compiled with -ffp-contract=off so no backend fuses a*b+c into an FMA.
//
// min/max use the SSE/AVX minpd/maxpd convention: min(a,b) = a < b ? a : b
// (second operand on ties/NaN).  For the non-negative quantities these
// kernels process that convention is bit-identical to std::min/std::max.
//
// Dispatch: resolved once per process from the HOLMS_SIMD environment
// variable ("off"/"scalar", "avx2", "neon", or "auto"/unset = best
// available) plus runtime CPU detection.  kernels_for() exposes every
// compiled-in table so tests and benches can compare ISAs in-process.

#include <cstddef>
#include <cstdint>

namespace holms::exec::simd {

/// Virtual f64 lane count.  Fixed forever: it defines the canonical
/// reduction order every kernel result depends on.
inline constexpr std::size_t kLanes = 8;

enum class Isa { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// One FGS/DVFS slot of per-session arithmetic, batched across sessions in
/// SoA form (streaming/fgs.cpp phase B).  Every field is an n-element array;
/// policy_* are 1.0/0.0 masks.  The math is purely elementwise — no
/// cross-session reduction — so batching is bitwise-neutral by construction.
struct FgsSlotBatch {
  std::size_t n = 0;
  // Inputs (gathered per session by the scalar phase A).
  const double* capacity_bps = nullptr;
  const double* loss = nullptr;
  const double* policy_graceful = nullptr;  // 1.0 if kGracefulDegradation
  const double* policy_feedback = nullptr;  // 1.0 if kClientFeedback
  const double* freq_hz = nullptr;          // post-DVFS operating point
  const double* total_power_w = nullptr;
  const double* max_stream_bps = nullptr;
  const double* base_layer_bps = nullptr;
  const double* slot_s = nullptr;
  const double* decode_cycles_per_bit = nullptr;
  const double* rx_nj_per_bit = nullptr;
  const double* loss_shed_gain = nullptr;
  const double* base_only_loss_threshold = nullptr;
  const double* base_fec_cap = nullptr;
  const double* max_enhancement_bps = nullptr;
  const double* loss_ewma = nullptr;
  // Outputs (consumed by the scalar phase C in the original mutation order).
  double* shed = nullptr;
  double* rx_bits = nullptr;
  double* decodable_bits = nullptr;
  double* rx_energy_j = nullptr;          // rx radio energy for the slot
  double* cpu_decode_energy_j = nullptr;  // active decode energy
  double* cpu_idle_energy_j = nullptr;    // idle-fraction energy
  double* load_norm = nullptr;            // rx_bits / aptitude_bits
  double* decoded_bps = nullptr;
};

/// Kernel table for one ISA.  All reductions follow the canonical lane
/// order above; all tables produce bitwise identical results.
struct Kernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";

  /// sum(x[0..n)): 8-lane reduction.
  double (*sum)(const double* x, std::size_t n);
  /// sum(|a[i] - b[i]|): the solvers' L1 convergence delta.
  double (*sum_abs_diff)(const double* a, const double* b, std::size_t n);
  /// x[i] /= divisor (elementwise; bitwise-identical on every ISA).
  void (*div_all)(double* x, std::size_t n, double divisor);
  /// Gather-form SpMV over a transposed CSR: for each column c in [lo, hi),
  /// out[c] = sum_i vals[i] * x[srcs[i]] over c's row [offsets[c],
  /// offsets[c+1]).  Detects contiguous index runs (banded chains) and uses
  /// consecutive loads — a load-strategy choice only, never an order change.
  void (*spmv_cols)(const std::size_t* offsets, const std::uint32_t* srcs,
                    const double* vals, const double* x, double* out,
                    std::size_t lo, std::size_t hi);
  /// Block-hybrid Gauss–Seidel sweep over columns [lo, hi) of a transposed
  /// CSR: in-shard sources (index in [lo, hi)) read `next`, out-of-shard
  /// sources read `pi`, the diagonal is skipped and solved as
  /// next[c] = diag[c] < 1 ? acc / (1 - diag[c]) : acc.  Each column's sum
  /// is four lane-reduced segments (below-shard / below-diagonal /
  /// above-diagonal / above-shard) combined left to right; a full-range
  /// shard [0, n) reproduces serial Gauss–Seidel exactly.
  void (*gs_cols)(const std::size_t* offsets, const std::uint32_t* srcs,
                  const double* vals, const double* diag, const double* pi,
                  double* next, std::size_t lo, std::size_t hi);
  /// SwapEvaluator O(deg) delta-energy: sum over touched edges of
  /// transfer_energy(vol, new_hops) - transfer_energy(vol, old_hops) with
  /// transfer_energy(b, h) = b * ((h+1) * e_router_pj + h * e_link_pj) *
  /// 1e-12, lane-reduced in edge order.
  double (*transfer_delta)(const double* vol, const double* old_hops,
                           const double* new_hops, std::size_t n,
                           double e_router_pj, double e_link_pj);
  /// Batched FGS slot arithmetic (see FgsSlotBatch).
  void (*fgs_slots)(const FgsSlotBatch& b);
};

/// The process-wide kernel table: HOLMS_SIMD env + CPU detection, resolved
/// once on first use.
const Kernels& kernels();

/// The table for an explicit ISA; falls back to scalar when that ISA was not
/// compiled in or the CPU lacks it.  For tests and benches.
const Kernels& kernels_for(Isa isa);

/// True when `isa`'s kernels were compiled in and the CPU supports them.
bool isa_available(Isa isa);

/// The ISA "auto" resolves to on this machine.
Isa best_isa();

const char* isa_name(Isa isa);

}  // namespace holms::exec::simd
