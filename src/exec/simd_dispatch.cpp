// Process-wide dispatch for holms::exec::simd.  The active table resolves
// once, on first use, from HOLMS_SIMD + runtime CPU detection; kernels_for()
// exposes every compiled-in table so tests and benches can compare ISAs
// without re-execing.  HOLMS_SIMD_HAVE_AVX2 / HOLMS_SIMD_HAVE_NEON are set
// by exec/CMakeLists.txt exactly when the matching TU is in the build.

#include "exec/simd.hpp"

#include <cstdlib>
#include <string>
#include <string_view>

#include "exec/error.hpp"

namespace holms::exec::simd {

namespace detail {
const Kernels& scalar_kernels();
#if defined(HOLMS_SIMD_HAVE_AVX2)
const Kernels& avx2_kernels();
#endif
#if defined(HOLMS_SIMD_HAVE_NEON)
const Kernels& neon_kernels();
#endif
}  // namespace detail

bool isa_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(HOLMS_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(HOLMS_SIMD_HAVE_NEON)
      return true;  // baseline on every aarch64 this TU is built for
#else
      return false;
#endif
  }
  return false;
}

Isa best_isa() {
  if (isa_available(Isa::kAvx2)) return Isa::kAvx2;
  if (isa_available(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

const Kernels& kernels_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return detail::scalar_kernels();
    case Isa::kAvx2:
#if defined(HOLMS_SIMD_HAVE_AVX2)
      if (isa_available(Isa::kAvx2)) return detail::avx2_kernels();
#endif
      return detail::scalar_kernels();
    case Isa::kNeon:
#if defined(HOLMS_SIMD_HAVE_NEON)
      if (isa_available(Isa::kNeon)) return detail::neon_kernels();
#endif
      return detail::scalar_kernels();
  }
  return detail::scalar_kernels();
}

const Kernels& kernels() {
  static const Kernels& resolved = []() -> const Kernels& {
    const char* raw = std::getenv("HOLMS_SIMD");
    const std::string_view v = raw != nullptr ? raw : "auto";
    if (v.empty() || v == "auto") return kernels_for(best_isa());
    if (v == "off" || v == "scalar") return kernels_for(Isa::kScalar);
    if (v == "avx2") return kernels_for(Isa::kAvx2);
    if (v == "neon") return kernels_for(Isa::kNeon);
    throw InvalidArgument("HOLMS_SIMD must be off|scalar|avx2|neon|auto, got '" +
                          std::string(v) + "'");
  }();
  return resolved;
}

}  // namespace holms::exec::simd
