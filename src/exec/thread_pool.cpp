#include "exec/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>

namespace holms::exec {

std::size_t env_threads(std::size_t fallback) {
  const char* raw = std::getenv("HOLMS_THREADS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || v == 0) return fallback;
  return static_cast<std::size_t>(v);
}

// Generation-stamped job dispatch: parallel_for publishes a job under the
// mutex and bumps `generation`; each worker remembers the last generation it
// served, so a worker can never run the same job twice, and a worker that
// wakes late simply finds the index counter exhausted and goes back to
// sleep.  Completion = all indices claimed AND no worker still inside the
// body (`active == 0`).
struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable wake;   // workers wait here for a new generation
  std::condition_variable done;   // the caller waits here for completion
  std::uint64_t generation = 0;
  bool stopping = false;

  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::size_t active = 0;         // workers currently executing this job
  std::exception_ptr first_error;

  std::vector<std::thread> workers;

  void drain() {
    // Claim indices until the job is exhausted.  Exceptions stop this
    // worker's participation but other indices still run (the explorer's
    // per-candidate work does not throw in normal operation; evaluator
    // preconditions throw before any loop is entered).
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu);
    while (true) {
      wake.wait(lk, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      // The caller clears `body` (under the mutex) once the job completes;
      // a worker that only wakes after that point must not touch the job.
      if (body == nullptr) continue;
      ++active;
      lk.unlock();
      drain();
      lk.lock();
      if (--active == 0) done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  size_ = resolve_threads(threads);
  if (size_ <= 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (impl_ == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->body = &body;
    impl_->n = n;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->wake.notify_all();
  impl_->drain();  // the caller is a worker too
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->done.wait(lk, [&] { return impl_->active == 0; });
  impl_->body = nullptr;
  if (impl_->first_error) {
    std::exception_ptr err = impl_->first_error;
    impl_->first_error = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace holms::exec
