#include "core/ambient.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "exec/rng_stream.hpp"
#include "fault/injector.hpp"

#include "exec/error.hpp"

namespace holms::core {
namespace {

// Moves every task on a dead tile to the live free tile that minimizes its
// incremental communication energy (greedy repair, cheap enough to run
// online).  Returns false if no live tile remains for some task.
bool remap_off_dead_tiles(const Application& app, const Platform& platform,
                          const std::vector<bool>& tile_alive,
                          noc::Mapping& mapping) {
  std::vector<bool> used(platform.mesh.num_tiles(), false);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (tile_alive[mapping[i]]) used[mapping[i]] = true;
  }
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (tile_alive[mapping[i]]) continue;
    auto pick = [&](bool allow_shared) {
      double best_cost = std::numeric_limits<double>::infinity();
      std::size_t best_tile = platform.mesh.num_tiles();
      for (std::size_t t = 0; t < platform.mesh.num_tiles(); ++t) {
        if (!tile_alive[t] || (!allow_shared && used[t])) continue;
        double cost = 0.0;
        for (const auto& e : app.graph.edges()) {
          if (e.src == i) {
            // HOLMS_LINT_ALLOW(D006): constructive greedy oracle; edge list walked in declaration order
            cost += platform.noc_energy.transfer_energy(
                e.volume_bits, platform.mesh.hops(t, mapping[e.dst]));
          } else if (e.dst == i) {
            // HOLMS_LINT_ALLOW(D006): constructive greedy oracle; edge list walked in declaration order
            cost += platform.noc_energy.transfer_energy(
                e.volume_bits, platform.mesh.hops(mapping[e.src], t));
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_tile = t;
        }
      }
      return best_tile;
    };
    // Prefer a spare tile; once spares run out, share a live tile — the
    // application keeps running, possibly degraded (deadline pressure).
    std::size_t best_tile = pick(/*allow_shared=*/false);
    if (best_tile >= platform.mesh.num_tiles()) {
      best_tile = pick(/*allow_shared=*/true);
    }
    if (best_tile >= platform.mesh.num_tiles()) return false;  // all dead
    mapping[i] = best_tile;
    used[best_tile] = true;
  }
  return true;
}

}  // namespace

SloScore availability_slo(const std::vector<std::uint8_t>& period_ok,
                          double target, std::size_t window) {
  if (!(target > 0.0 && target <= 1.0)) {
    throw holms::InvalidArgument(
        "availability_slo: target must be in (0, 1]");
  }
  if (window == 0) {
    throw holms::InvalidArgument("availability_slo: window must be >= 1");
  }
  SloScore score;
  score.window = window;
  std::size_t worst_ok = 0;
  std::size_t worst_len = 1;  // worst availability as the ratio worst_ok/worst_len
  for (std::size_t begin = 0; begin < period_ok.size(); begin += window) {
    const std::size_t len = std::min(window, period_ok.size() - begin);
    std::size_t ok = 0;
    for (std::size_t i = begin; i < begin + len; ++i) {
      if (period_ok[i] != 0) ++ok;
    }
    ++score.windows;
    // Integer-exact target test: ok/len >= target  <=>  ok >= target*len,
    // with a tiny guard against the product rounding just above an integer.
    if (static_cast<double>(ok) + 1e-9 >=
        target * static_cast<double>(len)) {
      ++score.windows_met;
    }
    // Worst window by cross-multiplied integer ratio (no FP accumulation).
    if (score.windows == 1 || ok * worst_len < worst_ok * len) {
      worst_ok = ok;
      worst_len = len;
    }
  }
  if (score.windows > 0) {
    score.slo_fraction = static_cast<double>(score.windows_met) /
                         static_cast<double>(score.windows);
    score.worst_window_availability =
        static_cast<double>(worst_ok) / static_cast<double>(worst_len);
  }
  return score;
}

AmbientResult run_ambient_scenario(const Application& app,
                                   const Platform& platform,
                                   FaultPolicy policy,
                                   const AmbientConfig& cfg,
                                   const AmbientOptions& opts) {
  AmbientResult res;

  // Fault source: the shared schedule, or one derived from the config's
  // Poisson parameters (the legacy behavior).  Either way the scenario
  // replays an explicit event list, so two policies compared on the same
  // (seed, schedule) see the exact same failures.
  fault::FaultSchedule derived;
  const fault::FaultSchedule* schedule = opts.schedule;
  if (schedule == nullptr) {
    fault::FaultSchedule::PoissonSpec spec;
    spec.target = fault::Target::kTile;
    spec.num_targets = platform.mesh.num_tiles();
    spec.fail_rate = 1.0 / cfg.tile_mtbf_s;
    spec.repair_rate = cfg.tile_mttr_s > 0.0 ? 1.0 / cfg.tile_mttr_s : 0.0;
    spec.horizon = cfg.duration_s;
    derived =
        fault::FaultSchedule::poisson(exec::stream_seed(cfg.seed, 0), spec);
    schedule = &derived;
  } else {
    for (const fault::FaultEvent& e : schedule->events()) {
      if (e.target == fault::Target::kTile &&
          e.id >= platform.mesh.num_tiles()) {
        throw holms::InvalidArgument(
            "run_ambient_scenario: fault event tile id out of range");
      }
    }
  }
  fault::FaultInjector injector(schedule);
  // The activity chain draws from its own counter-derived stream, so the
  // fault process and the user model never perturb each other.
  sim::Rng activity_rng(exec::stream_seed(cfg.seed, 1));

  // Design-time mapping on the healthy platform.
  const noc::Mapping design_mapping =
      opts.initial_mapping != nullptr
          ? *opts.initial_mapping
          : noc::greedy_mapping(app.graph, platform.mesh, platform.noc_energy);
  noc::Mapping mapping = design_mapping;

  std::vector<bool> tile_alive(platform.mesh.num_tiles(), true);
  const double period = app.qos.period_s;

  bool user_active_high = true;
  bool mapping_valid = true;
  bool displaced = false;  // tasks currently off their design-time tiles
  Evaluation cached_eval =
      evaluate_design(app, platform, mapping, opts.use_dvs);

  const std::size_t periods =
      static_cast<std::size_t>(cfg.duration_s / period);
  res.period_ok.reserve(periods);
  for (std::size_t k = 0; k < periods; ++k) {
    ++res.periods;

    // Replay fault events up to the start of this period.
    bool changed = false;
    injector.poll(static_cast<double>(k) * period,
                  [&](const fault::FaultEvent& e) {
                    if (e.target != fault::Target::kTile) return;
                    // Transient soft faults never change tile liveness; they
                    // are counted for telemetry and otherwise pass through
                    // (per-slot corruption is a streaming-layer concern).
                    if (e.kind == fault::FaultKind::kSoftFail) {
                      ++res.soft_faults_seen;
                      return;
                    }
                    if (e.kind == fault::FaultKind::kScrub) {
                      ++res.scrubs_seen;
                      return;
                    }
                    const bool up = e.kind == fault::FaultKind::kRepair;
                    if (tile_alive[e.id] == up) return;
                    tile_alive[e.id] = up;
                    changed = true;
                    if (up) {
                      ++res.repairs_applied;
                    } else {
                      ++res.failures_injected;
                    }
                  });
    // User activity Markov chain.
    if (activity_rng.bernoulli(cfg.activity_switch_prob)) {
      user_active_high = !user_active_high;
    }
    const double activity =
        user_active_high ? cfg.activity_high : cfg.activity_low;

    if (changed) {
      bool any_dead_in_use = false;
      for (std::size_t i = 0; i < mapping.size(); ++i) {
        if (!tile_alive[mapping[i]]) any_dead_in_use = true;
      }
      if (policy == FaultPolicy::kAdaptiveRemap) {
        if (any_dead_in_use) {
          mapping_valid =
              remap_off_dead_tiles(app, platform, tile_alive, mapping);
          if (mapping_valid) {
            ++res.remaps_performed;
            displaced = mapping != design_mapping;
            cached_eval =
                evaluate_design(app, platform, mapping, opts.use_dvs);
          }
        } else {
          mapping_valid = true;  // every tile in use is live again
          if (displaced) {
            // Repairs may have revived the design-time tiles: fall back to
            // the intended placement as soon as it is whole again.
            bool design_whole = true;
            for (std::size_t i = 0; i < design_mapping.size(); ++i) {
              if (!tile_alive[design_mapping[i]]) design_whole = false;
            }
            if (design_whole) {
              mapping = design_mapping;
              displaced = false;
              ++res.remaps_performed;
              cached_eval =
                  evaluate_design(app, platform, mapping, opts.use_dvs);
            }
          }
        }
      } else {
        // Static policy: the mapping never moves; it is valid exactly when
        // every used tile is live (repairs can restore it).
        mapping_valid = !any_dead_in_use;
      }
    }

    if (!mapping_valid) {
      ++res.periods_failed;
      res.period_ok.push_back(0);
      continue;
    }

    // Activity scales the schedule: low activity shortens tasks, so the
    // deadline verdict from the cached evaluation is conservative at high
    // activity and safe at low.
    const double effective_makespan =
        cached_eval.schedule.makespan_s * activity;
    if (effective_makespan <= period) {
      ++res.periods_ok;
      res.period_ok.push_back(1);
    } else {
      ++res.periods_degraded;
      res.period_ok.push_back(0);
      if (displaced) ++res.periods_fault_degraded;
    }
    res.energy_j += cached_eval.total_energy_j * activity;
  }

  res.availability =
      res.periods ? static_cast<double>(res.periods_ok) /
                        static_cast<double>(res.periods)
                  : 0.0;
  return res;
}

}  // namespace holms::core
