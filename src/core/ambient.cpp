#include "core/ambient.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace holms::core {
namespace {

// Moves every task on a dead tile to the live free tile that minimizes its
// incremental communication energy (greedy repair, cheap enough to run
// online).  Returns false if no live tile remains for some task.
bool remap_off_dead_tiles(const Application& app, const Platform& platform,
                          const std::vector<bool>& tile_alive,
                          noc::Mapping& mapping) {
  std::vector<bool> used(platform.mesh.num_tiles(), false);
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (tile_alive[mapping[i]]) used[mapping[i]] = true;
  }
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    if (tile_alive[mapping[i]]) continue;
    auto pick = [&](bool allow_shared) {
      double best_cost = std::numeric_limits<double>::infinity();
      std::size_t best_tile = platform.mesh.num_tiles();
      for (std::size_t t = 0; t < platform.mesh.num_tiles(); ++t) {
        if (!tile_alive[t] || (!allow_shared && used[t])) continue;
        double cost = 0.0;
        for (const auto& e : app.graph.edges()) {
          if (e.src == i) {
            cost += platform.noc_energy.transfer_energy(
                e.volume_bits, platform.mesh.hops(t, mapping[e.dst]));
          } else if (e.dst == i) {
            cost += platform.noc_energy.transfer_energy(
                e.volume_bits, platform.mesh.hops(mapping[e.src], t));
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_tile = t;
        }
      }
      return best_tile;
    };
    // Prefer a spare tile; once spares run out, share a live tile — the
    // application keeps running, possibly degraded (deadline pressure).
    std::size_t best_tile = pick(/*allow_shared=*/false);
    if (best_tile >= platform.mesh.num_tiles()) {
      best_tile = pick(/*allow_shared=*/true);
    }
    if (best_tile >= platform.mesh.num_tiles()) return false;  // all dead
    mapping[i] = best_tile;
    used[best_tile] = true;
  }
  return true;
}

}  // namespace

AmbientResult run_ambient_scenario(const Application& app,
                                   const Platform& platform,
                                   FaultPolicy policy,
                                   const AmbientConfig& cfg) {
  sim::Rng rng(cfg.seed);
  AmbientResult res;

  // Design-time mapping on the healthy platform.
  noc::Mapping mapping =
      noc::greedy_mapping(app.graph, platform.mesh, platform.noc_energy);

  std::vector<bool> tile_alive(platform.mesh.num_tiles(), true);
  // Per-tile Poisson failure: probability per period.
  const double period = app.qos.period_s;
  const double p_fail = 1.0 - std::exp(-period / cfg.tile_mtbf_s);

  bool user_active_high = true;
  bool mapping_valid = true;
  Evaluation cached_eval = evaluate_design(app, platform, mapping, true);

  const std::size_t periods =
      static_cast<std::size_t>(cfg.duration_s / period);
  for (std::size_t k = 0; k < periods; ++k) {
    ++res.periods;

    // Inject failures.
    bool changed = false;
    for (std::size_t t = 0; t < tile_alive.size(); ++t) {
      if (tile_alive[t] && rng.bernoulli(p_fail)) {
        tile_alive[t] = false;
        changed = true;
        ++res.failures_injected;
      }
    }
    // User activity Markov chain.
    if (rng.bernoulli(cfg.activity_switch_prob)) {
      user_active_high = !user_active_high;
    }
    const double activity =
        user_active_high ? cfg.activity_high : cfg.activity_low;

    if (changed) {
      bool any_dead_in_use = false;
      for (std::size_t i = 0; i < mapping.size(); ++i) {
        if (!tile_alive[mapping[i]]) any_dead_in_use = true;
      }
      if (any_dead_in_use) {
        if (policy == FaultPolicy::kAdaptiveRemap) {
          mapping_valid =
              remap_off_dead_tiles(app, platform, tile_alive, mapping);
          if (mapping_valid) {
            ++res.remaps_performed;
            cached_eval = evaluate_design(app, platform, mapping, true);
          }
        } else {
          mapping_valid = false;
        }
      }
    }

    if (!mapping_valid) {
      ++res.periods_failed;
      continue;
    }

    // Activity scales the schedule: low activity shortens tasks, so the
    // deadline verdict from the cached evaluation is conservative at high
    // activity and safe at low.
    const double effective_makespan =
        cached_eval.schedule.makespan_s * activity;
    if (effective_makespan <= period) {
      ++res.periods_ok;
    } else {
      ++res.periods_degraded;
    }
    res.energy_j += cached_eval.total_energy_j * activity;
  }

  res.availability =
      res.periods ? static_cast<double>(res.periods_ok) /
                        static_cast<double>(res.periods)
                  : 0.0;
  return res;
}

}  // namespace holms::core
