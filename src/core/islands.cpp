#include "core/islands.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <iterator>
#include <limits>
#include <utility>

#include "exec/metrics.hpp"
#include "exec/rng_stream.hpp"
#include "exec/thread_pool.hpp"

namespace holms::core {
namespace {

constexpr std::uint64_t kMagic = 0x484f4c4d53434b50ULL;    // "HOLMSCKP"
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kDigestSeed = 0x636b70646967ULL;   // "ckpdig"
constexpr std::uint64_t kInitStream = 0x696e6974ULL;       // "init"

// Streaming 64-bit hash: order-sensitive fold of one value into the state
// (same construction as the evaluator fingerprints).
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return exec::splitmix64(h ^ exec::splitmix64(v));
}

std::uint64_t fold(std::uint64_t h, double d) {
  return fold(h, std::bit_cast<std::uint64_t>(d));
}

std::uint64_t fold_candidate(std::uint64_t h, const DesignCandidate& c) {
  h = fold(h, mapping_digest(c.mapping));
  h = fold(h, static_cast<std::uint64_t>(c.use_dvs));
  h = fold(h, c.eval.total_energy_j);
  h = fold(h, c.eval.schedule.makespan_s);
  h = fold(h, static_cast<std::uint64_t>(c.eval.feasible));
  h = fold(h, c.availability);
  h = fold(h, c.slo_fraction);
  h = fold(h, c.worst_window_availability);
  return h;
}

/// Checkpoint payload builder: 64-bit little-endian words; doubles are
/// bit_cast so the round trip is exact.
struct WordWriter {
  std::vector<std::uint64_t> words;

  void u64(std::uint64_t v) { words.push_back(v); }
  void f64(double d) { u64(std::bit_cast<std::uint64_t>(d)); }
  void mapping(const noc::Mapping& m) {
    u64(m.size());
    for (const std::size_t tile : m) u64(tile);
  }
  /// A candidate's search-state fields.  The Evaluation is deliberately not
  /// serialized: resume re-prices the mapping through the (deterministic)
  /// evaluator, which is both smaller and immune to stale-eval corruption.
  void candidate(const DesignCandidate& c) {
    mapping(c.mapping);
    u64(static_cast<std::uint64_t>(c.use_dvs));
    f64(c.availability);
    f64(c.slo_fraction);
    f64(c.worst_window_availability);
  }
};

struct WordReader {
  explicit WordReader(const std::vector<std::uint64_t>& w) : words(w) {}

  std::uint64_t u64() {
    if (pos >= words.size()) {
      throw holms::RuntimeError("island checkpoint: truncated blob");
    }
    return words[pos++];
  }
  double f64() { return std::bit_cast<double>(u64()); }
  noc::Mapping mapping(std::size_t expected_nodes, std::size_t num_tiles) {
    const std::uint64_t n = u64();
    if (n != expected_nodes) {
      throw holms::RuntimeError(
          "island checkpoint: mapping size does not match the application");
    }
    noc::Mapping m(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t tile = u64();
      if (tile >= num_tiles) {
        throw holms::RuntimeError(
            "island checkpoint: mapping references a tile outside the mesh");
      }
      m[i] = static_cast<noc::TileId>(tile);
    }
    return m;
  }
  DesignCandidate candidate(std::size_t expected_nodes,
                            std::size_t num_tiles) {
    DesignCandidate c;
    c.mapping = mapping(expected_nodes, num_tiles);
    c.use_dvs = u64() != 0;
    c.availability = f64();
    c.slo_fraction = f64();
    c.worst_window_availability = f64();
    return c;
  }

  const std::vector<std::uint64_t>& words;
  std::size_t pos = 0;
};

std::vector<std::uint8_t> words_to_bytes(
    const std::vector<std::uint64_t>& words) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 8);
  for (const std::uint64_t w : words) {
    for (std::size_t k = 0; k < 8; ++k) {
      bytes.push_back(static_cast<std::uint8_t>((w >> (8 * k)) & 0xff));
    }
  }
  return bytes;
}

std::vector<std::uint64_t> bytes_to_words(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty() || bytes.size() % 8 != 0) {
    throw holms::RuntimeError(
        "island checkpoint: blob size is not a whole number of words");
  }
  std::vector<std::uint64_t> words(bytes.size() / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    words[i / 8] |= static_cast<std::uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  return words;
}

}  // namespace

IslandExplorer::IslandExplorer(const Application& app,
                               const Platform& platform, sim::Rng& rng,
                               IslandOptions opts)
    : IslandExplorer(app, platform, std::move(opts), rng.bits(),
                     /*resumed=*/false) {}

IslandExplorer::IslandExplorer(IslandExplorer&&) noexcept = default;
IslandExplorer::~IslandExplorer() = default;

IslandExplorer::IslandExplorer(const Application& app,
                               const Platform& platform, IslandOptions opts,
                               std::uint64_t stream_base, bool resumed)
    : app_(app), platform_(platform), opts_(std::move(opts)),
      stream_base_(stream_base) {
  opts_.validate();
  app_fp_ = app_fingerprint(app_);
  platform_fp_ = platform_fingerprint(platform_);

  if (opts_.cache != nullptr) {
    cache_ = opts_.cache;
  } else if (opts_.use_cache) {
    owned_cache_ = std::make_unique<EvalCache>();
    cache_ = owned_cache_.get();
  }
  if (opts_.pool != nullptr) {
    pool_ = opts_.pool;
  } else if (exec::resolve_threads(opts_.threads) > 1) {
    owned_pool_ = std::make_unique<exec::ThreadPool>(opts_.threads);
    pool_ = owned_pool_.get();
  }

  sa_base_ = opts_.sa;
  sa_base_.link_capacity_bps = platform_.link_bandwidth_bps;
  if (opts_.sa_runs_per_epoch > 0 && sa_base_.routes == nullptr) {
    // One shared table for every refinement on every island: it is
    // O(tiles^2 * mean_hops) — ~90 MB at 32x32 — so per-run construction
    // would multiply that by islands * pool width.
    owned_routes_ = std::make_unique<noc::XyRouteTable>(platform_.mesh);
    sa_base_.routes = owned_routes_.get();
  }

  if (!resumed) {
    islands_.resize(opts_.islands);
    // Island 0 starts from the deterministic greedy seed (the strongest
    // known start); the rest start from random mappings on their own
    // streams so the populations diverge immediately.
    islands_[0].incumbent = noc::greedy_mapping(app_.graph, platform_.mesh,
                                                platform_.noc_energy);
    for (std::size_t i = 1; i < opts_.islands; ++i) {
      sim::Rng stream(exec::substream_seed(stream_base_, i, kInitStream));
      islands_[i].incumbent =
          noc::random_mapping(app_.graph.num_nodes(), platform_.mesh, stream);
    }
  }
}

bool IslandExplorer::step(std::size_t epochs) {
  for (std::size_t k = 0; k < epochs; ++k) run_epoch();
  return epoch_ < opts_.epochs;
}

void IslandExplorer::run_epoch() {
  exec::ScopedTimer timer("islands.epoch_seconds");
  const std::size_t K = opts_.islands;
  const std::size_t gen_per_island =
      opts_.sa_runs_per_epoch + opts_.probes_per_epoch;
  const std::size_t e = epoch_;

  // Generation: island i, slot s draws its private stream from
  // (base, island, epoch, slot) — identical work regardless of which pool
  // thread runs it.  Incumbents are read-only during the epoch.
  const std::size_t total_gen = K * gen_per_island;
  const std::vector<noc::Mapping> gen =
      exec::parallel_transform<noc::Mapping>(
          pool_, total_gen, [&](std::size_t idx) {
            const std::size_t i = idx / gen_per_island;
            const std::size_t s = idx % gen_per_island;
            sim::Rng stream(exec::substream_seed(stream_base_, i, e, s));
            if (s < opts_.sa_runs_per_epoch) {
              return noc::sa_mapping_from(app_.graph, platform_.mesh,
                                          platform_.noc_energy,
                                          islands_[i].incumbent, stream,
                                          sa_base_);
            }
            return noc::random_mapping(app_.graph.num_nodes(), platform_.mesh,
                                       stream);
          });

  // Pricing: every generated mapping times scheduler variants, through the
  // shared cache.  Job order is island-major (island, slot, scheduler).
  const std::size_t scheds = opts_.try_both_schedulers ? 2 : 1;
  const std::size_t total_jobs = total_gen * scheds;
  const std::vector<Evaluation> evals = exec::parallel_transform<Evaluation>(
      pool_, total_jobs, [&](std::size_t j) {
        const noc::Mapping& m = gen[j / scheds];
        const bool use_dvs = (j % scheds) == 0;
        if (cache_ != nullptr) {
          return cache_->evaluate(app_, app_fp_, platform_, platform_fp_, m,
                                  use_dvs);
        }
        return evaluate_design(app_, platform_, m, use_dvs);
      });
  exec::count("explore.candidates", total_jobs);

  std::vector<DesignCandidate> cands(total_jobs);
  for (std::size_t j = 0; j < total_jobs; ++j) {
    cands[j].mapping = gen[j / scheds];
    cands[j].use_dvs = (j % scheds) == 0;
    cands[j].eval = evals[j];
  }
  if (opts_.faults != nullptr) {
    score_fault_robustness(app_, platform_, *opts_.faults, pool_, cands);
  }
  evaluated_ += total_jobs;

  // Serial merge in island/slot/scheduler order: global best + front via the
  // shared accumulator, per-island bests via the canonical order.  The
  // winning island then exploits its own best as next epoch's incumbent.
  for (std::size_t i = 0; i < K; ++i) {
    Island& isl = islands_[i];
    const std::size_t begin = i * gen_per_island * scheds;
    for (std::size_t j = begin; j < begin + gen_per_island * scheds; ++j) {
      const DesignCandidate& c = cands[j];
      acc_.merge(c);
      if (c.eval.feasible &&
          (!isl.has_best || candidate_precedes(c, isl.best))) {
        isl.best = c;
        isl.has_best = true;
      }
    }
    if (isl.has_best) isl.incumbent = isl.best.mapping;
  }

  ++epoch_;
  exec::count("islands.epochs");
  trajectory_.emplace_back(
      evaluated_, acc_.found_feasible
                      ? acc_.best_energy
                      : std::numeric_limits<double>::infinity());

  if (epoch_ % opts_.migration_interval == 0) migrate();
  if (opts_.checkpoint_every > 0 && epoch_ % opts_.checkpoint_every == 0) {
    save_checkpoint(opts_.checkpoint_path);
  }
}

void IslandExplorer::migrate() {
  const std::size_t K = islands_.size();
  if (K < 2) return;
  // Snapshot all emigrants first so the exchange is simultaneous (island i's
  // gift is its best *before* this migration, not after receiving one).
  std::vector<const DesignCandidate*> emigrants(K, nullptr);
  for (std::size_t i = 0; i < K; ++i) {
    if (islands_[i].has_best) emigrants[i] = &islands_[i].best;
  }
  std::size_t accepted = 0;
  std::vector<noc::Mapping> incoming(K);
  std::vector<bool> take(K, false);
  for (std::size_t i = 0; i < K; ++i) {
    const DesignCandidate* em = emigrants[(i + K - 1) % K];
    if (em == nullptr) continue;
    // Migration reseeds the receiver's *refinement*, never its bookkeeping:
    // the emigrant only replaces the incumbent when it canonically precedes
    // the island's own best, so a weaker neighbour can't dilute a leader.
    if (!islands_[i].has_best || candidate_precedes(*em, islands_[i].best)) {
      incoming[i] = em->mapping;
      take[i] = true;
      ++accepted;
    }
  }
  for (std::size_t i = 0; i < K; ++i) {
    if (take[i]) islands_[i].incumbent = std::move(incoming[i]);
  }
  exec::count("islands.migrations_accepted", accepted);
}

ExploreResult IslandExplorer::result() const {
  ExploreResult out;
  out.best = acc_.best;
  out.found_feasible = acc_.found_feasible;
  out.pareto = acc_.front;
  out.evaluated = static_cast<std::size_t>(evaluated_);
  std::sort(out.pareto.begin(), out.pareto.end(),
            [](const DesignCandidate& a, const DesignCandidate& b) {
              return a.eval.total_energy_j < b.eval.total_energy_j;
            });
  return out;
}

std::uint64_t IslandExplorer::result_fingerprint() const {
  const ExploreResult r = result();
  std::uint64_t h = 0x69736c616e646670ULL;  // "islandfp"
  h = fold(h, static_cast<std::uint64_t>(epoch_));
  h = fold(h, evaluated_);
  h = fold(h, static_cast<std::uint64_t>(r.found_feasible));
  if (r.found_feasible) h = fold_candidate(h, r.best);
  h = fold(h, static_cast<std::uint64_t>(r.pareto.size()));
  for (const DesignCandidate& c : r.pareto) h = fold_candidate(h, c);
  for (const auto& [evals, energy] : trajectory_) {
    h = fold(h, evals);
    h = fold(h, energy);
  }
  return h;
}

std::uint64_t IslandExplorer::options_digest() const {
  // Every knob that shapes the search trajectory — and none that may
  // legitimately differ across a resume (threads, pool, cache, checkpoint
  // plumbing, the advisory epoch budget).
  std::uint64_t h = 0x69736c6f707473ULL;  // "islopts"
  h = fold(h, static_cast<std::uint64_t>(opts_.islands));
  h = fold(h, static_cast<std::uint64_t>(opts_.migration_interval));
  h = fold(h, static_cast<std::uint64_t>(opts_.sa_runs_per_epoch));
  h = fold(h, static_cast<std::uint64_t>(opts_.probes_per_epoch));
  h = fold(h, static_cast<std::uint64_t>(opts_.try_both_schedulers));
  h = fold(h, static_cast<std::uint64_t>(opts_.sa.iterations));
  h = fold(h, opts_.sa.initial_temperature);
  h = fold(h, opts_.sa.cooling);
  h = fold(h, opts_.sa.infeasibility_penalty);
  h = fold(h, static_cast<std::uint64_t>(opts_.sa.debug_full_eval));
  h = fold(h, opts_.sa.w_swap);
  h = fold(h, opts_.sa.w_segment_reversal);
  h = fold(h, opts_.sa.w_cluster_relocate);
  h = fold(h, static_cast<std::uint64_t>(opts_.sa.reheat_after));
  h = fold(h, opts_.sa.reheat_factor);
  return h;
}

std::uint64_t IslandExplorer::fault_fingerprint() const {
  if (opts_.faults == nullptr) return 0;
  const FaultScenario& fs = *opts_.faults;
  std::uint64_t h = 0x69736c666c74ULL;  // "islflt"
  h = fold(h, static_cast<std::uint64_t>(fs.replicas));
  h = fold(h, static_cast<std::uint64_t>(fs.policy));
  h = fold(h, fs.min_availability);
  h = fold(h, static_cast<std::uint64_t>(fs.slo_window));
  h = fold(h, fs.slo_target);
  h = fold(h, fs.min_slo_fraction);
  h = fold(h, fs.ambient.duration_s);
  h = fold(h, fs.ambient.tile_mtbf_s);
  h = fold(h, fs.ambient.tile_mttr_s);
  h = fold(h, fs.ambient.activity_low);
  h = fold(h, fs.ambient.activity_high);
  h = fold(h, fs.ambient.activity_switch_prob);
  h = fold(h, fs.ambient.seed);
  h = fold(h, fs.schedule != nullptr ? fs.schedule->fingerprint() : 0);
  return h;
}

std::vector<std::uint8_t> IslandExplorer::checkpoint() const {
  WordWriter w;
  w.u64(kMagic);
  w.u64(kVersion);  // low 32 bits version, high 32 reserved flags (0)
  w.u64(app_fp_);
  w.u64(platform_fp_);
  w.u64(options_digest());
  w.u64(fault_fingerprint());
  w.u64(stream_base_);
  w.u64(static_cast<std::uint64_t>(epoch_));
  w.u64(evaluated_);
  // Cache generation: informational — how much memoized state the resumed
  // process will be rebuilding (its own cache starts empty).
  w.u64(cache_ != nullptr ? cache_->inserts() : 0);
  w.u64(static_cast<std::uint64_t>(islands_.size()));
  for (const Island& isl : islands_) {
    w.mapping(isl.incumbent);
    w.u64(static_cast<std::uint64_t>(isl.has_best));
    if (isl.has_best) w.candidate(isl.best);
  }
  w.u64(static_cast<std::uint64_t>(acc_.found_feasible));
  if (acc_.found_feasible) w.candidate(acc_.best);
  // The front is serialized in *internal* (insertion) order, not energy
  // order: future merges compare against it in that order, so restoring it
  // verbatim keeps the continued run bitwise identical.
  w.u64(static_cast<std::uint64_t>(acc_.front.size()));
  for (const DesignCandidate& c : acc_.front) w.candidate(c);
  w.u64(static_cast<std::uint64_t>(trajectory_.size()));
  for (const auto& [evals, energy] : trajectory_) {
    w.u64(evals);
    w.f64(energy);
  }
  std::uint64_t digest = kDigestSeed;
  for (const std::uint64_t word : w.words) digest = fold(digest, word);
  w.u64(digest);
  return words_to_bytes(w.words);
}

void IslandExplorer::save_checkpoint(const std::string& path) const {
  const std::vector<std::uint8_t> blob = checkpoint();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw holms::RuntimeError("island checkpoint: cannot open '" + path +
                              "' for writing");
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw holms::RuntimeError("island checkpoint: short write to '" + path +
                              "'");
  }
}

IslandExplorer IslandExplorer::resume(const Application& app,
                                      const Platform& platform,
                                      IslandOptions opts,
                                      const std::vector<std::uint8_t>& blob) {
  const std::vector<std::uint64_t> words = bytes_to_words(blob);
  if (words.size() < 12) {
    throw holms::RuntimeError("island checkpoint: blob too small");
  }
  // Whole-blob integrity first: the trailing word is a fold chain over every
  // word before it, so any single flipped byte anywhere is caught here.
  std::uint64_t digest = kDigestSeed;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    digest = fold(digest, words[i]);
  }
  if (digest != words.back()) {
    throw holms::RuntimeError(
        "island checkpoint: digest mismatch — blob is corrupt");
  }

  WordReader r(words);
  if (r.u64() != kMagic) {
    throw holms::RuntimeError("island checkpoint: bad magic");
  }
  if (r.u64() != kVersion) {
    throw holms::RuntimeError("island checkpoint: unsupported version");
  }
  const std::uint64_t app_fp = r.u64();
  const std::uint64_t platform_fp = r.u64();
  const std::uint64_t opts_digest = r.u64();
  const std::uint64_t fault_fp = r.u64();
  const std::uint64_t stream_base = r.u64();

  IslandExplorer ex(app, platform, std::move(opts), stream_base,
                    /*resumed=*/true);
  if (app_fp != ex.app_fp_) {
    throw holms::RuntimeError(
        "island checkpoint: application fingerprint mismatch");
  }
  if (platform_fp != ex.platform_fp_) {
    throw holms::RuntimeError(
        "island checkpoint: platform fingerprint mismatch");
  }
  if (opts_digest != ex.options_digest()) {
    throw holms::RuntimeError(
        "island checkpoint: options digest mismatch — search knobs differ "
        "from the checkpointing run");
  }
  if (fault_fp != ex.fault_fingerprint()) {
    throw holms::RuntimeError(
        "island checkpoint: fault-scenario fingerprint mismatch");
  }

  ex.epoch_ = static_cast<std::size_t>(r.u64());
  ex.evaluated_ = r.u64();
  r.u64();  // cache generation: informational only
  const std::size_t num_islands = static_cast<std::size_t>(r.u64());
  if (num_islands != ex.opts_.islands) {
    throw holms::RuntimeError(
        "island checkpoint: island count mismatch");
  }

  const std::size_t nodes = app.graph.num_nodes();
  const std::size_t tiles = platform.mesh.num_tiles();
  // Re-price a stored candidate: the evaluator is deterministic, so the
  // Evaluation comes back bitwise identical to the one the checkpointing
  // process held; the stored fault scores then re-apply the same floors.
  const auto reprice = [&](DesignCandidate& c) {
    c.eval = ex.cache_ != nullptr
                 ? ex.cache_->evaluate(app, ex.app_fp_, platform,
                                       ex.platform_fp_, c.mapping, c.use_dvs)
                 : evaluate_design(app, platform, c.mapping, c.use_dvs);
    if (ex.opts_.faults != nullptr) {
      const FaultScenario& fs = *ex.opts_.faults;
      if (c.availability < fs.min_availability) c.eval.feasible = false;
      if (fs.slo_window > 0 && c.slo_fraction < fs.min_slo_fraction) {
        c.eval.feasible = false;
      }
    }
  };

  ex.islands_.resize(num_islands);
  for (Island& isl : ex.islands_) {
    isl.incumbent = r.mapping(nodes, tiles);
    isl.has_best = r.u64() != 0;
    if (isl.has_best) {
      isl.best = r.candidate(nodes, tiles);
      reprice(isl.best);
    }
  }
  ex.acc_.found_feasible = r.u64() != 0;
  if (ex.acc_.found_feasible) {
    ex.acc_.best = r.candidate(nodes, tiles);
    reprice(ex.acc_.best);
    ex.acc_.best_energy = ex.acc_.best.eval.total_energy_j;
  }
  const std::size_t front_size = static_cast<std::size_t>(r.u64());
  ex.acc_.front.resize(front_size);
  for (DesignCandidate& c : ex.acc_.front) {
    c = r.candidate(nodes, tiles);
    reprice(c);
  }
  const std::size_t traj_size = static_cast<std::size_t>(r.u64());
  ex.trajectory_.resize(traj_size);
  for (auto& [evals, energy] : ex.trajectory_) {
    evals = r.u64();
    energy = r.f64();
  }
  exec::count("islands.resumes");
  return ex;
}

IslandExplorer IslandExplorer::resume_from_file(const Application& app,
                                                const Platform& platform,
                                                IslandOptions opts,
                                                const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw holms::RuntimeError("island checkpoint: cannot open '" + path +
                              "' for reading");
  }
  std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  return resume(app, platform, std::move(opts), blob);
}

ExploreResult explore_islands(const Application& app, const Platform& platform,
                              sim::Rng& rng, const IslandOptions& opts) {
  IslandExplorer ex(app, platform, rng, opts);
  while (ex.step()) {
  }
  return ex.result();
}

}  // namespace holms::core
