#pragma once
// Island-model parallel exploration (DESIGN.md §5l).
//
// explore() scales to a handful of SA restarts; the surveillance-farm sweeps
// (32x32 meshes, ~200-task graphs) want sustained search with *diversity* —
// independent populations that occasionally exchange their champions.  The
// island model does exactly that: K islands each run their own SA
// refinements and random probes on private counter-derived RNG streams, all
// pricing through one shared sharded EvalCache, and at epoch barriers the
// ring migration hands every island its left neighbour's best design.
//
// Determinism contract (the whole point of the design):
//  * every generation job draws its stream from
//    substream_seed(base, island, epoch, slot) — nothing depends on which
//    thread ran it or when;
//  * all merges (island bests, global best, Pareto front) happen serially in
//    island/slot/scheduler order after each parallel phase;
//  * emigrants are chosen by the canonical candidate_precedes order
//    (feasible first, then energy, then (mapping digest, use_dvs)).
// Hence the result — and result_fingerprint() — is bitwise invariant to
// thread count and island scheduling.
//
// Checkpoint/resume in the copy-machine idiom: checkpoint() serializes the
// full search state (incumbents, bests, front, trajectory) plus fingerprints
// of everything the search depends on (app, platform, options, fault
// scenario, RNG stream base) into a versioned little-endian blob with a
// trailing digest.  resume() validates digest and fingerprints (any mismatch
// or corruption → holms::RuntimeError) and reconstructs an explorer whose
// continued run is bitwise identical to the uninterrupted one — RNG streams
// are re-derived from (base, island, epoch, slot), so no engine state is
// ever serialized.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/explorer.hpp"

namespace holms::exec {
class ThreadPool;
}

namespace holms::core {

struct IslandOptions {
  std::size_t islands = 4;
  /// Default epoch budget: step() keeps returning true while epoch() is
  /// below this.  Callers may step past it; the budget is advisory.
  std::size_t epochs = 8;
  /// Migrate every N epochs (ring topology, best-of-island emigrants).
  std::size_t migration_interval = 1;
  /// Per island per epoch: SA refinements of the incumbent, then random
  /// probes.  Their sum is the island's generation jobs per epoch.
  std::size_t sa_runs_per_epoch = 1;
  std::size_t probes_per_epoch = 1;
  noc::SaOptions sa{};
  bool try_both_schedulers = true;  // price EDF next to the DVS variant
  std::size_t threads = 1;          // 0 = hardware concurrency, 1 = serial
  bool use_cache = true;            // memoize evaluate_design calls
  EvalCache* cache = nullptr;       // external cache (overrides use_cache)
  exec::ThreadPool* pool = nullptr;  // external pool (overrides threads)
  const FaultScenario* faults = nullptr;  // robustness-aware DSE (optional)
  /// Periodic checkpointing: every `checkpoint_every` epochs the state blob
  /// is written to `checkpoint_path` (0 disables; step() performs the write
  /// at the epoch barrier, after migration).
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;

  /// Contract rule C001; called by the IslandExplorer constructor.
  void validate() const {
    sa.validate();
    if (islands == 0) {
      throw holms::InvalidArgument("IslandOptions: islands must be >= 1");
    }
    if (epochs == 0) {
      throw holms::InvalidArgument("IslandOptions: epochs must be >= 1");
    }
    if (migration_interval == 0) {
      throw holms::InvalidArgument(
          "IslandOptions: migration_interval must be >= 1");
    }
    // Dead-config rejection (C001): an epoch that generates nothing spins
    // the loop forever without searching.
    if (sa_runs_per_epoch + probes_per_epoch == 0) {
      throw holms::InvalidArgument(
          "IslandOptions: sa_runs_per_epoch + probes_per_epoch must be >= 1 "
          "— an epoch with no generation jobs searches nothing");
    }
    if (checkpoint_every > 0 && checkpoint_path.empty()) {
      throw holms::InvalidArgument(
          "IslandOptions: checkpoint_every > 0 requires a non-empty "
          "checkpoint_path — periodic checkpoints with nowhere to go are a "
          "dead config");
    }
    if (faults != nullptr) {
      // Mirror the ExploreOptions fault-scenario contract.
      ExploreOptions probe;
      probe.faults = faults;
      probe.validate();
    }
  }
};

/// K-island parallel design-space explorer with deterministic ring migration
/// and fingerprinted checkpoint/resume.  See the header comment for the
/// determinism contract; DESIGN.md §5l for the full argument.
class IslandExplorer {
 public:
  /// Consumes exactly one draw from `rng` (the base of every island's
  /// substream) regardless of islands, epochs or thread count — the same
  /// contract as explore().
  IslandExplorer(const Application& app, const Platform& platform,
                 sim::Rng& rng, IslandOptions opts);

  // Out-of-line so the owned pool/cache destruct where ThreadPool is a
  // complete type; movable so resume() can return by value.
  IslandExplorer(IslandExplorer&&) noexcept;
  ~IslandExplorer();

  /// Runs `epochs` more epochs (generation → pricing → fault scoring →
  /// serial merge → migration → optional periodic checkpoint).  Returns
  /// true while epoch() remains below the options' epoch budget, so
  /// `while (ex.step()) {}` runs exactly opts.epochs epochs.
  bool step(std::size_t epochs = 1);

  /// Epochs completed so far.
  std::size_t epoch() const { return epoch_; }

  /// Snapshot of the search result so far, in the explore() shape (Pareto
  /// front sorted by energy).
  ExploreResult result() const;

  /// Order-sensitive 64-bit digest of result() plus epoch/evaluated — the
  /// value the resume-identity gates compare.  Equal fingerprints mean the
  /// candidate sets are bitwise identical with ~2^-64 slack.
  std::uint64_t result_fingerprint() const;

  /// (cumulative pricing evaluations, best feasible energy so far) recorded
  /// after every epoch — the convergence trajectory the island-scaling
  /// bench plots.  Energy is +inf until a feasible design is found.
  const std::vector<std::pair<std::uint64_t, double>>& trajectory() const {
    return trajectory_;
  }

  /// Serializes the full search state to the versioned checkpoint blob.
  std::vector<std::uint8_t> checkpoint() const;
  /// checkpoint() to a file; throws holms::RuntimeError on I/O failure.
  void save_checkpoint(const std::string& path) const;

  /// Reconstructs an explorer from a checkpoint blob.  Validates the blob
  /// digest and the app/platform/options/fault fingerprints — corruption or
  /// any mismatch throws holms::RuntimeError.  The resumed explorer's
  /// continued run is bitwise identical to the uninterrupted one; `opts`
  /// may differ in thread/pool/cache/checkpoint knobs only.
  static IslandExplorer resume(const Application& app,
                               const Platform& platform, IslandOptions opts,
                               const std::vector<std::uint8_t>& blob);
  static IslandExplorer resume_from_file(const Application& app,
                                         const Platform& platform,
                                         IslandOptions opts,
                                         const std::string& path);

 private:
  struct Island {
    noc::Mapping incumbent;      // SA refinement seed for the next epoch
    bool has_best = false;
    DesignCandidate best;        // canonical-order best seen by this island
  };

  IslandExplorer(const Application& app, const Platform& platform,
                 IslandOptions opts, std::uint64_t stream_base, bool resumed);

  void run_epoch();
  void migrate();
  std::uint64_t options_digest() const;
  std::uint64_t fault_fingerprint() const;

  const Application& app_;
  const Platform& platform_;
  IslandOptions opts_;
  std::uint64_t stream_base_ = 0;
  std::uint64_t app_fp_ = 0;
  std::uint64_t platform_fp_ = 0;

  /// SaOptions actually used per refinement: opts_.sa with the platform's
  /// link capacity and (unless the caller supplied one) a pointer to the
  /// explorer-owned shared route table.  heap-owned so the pointer stays
  /// valid if the explorer itself is moved (resume() returns by value).
  noc::SaOptions sa_base_{};
  std::unique_ptr<noc::XyRouteTable> owned_routes_;

  std::vector<Island> islands_;
  ParetoAccumulator acc_;
  std::size_t epoch_ = 0;
  std::uint64_t evaluated_ = 0;
  std::vector<std::pair<std::uint64_t, double>> trajectory_;

  // Execution plumbing (never serialized; resume re-creates it).
  std::unique_ptr<EvalCache> owned_cache_;
  EvalCache* cache_ = nullptr;
  std::unique_ptr<exec::ThreadPool> owned_pool_;
  exec::ThreadPool* pool_ = nullptr;
};

/// Convenience wrapper: run opts.epochs epochs and return the result —
/// the island-model analogue of explore().
ExploreResult explore_islands(const Application& app, const Platform& platform,
                              sim::Rng& rng, const IslandOptions& opts = {});

}  // namespace holms::core
