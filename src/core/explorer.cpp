#include "core/explorer.hpp"

#include <algorithm>
#include <limits>

namespace holms::core {
namespace {

bool dominates(const DesignCandidate& a, const DesignCandidate& b) {
  return a.eval.total_energy_j <= b.eval.total_energy_j &&
         a.eval.schedule.makespan_s <= b.eval.schedule.makespan_s &&
         (a.eval.total_energy_j < b.eval.total_energy_j ||
          a.eval.schedule.makespan_s < b.eval.schedule.makespan_s);
}

}  // namespace

ExploreResult explore(const Application& app, const Platform& platform,
                      sim::Rng& rng, const ExploreOptions& opts) {
  ExploreResult out;
  double best_energy = std::numeric_limits<double>::infinity();

  std::vector<noc::Mapping> candidates;
  candidates.push_back(noc::greedy_mapping(app.graph, platform.mesh,
                                           platform.noc_energy));
  for (std::size_t r = 0; r < opts.restarts; ++r) {
    sim::Rng sa_rng = rng.fork();
    noc::SaOptions sa = opts.sa;
    sa.link_capacity_bps = platform.link_bandwidth_bps;
    candidates.push_back(noc::sa_mapping(app.graph, platform.mesh,
                                         platform.noc_energy, sa_rng, sa));
    candidates.push_back(
        noc::random_mapping(app.graph.num_nodes(), platform.mesh, rng));
  }

  for (const auto& m : candidates) {
    for (const bool dvs : {true, false}) {
      if (!dvs && !opts.try_both_schedulers) continue;
      DesignCandidate c;
      c.mapping = m;
      c.use_dvs = dvs;
      c.eval = evaluate_design(app, platform, m, dvs);
      ++out.evaluated;

      if (c.eval.feasible && c.eval.total_energy_j < best_energy) {
        best_energy = c.eval.total_energy_j;
        out.best = c;
        out.found_feasible = true;
      }
      // Maintain the Pareto front over (energy, makespan) among feasible
      // candidates.
      if (c.eval.feasible) {
        bool dominated = false;
        for (const auto& p : out.pareto) {
          if (dominates(p, c)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          out.pareto.erase(
              std::remove_if(out.pareto.begin(), out.pareto.end(),
                             [&](const DesignCandidate& p) {
                               return dominates(c, p);
                             }),
              out.pareto.end());
          out.pareto.push_back(c);
        }
      }
    }
  }
  std::sort(out.pareto.begin(), out.pareto.end(),
            [](const DesignCandidate& a, const DesignCandidate& b) {
              return a.eval.total_energy_j < b.eval.total_energy_j;
            });
  return out;
}

SynthesisResult synthesize_platform(const Application& app, std::size_t width,
                                    std::size_t height, sim::Rng& rng,
                                    const SynthesisOptions& opts) {
  SynthesisResult out;
  out.platform = Platform::homogeneous(width, height, gpp_tile());
  out.design = explore(app, out.platform, rng, opts.explore);
  out.found_feasible = out.design.found_feasible;

  for (std::size_t step = 0; step < opts.max_upgrades; ++step) {
    if (!out.design.found_feasible) break;
    // Pick the heaviest task whose tile is not yet fully upgraded.
    const noc::Mapping& m = out.design.best.mapping;
    std::size_t target_tile = out.platform.mesh.num_tiles();
    double heaviest = -1.0;
    for (std::size_t i = 0; i < app.graph.num_nodes(); ++i) {
      const TileSpec& spec = out.platform.tiles[m[i]];
      if (spec.type == TileType::kAsic) continue;
      if (app.graph.node(i).compute_cycles > heaviest) {
        heaviest = app.graph.node(i).compute_cycles;
        target_tile = m[i];
      }
    }
    if (target_tile >= out.platform.mesh.num_tiles()) break;

    Platform candidate = out.platform;
    candidate.tiles[target_tile] =
        candidate.tiles[target_tile].type == TileType::kGpp ? asip_tile()
                                                            : asic_tile();
    sim::Rng probe = rng.fork();
    ExploreResult trial = explore(app, candidate, probe, opts.explore);
    const bool within_budget =
        opts.cost_budget <= 0.0 ||
        (trial.found_feasible &&
         trial.best.eval.platform_cost <= opts.cost_budget);
    const bool improves =
        trial.found_feasible &&
        trial.best.eval.total_energy_j < out.design.best.eval.total_energy_j;
    if (!within_budget || !improves) break;

    out.platform = std::move(candidate);
    out.design = std::move(trial);
    out.trace.push_back(SynthesisStep{
        target_tile, out.platform.tiles[target_tile].type,
        out.design.best.eval.total_energy_j,
        out.design.best.eval.platform_cost});
  }
  return out;
}

}  // namespace holms::core
