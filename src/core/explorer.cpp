#include "core/explorer.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "exec/metrics.hpp"
#include "exec/rng_stream.hpp"
#include "exec/thread_pool.hpp"

namespace holms::core {
namespace {

bool dominates(const DesignCandidate& a, const DesignCandidate& b) {
  return a.eval.total_energy_j <= b.eval.total_energy_j &&
         a.eval.schedule.makespan_s <= b.eval.schedule.makespan_s &&
         (a.eval.total_energy_j < b.eval.total_energy_j ||
          a.eval.schedule.makespan_s < b.eval.schedule.makespan_s);
}

/// Serial, index-ordered merge of priced candidates into best + Pareto
/// front.  Runs after the parallel pricing phase, always in job order, which
/// pins the tie-breaks (first minimal-energy candidate wins) independently
/// of which thread priced which job.
void merge_candidate(ExploreResult& out, double& best_energy,
                     DesignCandidate&& c) {
  if (c.eval.feasible && c.eval.total_energy_j < best_energy) {
    best_energy = c.eval.total_energy_j;
    out.best = c;
    out.found_feasible = true;
  }
  // Maintain the Pareto front over (energy, makespan) among feasible
  // candidates.
  if (c.eval.feasible) {
    bool dominated = false;
    for (const auto& p : out.pareto) {
      if (dominates(p, c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      out.pareto.erase(
          std::remove_if(out.pareto.begin(), out.pareto.end(),
                         [&](const DesignCandidate& p) {
                           return dominates(c, p);
                         }),
          out.pareto.end());
      out.pareto.push_back(std::move(c));
    }
  }
}

}  // namespace

ExploreResult explore(const Application& app, const Platform& platform,
                      sim::Rng& rng, const ExploreOptions& opts) {
  opts.validate();
  exec::ScopedTimer timer("explore.seconds");
  ExploreResult out;
  double best_energy = std::numeric_limits<double>::infinity();

  // One base draw; every candidate derives its stream from (base, index) so
  // the schedule of the pool below can never leak into the results.
  const std::uint64_t stream_base = rng.bits();

  exec::ThreadPool* pool = opts.pool;
  std::optional<exec::ThreadPool> local_pool;
  if (pool == nullptr && exec::resolve_threads(opts.threads) > 1) {
    local_pool.emplace(opts.threads);
    pool = &*local_pool;
  }

  // Candidate mappings by index: 0 = greedy seed, then per restart r one SA
  // run (index 1 + 2r) and one random probe (index 2 + 2r).
  const std::size_t num_mappings = 1 + 2 * opts.restarts;
  exec::count("explore.restarts", opts.restarts);
  const std::vector<noc::Mapping> mappings =
      exec::parallel_transform<noc::Mapping>(
          pool, num_mappings, [&](std::size_t i) {
            if (i == 0) {
              return noc::greedy_mapping(app.graph, platform.mesh,
                                         platform.noc_energy);
            }
            sim::Rng stream(exec::stream_seed(stream_base, i));
            if ((i - 1) % 2 == 0) {
              noc::SaOptions sa = opts.sa;
              sa.link_capacity_bps = platform.link_bandwidth_bps;
              return noc::sa_mapping(app.graph, platform.mesh,
                                     platform.noc_energy, stream, sa);
            }
            return noc::random_mapping(app.graph.num_nodes(), platform.mesh,
                                       stream);
          });

  // Pricing jobs: for each mapping, the DVS variant then (optionally) EDF —
  // the same enumeration order the serial explorer used.
  struct Job {
    std::size_t mapping = 0;
    bool use_dvs = true;
  };
  std::vector<Job> jobs;
  jobs.reserve(num_mappings * 2);
  for (std::size_t m = 0; m < num_mappings; ++m) {
    jobs.push_back(Job{m, true});
    if (opts.try_both_schedulers) jobs.push_back(Job{m, false});
  }

  EvalCache* cache = opts.cache;
  std::optional<EvalCache> local_cache;
  if (cache == nullptr && opts.use_cache) {
    local_cache.emplace();
    cache = &*local_cache;
  }
  const std::uint64_t app_fp = cache ? app_fingerprint(app) : 0;
  const std::uint64_t plat_fp = cache ? platform_fingerprint(platform) : 0;

  std::vector<Evaluation> evals = exec::parallel_transform<Evaluation>(
      pool, jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        if (cache) {
          return cache->evaluate(app, app_fp, platform, plat_fp,
                                 mappings[job.mapping], job.use_dvs);
        }
        return evaluate_design(app, platform, mappings[job.mapping],
                               job.use_dvs);
      });
  exec::count("explore.candidates", jobs.size());

  // Robustness pass: replay each (still feasible) candidate through R
  // ambient fault replicas.  The replicas are independent schedules derived
  // from (ambient.seed, replica) — candidate j's score never depends on the
  // thread schedule, so thread-count invariance is preserved.
  std::vector<double> availability(jobs.size(), 1.0);
  if (opts.faults != nullptr && opts.faults->replicas > 0) {
    const FaultScenario& fs = *opts.faults;
    std::vector<fault::FaultSchedule> schedules;
    schedules.reserve(fs.replicas);
    fault::FaultSchedule::PoissonSpec spec;
    spec.target = fault::Target::kTile;
    spec.num_targets = platform.mesh.num_tiles();
    spec.fail_rate = 1.0 / fs.ambient.tile_mtbf_s;
    spec.repair_rate =
        fs.ambient.tile_mttr_s > 0.0 ? 1.0 / fs.ambient.tile_mttr_s : 0.0;
    spec.horizon = fs.ambient.duration_s;
    for (std::size_t r = 0; r < fs.replicas; ++r) {
      schedules.push_back(fault::FaultSchedule::poisson(
          exec::stream_seed(fs.ambient.seed, r), spec));
    }
    const std::size_t total = jobs.size() * fs.replicas;
    const std::vector<double> avail_runs = exec::parallel_transform<double>(
        pool, total, [&](std::size_t i) {
          const std::size_t j = i / fs.replicas;
          const std::size_t r = i % fs.replicas;
          if (!evals[j].feasible) return 1.0;  // deterministic skip
          AmbientOptions aopts;
          aopts.schedule = &schedules[r];
          aopts.initial_mapping = &mappings[jobs[j].mapping];
          aopts.use_dvs = jobs[j].use_dvs;
          return run_ambient_scenario(app, platform, fs.policy, fs.ambient,
                                      aopts)
              .availability;
        });
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < fs.replicas; ++r) {
        // HOLMS_LINT_ALLOW(D006): mean over a job's replica runs in fixed replica order
        sum += avail_runs[j * fs.replicas + r];
      }
      availability[j] = sum / static_cast<double>(fs.replicas);
    }
    exec::count("explore.fault_replicas", total);
  }

  out.evaluated = jobs.size();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    DesignCandidate c;
    c.mapping = mappings[jobs[j].mapping];
    c.use_dvs = jobs[j].use_dvs;
    c.eval = std::move(evals[j]);
    c.availability = availability[j];
    if (opts.faults != nullptr &&
        c.availability < opts.faults->min_availability) {
      c.eval.feasible = false;  // robust-infeasible: can't meet uptime floor
    }
    merge_candidate(out, best_energy, std::move(c));
  }
  std::sort(out.pareto.begin(), out.pareto.end(),
            [](const DesignCandidate& a, const DesignCandidate& b) {
              return a.eval.total_energy_j < b.eval.total_energy_j;
            });
  return out;
}

SynthesisResult synthesize_platform(const Application& app, std::size_t width,
                                    std::size_t height, sim::Rng& rng,
                                    const SynthesisOptions& opts) {
  opts.validate();
  exec::ScopedTimer timer("synthesize.seconds");
  SynthesisResult out;
  out.platform = Platform::homogeneous(width, height, gpp_tile());

  // One evaluation cache spans the whole synthesis: every upgrade trial
  // re-prices the greedy seed mapping (and often the same SA results) on
  // mostly-unchanged platforms, and identical (platform, mapping, scheduler)
  // triples are only priced once across all steps and threads.
  EvalCache shared_cache;
  exec::ThreadPool* pool = nullptr;
  std::optional<exec::ThreadPool> local_pool;
  if (exec::resolve_threads(opts.threads) > 1) {
    local_pool.emplace(opts.threads);
    pool = &*local_pool;
  }
  ExploreOptions inner = opts.explore;
  if (inner.cache == nullptr) inner.cache = &shared_cache;
  if (pool != nullptr) {
    // Upgrade candidates are the parallel axis; nested pools would only
    // oversubscribe (determinism holds either way).
    inner.threads = 1;
    inner.pool = nullptr;
  }

  out.design = explore(app, out.platform, rng, inner);
  out.found_feasible = out.design.found_feasible;

  for (std::size_t step = 0; step < opts.max_upgrades; ++step) {
    if (!out.design.found_feasible) break;
    // Candidate upgrades: every tile hosting at least one task that is not
    // yet fully upgraded, ordered by the heaviest task it hosts (the legacy
    // serial heuristic's pick comes first, so its tie-break is preserved).
    const noc::Mapping& m = out.design.best.mapping;
    std::vector<std::size_t> tiles;
    std::vector<double> weight(out.platform.mesh.num_tiles(), -1.0);
    for (std::size_t i = 0; i < app.graph.num_nodes(); ++i) {
      const std::size_t tile = m[i];
      if (out.platform.tiles[tile].type == TileType::kAsic) continue;
      if (weight[tile] < 0.0) tiles.push_back(tile);
      weight[tile] = std::max(weight[tile], app.graph.node(i).compute_cycles);
    }
    std::sort(tiles.begin(), tiles.end(), [&](std::size_t a, std::size_t b) {
      if (weight[a] != weight[b]) return weight[a] > weight[b];
      return a < b;
    });
    if (tiles.empty()) break;
    exec::count("synthesize.upgrade_candidates", tiles.size());

    struct Trial {
      Platform platform;
      ExploreResult design;
    };
    const std::uint64_t stream_base = rng.bits();
    std::vector<Trial> trials = exec::parallel_transform<Trial>(
        pool, tiles.size(), [&](std::size_t c) {
          Trial t;
          t.platform = out.platform;
          TileSpec& spec = t.platform.tiles[tiles[c]];
          spec = spec.type == TileType::kGpp ? asip_tile() : asic_tile();
          sim::Rng probe(exec::stream_seed(stream_base, c));
          t.design = explore(app, t.platform, probe, inner);
          return t;
        });

    // Deterministic accept: the lowest-energy improving trial within
    // budget; ties break toward the earlier candidate index.
    std::size_t chosen = trials.size();
    for (std::size_t c = 0; c < trials.size(); ++c) {
      const Trial& t = trials[c];
      if (!t.design.found_feasible) continue;
      const bool within_budget =
          opts.cost_budget <= 0.0 ||
          t.design.best.eval.platform_cost <= opts.cost_budget;
      const bool improves = t.design.best.eval.total_energy_j <
                            out.design.best.eval.total_energy_j;
      if (!within_budget || !improves) continue;
      if (chosen == trials.size() ||
          t.design.best.eval.total_energy_j <
              trials[chosen].design.best.eval.total_energy_j) {
        chosen = c;
      }
    }
    if (chosen == trials.size()) break;

    out.platform = std::move(trials[chosen].platform);
    out.design = std::move(trials[chosen].design);
    out.trace.push_back(SynthesisStep{
        tiles[chosen], out.platform.tiles[tiles[chosen]].type,
        out.design.best.eval.total_energy_j,
        out.design.best.eval.platform_cost});
    exec::count("synthesize.upgrades_accepted");
  }
  return out;
}

}  // namespace holms::core
