#include "core/explorer.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>

#include "exec/metrics.hpp"
#include "exec/rng_stream.hpp"
#include "exec/thread_pool.hpp"

namespace holms::core {
namespace {

bool dominates(const DesignCandidate& a, const DesignCandidate& b) {
  return a.eval.total_energy_j <= b.eval.total_energy_j &&
         a.eval.schedule.makespan_s <= b.eval.schedule.makespan_s &&
         (a.eval.total_energy_j < b.eval.total_energy_j ||
          a.eval.schedule.makespan_s < b.eval.schedule.makespan_s);
}

}  // namespace

std::uint64_t mapping_digest(const noc::Mapping& m) {
  std::uint64_t h = 0x6d61707066703164ULL;  // "mapfp1d"
  for (const std::size_t tile : m) h = exec::splitmix64(h ^ tile);
  return h;
}

bool candidate_precedes(const DesignCandidate& a, const DesignCandidate& b) {
  if (a.eval.feasible != b.eval.feasible) return a.eval.feasible;
  if (a.eval.total_energy_j != b.eval.total_energy_j) {
    return a.eval.total_energy_j < b.eval.total_energy_j;
  }
  const std::uint64_t da = mapping_digest(a.mapping);
  const std::uint64_t db = mapping_digest(b.mapping);
  if (da != db) return da < db;
  return static_cast<int>(a.use_dvs) < static_cast<int>(b.use_dvs);
}

void ParetoAccumulator::merge(DesignCandidate c) {
  if (c.eval.feasible && c.eval.total_energy_j < best_energy) {
    best_energy = c.eval.total_energy_j;
    best = c;
    found_feasible = true;
  }
  // Maintain the Pareto front over (energy, makespan) among feasible
  // candidates.
  if (c.eval.feasible) {
    bool dominated = false;
    for (const auto& p : front) {
      if (dominates(p, c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      front.erase(std::remove_if(front.begin(), front.end(),
                                 [&](const DesignCandidate& p) {
                                   return dominates(c, p);
                                 }),
                  front.end());
      front.push_back(std::move(c));
    }
  }
}

void score_fault_robustness(const Application& app, const Platform& platform,
                            const FaultScenario& fs, exec::ThreadPool* pool,
                            std::vector<DesignCandidate>& candidates) {
  if (fs.replicas == 0 || candidates.empty()) return;
  std::vector<fault::FaultSchedule> derived;
  std::vector<const fault::FaultSchedule*> schedules(fs.replicas, fs.schedule);
  std::vector<AmbientConfig> cfgs(fs.replicas, fs.ambient);
  if (fs.schedule == nullptr) {
    derived.reserve(fs.replicas);
    fault::FaultSchedule::PoissonSpec spec;
    spec.target = fault::Target::kTile;
    spec.num_targets = platform.mesh.num_tiles();
    spec.fail_rate = 1.0 / fs.ambient.tile_mtbf_s;
    spec.repair_rate =
        fs.ambient.tile_mttr_s > 0.0 ? 1.0 / fs.ambient.tile_mttr_s : 0.0;
    spec.horizon = fs.ambient.duration_s;
    for (std::size_t r = 0; r < fs.replicas; ++r) {
      derived.push_back(fault::FaultSchedule::poisson(
          exec::stream_seed(fs.ambient.seed, r), spec));
      schedules[r] = &derived[r];
    }
  } else {
    // Shared schedule: the fault events are identical per replica, so the
    // replicas sample the *user-activity* axis instead.
    for (std::size_t r = 0; r < fs.replicas; ++r) {
      cfgs[r].seed = exec::stream_seed(fs.ambient.seed, r);
    }
  }

  // Replay-cursor reuse: SA restarts routinely converge onto the same
  // mapping, and both scheduler variants of one mapping share it too when
  // use_dvs matches — replaying the identical (schedule, mapping, dvs)
  // triple once per replica is pure waste.  Key each candidate's replay off
  // the schedule fingerprints + mapping digest and run only the first
  // candidate of every key; the rest reuse its scores bitwise.
  std::uint64_t sched_fp = exec::splitmix64(fs.replicas);
  for (std::size_t r = 0; r < fs.replicas; ++r) {
    sched_fp = exec::splitmix64(sched_fp ^ schedules[r]->fingerprint() ^
                                cfgs[r].seed);
  }
  constexpr std::size_t kSkip = static_cast<std::size_t>(-1);
  std::vector<std::size_t> rep(candidates.size(), kSkip);
  std::vector<std::size_t> unique_jobs;
  std::unordered_map<std::uint64_t, std::size_t> first_slot;
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (!candidates[j].eval.feasible) continue;  // deterministic skip
    const std::uint64_t key = exec::splitmix64(
        sched_fp ^ mapping_digest(candidates[j].mapping) ^
        (candidates[j].use_dvs ? 0x9e3779b97f4a7c15ULL
                               : 0x51ed270b7a9f3cd1ULL));
    const auto it = first_slot.find(key);
    if (it == first_slot.end()) {
      first_slot.emplace(key, unique_jobs.size());
      rep[j] = unique_jobs.size();
      unique_jobs.push_back(j);
    } else {
      rep[j] = it->second;
    }
  }

  struct ReplayScore {
    double availability = 1.0;
    std::uint64_t windows = 0;
    std::uint64_t windows_met = 0;
    double worst_window = 1.0;
  };
  const std::size_t total = unique_jobs.size() * fs.replicas;
  const std::vector<ReplayScore> runs =
      exec::parallel_transform<ReplayScore>(pool, total, [&](std::size_t i) {
        const DesignCandidate& c = candidates[unique_jobs[i / fs.replicas]];
        const std::size_t r = i % fs.replicas;
        AmbientOptions aopts;
        aopts.schedule = schedules[r];
        aopts.initial_mapping = &c.mapping;
        aopts.use_dvs = c.use_dvs;
        const AmbientResult res =
            run_ambient_scenario(app, platform, fs.policy, cfgs[r], aopts);
        ReplayScore score;
        score.availability = res.availability;
        if (fs.slo_window > 0) {
          const SloScore slo = availability_slo(res.period_ok, fs.slo_target,
                                                fs.slo_window);
          score.windows = slo.windows;
          score.windows_met = slo.windows_met;
          score.worst_window = slo.worst_window_availability;
        }
        return score;
      });
  std::vector<double> availability(unique_jobs.size(), 1.0);
  std::vector<double> slo_fraction(unique_jobs.size(), 1.0);
  std::vector<double> worst_window(unique_jobs.size(), 1.0);
  for (std::size_t u = 0; u < unique_jobs.size(); ++u) {
    double sum = 0.0;
    std::uint64_t windows = 0, windows_met = 0;
    double worst = 1.0;
    for (std::size_t r = 0; r < fs.replicas; ++r) {
      const ReplayScore& s = runs[u * fs.replicas + r];
      sum += s.availability;
      windows += s.windows;
      windows_met += s.windows_met;
      worst = std::min(worst, s.worst_window);
    }
    availability[u] = sum / static_cast<double>(fs.replicas);
    slo_fraction[u] = windows > 0 ? static_cast<double>(windows_met) /
                                        static_cast<double>(windows)
                                  : 1.0;
    worst_window[u] = worst;
  }
  // Fan the unique scores back out to every aliased candidate and apply the
  // scenario floors (infeasible inputs keep their perfect defaults).
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (rep[j] == kSkip) continue;
    DesignCandidate& c = candidates[j];
    c.availability = availability[rep[j]];
    c.slo_fraction = slo_fraction[rep[j]];
    c.worst_window_availability = worst_window[rep[j]];
    if (c.availability < fs.min_availability) {
      c.eval.feasible = false;  // robust-infeasible: can't meet uptime floor
    }
    if (fs.slo_window > 0 && c.slo_fraction < fs.min_slo_fraction) {
      c.eval.feasible = false;  // mean may pass, the SLO windows do not
    }
  }
  exec::count("explore.fault_replicas", total);
  exec::count("explore.fault_replays_reused",
              (candidates.size() - unique_jobs.size()) * fs.replicas);
}

ExploreResult explore(const Application& app, const Platform& platform,
                      sim::Rng& rng, const ExploreOptions& opts) {
  opts.validate();
  exec::ScopedTimer timer("explore.seconds");
  ExploreResult out;

  // One base draw; every candidate derives its stream from (base, index) so
  // the schedule of the pool below can never leak into the results.
  const std::uint64_t stream_base = rng.bits();

  exec::ThreadPool* pool = opts.pool;
  std::optional<exec::ThreadPool> local_pool;
  if (pool == nullptr && exec::resolve_threads(opts.threads) > 1) {
    local_pool.emplace(opts.threads);
    pool = &*local_pool;
  }

  // Candidate mappings by index: 0 = greedy seed, then per restart r one SA
  // run (index 1 + 2r) and one random probe (index 2 + 2r).
  const std::size_t num_mappings = 1 + 2 * opts.restarts;
  exec::count("explore.restarts", opts.restarts);

  // One SaOptions copy and one route table for every restart: the table is
  // O(tiles^2 * mean_hops) — ~90 MB at 32x32 — so per-restart construction
  // would multiply that by the pool width.
  noc::SaOptions sa_base = opts.sa;
  sa_base.link_capacity_bps = platform.link_bandwidth_bps;
  std::optional<noc::XyRouteTable> shared_routes;
  if (opts.restarts > 0 && sa_base.routes == nullptr) {
    shared_routes.emplace(platform.mesh);
    sa_base.routes = &*shared_routes;
  }

  const std::vector<noc::Mapping> mappings =
      exec::parallel_transform<noc::Mapping>(
          pool, num_mappings, [&](std::size_t i) {
            if (i == 0) {
              return noc::greedy_mapping(app.graph, platform.mesh,
                                         platform.noc_energy);
            }
            sim::Rng stream(exec::stream_seed(stream_base, i));
            if ((i - 1) % 2 == 0) {
              return noc::sa_mapping(app.graph, platform.mesh,
                                     platform.noc_energy, stream, sa_base);
            }
            return noc::random_mapping(app.graph.num_nodes(), platform.mesh,
                                       stream);
          });

  // Pricing jobs: for each mapping, the DVS variant then (optionally) EDF —
  // the same enumeration order the serial explorer used.
  struct Job {
    std::size_t mapping = 0;
    bool use_dvs = true;
  };
  std::vector<Job> jobs;
  jobs.reserve(num_mappings * 2);
  for (std::size_t m = 0; m < num_mappings; ++m) {
    jobs.push_back(Job{m, true});
    if (opts.try_both_schedulers) jobs.push_back(Job{m, false});
  }

  EvalCache* cache = opts.cache;
  std::optional<EvalCache> local_cache;
  if (cache == nullptr && opts.use_cache) {
    local_cache.emplace();
    cache = &*local_cache;
  }
  const std::uint64_t app_fp = cache ? app_fingerprint(app) : 0;
  const std::uint64_t plat_fp = cache ? platform_fingerprint(platform) : 0;

  std::vector<Evaluation> evals = exec::parallel_transform<Evaluation>(
      pool, jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        if (cache) {
          return cache->evaluate(app, app_fp, platform, plat_fp,
                                 mappings[job.mapping], job.use_dvs);
        }
        return evaluate_design(app, platform, mappings[job.mapping],
                               job.use_dvs);
      });
  exec::count("explore.candidates", jobs.size());

  std::vector<DesignCandidate> candidates(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    candidates[j].mapping = mappings[jobs[j].mapping];
    candidates[j].use_dvs = jobs[j].use_dvs;
    candidates[j].eval = std::move(evals[j]);
  }

  // Robustness pass: replay each (still feasible) candidate through R
  // ambient fault replicas — either independent Poisson schedules derived
  // from (ambient.seed, replica) or one shared schedule (burst/crew traces)
  // with per-replica activity seeds.  Candidate j's score never depends on
  // the thread schedule, so thread-count invariance is preserved.
  if (opts.faults != nullptr) {
    score_fault_robustness(app, platform, *opts.faults, pool, candidates);
  }

  out.evaluated = jobs.size();
  ParetoAccumulator acc;
  for (DesignCandidate& c : candidates) acc.merge(std::move(c));
  out.best = std::move(acc.best);
  out.found_feasible = acc.found_feasible;
  out.pareto = std::move(acc.front);
  std::sort(out.pareto.begin(), out.pareto.end(),
            [](const DesignCandidate& a, const DesignCandidate& b) {
              return a.eval.total_energy_j < b.eval.total_energy_j;
            });
  return out;
}

SynthesisResult synthesize_platform(const Application& app, std::size_t width,
                                    std::size_t height, sim::Rng& rng,
                                    const SynthesisOptions& opts) {
  opts.validate();
  exec::ScopedTimer timer("synthesize.seconds");
  SynthesisResult out;
  out.platform = Platform::homogeneous(width, height, gpp_tile());

  // One evaluation cache spans the whole synthesis: every upgrade trial
  // re-prices the greedy seed mapping (and often the same SA results) on
  // mostly-unchanged platforms, and identical (platform, mapping, scheduler)
  // triples are only priced once across all steps and threads.
  EvalCache shared_cache;
  exec::ThreadPool* pool = nullptr;
  std::optional<exec::ThreadPool> local_pool;
  if (exec::resolve_threads(opts.threads) > 1) {
    local_pool.emplace(opts.threads);
    pool = &*local_pool;
  }
  ExploreOptions inner = opts.explore;
  if (inner.cache == nullptr) inner.cache = &shared_cache;
  if (pool != nullptr) {
    // Upgrade candidates are the parallel axis; nested pools would only
    // oversubscribe (determinism holds either way).
    inner.threads = 1;
    inner.pool = nullptr;
  }

  out.design = explore(app, out.platform, rng, inner);
  out.found_feasible = out.design.found_feasible;

  for (std::size_t step = 0; step < opts.max_upgrades; ++step) {
    if (!out.design.found_feasible) break;
    // Candidate upgrades: every tile hosting at least one task that is not
    // yet fully upgraded, ordered by the heaviest task it hosts (the legacy
    // serial heuristic's pick comes first, so its tie-break is preserved).
    const noc::Mapping& m = out.design.best.mapping;
    std::vector<std::size_t> tiles;
    std::vector<double> weight(out.platform.mesh.num_tiles(), -1.0);
    for (std::size_t i = 0; i < app.graph.num_nodes(); ++i) {
      const std::size_t tile = m[i];
      if (out.platform.tiles[tile].type == TileType::kAsic) continue;
      if (weight[tile] < 0.0) tiles.push_back(tile);
      weight[tile] = std::max(weight[tile], app.graph.node(i).compute_cycles);
    }
    std::sort(tiles.begin(), tiles.end(), [&](std::size_t a, std::size_t b) {
      if (weight[a] != weight[b]) return weight[a] > weight[b];
      return a < b;
    });
    if (tiles.empty()) break;
    exec::count("synthesize.upgrade_candidates", tiles.size());

    struct Trial {
      Platform platform;
      ExploreResult design;
    };
    const std::uint64_t stream_base = rng.bits();
    std::vector<Trial> trials = exec::parallel_transform<Trial>(
        pool, tiles.size(), [&](std::size_t c) {
          Trial t;
          t.platform = out.platform;
          TileSpec& spec = t.platform.tiles[tiles[c]];
          spec = spec.type == TileType::kGpp ? asip_tile() : asic_tile();
          sim::Rng probe(exec::stream_seed(stream_base, c));
          t.design = explore(app, t.platform, probe, inner);
          return t;
        });

    // Deterministic accept: the lowest-energy improving trial within
    // budget; ties break toward the earlier candidate index.
    std::size_t chosen = trials.size();
    for (std::size_t c = 0; c < trials.size(); ++c) {
      const Trial& t = trials[c];
      if (!t.design.found_feasible) continue;
      const bool within_budget =
          opts.cost_budget <= 0.0 ||
          t.design.best.eval.platform_cost <= opts.cost_budget;
      const bool improves = t.design.best.eval.total_energy_j <
                            out.design.best.eval.total_energy_j;
      if (!within_budget || !improves) continue;
      if (chosen == trials.size() ||
          t.design.best.eval.total_energy_j <
              trials[chosen].design.best.eval.total_energy_j) {
        chosen = c;
      }
    }
    if (chosen == trials.size()) break;

    out.platform = std::move(trials[chosen].platform);
    out.design = std::move(trials[chosen].design);
    out.trace.push_back(SynthesisStep{
        tiles[chosen], out.platform.tiles[tiles[chosen]].type,
        out.design.best.eval.total_energy_j,
        out.design.best.eval.platform_cost});
    exec::count("synthesize.upgrades_accepted");
  }
  return out;
}

}  // namespace holms::core
