#pragma once
// Ambient-multimedia extension (paper §5): resource-constrained operation
// with failing parts and non-deterministic users.
//
// "they should be completely embedded into the environment, able to operate
//  with limited resources and failing parts ... Since users tend to behave
//  non-deterministically, there is room for stochastic modeling based on
//  capturing the uncertainty in users behavior."  [33][34]
//
// The scenario runs an application for many periods.  Tiles fail at Poisson
// times; user activity is a sticky Markov chain that scales the workload.
// Two policies are compared: a static design (mapping fixed at design time,
// tasks on dead tiles simply fail) and an adaptive one that remaps tasks off
// failed tiles at run time — the fault-tolerant ambient-intelligence
// behaviour of [33].

#include <cstddef>

#include "core/evaluator.hpp"
#include "sim/random.hpp"

namespace holms::core {

enum class FaultPolicy { kStatic, kAdaptiveRemap };

struct AmbientConfig {
  double duration_s = 3600.0;
  double tile_mtbf_s = 1800.0;    // per-tile mean time between failures
  // User activity states scale every task's cycles.
  double activity_low = 0.4;
  double activity_high = 1.0;
  double activity_switch_prob = 0.05;  // per period
  std::uint64_t seed = 7;
};

struct AmbientResult {
  std::size_t periods = 0;
  std::size_t periods_ok = 0;        // deadline met and all tasks placed
  std::size_t periods_degraded = 0;  // ran, but missed the deadline
  std::size_t periods_failed = 0;    // some task had no live tile
  double availability = 0.0;         // periods_ok / periods
  double energy_j = 0.0;
  std::size_t failures_injected = 0;
  std::size_t remaps_performed = 0;
};

/// Runs the ambient scenario under the given fault-handling policy.
AmbientResult run_ambient_scenario(const Application& app,
                                   const Platform& platform,
                                   FaultPolicy policy,
                                   const AmbientConfig& cfg);

}  // namespace holms::core
