#pragma once
// Ambient-multimedia extension (paper §5): resource-constrained operation
// with failing parts and non-deterministic users.
//
// "they should be completely embedded into the environment, able to operate
//  with limited resources and failing parts ... Since users tend to behave
//  non-deterministically, there is room for stochastic modeling based on
//  capturing the uncertainty in users behavior."  [33][34]
//
// The scenario runs an application for many periods.  Tiles fail at Poisson
// times; user activity is a sticky Markov chain that scales the workload.
// Two policies are compared: a static design (mapping fixed at design time,
// tasks on dead tiles simply fail) and an adaptive one that remaps tasks off
// failed tiles at run time — the fault-tolerant ambient-intelligence
// behaviour of [33].

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/evaluator.hpp"
#include "fault/schedule.hpp"
#include "sim/random.hpp"

namespace holms::core {

enum class FaultPolicy { kStatic, kAdaptiveRemap };

struct AmbientConfig {
  double duration_s = 3600.0;
  double tile_mtbf_s = 1800.0;    // per-tile mean time between failures
  double tile_mttr_s = 0.0;       // mean time to repair (0 = permanent)
  // User activity states scale every task's cycles.
  double activity_low = 0.4;
  double activity_high = 1.0;
  double activity_switch_prob = 0.05;  // per period
  std::uint64_t seed = 7;
};

struct AmbientResult {
  std::size_t periods = 0;
  std::size_t periods_ok = 0;        // deadline met and all tasks placed
  std::size_t periods_degraded = 0;  // ran, but missed the deadline
  std::size_t periods_failed = 0;    // some task had no live tile
  // Of the degraded periods, how many missed their deadline while tasks were
  // displaced from their design-time tiles by faults (as opposed to plain
  // load pressure).  Always <= periods_degraded; the partition invariant
  // periods_ok + periods_degraded + periods_failed == periods is unaffected.
  std::size_t periods_fault_degraded = 0;
  double availability = 0.0;         // periods_ok / periods
  double energy_j = 0.0;
  std::size_t failures_injected = 0;
  std::size_t repairs_applied = 0;   // tile-repair events consumed
  std::size_t remaps_performed = 0;
  std::size_t soft_faults_seen = 0;  // transient kSoftFail events replayed
  std::size_t scrubs_seen = 0;       // kScrub events replayed
  /// Per-period outcome bits (1 = period ok), in period order — the raw
  /// trace availability_slo() scores.  Mean availability hides bursts:
  /// windowed scoring over this vector is what distinguishes "0.999 on
  /// average" from "met the SLO in every window".
  std::vector<std::uint8_t> period_ok;
};

/// Windowed availability-SLO score over a per-period outcome trace.
/// Counters are integers so replica aggregation needs no FP accumulation:
/// sum `windows_met`/`windows` across replicas and divide once.
struct SloScore {
  std::size_t windows = 0;      // tumbling windows scored (last may be short)
  std::size_t windows_met = 0;  // windows with availability >= target
  std::size_t window = 0;       // window length used, in periods
  double slo_fraction = 1.0;    // windows_met / windows (1.0 when no windows)
  double worst_window_availability = 1.0;
};

/// Scores `period_ok` against an availability `target` over tumbling
/// windows of `window` periods (the final partial window is scored over its
/// actual length).  `target` must be in (0, 1], `window` >= 1.  An empty
/// trace yields zero windows and the vacuous perfect score.
SloScore availability_slo(const std::vector<std::uint8_t>& period_ok,
                          double target, std::size_t window);

/// Optional inputs for the ambient scenario.
struct AmbientOptions {
  /// Shared fault schedule (Target::kTile, times in seconds, ids = tiles;
  /// out-of-range ids throw).  Null derives a Poisson schedule from
  /// AmbientConfig (tile_mtbf_s / tile_mttr_s / seed), which is what the
  /// legacy 4-argument calls get.
  const fault::FaultSchedule* schedule = nullptr;
  /// Design-time mapping to stress (null = greedy mapping), e.g. a candidate
  /// from explore() being scored for availability.
  const noc::Mapping* initial_mapping = nullptr;
  bool use_dvs = true;

  /// Contract rule C001.  Both pointers are optional by design and id ranges
  /// can only be checked against a platform, which run_ambient_scenario does;
  /// nothing to reject here.
  void validate() const {}
};

/// Runs the ambient scenario under the given fault-handling policy.
AmbientResult run_ambient_scenario(const Application& app,
                                   const Platform& platform,
                                   FaultPolicy policy,
                                   const AmbientConfig& cfg,
                                   const AmbientOptions& opts = {});

}  // namespace holms::core
