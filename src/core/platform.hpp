#pragma once
// Platform model of the holistic design methodology (paper §1/§2).
//
// "emerging design platforms consisting of hardware and software resources
//  that can be shared across multiple multimedia applications ... consist of
//  fixed processing resources (e.g. ASICs) and programmable resources (e.g.
//  general-purpose or DSP processors)."
//
// A Platform is a 2D-mesh NoC of heterogeneous tiles; each tile has a
// resource class that scales how fast (and how efficiently) it executes a
// task's cycles, mirroring the GPP / DSP-ASIP / ASIC spectrum of §3.

#include <string>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "noc/topology.hpp"

namespace holms::core {

enum class TileType { kGpp, kAsip, kAsic, kMemory };

/// Efficiency of a resource class relative to a GPP executing the same task.
/// `unit_cost` is a relative manufacturing/NRE-amortized cost (paper §1:
/// "the designing and manufacturing costs are increasingly important") —
/// ASICs buy efficiency with cost and design time, ASIPs sit in between.
struct TileSpec {
  TileType type = TileType::kGpp;
  double speedup = 1.0;        // cycles shrink by this factor
  double energy_factor = 1.0;  // energy per cycle relative to GPP
  double unit_cost = 1.0;      // relative cost of instantiating this tile
};

inline TileSpec gpp_tile() { return {TileType::kGpp, 1.0, 1.0, 1.0}; }
inline TileSpec asip_tile() { return {TileType::kAsip, 4.0, 0.45, 1.8}; }
inline TileSpec asic_tile() { return {TileType::kAsic, 12.0, 0.12, 5.0}; }
inline TileSpec memory_tile() { return {TileType::kMemory, 1.0, 0.3, 0.7}; }

/// The complete architecture: mesh + per-tile resources + interconnect and
/// DVFS characteristics.
struct Platform {
  noc::Mesh2D mesh{4, 4};
  std::vector<TileSpec> tiles;            // size == mesh.num_tiles()
  std::vector<dvfs::OperatingPoint> points = dvfs::xscale_points();
  dvfs::PowerModel power{};
  noc::EnergyModel noc_energy{};
  double link_bandwidth_bps = 2e9;
  double hop_latency_s = 5e-9;

  /// Uniform platform helper: w x h mesh of identical tiles.
  static Platform homogeneous(std::size_t w, std::size_t h,
                              TileSpec spec = gpp_tile()) {
    Platform p;
    p.mesh = noc::Mesh2D(w, h);
    p.tiles.assign(p.mesh.num_tiles(), spec);
    return p;
  }
};

std::string tile_type_name(TileType t);

}  // namespace holms::core
