#pragma once
// The unified evaluator of the holistic methodology (paper §2):
//
// "Simply speaking, designing a multimedia system consists of mapping the
//  target application, onto a given implementation architecture, while
//  satisfying a prescribed set of design constraints (e.g. power,
//  performance, cost, etc.)."
//
// Given an Application (task graph + period + QoS requirements) and a
// Platform, an Evaluation prices one candidate mapping: schedule (EDF or
// energy-aware DVS), communication energy over the NoC, and QoS verdicts.
//
// HOLMS_LINT_ALLOW_FILE(D005): the EvalCache shards below are guarded by
// short-critical-section mutexes shared by explorer worker threads; this is
// memoization plumbing on the exploration path, never on the serve/session
// path, and converting it to the FOM discipline would buy nothing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/platform.hpp"
#include "noc/mapping.hpp"
#include "noc/scheduling.hpp"
#include "noc/taskgraph.hpp"

namespace holms::core {

/// QoS requirements the design must satisfy (paper §2: latency, jitter,
/// loss; here the schedulable subset — end-to-end deadline and power cap).
struct QosRequirement {
  double period_s = 0.04;        // application iteration period == deadline
  double max_power_w = 0.0;      // 0 = unconstrained average power
  double max_cost = 0.0;         // 0 = unconstrained platform cost (§1)
};

/// A multimedia application: communicating tasks plus its QoS contract.
struct Application {
  noc::AppGraph graph;
  QosRequirement qos{};
  std::string name = "app";
};

struct Evaluation {
  noc::MappingEval comm;
  noc::ScheduleResult schedule;
  double total_energy_j = 0.0;   // per period
  double average_power_w = 0.0;
  double platform_cost = 0.0;    // sum of unit costs of the tiles in use
  bool deadline_met = false;
  bool power_met = false;
  bool cost_met = false;
  bool feasible = false;         // all constraints and bandwidth
};

/// Builds the scheduling problem a mapping induces on a platform
/// (tile speedups shrink task cycles; memory tiles execute nothing).
noc::SchedProblem make_sched_problem(const Application& app,
                                     const Platform& platform,
                                     const noc::Mapping& mapping);

/// Prices one mapping.  `use_dvs` selects the energy-aware scheduler.
///
/// Thread-safety: pure function of its arguments — it reads the app,
/// platform and mapping through const references, touches no global or
/// static state, and allocates all working state locally (the same holds
/// transitively for noc::evaluate_mapping and both schedulers).  Concurrent
/// calls on shared inputs are safe, which is what lets the explorer price
/// candidates on a holms::exec::ThreadPool.
Evaluation evaluate_design(const Application& app, const Platform& platform,
                           const noc::Mapping& mapping, bool use_dvs);

/// Order-independent 64-bit fingerprints used as evaluation-cache keys.
/// Two platforms (or applications) with equal fingerprints are treated as
/// interchangeable by the cache; the fingerprint folds every field that
/// evaluate_design reads, so differing inputs collide only with ~2^-64
/// probability (mappings, by contrast, are compared exactly).
std::uint64_t platform_fingerprint(const Platform& platform);
std::uint64_t app_fingerprint(const Application& app);

/// Sharded memoization cache for evaluate_design: SA restarts and the
/// synthesis loop revisit identical (mapping, scheduler, platform) triples
/// — most prominently the greedy seed mapping, re-priced once per upgrade
/// trial — and re-pricing means re-running the list scheduler.  Keys are
/// (app fingerprint, platform fingerprint, scheduler flag, exact mapping);
/// the mapping is compared element-wise, so a cache hit returns a value
/// bitwise-identical to a fresh evaluation.  Shard count fixed at
/// construction; each shard has its own mutex so concurrent explorer
/// threads rarely contend.
class EvalCache {
 public:
  explicit EvalCache(std::size_t shards = 16);

  /// Returns the cached evaluation or computes, stores and returns it.
  Evaluation evaluate(const Application& app, std::uint64_t app_fp,
                      const Platform& platform, std::uint64_t platform_fp,
                      const noc::Mapping& mapping, bool use_dvs);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries actually added (misses minus same-key compute races).  Also the
  /// cache "generation" the island checkpoints record: it only grows, so a
  /// resumed process can tell how much memoized state it is rebuilding.
  std::uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  struct Key {
    std::uint64_t app_fp = 0;
    std::uint64_t platform_fp = 0;
    bool use_dvs = false;
    noc::Mapping mapping;
    bool operator==(const Key& o) const {
      return app_fp == o.app_fp && platform_fp == o.platform_fp &&
             use_dvs == o.use_dvs && mapping == o.mapping;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, Evaluation, KeyHash> map;
  };

  Shard& shard_for(std::size_t key_hash) {
    return *shards_[key_hash % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
};

/// Several applications time-sharing one platform (§1: resources "shared
/// across multiple multimedia applications").  Partitioned-scheduling
/// admission: each application is scheduled in isolation at its own period,
/// then per-tile utilizations are summed across applications; the shared
/// design is schedulable when every tile stays below the utilization bound
/// and every per-app deadline held in isolation.
struct MultiAppEvaluation {
  std::vector<Evaluation> per_app;
  std::vector<double> tile_utilization;  // summed across applications
  double max_tile_utilization = 0.0;
  double total_power_w = 0.0;            // sum of per-app average powers
  bool schedulable = false;
  bool feasible = false;                 // schedulable + all per-app QoS
};

/// Thread-safety: pure function of its arguments, like evaluate_design —
/// safe to call concurrently on shared inputs.
MultiAppEvaluation evaluate_multi_design(
    const std::vector<Application>& apps, const Platform& platform,
    const std::vector<noc::Mapping>& mappings, bool use_dvs,
    double utilization_bound = 1.0);

}  // namespace holms::core
