#pragma once
// The unified evaluator of the holistic methodology (paper §2):
//
// "Simply speaking, designing a multimedia system consists of mapping the
//  target application, onto a given implementation architecture, while
//  satisfying a prescribed set of design constraints (e.g. power,
//  performance, cost, etc.)."
//
// Given an Application (task graph + period + QoS requirements) and a
// Platform, an Evaluation prices one candidate mapping: schedule (EDF or
// energy-aware DVS), communication energy over the NoC, and QoS verdicts.

#include <string>
#include <vector>

#include "core/platform.hpp"
#include "noc/mapping.hpp"
#include "noc/scheduling.hpp"
#include "noc/taskgraph.hpp"

namespace holms::core {

/// QoS requirements the design must satisfy (paper §2: latency, jitter,
/// loss; here the schedulable subset — end-to-end deadline and power cap).
struct QosRequirement {
  double period_s = 0.04;        // application iteration period == deadline
  double max_power_w = 0.0;      // 0 = unconstrained average power
  double max_cost = 0.0;         // 0 = unconstrained platform cost (§1)
};

/// A multimedia application: communicating tasks plus its QoS contract.
struct Application {
  noc::AppGraph graph;
  QosRequirement qos{};
  std::string name = "app";
};

struct Evaluation {
  noc::MappingEval comm;
  noc::ScheduleResult schedule;
  double total_energy_j = 0.0;   // per period
  double average_power_w = 0.0;
  double platform_cost = 0.0;    // sum of unit costs of the tiles in use
  bool deadline_met = false;
  bool power_met = false;
  bool cost_met = false;
  bool feasible = false;         // all constraints and bandwidth
};

/// Builds the scheduling problem a mapping induces on a platform
/// (tile speedups shrink task cycles; memory tiles execute nothing).
noc::SchedProblem make_sched_problem(const Application& app,
                                     const Platform& platform,
                                     const noc::Mapping& mapping);

/// Prices one mapping.  `use_dvs` selects the energy-aware scheduler.
Evaluation evaluate_design(const Application& app, const Platform& platform,
                           const noc::Mapping& mapping, bool use_dvs);

/// Several applications time-sharing one platform (§1: resources "shared
/// across multiple multimedia applications").  Partitioned-scheduling
/// admission: each application is scheduled in isolation at its own period,
/// then per-tile utilizations are summed across applications; the shared
/// design is schedulable when every tile stays below the utilization bound
/// and every per-app deadline held in isolation.
struct MultiAppEvaluation {
  std::vector<Evaluation> per_app;
  std::vector<double> tile_utilization;  // summed across applications
  double max_tile_utilization = 0.0;
  double total_power_w = 0.0;            // sum of per-app average powers
  bool schedulable = false;
  bool feasible = false;                 // schedulable + all per-app QoS
};

MultiAppEvaluation evaluate_multi_design(
    const std::vector<Application>& apps, const Platform& platform,
    const std::vector<noc::Mapping>& mappings, bool use_dvs,
    double utilization_bound = 1.0);

}  // namespace holms::core
