#pragma once
// Design-space exploration: "The overall goal of successful design is then
// to find the best mapping of the target multimedia application onto the
// architectural resources, while satisfying an imposed set of design
// constraints ... and specified QoS metrics" (paper abstract).
//
// The explorer couples the node-centric knobs (mapping, DVS) into one search
// and reports the best feasible design plus the energy/latency Pareto front.
//
// Parallel execution (holms::exec): candidate generation and pricing run on
// a deterministic thread pool.  Every SA restart / random probe derives its
// RNG stream from (caller seed, candidate index) — exec/rng_stream.hpp — and
// results are merged serially in candidate order, so `threads = 8` returns a
// bitwise-identical ExploreResult to `threads = 1` for the same seed.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/ambient.hpp"
#include "core/evaluator.hpp"
#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::exec {
class ThreadPool;
}

namespace holms::core {

struct DesignCandidate {
  noc::Mapping mapping;
  bool use_dvs = true;
  Evaluation eval;
  /// Mean ambient availability across fault replicas (1.0 when exploration
  /// ran without a FaultScenario).
  double availability = 1.0;
  /// Windowed SLO score pooled over all replicas' windows (1.0 when no
  /// FaultScenario or FaultScenario::slo_window == 0): the fraction of
  /// tumbling availability windows that met FaultScenario::slo_target.
  double slo_fraction = 1.0;
  /// Worst single window's availability across every replica.  The mean
  /// can clear 0.999 while one burst window sits at 0.2; this is the number
  /// that exposes it.
  double worst_window_availability = 1.0;
};

/// Robustness-aware scoring: every candidate design is additionally replayed
/// through `replicas` ambient fault scenarios (distinct schedules derived
/// from `ambient.seed` via counter-based streams) and its mean availability
/// must clear `min_availability` to stay feasible.  Replicas are priced on
/// the same holms::exec pool as the base evaluations — they are just more
/// candidates.
struct FaultScenario {
  AmbientConfig ambient{};
  FaultPolicy policy = FaultPolicy::kAdaptiveRemap;
  std::size_t replicas = 2;
  double min_availability = 0.0;
  /// Optional shared schedule replayed by every replica *instead of* the
  /// per-replica Poisson derivation — how burst/crew traces (e.g.
  /// FaultSchedule::bursts over a FailureDomainTree) reach the explorer.
  /// Times in seconds, Target::kTile, ids = tiles.  With `replicas > 1`
  /// each replica still runs (the activity chain differs per replica seed),
  /// but the fault events are identical.
  const fault::FaultSchedule* schedule = nullptr;
  /// Windowed SLO scoring (0 disables it): each replica's per-period trace
  /// is cut into tumbling windows of `slo_window` periods; a window is met
  /// when its availability >= `slo_target`.  Candidate feasibility then
  /// additionally requires the pooled met-fraction to clear
  /// `min_slo_fraction` — an SLO floor, not a mean floor.
  std::size_t slo_window = 0;
  double slo_target = 0.999;
  double min_slo_fraction = 0.0;
};

struct ExploreOptions {
  std::size_t restarts = 3;        // independent SA runs
  noc::SaOptions sa{};
  bool try_both_schedulers = true; // evaluate EDF and DVS variants
  std::size_t threads = 1;         // 0 = hardware concurrency, 1 = serial
  bool use_cache = true;           // memoize evaluate_design calls
  EvalCache* cache = nullptr;      // external cache (overrides use_cache);
                                   // shared by synthesize_platform trials
  exec::ThreadPool* pool = nullptr;  // external pool (overrides threads)
  const FaultScenario* faults = nullptr;  // robustness-aware DSE (optional)

  /// Contract rule C001; called by explore().  `restarts = 0` is legal (the
  /// greedy seed and random probes still run), so only nested knobs and the
  /// fault scenario are checked here.
  void validate() const {
    sa.validate();
    if (faults != nullptr && faults->replicas == 0) {
      throw holms::InvalidArgument(
          "ExploreOptions: FaultScenario.replicas must be >= 1");
    }
    if (faults != nullptr && !(faults->min_availability >= 0.0)) {
      // > 1 is legal: an unreachable floor rejects every candidate, which
      // callers use to probe infeasibility.
      throw holms::InvalidArgument(
          "ExploreOptions: FaultScenario.min_availability must be >= 0");
    }
    if (faults != nullptr && !(faults->min_slo_fraction >= 0.0)) {
      throw holms::InvalidArgument(
          "ExploreOptions: FaultScenario.min_slo_fraction must be >= 0");
    }
    if (faults != nullptr &&
        !(faults->slo_target > 0.0 && faults->slo_target <= 1.0)) {
      throw holms::InvalidArgument(
          "ExploreOptions: FaultScenario.slo_target must be in (0, 1]");
    }
    // Dead-config rejection (contract rule C001): a floor that can never
    // bind is a silently-ignored knob, not a configuration.
    if (faults != nullptr && faults->min_slo_fraction > 0.0 &&
        faults->slo_window == 0) {
      throw holms::InvalidArgument(
          "ExploreOptions: FaultScenario.min_slo_fraction > 0 requires "
          "slo_window > 0 — with windowing off the SLO floor never applies");
    }
    if (faults != nullptr && faults->slo_window > 0 &&
        faults->ambient.duration_s <= 0.0) {
      throw holms::InvalidArgument(
          "ExploreOptions: FaultScenario.slo_window > 0 needs a positive "
          "ambient.duration_s — zero periods yield no windows to score");
    }
  }
};

struct ExploreResult {
  DesignCandidate best;            // minimum energy among feasible
  std::vector<DesignCandidate> pareto;  // energy/makespan front
  std::size_t evaluated = 0;
  bool found_feasible = false;
};

/// Order-sensitive 64-bit digest of a mapping (splitmix64 chain).  Shared by
/// the fault-replay dedupe, the island emigrant ordering and the checkpoint
/// fingerprints, so "same mapping" means the same thing everywhere.
std::uint64_t mapping_digest(const noc::Mapping& m);

/// Canonical strict-weak order on candidates: feasible before infeasible,
/// then lower energy, then (mapping digest, use_dvs) as an arbitrary-but-
/// deterministic tie-break.  This is the order island emigrants are selected
/// by, which is what makes migration bitwise invariant to thread count and
/// island scheduling (DESIGN.md §5l).
bool candidate_precedes(const DesignCandidate& a, const DesignCandidate& b);

/// Serial, insertion-ordered accumulator of the best feasible candidate and
/// the energy/makespan Pareto front, shared by explore() and the island
/// explorer.  Merge order pins the tie-breaks (first minimal-energy candidate
/// wins), so callers feed it in deterministic candidate order after any
/// parallel pricing.  State is deliberately open: island checkpoints
/// serialize and restore it verbatim.
class ParetoAccumulator {
 public:
  void merge(DesignCandidate c);

  DesignCandidate best{};
  bool found_feasible = false;
  double best_energy = std::numeric_limits<double>::infinity();
  std::vector<DesignCandidate> front;
};

/// Replays already-priced candidates through `fs` (replay cursors deduped by
/// (schedule fingerprint, mapping digest, use_dvs)), fills availability /
/// slo_fraction / worst_window_availability and applies the scenario floors,
/// marking candidates that miss them infeasible.  Infeasible inputs keep
/// their perfect default scores and are never replayed.  Deterministic in
/// candidate order; thread-count invariant.  Shared by explore() and
/// core::IslandExplorer.
void score_fault_robustness(const Application& app, const Platform& platform,
                            const FaultScenario& fs, exec::ThreadPool* pool,
                            std::vector<DesignCandidate>& candidates);

/// Searches mappings (greedy seed + SA restarts + random probes) and
/// scheduler choice for the minimum-energy feasible design.
///
/// Consumes exactly one draw from `rng` (the base of the per-candidate
/// counter-based streams) regardless of restarts or thread count.
ExploreResult explore(const Application& app, const Platform& platform,
                      sim::Rng& rng, const ExploreOptions& opts = {});

/// Platform synthesis under a manufacturing-cost budget (§1): starting from
/// an all-GPP mesh, greedily upgrade tiles hosting tasks to ASIP/ASIC
/// classes while the budget holds and total energy improves — the "fixed
/// processing resources (ASICs) and programmable resources" platform
/// assembly the paper's introduction describes.  Each step prices every
/// upgradeable tile concurrently (one explore() per candidate platform, all
/// sharing one evaluation cache) and accepts the best improving upgrade;
/// ties break on candidate order, so the result is thread-count independent.
struct SynthesisOptions {
  double cost_budget = 0.0;          // 0 = unconstrained
  std::size_t max_upgrades = 16;
  ExploreOptions explore{};          // per-candidate mapping search
  std::size_t threads = 1;           // 0 = hardware concurrency, 1 = serial

  /// Contract rule C001; called by synthesize_platform().
  void validate() const {
    explore.validate();
    if (!(cost_budget >= 0.0)) {
      throw holms::InvalidArgument(
          "SynthesisOptions: cost_budget must be >= 0");
    }
  }
};

struct SynthesisStep {
  std::size_t tile = 0;
  TileType to = TileType::kGpp;
  double energy_j = 0.0;
  double cost = 0.0;
};

struct SynthesisResult {
  Platform platform;
  ExploreResult design;
  std::vector<SynthesisStep> trace;
  bool found_feasible = false;
};

SynthesisResult synthesize_platform(const Application& app, std::size_t width,
                                    std::size_t height, sim::Rng& rng,
                                    const SynthesisOptions& opts = {});

}  // namespace holms::core
