#include "core/evaluator.hpp"
// HOLMS_LINT_ALLOW_FILE(D005): EvalCache shard lookups take a short-lived
// lock_guard on the exploration path; see the header's rationale.

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "exec/metrics.hpp"
#include "exec/rng_stream.hpp"

#include "exec/error.hpp"

namespace holms::core {
namespace {

// Streaming 64-bit hash: order-sensitive fold of one value into the state.
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return exec::splitmix64(h ^ exec::splitmix64(v));
}

std::uint64_t fold(std::uint64_t h, double d) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof d);
  std::memcpy(&bits, &d, sizeof bits);
  return fold(h, bits);
}

}  // namespace

std::string tile_type_name(TileType t) {
  switch (t) {
    case TileType::kGpp: return "GPP";
    case TileType::kAsip: return "ASIP";
    case TileType::kAsic: return "ASIC";
    case TileType::kMemory: return "MEM";
  }
  return "?";
}

noc::SchedProblem make_sched_problem(const Application& app,
                                     const Platform& platform,
                                     const noc::Mapping& mapping) {
  if (mapping.size() != app.graph.num_nodes()) {
    throw holms::InvalidArgument("make_sched_problem: mapping size mismatch");
  }
  if (platform.tiles.size() != platform.mesh.num_tiles()) {
    throw holms::InvalidArgument("make_sched_problem: platform tiles mismatch");
  }
  noc::SchedProblem p;
  p.mesh = platform.mesh;
  p.tile_of = mapping;
  p.deadline_s = app.qos.period_s;
  p.power = platform.power;
  p.points = platform.points;
  p.link_bandwidth_bps = platform.link_bandwidth_bps;
  p.hop_latency_s = platform.hop_latency_s;
  p.noc_energy = platform.noc_energy;

  for (std::size_t i = 0; i < app.graph.num_nodes(); ++i) {
    const auto& node = app.graph.node(i);
    const TileSpec& spec = platform.tiles.at(mapping[i]);
    noc::SchedTask t;
    t.name = node.name;
    // A faster resource class executes the same work in fewer base cycles.
    t.cycles = node.compute_cycles / spec.speedup;
    p.tasks.push_back(std::move(t));
  }
  for (const auto& e : app.graph.edges()) {
    p.deps.push_back(noc::SchedDep{e.src, e.dst, e.volume_bits});
  }
  return p;
}

Evaluation evaluate_design(const Application& app, const Platform& platform,
                           const noc::Mapping& mapping, bool use_dvs) {
  Evaluation ev;
  ev.comm = noc::evaluate_mapping(app.graph, platform.mesh,
                                  platform.noc_energy, mapping,
                                  platform.link_bandwidth_bps);
  const noc::SchedProblem prob = make_sched_problem(app, platform, mapping);
  ev.schedule = use_dvs ? noc::schedule_energy_aware(prob)
                        : noc::schedule_edf(prob);

  // Scale compute energy by each tile's resource-class efficiency.
  double compute_j = 0.0;
  for (std::size_t i = 0; i < prob.tasks.size(); ++i) {
    const TileSpec& spec = platform.tiles.at(mapping[i]);
    const auto& op = platform.points.at(ev.schedule.placement[i].dvs_level);
    // HOLMS_LINT_ALLOW(D006): per-candidate energy roll-up in fixed task-index order
    compute_j +=
        platform.power.energy_for_cycles(prob.tasks[i].cycles, op) *
        spec.energy_factor;
  }
  ev.total_energy_j = compute_j + ev.comm.comm_energy_j +
                      ev.schedule.idle_energy_j;
  ev.average_power_w = ev.total_energy_j / app.qos.period_s;
  // Manufacturing cost: only the tiles the mapping actually uses would be
  // instantiated when the platform is synthesized.
  std::vector<bool> used(platform.mesh.num_tiles(), false);
  for (noc::TileId t : mapping) used[t] = true;
  for (std::size_t t = 0; t < used.size(); ++t) {
    if (used[t]) ev.platform_cost += platform.tiles[t].unit_cost;
  }
  ev.deadline_met = ev.schedule.deadline_met;
  ev.power_met = app.qos.max_power_w <= 0.0 ||
                 ev.average_power_w <= app.qos.max_power_w;
  ev.cost_met =
      app.qos.max_cost <= 0.0 || ev.platform_cost <= app.qos.max_cost;
  ev.feasible = ev.deadline_met && ev.power_met && ev.cost_met &&
                ev.comm.bandwidth_feasible;
  return ev;
}

std::uint64_t platform_fingerprint(const Platform& p) {
  std::uint64_t h = 0x686f6c6d735f7066ULL;  // "holms_pf"
  h = fold(h, static_cast<std::uint64_t>(p.mesh.width()));
  h = fold(h, static_cast<std::uint64_t>(p.mesh.height()));
  for (const TileSpec& t : p.tiles) {
    h = fold(h, static_cast<std::uint64_t>(t.type));
    h = fold(h, t.speedup);
    h = fold(h, t.energy_factor);
    h = fold(h, t.unit_cost);
  }
  for (const auto& op : p.points) {
    h = fold(h, op.frequency_hz);
    h = fold(h, op.voltage);
  }
  h = fold(h, p.power.ceff_farad);
  h = fold(h, p.power.leak_per_volt);
  h = fold(h, p.noc_energy.e_router_pj);
  h = fold(h, p.noc_energy.e_link_pj);
  h = fold(h, p.noc_energy.e_buffer_pj);
  h = fold(h, p.link_bandwidth_bps);
  h = fold(h, p.hop_latency_s);
  return h;
}

std::uint64_t app_fingerprint(const Application& app) {
  std::uint64_t h = 0x686f6c6d735f6166ULL;  // "holms_af"
  h = fold(h, static_cast<std::uint64_t>(app.graph.num_nodes()));
  for (std::size_t i = 0; i < app.graph.num_nodes(); ++i) {
    h = fold(h, app.graph.node(i).compute_cycles);
  }
  for (const auto& e : app.graph.edges()) {
    h = fold(h, static_cast<std::uint64_t>(e.src));
    h = fold(h, static_cast<std::uint64_t>(e.dst));
    h = fold(h, e.volume_bits);
    h = fold(h, e.bandwidth_bps);
  }
  h = fold(h, app.qos.period_s);
  h = fold(h, app.qos.max_power_w);
  h = fold(h, app.qos.max_cost);
  return h;
}

std::size_t EvalCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = fold(k.app_fp, k.platform_fp);
  h = fold(h, static_cast<std::uint64_t>(k.use_dvs));
  for (noc::TileId t : k.mapping) h = fold(h, static_cast<std::uint64_t>(t));
  return static_cast<std::size_t>(h);
}

EvalCache::EvalCache(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::size_t EvalCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    n += s->map.size();
  }
  return n;
}

Evaluation EvalCache::evaluate(const Application& app, std::uint64_t app_fp,
                               const Platform& platform,
                               std::uint64_t platform_fp,
                               const noc::Mapping& mapping, bool use_dvs) {
  Key key{app_fp, platform_fp, use_dvs, mapping};
  const std::size_t h = KeyHash{}(key);
  Shard& shard = shard_for(h);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      exec::count("explore.cache_hits");
      return it->second;
    }
  }
  // Compute outside the shard lock: other threads may fill other entries
  // (or even race on the same key — both compute the same pure result, the
  // second insert is a no-op).
  Evaluation ev = evaluate_design(app, platform, mapping, use_dvs);
  misses_.fetch_add(1, std::memory_order_relaxed);
  exec::count("explore.cache_misses");
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    if (shard.map.emplace(std::move(key), ev).second) {
      inserts_.fetch_add(1, std::memory_order_relaxed);
      exec::count("explore.cache_inserts");
    }
  }
  return ev;
}

MultiAppEvaluation evaluate_multi_design(
    const std::vector<Application>& apps, const Platform& platform,
    const std::vector<noc::Mapping>& mappings, bool use_dvs,
    double utilization_bound) {
  if (apps.size() != mappings.size()) {
    throw holms::InvalidArgument(
        "evaluate_multi_design: apps/mappings size mismatch");
  }
  MultiAppEvaluation out;
  out.tile_utilization.assign(platform.mesh.num_tiles(), 0.0);
  bool all_qos = true;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    Evaluation ev = evaluate_design(apps[a], platform, mappings[a], use_dvs);
    all_qos = all_qos && ev.feasible;
    out.total_power_w += ev.average_power_w;
    // Per-tile busy time at the chosen DVS levels, normalized by the app's
    // own period.
    const noc::SchedProblem prob =
        make_sched_problem(apps[a], platform, mappings[a]);
    for (std::size_t i = 0; i < prob.tasks.size(); ++i) {
      const auto& op =
          platform.points.at(ev.schedule.placement[i].dvs_level);
      const double busy = prob.tasks[i].cycles / op.frequency_hz;
      out.tile_utilization[mappings[a][i]] += busy / apps[a].qos.period_s;
    }
    out.per_app.push_back(std::move(ev));
  }
  for (double u : out.tile_utilization) {
    out.max_tile_utilization = std::max(out.max_tile_utilization, u);
  }
  out.schedulable = out.max_tile_utilization <= utilization_bound + 1e-12;
  out.feasible = out.schedulable && all_qos;
  return out;
}

}  // namespace holms::core
