#include "fault/domain.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "exec/error.hpp"
#include "exec/rng_stream.hpp"

namespace holms::fault {

FailureDomainTree::FailureDomainTree(std::string root_name) {
  parent_.push_back(0);
  name_.push_back(std::move(root_name));
  children_.emplace_back();
}

std::size_t FailureDomainTree::add_domain(std::size_t parent,
                                          std::string name) {
  check_domain(parent, "add_domain");
  const std::size_t id = parent_.size();
  parent_.push_back(parent);
  name_.push_back(std::move(name));
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

void FailureDomainTree::map_target(Target target, std::size_t id,
                                   std::size_t domain) {
  check_domain(domain, "map_target");
  for (const TargetRef& ref : target_ref_) {
    if (ref.target == target && ref.id == id) {
      throw holms::InvalidArgument(
          "FailureDomainTree::map_target: target already mapped");
    }
  }
  target_ref_.push_back(TargetRef{target, id});
  target_domain_.push_back(domain);
}

const std::string& FailureDomainTree::name(std::size_t domain) const {
  check_domain(domain, "name");
  return name_[domain];
}

std::size_t FailureDomainTree::parent(std::size_t domain) const {
  check_domain(domain, "parent");
  return parent_[domain];
}

const std::vector<std::size_t>& FailureDomainTree::children(
    std::size_t domain) const {
  check_domain(domain, "children");
  return children_[domain];
}

bool FailureDomainTree::is_ancestor(std::size_t ancestor,
                                    std::size_t domain) const {
  check_domain(ancestor, "is_ancestor");
  check_domain(domain, "is_ancestor");
  std::size_t d = domain;
  while (true) {
    if (d == ancestor) return true;
    if (d == kRoot) return false;
    d = parent_[d];
  }
}

std::vector<TargetRef> FailureDomainTree::targets_under(
    std::size_t domain) const {
  check_domain(domain, "targets_under");
  std::vector<TargetRef> out;
  for (std::size_t i = 0; i < target_ref_.size(); ++i) {
    if (is_ancestor(domain, target_domain_[i])) out.push_back(target_ref_[i]);
  }
  std::sort(out.begin(), out.end(), [](const TargetRef& a, const TargetRef& b) {
    return std::tie(a.target, a.id) < std::tie(b.target, b.id);
  });
  return out;
}

std::size_t FailureDomainTree::subtree_targets(std::size_t domain) const {
  check_domain(domain, "subtree_targets");
  std::size_t n = 0;
  for (std::size_t i = 0; i < target_ref_.size(); ++i) {
    if (is_ancestor(domain, target_domain_[i])) ++n;
  }
  return n;
}

std::uint64_t FailureDomainTree::fingerprint() const {
  std::uint64_t h = 0x64666c74646f6d31ULL;
  for (std::size_t d = 0; d < parent_.size(); ++d) {
    h = exec::splitmix64(h ^ parent_[d]);
    for (const char c : name_[d]) {
      h = exec::splitmix64(h ^ static_cast<std::uint64_t>(
                                   static_cast<unsigned char>(c)));
    }
  }
  for (std::size_t i = 0; i < target_ref_.size(); ++i) {
    h = exec::splitmix64(h ^ (static_cast<std::uint64_t>(target_ref_[i].target) |
                              (target_ref_[i].id << 8)));
    h = exec::splitmix64(h ^ target_domain_[i]);
  }
  return h;
}

void FailureDomainTree::check_domain(std::size_t domain,
                                     const char* what) const {
  if (domain >= parent_.size()) {
    throw holms::InvalidArgument(std::string("FailureDomainTree::") + what +
                                 ": domain id out of range");
  }
}

}  // namespace holms::fault
