#pragma once
// Failure-domain trees: the shared-hardware topology behind correlated
// faults.
//
// Real fleets never fail i.i.d.: a rack PDU trip takes every enclosure
// behind it down at once, an enclosure backplane fault kills its nodes, a
// cable bundle cut severs a whole row of links.  A FailureDomainTree
// captures that sharing as an arbitrary-fan-out tree (rack -> enclosure ->
// node -> link, or any other nesting the consumer's platform implies), with
// each concrete fault target — a (Target, id) pair in the consumer's id
// namespace — mapped to exactly one domain.  FaultSchedule::bursts() then
// draws *domain-level* events and expands each one into per-target fail
// events over the whole subtree, which is how one physical cause becomes a
// correlated burst.
//
// The tree is build-then-read: domains and target mappings are appended,
// queries never mutate.  All query orders are canonical (preorder for
// domains, (target, id) for targets), so generators driven by the tree are
// deterministic functions of (seed, tree, spec) and the tree itself has a
// stable fingerprint().

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/schedule.hpp"

namespace holms::fault {

/// One concrete fault target addressed by a domain subtree.
struct TargetRef {
  Target target = Target::kLink;
  std::size_t id = 0;
};

class FailureDomainTree {
 public:
  /// Creates the tree with its root domain (id 0).
  explicit FailureDomainTree(std::string root_name = "root");

  static constexpr std::size_t kRoot = 0;

  /// Appends a child domain under `parent`; returns the new domain id.
  /// Ids are dense and assigned in insertion order; out-of-range parents
  /// throw holms::InvalidArgument.
  std::size_t add_domain(std::size_t parent, std::string name);

  /// Maps a concrete target to a domain (typically a leaf, but any domain
  /// is legal — a switch domain can own its uplink directly).  Mapping the
  /// same (target, id) twice throws holms::InvalidArgument.
  void map_target(Target target, std::size_t id, std::size_t domain);

  std::size_t num_domains() const { return parent_.size(); }
  std::size_t num_targets() const { return target_domain_.size(); }
  const std::string& name(std::size_t domain) const;
  std::size_t parent(std::size_t domain) const;
  const std::vector<std::size_t>& children(std::size_t domain) const;

  /// True when `ancestor` is `domain` or lies on its parent chain.
  bool is_ancestor(std::size_t ancestor, std::size_t domain) const;

  /// Every target mapped at or below `domain`, in canonical (target, id)
  /// order — the expansion order burst generators walk.
  std::vector<TargetRef> targets_under(std::size_t domain) const;

  /// Number of targets at or below `domain` — the repair-crew priority of a
  /// burst originating there (bigger blast radius is repaired first).
  std::size_t subtree_targets(std::size_t domain) const;

  /// Structure + mapping digest: two trees with equal fingerprints expand
  /// bursts identically.
  std::uint64_t fingerprint() const;

 private:
  void check_domain(std::size_t domain, const char* what) const;

  std::vector<std::size_t> parent_;                 // parent_[0] == 0
  std::vector<std::string> name_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<TargetRef> target_ref_;               // insertion order
  std::vector<std::size_t> target_domain_;          // parallel to target_ref_
};

}  // namespace holms::fault
