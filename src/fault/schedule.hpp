#pragma once
// Seeded, replayable fault schedules shared by every HolMS layer.
//
// The paper's ambient-intelligence vision (§5) asks for systems that keep
// operating "with limited resources and failing parts".  Prior to this layer
// each simulator either assumed a permanently healthy substrate (NoC, MANET,
// FGS) or rolled its own private failure clock (core::run_ambient_scenario).
// `FaultSchedule` centralises failure modelling: a sorted, immutable list of
// fail/repair events over abstract targets (links, nodes, tiles) that is
//   * deterministic — built either from an explicit trace or from a seeded
//     Poisson process, so the same (seed, spec) always yields the same
//     events, bitwise;
//   * layer-agnostic — event times are in the consumer's native unit
//     (cycles for the NoC, seconds for MANET/FGS/ambient); the schedule
//     itself never interprets them;
//   * replayable — consumers walk it with a `FaultInjector` cursor, so one
//     schedule can drive many independent runs (fault replicas in
//     `core::explore()` are just more candidates).
//
// Simulators must stay fast when no faults are armed: the injector is a raw
// pointer + index, and a null schedule means the hot path never branches on
// fault state (see router.cpp's `faults_armed()` pattern).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/error.hpp"

namespace holms::fault {

class FailureDomainTree;  // domain.hpp

/// What happens to the target at the event time.
///
/// kFail/kRepair are *hard* faults: the target is out of service until a
/// repair (possibly crew-scheduled) brings it back.  kSoftFail/kScrub are
/// *transient* faults: the target stays in service but corrupts what flows
/// through it (per-packet / per-slot) until a scrubbing pass clears it —
/// scrubbing is background hygiene and never occupies a repair crew.
/// Consumers that model only hard outages (NoC link state, MANET crashes,
/// ambient tile liveness) skip the soft kinds; SlotLossTrace consumes both.
enum class FaultKind : std::uint8_t {
  kFail,      ///< target goes down
  kRepair,    ///< target comes back up
  kSoftFail,  ///< target corrupts traffic (still in service)
  kScrub,     ///< scrubbing pass clears one pending soft fault
};

/// What kind of component the event addresses.  The id namespace is defined
/// by the consumer: for the NoC, kLink ids are Mesh2D undirected-link ids and
/// kTile/kNode ids are tile ids; for MANET, kNode ids are node indices; the
/// ambient scenario consumes kTile ids.
enum class Target : std::uint8_t {
  kLink,
  kNode,
  kTile,
};

/// One fail or repair event.  `time` is in the consumer's native unit.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kFail;
  Target target = Target::kLink;
  std::size_t id = 0;
};

/// Immutable, time-sorted sequence of fault events.
///
/// Construction validates and canonicalises the event order (time, then
/// target, then id, then kind) so two schedules built from the same inputs
/// compare and replay identically regardless of how the trace was assembled.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Builds a schedule from an explicit trace.  Events are sorted into
  /// canonical order; negative times throw holms::InvalidArgument.
  static FaultSchedule from_trace(std::vector<FaultEvent> events);

  /// Parameters for a seeded Poisson fail/repair process over a set of
  /// targets.  Each target alternates exponential(fail_rate) time-to-failure
  /// and exponential(repair_rate) time-to-repair; repair_rate == 0 makes
  /// failures permanent.
  struct PoissonSpec {
    Target target = Target::kLink;
    std::size_t num_targets = 0;  ///< ids 0..num_targets-1
    double fail_rate = 0.0;       ///< failures per unit time (> 0)
    double repair_rate = 0.0;     ///< repairs per unit time (>= 0; 0 = permanent)
    double horizon = 0.0;         ///< events generated in [0, horizon)
  };

  /// Generates a schedule from a seeded Poisson process.  Each target id gets
  /// its own counter-derived RNG stream (exec::stream_seed(seed, id)), so the
  /// schedule is invariant to target iteration order and to num_targets of
  /// *other* specs: adding a target never perturbs another target's events.
  static FaultSchedule poisson(std::uint64_t seed, const PoissonSpec& spec);

  /// Parameters for correlated domain bursts over a FailureDomainTree.  A
  /// burst is one domain-level physical event (rack PDU trip, enclosure
  /// backplane fault, cable-bundle cut): every target under the domain's
  /// subtree fails, each with its own jittered onset, and comes back after a
  /// per-target repair — staggered when crews are unlimited, crew-scheduled
  /// (load-dependent) when `crews` bounds the number of simultaneous
  /// repairs.
  struct BurstSpec {
    /// Burst-eligible domain ids (tree node ids); each draws its own
    /// counter-derived stream, so adding a domain never perturbs another
    /// domain's bursts.  Must be non-empty and duplicate-free.
    std::vector<std::size_t> domains;
    double burst_rate = 0.0;      ///< domain-level bursts per unit time (> 0)
    double onset_jitter = 0.0;    ///< per-target onset delay ~ U[0, jitter]
    double repair_time = 0.0;     ///< base per-target repair duration
                                  ///< (0 = permanent: no repair leg)
    double repair_stagger = 0.0;  ///< extra per-target duration ~ U[0, stagger]
    double horizon = 0.0;         ///< bursts drawn in [0, horizon)
    /// Max simultaneous repairs (the crew pool).  0 = unlimited: every
    /// target's repair starts the moment it fails.  Bounded crews serve
    /// pending repairs highest-blast-radius-first (burst domain subtree
    /// size), FIFO within a priority class, so long bursts saturate the
    /// crews and repair time becomes load-dependent — the availability
    /// cliff i.i.d. models never show.
    std::size_t crews = 0;
  };

  /// Telemetry of one bursts() expansion (crew saturation is invisible in
  /// the trace itself, so the generator reports it out-of-band).
  struct BurstStats {
    std::size_t bursts = 0;          ///< domain-level events drawn
    std::size_t targets_failed = 0;  ///< per-target kFail events emitted
    /// Max number of repairs pending (waiting or about to be picked) at any
    /// crew-dispatch instant; 0 or 1 means the crews never saturated.
    std::size_t crew_queue_max_depth = 0;
    double last_repair_time = 0.0;   ///< completion of the final repair
  };

  /// Generates correlated domain-burst faults over `tree`.  Deterministic
  /// in (seed, tree, spec); traces are canonically sorted and fingerprinted
  /// like every other schedule.  Event times inherit the caller's unit.
  static FaultSchedule bursts(std::uint64_t seed,
                              const FailureDomainTree& tree,
                              const BurstSpec& spec,
                              BurstStats* stats = nullptr);

  /// Parameters for transient soft faults cleared by periodic scrubbing.
  /// Each target draws per-target Poisson kSoftFail arrivals; every soft
  /// fault is cleared by a kScrub event at the next global scrubbing pass
  /// (times scrub_interval, 2*scrub_interval, ...).  The clearing scrub of
  /// a late soft fault may land at the first pass at or after `horizon`, so
  /// soft faults never outlive the schedule by construction.
  struct SoftSpec {
    Target target = Target::kLink;
    std::size_t num_targets = 0;  ///< ids 0..num_targets-1
    double soft_rate = 0.0;       ///< soft faults per unit time (> 0)
    double scrub_interval = 0.0;  ///< scrubbing pass period (> 0)
    double horizon = 0.0;         ///< soft faults drawn in [0, horizon)
  };

  /// Generates a transient soft-fault/scrub schedule.  Per-target
  /// counter-derived streams, same independence contract as poisson().
  static FaultSchedule soft(std::uint64_t seed, const SoftSpec& spec);

  /// Concatenates two schedules (e.g. link faults + node faults) into one
  /// canonical merged schedule.
  static FaultSchedule merge(const FaultSchedule& a, const FaultSchedule& b);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Order-sensitive 64-bit digest of the full event list (times hashed
  /// bitwise).  Two schedules with equal fingerprints replay identically;
  /// used by tests and BENCH_fault.json to pin reproducibility.
  std::uint64_t fingerprint() const;

 private:
  explicit FaultSchedule(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  /// The one trace-finishing path every builder funnels through: validates
  /// times, sorts into canonical order and (for generator-built traces, in
  /// debug builds) asserts the monotone repair-after-fail invariant per
  /// target.
  static FaultSchedule canonical(std::vector<FaultEvent> events,
                                 bool generator_trace);

  std::vector<FaultEvent> events_;
};

}  // namespace holms::fault
