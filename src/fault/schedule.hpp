#pragma once
// Seeded, replayable fault schedules shared by every HolMS layer.
//
// The paper's ambient-intelligence vision (§5) asks for systems that keep
// operating "with limited resources and failing parts".  Prior to this layer
// each simulator either assumed a permanently healthy substrate (NoC, MANET,
// FGS) or rolled its own private failure clock (core::run_ambient_scenario).
// `FaultSchedule` centralises failure modelling: a sorted, immutable list of
// fail/repair events over abstract targets (links, nodes, tiles) that is
//   * deterministic — built either from an explicit trace or from a seeded
//     Poisson process, so the same (seed, spec) always yields the same
//     events, bitwise;
//   * layer-agnostic — event times are in the consumer's native unit
//     (cycles for the NoC, seconds for MANET/FGS/ambient); the schedule
//     itself never interprets them;
//   * replayable — consumers walk it with a `FaultInjector` cursor, so one
//     schedule can drive many independent runs (fault replicas in
//     `core::explore()` are just more candidates).
//
// Simulators must stay fast when no faults are armed: the injector is a raw
// pointer + index, and a null schedule means the hot path never branches on
// fault state (see router.cpp's `faults_armed()` pattern).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/error.hpp"

namespace holms::fault {

/// What happens to the target at the event time.
enum class FaultKind : std::uint8_t {
  kFail,    ///< target goes down
  kRepair,  ///< target comes back up
};

/// What kind of component the event addresses.  The id namespace is defined
/// by the consumer: for the NoC, kLink ids are Mesh2D undirected-link ids and
/// kTile/kNode ids are tile ids; for MANET, kNode ids are node indices; the
/// ambient scenario consumes kTile ids.
enum class Target : std::uint8_t {
  kLink,
  kNode,
  kTile,
};

/// One fail or repair event.  `time` is in the consumer's native unit.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kFail;
  Target target = Target::kLink;
  std::size_t id = 0;
};

/// Immutable, time-sorted sequence of fault events.
///
/// Construction validates and canonicalises the event order (time, then
/// target, then id, then kind) so two schedules built from the same inputs
/// compare and replay identically regardless of how the trace was assembled.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Builds a schedule from an explicit trace.  Events are sorted into
  /// canonical order; negative times throw holms::InvalidArgument.
  static FaultSchedule from_trace(std::vector<FaultEvent> events);

  /// Parameters for a seeded Poisson fail/repair process over a set of
  /// targets.  Each target alternates exponential(fail_rate) time-to-failure
  /// and exponential(repair_rate) time-to-repair; repair_rate == 0 makes
  /// failures permanent.
  struct PoissonSpec {
    Target target = Target::kLink;
    std::size_t num_targets = 0;  ///< ids 0..num_targets-1
    double fail_rate = 0.0;       ///< failures per unit time (> 0)
    double repair_rate = 0.0;     ///< repairs per unit time (>= 0; 0 = permanent)
    double horizon = 0.0;         ///< events generated in [0, horizon)
  };

  /// Generates a schedule from a seeded Poisson process.  Each target id gets
  /// its own counter-derived RNG stream (exec::stream_seed(seed, id)), so the
  /// schedule is invariant to target iteration order and to num_targets of
  /// *other* specs: adding a target never perturbs another target's events.
  static FaultSchedule poisson(std::uint64_t seed, const PoissonSpec& spec);

  /// Concatenates two schedules (e.g. link faults + node faults) into one
  /// canonical merged schedule.
  static FaultSchedule merge(const FaultSchedule& a, const FaultSchedule& b);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Order-sensitive 64-bit digest of the full event list (times hashed
  /// bitwise).  Two schedules with equal fingerprints replay identically;
  /// used by tests and BENCH_fault.json to pin reproducibility.
  std::uint64_t fingerprint() const;

 private:
  explicit FaultSchedule(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  std::vector<FaultEvent> events_;
};

}  // namespace holms::fault
