#pragma once
// Replay cursor over a FaultSchedule.
//
// A FaultInjector is a (schedule pointer, index) pair that a simulator polls
// once per time step.  Polling applies every not-yet-applied event with
// time <= now, in canonical schedule order, through a caller-supplied
// callback — the simulator owns the semantics (what a dead link means), the
// injector owns only the clock walk.  With a null schedule poll() is a single
// predictable branch, so un-armed simulators pay nothing on the hot path.

#include <cstddef>
#include <utility>

#include "fault/schedule.hpp"

namespace holms::fault {

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultSchedule* schedule) : schedule_(schedule) {}

  /// Re-targets the cursor (and rewinds it).
  void reset(const FaultSchedule* schedule) {
    schedule_ = schedule;
    next_ = 0;
  }

  bool armed() const { return schedule_ != nullptr && !schedule_->empty(); }

  /// True when every event has been applied.
  bool exhausted() const {
    return schedule_ == nullptr || next_ >= schedule_->events().size();
  }

  /// Applies every pending event with time <= now via fn(const FaultEvent&),
  /// in schedule order.  Returns the number of events applied.
  template <class Fn>
  std::size_t poll(double now, Fn&& fn) {
    if (schedule_ == nullptr) return 0;
    const auto& ev = schedule_->events();
    std::size_t applied = 0;
    while (next_ < ev.size() && ev[next_].time <= now) {
      fn(ev[next_]);
      ++next_;
      ++applied;
    }
    return applied;
  }

 private:
  const FaultSchedule* schedule_ = nullptr;
  std::size_t next_ = 0;
};

}  // namespace holms::fault
