#include "fault/schedule.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <tuple>

#include "exec/rng_stream.hpp"
#include "sim/random.hpp"

#include "exec/error.hpp"

namespace holms::fault {

namespace {

bool event_order(const FaultEvent& a, const FaultEvent& b) {
  return std::tie(a.time, a.target, a.id, a.kind) <
         std::tie(b.time, b.target, b.id, b.kind);
}

}  // namespace

FaultSchedule FaultSchedule::from_trace(std::vector<FaultEvent> events) {
  for (const FaultEvent& e : events) {
    if (!(e.time >= 0.0)) {
      throw holms::InvalidArgument(
          "FaultSchedule::from_trace: event time must be >= 0 and finite");
    }
  }
  std::stable_sort(events.begin(), events.end(), event_order);
  return FaultSchedule(std::move(events));
}

FaultSchedule FaultSchedule::poisson(std::uint64_t seed,
                                     const PoissonSpec& spec) {
  if (spec.fail_rate <= 0.0) {
    throw holms::InvalidArgument("FaultSchedule::poisson: fail_rate must be > 0");
  }
  if (spec.repair_rate < 0.0) {
    throw holms::InvalidArgument(
        "FaultSchedule::poisson: repair_rate must be >= 0");
  }
  if (spec.horizon < 0.0) {
    throw holms::InvalidArgument("FaultSchedule::poisson: horizon must be >= 0");
  }
  std::vector<FaultEvent> events;
  for (std::size_t id = 0; id < spec.num_targets; ++id) {
    // Per-target counter-derived stream: the target's event sequence depends
    // only on (seed, id), never on how many other targets exist.
    sim::Rng rng(exec::stream_seed(seed, id));
    double t = 0.0;
    bool up = true;
    while (true) {
      const double rate = up ? spec.fail_rate : spec.repair_rate;
      if (rate <= 0.0) break;  // permanent failure: no repair leg
      t += rng.exponential(rate);
      if (t >= spec.horizon) break;
      events.push_back(FaultEvent{
          t, up ? FaultKind::kFail : FaultKind::kRepair, spec.target, id});
      up = !up;
    }
  }
  std::stable_sort(events.begin(), events.end(), event_order);
  return FaultSchedule(std::move(events));
}

FaultSchedule FaultSchedule::merge(const FaultSchedule& a,
                                   const FaultSchedule& b) {
  std::vector<FaultEvent> events;
  events.reserve(a.events_.size() + b.events_.size());
  std::merge(a.events_.begin(), a.events_.end(), b.events_.begin(),
             b.events_.end(), std::back_inserter(events), event_order);
  return FaultSchedule(std::move(events));
}

std::uint64_t FaultSchedule::fingerprint() const {
  std::uint64_t h = 0x6861756c746c6179ULL;  // arbitrary nonzero start
  for (const FaultEvent& e : events_) {
    h = exec::splitmix64(h ^ std::bit_cast<std::uint64_t>(e.time));
    h = exec::splitmix64(h ^ (static_cast<std::uint64_t>(e.kind) |
                              (static_cast<std::uint64_t>(e.target) << 8) |
                              (static_cast<std::uint64_t>(e.id) << 16)));
  }
  return h;
}

}  // namespace holms::fault
