#include "fault/schedule.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <tuple>

#include "exec/rng_stream.hpp"
#include "fault/domain.hpp"
#include "sim/random.hpp"

#include "exec/error.hpp"

namespace holms::fault {

namespace {

bool event_order(const FaultEvent& a, const FaultEvent& b) {
  return std::tie(a.time, a.target, a.id, a.kind) <
         std::tie(b.time, b.target, b.id, b.kind);
}

#ifndef NDEBUG
/// Debug invariant for generator-built traces: per (target, id), repairs
/// never outnumber fails and scrubs never outnumber soft fails at any
/// prefix of the canonical order — i.e. every repair/scrub follows the
/// fault it clears.  Bursts may re-fail a still-down target (overlapping
/// domain events), which keeps the prefix counts legal; a repair arriving
/// before any fail would not.
void check_monotone_repair_after_fail(const std::vector<FaultEvent>& events) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.kind != FaultKind::kRepair && e.kind != FaultKind::kScrub) continue;
    const FaultKind opens =
        e.kind == FaultKind::kRepair ? FaultKind::kFail : FaultKind::kSoftFail;
    std::ptrdiff_t balance = 0;
    for (std::size_t j = 0; j <= i; ++j) {
      const FaultEvent& p = events[j];
      if (p.target != e.target || p.id != e.id) continue;
      if (p.kind == opens) ++balance;
      if (p.kind == e.kind) --balance;
    }
    assert(balance >= 0 &&
           "fault trace: repair/scrub precedes its fail/soft-fail");
  }
}
#endif

}  // namespace

FaultSchedule FaultSchedule::canonical(std::vector<FaultEvent> events,
                                       bool generator_trace) {
  for (const FaultEvent& e : events) {
    if (!(e.time >= 0.0)) {
      throw holms::InvalidArgument(
          "FaultSchedule: event time must be >= 0 and finite");
    }
  }
  std::stable_sort(events.begin(), events.end(), event_order);
#ifndef NDEBUG
  if (generator_trace) check_monotone_repair_after_fail(events);
#else
  (void)generator_trace;
#endif
  return FaultSchedule(std::move(events));
}

FaultSchedule FaultSchedule::from_trace(std::vector<FaultEvent> events) {
  // User-assembled traces may encode states the generators never produce
  // (e.g. a repair of a target assumed down at t=0), so only the generator
  // paths run the monotone repair-after-fail debug check.
  return canonical(std::move(events), /*generator_trace=*/false);
}

FaultSchedule FaultSchedule::poisson(std::uint64_t seed,
                                     const PoissonSpec& spec) {
  if (spec.fail_rate <= 0.0) {
    throw holms::InvalidArgument("FaultSchedule::poisson: fail_rate must be > 0");
  }
  if (spec.repair_rate < 0.0) {
    throw holms::InvalidArgument(
        "FaultSchedule::poisson: repair_rate must be >= 0");
  }
  if (spec.horizon < 0.0) {
    throw holms::InvalidArgument("FaultSchedule::poisson: horizon must be >= 0");
  }
  std::vector<FaultEvent> events;
  for (std::size_t id = 0; id < spec.num_targets; ++id) {
    // Per-target counter-derived stream: the target's event sequence depends
    // only on (seed, id), never on how many other targets exist.
    sim::Rng rng(exec::stream_seed(seed, id));
    double t = 0.0;
    bool up = true;
    while (true) {
      const double rate = up ? spec.fail_rate : spec.repair_rate;
      if (rate <= 0.0) break;  // permanent failure: no repair leg
      t += rng.exponential(rate);
      if (t >= spec.horizon) break;
      events.push_back(FaultEvent{
          t, up ? FaultKind::kFail : FaultKind::kRepair, spec.target, id});
      up = !up;
    }
  }
  return canonical(std::move(events), /*generator_trace=*/true);
}

FaultSchedule FaultSchedule::bursts(std::uint64_t seed,
                                    const FailureDomainTree& tree,
                                    const BurstSpec& spec, BurstStats* stats) {
  if (spec.domains.empty()) {
    throw holms::InvalidArgument(
        "FaultSchedule::bursts: spec.domains must be non-empty");
  }
  for (std::size_t i = 0; i < spec.domains.size(); ++i) {
    if (spec.domains[i] >= tree.num_domains()) {
      throw holms::InvalidArgument(
          "FaultSchedule::bursts: domain id out of range");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.domains[j] == spec.domains[i]) {
        throw holms::InvalidArgument(
            "FaultSchedule::bursts: duplicate domain id");
      }
    }
  }
  if (spec.burst_rate <= 0.0) {
    throw holms::InvalidArgument(
        "FaultSchedule::bursts: burst_rate must be > 0");
  }
  if (spec.onset_jitter < 0.0 || spec.repair_time < 0.0 ||
      spec.repair_stagger < 0.0) {
    throw holms::InvalidArgument(
        "FaultSchedule::bursts: jitter/repair parameters must be >= 0");
  }
  if (spec.horizon < 0.0) {
    throw holms::InvalidArgument("FaultSchedule::bursts: horizon must be >= 0");
  }

  BurstStats local;
  BurstStats& st = stats != nullptr ? *stats : local;
  st = BurstStats{};

  // Phase 1: expand domain-level bursts into per-target failures.  Each
  // domain draws from its own counter-derived stream (burst times, then per
  // target an onset jitter and a repair duration, in canonical
  // targets_under() order), so one domain's trace is a pure function of
  // (seed, domain, tree, spec).
  struct FailRec {
    double time = 0.0;           // jittered onset
    double duration = 0.0;       // repair_time + stagger draw
    std::size_t priority = 0;    // burst domain subtree size (blast radius)
    Target target = Target::kLink;
    std::size_t id = 0;
  };
  std::vector<FailRec> fails;
  for (std::size_t di = 0; di < spec.domains.size(); ++di) {
    const std::size_t d = spec.domains[di];
    const std::vector<TargetRef> targets = tree.targets_under(d);
    const std::size_t radius = targets.size();
    sim::Rng rng(exec::stream_seed(seed, d));
    double t = 0.0;
    while (true) {
      t += rng.exponential(spec.burst_rate);
      if (t >= spec.horizon) break;
      ++st.bursts;
      for (const TargetRef& ref : targets) {
        FailRec rec;
        rec.time = t + rng.uniform(0.0, spec.onset_jitter);
        rec.duration = spec.repair_time + rng.uniform(0.0, spec.repair_stagger);
        rec.priority = radius;
        rec.target = ref.target;
        rec.id = ref.id;
        fails.push_back(rec);
        ++st.targets_failed;
      }
    }
  }
  std::sort(fails.begin(), fails.end(), [](const FailRec& a, const FailRec& b) {
    return std::tie(a.time, a.target, a.id, a.duration) <
           std::tie(b.time, b.target, b.id, b.duration);
  });

  std::vector<FaultEvent> events;
  events.reserve(fails.size() * 2);
  for (const FailRec& f : fails) {
    events.push_back(FaultEvent{f.time, FaultKind::kFail, f.target, f.id});
  }

  // Phase 2: repairs.  Permanent when repair_time == 0; otherwise either
  // immediate (unlimited crews: repair starts at the onset) or scheduled
  // through the bounded crew pool — a deterministic non-preemptive priority
  // queue (bigger blast radius first, FIFO within a class).
  if (spec.repair_time > 0.0) {
    if (spec.crews == 0) {
      for (const FailRec& f : fails) {
        const double done = f.time + f.duration;
        events.push_back(FaultEvent{done, FaultKind::kRepair, f.target, f.id});
        st.last_repair_time = std::max(st.last_repair_time, done);
      }
    } else {
      // Crew free times, kept sorted ascending (size == crews).
      std::vector<double> crew(spec.crews, 0.0);
      // Pending repairs: indices into `fails`, picked by (priority desc,
      // fail time asc, target, id) — scan-select keeps the choice
      // deterministic and the queue is short in practice.
      std::vector<std::size_t> pending;
      std::size_t next = 0;
      while (next < fails.size() || !pending.empty()) {
        const double crew_free = crew.front();
        if (pending.empty()) {
          pending.push_back(next++);
        }
        // The earliest possible service start: the first crew to free up,
        // or the earliest pending arrival if the crews are already idle.
        double earliest_arrival = fails[pending.front()].time;
        for (const std::size_t p : pending) {
          earliest_arrival = std::min(earliest_arrival, fails[p].time);
        }
        const double start = std::max(crew_free, earliest_arrival);
        // Everything failing by the service start competes for the crew.
        while (next < fails.size() && fails[next].time <= start) {
          pending.push_back(next++);
        }
        st.crew_queue_max_depth =
            std::max(st.crew_queue_max_depth, pending.size());
        std::size_t pick = 0;
        for (std::size_t i = 1; i < pending.size(); ++i) {
          const FailRec& a = fails[pending[i]];
          const FailRec& b = fails[pending[pick]];
          if (std::tie(b.priority, a.time, a.target, a.id) <
              std::tie(a.priority, b.time, b.target, b.id)) {
            pick = i;
          }
        }
        const FailRec& job = fails[pending[pick]];
        const double begin = std::max(crew_free, job.time);
        const double done = begin + job.duration;
        events.push_back(
            FaultEvent{done, FaultKind::kRepair, job.target, job.id});
        st.last_repair_time = std::max(st.last_repair_time, done);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
        crew.front() = done;
        std::sort(crew.begin(), crew.end());
      }
    }
  }
  return canonical(std::move(events), /*generator_trace=*/true);
}

FaultSchedule FaultSchedule::soft(std::uint64_t seed, const SoftSpec& spec) {
  if (spec.soft_rate <= 0.0) {
    throw holms::InvalidArgument("FaultSchedule::soft: soft_rate must be > 0");
  }
  if (spec.scrub_interval <= 0.0) {
    throw holms::InvalidArgument(
        "FaultSchedule::soft: scrub_interval must be > 0");
  }
  if (spec.horizon < 0.0) {
    throw holms::InvalidArgument("FaultSchedule::soft: horizon must be >= 0");
  }
  std::vector<FaultEvent> events;
  for (std::size_t id = 0; id < spec.num_targets; ++id) {
    sim::Rng rng(exec::stream_seed(seed, id));
    double t = 0.0;
    while (true) {
      t += rng.exponential(spec.soft_rate);
      if (t >= spec.horizon) break;
      events.push_back(FaultEvent{t, FaultKind::kSoftFail, spec.target, id});
      // Cleared at the next global scrubbing pass strictly after onset —
      // emitted even past the horizon so every soft fault is balanced by
      // exactly one scrub.
      const double pass =
          (std::floor(t / spec.scrub_interval) + 1.0) * spec.scrub_interval;
      events.push_back(FaultEvent{pass, FaultKind::kScrub, spec.target, id});
    }
  }
  return canonical(std::move(events), /*generator_trace=*/true);
}

FaultSchedule FaultSchedule::merge(const FaultSchedule& a,
                                   const FaultSchedule& b) {
  std::vector<FaultEvent> events;
  events.reserve(a.events_.size() + b.events_.size());
  std::merge(a.events_.begin(), a.events_.end(), b.events_.begin(),
             b.events_.end(), std::back_inserter(events), event_order);
  return FaultSchedule(std::move(events));
}

std::uint64_t FaultSchedule::fingerprint() const {
  std::uint64_t h = 0x6861756c746c6179ULL;  // arbitrary nonzero start
  for (const FaultEvent& e : events_) {
    h = exec::splitmix64(h ^ std::bit_cast<std::uint64_t>(e.time));
    h = exec::splitmix64(h ^ (static_cast<std::uint64_t>(e.kind) |
                              (static_cast<std::uint64_t>(e.target) << 8) |
                              (static_cast<std::uint64_t>(e.id) << 16)));
  }
  return h;
}

}  // namespace holms::fault
