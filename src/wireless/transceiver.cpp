#include "wireless/transceiver.hpp"

#include <limits>

namespace holms::wireless {

double RadioModel::energy_per_info_bit(double tx_power_w, Modulation m,
                                       const CodeConfig& code) const {
  const double coded_bit_rate = symbol_rate * bits_per_symbol(m);
  const double rate = code.constraint_length > 0 ? code.code_rate : 1.0;
  const double info_bit_rate = coded_bit_rate * rate;
  const double tx_drain = tx_power_w / pa_efficiency + tx_electronics_w;
  const double rx_drain = rx_electronics_w;
  return (tx_drain + rx_drain) / info_bit_rate +
         code.decode_energy_nj() * 1e-9;
}

TransceiverConfig EnergyManager::evaluate(Modulation m, double tx_power_w,
                                          const CodeConfig& code,
                                          double channel_gain) const {
  TransceiverConfig c;
  c.modulation = m;
  c.tx_power_w = tx_power_w;
  c.code = code;
  const double effective_ebn0 =
      radio_.ebn0(tx_power_w, channel_gain, m) * code.coding_gain();
  c.post_ber = ber(m, effective_ebn0);
  c.feasible = c.post_ber <= opts_.target_ber;
  c.energy_per_bit_j = radio_.energy_per_info_bit(tx_power_w, m, code);
  return c;
}

TransceiverConfig EnergyManager::optimal(double channel_gain) const {
  TransceiverConfig best;
  best.energy_per_bit_j = std::numeric_limits<double>::infinity();
  for (Modulation m : kAllModulations) {
    for (double p : opts_.power_levels_w) {
      for (int k : opts_.constraint_lengths) {
        CodeConfig code;
        code.constraint_length = k;
        const TransceiverConfig c = evaluate(m, p, code, channel_gain);
        if (c.feasible && c.energy_per_bit_j < best.energy_per_bit_j) {
          best = c;
        }
      }
    }
  }
  return best;
}

TransceiverConfig EnergyManager::static_config(
    double worst_channel_gain) const {
  // The non-adaptive designer provisions for the worst channel; the same
  // configuration is then used regardless of the actual state.
  return optimal(worst_channel_gain);
}

TransceiverConfig EnergyManager::game_theoretic(double channel_gain,
                                                TransceiverConfig start)
    const {
  TransceiverConfig cur = evaluate(start.modulation, start.tx_power_w,
                                   start.code, channel_gain);
  for (std::size_t round = 0; round < opts_.max_best_response_rounds;
       ++round) {
    bool changed = false;

    // TX best response: choose (modulation, power) minimizing TX-side
    // energy given the receiver's current code.
    {
      TransceiverConfig best = cur;
      double best_e = cur.feasible ? cur.energy_per_bit_j
                                   : std::numeric_limits<double>::infinity();
      for (Modulation m : kAllModulations) {
        for (double p : opts_.power_levels_w) {
          const TransceiverConfig c = evaluate(m, p, cur.code, channel_gain);
          if (c.feasible && c.energy_per_bit_j < best_e) {
            best = c;
            best_e = c.energy_per_bit_j;
          }
        }
      }
      if (best.modulation != cur.modulation ||
          best.tx_power_w != cur.tx_power_w) {
        cur = best;
        changed = true;
      }
    }

    // RX best response: choose the decoder constraint length minimizing the
    // joint energy given the transmitter's setting.
    {
      TransceiverConfig best = cur;
      double best_e = cur.feasible ? cur.energy_per_bit_j
                                   : std::numeric_limits<double>::infinity();
      for (int k : opts_.constraint_lengths) {
        CodeConfig code;
        code.constraint_length = k;
        const TransceiverConfig c =
            evaluate(cur.modulation, cur.tx_power_w, code, channel_gain);
        if (c.feasible && c.energy_per_bit_j < best_e) {
          best = c;
          best_e = c.energy_per_bit_j;
        }
      }
      if (best.code.constraint_length != cur.code.constraint_length) {
        cur = best;
        changed = true;
      }
    }

    if (!changed) break;
  }
  if (!cur.feasible) {
    // Fall back to the strongest joint configuration (max power, BPSK,
    // deepest code) so the caller always gets a defined answer.
    CodeConfig code;
    code.constraint_length = opts_.constraint_lengths.back();
    cur = evaluate(Modulation::kBpsk, opts_.power_levels_w.back(), code,
                   channel_gain);
  }
  return cur;
}

}  // namespace holms::wireless
