#pragma once
// Joint source-channel-coding image transmission energy optimizer
// (paper §4, ref [27] Appadwedula et al.).
//
// "an energy-optimized image transmission system for indoor wireless
//  applications that exploits the variations in the image data and the
//  wireless multi-path channel by using dynamic algorithm transformations
//  and joint source-channel coding ... an average of 60% energy saving for
//  different channel conditions."
//
// The client encodes an N-pixel image at source rate R (bits/pixel, D(R) =
// sigma^2 2^{-2R} Gaussian R-D model), protects it with a convolutional code
// of rate r, and transmits at power P.  Total energy = source-coding compute
// + transmit + receiver decode; the optimizer searches (R, r, P) for the
// minimum-energy configuration meeting a distortion budget under the current
// channel gain, via coordinate descent over the discrete grid (the
// feasible-direction analogue of [27]).

#include <vector>

#include "wireless/transceiver.hpp"
#include "exec/error.hpp"

namespace holms::wireless {

struct ImageModel {
  double pixels = 512.0 * 512.0;
  double sigma2 = 2500.0;            // source variance (8-bit imagery)
  double encode_nj_per_pixel_per_bpp = 1.4;  // DCT/quant energy scaling
};

struct JsccConfig {
  double source_rate_bpp = 2.0;   // R
  CodeConfig code{};              // channel code (rate + constraint length)
  double tx_power_w = 0.1;        // P
  Modulation modulation = Modulation::kQpsk;

  double total_energy_j = 0.0;
  double distortion = 0.0;        // expected end-to-end MSE
  double psnr_db = 0.0;
  bool feasible = false;
};

class JsccOptimizer {
 public:
  struct Options {
    double max_distortion = 45.0;       // MSE budget (~31.6 dB PSNR floor)
    std::vector<double> source_rates = {0.25, 0.5, 0.75, 1.0, 1.5,
                                        2.0,  2.5, 3.0,  3.5, 4.0};
    std::vector<double> power_levels_w = {0.01, 0.02, 0.05, 0.1, 0.2, 0.35,
                                          0.5};
    std::vector<int> constraint_lengths = {0, 3, 5, 7, 9};
    double residual_ber_amplification = 1e4;  // MSE per residual bit error

    /// Contract rule C001; checked on JsccOptimizer construction.
    void validate() const {
      if (!(max_distortion > 0.0)) {
        throw holms::InvalidArgument(
            "JsccOptimizer: max_distortion must be > 0");
      }
      if (source_rates.empty() || power_levels_w.empty() ||
          constraint_lengths.empty()) {
        throw holms::InvalidArgument(
            "JsccOptimizer: need >= 1 rate, power level and code option");
      }
      for (double r : source_rates) {
        if (!(r > 0.0)) {
          throw holms::InvalidArgument(
              "JsccOptimizer: source rates must be > 0");
        }
      }
      for (double p : power_levels_w) {
        if (!(p > 0.0)) {
          throw holms::InvalidArgument(
              "JsccOptimizer: power levels must be > 0");
        }
      }
      if (!(residual_ber_amplification >= 0.0)) {
        throw holms::InvalidArgument(
            "JsccOptimizer: residual_ber_amplification must be >= 0");
      }
    }
  };

  JsccOptimizer(ImageModel img, RadioModel radio, Options opts)
      : img_(img), radio_(radio), opts_(std::move(opts)) {
    opts_.validate();
  }

  /// Evaluates one configuration against a channel gain.
  JsccConfig evaluate(const JsccConfig& c, double channel_gain) const;

  /// Full-quality non-adaptive baseline: max source rate, worst-case-channel
  /// protection, fixed for all channel states.
  JsccConfig baseline(double worst_channel_gain) const;

  /// Coordinate-descent optimum for the current channel state.
  JsccConfig optimize(double channel_gain) const;

  const Options& options() const { return opts_; }

 private:
  ImageModel img_;
  RadioModel radio_;
  Options opts_;
};

}  // namespace holms::wireless
