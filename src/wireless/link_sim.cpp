#include "wireless/link_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::wireless {
namespace {

// Binary-reflected Gray code.
std::uint32_t gray(std::uint32_t i) { return i ^ (i >> 1); }

int popcount(std::uint32_t v) {
  int c = 0;
  while (v) {
    v &= v - 1;
    ++c;
  }
  return c;
}

// One PAM axis of a square QAM constellation: `levels` amplitudes at
// a * (2i - levels + 1).  Returns the number of Gray bit errors for one
// random symbol at noise stddev `sigma`.
int pam_axis_errors(std::uint32_t levels, double a, double sigma,
                    holms::sim::Rng& rng) {
  const auto tx = static_cast<std::uint32_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(levels) - 1));
  const double x =
      a * (2.0 * static_cast<double>(tx) - static_cast<double>(levels) + 1.0);
  const double y = x + rng.normal(0.0, sigma);
  // ML detection: nearest level.
  double idx = (y / a + static_cast<double>(levels) - 1.0) / 2.0;
  long rx = std::lround(idx);
  rx = std::max(0L, std::min(rx, static_cast<long>(levels) - 1));
  return popcount(gray(tx) ^ gray(static_cast<std::uint32_t>(rx)));
}

}  // namespace

LinkSimResult simulate_awgn_ber(Modulation m, double ebn0,
                                std::uint64_t bits, sim::Rng& rng) {
  if (!(ebn0 > 0.0)) {
    throw holms::InvalidArgument("simulate_awgn_ber: ebn0 must be > 0");
  }
  LinkSimResult res;
  const double k = bits_per_symbol(m);
  // Eb = 1 => N0 = 1/ebn0, per-axis noise sigma = sqrt(N0/2).
  const double sigma = std::sqrt(1.0 / (2.0 * ebn0));

  if (m == Modulation::kBpsk || m == Modulation::kQpsk) {
    // Gray-coded QPSK is two independent BPSK axes with Es/axis = Eb.
    while (res.bits < bits) {
      const bool b = rng.bernoulli(0.5);
      const double x = b ? 1.0 : -1.0;
      const double y = x + rng.normal(0.0, sigma);
      res.bit_errors += (y >= 0.0) != b ? 1 : 0;
      ++res.bits;
    }
  } else {
    const auto total = static_cast<std::uint32_t>(std::lround(std::pow(2.0, k)));
    const auto levels = static_cast<std::uint32_t>(
        std::lround(std::sqrt(static_cast<double>(total))));
    // Per-axis amplitude normalizing average symbol energy to k * Eb.
    const double a =
        std::sqrt(3.0 * k / (2.0 * (static_cast<double>(total) - 1.0)));
    const std::uint64_t bits_per_sym = static_cast<std::uint64_t>(k);
    while (res.bits < bits) {
      res.bit_errors += static_cast<std::uint64_t>(
          pam_axis_errors(levels, a, sigma, rng) +
          pam_axis_errors(levels, a, sigma, rng));
      res.bits += bits_per_sym;
    }
  }
  res.ber = res.bits ? static_cast<double>(res.bit_errors) /
                           static_cast<double>(res.bits)
                     : 0.0;
  return res;
}

double simulate_packet_error_rate(Modulation m, double ebn0,
                                  std::size_t packet_bits,
                                  std::size_t packets, sim::Rng& rng) {
  if (packet_bits == 0 || packets == 0) {
    throw holms::InvalidArgument("simulate_packet_error_rate: empty workload");
  }
  std::size_t failed = 0;
  for (std::size_t p = 0; p < packets; ++p) {
    const LinkSimResult r = simulate_awgn_ber(m, ebn0, packet_bits, rng);
    if (r.bit_errors > 0) ++failed;
  }
  return static_cast<double>(failed) / static_cast<double>(packets);
}

LinkSimResult simulate_rayleigh_ber(Modulation m, double mean_ebn0,
                                    std::uint64_t bits,
                                    std::size_t block_bits, sim::Rng& rng) {
  if (block_bits == 0) {
    throw holms::InvalidArgument("simulate_rayleigh_ber: block_bits >= 1");
  }
  LinkSimResult res;
  while (res.bits < bits) {
    // h^2 ~ Exp(1) (Rayleigh amplitude, unit mean power).
    const double h2 = rng.exponential(1.0);
    const double ebn0 = std::max(1e-6, mean_ebn0 * h2);
    const LinkSimResult blk = simulate_awgn_ber(
        m, ebn0, std::min<std::uint64_t>(block_bits, bits - res.bits), rng);
    res.bits += blk.bits;
    res.bit_errors += blk.bit_errors;
  }
  res.ber = res.bits ? static_cast<double>(res.bit_errors) /
                           static_cast<double>(res.bits)
                     : 0.0;
  return res;
}

}  // namespace holms::wireless
