#pragma once
// Monte-Carlo symbol-level link simulator.
//
// The §4 energy managers trade off against *analytic* BER-vs-Eb/N0 curves
// (Proakis [25]).  This module transmits actual Gray-mapped symbols through
// an AWGN channel so the closed forms in modulation.hpp are validated
// against a from-scratch physical simulation — and so packet-level error
// processes can be generated when a bench wants a real bit stream instead
// of a formula.

#include <cstdint>

#include "sim/random.hpp"
#include "wireless/modulation.hpp"

namespace holms::wireless {

struct LinkSimResult {
  std::uint64_t bits = 0;
  std::uint64_t bit_errors = 0;
  double ber = 0.0;
};

/// Transmits `bits` random bits as Gray-mapped symbols over AWGN at the
/// given Eb/N0 (linear) and counts bit errors with per-axis ML detection.
LinkSimResult simulate_awgn_ber(Modulation m, double ebn0,
                                std::uint64_t bits, sim::Rng& rng);

/// Packet error rate by Monte-Carlo: a packet fails if any of its bits is
/// in error (uncoded transmission).
double simulate_packet_error_rate(Modulation m, double ebn0,
                                  std::size_t packet_bits,
                                  std::size_t packets, sim::Rng& rng);

/// Rayleigh block-fading wrapper: per block the channel amplitude h is
/// Rayleigh(E[h^2] = 1) and the effective Eb/N0 is h^2 * mean_ebn0.
/// Averaged over many blocks this reproduces the heavy BER floor that makes
/// adaptation (E7) worthwhile.
LinkSimResult simulate_rayleigh_ber(Modulation m, double mean_ebn0,
                                    std::uint64_t bits,
                                    std::size_t block_bits, sim::Rng& rng);

}  // namespace holms::wireless
