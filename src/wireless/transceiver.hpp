#pragma once
// Transceiver energy model and the game-theoretic dynamic energy manager
// (paper §4, ref [26]).
//
// "the modulation level and transmit power of the transmitter and the
//  complexity of the channel decoder of the receiver are dynamically changed
//  to match the characteristics of the communication channel thereby
//  minimizing the energy consumption of the transceivers.  Experimental
//  results show an average of 12% reduction in the overall energy
//  consumption of the transceivers."
//
// Transmitter and receiver are modeled as the two players of [26]: the TX
// strategy is a (modulation, transmit power) pair, the RX strategy is the
// convolutional decoder constraint length.  Best-response iteration over the
// finite strategy sets reaches the joint low-energy operating point.

#include <vector>

#include "wireless/modulation.hpp"
#include "exec/error.hpp"

namespace holms::wireless {

/// First-order radio energy model.
struct RadioModel {
  double symbol_rate = 1e6;         // symbols per second
  double pa_efficiency = 0.35;      // transmit PA drain = P_tx / eff
  double tx_electronics_w = 0.08;   // mixers/filters/synthesizer while TX
  double rx_electronics_w = 0.10;   // LNA + demod while RX
  double noise_power_w = 1e-13;     // N0 * bandwidth at the receiver

  /// Received Eb/N0 (linear) for a given transmit power and channel power
  /// gain (linear, << 1).
  double ebn0(double tx_power_w, double channel_gain, Modulation m) const {
    const double rx_power = tx_power_w * channel_gain;
    const double snr = rx_power / noise_power_w;
    return snr / bits_per_symbol(m);  // Eb/N0 = SNR / (bits/symbol) at Rs=B
  }

  /// Energy per *information* bit for a TX/RX configuration (joules):
  /// PA + electronics on both sides + channel-decoder work, all divided by
  /// the information bit rate.
  double energy_per_info_bit(double tx_power_w, Modulation m,
                             const CodeConfig& code) const;
};

/// One joint transceiver configuration.
struct TransceiverConfig {
  Modulation modulation = Modulation::kQpsk;
  double tx_power_w = 0.1;
  CodeConfig code{};
  double energy_per_bit_j = 0.0;   // filled by the manager
  double post_ber = 0.5;           // post-decoding BER
  bool feasible = false;
};

/// The adaptation policies compared in experiment E7.
class EnergyManager {
 public:
  struct Options {
    double target_ber = 1e-5;
    std::vector<double> power_levels_w = {0.01, 0.02, 0.05, 0.1,
                                          0.2,  0.35, 0.5};
    std::vector<int> constraint_lengths = {0, 3, 5, 7, 9};
    std::size_t max_best_response_rounds = 16;

    /// Contract rule C001; checked on EnergyManager construction.
    void validate() const {
      if (!(target_ber > 0.0 && target_ber < 0.5)) {
        throw holms::InvalidArgument(
            "EnergyManager: target_ber must be in (0, 0.5)");
      }
      if (power_levels_w.empty() || constraint_lengths.empty()) {
        throw holms::InvalidArgument(
            "EnergyManager: need >= 1 power level and code option");
      }
      for (double p : power_levels_w) {
        if (!(p > 0.0)) {
          throw holms::InvalidArgument(
              "EnergyManager: power levels must be > 0");
        }
      }
      if (max_best_response_rounds == 0) {
        throw holms::InvalidArgument(
            "EnergyManager: max_best_response_rounds must be >= 1");
      }
    }
  };

  EnergyManager(RadioModel radio, Options opts)
      : radio_(radio), opts_(std::move(opts)) {
    opts_.validate();
  }

  /// Static baseline: the single configuration that meets the BER target in
  /// the *worst* expected channel, used for every channel state.
  TransceiverConfig static_config(double worst_channel_gain) const;

  /// Exhaustive joint minimum (oracle lower bound).
  TransceiverConfig optimal(double channel_gain) const;

  /// Game-theoretic adaptation of [26]: TX and RX alternate best responses
  /// from the current configuration until a fixed point.
  TransceiverConfig game_theoretic(double channel_gain,
                                   TransceiverConfig start) const;

  /// Evaluates one configuration against a channel state.
  TransceiverConfig evaluate(Modulation m, double tx_power_w,
                             const CodeConfig& code,
                             double channel_gain) const;

  const Options& options() const { return opts_; }
  const RadioModel& radio() const { return radio_; }

 private:
  RadioModel radio_;
  Options opts_;
};

}  // namespace holms::wireless
