#include "wireless/modulation.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::wireless {

double bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1.0;
    case Modulation::kQpsk: return 2.0;
    case Modulation::kQam16: return 4.0;
    case Modulation::kQam64: return 6.0;
  }
  return 1.0;
}

double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double ber(Modulation m, double ebn0) {
  if (ebn0 <= 0.0) return 0.5;
  switch (m) {
    case Modulation::kBpsk:
    case Modulation::kQpsk:
      // Gray-coded QPSK has the same per-bit error rate as BPSK.
      return q_function(std::sqrt(2.0 * ebn0));
    case Modulation::kQam16:
    case Modulation::kQam64: {
      const double k = bits_per_symbol(m);
      const double mm = std::pow(2.0, k);
      const double a = 4.0 / k * (1.0 - 1.0 / std::sqrt(mm));
      const double b = std::sqrt(3.0 * k / (mm - 1.0) * ebn0);
      return std::min(0.5, a * q_function(b));
    }
  }
  return 0.5;
}

double required_ebn0(Modulation m, double target_ber) {
  if (!(target_ber > 0.0 && target_ber < 0.5)) {
    throw holms::InvalidArgument("required_ebn0: target in (0, 0.5)");
  }
  double lo = 1e-3, hi = 1e6;
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (ber(m, mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

std::string modulation_name(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

double CodeConfig::coding_gain() const {
  if (constraint_length <= 0) return 1.0;
  // Diminishing returns: ~2 dB at K=3 growing ~0.7 dB per unit K, saturating
  // near 6.5 dB — the classical soft-decision Viterbi regime.
  const double gain_db =
      std::min(6.5, 2.0 + 0.7 * static_cast<double>(constraint_length - 3));
  return std::pow(10.0, gain_db / 10.0);
}

double CodeConfig::decode_energy_nj() const {
  if (constraint_length <= 0) return 0.0;
  // Viterbi: work proportional to trellis states = 2^(K-1); ~0.08 nJ per
  // state-step per information bit on an embedded decoder.
  return 0.08 * std::pow(2.0, constraint_length - 1);
}

}  // namespace holms::wireless
