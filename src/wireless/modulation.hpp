#pragma once
// Pass-band modulation models (paper §4, ref [25] Proakis).
//
// "The first category of techniques, which focus on the pass-band
//  transceiver, exploits the fact that different modulation schemes result
//  in different BER vs. received signal-to-noise ratio (SNR)
//  characteristics.  The key trade-off is thus between the modulation and/or
//  power levels and the BER."
//
// Standard textbook BER approximations over AWGN; Eb/N0 is linear (not dB).

#include <array>
#include <string>

namespace holms::wireless {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

inline constexpr std::array<Modulation, 4> kAllModulations = {
    Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
    Modulation::kQam64};

/// Bits carried per symbol.
double bits_per_symbol(Modulation m);

/// Gaussian tail function Q(x).
double q_function(double x);

/// Uncoded bit error rate at the given Eb/N0 (linear).
double ber(Modulation m, double ebn0);

/// Eb/N0 (linear) required to reach `target_ber`; bisection on the
/// monotone BER curve.
double required_ebn0(Modulation m, double target_ber);

std::string modulation_name(Modulation m);

/// Convolutional channel coding abstraction (base-band, §4): constraint
/// length K buys coding gain but costs decoder energy that grows as 2^K
/// (Viterbi trellis states).
struct CodeConfig {
  int constraint_length = 0;  // 0 = uncoded; typical 3..9
  double code_rate = 0.5;     // info bits per coded bit when coded

  /// Effective Eb/N0 multiplier (linear coding gain) of this code.
  double coding_gain() const;
  /// Decoder energy per information bit, in nJ.
  double decode_energy_nj() const;
};

}  // namespace holms::wireless
