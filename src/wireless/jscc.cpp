#include "wireless/jscc.hpp"

#include <cmath>
#include <limits>

namespace holms::wireless {

JsccConfig JsccOptimizer::evaluate(const JsccConfig& in,
                                   double channel_gain) const {
  JsccConfig c = in;
  // Source distortion from the Gaussian R-D bound.
  const double d_source =
      img_.sigma2 * std::pow(2.0, -2.0 * c.source_rate_bpp);
  // Channel-induced distortion: residual post-decoding errors corrupt
  // coefficients; amplification maps BER to MSE.
  const double ebn0 =
      radio_.ebn0(c.tx_power_w, channel_gain, c.modulation) *
      c.code.coding_gain();
  const double residual_ber = ber(c.modulation, ebn0);
  const double d_channel = opts_.residual_ber_amplification * residual_ber;
  c.distortion = d_source + d_channel;
  c.feasible = c.distortion <= opts_.max_distortion;
  c.psnr_db = 10.0 * std::log10(255.0 * 255.0 / std::max(c.distortion, 1e-9));

  // Energy: source encode + transmit (+PA/electronics) + channel decode.
  const double info_bits = img_.pixels * c.source_rate_bpp;
  const double encode_j = img_.encode_nj_per_pixel_per_bpp * 1e-9 *
                          img_.pixels * c.source_rate_bpp;
  const double per_bit =
      radio_.energy_per_info_bit(c.tx_power_w, c.modulation, c.code);
  c.total_energy_j = encode_j + per_bit * info_bits;
  return c;
}

JsccConfig JsccOptimizer::baseline(double worst_channel_gain) const {
  // Full quality, protected for the worst channel — what a non-adaptive
  // designer ships.  Among configs feasible at the worst channel, pick the
  // lowest-energy one with the maximum source rate.
  JsccConfig best;
  best.total_energy_j = std::numeric_limits<double>::infinity();
  JsccConfig c;
  c.source_rate_bpp = opts_.source_rates.back();
  for (double p : opts_.power_levels_w) {
    for (int k : opts_.constraint_lengths) {
      c.code.constraint_length = k;
      c.tx_power_w = p;
      const JsccConfig ev = evaluate(c, worst_channel_gain);
      if (ev.feasible && ev.total_energy_j < best.total_energy_j) best = ev;
    }
  }
  return best;
}

JsccConfig JsccOptimizer::optimize(double channel_gain) const {
  // Coordinate descent from a mid-grid start; each sweep relaxes one
  // coordinate (R, P, K) to its best feasible value, iterating to a fixed
  // point.  The grids are small enough that this reaches the exhaustive
  // optimum in practice; a final exhaustive polish guarantees it.
  JsccConfig cur;
  cur.source_rate_bpp = opts_.source_rates[opts_.source_rates.size() / 2];
  cur.tx_power_w = opts_.power_levels_w[opts_.power_levels_w.size() / 2];
  cur.code.constraint_length =
      opts_.constraint_lengths[opts_.constraint_lengths.size() / 2];
  cur = evaluate(cur, channel_gain);

  for (int sweep = 0; sweep < 8; ++sweep) {
    bool changed = false;
    auto consider = [&](JsccConfig cand) {
      cand = evaluate(cand, channel_gain);
      const bool better =
          cand.feasible &&
          (!cur.feasible || cand.total_energy_j < cur.total_energy_j);
      if (better) {
        cur = cand;
        changed = true;
      }
    };
    for (double r : opts_.source_rates) {
      JsccConfig cand = cur;
      cand.source_rate_bpp = r;
      consider(cand);
    }
    for (double p : opts_.power_levels_w) {
      JsccConfig cand = cur;
      cand.tx_power_w = p;
      consider(cand);
    }
    for (int k : opts_.constraint_lengths) {
      JsccConfig cand = cur;
      cand.code.constraint_length = k;
      consider(cand);
    }
    if (!changed) break;
  }

  if (!cur.feasible) {
    // Exhaustive fallback (also polishes coordinate-descent ties).
    JsccConfig best = cur;
    double best_e = std::numeric_limits<double>::infinity();
    for (double r : opts_.source_rates) {
      for (double p : opts_.power_levels_w) {
        for (int k : opts_.constraint_lengths) {
          JsccConfig cand;
          cand.source_rate_bpp = r;
          cand.tx_power_w = p;
          cand.code.constraint_length = k;
          cand = evaluate(cand, channel_gain);
          if (cand.feasible && cand.total_energy_j < best_e) {
            best = cand;
            best_e = cand.total_energy_j;
          }
        }
      }
    }
    cur = best;
  }
  return cur;
}

}  // namespace holms::wireless
