#pragma once
// Mobile ad hoc network substrate (paper §4.2).
//
// "In MANETs, every multimedia host has to perform the functions of a
//  router.  So if some hosts die early due to lack of energy, thereby
//  causing the network to become fragmented, then it may not be possible for
//  other hosts in the network to communicate with each other."
//
// Nodes carry batteries and move by random waypoint; the radio is the
// standard first-order model (electronics + d^alpha amplifier).  Routing
// protocols are layered on top in routing.hpp.

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::manet {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Vec2& a, const Vec2& b);

/// First-order radio energy model (per bit).
struct RadioModel {
  double elec_nj_per_bit = 50.0;    // TX/RX electronics
  double amp_pj_per_bit_m2 = 100.0; // amplifier, * d^2
  double range_m = 120.0;           // maximum usable link distance

  /// Energy to transmit `bits` over distance `d` (joules).
  double tx_energy(double bits, double d) const {
    return bits * (elec_nj_per_bit * 1e-9 +
                   amp_pj_per_bit_m2 * 1e-12 * d * d);
  }
  /// Energy to receive `bits` (joules).
  double rx_energy(double bits) const {
    return bits * elec_nj_per_bit * 1e-9;
  }
};

struct ManetNode {
  Vec2 pos{};
  Vec2 waypoint{};
  double speed_mps = 1.0;
  double battery_j = 50.0;
  double initial_battery_j = 50.0;
  double discharge_ewma_w = 0.0;  // smoothed drain rate (for LPR)
  bool alive = true;
  bool asleep = false;  // radio off: no routing, near-zero idle drain
};

/// The network state: nodes + mobility + energy accounting.
class Manet {
 public:
  struct Params {
    std::size_t num_nodes = 40;
    double field_m = 500.0;          // square field side
    double battery_j = 30.0;
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;
    RadioModel radio{};
    // Idle-listening drain of an awake radio vs a sleeping one: the energy
    // the second category of §4.2 protocols ("allowing a subset of nodes to
    // sleep") exists to save.
    double idle_listen_w = 0.0005;
    double sleep_w = 5e-6;

    /// Contract rule C001; called by the Manet constructor.
    void validate() const {
      if (num_nodes < 2) {
        throw holms::InvalidArgument("Manet: need >= 2 nodes");
      }
      if (!(radio.range_m > 0.0)) {
        throw holms::InvalidArgument("Manet: radio range_m must be > 0");
      }
      if (!(field_m > 0.0)) {
        throw holms::InvalidArgument("Manet: field_m must be > 0");
      }
      if (!(battery_j > 0.0)) {
        throw holms::InvalidArgument("Manet: battery_j must be > 0");
      }
      if (!(min_speed_mps >= 0.0) || max_speed_mps < min_speed_mps) {
        throw holms::InvalidArgument("Manet: need 0 <= min_speed <= max_speed");
      }
      if (!(idle_listen_w >= 0.0) || !(sleep_w >= 0.0)) {
        throw holms::InvalidArgument("Manet: idle/sleep drain must be >= 0");
      }
    }
  };

  Manet(const Params& p, sim::Rng rng);

  std::size_t size() const { return nodes_.size(); }
  const ManetNode& node(std::size_t i) const { return nodes_.at(i); }
  const Params& params() const { return p_; }

  /// Advances mobility by dt seconds (random waypoint).
  void move(double dt);

  /// True if i and j are alive and within radio range.
  bool connected(std::size_t i, std::size_t j) const;
  double link_distance(std::size_t i, std::size_t j) const;

  /// Charges transmit/receive energy for sending `bits` over link i->j
  /// (both endpoints pay).  Updates discharge EWMAs and kills drained nodes.
  void charge_link(std::size_t i, std::size_t j, double bits);

  /// Charges every awake node one local broadcast (route discovery flood);
  /// sleeping radios neither transmit nor overhear.
  void charge_flood(double bits);

  /// Charges idle-listening (awake) or sleep-mode drain for dt seconds.
  void charge_idle(double dt);

  /// Radio sleep control; sleeping nodes are excluded from connectivity.
  void set_asleep(std::size_t i, bool asleep);
  bool is_awake(std::size_t i) const {
    const auto& n = nodes_.at(i);
    return n.alive && !n.asleep;
  }

  std::size_t alive_count() const;
  double residual_fraction(std::size_t i) const;

  /// Periodic EWMA update of discharge rates (call once per simulated
  /// second with the per-node energy drained in that interval).
  void tick_discharge(double dt);

  /// Direct battery access for tests and failure injection.
  void drain(std::size_t i, double joules);

  /// Crash-fault injection (fault::Target::kNode events): the node's radio
  /// goes down but its battery keeps its charge, so unlike battery death the
  /// fault is repairable.
  void fail_node(std::size_t i);
  /// Brings a crashed node back, unless its battery has since been declared
  /// dead (battery death stays permanent).
  void repair_node(std::size_t i);

 private:
  Params p_;
  std::vector<ManetNode> nodes_;
  std::vector<double> drained_this_tick_;
  sim::Rng rng_;

  void pick_waypoint(ManetNode& n);
};

/// Generic Dijkstra over alive nodes with a caller-supplied link cost.
/// Returns the node sequence src..dst, or empty if unreachable.
/// cost(i, j) must be > 0 for usable links, +inf for unusable.
std::vector<std::size_t> dijkstra_path(
    const Manet& net, std::size_t src, std::size_t dst,
    const std::function<double(std::size_t, std::size_t)>& cost);

/// Widest-path (max-min) Dijkstra: maximizes the minimum node `width` along
/// the path (excluding the source) — the route selection of max-min battery
/// and lifetime-prediction protocols.
std::vector<std::size_t> widest_path(
    const Manet& net, std::size_t src, std::size_t dst,
    const std::function<double(std::size_t)>& width);

/// Max-min with a hop-count tie-break: first finds the best achievable
/// bottleneck width, then the minimum-hop path whose intermediate nodes all
/// meet (almost) that bottleneck.  This is the practical form of MMBCR/LPR
/// route selection — pure widest-path tie-breaks arbitrarily and can wander
/// across the whole network, wasting the very energy it tries to preserve.
std::vector<std::size_t> maxmin_minhop_path(
    const Manet& net, std::size_t src, std::size_t dst,
    const std::function<double(std::size_t)>& width,
    double bottleneck_slack = 0.999);

}  // namespace holms::manet
