#include "manet/network.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::manet {

double distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Manet::Manet(const Params& p, sim::Rng rng) : p_(p), rng_(rng) {
  p_.validate();
  nodes_.resize(p_.num_nodes);
  drained_this_tick_.assign(p_.num_nodes, 0.0);
  for (auto& n : nodes_) {
    n.pos = {rng_.uniform(0.0, p_.field_m), rng_.uniform(0.0, p_.field_m)};
    n.battery_j = p_.battery_j;
    n.initial_battery_j = p_.battery_j;
    pick_waypoint(n);
  }
}

void Manet::pick_waypoint(ManetNode& n) {
  n.waypoint = {rng_.uniform(0.0, p_.field_m), rng_.uniform(0.0, p_.field_m)};
  n.speed_mps = rng_.uniform(p_.min_speed_mps, p_.max_speed_mps);
}

void Manet::move(double dt) {
  for (auto& n : nodes_) {
    if (!n.alive) continue;
    double remaining = n.speed_mps * dt;
    while (remaining > 0.0) {
      const double d = distance(n.pos, n.waypoint);
      if (d <= remaining) {
        n.pos = n.waypoint;
        remaining -= d;
        pick_waypoint(n);
      } else {
        const double f = remaining / d;
        n.pos.x += (n.waypoint.x - n.pos.x) * f;
        n.pos.y += (n.waypoint.y - n.pos.y) * f;
        remaining = 0.0;
      }
    }
  }
}

bool Manet::connected(std::size_t i, std::size_t j) const {
  if (i == j) return false;
  if (!is_awake(i) || !is_awake(j)) return false;
  return distance(nodes_[i].pos, nodes_[j].pos) <= p_.radio.range_m;
}

void Manet::set_asleep(std::size_t i, bool asleep) {
  nodes_.at(i).asleep = asleep;
}

void Manet::charge_idle(double dt) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    drain(i, (nodes_[i].asleep ? p_.sleep_w : p_.idle_listen_w) * dt);
  }
}

double Manet::link_distance(std::size_t i, std::size_t j) const {
  return distance(nodes_.at(i).pos, nodes_.at(j).pos);
}

void Manet::drain(std::size_t i, double joules) {
  auto& n = nodes_.at(i);
  if (!n.alive) return;
  n.battery_j -= joules;
  drained_this_tick_[i] += joules;
  if (n.battery_j <= 0.0) {
    n.battery_j = 0.0;
    n.alive = false;
  }
}

void Manet::fail_node(std::size_t i) { nodes_.at(i).alive = false; }

void Manet::repair_node(std::size_t i) {
  auto& n = nodes_.at(i);
  if (n.battery_j > 0.0) n.alive = true;
}

void Manet::charge_link(std::size_t i, std::size_t j, double bits) {
  drain(i, p_.radio.tx_energy(bits, link_distance(i, j)));
  drain(j, p_.radio.rx_energy(bits));
}

void Manet::charge_flood(double bits) {
  // One local broadcast TX per alive node plus receives from each neighbor —
  // approximated as one TX at full range plus an average-degree worth of RX.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!is_awake(i)) continue;
    drain(i, p_.radio.tx_energy(bits, p_.radio.range_m));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!is_awake(i)) continue;
    std::size_t degree = 0;
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (connected(i, j)) ++degree;
    }
    drain(i, p_.radio.rx_energy(bits) * static_cast<double>(degree));
  }
}

std::size_t Manet::alive_count() const {
  std::size_t c = 0;
  // HOLMS_LINT_ALLOW(D006): integer alive-count in a size_t; the name is also a double elsewhere in this TU
  for (const auto& n : nodes_) c += n.alive ? 1 : 0;
  return c;
}

double Manet::residual_fraction(std::size_t i) const {
  const auto& n = nodes_.at(i);
  return n.initial_battery_j > 0.0 ? n.battery_j / n.initial_battery_j : 0.0;
}

void Manet::tick_discharge(double dt) {
  constexpr double kAlpha = 0.3;  // EWMA smoothing, as in LPR [32]
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double rate = drained_this_tick_[i] / std::max(dt, 1e-9);
    nodes_[i].discharge_ewma_w =
        kAlpha * rate + (1.0 - kAlpha) * nodes_[i].discharge_ewma_w;
    drained_this_tick_[i] = 0.0;
  }
}

std::vector<std::size_t> dijkstra_path(
    const Manet& net, std::size_t src, std::size_t dst,
    const std::function<double(std::size_t, std::size_t)>& cost) {
  const std::size_t n = net.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> prev(n, n);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (!net.connected(u, v)) continue;
      const double c = cost(u, v);
      if (!(c > 0.0) || !std::isfinite(c)) continue;
      if (dist[u] + c < dist[v]) {
        dist[v] = dist[u] + c;
        prev[v] = u;
        pq.push({dist[v], v});
      }
    }
  }
  if (!std::isfinite(dist[dst])) return {};
  std::vector<std::size_t> path;
  for (std::size_t cur = dst; cur != n; cur = prev[cur]) {
    path.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != src) return {};
  return path;
}

std::vector<std::size_t> widest_path(
    const Manet& net, std::size_t src, std::size_t dst,
    const std::function<double(std::size_t)>& width) {
  const std::size_t n = net.size();
  std::vector<double> best(n, -1.0);
  std::vector<std::size_t> prev(n, n);
  using Item = std::pair<double, std::size_t>;  // (bottleneck width, node)
  std::priority_queue<Item> pq;                 // max-heap
  best[src] = std::numeric_limits<double>::infinity();
  pq.push({best[src], src});
  while (!pq.empty()) {
    const auto [w, u] = pq.top();
    pq.pop();
    if (w < best[u]) continue;
    if (u == dst) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (!net.connected(u, v)) continue;
      const double bw = std::min(w, width(v));
      if (bw > best[v]) {
        best[v] = bw;
        prev[v] = u;
        pq.push({bw, v});
      }
    }
  }
  if (best[dst] < 0.0) return {};
  std::vector<std::size_t> path;
  for (std::size_t cur = dst; cur != n; cur = prev[cur]) {
    path.push_back(cur);
    if (cur == src) break;
  }
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != src) return {};
  return path;
}

std::vector<std::size_t> maxmin_minhop_path(
    const Manet& net, std::size_t src, std::size_t dst,
    const std::function<double(std::size_t)>& width,
    double bottleneck_slack) {
  const auto wp = widest_path(net, src, dst, width);
  if (wp.empty()) return {};
  double bottleneck = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < wp.size(); ++i) {
    bottleneck = std::min(bottleneck, width(wp[i]));
  }
  const double floor = bottleneck * bottleneck_slack;
  // Min-hop Dijkstra over the subgraph of nodes meeting the bottleneck
  // (endpoints always admitted).
  return dijkstra_path(net, src, dst, [&](std::size_t, std::size_t v) {
    if (v != dst && width(v) < floor) {
      return std::numeric_limits<double>::infinity();
    }
    return 1.0;
  });
}

}  // namespace holms::manet
