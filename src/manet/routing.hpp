#pragma once
// Energy-aware MANET routing protocols and the network-lifetime experiment
// (paper §4.2, refs [30][31][32]).
//
// Category 1 — minimum-power routing [30]: "Each link cost is set to the
// energy required for transmitting one packet of data across that link and
// Dijkstra's shortest path algorithm is used ... nodes along these
// least-power cost routes tend to 'die' soon."
//
// Category 2 — lifetime-aware protocols: Battery-Cost Lifetime-Aware
// Routing [31] (link cost grows as residual battery shrinks) and Lifetime
// Prediction Routing [32] (max-min over predicted node lifetimes =
// residual energy / smoothed discharge rate).
//
// "simulations show that they improve the network lifetime by more than
//  20%, on average" despite "additional control traffic" — both effects are
//  measured by `simulate_lifetime`.

#include <cstddef>
#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "manet/network.hpp"

namespace holms::manet {

enum class Protocol {
  kMinPower,           // MPR [30]
  kBatteryCost,        // BCLAR / CMMBCR-style [31]
  kLifetimePrediction, // LPR [32]
  kGafSleep,           // GAF-style sleep scheduling: grid leaders forward,
                       // the rest sleep ("allowing a subset of nodes to
                       // sleep over different periods of time")
};

std::string protocol_name(Protocol p);

/// Computes a route under the given protocol on the current network state.
std::vector<std::size_t> find_route(const Manet& net, Protocol p,
                                    std::size_t src, std::size_t dst,
                                    double packet_bits);

/// GAF leader election: partitions the field into r/sqrt(5) grid cells so
/// that leaders of adjacent cells are always in range, keeps the
/// highest-residual node of each cell awake, puts the rest to sleep.
/// Nodes listed in `keep_awake` (flow endpoints) are never put to sleep.
/// Returns the number of nodes left awake.
std::size_t gaf_elect_leaders(Manet& net,
                              const std::vector<std::size_t>& keep_awake);

struct LifetimeConfig {
  std::size_t num_flows = 8;
  double packet_bits = 4096.0;
  double packets_per_second = 12.0;
  double tick_s = 1.0;                 // simulation step
  double max_time_s = 50000.0;
  double route_refresh_s = 10.0;       // periodic rediscovery...
  double control_packet_bits = 512.0;  // ...each costs a network flood
  double dead_fraction = 0.2;          // lifetime = 20% of hosts dead
  bool mobile = true;
  // Route repair with bounded retry + exponential backoff: when a relay dies
  // mid-session a flow retries discovery immediately up to `repair_retry_limit`
  // consecutive failures, then backs off exponentially (base
  // `repair_backoff_s`, doubling per further failure, capped at
  // `repair_backoff_max_s`) instead of flooding the fragmented network every
  // packet.  Packets arriving during a backoff window are counted as
  // blackholed, not retried.
  std::size_t repair_retry_limit = 3;
  double repair_backoff_s = 2.0;
  double repair_backoff_max_s = 64.0;
};

struct LifetimeResult {
  double first_death_s = 0.0;
  double lifetime_s = 0.0;          // dead_fraction reached (or sim end)
  double delivery_ratio = 0.0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t route_discoveries = 0;
  double control_energy_j = 0.0;    // flood energy spent on discovery
  double mean_residual_at_end = 0.0;
  double residual_stddev_at_end = 0.0;  // load-balance indicator
  std::uint64_t route_repairs = 0;      // on-demand (non-periodic) discoveries
  std::uint64_t repair_failures = 0;    // repairs that found no route
  std::uint64_t packets_blackholed = 0; // dropped inside a backoff window
  std::uint64_t faults_applied = 0;     // injected node-crash events
  std::uint64_t repairs_applied = 0;    // injected node-repair events
};

/// Runs the lifetime experiment for one protocol on a fresh network drawn
/// from `params` with the given seed (same seed => same topology/flows for
/// every protocol, so comparisons are paired).  An optional shared
/// `FaultSchedule` injects node crash/repair events (Target::kNode, times in
/// seconds, ids = node indices; out-of-range ids throw).
LifetimeResult simulate_lifetime(Protocol p, const Manet::Params& params,
                                 const LifetimeConfig& cfg,
                                 std::uint64_t seed,
                                 const fault::FaultSchedule* faults = nullptr);

}  // namespace holms::manet
