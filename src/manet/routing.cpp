#include "manet/routing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fault/injector.hpp"
#include "sim/stats.hpp"

#include "exec/error.hpp"

namespace holms::manet {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMinPower: return "min-power (MPR)";
    case Protocol::kBatteryCost: return "battery-cost (BCLAR)";
    case Protocol::kLifetimePrediction: return "lifetime-prediction (LPR)";
    case Protocol::kGafSleep: return "sleep-scheduling (GAF)";
  }
  return "?";
}

std::size_t gaf_elect_leaders(Manet& net,
                              const std::vector<std::size_t>& keep_awake) {
  const double cell =
      net.params().radio.range_m / std::sqrt(5.0);
  const auto cells_per_row = static_cast<std::size_t>(
      net.params().field_m / cell) + 1;
  // cell id -> current leader candidate.
  std::vector<std::size_t> leader(cells_per_row * cells_per_row, net.size());
  auto cell_of = [&](std::size_t i) {
    const auto& n = net.node(i);
    const auto cx = static_cast<std::size_t>(n.pos.x / cell);
    const auto cy = static_cast<std::size_t>(n.pos.y / cell);
    return cy * cells_per_row + cx;
  };
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!net.node(i).alive) continue;
    const std::size_t c = cell_of(i);
    if (leader[c] == net.size() ||
        net.node(i).battery_j > net.node(leader[c]).battery_j) {
      leader[c] = i;
    }
  }
  std::size_t awake = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (!net.node(i).alive) continue;
    const bool endpoint = std::find(keep_awake.begin(), keep_awake.end(),
                                    i) != keep_awake.end();
    const bool is_leader = leader[cell_of(i)] == i;
    net.set_asleep(i, !(is_leader || endpoint));
    if (!net.node(i).asleep) ++awake;
  }
  return awake;
}

std::vector<std::size_t> find_route(const Manet& net, Protocol p,
                                    std::size_t src, std::size_t dst,
                                    double packet_bits) {
  const RadioModel& radio = net.params().radio;
  switch (p) {
    case Protocol::kGafSleep:
      // Sleeping nodes are already excluded by Manet::connected; among the
      // awake leaders, route for minimum power.
      [[fallthrough]];
    case Protocol::kMinPower:
      // Link cost = energy to push one packet across the link.
      return dijkstra_path(net, src, dst, [&](std::size_t i, std::size_t j) {
        return radio.tx_energy(packet_bits, net.link_distance(i, j)) +
               radio.rx_energy(packet_bits);
      });
    case Protocol::kBatteryCost: {
      // Toh's CMMBCR: while every node on the minimum-power route still has
      // comfortable charge, use that route (no energy waste); once any relay
      // falls below the threshold, switch to max-min-residual routing with a
      // hop-count tie-break (MMBCR) to protect the weak nodes.
      constexpr double kGamma = 0.4;
      const auto min_power =
          find_route(net, Protocol::kMinPower, src, dst, packet_bits);
      bool healthy = !min_power.empty();
      for (std::size_t i = 1; healthy && i + 1 < min_power.size(); ++i) {
        healthy = net.residual_fraction(min_power[i]) >= kGamma;
      }
      if (healthy) return min_power;
      return maxmin_minhop_path(net, src, dst, [&](std::size_t i) {
        return net.residual_fraction(i);
      });
    }
    case Protocol::kLifetimePrediction: {
      // LPR: max-min predicted lifetime T_i = residual / EWMA(discharge
      // rate), with a min-hop tie-break so cold-start ties (rate ~ 0 for
      // everyone) degrade to shortest-path instead of arbitrary wandering.
      return maxmin_minhop_path(net, src, dst, [&](std::size_t i) {
        const auto& n = net.node(i);
        const double rate = std::max(n.discharge_ewma_w, 1e-6);
        return n.battery_j / rate;
      });
    }
  }
  return {};
}

LifetimeResult simulate_lifetime(Protocol p, const Manet::Params& params,
                                 const LifetimeConfig& cfg,
                                 std::uint64_t seed,
                                 const fault::FaultSchedule* faults) {
  sim::Rng rng(seed);
  Manet net(params, rng.fork());

  if (faults != nullptr) {
    for (const fault::FaultEvent& e : faults->events()) {
      if (e.target == fault::Target::kNode && e.id >= net.size()) {
        throw holms::InvalidArgument(
            "simulate_lifetime: fault event node id out of range");
      }
    }
  }
  fault::FaultInjector injector(faults);

  // Persistent CBR flows between distinct random endpoints (paired across
  // protocols because the rng draws happen in a fixed order).
  struct FlowPair {
    std::size_t src, dst;
    std::vector<std::size_t> route;
    std::size_t consecutive_fail = 0;  // failed repair attempts in a row
    double next_repair_t = 0.0;        // backoff: no repair before this time
  };
  std::vector<FlowPair> flows;
  for (std::size_t f = 0; f < cfg.num_flows; ++f) {
    std::size_t a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
    std::size_t b = a;
    while (b == a) {
      b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
    }
    flows.push_back({a, b, {}});
  }

  LifetimeResult res;
  const std::size_t death_threshold = static_cast<std::size_t>(
      std::ceil(cfg.dead_fraction * static_cast<double>(net.size())));
  double t = 0.0;
  double next_refresh = 0.0;
  const double packets_per_tick = cfg.packets_per_second * cfg.tick_s;

  while (t < cfg.max_time_s) {
    // Injected crash/repair events land at tick boundaries (times in
    // seconds); non-kNode events in a merged schedule are simply skipped.
    injector.poll(t, [&](const fault::FaultEvent& e) {
      if (e.target != fault::Target::kNode) return;
      if (e.kind == fault::FaultKind::kFail) {
        net.fail_node(e.id);
        ++res.faults_applied;
      } else if (e.kind == fault::FaultKind::kRepair) {
        net.repair_node(e.id);
        ++res.repairs_applied;
      }
      // kSoftFail/kScrub: transient corruption is a channel-layer concern
      // (SlotLossTrace); node liveness is unaffected.
    });

    if (cfg.mobile) net.move(cfg.tick_s);

    // Idle-listening / sleep drain accrues every tick.
    net.charge_idle(cfg.tick_s);

    // Periodic route discovery: a flood per refresh interval (shared by all
    // flows, as a proactive table-driven protocol would batch it).
    const bool refresh = t >= next_refresh;
    if (refresh) {
      next_refresh = t + cfg.route_refresh_s;
      ++res.route_discoveries;
      if (p == Protocol::kGafSleep) {
        std::vector<std::size_t> endpoints;
        for (const auto& f : flows) {
          endpoints.push_back(f.src);
          endpoints.push_back(f.dst);
        }
        gaf_elect_leaders(net, endpoints);
      }
      const double before = [&] {
        double b = 0.0;
        for (std::size_t i = 0; i < net.size(); ++i) b += net.node(i).battery_j;
        return b;
      }();
      net.charge_flood(cfg.control_packet_bits);
      double after = 0.0;
      for (std::size_t i = 0; i < net.size(); ++i) after += net.node(i).battery_j;
      res.control_energy_j += before - after;
      for (auto& f : flows) {
        f.route = find_route(net, p, f.src, f.dst, cfg.packet_bits);
        if (f.route.size() >= 2) {
          f.consecutive_fail = 0;  // the periodic refresh healed the flow
          f.next_repair_t = 0.0;
        }
      }
    }

    // Deliver this tick's packets along cached routes.
    for (auto& f : flows) {
      if (!net.node(f.src).alive || !net.node(f.dst).alive) continue;
      // HOLMS_LINT_ALLOW(D006): double-typed loop counter with fixed stride, not a reduction
      for (double k = 0.0; k < packets_per_tick; k += 1.0) {
        ++res.packets_sent;
        // Validate the cached route (mobility or deaths may break it).
        bool ok = f.route.size() >= 2;
        for (std::size_t h = 0; ok && h + 1 < f.route.size(); ++h) {
          ok = net.connected(f.route[h], f.route[h + 1]);
        }
        if (!ok) {
          if (t < f.next_repair_t) {
            // Backing off after repeated failed repairs: don't flood the
            // (likely fragmented) network again yet — the packet is lost.
            ++res.packets_blackholed;
            continue;
          }
          // On-demand repair: one more discovery flood.
          ++res.route_discoveries;
          ++res.route_repairs;
          net.charge_flood(cfg.control_packet_bits);
          res.control_energy_j +=
              cfg.control_packet_bits * 1e-9 * 50.0 *
              static_cast<double>(net.alive_count());  // approx accounting
          f.route = find_route(net, p, f.src, f.dst, cfg.packet_bits);
          if (f.route.size() < 2) {
            ++res.repair_failures;
            ++f.consecutive_fail;
            if (f.consecutive_fail >= cfg.repair_retry_limit) {
              // Bounded retry exhausted: exponential backoff, doubling per
              // further failure, capped.
              const double expo = static_cast<double>(
                  f.consecutive_fail - cfg.repair_retry_limit);
              f.next_repair_t =
                  t + std::min(cfg.repair_backoff_s * std::pow(2.0, expo),
                               cfg.repair_backoff_max_s);
            }
            continue;  // unreachable this tick
          }
          f.consecutive_fail = 0;
          f.next_repair_t = 0.0;
        }
        for (std::size_t h = 0; h + 1 < f.route.size(); ++h) {
          net.charge_link(f.route[h], f.route[h + 1], cfg.packet_bits);
        }
        ++res.packets_delivered;
      }
    }

    net.tick_discharge(cfg.tick_s);
    t += cfg.tick_s;

    const std::size_t dead = net.size() - net.alive_count();
    if (dead > 0 && res.first_death_s == 0.0) res.first_death_s = t;
    if (dead >= death_threshold) break;
  }

  res.lifetime_s = t;
  if (res.first_death_s == 0.0) res.first_death_s = t;
  res.delivery_ratio =
      res.packets_sent
          ? static_cast<double>(res.packets_delivered) /
                static_cast<double>(res.packets_sent)
          : 0.0;
  sim::OnlineStats residual;
  for (std::size_t i = 0; i < net.size(); ++i) {
    residual.add(net.residual_fraction(i));
  }
  res.mean_residual_at_end = residual.mean();
  res.residual_stddev_at_end = residual.stddev();
  return res;
}

}  // namespace holms::manet
