#pragma once
// The voice-recognition application of paper §3.1, written for the HolMS
// ASIP: "a complete voice recognition system has been implemented using a
// base processor core enhanced with less than 10 low-complexity custom
// instructions ... speed-up factors between 5x-10x ... total gate count less
// than 200k."
//
// Pipeline (classic small-vocabulary recognizer):
//   1. filterbank — FIR energy filterbank over the audio signal (MAC loops)
//   2. vq         — vector quantization of energy vectors against a codebook
//   3. dtw        — dynamic-time-warping match against word templates
//
// `compile()` plays the role of the retargeted compiler: given the set of
// available custom instructions it emits either base-ISA or accelerated
// sequences from the same kernel source.

#include <cstdint>
#include <map>
#include <string>

#include "asip/builder.hpp"
#include "asip/iss.hpp"
#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::asip {

/// Extension availability map: extension name -> id in the ISS's registry.
using ExtMap = std::map<std::string, int>;

class VoiceRecognitionApp {
 public:
  struct Params {
    std::size_t signal_len = 2048;
    std::size_t frame_stride = 32;
    std::size_t num_filters = 16;   // == feature dimension
    std::size_t taps = 32;
    std::size_t codebook_size = 32;
    std::size_t num_templates = 4;
    std::size_t template_len = 16;

    /// Contract rule C001.  Derived quantities (frame count) are checked by
    /// the constructor; this covers the raw fields.
    void validate() const {
      if (signal_len < taps || frame_stride == 0) {
        throw holms::InvalidArgument("VoiceRecognitionApp: bad signal params");
      }
      if (taps == 0 || num_filters == 0 || codebook_size == 0 ||
          num_templates == 0 || template_len == 0) {
        throw holms::InvalidArgument(
            "VoiceRecognitionApp: all kernel dimensions must be >= 1");
      }
    }
  };

  VoiceRecognitionApp() : VoiceRecognitionApp(Params{}) {}
  explicit VoiceRecognitionApp(const Params& p);

  /// Number of analysis frames derived from the signal length.
  std::size_t num_frames() const { return frames_; }

  /// Fills processor memory with a synthetic utterance, filter coefficients,
  /// codebook and templates.  Deterministic given the rng.
  void plant_inputs(CpuState& state, sim::Rng& rng) const;

  /// Emits the full three-kernel program; uses custom instructions for every
  /// extension present in `ext`.
  Program compile(const ExtMap& ext = {}) const;

  /// Reads the recognized template index back from memory.
  std::int32_t recognized_word(const CpuState& state) const;
  /// Reads the matching score (DTW distance) of the winner.
  std::int32_t best_score(const CpuState& state) const;

  // Memory layout (word addresses), public for tests.  Bases are offset off
  // power-of-two boundaries so the arrays do not alias in the direct-mapped
  // d-cache (prev/curr DTW rows in particular must not share lines).
  std::size_t sig_base() const { return 0; }
  std::size_t filt_base() const { return 4100; }
  std::size_t energy_base() const { return 8212; }
  std::size_t codebook_base() const { return 12340; }
  std::size_t qseq_base() const { return 16420; }
  std::size_t templ_base() const { return 20520; }
  std::size_t dtw_prev_base() const { return 24600; }
  std::size_t dtw_curr_base() const { return 24680; }
  std::size_t result_base() const { return 32000; }

  const Params& params() const { return p_; }

 private:
  void emit_filterbank(ProgramBuilder& b, const ExtMap& ext) const;
  void emit_vq(ProgramBuilder& b, const ExtMap& ext) const;
  void emit_dtw(ProgramBuilder& b, const ExtMap& ext) const;

  Params p_;
  std::size_t frames_ = 0;
};

/// Convenience: run `app` on a core described by (cfg, extension names) and
/// return the ISS result.  Used by the design-flow driver and benches.
RunResult evaluate_app(const VoiceRecognitionApp& app, const CoreConfig& cfg,
                       const std::vector<std::string>& extension_names,
                       std::uint64_t seed = 42,
                       std::int32_t* recognized = nullptr);

}  // namespace holms::asip
