#include "asip/kernels.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::asip {
namespace {

// Register conventions (locals per kernel; r0 is hardwired zero).
constexpr std::uint8_t R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6,
                       R7 = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12,
                       R13 = 13, R14 = 14, R15 = 15, R16 = 16, R17 = 17,
                       R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22;

constexpr std::int32_t kInf = 0x3FFFFFFF;
constexpr std::int32_t kEnergyShift = 12;

int ext_id(const ExtMap& ext, const char* name) {
  auto it = ext.find(name);
  return it == ext.end() ? -1 : it->second;
}

}  // namespace

VoiceRecognitionApp::VoiceRecognitionApp(const Params& p) : p_(p) {
  p_.validate();
  frames_ = (p_.signal_len - p_.taps) / p_.frame_stride;
  if (frames_ == 0 || frames_ > 2048) {
    throw holms::InvalidArgument("VoiceRecognitionApp: bad frame count");
  }
}

void VoiceRecognitionApp::plant_inputs(CpuState& state, sim::Rng& rng) const {
  // Synthetic utterance: two formant-like sinusoids with a slow envelope
  // plus noise — enough spectral structure for the filterbank to produce
  // non-degenerate energies.
  for (std::size_t i = 0; i < p_.signal_len; ++i) {
    const double t = static_cast<double>(i);
    const double env = 0.5 + 0.5 * std::sin(t * 0.004);
    const double v = env * (1200.0 * std::sin(t * 0.31) +
                            800.0 * std::sin(t * 0.11 + 1.0)) +
                     rng.normal(0.0, 120.0);
    state.poke(sig_base() + i, static_cast<std::int32_t>(v));
  }
  // Filter taps: random short kernels in [-256, 256].
  for (std::size_t f = 0; f < p_.num_filters; ++f) {
    for (std::size_t t = 0; t < p_.taps; ++t) {
      state.poke(filt_base() + f * p_.taps + t,
                 static_cast<std::int32_t>(rng.uniform_int(-256, 256)));
    }
  }
  // Codebook entries on the same scale as shifted energies.
  for (std::size_t c = 0; c < p_.codebook_size; ++c) {
    for (std::size_t d = 0; d < p_.num_filters; ++d) {
      state.poke(codebook_base() + c * p_.num_filters + d,
                 static_cast<std::int32_t>(rng.uniform_int(-2000, 2000)));
    }
  }
  // Word templates: sequences of codebook indices.
  for (std::size_t k = 0; k < p_.num_templates; ++k) {
    for (std::size_t j = 0; j < p_.template_len; ++j) {
      state.poke(templ_base() + k * p_.template_len + j,
                 static_cast<std::int32_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(p_.codebook_size) - 1)));
    }
  }
}

Program VoiceRecognitionApp::compile(const ExtMap& ext) const {
  if (ext_id(ext, kExtMacLoad) >= 0 && p_.taps % 4 != 0) {
    throw holms::InvalidArgument("mac.load requires taps % 4 == 0");
  }
  if (ext_id(ext, kExtSqdLoad) >= 0 && p_.num_filters % 4 != 0) {
    throw holms::InvalidArgument("sqd.load requires dims % 4 == 0");
  }
  ProgramBuilder b;
  emit_filterbank(b, ext);
  emit_vq(b, ext);
  emit_dtw(b, ext);
  return b.build();
}

void VoiceRecognitionApp::emit_filterbank(ProgramBuilder& b,
                                          const ExtMap& ext) const {
  const int mac = ext_id(ext, kExtMacLoad);
  const auto T = static_cast<std::int32_t>(p_.taps);
  const auto NF = static_cast<std::int32_t>(p_.num_filters);
  const auto F = static_cast<std::int32_t>(frames_);
  const auto STRIDE = static_cast<std::int32_t>(p_.frame_stride);

  b.region("filterbank");
  b.li(R11, T);
  b.li(R12, NF);
  b.li(R13, F);
  b.li(R14, STRIDE);
  b.li(R15, kEnergyShift);
  b.li(R1, 0);  // frame index
  b.label("fb_frame");
  {
    b.li(R2, 0);  // filter index
    b.label("fb_filter");
    {
      b.li(R3, 0);  // accumulator
      b.mul(R4, R1, R14);
      b.addi(R4, R4, static_cast<std::int32_t>(sig_base()));
      b.mul(R5, R2, R11);
      b.addi(R5, R5, static_cast<std::int32_t>(filt_base()));
      b.li(R6, 0);  // tap index
      b.label("fb_tap");
      if (mac >= 0) {
        b.custom(mac, R3, R4, R5);
        b.addi(R6, R6, 4);
      } else {
        b.lw(R7, R4);
        b.lw(R8, R5);
        b.mul(R9, R7, R8);
        b.add(R3, R3, R9);
        b.addi(R4, R4, 1);
        b.addi(R5, R5, 1);
        b.addi(R6, R6, 1);
      }
      b.blt(R6, R11, "fb_tap");
      // Scale the energy down to the codebook range.
      b.sra(R3, R3, R15);
      b.mul(R9, R1, R12);
      b.add(R9, R9, R2);
      b.addi(R9, R9, static_cast<std::int32_t>(energy_base()));
      b.sw(R9, R3);
      b.addi(R2, R2, 1);
      b.blt(R2, R12, "fb_filter");
    }
    b.addi(R1, R1, 1);
    b.blt(R1, R13, "fb_frame");
  }
}

void VoiceRecognitionApp::emit_vq(ProgramBuilder& b, const ExtMap& ext) const {
  const int sqd = ext_id(ext, kExtSqdLoad);
  const auto DIM = static_cast<std::int32_t>(p_.num_filters);
  const auto CB = static_cast<std::int32_t>(p_.codebook_size);
  const auto F = static_cast<std::int32_t>(frames_);

  b.region("vq");
  b.li(R11, DIM);
  b.li(R12, CB);
  b.li(R13, F);
  b.li(R1, 0);  // frame index
  b.label("vq_frame");
  {
    b.mul(R18, R1, R11);
    b.addi(R18, R18, static_cast<std::int32_t>(energy_base()));
    b.li(R16, kInf);  // best distance
    b.li(R17, 0);     // best index
    b.li(R2, 0);      // codeword index
    b.label("vq_code");
    {
      b.li(R3, 0);  // distance accumulator
      b.mov(R4, R18);
      b.mul(R5, R2, R11);
      b.addi(R5, R5, static_cast<std::int32_t>(codebook_base()));
      b.li(R6, 0);  // dimension index
      b.label("vq_dim");
      if (sqd >= 0) {
        b.custom(sqd, R3, R4, R5);
        b.addi(R6, R6, 4);
      } else {
        b.lw(R7, R4);
        b.lw(R8, R5);
        b.sub(R9, R7, R8);
        b.mul(R9, R9, R9);
        b.add(R3, R3, R9);
        b.addi(R4, R4, 1);
        b.addi(R5, R5, 1);
        b.addi(R6, R6, 1);
      }
      b.blt(R6, R11, "vq_dim");
      b.bge(R3, R16, "vq_skip");
      b.mov(R16, R3);
      b.mov(R17, R2);
      b.label("vq_skip");
      b.addi(R2, R2, 1);
      b.blt(R2, R12, "vq_code");
    }
    b.addi(R9, R1, static_cast<std::int32_t>(qseq_base()));
    b.sw(R9, R17);
    b.addi(R1, R1, 1);
    b.blt(R1, R13, "vq_frame");
  }
}

void VoiceRecognitionApp::emit_dtw(ProgramBuilder& b, const ExtMap& ext) const {
  const int absd = ext_id(ext, kExtAbsDiff);
  const int min2 = ext_id(ext, kExtMin2);
  const int cell = ext_id(ext, kExtDtwCell);
  const auto TL = static_cast<std::int32_t>(p_.template_len);
  const auto F = static_cast<std::int32_t>(frames_);
  const auto K = static_cast<std::int32_t>(p_.num_templates);

  b.region("dtw");
  b.li(R11, TL);
  b.li(R12, F);
  b.li(R13, K);
  b.li(R14, static_cast<std::int32_t>(dtw_prev_base()));
  b.li(R15, static_cast<std::int32_t>(dtw_curr_base()));
  b.li(R16, kInf);
  b.li(R17, kInf);  // best score so far
  b.li(R18, 0);     // best template index
  b.li(R20, static_cast<std::int32_t>(qseq_base()));
  b.addi(R21, R11, 1);  // TL + 1 (row length)
  b.addi(R22, R12, 1);  // F + 1
  b.li(R1, 0);  // template index
  b.label("dtw_template");
  {
    b.mul(R19, R1, R11);
    b.addi(R19, R19, static_cast<std::int32_t>(templ_base()));
    // prev[0] = 0, prev[1..TL] = INF.
    b.sw(R14, 0, 0);  // prev[0] = r0 (zero)
    b.li(R3, 1);
    b.label("dtw_initrow");
    b.add(R5, R14, R3);
    b.sw(R5, R16);
    b.addi(R3, R3, 1);
    b.blt(R3, R21, "dtw_initrow");

    b.li(R2, 1);  // i = 1..F
    b.label("dtw_i");
    {
      b.sw(R15, R16, 0);  // curr[0] = INF
      b.add(R4, R20, R2);
      b.lw(R4, R4, -1);  // q[i-1]
      b.li(R3, 1);       // j = 1..TL
      b.label("dtw_j");
      {
        b.add(R5, R19, R3);
        b.lw(R5, R5, -1);  // t[j-1]
        // Local cost c = |q - t| into R6.
        if (absd >= 0) {
          b.custom(absd, R6, R4, R5);
        } else {
          b.sub(R6, R4, R5);
          b.bge(R6, 0, "dtw_abs");
          b.sub(R6, 0, R6);
          b.label("dtw_abs");
        }
        if (cell >= 0) {
          // Fused DP-cell: curr[j] = c + min(prev[j], prev[j-1], curr[j-1]).
          b.add(R8, R14, R3);
          b.add(R9, R15, R3);
          b.custom(cell, R6, R8, R9);
        } else {
          // m = min(prev[j], prev[j-1], curr[j-1]) into R10.
          b.add(R8, R14, R3);
          b.lw(R7, R8, 0);
          b.lw(R8, R8, -1);
          b.add(R9, R15, R3);
          b.lw(R9, R9, -1);
          if (min2 >= 0) {
            b.custom(min2, R10, R7, R8);
            b.custom(min2, R10, R10, R9);
          } else {
            b.mov(R10, R7);
            b.bge(R8, R10, "dtw_m1");
            b.mov(R10, R8);
            b.label("dtw_m1");
            b.bge(R9, R10, "dtw_m2");
            b.mov(R10, R9);
            b.label("dtw_m2");
          }
          b.add(R6, R6, R10);
          b.add(R9, R15, R3);
          b.sw(R9, R6);
        }
        b.addi(R3, R3, 1);
        b.blt(R3, R21, "dtw_j");
      }
      // Rotate rows: the just-computed row becomes prev (pointer swap, no
      // copy — both row buffers live in scratch memory).
      b.mov(R9, R14);
      b.mov(R14, R15);
      b.mov(R15, R9);
      b.addi(R2, R2, 1);
      b.blt(R2, R22, "dtw_i");
    }
    // Score = prev[TL]; keep per-template score and the arg-min.
    b.add(R8, R14, R11);
    b.lw(R9, R8, 0);
    b.addi(R8, R1, static_cast<std::int32_t>(result_base()) + 2);
    b.sw(R8, R9);
    b.bge(R9, R17, "dtw_next");
    b.mov(R17, R9);
    b.mov(R18, R1);
    b.label("dtw_next");
    b.addi(R1, R1, 1);
    b.blt(R1, R13, "dtw_template");
  }
  // Publish the decision.
  b.li(R8, static_cast<std::int32_t>(result_base()));
  b.sw(R8, R18, 0);
  b.sw(R8, R17, 1);
  b.halt();
}

std::int32_t VoiceRecognitionApp::recognized_word(const CpuState& s) const {
  return s.peek(result_base());
}

std::int32_t VoiceRecognitionApp::best_score(const CpuState& s) const {
  return s.peek(result_base() + 1);
}

RunResult evaluate_app(const VoiceRecognitionApp& app, const CoreConfig& cfg,
                       const std::vector<std::string>& extension_names,
                       std::uint64_t seed, std::int32_t* recognized) {
  std::vector<Extension> exts;
  ExtMap map;
  for (const auto& name : extension_names) {
    map[name] = static_cast<int>(exts.size());
    exts.push_back(find_extension(name));
  }
  Iss iss(cfg, std::move(exts));
  sim::Rng rng(seed);
  app.plant_inputs(iss.state(), rng);
  const Program prog = app.compile(map);
  RunResult r = iss.run(prog);
  if (recognized) *recognized = app.recognized_word(iss.state());
  return r;
}

}  // namespace holms::asip
