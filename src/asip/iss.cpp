#include "asip/iss.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::asip {

std::string opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kHalt: return "halt";
    case Opcode::kLi: return "li";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSra: return "sra";
    case Opcode::kAddi: return "addi";
    case Opcode::kLw: return "lw";
    case Opcode::kSw: return "sw";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kJmp: return "jmp";
    case Opcode::kCustom: return "custom";
  }
  return "?";
}

namespace {
// Direct-mapped cache with 4-word lines: streaming access patterns hit 3 of
// every 4 words, which is the locality real multimedia kernels rely on.
constexpr std::size_t kWordsPerLine = 4;
}  // namespace

std::int32_t CpuState::load(std::size_t addr) {
  ++loads;
  if (cache_enabled_ && !tags_.empty()) {
    const std::size_t block = addr / kWordsPerLine;
    const std::size_t line = block % tags_.size();
    if (tags_[line] != static_cast<std::int64_t>(block)) {
      tags_[line] = static_cast<std::int64_t>(block);
      ++dcache_misses;
      ++pending_miss_cycles_;
    }
  }
  return mem_.at(addr);
}

void CpuState::store(std::size_t addr, std::int32_t v) {
  ++stores;
  if (cache_enabled_ && !tags_.empty()) {
    const std::size_t block = addr / kWordsPerLine;
    const std::size_t line = block % tags_.size();
    if (tags_[line] != static_cast<std::int64_t>(block)) {
      tags_[line] = static_cast<std::int64_t>(block);
      ++dcache_misses;
      ++pending_miss_cycles_;
    }
  }
  mem_.at(addr) = v;
}

Iss::Iss(CoreConfig cfg, std::vector<Extension> extensions,
         std::size_t mem_words)
    : cfg_(cfg), extensions_(std::move(extensions)), state_(mem_words) {
  if (cfg_.include_mac_block) costs_.mul_cycles = 1.0;
  state_.cache_enabled_ = cfg_.include_dcache;
  if (cfg_.include_dcache) {
    state_.tags_.assign(cfg_.dcache_lines, -1);
  }
  for (std::size_t i = 0; i < extensions_.size(); ++i) {
    extensions_[i].id = static_cast<int>(i);
    if (!extensions_[i].semantics) {
      throw holms::InvalidArgument("Iss: extension without semantics");
    }
  }
}

RunResult Iss::run(const Program& program, std::uint64_t max_cycles) {
  RunResult res;
  if (program.code.empty()) {
    res.halted = true;
    return res;
  }
  if (program.region.size() != program.code.size()) {
    throw holms::InvalidArgument("Iss::run: region map size mismatch");
  }
  std::size_t pc = 0;
  const std::size_t n = program.code.size();
  int pending_load_dest = -1;  // register written by the previous kLw
  while (res.cycles < max_cycles) {
    if (pc >= n) break;  // falling off the end behaves like halt
    const Instr& in = program.code[pc];
    const std::string& region = program.region[pc];
    double cycles = 0.0;
    double energy = 0.0;
    std::size_t next_pc = pc + 1;
    state_.pending_miss_cycles_ = 0;

    // Load-use pipeline interlock: one bubble when this instruction reads
    // the register the previous load produced.
    double stall_cycles = 0.0;
    double stall_energy = 0.0;
    if (cfg_.model_pipeline_hazards && pending_load_dest > 0) {
      bool reads = false;
      switch (in.op) {
        case Opcode::kHalt:
        case Opcode::kLi:
        case Opcode::kJmp:
          break;
        case Opcode::kMov:
        case Opcode::kAddi:
        case Opcode::kLw:
          reads = in.rs1 == pending_load_dest;
          break;
        case Opcode::kCustom:
          // Fused ops read all three operand registers (rd is often an
          // accumulator).
          reads = in.rs1 == pending_load_dest ||
                  in.rs2 == pending_load_dest || in.rd == pending_load_dest;
          break;
        default:
          reads = in.rs1 == pending_load_dest || in.rs2 == pending_load_dest;
          break;
      }
      if (reads) {
        stall_cycles = costs_.load_use_stall;
        stall_energy = costs_.alu_energy * 0.25;  // bubble clocks the pipe
      }
    }
    pending_load_dest = in.op == Opcode::kLw ? in.rd : -1;

    auto r = [this](std::size_t i) { return state_.reg(i); };

    switch (in.op) {
      case Opcode::kHalt:
        res.halted = true;
        break;
      case Opcode::kLi:
        state_.set_reg(in.rd, in.imm);
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kMov:
        state_.set_reg(in.rd, r(in.rs1));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kAdd:
        state_.set_reg(in.rd, r(in.rs1) + r(in.rs2));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kSub:
        state_.set_reg(in.rd, r(in.rs1) - r(in.rs2));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kMul:
        state_.set_reg(in.rd, r(in.rs1) * r(in.rs2));
        cycles = costs_.mul_cycles;
        energy = costs_.mul_energy;
        break;
      case Opcode::kAnd:
        state_.set_reg(in.rd, r(in.rs1) & r(in.rs2));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kOr:
        state_.set_reg(in.rd, r(in.rs1) | r(in.rs2));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kXor:
        state_.set_reg(in.rd, r(in.rs1) ^ r(in.rs2));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kSll:
        state_.set_reg(in.rd, r(in.rs1) << (r(in.rs2) & 31));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kSra:
        state_.set_reg(in.rd, r(in.rs1) >> (r(in.rs2) & 31));
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kAddi:
        state_.set_reg(in.rd, r(in.rs1) + in.imm);
        cycles = costs_.alu_cycles;
        energy = costs_.alu_energy;
        break;
      case Opcode::kLw:
        state_.set_reg(in.rd, state_.load(
            static_cast<std::size_t>(r(in.rs1) + in.imm)));
        cycles = costs_.mem_cycles;
        energy = costs_.mem_energy;
        break;
      case Opcode::kSw:
        state_.store(static_cast<std::size_t>(r(in.rs1) + in.imm), r(in.rs2));
        cycles = costs_.mem_cycles;
        energy = costs_.mem_energy;
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge: {
        const std::int32_t a = r(in.rs1), b = r(in.rs2);
        bool taken = false;
        switch (in.op) {
          case Opcode::kBeq: taken = a == b; break;
          case Opcode::kBne: taken = a != b; break;
          case Opcode::kBlt: taken = a < b; break;
          default: taken = a >= b; break;
        }
        cycles = costs_.branch_cycles + (taken ? costs_.taken_extra : 0.0);
        energy = costs_.branch_energy;
        if (taken) next_pc = static_cast<std::size_t>(in.imm);
        break;
      }
      case Opcode::kJmp:
        cycles = costs_.branch_cycles + costs_.taken_extra;
        energy = costs_.branch_energy;
        next_pc = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kCustom: {
        const std::size_t ext = static_cast<std::size_t>(in.imm);
        if (ext >= extensions_.size()) {
          throw holms::RuntimeError("Iss: undefined custom instruction");
        }
        extensions_[ext].semantics(state_, in);
        cycles = extensions_[ext].cycles;
        energy = extensions_[ext].energy_pj;
        break;
      }
    }

    // Cache misses raised inside load/store (base or fused) stall the pipe.
    cycles += static_cast<double>(state_.pending_miss_cycles_) *
                  costs_.miss_penalty +
              stall_cycles;
    energy += static_cast<double>(state_.pending_miss_cycles_) *
                  costs_.miss_energy +
              stall_energy;

    res.cycles += static_cast<std::uint64_t>(cycles);
    res.energy_pj += energy;
    ++res.instructions;
    auto& rp = res.by_region[region];
    ++rp.instructions;
    rp.cycles += static_cast<std::uint64_t>(cycles);
    rp.energy_pj += energy;

    if (in.op == Opcode::kHalt) break;
    pc = next_pc;
  }
  return res;
}

std::vector<std::pair<std::string, RegionProfile>> hotspots(
    const RunResult& r) {
  std::vector<std::pair<std::string, RegionProfile>> v(r.by_region.begin(),
                                                       r.by_region.end());
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second.cycles > b.second.cycles;
  });
  return v;
}

}  // namespace holms::asip
