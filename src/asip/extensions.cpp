#include "asip/extensions.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "asip/iss.hpp"

#include "exec/error.hpp"

namespace holms::asip {
namespace {

std::int32_t sat16(std::int64_t v) {
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(v, -32768, 32767));
}

}  // namespace

std::vector<Extension> extension_catalog() {
  std::vector<Extension> cat;

  // acc(rd) += sum_{k<4} mem[rs1+k]*mem[rs2+k]; rs1 += 4; rs2 += 4 — a
  // 4-lane fused MAC with dual post-incrementing streaming loads: the classic
  // FIR/dot-product accelerator datapath of commercial ASIP flows.
  cat.push_back(Extension{
      kExtMacLoad, -1, 2.0, 14000.0, 30.0,
      [](CpuState& s, const Instr& in) {
        std::int32_t acc = s.reg(in.rd);
        for (int k = 0; k < 4; ++k) {
          const std::int32_t a =
              s.load(static_cast<std::size_t>(s.reg(in.rs1)) + k);
          const std::int32_t b =
              s.load(static_cast<std::size_t>(s.reg(in.rs2)) + k);
          acc += a * b;
        }
        s.set_reg(in.rd, acc);
        s.set_reg(in.rs1, s.reg(in.rs1) + 4);
        s.set_reg(in.rs2, s.reg(in.rs2) + 4);
      }});

  // acc(rd) += sum_{k<4} (mem[rs1+k]-mem[rs2+k])^2; pointers += 4 — 4-lane
  // L2-distance step for vector quantization.
  cat.push_back(Extension{
      kExtSqdLoad, -1, 2.0, 16000.0, 34.0,
      [](CpuState& s, const Instr& in) {
        std::int32_t acc = s.reg(in.rd);
        for (int k = 0; k < 4; ++k) {
          const std::int32_t a =
              s.load(static_cast<std::size_t>(s.reg(in.rs1)) + k);
          const std::int32_t b =
              s.load(static_cast<std::size_t>(s.reg(in.rs2)) + k);
          const std::int32_t d = a - b;
          acc += d * d;
        }
        s.set_reg(in.rd, acc);
        s.set_reg(in.rs1, s.reg(in.rs1) + 4);
        s.set_reg(in.rs2, s.reg(in.rs2) + 4);
      }});

  // rd = |rs1 - rs2| — DTW local cost.
  cat.push_back(Extension{
      kExtAbsDiff, -1, 1.0, 2500.0, 5.0,
      [](CpuState& s, const Instr& in) {
        s.set_reg(in.rd, std::abs(s.reg(in.rs1) - s.reg(in.rs2)));
      }});

  // rd = min(rs1, rs2) — DTW predecessor selection.
  cat.push_back(Extension{
      kExtMin2, -1, 1.0, 2000.0, 4.0,
      [](CpuState& s, const Instr& in) {
        s.set_reg(in.rd, std::min(s.reg(in.rs1), s.reg(in.rs2)));
      }});

  // rd = sat16(rs1 + rs2) — saturating audio arithmetic.
  cat.push_back(Extension{
      kExtSatAdd, -1, 1.0, 3000.0, 5.0,
      [](CpuState& s, const Instr& in) {
        s.set_reg(in.rd, sat16(static_cast<std::int64_t>(s.reg(in.rs1)) +
                               s.reg(in.rs2)));
      }});

  // acc(rd) += (rs1 * rs2) >> 15 — Q15 fixed-point MAC (register form).
  cat.push_back(Extension{
      kExtShiftMac, -1, 1.0, 9000.0, 12.0,
      [](CpuState& s, const Instr& in) {
        const std::int64_t p =
            static_cast<std::int64_t>(s.reg(in.rs1)) * s.reg(in.rs2);
        s.set_reg(in.rd, s.reg(in.rd) + static_cast<std::int32_t>(p >> 15));
      }});

  // Fused dynamic-programming cell update for DTW/Viterbi-style kernels:
  // M[rs2] = rd + min(M[rs1], M[rs1 - 1], M[rs2 - 1]) where rs1 points at
  // prev[j] and rs2 at curr[j].  Three loads, a 3-way min, an add and a
  // store collapse into one multi-cycle instruction — the classic DP-lattice
  // accelerator of commercial extensible-processor flows.
  cat.push_back(Extension{
      kExtDtwCell, -1, 3.0, 13000.0, 32.0,
      [](CpuState& s, const Instr& in) {
        const auto pj = static_cast<std::size_t>(s.reg(in.rs1));
        const auto cj = static_cast<std::size_t>(s.reg(in.rs2));
        const std::int32_t m =
            std::min({s.load(pj), s.load(pj - 1), s.load(cj - 1)});
        s.store(cj, s.reg(in.rd) + m);
      }});

  return cat;
}

Extension find_extension(const std::string& name) {
  for (auto& e : extension_catalog()) {
    if (e.name == name) return e;
  }
  throw holms::InvalidArgument("unknown extension: " + name);
}

double total_gates(const CoreConfig& cfg,
                   const std::vector<Extension>& selected) {
  double g = cfg.base_gates;
  if (cfg.include_mac_block) g += 9000.0;
  if (cfg.include_dcache) {
    // Tag + data array: ~55 gates per cached word plus control.
    g += 2500.0 + 55.0 * static_cast<double>(cfg.dcache_lines);
  }
  // Register file below the full 32 saves ~350 gates per register.
  if (cfg.num_registers < kNumRegs) {
    g -= 350.0 * static_cast<double>(kNumRegs - cfg.num_registers);
  }
  // HOLMS_LINT_ALLOW(D006): gate-count sum over the fixed selection order; cold synthesis-area estimate
  for (const auto& e : selected) g += e.gate_count;
  return g;
}

}  // namespace holms::asip
