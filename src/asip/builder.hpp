#pragma once
// Tiny structured assembler for the HolMS ASIP — the stand-in for the
// "retargetable tool generation" box of Fig.2: the kernel library emits
// either base-ISA sequences or custom-instruction sequences from the same
// source, exactly like a retargeted compiler would.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asip/isa.hpp"

namespace holms::asip {

/// Forward-reference-friendly program builder with labels and regions.
class ProgramBuilder {
 public:
  /// All instructions emitted until the next `region()` call are attributed
  /// to `name` in ISS profiles.
  void region(std::string name) { current_region_ = std::move(name); }

  /// Declares/pins a label at the next emitted instruction.
  void label(const std::string& name);

  // -- instruction emitters (registers are indices 0..31, r0 == 0) --
  void li(std::uint8_t rd, std::int32_t imm) { emit({Opcode::kLi, rd, 0, 0, imm}); }
  void mov(std::uint8_t rd, std::uint8_t rs1) { emit({Opcode::kMov, rd, rs1, 0, 0}); }
  void add(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kAdd, rd, a, b, 0}); }
  void sub(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kSub, rd, a, b, 0}); }
  void mul(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kMul, rd, a, b, 0}); }
  void and_(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kAnd, rd, a, b, 0}); }
  void or_(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kOr, rd, a, b, 0}); }
  void xor_(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kXor, rd, a, b, 0}); }
  void sll(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kSll, rd, a, b, 0}); }
  void sra(std::uint8_t rd, std::uint8_t a, std::uint8_t b) { emit({Opcode::kSra, rd, a, b, 0}); }
  void addi(std::uint8_t rd, std::uint8_t a, std::int32_t imm) { emit({Opcode::kAddi, rd, a, 0, imm}); }
  void lw(std::uint8_t rd, std::uint8_t base, std::int32_t off = 0) { emit({Opcode::kLw, rd, base, 0, off}); }
  void sw(std::uint8_t base, std::uint8_t src, std::int32_t off = 0) { emit({Opcode::kSw, 0, base, src, off}); }
  void beq(std::uint8_t a, std::uint8_t b, const std::string& target) { branch(Opcode::kBeq, a, b, target); }
  void bne(std::uint8_t a, std::uint8_t b, const std::string& target) { branch(Opcode::kBne, a, b, target); }
  void blt(std::uint8_t a, std::uint8_t b, const std::string& target) { branch(Opcode::kBlt, a, b, target); }
  void bge(std::uint8_t a, std::uint8_t b, const std::string& target) { branch(Opcode::kBge, a, b, target); }
  void jmp(const std::string& target) { branch(Opcode::kJmp, 0, 0, target); }
  void halt() { emit({Opcode::kHalt, 0, 0, 0, 0}); }

  /// Emits custom instruction `ext_id` (index into the ISS extension list).
  void custom(int ext_id, std::uint8_t rd, std::uint8_t rs1,
              std::uint8_t rs2) {
    emit({Opcode::kCustom, rd, rs1, rs2, ext_id});
  }

  /// Resolves all label references and returns the program.  Throws on
  /// undefined labels.  The builder can be reused afterwards.
  Program build();

  std::size_t next_index() const { return code_.size(); }

 private:
  void emit(Instr in);
  void branch(Opcode op, std::uint8_t a, std::uint8_t b,
              const std::string& target);

  struct Fixup {
    std::size_t at;
    std::string target;
  };

  std::vector<Instr> code_;
  std::vector<std::string> regions_;
  std::string current_region_ = "main";
  std::map<std::string, std::size_t> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace holms::asip
