#include "asip/builder.hpp"

#include <stdexcept>

#include "exec/error.hpp"

namespace holms::asip {

void ProgramBuilder::label(const std::string& name) {
  if (labels_.count(name)) {
    throw holms::InvalidArgument("duplicate label: " + name);
  }
  labels_[name] = code_.size();
}

void ProgramBuilder::emit(Instr in) {
  code_.push_back(in);
  regions_.push_back(current_region_);
}

void ProgramBuilder::branch(Opcode op, std::uint8_t a, std::uint8_t b,
                            const std::string& target) {
  fixups_.push_back({code_.size(), target});
  emit({op, 0, a, b, 0});
}

Program ProgramBuilder::build() {
  for (const auto& f : fixups_) {
    auto it = labels_.find(f.target);
    if (it == labels_.end()) {
      throw holms::InvalidArgument("undefined label: " + f.target);
    }
    code_[f.at].imm = static_cast<std::int32_t>(it->second);
  }
  Program p;
  p.code = code_;
  p.region = regions_;
  return p;
}

}  // namespace holms::asip
