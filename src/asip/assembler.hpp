#pragma once
// Text assembler for the HolMS ASIP.
//
// Lets programs be written as plain text instead of builder calls — the
// front door a downstream user of the ISS actually wants.  Syntax, one
// instruction per line:
//
//   ; comment                       # comment
//   .region filterbank              ; profiling region for what follows
//   loop:                           ; label
//     li    r1, 42
//     add   r3, r1, r2
//     lw    r4, r1, 8               ; r4 = mem[r1 + 8]
//     sw    r1, r4, -2              ; mem[r1 - 2] = r4
//     blt   r1, r2, loop
//     custom 0, r3, r1, r2          ; extension #0
//     halt
//
// Registers are r0..r31; immediates are decimal (optionally negative).
// Errors throw AssemblerError with the offending line number.

#include <string>

#include "asip/isa.hpp"
#include "exec/error.hpp"

namespace holms::asip {

class AssemblerError : public holms::RuntimeError {
 public:
  AssemblerError(std::size_t line, const std::string& message)
      : holms::RuntimeError("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assembles `source` into an executable Program.
Program assemble(const std::string& source);

/// Disassembles one instruction (for diagnostics and round-trip tests).
std::string disassemble(const Instr& instr);

}  // namespace holms::asip
