#pragma once
// Base instruction set of the HolMS extensible processor (paper §3.1).
//
// A deliberately small RISC core — the point of the ASIP methodology is that
// the *base* ISA is generic and cheap, and application performance comes from
// custom instruction extensions layered on top (Fig.2).  The ISS in iss.hpp
// executes this ISA cycle-by-cycle; extensions.hpp adds fused operations.

#include <cstdint>
#include <string>
#include <vector>

namespace holms::asip {

inline constexpr std::size_t kNumRegs = 32;

enum class Opcode : std::uint8_t {
  kHalt,
  kLi,    // rd = imm
  kMov,   // rd = rs1
  kAdd,   // rd = rs1 + rs2
  kSub,
  kMul,   // multi-cycle on the base core
  kAnd,
  kOr,
  kXor,
  kSll,   // rd = rs1 << (rs2 & 31)
  kSra,   // rd = rs1 >> (rs2 & 31), arithmetic
  kAddi,  // rd = rs1 + imm
  kLw,    // rd = mem[rs1 + imm]
  kSw,    // mem[rs1 + imm] = rs2
  kBeq,   // if (rs1 == rs2) goto imm (absolute instruction index)
  kBne,
  kBlt,
  kBge,
  kJmp,   // goto imm
  kCustom,  // extension instruction; ext id in imm, regs rd/rs1/rs2
};

/// One decoded instruction.  `imm` doubles as the branch target (absolute
/// instruction index, resolved by the builder) and the extension id for
/// kCustom.
struct Instr {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

/// A program plus the region map used for profiling: region[i] names the
/// source kernel/loop instruction i belongs to.
struct Program {
  std::vector<Instr> code;
  std::vector<std::string> region;  // parallel to code

  std::size_t size() const { return code.size(); }
};

/// Human-readable opcode name (diagnostics and profile reports).
std::string opcode_name(Opcode op);

}  // namespace holms::asip
