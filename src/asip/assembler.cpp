#include "asip/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "asip/builder.hpp"

#include "exec/error.hpp"

namespace holms::asip {
namespace {

struct OpSpec {
  Opcode op;
  // Operand shape: "d,a,b" register triple; "d,i" reg+imm; "d,a" two regs;
  // "d,a,i" two regs + imm; "a,b,L" two regs + label; "L" label; "" none;
  // "i,d,a,b" custom (ext id + 3 regs).
  const char* shape;
};

const std::map<std::string, OpSpec>& op_table() {
  static const std::map<std::string, OpSpec> table = {
      {"halt", {Opcode::kHalt, ""}},
      {"li", {Opcode::kLi, "d,i"}},
      {"mov", {Opcode::kMov, "d,a"}},
      {"add", {Opcode::kAdd, "d,a,b"}},
      {"sub", {Opcode::kSub, "d,a,b"}},
      {"mul", {Opcode::kMul, "d,a,b"}},
      {"and", {Opcode::kAnd, "d,a,b"}},
      {"or", {Opcode::kOr, "d,a,b"}},
      {"xor", {Opcode::kXor, "d,a,b"}},
      {"sll", {Opcode::kSll, "d,a,b"}},
      {"sra", {Opcode::kSra, "d,a,b"}},
      {"addi", {Opcode::kAddi, "d,a,i"}},
      {"lw", {Opcode::kLw, "d,a,i?"}},
      {"sw", {Opcode::kSw, "a,b,i?"}},
      {"beq", {Opcode::kBeq, "a,b,L"}},
      {"bne", {Opcode::kBne, "a,b,L"}},
      {"blt", {Opcode::kBlt, "a,b,L"}},
      {"bge", {Opcode::kBge, "a,b,L"}},
      {"jmp", {Opcode::kJmp, "L"}},
      {"custom", {Opcode::kCustom, "i,d,a,b"}},
  };
  return table;
}

std::string strip(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  const std::string last = strip(cur);
  if (!last.empty()) out.push_back(last);
  return out;
}

std::uint8_t parse_reg(std::size_t line, const std::string& tok) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    throw AssemblerError(line, "expected register, got '" + tok + "'");
  }
  int v = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
      throw AssemblerError(line, "bad register '" + tok + "'");
    }
    v = v * 10 + (tok[i] - '0');
  }
  if (v >= static_cast<int>(kNumRegs)) {
    throw AssemblerError(line, "register out of range '" + tok + "'");
  }
  return static_cast<std::uint8_t>(v);
}

std::int32_t parse_imm(std::size_t line, const std::string& tok) {
  try {
    std::size_t used = 0;
    const long v = std::stol(tok, &used, 0);
    if (used != tok.size()) throw holms::InvalidArgument(tok);
    return static_cast<std::int32_t>(v);
  } catch (const std::exception&) {
    throw AssemblerError(line, "bad immediate '" + tok + "'");
  }
}

}  // namespace

Program assemble(const std::string& source) {
  ProgramBuilder b;
  std::istringstream in(source);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments (';' or '#').
    const auto cpos = raw.find_first_of(";#");
    std::string line = strip(cpos == std::string::npos
                                 ? raw
                                 : raw.substr(0, cpos));
    if (line.empty()) continue;

    // Directives.
    if (line.rfind(".region", 0) == 0) {
      const std::string name = strip(line.substr(7));
      if (name.empty()) throw AssemblerError(lineno, ".region needs a name");
      b.region(name);
      continue;
    }
    // Labels (possibly followed by an instruction on the same line).
    const auto colon = line.find(':');
    if (colon != std::string::npos &&
        line.find_first_of(" \t") > colon) {
      const std::string label = strip(line.substr(0, colon));
      if (label.empty()) throw AssemblerError(lineno, "empty label");
      try {
        b.label(label);
      } catch (const std::invalid_argument& e) {
        throw AssemblerError(lineno, e.what());
      }
      line = strip(line.substr(colon + 1));
      if (line.empty()) continue;
    }

    // Mnemonic + operands.
    const auto sp = line.find_first_of(" \t");
    const std::string mnem =
        sp == std::string::npos ? line : line.substr(0, sp);
    std::string lower = mnem;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    const auto it = op_table().find(lower);
    if (it == op_table().end()) {
      throw AssemblerError(lineno, "unknown mnemonic '" + mnem + "'");
    }
    const std::vector<std::string> ops = split_operands(
        sp == std::string::npos ? "" : line.substr(sp + 1));
    const OpSpec& spec = it->second;

    auto need = [&](std::size_t lo, std::size_t hi) {
      if (ops.size() < lo || ops.size() > hi) {
        throw AssemblerError(lineno, "wrong operand count for '" + mnem +
                                         "'");
      }
    };

    const std::string shape = spec.shape;
    if (shape.empty()) {
      need(0, 0);
      b.halt();
    } else if (shape == "d,i") {
      need(2, 2);
      b.li(parse_reg(lineno, ops[0]), parse_imm(lineno, ops[1]));
    } else if (shape == "d,a") {
      need(2, 2);
      b.mov(parse_reg(lineno, ops[0]), parse_reg(lineno, ops[1]));
    } else if (shape == "d,a,b") {
      need(3, 3);
      const auto d = parse_reg(lineno, ops[0]);
      const auto a = parse_reg(lineno, ops[1]);
      const auto r2 = parse_reg(lineno, ops[2]);
      switch (spec.op) {
        case Opcode::kAdd: b.add(d, a, r2); break;
        case Opcode::kSub: b.sub(d, a, r2); break;
        case Opcode::kMul: b.mul(d, a, r2); break;
        case Opcode::kAnd: b.and_(d, a, r2); break;
        case Opcode::kOr: b.or_(d, a, r2); break;
        case Opcode::kXor: b.xor_(d, a, r2); break;
        case Opcode::kSll: b.sll(d, a, r2); break;
        case Opcode::kSra: b.sra(d, a, r2); break;
        default: throw AssemblerError(lineno, "internal shape error");
      }
    } else if (shape == "d,a,i") {
      need(3, 3);
      b.addi(parse_reg(lineno, ops[0]), parse_reg(lineno, ops[1]),
             parse_imm(lineno, ops[2]));
    } else if (shape == "d,a,i?") {
      need(2, 3);
      b.lw(parse_reg(lineno, ops[0]), parse_reg(lineno, ops[1]),
           ops.size() == 3 ? parse_imm(lineno, ops[2]) : 0);
    } else if (shape == "a,b,i?") {
      need(2, 3);
      b.sw(parse_reg(lineno, ops[0]), parse_reg(lineno, ops[1]),
           ops.size() == 3 ? parse_imm(lineno, ops[2]) : 0);
    } else if (shape == "a,b,L") {
      need(3, 3);
      const auto a = parse_reg(lineno, ops[0]);
      const auto r2 = parse_reg(lineno, ops[1]);
      switch (spec.op) {
        case Opcode::kBeq: b.beq(a, r2, ops[2]); break;
        case Opcode::kBne: b.bne(a, r2, ops[2]); break;
        case Opcode::kBlt: b.blt(a, r2, ops[2]); break;
        case Opcode::kBge: b.bge(a, r2, ops[2]); break;
        default: throw AssemblerError(lineno, "internal shape error");
      }
    } else if (shape == "L") {
      need(1, 1);
      b.jmp(ops[0]);
    } else if (shape == "i,d,a,b") {
      need(4, 4);
      b.custom(parse_imm(lineno, ops[0]), parse_reg(lineno, ops[1]),
               parse_reg(lineno, ops[2]), parse_reg(lineno, ops[3]));
    }
  }
  try {
    return b.build();
  } catch (const std::invalid_argument& e) {
    throw AssemblerError(0, e.what());
  }
}

std::string disassemble(const Instr& in) {
  std::ostringstream out;
  const std::string name = opcode_name(in.op);
  auto r = [](std::uint8_t reg) { return "r" + std::to_string(reg); };
  switch (in.op) {
    case Opcode::kHalt: out << "halt"; break;
    case Opcode::kLi: out << "li " << r(in.rd) << ", " << in.imm; break;
    case Opcode::kMov: out << "mov " << r(in.rd) << ", " << r(in.rs1); break;
    case Opcode::kAddi:
      out << "addi " << r(in.rd) << ", " << r(in.rs1) << ", " << in.imm;
      break;
    case Opcode::kLw:
      out << "lw " << r(in.rd) << ", " << r(in.rs1) << ", " << in.imm;
      break;
    case Opcode::kSw:
      out << "sw " << r(in.rs1) << ", " << r(in.rs2) << ", " << in.imm;
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
      out << name << " " << r(in.rs1) << ", " << r(in.rs2) << ", @"
          << in.imm;
      break;
    case Opcode::kJmp: out << "jmp @" << in.imm; break;
    case Opcode::kCustom:
      out << "custom " << in.imm << ", " << r(in.rd) << ", " << r(in.rs1)
          << ", " << r(in.rs2);
      break;
    default:
      out << name << " " << r(in.rd) << ", " << r(in.rs1) << ", "
          << r(in.rs2);
      break;
  }
  return out.str();
}

}  // namespace holms::asip
