#include "asip/jpeg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::asip {
namespace {

constexpr std::uint8_t R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6,
                       R7 = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12,
                       R13 = 13, R14 = 14, R15 = 15, R16 = 16, R17 = 17,
                       R18 = 18, R20 = 20, R22 = 22, R23 = 23;

int ext_id(const ExtMap& ext, const char* name) {
  auto it = ext.find(name);
  return it == ext.end() ? -1 : it->second;
}

// JPEG luminance quantizer (zigzag-independent, row-major).
constexpr int kLumaQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

// Standard zigzag scan order.
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace

JpegEncoderApp::JpegEncoderApp(const Params& p) : p_(p) {
  p_.validate();
}

void JpegEncoderApp::plant_inputs(CpuState& state, sim::Rng& rng) const {
  // Image blocks: gradient + texture + noise, pixels centered in [-127,127].
  for (std::size_t b = 0; b < p_.blocks; ++b) {
    const double phase = static_cast<double>(b) * 0.7;
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        const double v = 40.0 * std::sin(0.8 * x + phase) +
                         30.0 * std::cos(0.5 * y) +
                         8.0 * (x - y) + rng.normal(0.0, 6.0);
        state.poke(img_base() + b * 64 +
                       static_cast<std::size_t>(y * 8 + x),
                   static_cast<std::int32_t>(
                       std::clamp(v, -127.0, 127.0)));
      }
    }
  }
  // DCT-II basis rounded to 7-bit integers: C[u][x].
  for (int u = 0; u < 8; ++u) {
    const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
    for (int x = 0; x < 8; ++x) {
      const double c =
          0.5 * cu * std::cos((2.0 * x + 1.0) * u * M_PI / 16.0);
      state.poke(coef_base() + static_cast<std::size_t>(u * 8 + x),
                 static_cast<std::int32_t>(std::lround(64.0 * c)));
    }
  }
  // Q15 quantizer reciprocals and zigzag table.
  for (int i = 0; i < 64; ++i) {
    state.poke(qrec_base() + static_cast<std::size_t>(i),
               static_cast<std::int32_t>(32768 / kLumaQuant[i]));
    state.poke(zigzag_base() + static_cast<std::size_t>(i), kZigzag[i]);
  }
}

Program JpegEncoderApp::compile(const ExtMap& ext) const {
  ProgramBuilder b;
  emit_fdct(b, ext);
  emit_quant(b, ext);
  emit_rle(b);
  return b.build();
}

void JpegEncoderApp::emit_pass(ProgramBuilder& b, const ExtMap& ext,
                               const std::string& prefix,
                               std::uint8_t src_base_reg,
                               std::uint8_t dst_base_reg) const {
  const int mac = ext_id(ext, kExtMacLoad);
  b.li(R2, 0);  // row
  b.label(prefix + "_row");
  {
    b.li(R10, 8);
    b.mul(R4, R2, R10);
    b.add(R4, R4, src_base_reg);  // input row base
    b.li(R3, 0);                  // output frequency u
    b.label(prefix + "_u");
    {
      b.li(R6, 0);   // accumulator
      b.mov(R7, R4); // input pointer (reset per u)
      b.mul(R8, R3, R10);
      b.addi(R8, R8, static_cast<std::int32_t>(coef_base()));
      if (mac >= 0) {
        b.custom(mac, R6, R7, R8);  // taps 0..3
        b.custom(mac, R6, R7, R8);  // taps 4..7
      } else {
        b.li(R9, 0);
        b.label(prefix + "_x");
        b.lw(R5, R7);
        b.lw(R22, R8);
        b.mul(R5, R5, R22);
        b.add(R6, R6, R5);
        b.addi(R7, R7, 1);
        b.addi(R8, R8, 1);
        b.addi(R9, R9, 1);
        b.blt(R9, R10, prefix + "_x");
      }
      b.sra(R6, R6, R20);  // R20 holds the scale shift (7)
      // Transposed store: dst[u*8 + row].
      b.mul(R9, R3, R10);
      b.add(R9, R9, R2);
      b.add(R9, R9, dst_base_reg);
      b.sw(R9, R6);
      b.addi(R3, R3, 1);
      b.blt(R3, R11, prefix + "_u");
    }
    b.addi(R2, R2, 1);
    b.blt(R2, R11, prefix + "_row");
  }
}

void JpegEncoderApp::emit_fdct(ProgramBuilder& b, const ExtMap& ext) const {
  b.region("fdct");
  b.li(R11, 8);
  b.li(R12, 64);
  b.li(R13, static_cast<std::int32_t>(p_.blocks));
  b.li(R20, 7);  // post-pass scale shift
  b.li(R1, 0);   // block index
  b.label("jf_block");
  {
    b.mul(R14, R1, R12);
    b.addi(R14, R14, static_cast<std::int32_t>(img_base()));
    b.mul(R15, R1, R12);
    b.addi(R15, R15, static_cast<std::int32_t>(out_base()));
    b.li(R16, static_cast<std::int32_t>(tmp_base()));
    // Pass 1: image rows -> TMP (transposed).
    emit_pass(b, ext, "jf1", R14, R16);
    // Pass 2: TMP rows -> OUT block (transposed back).
    b.li(R17, static_cast<std::int32_t>(tmp_base()));
    emit_pass(b, ext, "jf2", R17, R15);
    b.addi(R1, R1, 1);
    b.blt(R1, R13, "jf_block");
  }
}

void JpegEncoderApp::emit_quant(ProgramBuilder& b, const ExtMap& ext) const {
  const int smac = ext_id(ext, kExtShiftMac);
  b.region("quant");
  const auto total = static_cast<std::int32_t>(p_.blocks * 64);
  b.li(R12, total);
  b.li(R15, 63);
  b.li(R16, 15);
  b.li(R1, 0);
  b.label("jq_loop");
  {
    b.addi(R4, R1, static_cast<std::int32_t>(out_base()));
    b.lw(R4, R4, 0);  // coefficient value
    b.and_(R5, R1, R15);
    b.addi(R5, R5, static_cast<std::int32_t>(qrec_base()));
    b.lw(R5, R5, 0);  // Q15 reciprocal
    if (smac >= 0) {
      b.li(R6, 0);
      b.custom(smac, R6, R4, R5);  // R6 += (R4*R5) >> 15
    } else {
      b.mul(R6, R4, R5);
      b.sra(R6, R6, R16);
    }
    b.addi(R7, R1, static_cast<std::int32_t>(out_base()));
    b.sw(R7, R6, 0);  // quantize in place
    b.addi(R1, R1, 1);
    b.blt(R1, R12, "jq_loop");
  }
}

void JpegEncoderApp::emit_rle(ProgramBuilder& b) const {
  b.region("rle");
  b.li(R12, 64);
  b.li(R13, static_cast<std::int32_t>(p_.blocks));
  b.li(R17, 0);  // symbol count
  b.li(R18, 0);  // checksum
  b.li(R23, 7);  // run weight in the checksum
  b.li(R1, 0);   // block
  b.label("jr_block");
  {
    b.mul(R14, R1, R12);
    b.addi(R14, R14, static_cast<std::int32_t>(out_base()));
    b.li(R2, 0);  // zigzag position
    b.li(R3, 0);  // current zero run
    b.label("jr_k");
    {
      b.addi(R4, R2, static_cast<std::int32_t>(zigzag_base()));
      b.lw(R4, R4, 0);
      b.add(R4, R4, R14);
      b.lw(R5, R4, 0);
      b.bne(R5, 0, "jr_nz");
      b.addi(R3, R3, 1);
      b.jmp("jr_next");
      b.label("jr_nz");
      b.addi(R17, R17, 1);
      b.mul(R9, R3, R23);
      b.add(R9, R9, R5);
      b.add(R18, R18, R9);
      b.li(R3, 0);
      b.label("jr_next");
      b.addi(R2, R2, 1);
      b.blt(R2, R12, "jr_k");
    }
    // End-of-block symbol when the block ends in a zero run.
    b.beq(R3, 0, "jr_noeob");
    b.addi(R17, R17, 1);
    b.add(R18, R18, R3);
    b.label("jr_noeob");
    b.addi(R1, R1, 1);
    b.blt(R1, R13, "jr_block");
  }
  b.li(R9, static_cast<std::int32_t>(result_base()));
  b.sw(R9, R17, 0);
  b.sw(R9, R18, 1);
  b.halt();
}

std::int32_t JpegEncoderApp::symbols(const CpuState& s) const {
  return s.peek(result_base());
}

std::int32_t JpegEncoderApp::checksum(const CpuState& s) const {
  return s.peek(result_base() + 1);
}

RunResult evaluate_jpeg(const JpegEncoderApp& app, const CoreConfig& cfg,
                        const std::vector<std::string>& extension_names,
                        std::uint64_t seed, std::int32_t* symbols,
                        std::int32_t* checksum) {
  std::vector<Extension> exts;
  ExtMap map;
  for (const auto& name : extension_names) {
    map[name] = static_cast<int>(exts.size());
    exts.push_back(find_extension(name));
  }
  Iss iss(cfg, std::move(exts));
  sim::Rng rng(seed);
  app.plant_inputs(iss.state(), rng);
  RunResult r = iss.run(app.compile(map));
  if (symbols) *symbols = app.symbols(iss.state());
  if (checksum) *checksum = app.checksum(iss.state());
  return r;
}

}  // namespace holms::asip
