#pragma once
// Cycle-based instruction-set simulator (paper §3.1, Fig.2).
//
// "Profiling by means of an ISS ... unveils the bottlenecks through
//  cycle-accurate simulation i.e. it shows which parts of the application
//  represent the most time consuming ones (or ... the most energy
//  consuming)."
//
// The ISS executes the base ISA plus any registered extensions, charges
// per-opcode cycle and energy costs (with a direct-mapped data cache model),
// and accumulates a per-region profile that drives the identification step
// of the design flow.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asip/extensions.hpp"
#include "asip/isa.hpp"

namespace holms::asip {

/// Architectural state exposed to extension semantics.
class CpuState {
 public:
  explicit CpuState(std::size_t mem_words) : mem_(mem_words, 0) {}

  std::int32_t reg(std::size_t i) const { return i == 0 ? 0 : regs_[i]; }
  void set_reg(std::size_t i, std::int32_t v) {
    if (i != 0) regs_[i] = v;  // r0 is hardwired to zero
  }

  std::int32_t load(std::size_t addr);
  void store(std::size_t addr, std::int32_t v);
  std::size_t mem_size() const { return mem_.size(); }

  /// Raw memory access that bypasses the cache model (for test setup and
  /// result readback, not charged to the program).
  std::int32_t peek(std::size_t addr) const { return mem_.at(addr); }
  void poke(std::size_t addr, std::int32_t v) { mem_.at(addr) = v; }

  // Cache bookkeeping (filled in by the Iss, read by extensions via load/
  // store so fused memory ops pay realistic costs too).
  std::uint64_t loads = 0, stores = 0, dcache_misses = 0;

 private:
  friend class Iss;
  std::int32_t regs_[kNumRegs] = {};
  std::vector<std::int32_t> mem_;
  // Direct-mapped cache tags; line index = addr % lines.
  std::vector<std::int64_t> tags_;
  bool cache_enabled_ = false;
  std::uint64_t pending_miss_cycles_ = 0;
};

/// Per-region profile entry.
struct RegionProfile {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double energy_pj = 0.0;
};

/// Result of one simulation.
struct RunResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double energy_pj = 0.0;
  bool halted = false;   // false = hit the max-cycle guard
  std::map<std::string, RegionProfile> by_region;

  double seconds(double frequency_hz) const {
    return static_cast<double>(cycles) / frequency_hz;
  }
  double energy_joules() const { return energy_pj * 1e-12; }
};

/// Per-opcode-class cost model (cycles at the given core config; energies in
/// picojoules).  The miss penalty applies to kLw/kSw and to extension memory
/// accesses alike.
struct CostModel {
  double alu_cycles = 1.0;
  double mul_cycles = 3.0;       // 1.0 when the MAC block is included
  double mem_cycles = 1.0;       // on hit
  double miss_penalty = 8.0;
  double branch_cycles = 1.0;
  double taken_extra = 1.0;
  double load_use_stall = 1.0;   // bubble on a load-use hazard
  double alu_energy = 4.0;
  double mul_energy = 14.0;
  double mem_energy = 10.0;
  double miss_energy = 60.0;
  double branch_energy = 4.0;
};

/// The instruction-set simulator.
class Iss {
 public:
  Iss(CoreConfig cfg, std::vector<Extension> extensions,
      std::size_t mem_words = 1 << 16);

  /// Runs `program` to kHalt or `max_cycles`.  State persists across runs so
  /// data planted with `state().poke` survives.
  RunResult run(const Program& program, std::uint64_t max_cycles = 5e8);

  CpuState& state() { return state_; }
  const CoreConfig& config() const { return cfg_; }
  const std::vector<Extension>& extensions() const { return extensions_; }
  const CostModel& costs() const { return costs_; }

 private:
  CoreConfig cfg_;
  std::vector<Extension> extensions_;
  CostModel costs_;
  CpuState state_;
};

/// Sorts regions by cycle share, descending — the "identify bottlenecks"
/// output of the profiling step.
std::vector<std::pair<std::string, RegionProfile>> hotspots(
    const RunResult& r);

}  // namespace holms::asip
