#pragma once
// Second ASIP application: a JPEG-style still-image encoder front end.
//
// The paper's platform premise is that "hardware and software resources ...
// can be shared across multiple multimedia applications" (§1) — the same
// base core and extension catalog that serve the voice recognizer must also
// serve an image codec.  Pipeline:
//   1. fdct  — 8x8 forward DCT as two passes of 8-tap dot products
//              (mac.load accelerates, like the filterbank)
//   2. quant — Q15 reciprocal quantization (shift.mac accelerates)
//   3. rle   — zigzag run-length coding (branchy; no extension applies,
//              the honest Amdahl tail)

#include <cstdint>

#include "asip/iss.hpp"
#include "asip/kernels.hpp"
#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::asip {

class JpegEncoderApp {
 public:
  struct Params {
    std::size_t blocks = 64;  // 8x8 pixel blocks to encode (<= 120)

    /// Contract rule C001: every public Params carries its own checker.
    void validate() const {
      if (blocks == 0 || blocks > 120) {
        throw holms::InvalidArgument("JpegEncoderApp: blocks in [1, 120]");
      }
    }
  };

  JpegEncoderApp() : JpegEncoderApp(Params{}) {}
  explicit JpegEncoderApp(const Params& p);

  /// Plants synthetic image blocks (gradients + texture + noise), the DCT
  /// basis, the quantizer reciprocals and the zigzag table.
  void plant_inputs(CpuState& state, sim::Rng& rng) const;

  /// Emits the three-kernel program; accelerated sequences are used for
  /// every extension present in `ext` (mac.load, shift.mac).
  Program compile(const ExtMap& ext = {}) const;

  /// Number of (run,level) symbols emitted — the coded-size proxy.
  std::int32_t symbols(const CpuState& state) const;
  /// Order-sensitive checksum over emitted symbols (cross-config equality).
  std::int32_t checksum(const CpuState& state) const;

  // Memory layout (word addresses).
  std::size_t img_base() const { return 0; }
  std::size_t coef_base() const { return 8200; }
  std::size_t tmp_base() const { return 8300; }
  std::size_t qrec_base() const { return 8400; }
  std::size_t zigzag_base() const { return 8500; }
  std::size_t out_base() const { return 8600; }
  std::size_t result_base() const { return 30000; }

  const Params& params() const { return p_; }

 private:
  void emit_fdct(ProgramBuilder& b, const ExtMap& ext) const;
  void emit_quant(ProgramBuilder& b, const ExtMap& ext) const;
  void emit_rle(ProgramBuilder& b) const;
  /// One 8x8 transform pass: rows of *src_base_reg dotted with the DCT
  /// basis, written transposed to *dst_base_reg.
  void emit_pass(ProgramBuilder& b, const ExtMap& ext,
                 const std::string& prefix, std::uint8_t src_base_reg,
                 std::uint8_t dst_base_reg) const;

  Params p_;
};

/// Runs the JPEG app on a core configuration; mirror of evaluate_app for the
/// voice recognizer.
RunResult evaluate_jpeg(const JpegEncoderApp& app, const CoreConfig& cfg,
                        const std::vector<std::string>& extension_names,
                        std::uint64_t seed = 42,
                        std::int32_t* symbols = nullptr,
                        std::int32_t* checksum = nullptr);

}  // namespace holms::asip
