#pragma once
// The extensible-processor design flow of Fig.2, as an executable driver:
//
//   Application -> Profiling -> Identify {extensions, blocks, parameters}
//     -> Define -> Retargetable tool generation -> verify constraints
//     -> iterate
//
// Each iteration profiles the application on the current core, evaluates
// every candidate move (add one custom instruction, include the MAC block,
// grow the d-cache), picks the move with the best cycles-saved-per-gate
// ratio that stays within the gate budget, and repeats until no move gains
// more than `min_gain` or the budget/extension-count limits are hit —
// exactly the loop a designer runs against a commercial ASIP platform.

#include <functional>
#include <string>
#include <vector>

#include "asip/extensions.hpp"
#include "asip/iss.hpp"
#include "asip/kernels.hpp"
#include "exec/error.hpp"

namespace holms::asip {

/// Application hook for the flow: run the application on a candidate core
/// (the "retargetable tool generation + ISS" boxes collapsed into one call).
using AppRunner = std::function<RunResult(
    const CoreConfig&, const std::vector<std::string>& extensions)>;

/// One evaluated configuration of the extensible core.
struct DesignPoint {
  CoreConfig cfg;
  std::vector<std::string> extensions;
  RunResult result;
  double gates = 0.0;
  double speedup_vs_base = 1.0;
  double energy_ratio_vs_base = 1.0;
};

/// One step of the exploration trace (for Fig.2 reproduction).
struct FlowStep {
  std::string move;          // e.g. "+ext mac.load", "+block MAC", "+param dcache=256"
  std::uint64_t cycles = 0;  // cycles after the move
  double gates = 0.0;
  double speedup_vs_base = 1.0;
};

/// What the flow optimizes (§3.1: profiling shows "which parts of the
/// application represent the most time consuming ones (or, if the energy
/// consumption is the constraint, which ones are the most energy
/// consuming)").
enum class FlowObjective { kCycles, kEnergy };

struct FlowOptions {
  double gate_budget = 200000.0;   // the paper's "< 200k gates"
  std::size_t max_extensions = 10; // "less than 10 custom instructions"
  double min_gain = 0.02;          // stop below 2% objective improvement
  FlowObjective objective = FlowObjective::kCycles;
  std::uint64_t seed = 42;

  /// Contract rule C001; called by run_design_flow.
  void validate() const {
    if (!(gate_budget >= 0.0)) {
      throw holms::InvalidArgument("FlowOptions: gate_budget must be >= 0");
    }
    if (max_extensions == 0) {
      throw holms::InvalidArgument("FlowOptions: max_extensions must be >= 1");
    }
    if (!(min_gain >= 0.0)) {
      throw holms::InvalidArgument("FlowOptions: min_gain must be >= 0");
    }
  }
};

struct FlowResult {
  DesignPoint base;
  DesignPoint best;
  std::vector<FlowStep> trace;
};

/// Runs the full Fig.2 loop for any application exposed as an AppRunner —
/// the platform premise of §1 is exactly that one design flow serves many
/// multimedia applications.
FlowResult run_design_flow(const AppRunner& runner,
                           const FlowOptions& opts = {});

/// Convenience overload for the §3.1 voice-recognition application.
FlowResult run_design_flow(const VoiceRecognitionApp& app,
                           const FlowOptions& opts = {});

}  // namespace holms::asip
