#pragma once
// Custom-instruction extensions and predefined blocks (paper §3.1).
//
// "The designer has the choice to freely define highly customized multimedia
//  instructions ... Predefined blocks ... may be chosen to be included or
//  excluded ... the designer may have the choice to parameterize the
//  extensible processor."
//
// Each extension is a fused datapath operation with a latency, a gate cost
// and a semantics function that may touch registers *and* memory (so fused
// load-compute-update patterns — the bread and butter of commercial ASIP
// flows — are expressible).  The catalog below contains the candidates the
// automatic identification step (flow.hpp) chooses from.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asip/isa.hpp"

namespace holms::asip {

class CpuState;  // defined in iss.hpp

/// A candidate or selected custom instruction.
struct Extension {
  std::string name;
  int id = -1;                  // slot in the extension registry
  double cycles = 1.0;          // execution latency once integrated
  double gate_count = 0.0;      // additional gates for the datapath
  double energy_pj = 0.0;       // energy per execution
  /// Executes the instruction; receives the CPU state and the instruction
  /// word (rd/rs1/rs2 operands).
  std::function<void(CpuState&, const Instr&)> semantics;
};

/// Well-known extension names used by the kernel library.
inline constexpr const char* kExtMacLoad = "mac.load";    // acc += M[a++]*M[b++]
inline constexpr const char* kExtSqdLoad = "sqd.load";    // acc += (M[a++]-M[b++])^2
inline constexpr const char* kExtAbsDiff = "absdiff";     // rd = |a - b|
inline constexpr const char* kExtMin2 = "min2";           // rd = min(a, b)
inline constexpr const char* kExtSatAdd = "sat.add";      // rd = sat16(a + b)
inline constexpr const char* kExtShiftMac = "shift.mac";  // acc += (a*b)>>15
inline constexpr const char* kExtDtwCell = "dtw.cell";    // fused DP-cell update

/// Full candidate catalog for the voice-recognition application domain.
std::vector<Extension> extension_catalog();

/// Returns the catalog entry by name; throws if unknown.
Extension find_extension(const std::string& name);

/// Predefined coarse-grain blocks (§3.1(b)) and parameter settings (§3.1(c)).
struct CoreConfig {
  // -- predefined blocks --
  bool include_mac_block = false;   // single-cycle MUL (else 3-cycle)
  bool include_dcache = true;
  // -- parameterization --
  std::size_t dcache_lines = 64;    // direct-mapped, 4 words per line
  std::size_t num_registers = 32;   // <= kNumRegs; smaller saves gates
  bool little_endian = true;        // no behavioural effect; gates only
  // Pipeline interlock model (§3.1a: custom datapaths must integrate into
  // "the existing pipeline architecture of the base core"): an instruction
  // consuming the destination of the immediately preceding load stalls one
  // cycle.  Fused load-compute extensions never pay it — part of their win.
  bool model_pipeline_hazards = true;
  // -- base core --
  double base_gates = 85000.0;
  double frequency_hz = 200e6;
};

/// Gate-count model: base core + blocks + cache + selected extensions.
/// The paper's constraint for the voice-recognition system is < 200k gates.
double total_gates(const CoreConfig& cfg,
                   const std::vector<Extension>& selected);

}  // namespace holms::asip
