#include "asip/flow.hpp"

#include <algorithm>
#include <optional>

namespace holms::asip {
namespace {

DesignPoint evaluate_point(const AppRunner& runner, const CoreConfig& cfg,
                           const std::vector<std::string>& exts) {
  DesignPoint p;
  p.cfg = cfg;
  p.extensions = exts;
  p.result = runner(cfg, exts);
  std::vector<Extension> sel;
  for (const auto& n : exts) sel.push_back(find_extension(n));
  p.gates = total_gates(cfg, sel);
  return p;
}

struct Candidate {
  std::string label;
  CoreConfig cfg;
  std::vector<std::string> exts;
};

}  // namespace

FlowResult run_design_flow(const AppRunner& runner,
                           const FlowOptions& opts) {
  opts.validate();
  FlowResult out;
  CoreConfig cfg;  // plain base core
  std::vector<std::string> exts;
  out.base = evaluate_point(runner, cfg, exts);
  out.base.speedup_vs_base = 1.0;
  out.base.energy_ratio_vs_base = 1.0;

  DesignPoint current = out.base;
  const double base_cycles = static_cast<double>(out.base.result.cycles);
  const double base_energy = out.base.result.energy_pj;

  for (;;) {
    // -- Identify: enumerate candidate moves from the current core. --
    std::vector<Candidate> candidates;
    if (exts.size() < opts.max_extensions) {
      for (const auto& e : extension_catalog()) {
        if (std::find(exts.begin(), exts.end(), e.name) != exts.end()) {
          continue;
        }
        Candidate c{"+ext " + e.name, cfg, exts};
        c.exts.push_back(e.name);
        candidates.push_back(std::move(c));
      }
    }
    if (!cfg.include_mac_block) {
      Candidate c{"+block MAC", cfg, exts};
      c.cfg.include_mac_block = true;
      candidates.push_back(std::move(c));
    }
    if (cfg.dcache_lines < 512) {
      Candidate c{"+param dcache=" + std::to_string(cfg.dcache_lines * 2),
                  cfg, exts};
      c.cfg.dcache_lines = cfg.dcache_lines * 2;
      candidates.push_back(std::move(c));
    }

    // -- Define + retarget + verify: evaluate each candidate on the ISS. --
    const auto objective_of = [&opts](const DesignPoint& p) {
      return opts.objective == FlowObjective::kCycles
                 ? static_cast<double>(p.result.cycles)
                 : p.result.energy_pj;
    };
    std::optional<std::size_t> best;
    double best_score = 0.0;
    std::vector<DesignPoint> points(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      points[i] =
          evaluate_point(runner, candidates[i].cfg, candidates[i].exts);
      if (points[i].gates > opts.gate_budget) continue;
      const double saved = objective_of(current) - objective_of(points[i]);
      const double gain = saved / objective_of(current);
      if (gain < opts.min_gain) continue;
      // Rank by objective saved per additional gate (cheap wins first).
      const double added_gates = std::max(1.0, points[i].gates - current.gates);
      const double score = saved / added_gates;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (!best) break;

    cfg = candidates[*best].cfg;
    exts = candidates[*best].exts;
    current = points[*best];
    current.speedup_vs_base =
        base_cycles / static_cast<double>(current.result.cycles);
    current.energy_ratio_vs_base = current.result.energy_pj / base_energy;
    out.trace.push_back(FlowStep{candidates[*best].label,
                                 current.result.cycles, current.gates,
                                 current.speedup_vs_base});
  }

  out.best = current;
  if (out.best.speedup_vs_base == 1.0 && out.best.result.cycles > 0) {
    out.best.speedup_vs_base =
        base_cycles / static_cast<double>(out.best.result.cycles);
    out.best.energy_ratio_vs_base = out.best.result.energy_pj / base_energy;
  }
  return out;
}

FlowResult run_design_flow(const VoiceRecognitionApp& app,
                           const FlowOptions& opts) {
  const std::uint64_t seed = opts.seed;
  return run_design_flow(
      [&app, seed](const CoreConfig& cfg,
                   const std::vector<std::string>& exts) {
        return evaluate_app(app, cfg, exts, seed);
      },
      opts);
}

}  // namespace holms::asip
