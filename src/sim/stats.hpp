#pragma once
// Streaming statistics used by every simulator in HolMS.
//
// Multimedia QoS metrics (end-to-end latency, jitter, loss rate, buffer
// occupancy) are *average-case* quantities (paper §2), so every model keeps
// streaming estimators rather than logging traces:
//   - OnlineStats        event-weighted mean/variance (Welford)
//   - TimeWeightedStats  time-weighted averages for occupancy-style signals
//   - Histogram          fixed-bin empirical distribution + quantiles
//   - QuantileSketch     log-linear p50/p99/p999 sketch with a layout fixed
//                        at construction (deterministic, order-insensitive,
//                        mergeable across localities)
//   - batch-means CI     confidence intervals for correlated DES output
//   - autocorrelation    used to distinguish short- vs long-range dependence

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace holms::sim {

/// Welford-style online mean/variance over per-event observations.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 until two observations exist.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another estimator (parallel/batched collection).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length.
/// Call `update(t, v)` every time the signal changes; the value `v` is held
/// from `t` until the next update.
class TimeWeightedStats {
 public:
  void update(double time, double value);
  /// Closes the observation window at `time` without changing the value.
  void finish(double time) { update(time, value_); }

  double mean() const;
  double time_observed() const { return last_time_ - start_time_; }
  double current() const { return value_; }
  double max() const { return max_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are counted
/// in saturating edge bins so that mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  /// Empirical p-quantile (p in [0,1]), linear within the containing bin.
  double quantile(double p) const;
  /// Fraction of samples >= x.
  double tail_fraction(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Streaming quantile estimator with a log-linear (HDR-histogram style)
/// bucket layout: `sub_buckets` linearly spaced buckets per octave between
/// `min_value` and `max_value`, plus saturating under-/overflow buckets.
///
/// The layout is a pure function of the constructor arguments — never of the
/// data — so two sketches fed the same multiset of samples hold identical
/// counts regardless of arrival order or how the stream was sharded.  That
/// makes p50/p99/p999 reproducible bitwise across thread counts: each
/// locality keeps its own sketch and the service layer merges them in index
/// order.  Relative quantile error is bounded by one sub-bucket width,
/// ~1/sub_buckets of the value.
class QuantileSketch {
 public:
  QuantileSketch(double min_value, double max_value,
                 std::size_t sub_buckets = 16);

  void add(double x);
  std::size_t count() const { return total_; }
  /// Empirical p-quantile (p in [0,1]), linear within the containing bucket
  /// and clamped to the exact observed [min, max].  0 when empty.
  double quantile(double p) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
  double min() const { return total_ ? seen_min_ : 0.0; }
  double max() const { return total_ ? seen_max_ : 0.0; }

  /// Merges a sketch with the identical layout (throws InvalidArgument
  /// otherwise).  merge-then-quantile == feed-everything-then-quantile.
  void merge(const QuantileSketch& other);

  /// Order-insensitive splitmix64 chain over the layout and bucket counts;
  /// equal streams -> equal fingerprints, used by the determinism gates.
  std::uint64_t fingerprint() const;

  std::size_t buckets() const { return counts_.size(); }

 private:
  std::size_t bucket_for(double x) const;
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  double min_value_;
  double max_value_;
  std::size_t sub_buckets_;
  std::size_t octaves_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
  double seen_min_ = 0.0;
  double seen_max_ = 0.0;
};

/// Half-width of a normal-approximation confidence interval computed with the
/// batch-means method, the standard way to interval-estimate steady-state
/// means from one correlated DES run.  `z` defaults to the 95% quantile.
double batch_means_half_width(std::span<const double> samples,
                              std::size_t batches = 20, double z = 1.96);

/// Sample autocorrelation at the given lag.  Heavy multimedia traffic has a
/// power-law decaying autocorrelation (paper §3.2); Markovian traffic decays
/// geometrically.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Result of independent replications of a stochastic experiment.
struct Replication {
  OnlineStats stats;            // across-replication distribution
  double half_width_95 = 0.0;   // normal-approx CI half width
  double relative_error = 0.0;  // half width / |mean|
};

/// Runs `fn(seed)` for seeds base..base+n-1 and interval-estimates the mean
/// — the methodologically honest way to quote any simulation number in a
/// bench or paper table.
template <typename Fn>
Replication replicate(std::size_t n, Fn&& fn, std::uint64_t seed_base = 1) {
  Replication r;
  for (std::size_t i = 0; i < n; ++i) {
    r.stats.add(fn(seed_base + i));
  }
  if (r.stats.count() >= 2) {
    r.half_width_95 = 1.96 * r.stats.stddev() /
                      std::sqrt(static_cast<double>(r.stats.count()));
    if (r.stats.mean() != 0.0) {
      r.relative_error = r.half_width_95 / std::abs(r.stats.mean());
    }
  }
  return r;
}

}  // namespace holms::sim
