#pragma once
// Streaming statistics used by every simulator in HolMS.
//
// Multimedia QoS metrics (end-to-end latency, jitter, loss rate, buffer
// occupancy) are *average-case* quantities (paper §2), so every model keeps
// streaming estimators rather than logging traces:
//   - OnlineStats        event-weighted mean/variance (Welford)
//   - TimeWeightedStats  time-weighted averages for occupancy-style signals
//   - Histogram          fixed-bin empirical distribution + quantiles
//   - batch-means CI     confidence intervals for correlated DES output
//   - autocorrelation    used to distinguish short- vs long-range dependence

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace holms::sim {

/// Welford-style online mean/variance over per-event observations.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 until two observations exist.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another estimator (parallel/batched collection).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length.
/// Call `update(t, v)` every time the signal changes; the value `v` is held
/// from `t` until the next update.
class TimeWeightedStats {
 public:
  void update(double time, double value);
  /// Closes the observation window at `time` without changing the value.
  void finish(double time) { update(time, value_); }

  double mean() const;
  double time_observed() const { return last_time_ - start_time_; }
  double current() const { return value_; }
  double max() const { return max_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are counted
/// in saturating edge bins so that mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  /// Empirical p-quantile (p in [0,1]), linear within the containing bin.
  double quantile(double p) const;
  /// Fraction of samples >= x.
  double tail_fraction(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Half-width of a normal-approximation confidence interval computed with the
/// batch-means method, the standard way to interval-estimate steady-state
/// means from one correlated DES run.  `z` defaults to the 95% quantile.
double batch_means_half_width(std::span<const double> samples,
                              std::size_t batches = 20, double z = 1.96);

/// Sample autocorrelation at the given lag.  Heavy multimedia traffic has a
/// power-law decaying autocorrelation (paper §3.2); Markovian traffic decays
/// geometrically.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Result of independent replications of a stochastic experiment.
struct Replication {
  OnlineStats stats;            // across-replication distribution
  double half_width_95 = 0.0;   // normal-approx CI half width
  double relative_error = 0.0;  // half width / |mean|
};

/// Runs `fn(seed)` for seeds base..base+n-1 and interval-estimates the mean
/// — the methodologically honest way to quote any simulation number in a
/// bench or paper table.
template <typename Fn>
Replication replicate(std::size_t n, Fn&& fn, std::uint64_t seed_base = 1) {
  Replication r;
  for (std::size_t i = 0; i < n; ++i) {
    r.stats.add(fn(seed_base + i));
  }
  if (r.stats.count() >= 2) {
    r.half_width_95 = 1.96 * r.stats.stddev() /
                      std::sqrt(static_cast<double>(r.stats.count()));
    if (r.stats.mean() != 0.0) {
      r.relative_error = r.half_width_95 / std::abs(r.stats.mean());
    }
  }
  return r;
}

}  // namespace holms::sim
