#include "sim/simulator.hpp"

#include "exec/metrics.hpp"

namespace holms::sim {

Simulator::Simulator(EventPoolCache* cache) : cache_(cache) {
  if (cache_ == nullptr || cache_->slabs_.empty()) return;
  // Adopt the recycled arena wholesale.  No per-slot reset is needed: bump
  // allocation (slot_count_ starts at 0) hands slots out in order and
  // emplace_callback overwrites every field a live slot reads.
  slabs_ = std::move(cache_->slabs_);
  cache_->slabs_.clear();
  exec::count("sim.pool_slabs_reused", slabs_.size());
}

Simulator::~Simulator() {
  // Destroy the callables of every still-queued event (cancelled or not);
  // the slabs themselves die with slabs_ — or outlive us in the cache.
  while (!queue_.empty()) {
    const Entry ev = queue_.top();
    queue_.pop();
    Slot& s = slot(ev.slot);
    if (s.destroy) s.destroy(s);
  }
  if (slabs_allocated_ > 0) {
    exec::count("sim.pool_slabs_allocated", slabs_allocated_);
  }
  if (cache_ != nullptr && !slabs_.empty()) {
    cache_->park(std::move(slabs_));
  }
}

EventPoolCache& EventPoolCache::this_thread() {
  static thread_local EventPoolCache cache;
  return cache;
}

void EventPoolCache::park(
    std::vector<exec::AlignedArray<Simulator::Slot>>&& slabs) {
  // All callables were already destroyed by ~Simulator's queue drain, so the
  // parked slabs hold raw capacity only.
  if (slabs.size() > slabs_.size()) slabs_ = std::move(slabs);
  high_water_ = std::max(high_water_, slabs_.size());
  exec::observe("sim.pool_high_water", static_cast<double>(high_water_));
}

void Simulator::cancel(EventId id) {
  if (id.seq == 0) return;
  // insert().second guards the live count against double-cancel of the
  // same handle (previously each duplicate decremented it again).
  if (cancelled_.insert(id.seq).second && live_events_ > 0) --live_events_;
}

bool Simulator::is_cancelled(std::uint64_t seq) {
  // erase() returns the number of elements removed: O(1) membership test
  // and compaction in one call.
  return cancelled_.erase(seq) != 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.seq)) {
      discard_slot(ev.slot);
      continue;
    }
    --live_events_;
    now_ = ev.when;
    ++executed_;
    // The slot reference stays valid across invoke even if the callback
    // schedules (slabs are append-only); it is recycled only afterwards.
    Slot& s = slot(ev.slot);
    s.invoke(s);
    discard_slot(ev.slot);
    return true;
  }
  return false;
}

std::size_t Simulator::run(Time until) {
  stop_requested_ = false;
  std::size_t n = 0;
  std::vector<Entry> batch;
  batch.reserve(16);
  while (!stop_requested_) {
    // Pop past cancelled entries to decide whether the next live event is
    // within the horizon.
    while (!queue_.empty() && is_cancelled(queue_.top().seq)) {
      const std::uint32_t slot_idx = queue_.top().slot;
      queue_.pop();
      discard_slot(slot_idx);
    }
    if (queue_.empty() || queue_.top().when > until) break;
    // Pop the whole same-timestamp cohort at once, then dispatch in seq
    // order.  Events a callback schedules *at this same timestamp* land in
    // the queue and form the next batch — exactly the order the one-pop-per
    // -event loop produced, with fewer heap sifts.
    const Time t = queue_.top().when;
    batch.clear();
    while (!queue_.empty() && queue_.top().when == t) {
      batch.push_back(queue_.top());
      queue_.pop();
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Entry& ev = batch[i];
      // Re-check: an earlier event in this batch may have cancelled a later
      // one after it was popped.
      if (is_cancelled(ev.seq)) {
        discard_slot(ev.slot);
        continue;
      }
      --live_events_;
      now_ = ev.when;
      ++executed_;
      ++n;
      Slot& s = slot(ev.slot);
      s.invoke(s);
      discard_slot(ev.slot);
      if (stop_requested_ && i + 1 < batch.size()) {
        // Return the unexecuted tail to the queue so pending() and a later
        // resume see exactly the events a per-pop loop would have left.
        for (std::size_t j = i + 1; j < batch.size(); ++j) {
          queue_.push(batch[j]);
        }
        break;
      }
    }
  }
  if (until != std::numeric_limits<Time>::infinity() && now_ < until &&
      !stop_requested_) {
    now_ = until;
  }
  exec::count("sim.events_executed", n);
  exec::observe("sim.queue_high_water",
                static_cast<double>(queue_high_water_));
  return n;
}

void Ticker::start(Time offset) {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_in(offset, [this] { fire(); });
}

void Ticker::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

void Ticker::fire() {
  if (!running_) return;
  if (!on_tick_()) {
    running_ = false;
    pending_ = EventId{};
    return;
  }
  pending_ = sim_.schedule_in(period_, [this] { fire(); });
}

}  // namespace holms::sim
