#include "sim/simulator.hpp"

#include <cassert>

#include "exec/metrics.hpp"

namespace holms::sim {

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Scheduled{when, seq, std::move(fn)});
  ++live_events_;
  queue_high_water_ = std::max(queue_high_water_, queue_.size());
  return EventId{seq};
}

void Simulator::cancel(EventId id) {
  if (id.seq == 0) return;
  // insert().second guards the live count against double-cancel of the
  // same handle (previously each duplicate decremented it again).
  if (cancelled_.insert(id.seq).second && live_events_ > 0) --live_events_;
}

bool Simulator::is_cancelled(std::uint64_t seq) {
  // erase() returns the number of elements removed: O(1) membership test
  // and compaction in one call.
  return cancelled_.erase(seq) != 0;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Scheduled ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.seq)) continue;
    --live_events_;
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(Time until) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_) {
    // Peek past cancelled entries to decide whether the next live event is
    // within the horizon.
    while (!queue_.empty() && is_cancelled(queue_.top().seq)) queue_.pop();
    if (queue_.empty() || queue_.top().when > until) break;
    if (step()) ++n;
  }
  if (until != std::numeric_limits<Time>::infinity() && now_ < until &&
      !stop_requested_) {
    now_ = until;
  }
  exec::count("sim.events_executed", n);
  exec::observe("sim.queue_high_water",
                static_cast<double>(queue_high_water_));
  return n;
}

void Ticker::start(Time offset) {
  if (running_) return;
  running_ = true;
  pending_ = sim_.schedule_in(offset, [this] { fire(); });
}

void Ticker::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = EventId{};
}

void Ticker::fire() {
  if (!running_) return;
  if (!on_tick_()) {
    running_ = false;
    pending_ = EventId{};
    return;
  }
  pending_ = sim_.schedule_in(period_, [this] { fire(); });
}

}  // namespace holms::sim
