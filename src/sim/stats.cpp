#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedStats::update(double time, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = last_time_ = time;
    value_ = value;
    max_ = value;
    return;
  }
  assert(time >= last_time_ && "time must be monotone");
  weighted_sum_ += value_ * (time - last_time_);
  last_time_ = time;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeightedStats::mean() const {
  const double span = last_time_ - start_time_;
  if (span <= 0.0) return value_;
  return weighted_sum_ / span;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw holms::InvalidArgument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lo(i) + within * width_;
    }
    cum = next;
  }
  return hi_;
}

double Histogram::tail_fraction(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) + width_ > x) {
      // Bin overlaps or exceeds x; count it fully once past the threshold
      // bin (a conservative, half-bin-resolution tail estimate).
      if (bin_lo(i) >= x) above += counts_[i];
    }
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

double batch_means_half_width(std::span<const double> samples,
                              std::size_t batches, double z) {
  if (batches < 2 || samples.size() < batches) return 0.0;
  const std::size_t per = samples.size() / batches;
  OnlineStats batch_stats;
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < per; ++i) sum += samples[b * per + i];
    batch_stats.add(sum / static_cast<double>(per));
  }
  return z * batch_stats.stddev() /
         std::sqrt(static_cast<double>(batch_stats.count()));
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() <= lag + 1) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - mean) * (xs[i] - mean);
    if (i + lag < xs.size()) num += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

}  // namespace holms::sim
