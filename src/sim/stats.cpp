// HOLMS_LINT_ALLOW_FILE(D006): summary-statistics post-processing (sketch
// quantile interpolation, weighted means) over small fixed-order arrays;
// cold, single-TU, order fixed by the data layout.
#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"
#include "exec/rng_stream.hpp"

namespace holms::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ = (na * mean_ + nb * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedStats::update(double time, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = last_time_ = time;
    value_ = value;
    max_ = value;
    return;
  }
  assert(time >= last_time_ && "time must be monotone");
  weighted_sum_ += value_ * (time - last_time_);
  last_time_ = time;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeightedStats::mean() const {
  const double span = last_time_ - start_time_;
  if (span <= 0.0) return value_;
  return weighted_sum_ / span;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw holms::InvalidArgument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lo(i) + within * width_;
    }
    cum = next;
  }
  return hi_;
}

double Histogram::tail_fraction(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) + width_ > x) {
      // Bin overlaps or exceeds x; count it fully once past the threshold
      // bin (a conservative, half-bin-resolution tail estimate).
      if (bin_lo(i) >= x) above += counts_[i];
    }
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

QuantileSketch::QuantileSketch(double min_value, double max_value,
                               std::size_t sub_buckets)
    : min_value_(min_value), max_value_(max_value), sub_buckets_(sub_buckets) {
  if (!(min_value > 0.0) || !(max_value > 2.0 * min_value) ||
      sub_buckets == 0) {
    throw holms::InvalidArgument(
        "QuantileSketch requires 0 < min_value, max_value > 2*min_value and "
        "sub_buckets > 0");
  }
  // Octave count by exact doubling: no std::log2, so the layout is identical
  // on every platform for the same arguments.
  octaves_ = 0;
  for (double hi = min_value_; hi < max_value_; hi *= 2.0) ++octaves_;
  const std::size_t n = 2 + octaves_ * sub_buckets_;
  if (n > (1u << 20)) {
    throw holms::InvalidArgument("QuantileSketch layout too large");
  }
  counts_.assign(n, 0);
}

std::size_t QuantileSketch::bucket_for(double x) const {
  if (!(x >= min_value_)) return 0;  // underflow (and NaN)
  if (x >= max_value_) return counts_.size() - 1;
  // Exact exponent extraction instead of log2: ilogb/scalbn are integer
  // operations on the exponent field, so bucket choice never depends on
  // libm rounding.
  const double m = x / min_value_;  // >= 1 by construction
  const int oct = std::ilogb(m);
  const double frac = std::scalbn(m, -oct);  // in [1, 2)
  std::size_t sub = static_cast<std::size_t>((frac - 1.0) *
                                             static_cast<double>(sub_buckets_));
  sub = std::min(sub, sub_buckets_ - 1);
  const std::size_t idx =
      1 + static_cast<std::size_t>(oct) * sub_buckets_ + sub;
  return std::min(idx, counts_.size() - 2);
}

double QuantileSketch::bucket_lo(std::size_t i) const {
  if (i == 0) return total_ ? seen_min_ : min_value_;
  if (i >= counts_.size() - 1) return max_value_;
  const std::size_t oct = (i - 1) / sub_buckets_;
  const std::size_t sub = (i - 1) % sub_buckets_;
  return std::scalbn(min_value_, static_cast<int>(oct)) *
         (1.0 + static_cast<double>(sub) / static_cast<double>(sub_buckets_));
}

double QuantileSketch::bucket_hi(std::size_t i) const {
  if (i == 0) return min_value_;
  if (i >= counts_.size() - 1) return total_ ? seen_max_ : max_value_;
  const std::size_t oct = (i - 1) / sub_buckets_;
  const std::size_t sub = (i - 1) % sub_buckets_;
  if (sub + 1 == sub_buckets_) {
    return std::scalbn(min_value_, static_cast<int>(oct) + 1);
  }
  return std::scalbn(min_value_, static_cast<int>(oct)) *
         (1.0 +
          static_cast<double>(sub + 1) / static_cast<double>(sub_buckets_));
}

void QuantileSketch::add(double x) {
  if (total_ == 0) {
    seen_min_ = seen_max_ = x;
  } else {
    seen_min_ = std::min(seen_min_, x);
    seen_max_ = std::max(seen_max_, x);
  }
  ++counts_[bucket_for(x)];
  ++total_;
}

double QuantileSketch::quantile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double within =
          (target - cum) / static_cast<double>(counts_[i]);
      const double lo = bucket_lo(i);
      const double v = lo + within * (bucket_hi(i) - lo);
      return std::min(std::max(v, seen_min_), seen_max_);
    }
    cum = next;
  }
  return seen_max_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (min_value_ != other.min_value_ || max_value_ != other.max_value_ ||
      sub_buckets_ != other.sub_buckets_) {
    throw holms::InvalidArgument("QuantileSketch merge: layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.total_ > 0) {
    if (total_ == 0) {
      seen_min_ = other.seen_min_;
      seen_max_ = other.seen_max_;
    } else {
      seen_min_ = std::min(seen_min_, other.seen_min_);
      seen_max_ = std::max(seen_max_, other.seen_max_);
    }
  }
  total_ += other.total_;
}

std::uint64_t QuantileSketch::fingerprint() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return exec::splitmix64(h ^ exec::splitmix64(v));
  };
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = mix(h, static_cast<std::uint64_t>(sub_buckets_));
  h = mix(h, static_cast<std::uint64_t>(octaves_));
  h = mix(h, static_cast<std::uint64_t>(total_));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;  // sparse: position-salted nonzero buckets
    h = mix(h, static_cast<std::uint64_t>(i) * 0x100000001b3ull + counts_[i]);
  }
  return h;
}

double batch_means_half_width(std::span<const double> samples,
                              std::size_t batches, double z) {
  if (batches < 2 || samples.size() < batches) return 0.0;
  const std::size_t per = samples.size() / batches;
  OnlineStats batch_stats;
  for (std::size_t b = 0; b < batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < per; ++i) sum += samples[b * per + i];
    batch_stats.add(sum / static_cast<double>(per));
  }
  return z * batch_stats.stddev() /
         std::sqrt(static_cast<double>(batch_stats.count()));
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (xs.size() <= lag + 1) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - mean) * (xs[i] - mean);
    if (i + lag < xs.size()) num += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

}  // namespace holms::sim
