#pragma once
// Discrete-event simulation kernel.
//
// This is the SystemC-equivalent substrate every process-network, NoC,
// wireless and MANET model in HolMS runs on (DESIGN.md S1).  Models schedule
// closures at absolute or relative times; the kernel executes them in
// (time, insertion-order) order so simultaneous events are deterministic.
//
// The kernel is deliberately single-threaded: reproducibility from a seed is
// worth more than parallel speed for the average-case statistics the paper's
// methodology is built around (§2.2).
//
// Storage: callbacks live in a slab-allocated pool of fixed slots with a
// small-buffer store (kInlineCallbackBytes), not in per-event std::function
// objects — the priority queue then holds trivially-copyable {time, seq,
// slot} entries and a typical schedule/dispatch cycle performs zero heap
// allocations (slabs are recycled through a free list; captures larger than
// the inline buffer fall back to one heap allocation for that event only).
// See DESIGN.md §5d for the lifetime rules.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/aligned.hpp"

namespace holms::sim {

using Time = double;

/// Handle used to cancel a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
};

class EventPoolCache;

/// Event-driven simulation kernel with cancellation and a stop condition.
class Simulator {
 public:
  /// Captures up to this many bytes are stored inline in the event slot.
  static constexpr std::size_t kInlineCallbackBytes = 48;

  /// With a cache, the simulator adopts the cache's recycled slab arena at
  /// construction (pool-reset fast path: recycled slabs need no zeroing —
  /// every slot field is written before it is read) and returns its arena on
  /// destruction.  The cache must outlive the simulator and is not owned.
  explicit Simulator(EventPoolCache* cache = nullptr);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Schedules `fn` at absolute time `when` (must be >= now()).  Any
  /// callable with signature void() is accepted; it is moved into the event
  /// pool directly (no std::function wrapping).
  template <typename Fn>
  EventId schedule_at(Time when, Fn&& fn) {
    assert(when >= now_ && "cannot schedule in the past");
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t slot_idx = emplace_callback(std::forward<Fn>(fn));
    queue_.push(Entry{when, seq, slot_idx});
    ++live_events_;
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    return EventId{seq};
  }

  /// Schedules `fn` `delay` time units from now (delay >= 0).
  template <typename Fn>
  EventId schedule_in(Time delay, Fn&& fn) {
    return schedule_at(now_ + delay, std::forward<Fn>(fn));
  }

  /// Cancels a pending event; cancelling an already-fired or unknown event is
  /// a harmless no-op (the common race when a timeout and its completion
  /// event land in the same delta-cycle).
  void cancel(EventId id);

  /// Runs until the queue drains or `until` is reached; returns the number of
  /// events executed.  The clock is advanced to `until` if the queue drains
  /// earlier than `until` (so time-weighted stats can be closed consistently).
  /// Same-timestamp events are popped as one batch and dispatched in
  /// insertion order — identical semantics, fewer heap sift operations.
  std::size_t run(Time until = std::numeric_limits<Time>::infinity());

  /// Executes at most one event; returns false when the queue is empty.
  bool step();

  /// Requests that `run()` return before dispatching the next event.
  void stop() { stop_requested_ = true; }

  Time now() const { return now_; }
  std::size_t pending() const { return live_events_; }
  std::uint64_t executed() const { return executed_; }

  /// Largest queue size ever reached (live + not-yet-compacted cancelled
  /// entries) — the kernel's memory high-water mark, reported to the
  /// exec::metrics registry at the end of each run().
  std::size_t queue_high_water() const { return queue_high_water_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::size_t kSlabSize = 256;  // slots per slab

  /// One pooled callback.  The callable object is constructed into `storage`
  /// (or, when it doesn't fit, `storage` holds a pointer to a heap copy).
  /// Slabs are 64-byte aligned (exec::make_aligned_array) so the 64-byte
  /// Slot layout maps one slot per cache line across the whole arena.
  /// Lifetime rules: the slot is owned by exactly one queue entry from
  /// schedule to dispatch; invoke() runs the callable in place, destroy()
  /// destructs/frees it, and the slot returns to the free list only *after*
  /// both — so a callback may safely schedule new events (slabs never move)
  /// but must not touch its own captures after returning.
  struct Slot {
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
    void (*invoke)(Slot&) = nullptr;
    void (*destroy)(Slot&) = nullptr;
    std::uint32_t next_free = kNoSlot;
  };

  /// Trivially-copyable queue entry; min-heap on (when, seq).
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  Slot& slot(std::uint32_t i) { return slabs_[i / kSlabSize][i % kSlabSize]; }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t idx = free_head_;
      free_head_ = slot(idx).next_free;
      return idx;
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(slot_count_);
    // Allocate only past the last slab — bump allocation walks through any
    // slabs preloaded from an EventPoolCache before touching the heap.
    if (slot_count_ / kSlabSize == slabs_.size()) {
      slabs_.push_back(exec::make_aligned_array<Slot>(kSlabSize));
      ++slabs_allocated_;
    }
    ++slot_count_;
    return idx;
  }

  void release_slot(std::uint32_t i) {
    Slot& s = slot(i);
    s.invoke = nullptr;
    s.destroy = nullptr;
    s.next_free = free_head_;
    free_head_ = i;
  }

  /// Destroys the stored callable and recycles the slot (cancelled entries,
  /// post-invoke cleanup, destructor drain).
  void discard_slot(std::uint32_t i) {
    Slot& s = slot(i);
    if (s.destroy) s.destroy(s);
    release_slot(i);
  }

  template <typename Fn>
  std::uint32_t emplace_callback(Fn&& fn) {
    using T = std::decay_t<Fn>;
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot(idx);
    if constexpr (sizeof(T) <= kInlineCallbackBytes &&
                  alignof(T) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.storage)) T(std::forward<Fn>(fn));
      s.invoke = [](Slot& sl) {
        (*std::launder(reinterpret_cast<T*>(sl.storage)))();
      };
      s.destroy = [](Slot& sl) {
        std::launder(reinterpret_cast<T*>(sl.storage))->~T();
      };
    } else {
      // Oversized capture: one heap allocation for this event only.
      ::new (static_cast<void*>(s.storage)) T*(new T(std::forward<Fn>(fn)));
      s.invoke = [](Slot& sl) {
        (**std::launder(reinterpret_cast<T**>(sl.storage)))();
      };
      s.destroy = [](Slot& sl) {
        delete *std::launder(reinterpret_cast<T**>(sl.storage));
      };
    }
    return idx;
  }

  bool is_cancelled(std::uint64_t seq);

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Hash set, not a vector: heavy timeout/cancel workloads (MANET route
  // timeouts, wireless retransmit timers) accumulate thousands of pending
  // cancellations, and a linear scan per popped event made the kernel
  // O(cancelled^2).  Entries are erased when their event pops (the usual
  // case), keeping the set near the count of cancelled-but-not-yet-due
  // events.
  std::unordered_set<std::uint64_t> cancelled_;
  std::vector<exec::AlignedArray<Slot>> slabs_;
  std::size_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  EventPoolCache* cache_ = nullptr;       // not owned; may be null
  std::uint64_t slabs_allocated_ = 0;     // fresh (non-recycled) slabs
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::size_t queue_high_water_ = 0;
  bool stop_requested_ = false;

  friend class EventPoolCache;
};

/// Recycles Simulator slab arenas across runs (DESIGN.md §5g).  Explore-style
/// fleets construct one short-lived Simulator per candidate; without a cache
/// each re-grows its slab pool from zero, so the per-candidate cost is a
/// fresh round of heap allocations.  A cache keeps the largest arena any
/// finished simulator returned and hands it to the next one wholesale.
///
/// The cache is intentionally unsynchronized — it is *per-worker* state.  Use
/// `EventPoolCache::this_thread()` to get the calling thread's instance:
/// exec::ThreadPool workers are persistent threads, so each worker of an
/// explore fleet accumulates and reuses its own arena for the whole run.
/// (The ISSUE sketched this type in holms::exec; it lives in holms::sim
/// because the dependency arrow points sim -> exec and the slab type is the
/// simulator's.)  A cache must outlive every Simulator constructed on it;
/// the thread-local instance trivially satisfies this for stack simulators.
class EventPoolCache {
 public:
  EventPoolCache() = default;
  EventPoolCache(const EventPoolCache&) = delete;
  EventPoolCache& operator=(const EventPoolCache&) = delete;

  /// The calling thread's cache (thread_local storage).
  static EventPoolCache& this_thread();

  /// Slabs currently parked and ready for the next Simulator.
  std::size_t slabs_cached() const { return slabs_.size(); }
  /// Largest arena (in slabs) ever parked here — reuse high-water mark.
  std::size_t high_water() const { return high_water_; }

 private:
  friend class Simulator;

  // Called by ~Simulator: park the larger of (current, returned) arena and
  // drop the other, so the cache converges on the fleet's high-water size
  // without hoarding every retired arena.
  void park(std::vector<exec::AlignedArray<Simulator::Slot>>&& slabs);

  std::vector<exec::AlignedArray<Simulator::Slot>> slabs_;
  std::size_t high_water_ = 0;
};

/// Convenience: a periodic activity bound to a simulator.  The callback may
/// return false to stop the ticker.
class Ticker {
 public:
  Ticker(Simulator& sim, Time period, std::function<bool()> on_tick)
      : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

  /// Arms the first tick `offset` from now.
  void start(Time offset = 0.0);
  void stop();

 private:
  void fire();

  Simulator& sim_;
  Time period_;
  std::function<bool()> on_tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace holms::sim
