#pragma once
// Discrete-event simulation kernel.
//
// This is the SystemC-equivalent substrate every process-network, NoC,
// wireless and MANET model in HolMS runs on (DESIGN.md S1).  Models schedule
// closures at absolute or relative times; the kernel executes them in
// (time, insertion-order) order so simultaneous events are deterministic.
//
// The kernel is deliberately single-threaded: reproducibility from a seed is
// worth more than parallel speed for the average-case statistics the paper's
// methodology is built around (§2.2).

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

namespace holms::sim {

using Time = double;

/// Handle used to cancel a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
};

/// Event-driven simulation kernel with cancellation and a stop condition.
class Simulator {
 public:
  /// Schedules `fn` at absolute time `when` (must be >= now()).
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Schedules `fn` `delay` time units from now (delay >= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; cancelling an already-fired or unknown event is
  /// a harmless no-op (the common race when a timeout and its completion
  /// event land in the same delta-cycle).
  void cancel(EventId id);

  /// Runs until the queue drains or `until` is reached; returns the number of
  /// events executed.  The clock is advanced to `until` if the queue drains
  /// earlier than `until` (so time-weighted stats can be closed consistently).
  std::size_t run(Time until = std::numeric_limits<Time>::infinity());

  /// Executes at most one event; returns false when the queue is empty.
  bool step();

  /// Requests that `run()` return before dispatching the next event.
  void stop() { stop_requested_ = true; }

  Time now() const { return now_; }
  std::size_t pending() const { return live_events_; }
  std::uint64_t executed() const { return executed_; }

  /// Largest queue size ever reached (live + not-yet-compacted cancelled
  /// entries) — the kernel's memory high-water mark, reported to the
  /// exec::metrics registry at the end of each run().
  std::size_t queue_high_water() const { return queue_high_water_; }

 private:
  struct Scheduled {
    Time when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Scheduled& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
      queue_;
  // Hash set, not a vector: heavy timeout/cancel workloads (MANET route
  // timeouts, wireless retransmit timers) accumulate thousands of pending
  // cancellations, and a linear scan per popped event made the kernel
  // O(cancelled^2).  Entries are erased when their event pops (the usual
  // case), keeping the set near the count of cancelled-but-not-yet-due
  // events.
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::size_t queue_high_water_ = 0;
  bool stop_requested_ = false;

  bool is_cancelled(std::uint64_t seq);
};

/// Convenience: a periodic activity bound to a simulator.  The callback may
/// return false to stop the ticker.
class Ticker {
 public:
  Ticker(Simulator& sim, Time period, std::function<bool()> on_tick)
      : sim_(sim), period_(period), on_tick_(std::move(on_tick)) {}

  /// Arms the first tick `offset` from now.
  void start(Time offset = 0.0);
  void stop();

 private:
  void fire();

  Simulator& sim_;
  Time period_;
  std::function<bool()> on_tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace holms::sim
