#pragma once
// Random-number utilities shared by every stochastic model in HolMS.
//
// A single `Rng` instance is threaded through each simulation so that runs
// are exactly reproducible from a seed; distinct model components should use
// distinct streams obtained via `Rng::fork()` to keep their draws decoupled
// from one another (adding a component never perturbs another component's
// sequence).
//
// HOLMS_LINT_ALLOW_FILE(D001): allowlisted RNG module — the one place std engines/distributions may live
// Everything else must draw through sim::Rng (or exec::stream_seed for
// parallel stream derivation); holms_lint rule D001 enforces this.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>

namespace holms::sim {

/// Deterministic pseudo-random stream with the named draws used across HolMS.
///
/// Wraps std::mt19937_64.  All draw helpers assert their parameter
/// preconditions; violating them is a programming error, not a runtime
/// condition.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Derives an independent child stream.  The child's seed is drawn from
  /// this stream, so forking is itself reproducible.
  Rng fork() { return Rng(engine_()); }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    assert(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    assert(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) {
    assert(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Normal(mean, stddev).
  double normal(double mean, double stddev) {
    assert(stddev >= 0.0);
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal where the underlying normal has parameters (mu, sigma).
  double lognormal(double mu, double sigma) {
    assert(sigma >= 0.0);
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto with shape alpha and scale xm (support [xm, inf)).
  /// For 1 < alpha <= 2 the variance is infinite: the heavy-tailed regime
  /// used to produce self-similar ON/OFF traffic (DESIGN.md S3).
  double pareto(double alpha, double xm) {
    assert(alpha > 0.0 && xm > 0.0);
    double u = uniform();
    // Guard against u == 0 which would yield infinity.
    if (u <= 0.0) u = 1e-18;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Geometric: number of failures before first success, p in (0, 1].
  std::int64_t geometric(double p) {
    assert(p > 0.0 && p <= 1.0);
    return std::geometric_distribution<std::int64_t>(p)(engine_);
  }

  /// Poisson with given mean.
  std::int64_t poisson(double mean) {
    assert(mean >= 0.0);
    if (mean == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }

  /// Raw 64-bit draw, for seeding and index shuffling.
  std::uint64_t bits() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace holms::sim
