#include "stream/channel.hpp"

#include <stdexcept>

#include "exec/error.hpp"

namespace holms::stream {

IidErrorModel::IidErrorModel(double per, sim::Rng rng) : per_(per), rng_(rng) {
  if (!(per >= 0.0 && per <= 1.0)) {
    throw holms::InvalidArgument("IidErrorModel: per must be in [0,1]");
  }
}

bool IidErrorModel::corrupts(double) { return rng_.bernoulli(per_); }

GilbertElliottModel::GilbertElliottModel(const Params& p, sim::Rng rng)
    : p_(p), rng_(rng) {
  p.validate();
  state_until_ = rng_.exponential(p_.rate_g2b);
}

void GilbertElliottModel::advance_to(double now) {
  if (now < last_now_) return;  // tolerate out-of-order queries
  while (state_until_ <= now) {
    bad_ = !bad_;
    state_until_ += rng_.exponential(bad_ ? p_.rate_b2g : p_.rate_g2b);
  }
  last_now_ = now;
}

bool GilbertElliottModel::corrupts(double now) {
  advance_to(now);
  return rng_.bernoulli(bad_ ? p_.per_bad : p_.per_good);
}

double GilbertElliottModel::mean_error_rate() const {
  // Stationary P(bad) = rate_g2b / (rate_g2b + rate_b2g).
  const double p_bad = p_.rate_g2b / (p_.rate_g2b + p_.rate_b2g);
  return p_bad * p_.per_bad + (1.0 - p_bad) * p_.per_good;
}

}  // namespace holms::stream
