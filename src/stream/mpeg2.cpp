#include "stream/mpeg2.hpp"

#include <limits>
#include <vector>

namespace holms::stream {

Mpeg2Report run_mpeg2_decoder(traffic::VideoTraceGenerator& video,
                              std::size_t num_frames, const Mpeg2Config& cfg,
                              double extra_drain_time) {
  // Per-thread slab recycling: repeated runs on one worker reuse the arena
  // of the previous run instead of re-growing it (DESIGN.md Â§5g).
  sim::Simulator sim(&sim::EventPoolCache::this_thread());
  ProcessNetwork net(sim);

  const CpuId cpu0 = net.add_cpu(cfg.policy);
  const CpuId cpu1 = cfg.two_cpus ? net.add_cpu(cfg.policy) : cpu0;

  const std::vector<traffic::VideoFrame> frames = video.generate(num_frames);
  const double period = video.frame_period();

  // Source: one token per coded frame, deterministic network arrival rate.
  std::size_t next_frame = 0;
  auto gap = [&next_frame, num_frames, period]() -> double {
    if (next_frame >= num_frames) {
      return std::numeric_limits<double>::infinity();  // stop injecting
    }
    return period;
  };
  auto make = [&frames, &next_frame](std::uint64_t id) {
    Token t;
    t.id = id;
    const auto& f = frames[next_frame++];
    t.size_bits = f.size_bits;
    t.work = f.decode_complexity;
    return t;
  };
  const NodeId receive = net.add_source("receive", gap, make);

  const double inv_f = 1.0 / cfg.cpu_frequency_hz;
  auto stage_time = [inv_f](double cycles_per_bit) {
    return [inv_f, cycles_per_bit](const Token& t) {
      return t.size_bits * cycles_per_bit * inv_f;
    };
  };

  NodeSpec vld_spec;
  vld_spec.name = "VLD";
  vld_spec.cpu = cpu0;
  vld_spec.priority = 2;
  vld_spec.service_time = stage_time(cfg.vld_cycles_per_bit);
  const NodeId vld = net.add_worker(std::move(vld_spec));

  NodeSpec idct_spec;
  idct_spec.name = "IDCT";
  idct_spec.cpu = cpu1;
  idct_spec.priority = 1;
  idct_spec.service_time = stage_time(cfg.idct_cycles_per_bit);
  const NodeId idct = net.add_worker(std::move(idct_spec));

  NodeSpec mv_spec;
  mv_spec.name = "MV";
  mv_spec.cpu = cpu1;
  mv_spec.priority = 0;
  mv_spec.service_time = stage_time(cfg.mv_cycles_per_bit);
  const NodeId mv = net.add_worker(std::move(mv_spec));

  const NodeId display = net.add_sink("display");

  const EdgeId b2 = net.connect(receive, vld, cfg.b2_capacity, "B2");
  const EdgeId b3 = net.connect(vld, idct, cfg.b3_capacity, "B3");
  const EdgeId b4 = net.connect(vld, mv, cfg.b4_capacity, "B4");
  net.connect(idct, display, cfg.c_capacity, "C1");
  net.connect(mv, display, cfg.c_capacity, "C2");

  net.start();
  const double horizon =
      period * static_cast<double>(num_frames) + extra_drain_time;
  sim.run(horizon);
  net.finish();

  Mpeg2Report r;
  r.mean_b2 = net.buffer(b2).occupancy().mean();
  r.mean_b3 = net.buffer(b3).occupancy().mean();
  r.mean_b4 = net.buffer(b4).occupancy().mean();
  r.mean_frame_latency = net.latency().mean();
  r.jitter = net.mean_jitter();
  r.frames_in = net.node_stats(receive).firings;
  r.frames_dropped = net.node_stats(receive).drops;
  r.frames_out = net.tokens_delivered();
  // Rate over the feed window (drain time excluded): equals the nominal
  // frame rate when nothing is dropped or left undecoded.
  const double feed_window = period * static_cast<double>(num_frames);
  r.fps_out = feed_window > 0.0
                  ? static_cast<double>(r.frames_out) / feed_window
                  : 0.0;
  r.cpu0_utilization = net.cpu_utilization(cpu0, sim.now());
  r.cpu1_utilization =
      cfg.two_cpus ? net.cpu_utilization(cpu1, sim.now()) : 0.0;
  r.vld_blocked_time = net.node_stats(vld).blocked_time;
  return r;
}

}  // namespace holms::stream
