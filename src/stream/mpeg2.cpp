#include "stream/mpeg2.hpp"

#include <limits>
#include <utility>

#include "exec/error.hpp"

namespace holms::stream {

Mpeg2SessionFom::Mpeg2SessionFom(sim::Simulator& sim,
                                 traffic::VideoTraceGenerator& video,
                                 std::size_t num_frames,
                                 const Mpeg2Config& cfg,
                                 double extra_drain_time)
    : sim_(sim), cfg_(cfg), frames_(video.generate(num_frames)),
      period_(video.frame_period()),
      horizon_(video.frame_period() * static_cast<double>(num_frames) +
               extra_drain_time) {}

double Mpeg2SessionFom::step() {
  switch (phase_) {
    case Mpeg2FomPhase::kBuild: {
      start_ = sim_.now();
      net_ = std::make_unique<ProcessNetwork>(sim_);
      ProcessNetwork& net = *net_;

      cpu0_ = net.add_cpu(cfg_.policy);
      cpu1_ = cfg_.two_cpus ? net.add_cpu(cfg_.policy) : cpu0_;

      // Source: one token per coded frame, deterministic network arrival
      // rate.  The closures capture `this`; the FOM is pinned (non-movable).
      const std::size_t num_frames = frames_.size();
      const double period = period_;
      auto gap = [this, num_frames, period]() -> double {
        if (next_frame_ >= num_frames) {
          return std::numeric_limits<double>::infinity();  // stop injecting
        }
        return period;
      };
      auto make = [this](std::uint64_t id) {
        Token t;
        t.id = id;
        const auto& f = frames_[next_frame_++];
        t.size_bits = f.size_bits;
        t.work = f.decode_complexity;
        return t;
      };
      receive_ = net.add_source("receive", gap, make);

      const double inv_f = 1.0 / cfg_.cpu_frequency_hz;
      auto stage_time = [inv_f](double cycles_per_bit) {
        return [inv_f, cycles_per_bit](const Token& t) {
          return t.size_bits * cycles_per_bit * inv_f;
        };
      };

      NodeSpec vld_spec;
      vld_spec.name = "VLD";
      vld_spec.cpu = cpu0_;
      vld_spec.priority = 2;
      vld_spec.service_time = stage_time(cfg_.vld_cycles_per_bit);
      vld_ = net.add_worker(std::move(vld_spec));

      NodeSpec idct_spec;
      idct_spec.name = "IDCT";
      idct_spec.cpu = cpu1_;
      idct_spec.priority = 1;
      idct_spec.service_time = stage_time(cfg_.idct_cycles_per_bit);
      const NodeId idct = net.add_worker(std::move(idct_spec));

      NodeSpec mv_spec;
      mv_spec.name = "MV";
      mv_spec.cpu = cpu1_;
      mv_spec.priority = 0;
      mv_spec.service_time = stage_time(cfg_.mv_cycles_per_bit);
      const NodeId mv = net.add_worker(std::move(mv_spec));

      const NodeId display = net.add_sink("display");

      b2_ = net.connect(receive_, vld_, cfg_.b2_capacity, "B2");
      b3_ = net.connect(vld_, idct, cfg_.b3_capacity, "B3");
      b4_ = net.connect(vld_, mv, cfg_.b4_capacity, "B4");
      net.connect(idct, display, cfg_.c_capacity, "C1");
      net.connect(mv, display, cfg_.c_capacity, "C2");

      net.start();
      phase_ = Mpeg2FomPhase::kDrain;
      return horizon_;
    }
    case Mpeg2FomPhase::kDrain: {
      ProcessNetwork& net = *net_;
      net.finish();

      Mpeg2Report r;
      r.mean_b2 = net.buffer(b2_).occupancy().mean();
      r.mean_b3 = net.buffer(b3_).occupancy().mean();
      r.mean_b4 = net.buffer(b4_).occupancy().mean();
      r.mean_frame_latency = net.latency().mean();
      r.jitter = net.mean_jitter();
      r.frames_in = net.node_stats(receive_).firings;
      r.frames_dropped = net.node_stats(receive_).drops;
      r.frames_out = net.tokens_delivered();
      // Rate over the feed window (drain time excluded): equals the nominal
      // frame rate when nothing is dropped or left undecoded.
      const double feed_window =
          period_ * static_cast<double>(frames_.size());
      r.fps_out = feed_window > 0.0
                      ? static_cast<double>(r.frames_out) / feed_window
                      : 0.0;
      const double elapsed = sim_.now() - start_;
      r.cpu0_utilization = net.cpu_utilization(cpu0_, elapsed);
      r.cpu1_utilization =
          cfg_.two_cpus ? net.cpu_utilization(cpu1_, elapsed) : 0.0;
      r.vld_blocked_time = net.node_stats(vld_).blocked_time;
      report_ = r;
      phase_ = Mpeg2FomPhase::kDone;
      return kFinished;
    }
    case Mpeg2FomPhase::kDone:
      return kFinished;
  }
  return kFinished;  // unreachable
}

const Mpeg2Report& Mpeg2SessionFom::report() const {
  if (phase_ != Mpeg2FomPhase::kDone) {
    throw holms::RuntimeError("Mpeg2SessionFom: report() before done()");
  }
  return report_;
}

Mpeg2Report run_mpeg2_decoder(traffic::VideoTraceGenerator& video,
                              std::size_t num_frames, const Mpeg2Config& cfg,
                              double extra_drain_time) {
  // Per-thread slab recycling: repeated runs on one worker reuse the arena
  // of the previous run instead of re-growing it (DESIGN.md §5g).
  sim::Simulator sim(&sim::EventPoolCache::this_thread());
  Mpeg2SessionFom fom(sim, video, num_frames, cfg, extra_drain_time);
  fom.step();              // build + arm sources
  sim.run(fom.horizon());  // the decode window, driven by the DES kernel
  fom.step();              // close statistics
  return fom.report();
}

}  // namespace holms::stream
