#pragma once
// Inter-stream synchronization (paper §2.1):
//
// "In its most abstract form, a multimedia application can be reduced to a
//  set of different media streams (audio, video, etc ...) that satisfy a
//  particular temporal relationship.  For instance, in order to enforce
//  lip-synchronization, the audio and video streams needs to be synchronized
//  at precise time instances."
//
// Two jittery streams (audio and video) arrive at a playout point.  A
// synchronizer holds units in per-stream playout buffers and releases
// matched pairs on a common clock; skew beyond the tolerance forces a
// resync action (skip or pause), and the fraction of in-sync presentations
// is the QoS metric.  The classic lip-sync tolerance is +-80 ms.

#include <cstdint>
#include <deque>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace holms::stream {

/// One media unit (an audio block or a video frame) with its nominal
/// presentation timestamp.
struct MediaUnit {
  std::uint64_t seq = 0;
  double pts = 0.0;         // nominal presentation time
  double arrived_at = 0.0;  // when it reached the playout buffer
};

/// Network/decode path model for one stream: fixed rate plus random delay
/// jitter and loss.
struct StreamPathModel {
  double unit_period = 1.0 / 30.0;  // media units per second (1/rate)
  double base_delay = 0.05;         // mean one-way latency
  double jitter_stddev = 0.01;      // Gaussian delay jitter
  double loss_prob = 0.0;           // units lost in transit
};

struct LipSyncConfig {
  StreamPathModel video{1.0 / 30.0, 0.08, 0.015, 0.0};
  StreamPathModel audio{1.0 / 50.0, 0.03, 0.003, 0.0};
  double sync_tolerance = 0.080;   // +-80 ms: the lip-sync envelope
  double playout_offset = 0.150;   // fixed playout delay added to pts
  std::size_t buffer_capacity = 64;
};

struct LipSyncReport {
  std::uint64_t presented = 0;        // video units displayed
  std::uint64_t in_sync = 0;          // displayed within tolerance
  std::uint64_t video_late = 0;       // video missed its playout instant
  std::uint64_t audio_gaps = 0;       // playout instants with no audio
  std::uint64_t resyncs = 0;          // tolerance exceeded -> clock resync
  double in_sync_fraction = 0.0;
  double mean_abs_skew = 0.0;         // |audio pts - video pts| at playout
  double max_abs_skew = 0.0;
  double mean_video_buffer = 0.0;     // playout-buffer occupancy
  double mean_audio_buffer = 0.0;
};

/// Simulates `duration` seconds of synchronized playout.
LipSyncReport run_lipsync(const LipSyncConfig& cfg, double duration,
                          std::uint64_t seed);

}  // namespace holms::stream
