#include "stream/stream_system.hpp"

#include <cmath>

namespace holms::stream {
namespace {

/// Internal event-driven state machine for one stream run.
class StreamRun {
 public:
  StreamRun(sim::Simulator& sim, traffic::ArrivalProcess& source,
            ErrorModel& errors, const StreamConfig& cfg)
      : sim_(sim), source_(source), errors_(errors), cfg_(cfg),
        latency_hist_(0.0, 2.0, 2000) {}

  void start() {
    schedule_next_arrival();
    tx_occ_.update(0.0, 0.0);
    rx_occ_.update(0.0, 0.0);
  }

  StreamQos report(double duration) {
    tx_occ_.finish(sim_.now());
    rx_occ_.finish(sim_.now());
    StreamQos q;
    q.offered = offered_;
    q.delivered = delivered_;
    q.lost_tx_overflow = lost_tx_;
    q.lost_channel = lost_channel_;
    q.lost_rx_overflow = lost_rx_;
    q.retransmissions = retx_;
    q.mean_latency = latency_.mean();
    q.p99_latency = latency_hist_.quantile(0.99);
    q.jitter = gap_dev_.count() ? gap_dev_.mean() : 0.0;
    q.loss_rate = offered_ ? 1.0 - static_cast<double>(delivered_) /
                                       static_cast<double>(offered_)
                           : 0.0;
    q.throughput = duration > 0.0
                       ? static_cast<double>(delivered_) / duration
                       : 0.0;
    q.mean_tx_occupancy = tx_occ_.mean();
    q.mean_rx_occupancy = rx_occ_.mean();
    q.tx_energy_joules = tx_energy_;
    return q;
  }

 private:
  void schedule_next_arrival() {
    sim_.schedule_in(source_.next_interarrival(), [this] {
      on_arrival();
      schedule_next_arrival();
    });
  }

  void on_arrival() {
    ++offered_;
    if (tx_queue_.size() >= cfg_.tx_capacity) {
      ++lost_tx_;
      return;
    }
    Packet p;
    p.id = offered_;
    p.size_bits = cfg_.packet_size_bits;
    p.created_at = sim_.now();
    tx_queue_.push_back(p);
    tx_occ_.update(sim_.now(), static_cast<double>(tx_queue_.size()));
    try_transmit();
  }

  void try_transmit() {
    if (channel_busy_ || tx_queue_.empty()) return;
    channel_busy_ = true;
    const Packet p = tx_queue_.front();
    const double tt = cfg_.link.transmission_time(p.size_bits);
    tx_energy_ += cfg_.tx_energy_per_bit * p.size_bits;
    sim_.schedule_in(tt, [this, p] { on_channel_done(p); });
  }

  void on_channel_done(Packet p) {
    const bool bad = errors_.corrupts(sim_.now());
    if (bad) {
      if (p.retransmissions < cfg_.arq_max_retransmissions) {
        // Stop-and-wait ARQ: NAK arrives after the feedback delay, then the
        // head-of-line packet goes out again.
        ++retx_;
        ++tx_queue_.front().retransmissions;
        sim_.schedule_in(cfg_.ack_delay, [this] {
          channel_busy_ = false;
          try_transmit();
        });
        return;
      }
      ++lost_channel_;
      pop_tx();
      channel_busy_ = false;
      try_transmit();
      return;
    }
    pop_tx();
    channel_busy_ = false;
    deliver(p);
    try_transmit();
  }

  void pop_tx() {
    tx_queue_.pop_front();
    tx_occ_.update(sim_.now(), static_cast<double>(tx_queue_.size()));
  }

  void deliver(const Packet& p) {
    if (rx_queue_.size() >= cfg_.rx_capacity) {
      ++lost_rx_;
      return;
    }
    rx_queue_.push_back(p);
    rx_occ_.update(sim_.now(), static_cast<double>(rx_queue_.size()));
    try_consume();
  }

  void try_consume() {
    if (sink_busy_ || rx_queue_.empty()) return;
    if (cfg_.sink_service_time <= 0.0) {
      while (!rx_queue_.empty()) consume_one();
      return;
    }
    sink_busy_ = true;
    sim_.schedule_in(cfg_.sink_service_time, [this] {
      consume_one();
      sink_busy_ = false;
      try_consume();
    });
  }

  void consume_one() {
    const Packet p = rx_queue_.front();
    rx_queue_.pop_front();
    rx_occ_.update(sim_.now(), static_cast<double>(rx_queue_.size()));
    ++delivered_;
    const double lat = sim_.now() - p.created_at;
    latency_.add(lat);
    latency_hist_.add(lat);
    if (last_departure_ >= 0.0) {
      const double gap = sim_.now() - last_departure_;
      if (last_gap_ >= 0.0) gap_dev_.add(std::abs(gap - last_gap_));
      last_gap_ = gap;
    }
    last_departure_ = sim_.now();
  }

  sim::Simulator& sim_;
  traffic::ArrivalProcess& source_;
  ErrorModel& errors_;
  StreamConfig cfg_;

  std::deque<Packet> tx_queue_;
  std::deque<Packet> rx_queue_;
  bool channel_busy_ = false;
  bool sink_busy_ = false;

  std::uint64_t offered_ = 0, delivered_ = 0;
  std::uint64_t lost_tx_ = 0, lost_channel_ = 0, lost_rx_ = 0, retx_ = 0;
  double tx_energy_ = 0.0;
  sim::OnlineStats latency_;
  sim::Histogram latency_hist_;
  sim::OnlineStats gap_dev_;
  sim::TimeWeightedStats tx_occ_;
  sim::TimeWeightedStats rx_occ_;
  double last_departure_ = -1.0;
  double last_gap_ = -1.0;
};

}  // namespace

StreamQos run_stream(traffic::ArrivalProcess& source, ErrorModel& errors,
                     const StreamConfig& cfg, double duration) {
  // Per-thread slab recycling: repeated runs on one worker reuse the arena
  // of the previous run instead of re-growing it (DESIGN.md Â§5g).
  sim::Simulator sim(&sim::EventPoolCache::this_thread());
  StreamRun run(sim, source, errors, cfg);
  run.start();
  sim.run(duration);
  return run.report(duration);
}

StreamTuningResult tune_stream(const StreamConfig& base,
                               const GilbertElliottModel::Params& channel,
                               const StreamTuningOptions& opts) {
  opts.validate();
  StreamTuningResult best;
  double best_goodput = -1.0;
  for (const double rate : opts.source_rates) {
    for (const std::uint32_t arq : opts.arq_budgets) {
      StreamConfig cfg = base;
      cfg.arq_max_retransmissions = arq;
      traffic::CbrSource src(rate);
      GilbertElliottModel err(channel, sim::Rng(opts.seed));
      const StreamQos q = run_stream(src, err, cfg, opts.sim_duration);
      ++best.evaluated;
      if (q.loss_rate > opts.max_loss_rate) continue;
      if (q.mean_latency > opts.max_mean_latency) continue;
      if (opts.energy_budget_j_per_s > 0.0 &&
          q.tx_energy_joules / opts.sim_duration >
              opts.energy_budget_j_per_s) {
        continue;
      }
      if (q.throughput > best_goodput) {
        best_goodput = q.throughput;
        best.source_rate = rate;
        best.arq_budget = arq;
        best.qos = q;
        best.feasible = true;
      }
    }
  }
  return best;
}

}  // namespace holms::stream
