#pragma once
// The Channel automaton of the generic multimedia stream (paper Fig.1(a)).
//
// "the real channel can be modelled as an automaton which simply transmits
//  packets from the transmitter (Tx) to the receiver (Rx) buffers.  The
//  packets may be sent over the channel with error, or may be simply lost."
//
// Two error models are provided: the memoryless binary-symmetric abstraction
// (per-packet error probability) and the Gilbert–Elliott two-state burst
// model, which is the standard wireless abstraction used throughout §4.

#include <cstddef>
#include <cstdint>

#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::stream {

/// A media packet travelling Source -> Channel -> Sink.
struct Packet {
  std::uint64_t id = 0;
  double size_bits = 0.0;
  double created_at = 0.0;   // time the source emitted it
  std::uint32_t retransmissions = 0;
  bool corrupted = false;
};

/// Per-packet error process.
class ErrorModel {
 public:
  virtual ~ErrorModel() = default;
  /// Returns true if a packet transmitted at time `now` is corrupted/lost.
  virtual bool corrupts(double now) = 0;
  /// Long-run packet error probability.
  virtual double mean_error_rate() const = 0;
};

/// Independent (memoryless) packet errors with fixed probability.
class IidErrorModel final : public ErrorModel {
 public:
  IidErrorModel(double per, sim::Rng rng);
  bool corrupts(double now) override;
  double mean_error_rate() const override { return per_; }

 private:
  double per_;
  sim::Rng rng_;
};

/// Gilbert–Elliott burst-error channel: Good/Bad states with exponential
/// sojourns and per-state packet error probabilities.
class GilbertElliottModel final : public ErrorModel {
 public:
  struct Params {
    double per_good = 0.001;   // packet error prob in Good
    double per_bad = 0.3;      // packet error prob in Bad
    double rate_g2b = 0.1;     // Good -> Bad transitions per unit time
    double rate_b2g = 1.0;     // Bad -> Good transitions per unit time

    /// Contract rule C001; called by the model constructor.
    void validate() const {
      if (!(per_good >= 0.0 && per_good <= 1.0) ||
          !(per_bad >= 0.0 && per_bad <= 1.0) || !(rate_g2b > 0.0) ||
          !(rate_b2g > 0.0)) {
        throw holms::InvalidArgument("GilbertElliottModel: invalid params");
      }
    }
  };
  GilbertElliottModel(const Params& p, sim::Rng rng);

  bool corrupts(double now) override;
  double mean_error_rate() const override;
  bool in_bad_state() const { return bad_; }

 private:
  void advance_to(double now);

  Params p_;
  bool bad_ = false;
  double state_until_ = 0.0;
  double last_now_ = 0.0;
  sim::Rng rng_;
};

/// Transmission-time model of the physical link.
struct LinkRate {
  double bits_per_second = 1e6;
  double propagation_delay = 1e-3;

  double transmission_time(double size_bits) const {
    return size_bits / bits_per_second + propagation_delay;
  }
};

}  // namespace holms::stream
