#include "stream/kpn.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::stream {

void Buffer::push(double now, Token t) {
  assert(!full());
  q_.push_back(t);
  occupancy_.update(now, static_cast<double>(q_.size()));
}

Token Buffer::pop(double now) {
  assert(!empty());
  Token t = q_.front();
  q_.pop_front();
  occupancy_.update(now, static_cast<double>(q_.size()));
  return t;
}

CpuId ProcessNetwork::add_cpu(SchedPolicy policy) {
  Cpu c;
  c.policy = policy;
  cpus_.push_back(std::move(c));
  return CpuId{cpus_.size() - 1};
}

NodeId ProcessNetwork::add_worker(NodeSpec spec) {
  if (!spec.service_time) {
    throw holms::InvalidArgument("add_worker: service_time required");
  }
  if (spec.cpu.v >= cpus_.size()) {
    throw holms::OutOfRange("add_worker: unknown CPU");
  }
  Node n;
  n.kind = Kind::kWorker;
  n.spec = std::move(spec);
  nodes_.push_back(std::move(n));
  cpus_[nodes_.back().spec.cpu.v].nodes.push_back(nodes_.size() - 1);
  return NodeId{nodes_.size() - 1};
}

NodeId ProcessNetwork::add_source(std::string name,
                                  std::function<double()> next_gap,
                                  std::function<Token(std::uint64_t)> make) {
  Node n;
  n.kind = Kind::kSource;
  n.spec.name = std::move(name);
  n.next_gap = std::move(next_gap);
  n.make = std::move(make);
  nodes_.push_back(std::move(n));
  return NodeId{nodes_.size() - 1};
}

NodeId ProcessNetwork::add_sink(std::string name) {
  Node n;
  n.kind = Kind::kSink;
  n.spec.name = std::move(name);
  nodes_.push_back(std::move(n));
  return NodeId{nodes_.size() - 1};
}

EdgeId ProcessNetwork::connect(NodeId from, NodeId to, std::size_t capacity,
                               std::string buffer_name, std::size_t produce,
                               std::size_t consume) {
  if (capacity == 0) throw holms::InvalidArgument("connect: capacity >= 1");
  if (produce == 0 || consume == 0 || produce > capacity ||
      consume > capacity) {
    throw holms::InvalidArgument(
        "connect: SDF rates must be in [1, capacity]");
  }
  if (buffer_name.empty()) {
    buffer_name = nodes_.at(from.v).spec.name + "->" + nodes_.at(to.v).spec.name;
  }
  edges_.push_back(std::make_unique<Buffer>(std::move(buffer_name), capacity,
                                            produce, consume));
  const EdgeId e{edges_.size() - 1};
  nodes_.at(from.v).outputs.push_back(e);
  nodes_.at(to.v).inputs.push_back(e);
  return e;
}

void ProcessNetwork::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == Kind::kSource) {
      const double gap = nodes_[i].next_gap();
      sim_.schedule_in(gap, [this, i] { source_emit(i); });
    }
  }
}

void ProcessNetwork::finish() {
  const double now = sim_.now();
  for (auto& e : edges_) e->close_stats(now);
  // Account for any node still blocked at the end of the run.
  for (auto& n : nodes_) {
    if (n.blocked) {
      n.stats.blocked_time += now - n.blocked_since;
      n.blocked_since = now;
    }
  }
}

bool ProcessNetwork::can_fire(const Node& n) const {
  if (n.blocked) return false;
  if (n.inputs.empty()) return false;
  for (EdgeId e : n.inputs) {
    if (edges_[e.v]->size() < edges_[e.v]->consume_count()) return false;
  }
  // Output space is checked optimistically at completion time
  // (completion-time blocking), so a producer can start work even when the
  // downstream buffer is momentarily full.
  return true;
}

void ProcessNetwork::dispatch(std::size_t cpu_idx) {
  Cpu& cpu = cpus_[cpu_idx];
  if (cpu.busy || cpu.nodes.empty()) return;

  std::size_t chosen = nodes_.size();
  if (cpu.policy == SchedPolicy::kRoundRobin) {
    for (std::size_t k = 0; k < cpu.nodes.size(); ++k) {
      const std::size_t idx =
          cpu.nodes[(cpu.rr_next + k) % cpu.nodes.size()];
      if (can_fire(nodes_[idx])) {
        chosen = idx;
        cpu.rr_next = (cpu.rr_next + k + 1) % cpu.nodes.size();
        break;
      }
    }
  } else {  // fixed priority: highest priority ready node wins
    int best = std::numeric_limits<int>::min();
    for (std::size_t idx : cpu.nodes) {
      if (can_fire(nodes_[idx]) && nodes_[idx].spec.priority > best) {
        best = nodes_[idx].spec.priority;
        chosen = idx;
      }
    }
  }
  if (chosen < nodes_.size()) fire(chosen);
}

void ProcessNetwork::fire(std::size_t node_idx) {
  Node& n = nodes_[node_idx];
  Cpu& cpu = cpus_[n.spec.cpu.v];
  assert(!cpu.busy);
  const double now = sim_.now();
  std::vector<Token> ins;
  ins.reserve(n.inputs.size());
  for (EdgeId e : n.inputs) {
    for (std::size_t k = 0; k < edges_[e.v]->consume_count(); ++k) {
      ins.push_back(edges_[e.v]->pop(now));
    }
  }
  const double dt = n.spec.service_time(ins.front());
  assert(dt >= 0.0);
  cpu.busy = true;
  Token out = n.spec.transform ? n.spec.transform(ins) : ins.front();
  sim_.schedule_in(dt, [this, node_idx, out, dt] {
    Node& nn = nodes_[node_idx];
    Cpu& c = cpus_[nn.spec.cpu.v];
    c.busy = false;
    c.busy_time += dt;
    nn.stats.busy_time += dt;
    ++nn.stats.firings;
    // Try to emit; block the node (not the CPU) if downstream is full.
    bool space = true;
    for (EdgeId e : nn.outputs) {
      if (edges_[e.v]->size() + edges_[e.v]->produce_count() >
          edges_[e.v]->capacity()) {
        space = false;
      }
    }
    if (space) {
      const double now2 = sim_.now();
      for (EdgeId e : nn.outputs) {
        for (std::size_t k = 0; k < edges_[e.v]->produce_count(); ++k) {
          edges_[e.v]->push(now2, out);
        }
      }
    } else {
      nn.blocked = true;
      nn.blocked_since = sim_.now();
      nn.pending_emit = out;
    }
    on_state_change();
  });
}

void ProcessNetwork::on_state_change() {
  // Fixpoint: unblocking a producer can enable a consumer whose firing frees
  // more space, and so on.
  bool progress = true;
  while (progress) {
    progress = false;
    const double now = sim_.now();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& n = nodes_[i];
      if (!n.blocked) continue;
      bool space = true;
      for (EdgeId e : n.outputs) {
        if (edges_[e.v]->size() + edges_[e.v]->produce_count() >
            edges_[e.v]->capacity()) {
          space = false;
        }
      }
      if (space) {
        for (EdgeId e : n.outputs) {
          for (std::size_t k = 0; k < edges_[e.v]->produce_count(); ++k) {
            edges_[e.v]->push(now, n.pending_emit);
          }
        }
        n.stats.blocked_time += now - n.blocked_since;
        n.blocked = false;
        progress = true;
      }
    }
    for (std::size_t c = 0; c < cpus_.size(); ++c) {
      const bool was_busy = cpus_[c].busy;
      dispatch(c);
      if (!was_busy && cpus_[c].busy) progress = true;
    }
    // Sinks drain instantly.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].kind == Kind::kSink) {
        bool any = true;
        while (any) {
          any = false;
          Node& s = nodes_[i];
          bool all_ready = !s.inputs.empty();
          for (EdgeId e : s.inputs) {
            if (edges_[e.v]->size() < edges_[e.v]->consume_count()) {
              all_ready = false;
            }
          }
          if (all_ready) {
            deliver_to_sink(i);
            any = true;
            progress = true;
          }
        }
      }
    }
  }
}

void ProcessNetwork::source_emit(std::size_t node_idx) {
  Node& n = nodes_[node_idx];
  const double now = sim_.now();
  Token t = n.make(next_token_++);
  t.created_at = now;
  bool space = true;
  for (EdgeId e : n.outputs) {
    if (edges_[e.v]->size() + edges_[e.v]->produce_count() >
        edges_[e.v]->capacity()) {
      space = false;
    }
  }
  if (space && !n.outputs.empty()) {
    for (EdgeId e : n.outputs) {
      for (std::size_t k = 0; k < edges_[e.v]->produce_count(); ++k) {
        edges_[e.v]->push(now, t);
      }
    }
    ++n.stats.firings;
  } else {
    ++n.stats.drops;
  }
  const double gap = n.next_gap();
  if (gap >= 0.0 && std::isfinite(gap)) {
    sim_.schedule_in(gap, [this, node_idx] { source_emit(node_idx); });
  }
  on_state_change();
}

void ProcessNetwork::deliver_to_sink(std::size_t node_idx) {
  Node& n = nodes_[node_idx];
  const double now = sim_.now();
  Token first;
  bool have = false;
  for (EdgeId e : n.inputs) {
    for (std::size_t k = 0; k < edges_[e.v]->consume_count(); ++k) {
      Token t = edges_[e.v]->pop(now);
      if (!have) {
        first = t;
        have = true;
      }
    }
  }
  if (!have) return;
  ++n.stats.firings;
  ++delivered_;
  latency_.add(now - first.created_at);
  if (last_departure_ >= 0.0) {
    const double gap = now - last_departure_;
    if (last_gap_ >= 0.0) departure_gap_deviation_.add(std::abs(gap - last_gap_));
    last_gap_ = gap;
  }
  last_departure_ = now;
}

double ProcessNetwork::mean_jitter() const {
  return departure_gap_deviation_.count() ? departure_gap_deviation_.mean()
                                          : 0.0;
}

double ProcessNetwork::cpu_utilization(CpuId c, double elapsed) const {
  if (!(elapsed > 0.0)) return 0.0;
  return cpus_.at(c.v).busy_time / elapsed;
}

}  // namespace holms::stream
