#pragma once
// The MPEG-2 decoder process network of Fig.1(b):
//
//   receive -> B2 -> VLD -> { B3 -> IDCT -> C1 }  -> display
//                         -> { B4 -> MV   -> C2 } /
//
// with all decode processes arbitrated by a scheduler on one (or two) CPUs.
// This is the paper's running example of the Producer–Consumer paradigm
// applied locally: "the average length of these buffers is very important as
// it reflects their utilization over time."

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "stream/kpn.hpp"
#include "traffic/video.hpp"

namespace holms::stream {

struct Mpeg2Config {
  std::size_t b2_capacity = 8;
  std::size_t b3_capacity = 4;
  std::size_t b4_capacity = 4;
  std::size_t c_capacity = 4;
  bool two_cpus = false;           // map IDCT/MV to a second CPU
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  double cpu_frequency_hz = 400e6;
  double vld_cycles_per_bit = 40.0;
  double idct_cycles_per_bit = 60.0;
  double mv_cycles_per_bit = 25.0;
};

struct Mpeg2Report {
  double mean_b2 = 0.0;            // time-average buffer occupancies
  double mean_b3 = 0.0;
  double mean_b4 = 0.0;
  double mean_frame_latency = 0.0; // arrival -> display
  double jitter = 0.0;
  double fps_out = 0.0;            // displayed frames per second
  double cpu0_utilization = 0.0;
  double cpu1_utilization = 0.0;   // 0 unless two_cpus
  double vld_blocked_time = 0.0;   // producer write-blocked on B3/B4
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t frames_dropped = 0;  // receive found B2 full
};

/// Explicit phases of one decode session, reqh/FOM style.
enum class Mpeg2FomPhase : std::uint8_t {
  kBuild,  // construct the Fig.1(b) network on the simulator, arm sources
  kDrain,  // feed+drain window elapsed: close statistics, build the report
  kDone,   // report available
};

/// Resumable, non-blocking state machine for one MPEG-2 decode session on an
/// *external* (possibly shared, possibly time-offset) Simulator.
///
/// step() in kBuild constructs the process network at the simulator's
/// current time and returns horizon() — the feed+drain window during which
/// the DES kernel drives the network's own events; the scheduler must call
/// step() again once the clock has advanced by that much.  The second step()
/// (kDrain) closes the statistics and builds the report; further steps
/// return kFinished.  CPU utilization is measured against the session's own
/// elapsed window, so a session admitted at t=7 reports the same numbers as
/// one admitted at t=0.
///
/// The network's callbacks capture `this`: the FOM must not move once built
/// and must be destroyed before the Simulator drains further events.  The
/// frame trace is drawn from `video` in the constructor (one generator draw
/// per session, independent of admission time).  The legacy one-shot
/// run_mpeg2_decoder() below is a thin driver over this machine and produces
/// bitwise-identical reports.
class Mpeg2SessionFom {
 public:
  static constexpr double kFinished = -1.0;

  Mpeg2SessionFom(sim::Simulator& sim, traffic::VideoTraceGenerator& video,
                  std::size_t num_frames, const Mpeg2Config& cfg,
                  double extra_drain_time = 2.0);
  Mpeg2SessionFom(const Mpeg2SessionFom&) = delete;
  Mpeg2SessionFom& operator=(const Mpeg2SessionFom&) = delete;

  /// Runs one phase transition; see class comment for the return protocol.
  double step();

  bool done() const { return phase_ == Mpeg2FomPhase::kDone; }
  Mpeg2FomPhase phase() const { return phase_; }
  /// Feed + drain window (known at construction, before the network exists).
  double horizon() const { return horizon_; }

  /// Valid once done(); throws RuntimeError before that.
  const Mpeg2Report& report() const;

 private:
  sim::Simulator& sim_;
  Mpeg2Config cfg_;
  std::vector<traffic::VideoFrame> frames_;
  double period_;
  double horizon_;
  double start_ = 0.0;
  std::size_t next_frame_ = 0;
  std::unique_ptr<ProcessNetwork> net_;
  CpuId cpu0_{};
  CpuId cpu1_{};
  NodeId receive_{};
  NodeId vld_{};
  EdgeId b2_{};
  EdgeId b3_{};
  EdgeId b4_{};
  Mpeg2FomPhase phase_ = Mpeg2FomPhase::kBuild;
  Mpeg2Report report_;
};

/// Builds the decoder network, feeds it `num_frames` frames from the trace
/// generator at its frame rate, and runs until the pipeline drains (bounded
/// by `extra_drain_time` after the last arrival).  (Thin synchronous driver
/// over Mpeg2SessionFom.)
Mpeg2Report run_mpeg2_decoder(traffic::VideoTraceGenerator& video,
                              std::size_t num_frames, const Mpeg2Config& cfg,
                              double extra_drain_time = 2.0);

}  // namespace holms::stream
