#pragma once
// The MPEG-2 decoder process network of Fig.1(b):
//
//   receive -> B2 -> VLD -> { B3 -> IDCT -> C1 }  -> display
//                         -> { B4 -> MV   -> C2 } /
//
// with all decode processes arbitrated by a scheduler on one (or two) CPUs.
// This is the paper's running example of the Producer–Consumer paradigm
// applied locally: "the average length of these buffers is very important as
// it reflects their utilization over time."

#include <cstddef>

#include "sim/simulator.hpp"
#include "stream/kpn.hpp"
#include "traffic/video.hpp"

namespace holms::stream {

struct Mpeg2Config {
  std::size_t b2_capacity = 8;
  std::size_t b3_capacity = 4;
  std::size_t b4_capacity = 4;
  std::size_t c_capacity = 4;
  bool two_cpus = false;           // map IDCT/MV to a second CPU
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  double cpu_frequency_hz = 400e6;
  double vld_cycles_per_bit = 40.0;
  double idct_cycles_per_bit = 60.0;
  double mv_cycles_per_bit = 25.0;
};

struct Mpeg2Report {
  double mean_b2 = 0.0;            // time-average buffer occupancies
  double mean_b3 = 0.0;
  double mean_b4 = 0.0;
  double mean_frame_latency = 0.0; // arrival -> display
  double jitter = 0.0;
  double fps_out = 0.0;            // displayed frames per second
  double cpu0_utilization = 0.0;
  double cpu1_utilization = 0.0;   // 0 unless two_cpus
  double vld_blocked_time = 0.0;   // producer write-blocked on B3/B4
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t frames_dropped = 0;  // receive found B2 full
};

/// Builds the decoder network, feeds it `num_frames` frames from the trace
/// generator at its frame rate, and runs until the pipeline drains (bounded
/// by `extra_drain_time` after the last arrival).
Mpeg2Report run_mpeg2_decoder(traffic::VideoTraceGenerator& video,
                              std::size_t num_frames, const Mpeg2Config& cfg,
                              double extra_drain_time = 2.0);

}  // namespace holms::stream
