#include "stream/lipsync.hpp"

#include <algorithm>
#include <cmath>

namespace holms::stream {
namespace {

class LipSyncRun {
 public:
  LipSyncRun(const LipSyncConfig& cfg, sim::Simulator& sim, sim::Rng rng)
      : cfg_(cfg), sim_(sim), rng_(rng) {}

  void start() {
    schedule_generation(/*video=*/true, 0);
    schedule_generation(/*video=*/false, 0);
    sim_.schedule_at(cfg_.playout_offset, [this] { video_tick(); });
    sim_.schedule_at(cfg_.playout_offset, [this] { audio_tick(); });
    video_occ_.update(0.0, 0.0);
    audio_occ_.update(0.0, 0.0);
  }

  LipSyncReport report() {
    video_occ_.finish(sim_.now());
    audio_occ_.finish(sim_.now());
    LipSyncReport r = rep_;
    r.in_sync_fraction =
        r.presented ? static_cast<double>(r.in_sync) /
                          static_cast<double>(r.presented)
                    : 0.0;
    r.mean_abs_skew = skew_.count() ? skew_.mean() : 0.0;
    r.max_abs_skew = skew_.count() ? skew_.max() : 0.0;
    r.mean_video_buffer = video_occ_.mean();
    r.mean_audio_buffer = audio_occ_.mean();
    return r;
  }

 private:
  void schedule_generation(bool video, std::uint64_t seq) {
    const StreamPathModel& path = video ? cfg_.video : cfg_.audio;
    const double pts = static_cast<double>(seq) * path.unit_period;
    // Source emits at pts; the unit arrives after the path delay.
    const double delay =
        path.base_delay + std::abs(rng_.normal(0.0, path.jitter_stddev));
    if (!rng_.bernoulli(path.loss_prob)) {
      sim_.schedule_at(pts + delay, [this, video, seq, pts] {
        arrive(video, seq, pts);
      });
    }
    sim_.schedule_at(pts + (video ? cfg_.video : cfg_.audio).unit_period,
                     [this, video, seq] {
                       schedule_generation(video, seq + 1);
                     });
  }

  void arrive(bool video, std::uint64_t seq, double pts) {
    auto& buf = video ? video_buf_ : audio_buf_;
    if (buf.size() >= cfg_.buffer_capacity) buf.pop_front();
    MediaUnit u;
    u.seq = seq;
    u.pts = pts;
    u.arrived_at = sim_.now();
    // Arrivals can be reordered by jitter; keep the buffer pts-sorted.
    auto it = std::upper_bound(
        buf.begin(), buf.end(), u,
        [](const MediaUnit& a, const MediaUnit& b) { return a.pts < b.pts; });
    buf.insert(it, u);
    (video ? video_occ_ : audio_occ_)
        .update(sim_.now(), static_cast<double>(buf.size()));
  }

  void video_tick() {
    if (!video_buf_.empty()) {
      const MediaUnit u = video_buf_.front();
      video_buf_.pop_front();
      video_occ_.update(sim_.now(), static_cast<double>(video_buf_.size()));
      video_pts_ = u.pts;
      ++rep_.presented;
      const double skew = video_pts_ - audio_pts_;
      skew_.add(std::abs(skew));
      if (std::abs(skew) <= cfg_.sync_tolerance) {
        ++rep_.in_sync;
      } else {
        resync(skew);
      }
    } else {
      ++rep_.video_late;  // freeze frame
    }
    sim_.schedule_in(cfg_.video.unit_period, [this] { video_tick(); });
  }

  void audio_tick() {
    if (!audio_buf_.empty()) {
      const MediaUnit u = audio_buf_.front();
      audio_buf_.pop_front();
      audio_occ_.update(sim_.now(), static_cast<double>(audio_buf_.size()));
      audio_pts_ = u.pts;
    } else {
      ++rep_.audio_gaps;  // silence insertion
    }
    sim_.schedule_in(cfg_.audio.unit_period, [this] { audio_tick(); });
  }

  // Skip units of the lagging stream so the next presentations realign —
  // the "resynchronization at precise time instances" action of §2.1.
  void resync(double skew) {
    ++rep_.resyncs;
    if (skew > 0.0) {
      // Video ahead: fast-forward audio.
      while (!audio_buf_.empty() && audio_buf_.front().pts < video_pts_) {
        audio_buf_.pop_front();
      }
      audio_occ_.update(sim_.now(), static_cast<double>(audio_buf_.size()));
      if (!audio_buf_.empty()) audio_pts_ = audio_buf_.front().pts;
    } else {
      while (!video_buf_.empty() && video_buf_.front().pts < audio_pts_) {
        video_buf_.pop_front();
      }
      video_occ_.update(sim_.now(), static_cast<double>(video_buf_.size()));
    }
  }

  LipSyncConfig cfg_;
  sim::Simulator& sim_;
  sim::Rng rng_;
  std::deque<MediaUnit> video_buf_;
  std::deque<MediaUnit> audio_buf_;
  double video_pts_ = 0.0;
  double audio_pts_ = 0.0;
  LipSyncReport rep_;
  sim::OnlineStats skew_;
  sim::TimeWeightedStats video_occ_;
  sim::TimeWeightedStats audio_occ_;
};

}  // namespace

LipSyncReport run_lipsync(const LipSyncConfig& cfg, double duration,
                          std::uint64_t seed) {
  // Per-thread slab recycling: repeated runs on one worker reuse the arena
  // of the previous run instead of re-growing it (DESIGN.md Â§5g).
  sim::Simulator sim(&sim::EventPoolCache::this_thread());
  LipSyncRun run(cfg, sim, sim::Rng(seed));
  run.start();
  sim.run(duration);
  return run.report();
}

}  // namespace holms::stream
