#pragma once
// Process-network execution engine (paper §2.1).
//
// "A natural choice is to use process graphs where each node corresponds to a
//  process in the multimedia application, while each edge represents a
//  communication channel (link) ... through dedicated buffers that behave
//  like finite-length queues."
//
// Semantics: a worker node fires when (a) every input buffer holds a token,
// (b) every output buffer has space, and (c) its mapped CPU is free.  Firing
// consumes one token per input, occupies the CPU for a model-supplied service
// time, then emits one token per output.  Nodes mapped to the same CPU are
// arbitrated by a scheduler process — "Mapping ... onto a platform with a
// single CPU would imply another process, namely the scheduler."
//
// This one engine executes the MPEG-2 decoder of Fig.1(b), the E2 tandem
// queue, and any other process-graph application in HolMS.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace holms::stream {

/// A unit of streamed data flowing through the network.
struct Token {
  std::uint64_t id = 0;
  double created_at = 0.0;
  double work = 0.0;       // abstract work carried (e.g. decode seconds)
  double size_bits = 0.0;  // payload size, for communication costing
};

class ProcessNetwork;

/// Scheduling policy for nodes sharing a CPU.
enum class SchedPolicy { kRoundRobin, kFixedPriority };

/// Identifier types (indices into the network's tables).
struct NodeId { std::size_t v = 0; };
struct EdgeId { std::size_t v = 0; };
struct CpuId { std::size_t v = 0; };

/// Bounded FIFO edge with time-weighted occupancy statistics — the B2/B3/B4
/// buffers of Fig.1(b).  Synchronous-dataflow rates: the producer deposits
/// `produce_count` tokens per firing, the consumer withdraws
/// `consume_count` — multi-rate media graphs (48 kHz audio against 30 fps
/// video, §2.1's "particular temporal relationship") express directly.
class Buffer {
 public:
  Buffer(std::string name, std::size_t capacity, std::size_t produce_count,
         std::size_t consume_count)
      : name_(std::move(name)), capacity_(capacity),
        produce_count_(produce_count), consume_count_(consume_count) {}

  std::size_t produce_count() const { return produce_count_; }
  std::size_t consume_count() const { return consume_count_; }

  bool full() const { return q_.size() >= capacity_; }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  void push(double now, Token t);
  Token pop(double now);

  /// Time-average number of tokens held (the paper's "average length of
  /// these buffers ... reflects their utilization over time").
  const sim::TimeWeightedStats& occupancy() const { return occupancy_; }
  void close_stats(double now) { occupancy_.finish(now); }

 private:
  std::string name_;
  std::size_t capacity_;
  std::size_t produce_count_;
  std::size_t consume_count_;
  std::deque<Token> q_;
  sim::TimeWeightedStats occupancy_;
};

/// Per-node behaviour hooks.
struct NodeSpec {
  std::string name;
  CpuId cpu{};                       // CPU the node is mapped to
  int priority = 0;                  // higher fires first (kFixedPriority)
  /// Service time of one firing, given the (first) input token.
  std::function<double(const Token&)> service_time;
  /// Transforms the consumed input token(s) into the emitted token; defaults
  /// to forwarding the first input.
  std::function<Token(const std::vector<Token>&)> transform;
};

/// Collected per-node statistics.
struct NodeStats {
  std::uint64_t firings = 0;
  double busy_time = 0.0;
  std::uint64_t drops = 0;         // source tokens lost to a full buffer
  double blocked_time = 0.0;       // time spent write-blocked (producer full)
};

/// Process network bound to a Simulator.  Build the graph, then `start()`
/// sources, run the simulator, then `finish()` to close statistics.
class ProcessNetwork {
 public:
  explicit ProcessNetwork(sim::Simulator& sim) : sim_(sim) {}

  CpuId add_cpu(SchedPolicy policy = SchedPolicy::kRoundRobin);
  NodeId add_worker(NodeSpec spec);
  /// Adds a source that injects tokens according to `next_gap` (returning
  /// the time to the next injection) and `make` (building the token).
  NodeId add_source(std::string name,
                    std::function<double()> next_gap,
                    std::function<Token(std::uint64_t)> make);
  /// Adds a sink that swallows tokens and records end-to-end latency.
  NodeId add_sink(std::string name);

  /// Connects two nodes with a bounded FIFO.  SDF rates: the producer
  /// emits `produce` tokens per firing, the consumer needs `consume`
  /// tokens per firing (defaults give plain single-rate semantics).
  EdgeId connect(NodeId from, NodeId to, std::size_t capacity,
                 std::string buffer_name = {}, std::size_t produce = 1,
                 std::size_t consume = 1);

  /// Arms all sources; call before Simulator::run.
  void start();
  /// Closes time-weighted statistics at the current simulation time.
  void finish();

  const Buffer& buffer(EdgeId e) const { return *edges_.at(e.v); }
  const NodeStats& node_stats(NodeId n) const { return nodes_.at(n.v).stats; }
  const std::string& node_name(NodeId n) const { return nodes_.at(n.v).spec.name; }
  /// End-to-end latency stats across all sinks.
  const sim::OnlineStats& latency() const { return latency_; }
  /// Inter-departure jitter at sinks (mean absolute deviation of gaps).
  double mean_jitter() const;
  std::uint64_t tokens_delivered() const { return delivered_; }
  double cpu_utilization(CpuId c, double elapsed) const;

 private:
  enum class Kind { kWorker, kSource, kSink };

  struct Node {
    Kind kind = Kind::kWorker;
    NodeSpec spec;
    std::vector<EdgeId> inputs;
    std::vector<EdgeId> outputs;
    NodeStats stats;
    // Write-blocked state: tokens produced but not yet emitted.
    bool blocked = false;
    double blocked_since = 0.0;
    Token pending_emit;
    // Source state:
    std::function<double()> next_gap;
    std::function<Token(std::uint64_t)> make;
  };

  struct Cpu {
    SchedPolicy policy = SchedPolicy::kRoundRobin;
    bool busy = false;
    double busy_time = 0.0;
    std::size_t rr_next = 0;       // round-robin scan position
    std::vector<std::size_t> nodes;  // workers mapped here
  };

  bool can_fire(const Node& n) const;
  void dispatch(std::size_t cpu_idx);
  void fire(std::size_t node_idx);
  void on_state_change();
  void source_emit(std::size_t node_idx);
  void deliver_to_sink(std::size_t node_idx);

  sim::Simulator& sim_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<Buffer>> edges_;
  std::vector<Cpu> cpus_;
  sim::OnlineStats latency_;
  sim::OnlineStats departure_gap_deviation_;
  double last_departure_ = -1.0;
  double last_gap_ = -1.0;
  std::uint64_t next_token_ = 1;
  std::uint64_t delivered_ = 0;
  bool started_ = false;
};

}  // namespace holms::stream
