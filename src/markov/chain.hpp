#pragma once
// Markov-chain analysis engine (paper §2.2).
//
// "The objective of any analysis technique is the computation of the
//  stationary probability distribution for a distributed system consisting of
//  several processes that operate and interact concurrently."  [7]
//
// HolMS provides discrete-time (DTMC) and continuous-time (CTMC) chains with
// three interchangeable steady-state solvers, so the solver itself can be
// ablated (DESIGN.md §6):
//   - power iteration       robust, O(iters * nnz)
//   - Gauss–Seidel          faster convergence on diagonally dominant systems
//   - direct LU             exact (up to fp), O(n^3), small chains
//
// Once the stationary distribution is known, "different performance measures
// such as throughput, response time, power consumption, etc. can be easily
// derived" — see `expected_reward`.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "exec/error.hpp"

namespace holms::exec {
class ThreadPool;
}  // namespace holms::exec

namespace holms::markov {

/// Dense row-major matrix; small helper sufficient for chain analysis
/// (state spaces here are 10^2..10^4).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

enum class SteadyStateMethod { kPowerIteration, kGaussSeidel, kDirectLU };

/// Matrix representation for the iterative solvers.  kAuto picks CSR when the
/// chain is both large and sparse (see sparse_min_states / sparse_max_density)
/// — the sparse kernels produce bitwise-identical iterates, so this is purely
/// a speed decision.  kDirectLU always runs dense.
enum class SparsityMode { kAuto, kDense, kSparse };

struct SolveOptions {
  SteadyStateMethod method = SteadyStateMethod::kPowerIteration;
  std::size_t max_iterations = 200000;
  double tolerance = 1e-12;  // L1 change per sweep
  SparsityMode sparsity = SparsityMode::kAuto;
  /// kAuto thresholds: go sparse when size >= sparse_min_states AND the
  /// nonzero density is <= sparse_max_density.  Below ~64 states the dense
  /// sweep fits in cache and the CSR indirection isn't worth building.
  std::size_t sparse_min_states = 64;
  double sparse_max_density = 0.25;

  /// Parallel sharding of the CSR kernels (DESIGN.md §5g).  The sharded
  /// fixed-grid kernels engage whenever n >= parallel_min_states AND
  /// nnz >= parallel_min_nnz — *independent of the thread count* — so the
  /// iterate sequence is a function of the problem alone and solves are
  /// bitwise identical across 1/2/4/7/... threads.  `threads` follows the
  /// explorer convention (0 = hardware concurrency, 1 = run the shard loop
  /// inline); `pool` lets callers amortize worker startup across many
  /// solves and overrides `threads` when set (not owned).
  std::size_t threads = 1;
  exec::ThreadPool* pool = nullptr;
  std::size_t parallel_min_states = 1024;
  std::size_t parallel_min_nnz = 4096;

  /// Rejects nonsensical solver settings; called by the steady_state /
  /// transient entry points (contract rule C001, DESIGN.md §5f).
  void validate() const {
    if (max_iterations == 0) {
      throw holms::InvalidArgument("SolveOptions: max_iterations must be >= 1");
    }
    if (!(tolerance > 0.0)) {
      throw holms::InvalidArgument("SolveOptions: tolerance must be > 0");
    }
    if (!(sparse_max_density >= 0.0 && sparse_max_density <= 1.0)) {
      throw holms::InvalidArgument(
          "SolveOptions: sparse_max_density must be in [0, 1]");
    }
  }
};

struct SolveResult {
  std::vector<double> distribution;  // stationary probabilities, sums to 1
  std::size_t iterations = 0;        // 0 for direct methods
  bool converged = false;
  bool used_sparse = false;          // solved via the CSR kernels
};

/// Discrete-time Markov chain over states 0..n-1 with row-stochastic
/// transition matrix P.
class Dtmc {
 public:
  explicit Dtmc(std::size_t n) : p_(n, n) {}

  std::size_t size() const { return p_.rows(); }
  void set(std::size_t from, std::size_t to, double prob);
  double get(std::size_t from, std::size_t to) const { return p_.at(from, to); }

  /// Validates that every row sums to 1 within `tol`.
  bool is_stochastic(double tol = 1e-9) const;

  /// Stationary distribution pi = pi * P.
  SolveResult steady_state(const SolveOptions& opts = {}) const;

  /// n-step transient distribution starting from `initial`.
  std::vector<double> transient(std::span<const double> initial,
                                std::size_t steps) const;

 private:
  Matrix p_;
};

/// Continuous-time Markov chain with generator matrix Q (off-diagonal rates;
/// diagonal maintained automatically as -(row sum)).
class Ctmc {
 public:
  explicit Ctmc(std::size_t n) : q_(n, n) {}

  std::size_t size() const { return q_.rows(); }
  /// Sets the transition rate from -> to (from != to, rate >= 0).
  void set_rate(std::size_t from, std::size_t to, double rate);
  double rate(std::size_t from, std::size_t to) const { return q_.at(from, to); }
  /// Total exit rate of a state.
  double exit_rate(std::size_t s) const;

  /// Stationary distribution solving pi * Q = 0, sum(pi) = 1.
  SolveResult steady_state(const SolveOptions& opts = {}) const;

  /// Transient distribution at time t via uniformization.
  std::vector<double> transient(std::span<const double> initial, double t,
                                double truncation_eps = 1e-10) const;

  /// Embeds the CTMC into the uniformized DTMC P = I + Q/Lambda.
  Dtmc uniformized(double* lambda_out = nullptr) const;

 private:
  Matrix q_;
};

/// Expected reward sum_i pi_i * reward(i): the paper's bridge from the
/// stationary distribution to throughput / response time / power.
double expected_reward(std::span<const double> pi,
                       const std::function<double(std::size_t)>& reward);

/// Absorbing-chain analysis (fundamental-matrix method): expected steps to
/// absorption and per-absorbing-state hit probabilities.  This is the
/// analytical counterpart of lifetime/failure questions ("how long until a
/// battery dies / a deadline is missed") asked throughout §4-§5.
struct AbsorbingResult {
  /// Expected number of steps to absorption from each state (0 for
  /// absorbing states themselves).
  std::vector<double> expected_steps;
  /// absorption_probability.at(s, k): probability that, starting from s,
  /// the chain is absorbed in absorbing_states[k].
  Matrix absorption_probability;
  std::vector<std::size_t> absorbing_states;
};

/// `absorbing[i]` marks state i as absorbing (its rows in P are ignored and
/// treated as self-loops).  Throws if no state is absorbing or if some
/// transient state cannot reach absorption.
AbsorbingResult absorbing_analysis(const Dtmc& chain,
                                   const std::vector<bool>& absorbing);

}  // namespace holms::markov
