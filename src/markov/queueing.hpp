#pragma once
// Closed-form and chain-based queueing models (paper §2.1/§2.2).
//
// The Producer–Consumer paradigm with finite buffers is the paper's central
// modeling abstraction: "This communication process happens through dedicated
// buffers that behave like finite-length queues."  These models provide the
// analytical counterpart of the DES stream models in holms::stream, used in
// experiment E2 (analysis vs simulation accuracy/runtime).

#include <cstddef>
#include <span>
#include <vector>

#include "markov/chain.hpp"

namespace holms::markov {

/// Standard steady-state metrics of a queueing station.
struct QueueMetrics {
  double utilization = 0.0;       // fraction of time the server is busy
  double mean_queue_length = 0.0; // jobs in system (L)
  double mean_waiting_time = 0.0; // time in system (W = L / lambda_eff)
  double throughput = 0.0;        // accepted jobs per unit time
  double blocking_probability = 0.0;  // P(arrival finds system full)
};

/// M/M/1: Poisson arrivals (lambda), exponential service (mu), infinite
/// buffer.  Requires lambda < mu.
QueueMetrics mm1(double lambda, double mu);

/// M/M/1/K: finite buffer holding K jobs including the one in service.
/// Stable for any load; arrivals finding the system full are lost — the
/// paper's lossy Rx-buffer abstraction.
QueueMetrics mm1k(double lambda, double mu, std::size_t k);

/// Full stationary distribution of the M/M/1/K occupancy (size K+1).
std::vector<double> mm1k_distribution(double lambda, double mu, std::size_t k);

/// M/D/1 (deterministic service) via the Pollaczek–Khinchine formula:
/// the model for fixed-size packet transmission over a link.
QueueMetrics md1(double lambda, double service_time);

/// General birth–death chain on states 0..n-1 with per-state birth/death
/// rates; returns the stationary distribution.  `birth[i]` is the rate
/// i -> i+1 (birth[n-1] ignored), `death[i]` the rate i -> i-1 (death[0]
/// ignored).
std::vector<double> birth_death_steady_state(std::span<const double> birth,
                                             std::span<const double> death);

/// Two-stage producer–consumer pipeline with a finite buffer in between
/// (e.g. VLD -> B3 -> IDCT in Fig.1(b)).  Producer blocks when the buffer is
/// full; consumer idles when empty.  Exponential stage times.
struct ProducerConsumerModel {
  double producer_rate = 1.0;  // items/s produced when not blocked
  double consumer_rate = 1.0;  // items/s consumed when buffer non-empty
  std::size_t buffer_capacity = 1;

  /// Builds the occupancy CTMC (states = items in buffer, 0..capacity).
  Ctmc to_ctmc() const;

  struct Result {
    std::vector<double> occupancy_distribution;
    double mean_occupancy = 0.0;
    double throughput = 0.0;        // items/s through the consumer
    double producer_blocked = 0.0;  // fraction of time producer is blocked
    double consumer_idle = 0.0;     // fraction of time consumer is starved
  };
  Result analyze(const SolveOptions& opts = {}) const;
};

}  // namespace holms::markov
