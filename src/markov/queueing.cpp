#include "markov/queueing.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::markov {

QueueMetrics mm1(double lambda, double mu) {
  if (!(lambda >= 0.0) || !(mu > 0.0)) {
    throw holms::InvalidArgument("mm1: need lambda >= 0, mu > 0");
  }
  if (lambda >= mu) throw holms::InvalidArgument("mm1: unstable (rho >= 1)");
  const double rho = lambda / mu;
  QueueMetrics m;
  m.utilization = rho;
  m.mean_queue_length = rho / (1.0 - rho);
  m.mean_waiting_time = lambda > 0.0 ? m.mean_queue_length / lambda : 1.0 / mu;
  m.throughput = lambda;
  m.blocking_probability = 0.0;
  return m;
}

std::vector<double> mm1k_distribution(double lambda, double mu,
                                      std::size_t k) {
  if (!(lambda >= 0.0) || !(mu > 0.0) || k == 0) {
    throw holms::InvalidArgument("mm1k: need lambda >= 0, mu > 0, k >= 1");
  }
  const double rho = lambda / mu;
  std::vector<double> pi(k + 1);
  if (std::abs(rho - 1.0) < 1e-12) {
    const double p = 1.0 / static_cast<double>(k + 1);
    for (double& x : pi) x = p;
    return pi;
  }
  const double p0 =
      (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(k + 1)));
  double acc = p0;
  pi[0] = p0;
  for (std::size_t n = 1; n <= k; ++n) {
    acc *= rho;
    pi[n] = acc;
  }
  return pi;
}

QueueMetrics mm1k(double lambda, double mu, std::size_t k) {
  const std::vector<double> pi = mm1k_distribution(lambda, mu, k);
  QueueMetrics m;
  m.blocking_probability = pi.back();
  m.utilization = 1.0 - pi.front();
  for (std::size_t n = 0; n < pi.size(); ++n)
    m.mean_queue_length += static_cast<double>(n) * pi[n];
  const double lambda_eff = lambda * (1.0 - m.blocking_probability);
  m.throughput = lambda_eff;
  m.mean_waiting_time =
      lambda_eff > 0.0 ? m.mean_queue_length / lambda_eff : 0.0;
  return m;
}

QueueMetrics md1(double lambda, double service_time) {
  if (!(lambda >= 0.0) || !(service_time > 0.0)) {
    throw holms::InvalidArgument("md1: need lambda >= 0, service_time > 0");
  }
  const double rho = lambda * service_time;
  if (rho >= 1.0) throw holms::InvalidArgument("md1: unstable (rho >= 1)");
  QueueMetrics m;
  m.utilization = rho;
  // Pollaczek–Khinchine for M/G/1 with Var(S) = 0:
  // Lq = rho^2 / (2 (1 - rho)); L = Lq + rho.
  m.mean_queue_length = rho + rho * rho / (2.0 * (1.0 - rho));
  m.mean_waiting_time = lambda > 0.0 ? m.mean_queue_length / lambda
                                     : service_time;
  m.throughput = lambda;
  return m;
}

std::vector<double> birth_death_steady_state(std::span<const double> birth,
                                             std::span<const double> death) {
  const std::size_t n = birth.size();
  if (n == 0 || death.size() != n) {
    throw holms::InvalidArgument("birth_death: need equal non-empty vectors");
  }
  // pi_{i+1} = pi_i * birth_i / death_{i+1}; accumulate in log-free form with
  // running normalization to avoid overflow on long chains.
  std::vector<double> pi(n, 0.0);
  pi[0] = 1.0;
  double sum = 1.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!(death[i + 1] > 0.0)) {
      throw holms::InvalidArgument("birth_death: death rate must be > 0");
    }
    pi[i + 1] = pi[i] * birth[i] / death[i + 1];
    // HOLMS_LINT_ALLOW(D006): birth-death recurrence normalizer; term i depends on term i-1
    sum += pi[i + 1];
  }
  for (double& x : pi) x /= sum;
  return pi;
}

Ctmc ProducerConsumerModel::to_ctmc() const {
  assert(buffer_capacity >= 1);
  const std::size_t n = buffer_capacity + 1;
  Ctmc c(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (s < buffer_capacity) c.set_rate(s, s + 1, producer_rate);
    if (s > 0) c.set_rate(s, s - 1, consumer_rate);
  }
  return c;
}

ProducerConsumerModel::Result ProducerConsumerModel::analyze(
    const SolveOptions& opts) const {
  const SolveResult ss = to_ctmc().steady_state(opts);
  Result r;
  r.occupancy_distribution = ss.distribution;
  for (std::size_t s = 0; s < r.occupancy_distribution.size(); ++s)
    r.mean_occupancy +=
        static_cast<double>(s) * r.occupancy_distribution[s];
  r.producer_blocked = r.occupancy_distribution.back();
  r.consumer_idle = r.occupancy_distribution.front();
  r.throughput = consumer_rate * (1.0 - r.consumer_idle);
  return r;
}

}  // namespace holms::markov
