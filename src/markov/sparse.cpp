#include "markov/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "exec/error.hpp"
#include "exec/metrics.hpp"
#include "exec/thread_pool.hpp"

namespace holms::markov {
namespace {

// Same helpers as chain.cpp's (kept file-local there); duplicated rather than
// exported so the dense translation unit keeps zero extra surface.
void normalize(std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum <= 0.0) throw holms::RuntimeError("distribution has zero mass");
  for (double& x : v) x /= sum;
}

double l1_delta(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

// Fixed shard grid for the parallel kernels (DESIGN.md §5g): always 256
// columns per shard, *independent of the thread count*, so the work
// decomposition — and therefore every floating-point accumulation order —
// is a function of the problem size alone.  Workers claim whole shards from
// the pool's atomic index counter and write only their own output columns.
constexpr std::size_t kShardCols = 256;

std::size_t shard_count(std::size_t n) {
  return (n + kShardCols - 1) / kShardCols;
}

// Resolves the pool to run a sharded solve on: the caller's external pool if
// set, else a solve-local pool when `opts.threads` asks for more than one
// thread, else null (parallel_for_each runs the shard loop inline).
exec::ThreadPool* resolve_pool(const SolveOptions& opts,
                               std::unique_ptr<exec::ThreadPool>& owned) {
  if (opts.pool != nullptr) return opts.pool;
  const std::size_t t = exec::resolve_threads(opts.threads);
  if (t <= 1) return nullptr;
  owned = std::make_unique<exec::ThreadPool>(t);
  return owned.get();
}

}  // namespace

CsrMatrix CsrMatrix::from_dense(const Matrix& a) {
  CsrMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.offsets_.reserve(m.rows_ + 1);
  m.offsets_.push_back(0);
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < m.rows_; ++r)
    for (std::size_t c = 0; c < m.cols_; ++c)
      if (a.at(r, c) != 0.0) ++nnz;
  m.cols_idx_.reserve(nnz);
  m.vals_.reserve(nnz);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const double v = a.at(r, c);
      if (v == 0.0) continue;
      m.cols_idx_.push_back(static_cast<std::uint32_t>(c));
      m.vals_.push_back(v);
    }
    m.offsets_.push_back(m.vals_.size());
  }
  return m;
}

double CsrMatrix::density() const {
  const double cells = static_cast<double>(rows_) * static_cast<double>(cols_);
  return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  // Counting sort by column: offsets first, then stable placement.  Scanning
  // source rows in order makes each transposed row's entries arrive in
  // increasing (source-row = transposed-column) order.
  t.offsets_.assign(cols_ + 1, 0);
  for (const std::uint32_t c : cols_idx_) ++t.offsets_[c + 1];
  for (std::size_t i = 0; i < cols_; ++i) t.offsets_[i + 1] += t.offsets_[i];
  t.cols_idx_.resize(nnz());
  t.vals_.resize(nnz());
  std::vector<std::size_t> fill(t.offsets_.begin(), t.offsets_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::size_t slot = fill[cols[i]]++;
      t.cols_idx_[slot] = static_cast<std::uint32_t>(r);
      t.vals_[slot] = vals[i];
    }
  }
  return t;
}

SolveResult sparse_power_iteration(const CsrMatrix& p,
                                   const SolveOptions& opts) {
  const std::size_t n = p.rows();
  SolveResult res;
  res.used_sparse = true;
  if (n == 0) return res;
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  if (!sharded_solve_engaged(n, p.nnz(), opts)) {
    // Legacy serial scatter: next += pi[r] * P[r, :] row by row.
    for (std::size_t it = 0; it < opts.max_iterations; ++it) {
      std::fill(next.begin(), next.end(), 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        const double pr = pi[r];
        if (pr == 0.0) continue;
        const auto cols = p.row_cols(r);
        const auto vals = p.row_vals(r);
        for (std::size_t i = 0; i < cols.size(); ++i) {
          next[cols[i]] += pr * vals[i];
        }
      }
      const double delta = l1_delta(pi, next);
      pi.swap(next);
      res.iterations = it + 1;
      if (delta < opts.tolerance) {
        res.converged = true;
        break;
      }
    }
    normalize(pi);
    res.distribution = std::move(pi);
    return res;
  }

  // Sharded gather form: next[c] = sum_r pi[r] * P[r, c], computed from the
  // transpose.  Each transposed row stores column c's contributions in
  // ascending source-row order (transposed() preserves the scan order), which
  // is exactly the order the serial scatter adds them to next[c] — so every
  // per-column sum, and hence the whole iterate sequence, is bitwise
  // identical to the scatter loop above no matter how shards are assigned to
  // workers.  The ISSUE's "per-shard partials merged in fixed order" collapse
  // here to per-column sums whose order never depended on sharding at all.
  const CsrMatrix pt = p.transposed();
  std::unique_ptr<exec::ThreadPool> owned;
  exec::ThreadPool* pool = resolve_pool(opts, owned);
  const std::size_t shards = shard_count(n);
  exec::count("markov.sharded_solves");
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    exec::parallel_for_each(pool, shards, [&](std::size_t s) {
      const std::size_t lo = s * kShardCols;
      const std::size_t hi = std::min(n, lo + kShardCols);
      for (std::size_t c = lo; c < hi; ++c) {
        double acc = 0.0;
        const auto rows = pt.row_cols(c);  // source rows with p(r, c) != 0
        const auto vals = pt.row_vals(c);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          const double pr = pi[rows[i]];
          if (pr == 0.0) continue;  // mirrors the scatter loop's row skip
          acc += pr * vals[i];
        }
        next[c] = acc;
      }
    });
    const double delta = l1_delta(pi, next);  // serial, fixed order
    pi.swap(next);
    res.iterations = it + 1;
    if (delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  normalize(pi);
  res.distribution = std::move(pi);
  return res;
}

SolveResult sparse_gauss_seidel(const CsrMatrix& p, const SolveOptions& opts) {
  const std::size_t n = p.rows();
  SolveResult res;
  res.used_sparse = true;
  if (n == 0) return res;
  // Column sweeps need column access: work on the transpose, with the
  // diagonal split out (the dense loop skips r == c and divides by 1 - p_cc).
  const CsrMatrix pt = p.transposed();
  std::vector<double> diag(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto cols = p.row_cols(r);
    const auto vals = p.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == r) diag[r] = vals[i];
    }
  }
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  if (!sharded_solve_engaged(n, p.nnz(), opts)) {
    // Legacy serial sweep: bitwise identical to the dense Gauss–Seidel.
    for (std::size_t it = 0; it < opts.max_iterations; ++it) {
      next = pi;
      for (std::size_t c = 0; c < n; ++c) {
        double acc = 0.0;
        const auto rows = pt.row_cols(c);  // source rows with p(r, c) != 0
        const auto vals = pt.row_vals(c);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] == c) continue;
          acc += next[rows[i]] * vals[i];
        }
        const double self = diag[c];
        next[c] = self < 1.0 ? acc / (1.0 - self) : acc;
      }
      normalize(next);
      const double delta = l1_delta(pi, next);
      pi.swap(next);
      res.iterations = it + 1;
      if (delta < opts.tolerance) {
        res.converged = true;
        break;
      }
    }
    normalize(pi);
    res.distribution = std::move(pi);
    return res;
  }

  // Block-hybrid sweep (DESIGN.md §5g): Gauss–Seidel within each fixed
  // 256-column shard, Jacobi across shards.  `next` starts as a copy of pi,
  // each shard updates only its own columns in ascending order, and a column
  // reads `next` for in-shard sources (already-updated values below it,
  // prior-sweep values above — exactly serial GS restricted to the shard)
  // and the prior-sweep `pi` for out-of-shard sources.  No shard ever reads
  // another shard's output, so the sweep is race-free and its result depends
  // only on the fixed grid — bitwise invariant to thread count, though a
  // *different* (still convergent) iterate sequence than full serial GS,
  // which is why engagement is gated on size floors rather than on threads.
  std::unique_ptr<exec::ThreadPool> owned;
  exec::ThreadPool* pool = resolve_pool(opts, owned);
  const std::size_t shards = shard_count(n);
  exec::count("markov.sharded_solves");
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    next = pi;
    exec::parallel_for_each(pool, shards, [&](std::size_t s) {
      const std::size_t lo = s * kShardCols;
      const std::size_t hi = std::min(n, lo + kShardCols);
      for (std::size_t c = lo; c < hi; ++c) {
        double acc = 0.0;
        const auto rows = pt.row_cols(c);
        const auto vals = pt.row_vals(c);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          const std::size_t r = rows[i];
          if (r == c) continue;
          const double src = (r >= lo && r < hi) ? next[r] : pi[r];
          acc += src * vals[i];
        }
        const double self = diag[c];
        next[c] = self < 1.0 ? acc / (1.0 - self) : acc;
      }
    });
    normalize(next);  // serial, fixed order
    const double delta = l1_delta(pi, next);
    pi.swap(next);
    res.iterations = it + 1;
    if (delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  normalize(pi);
  res.distribution = std::move(pi);
  return res;
}

}  // namespace holms::markov
