#include "markov/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "exec/error.hpp"
#include "exec/metrics.hpp"
#include "exec/simd.hpp"
#include "exec/thread_pool.hpp"

namespace holms::markov {
namespace {

// Both helpers run on the exec::simd kernels, so every solver reduction in
// this TU follows the canonical 8-lane order (exec/simd.hpp) no matter which
// ISA executes it.
void normalize(std::vector<double>& v) {
  const auto& k = exec::simd::kernels();
  const double sum = k.sum(v.data(), v.size());
  if (sum <= 0.0) throw holms::RuntimeError("distribution has zero mass");
  k.div_all(v.data(), v.size(), sum);
}

double l1_delta(std::span<const double> a, std::span<const double> b) {
  return exec::simd::kernels().sum_abs_diff(a.data(), b.data(), a.size());
}

// Fixed shard grid for the parallel kernels (DESIGN.md §5g): always 256
// columns per shard, *independent of the thread count*, so the work
// decomposition — and therefore every floating-point accumulation order —
// is a function of the problem size alone.  Workers claim whole shards from
// the pool's atomic index counter and write only their own output columns.
constexpr std::size_t kShardCols = 256;

std::size_t shard_count(std::size_t n) {
  return (n + kShardCols - 1) / kShardCols;
}

// Resolves the pool to run a sharded solve on: the caller's external pool if
// set, else a solve-local pool when `opts.threads` asks for more than one
// thread, else null (parallel_for_each runs the shard loop inline).
exec::ThreadPool* resolve_pool(const SolveOptions& opts,
                               std::unique_ptr<exec::ThreadPool>& owned) {
  if (opts.pool != nullptr) return opts.pool;
  const std::size_t t = exec::resolve_threads(opts.threads);
  if (t <= 1) return nullptr;
  owned = std::make_unique<exec::ThreadPool>(t);
  return owned.get();
}

}  // namespace

CsrMatrix CsrMatrix::from_dense(const Matrix& a) {
  CsrMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.offsets_.reserve(m.rows_ + 1);
  m.offsets_.push_back(0);
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < m.rows_; ++r)
    for (std::size_t c = 0; c < m.cols_; ++c)
      if (a.at(r, c) != 0.0) ++nnz;
  m.cols_idx_.reserve(nnz);
  m.vals_.reserve(nnz);
  for (std::size_t r = 0; r < m.rows_; ++r) {
    for (std::size_t c = 0; c < m.cols_; ++c) {
      const double v = a.at(r, c);
      if (v == 0.0) continue;
      m.cols_idx_.push_back(static_cast<std::uint32_t>(c));
      m.vals_.push_back(v);
    }
    m.offsets_.push_back(m.vals_.size());
  }
  return m;
}

double CsrMatrix::density() const {
  const double cells = static_cast<double>(rows_) * static_cast<double>(cols_);
  return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  // Counting sort by column: offsets first, then stable placement.  Scanning
  // source rows in order makes each transposed row's entries arrive in
  // increasing (source-row = transposed-column) order — the strictly
  // ascending source order the simd kernels' gather run-detection relies on.
  t.offsets_.assign(cols_ + 1, 0);
  for (const std::uint32_t c : cols_idx_) ++t.offsets_[c + 1];
  for (std::size_t i = 0; i < cols_; ++i) t.offsets_[i + 1] += t.offsets_[i];
  t.cols_idx_.resize(nnz());
  t.vals_.resize(nnz());
  std::vector<std::size_t> fill(t.offsets_.begin(), t.offsets_.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::size_t slot = fill[cols[i]]++;
      t.cols_idx_[slot] = static_cast<std::uint32_t>(r);
      t.vals_[slot] = vals[i];
    }
  }
  return t;
}

SolveResult sparse_power_iteration(const CsrMatrix& p,
                                   const SolveOptions& opts) {
  const std::size_t n = p.rows();
  SolveResult res;
  res.used_sparse = true;
  if (n == 0) return res;
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  // Gather form on the transpose: next[c] = sum_r pi[r] * P[r, c], one
  // exec::simd 8-lane reduction per column in ascending source-row order.
  // Serial and sharded execution run the identical per-column kernel — a
  // shard is just a [lo, hi) column range and no shard reads another's
  // output — so the iterate sequence is a function of the problem alone:
  // bitwise invariant to the thread count, the shard grid, and the ISA.
  const auto& k = exec::simd::kernels();
  const CsrMatrix pt = p.transposed();
  const bool sharded = sharded_solve_engaged(n, p.nnz(), opts);
  std::unique_ptr<exec::ThreadPool> owned;
  exec::ThreadPool* pool = sharded ? resolve_pool(opts, owned) : nullptr;
  const std::size_t shards = shard_count(n);
  if (sharded) exec::count("markov.sharded_solves");
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (sharded) {
      exec::parallel_for_each(pool, shards, [&](std::size_t s) {
        const std::size_t lo = s * kShardCols;
        const std::size_t hi = std::min(n, lo + kShardCols);
        k.spmv_cols(pt.offsets_data(), pt.cols_data(), pt.vals_data(),
                    pi.data(), next.data(), lo, hi);
      });
    } else {
      k.spmv_cols(pt.offsets_data(), pt.cols_data(), pt.vals_data(), pi.data(),
                  next.data(), 0, n);
    }
    const double delta = l1_delta(pi, next);  // serial, fixed order
    pi.swap(next);
    res.iterations = it + 1;
    if (delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  normalize(pi);
  res.distribution = std::move(pi);
  return res;
}

SolveResult sparse_gauss_seidel(const CsrMatrix& p, const SolveOptions& opts) {
  const std::size_t n = p.rows();
  SolveResult res;
  res.used_sparse = true;
  if (n == 0) return res;
  // Column sweeps need column access: work on the transpose, with the
  // diagonal split out (the sweep skips r == c and divides by 1 - p_cc).
  const CsrMatrix pt = p.transposed();
  exec::aligned_vector<double> diag(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto cols = p.row_cols(r);
    const auto vals = p.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == r) diag[r] = vals[i];
    }
  }
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  // Block-hybrid sweep (DESIGN.md §5g): Gauss–Seidel within each fixed
  // 256-column shard, Jacobi across shards.  `next` starts as a copy of pi,
  // each shard updates only its own columns in ascending order, and a column
  // reads `next` for in-shard sources (already-updated values below it,
  // prior-sweep values above — exactly serial GS restricted to the shard)
  // and the prior-sweep `pi` for out-of-shard sources.  No shard ever reads
  // another shard's output, so the sweep is race-free and its result depends
  // only on the fixed grid — bitwise invariant to thread count.  Below the
  // engagement floors the sweep is ONE full-range gs_cols call, where the
  // out-of-shard segments are empty and the kernel reduces to serial GS —
  // a *different* (still convergent) iterate sequence than the hybrid,
  // which is why engagement is gated on size floors rather than on threads.
  const auto& k = exec::simd::kernels();
  const bool sharded = sharded_solve_engaged(n, p.nnz(), opts);
  std::unique_ptr<exec::ThreadPool> owned;
  exec::ThreadPool* pool = sharded ? resolve_pool(opts, owned) : nullptr;
  const std::size_t shards = shard_count(n);
  if (sharded) exec::count("markov.sharded_solves");
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    next = pi;
    if (sharded) {
      exec::parallel_for_each(pool, shards, [&](std::size_t s) {
        const std::size_t lo = s * kShardCols;
        const std::size_t hi = std::min(n, lo + kShardCols);
        k.gs_cols(pt.offsets_data(), pt.cols_data(), pt.vals_data(),
                  diag.data(), pi.data(), next.data(), lo, hi);
      });
    } else {
      k.gs_cols(pt.offsets_data(), pt.cols_data(), pt.vals_data(), diag.data(),
                pi.data(), next.data(), 0, n);
    }
    normalize(next);  // serial, fixed order
    const double delta = l1_delta(pi, next);
    pi.swap(next);
    res.iterations = it + 1;
    if (delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  normalize(pi);
  res.distribution = std::move(pi);
  return res;
}

}  // namespace holms::markov
