#include "markov/jackson.hpp"

#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::markov {

JacksonNetwork::JacksonNetwork(std::vector<JacksonStation> stations)
    : stations_(std::move(stations)),
      routing_(stations_.size(), stations_.size()) {
  if (stations_.empty()) {
    throw holms::InvalidArgument("JacksonNetwork: need >= 1 station");
  }
  for (const auto& s : stations_) {
    if (!(s.service_rate > 0.0) || s.external_arrivals < 0.0) {
      throw holms::InvalidArgument("JacksonNetwork: invalid station");
    }
  }
}

void JacksonNetwork::set_routing(std::size_t from, std::size_t to,
                                 double prob) {
  if (from >= size() || to >= size() || !(prob >= 0.0 && prob <= 1.0)) {
    throw holms::InvalidArgument("JacksonNetwork::set_routing: bad args");
  }
  routing_.at(from, to) = prob;
}

double JacksonNetwork::routing(std::size_t from, std::size_t to) const {
  return routing_.at(from, to);
}

JacksonSolution JacksonNetwork::solve() const {
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += routing_.at(i, j);
    if (row > 1.0 + 1e-12) {
      throw holms::InvalidArgument(
          "JacksonNetwork: routing row exceeds probability 1");
    }
  }

  // Traffic equations: lambda (I - R^T) = lambda0  (solved by fixed-point
  // iteration; the spectral radius of a substochastic R is < 1 whenever
  // every job eventually leaves, so this converges geometrically).
  JacksonSolution sol;
  std::vector<double> lambda(n);
  for (std::size_t i = 0; i < n; ++i) {
    lambda[i] = stations_[i].external_arrivals;
  }
  std::vector<double> next(n, 0.0);
  double delta = 1.0;
  for (int iter = 0; iter < 100000 && delta > 1e-14; ++iter) {
    for (std::size_t j = 0; j < n; ++j) {
      next[j] = stations_[j].external_arrivals;
      for (std::size_t i = 0; i < n; ++i) {
        next[j] += lambda[i] * routing_.at(i, j);
      }
    }
    delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // HOLMS_LINT_ALLOW(D006): L1 convergence check over a handful of stations in index order
      delta += std::abs(next[j] - lambda[j]);
    }
    lambda.swap(next);
    if (iter == 99999) {
      throw holms::RuntimeError(
          "JacksonNetwork: traffic equations did not converge "
          "(jobs trapped in a closed cycle?)");
    }
  }
  sol.effective_arrival_rate = lambda;

  double external = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // HOLMS_LINT_ALLOW(D006): external-arrival sum over stations in index order; cold
    external += stations_[i].external_arrivals;
    if (lambda[i] >= stations_[i].service_rate) {
      sol.stable = false;
      sol.station.push_back(QueueMetrics{});
      continue;
    }
    QueueMetrics m = lambda[i] > 0.0
                         ? mm1(lambda[i], stations_[i].service_rate)
                         : QueueMetrics{};
    sol.total_jobs += m.mean_queue_length;
    sol.station.push_back(m);
  }
  sol.throughput = external;
  sol.mean_sojourn_time =
      sol.stable && external > 0.0 ? sol.total_jobs / external : 0.0;
  return sol;
}

JacksonNetwork tandem_network(const std::vector<double>& service_rates,
                              double arrival_rate) {
  std::vector<JacksonStation> stations;
  stations.reserve(service_rates.size());
  for (std::size_t i = 0; i < service_rates.size(); ++i) {
    JacksonStation s;
    s.service_rate = service_rates[i];
    s.external_arrivals = i == 0 ? arrival_rate : 0.0;
    stations.push_back(s);
  }
  JacksonNetwork net(std::move(stations));
  for (std::size_t i = 0; i + 1 < service_rates.size(); ++i) {
    net.set_routing(i, i + 1, 1.0);
  }
  return net;
}

}  // namespace holms::markov
