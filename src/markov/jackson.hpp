#pragma once
// Open Jackson queueing networks (paper §2.2).
//
// "The objective of any analysis technique is the computation of the
//  stationary probability distribution for a distributed system consisting
//  of several processes that operate and interact concurrently." [7]
//
// A Jackson network is the canonical tractable instance: M stations with
// exponential service, external Poisson arrivals, and probabilistic routing.
// The product-form result reduces the network to per-station M/M/1 queues at
// the effective arrival rates solved from the traffic equations — the
// "several communicating processes" case the producer-consumer chain cannot
// express.

#include <cstddef>
#include <vector>

#include "markov/queueing.hpp"

namespace holms::markov {

/// One service station of the network.
struct JacksonStation {
  double service_rate = 1.0;       // mu (jobs/s)
  double external_arrivals = 0.0;  // lambda_0 (jobs/s from outside)
};

/// Network-level solution.
struct JacksonSolution {
  std::vector<double> effective_arrival_rate;  // lambda_i from traffic eqs
  std::vector<QueueMetrics> station;           // per-station M/M/1 metrics
  double total_jobs = 0.0;                     // sum of L_i
  double mean_sojourn_time = 0.0;              // Little: N / sum(lambda_0)
  double throughput = 0.0;                     // total external arrival rate
  bool stable = true;                          // every rho_i < 1
};

/// An open Jackson network: stations plus a routing matrix.  routing[i][j]
/// is the probability a job leaving i goes to j; the remainder
/// (1 - sum_j routing[i][j]) leaves the network.
class JacksonNetwork {
 public:
  explicit JacksonNetwork(std::vector<JacksonStation> stations);

  std::size_t size() const { return stations_.size(); }

  /// Sets the routing probability from station i to station j.
  void set_routing(std::size_t from, std::size_t to, double prob);
  double routing(std::size_t from, std::size_t to) const;

  /// Solves the traffic equations lambda = lambda0 + lambda * R and the
  /// per-station product-form metrics.  Throws on invalid routing (row sums
  /// above 1) or a singular system (jobs trapped forever).
  JacksonSolution solve() const;

 private:
  std::vector<JacksonStation> stations_;
  Matrix routing_;
};

/// Convenience: a tandem line of stations (stream pipeline), jobs enter at
/// the first station and traverse every station in order.
JacksonNetwork tandem_network(const std::vector<double>& service_rates,
                              double arrival_rate);

}  // namespace holms::markov
