#include "markov/chain.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "markov/sparse.hpp"

#include "exec/error.hpp"

namespace holms::markov {
namespace {

void normalize(std::vector<double>& v) {
  double sum = 0.0;
  // HOLMS_LINT_ALLOW(D006): direct-solver/CTMC normalize over the state vector in index order; iterative paths reduce through exec::simd
  for (double x : v) sum += x;
  if (sum <= 0.0) throw holms::RuntimeError("distribution has zero mass");
  for (double& x : v) x /= sum;
}

// Solves pi * A = 0 with sum(pi) = 1 by replacing the last column with the
// normalization constraint and doing Gaussian elimination with partial
// pivoting on the transposed system A^T x = e_n.
std::vector<double> solve_direct(const Matrix& a) {
  const std::size_t n = a.rows();
  // Build M = A^T with last row replaced by ones; rhs = e_{n-1}.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m.at(i, j) = a.at(j, i);
  for (std::size_t j = 0; j < n; ++j) m.at(n - 1, j) = 1.0;
  std::vector<double> rhs(n, 0.0);
  rhs[n - 1] = 1.0;

  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(m.at(perm[col], col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(m.at(perm[r], col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) throw holms::RuntimeError("singular chain matrix");
    std::swap(perm[col], perm[pivot]);
    const double diag = m.at(perm[col], col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = m.at(perm[r], col) / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c)
        m.at(perm[r], c) -= factor * m.at(perm[col], c);
      rhs[perm[r]] -= factor * rhs[perm[col]];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = rhs[perm[i]];
    for (std::size_t c = i + 1; c < n; ++c) acc -= m.at(perm[i], c) * x[c];
    x[i] = acc / m.at(perm[i], i);
  }
  // Clamp tiny negatives from roundoff.
  for (double& v : x) v = std::max(v, 0.0);
  normalize(x);
  return x;
}

}  // namespace

void Dtmc::set(std::size_t from, std::size_t to, double prob) {
  assert(prob >= 0.0 && prob <= 1.0 + 1e-12);
  p_.at(from, to) = prob;
}

bool Dtmc::is_stochastic(double tol) const {
  for (std::size_t r = 0; r < size(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < size(); ++c) {
      if (p_.at(r, c) < -tol) return false;
      sum += p_.at(r, c);
    }
    if (std::abs(sum - 1.0) > tol) return false;
  }
  return true;
}

SolveResult Dtmc::steady_state(const SolveOptions& opts) const {
  opts.validate();
  const std::size_t n = size();
  if (n == 0) return {};
  SolveResult res;

  if (opts.method == SteadyStateMethod::kDirectLU) {
    // pi (P - I) = 0.
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        a.at(r, c) = p_.at(r, c) - (r == c ? 1.0 : 0.0);
    res.distribution = solve_direct(a);
    res.converged = true;
    return res;
  }

  // Representation choice.  Since the exec::simd port both representations
  // execute the SAME CSR kernels (the dense O(n^2) sweeps are gone), so
  // kDense and kSparse are bitwise identical by construction; the heuristic
  // below only decides what `used_sparse` reports — kept so callers and
  // tests can still observe which representation the auto mode would pick.
  bool use_sparse = opts.sparsity == SparsityMode::kSparse;
  if (opts.sparsity == SparsityMode::kAuto && n >= opts.sparse_min_states) {
    std::size_t nnz = 0;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        if (p_.at(r, c) != 0.0) ++nnz;
    use_sparse = static_cast<double>(nnz) <=
                 opts.sparse_max_density * static_cast<double>(n) *
                     static_cast<double>(n);
  }
  const CsrMatrix p = CsrMatrix::from_dense(p_);
  res = opts.method == SteadyStateMethod::kPowerIteration
            ? sparse_power_iteration(p, opts)
            : sparse_gauss_seidel(p, opts);
  res.used_sparse = use_sparse;
  return res;
}

std::vector<double> Dtmc::transient(std::span<const double> initial,
                                    std::size_t steps) const {
  const std::size_t n = size();
  assert(initial.size() == n);
  std::vector<double> pi(initial.begin(), initial.end());
  std::vector<double> next(n, 0.0);
  for (std::size_t s = 0; s < steps; ++s) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      const double pr = pi[r];
      if (pr == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) next[c] += pr * p_.at(r, c);
    }
    pi.swap(next);
  }
  return pi;
}

void Ctmc::set_rate(std::size_t from, std::size_t to, double rate) {
  assert(from != to && "diagonal is derived, set only off-diagonal rates");
  assert(rate >= 0.0);
  q_.at(from, to) = rate;
}

double Ctmc::exit_rate(std::size_t s) const {
  double sum = 0.0;
  for (std::size_t c = 0; c < size(); ++c)
    if (c != s) sum += q_.at(s, c);
  return sum;
}

Dtmc Ctmc::uniformized(double* lambda_out) const {
  const std::size_t n = size();
  double lambda = 0.0;
  for (std::size_t s = 0; s < n; ++s) lambda = std::max(lambda, exit_rate(s));
  // Slightly inflate so diagonal entries stay strictly positive, which makes
  // the uniformized chain aperiodic.
  lambda = lambda * 1.02 + 1e-12;
  if (lambda_out) *lambda_out = lambda;
  Dtmc d(n);
  for (std::size_t r = 0; r < n; ++r) {
    double off = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (c == r) continue;
      const double p = q_.at(r, c) / lambda;
      d.set(r, c, p);
      off += p;
    }
    d.set(r, r, 1.0 - off);
  }
  return d;
}

SolveResult Ctmc::steady_state(const SolveOptions& opts) const {
  opts.validate();
  if (opts.method == SteadyStateMethod::kDirectLU) {
    const std::size_t n = size();
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c)
        if (c != r) a.at(r, c) = q_.at(r, c);
      a.at(r, r) = -exit_rate(r);
    }
    SolveResult res;
    res.distribution = solve_direct(a);
    res.converged = true;
    return res;
  }
  // Iterative methods work on the uniformized DTMC, which shares the CTMC's
  // stationary distribution.
  return uniformized().steady_state(opts);
}

std::vector<double> Ctmc::transient(std::span<const double> initial, double t,
                                    double truncation_eps) const {
  const std::size_t n = size();
  assert(initial.size() == n);
  if (t <= 0.0) return std::vector<double>(initial.begin(), initial.end());
  double lambda = 0.0;
  const Dtmc p = uniformized(&lambda);
  // Uniformization: pi(t) = sum_k Poisson(lambda t; k) * pi0 P^k.
  std::vector<double> term(initial.begin(), initial.end());
  std::vector<double> result(n, 0.0);
  const double lt = lambda * t;
  double log_poisson = -lt;  // log of Poisson pmf at k = 0
  double cumulative = 0.0;
  // Cap iterations generously: mean + 10 sigma.
  const std::size_t kmax =
      static_cast<std::size_t>(lt + 10.0 * std::sqrt(lt) + 50.0);
  for (std::size_t k = 0; k <= kmax; ++k) {
    const double w = std::exp(log_poisson);
    for (std::size_t i = 0; i < n; ++i) result[i] += w * term[i];
    cumulative += w;
    if (1.0 - cumulative < truncation_eps) break;
    term = p.transient(term, 1);
    log_poisson += std::log(lt) - std::log(static_cast<double>(k + 1));
  }
  normalize(result);
  return result;
}

double expected_reward(std::span<const double> pi,
                       const std::function<double(std::size_t)>& reward) {
  double acc = 0.0;
  // HOLMS_LINT_ALLOW(D006): cold analytic reward sum in state-index order
  for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * reward(i);
  return acc;
}

namespace {

// PA = LU factorization with partial pivoting, factored once and applied to
// many right-hand sides.  absorbing_analysis solves the same (I - Q) system
// for 1 + |absorbing| RHS vectors; eliminating per call was O(k * t^3).  The
// multipliers are stored in the eliminated below-diagonal slots, and solve()
// replays exactly the operation sequence the old fused elimination applied to
// b — results are bitwise identical to the pre-factorization code.
class LuFactors {
 public:
  explicit LuFactors(Matrix a) : lu_(std::move(a)), perm_(lu_.rows()) {
    const std::size_t n = lu_.rows();
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      double best = std::abs(lu_.at(perm_[col], col));
      for (std::size_t r = col + 1; r < n; ++r) {
        const double v = std::abs(lu_.at(perm_[r], col));
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      if (best < 1e-300) {
        throw holms::RuntimeError("absorbing_analysis: singular system "
                                 "(absorption unreachable from some state)");
      }
      std::swap(perm_[col], perm_[pivot]);
      const double diag = lu_.at(perm_[col], col);
      for (std::size_t r = col + 1; r < n; ++r) {
        const double factor = lu_.at(perm_[r], col) / diag;
        lu_.at(perm_[r], col) = factor;  // L multiplier in the zeroed slot
        if (factor == 0.0) continue;
        for (std::size_t c = col + 1; c < n; ++c) {
          lu_.at(perm_[r], c) -= factor * lu_.at(perm_[col], c);
        }
      }
    }
  }

  std::vector<double> solve(std::vector<double> b) const {
    const std::size_t n = lu_.rows();
    // Forward: replay the eliminations on b.
    for (std::size_t col = 0; col < n; ++col) {
      for (std::size_t r = col + 1; r < n; ++r) {
        const double factor = lu_.at(perm_[r], col);
        if (factor == 0.0) continue;
        b[perm_[r]] -= factor * b[perm_[col]];
      }
    }
    // Back-substitution against U.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      double acc = b[perm_[i]];
      for (std::size_t c = i + 1; c < n; ++c) acc -= lu_.at(perm_[i], c) * x[c];
      x[i] = acc / lu_.at(perm_[i], i);
    }
    return x;
  }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace

AbsorbingResult absorbing_analysis(const Dtmc& chain,
                                   const std::vector<bool>& absorbing) {
  const std::size_t n = chain.size();
  if (absorbing.size() != n) {
    throw holms::InvalidArgument("absorbing_analysis: flag size mismatch");
  }
  AbsorbingResult res;
  std::vector<std::size_t> transient;
  for (std::size_t i = 0; i < n; ++i) {
    (absorbing[i] ? res.absorbing_states : transient).push_back(i);
  }
  if (res.absorbing_states.empty()) {
    throw holms::InvalidArgument("absorbing_analysis: no absorbing state");
  }
  const std::size_t t = transient.size();
  const std::size_t a = res.absorbing_states.size();
  res.expected_steps.assign(n, 0.0);
  res.absorption_probability = Matrix(n, a);
  for (std::size_t k = 0; k < a; ++k) {
    res.absorption_probability.at(res.absorbing_states[k], k) = 1.0;
  }
  if (t == 0) return res;

  // (I - Q) over the transient states.
  Matrix iq(t, t);
  for (std::size_t r = 0; r < t; ++r) {
    for (std::size_t c = 0; c < t; ++c) {
      iq.at(r, c) = (r == c ? 1.0 : 0.0) -
                    chain.get(transient[r], transient[c]);
    }
  }
  // One factorization serves the expected-steps system and every absorption
  // column (1 + a right-hand sides).
  const LuFactors lu(std::move(iq));
  // Expected steps: (I - Q) tvec = 1.
  const std::vector<double> steps = lu.solve(std::vector<double>(t, 1.0));
  for (std::size_t r = 0; r < t; ++r) {
    res.expected_steps[transient[r]] = steps[r];
  }
  // Absorption probabilities: (I - Q) B_col = R_col for each absorbing k.
  for (std::size_t k = 0; k < a; ++k) {
    std::vector<double> rhs(t, 0.0);
    for (std::size_t r = 0; r < t; ++r) {
      rhs[r] = chain.get(transient[r], res.absorbing_states[k]);
    }
    const std::vector<double> col = lu.solve(std::move(rhs));
    for (std::size_t r = 0; r < t; ++r) {
      res.absorption_probability.at(transient[r], k) = col[r];
    }
  }
  return res;
}

}  // namespace holms::markov
