#pragma once
// Sparse stationary-solve kernels (paper §2.2).
//
// Queueing-network generator matrices are overwhelmingly sparse — a
// birth-death chain has O(n) nonzeros in an n x n matrix, and even the
// Jackson-network product-form chains touch only a handful of neighbors per
// state.  These CSR kernels are O(nnz) per sweep, SIMD-vectorized through
// exec::simd (fixed 8-lane reduction order, bitwise identical across
// HOLMS_SIMD=off/avx2/neon — see exec/simd.hpp), and since this PR they are
// the ONLY iterative engine: Dtmc::steady_state builds a CsrMatrix for the
// dense representation too, so kDense and kSparse produce bitwise identical
// results by construction (`used_sparse` still reports which representation
// the heuristic picked).  These entry points are public for tests and
// benchmarks that want to pin one representation.

#include <cstdint>
#include <span>
#include <vector>

#include "exec/aligned.hpp"
#include "markov/chain.hpp"

namespace holms::markov {

/// Compressed-sparse-row matrix over double.  Entries within a row are stored
/// in increasing column order (from_dense scans row-major), which is what the
/// bitwise-equivalence argument above relies on.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Drops exact zeros; keeps everything else.
  static CsrMatrix from_dense(const Matrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return vals_.size(); }
  /// nnz / (rows * cols); 0 for an empty matrix.
  double density() const;

  std::span<const std::uint32_t> row_cols(std::size_t r) const {
    return {cols_idx_.data() + offsets_[r], cols_idx_.data() + offsets_[r + 1]};
  }
  std::span<const double> row_vals(std::size_t r) const {
    return {vals_.data() + offsets_[r], vals_.data() + offsets_[r + 1]};
  }

  /// Transpose (i.e. the CSC view of this matrix, materialized as CSR).
  /// Entries within each transposed row again end up in increasing column
  /// order — counting placement preserves the scan order.
  CsrMatrix transposed() const;

  /// Raw views for the exec::simd kernels (spmv_cols / gs_cols).
  const std::size_t* offsets_data() const { return offsets_.data(); }
  const std::uint32_t* cols_data() const { return cols_idx_.data(); }
  const double* vals_data() const { return vals_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // Hot arrays are 64-byte aligned so the SIMD pack loads never straddle a
  // cache line (exec/aligned.hpp).
  exec::aligned_vector<std::size_t> offsets_;     // rows_ + 1
  exec::aligned_vector<std::uint32_t> cols_idx_;  // column of each entry
  exec::aligned_vector<double> vals_;
};

/// True when `opts` engages the fixed-grid sharded kernels for a matrix of
/// this size (DESIGN.md §5g).  Deliberately independent of `opts.threads` /
/// `opts.pool`: the kernel choice is a function of the problem, so every
/// thread count runs the identical algorithm and solves stay bitwise
/// invariant to parallelism.  Exposed for tests and benchmarks.
inline bool sharded_solve_engaged(std::size_t n, std::size_t nnz,
                                  const SolveOptions& opts) {
  return n >= opts.parallel_min_states && nnz >= opts.parallel_min_nnz;
}

/// Power iteration pi <- pi P on a row-stochastic CSR matrix, gather form:
/// next[c] = sum_r pi[r] * P[r, c] over the transpose, each column an
/// exec::simd 8-lane reduction in ascending source-row order.  Serial and
/// sharded execution run the identical per-column kernel (a shard is just a
/// [lo, hi) column range), so engaging the parallel path — or changing the
/// thread count, or the ISA — never changes a bit.
SolveResult sparse_power_iteration(const CsrMatrix& p,
                                   const SolveOptions& opts);

/// Gauss–Seidel on pi = pi P, sweeping columns in place (needs the transpose;
/// built internally once).  Below the parallel floors the sweep is one
/// full-range exec::simd gs_cols call — serial Gauss–Seidel with 8-lane
/// segment reductions.  At or above them it switches to the block-hybrid
/// sweep (Gauss–Seidel within each fixed 256-column shard, Jacobi across
/// shards — DESIGN.md §5g): a *different but deterministic* iterate sequence
/// that converges to the same stationary distribution and is bitwise
/// invariant to thread count because the shard grid never moves.
SolveResult sparse_gauss_seidel(const CsrMatrix& p, const SolveOptions& opts);

}  // namespace holms::markov
