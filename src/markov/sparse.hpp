#pragma once
// Sparse stationary-solve kernels (paper §2.2).
//
// Queueing-network generator matrices are overwhelmingly sparse — a
// birth-death chain has O(n) nonzeros in an n x n matrix, and even the
// Jackson-network product-form chains touch only a handful of neighbors per
// state.  The dense solvers in chain.cpp are O(n^2) per sweep regardless;
// these CSR kernels are O(nnz) per sweep and produce *bitwise identical*
// iterates to their dense counterparts, because the skipped entries are exact
// zeros and the surviving products are visited in the same (row, col) order
// the dense loops use.  Dtmc/Ctmc::steady_state route here automatically (see
// SolveOptions::sparsity); these entry points are public for tests and
// benchmarks that want to pin one representation.

#include <cstdint>
#include <span>
#include <vector>

#include "markov/chain.hpp"

namespace holms::markov {

/// Compressed-sparse-row matrix over double.  Entries within a row are stored
/// in increasing column order (from_dense scans row-major), which is what the
/// bitwise-equivalence argument above relies on.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Drops exact zeros; keeps everything else.
  static CsrMatrix from_dense(const Matrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return vals_.size(); }
  /// nnz / (rows * cols); 0 for an empty matrix.
  double density() const;

  std::span<const std::uint32_t> row_cols(std::size_t r) const {
    return {cols_idx_.data() + offsets_[r], cols_idx_.data() + offsets_[r + 1]};
  }
  std::span<const double> row_vals(std::size_t r) const {
    return {vals_.data() + offsets_[r], vals_.data() + offsets_[r + 1]};
  }

  /// Transpose (i.e. the CSC view of this matrix, materialized as CSR).
  /// Entries within each transposed row again end up in increasing column
  /// order — counting placement preserves the scan order.
  CsrMatrix transposed() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> offsets_;     // rows_ + 1
  std::vector<std::uint32_t> cols_idx_;  // column of each entry
  std::vector<double> vals_;
};

/// True when `opts` engages the fixed-grid sharded kernels for a matrix of
/// this size (DESIGN.md §5g).  Deliberately independent of `opts.threads` /
/// `opts.pool`: the kernel choice is a function of the problem, so every
/// thread count runs the identical algorithm and solves stay bitwise
/// invariant to parallelism.  Exposed for tests and benchmarks.
inline bool sharded_solve_engaged(std::size_t n, std::size_t nnz,
                                  const SolveOptions& opts) {
  return n >= opts.parallel_min_states && nnz >= opts.parallel_min_nnz;
}

/// Power iteration pi <- pi P on a row-stochastic CSR matrix.  Iterates are
/// bitwise identical to Dtmc::steady_state's dense power iteration — in both
/// the serial scatter form and the sharded gather form (the gather visits each
/// output column's contributions in ascending source-row order, which is
/// exactly the order the serial scatter adds them in), so engaging the
/// parallel path never changes a result.
SolveResult sparse_power_iteration(const CsrMatrix& p,
                                   const SolveOptions& opts);

/// Gauss–Seidel on pi = pi P, sweeping columns in place (needs the transpose;
/// built internally once).  Below the parallel floors this matches the dense
/// Gauss–Seidel bitwise.  At or above them it switches to the block-hybrid
/// sweep (Gauss–Seidel within each fixed 256-column shard, Jacobi across
/// shards — DESIGN.md §5g): a *different but deterministic* iterate sequence
/// that converges to the same stationary distribution and is bitwise
/// invariant to thread count because the shard grid never moves.
SolveResult sparse_gauss_seidel(const CsrMatrix& p, const SolveOptions& opts);

}  // namespace holms::markov
