#pragma once
// Regular 2D-mesh NoC topology (paper §3.2).
//
// "Such a chip consists of regular tiles, where each tile can be a
//  general-purpose processor, a DSP, a memory subsystem, etc.  A router is
//  embedded within each tile with the objective of connecting it to its
//  neighboring tiles."

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/error.hpp"

namespace holms::noc {

using TileId = std::size_t;

enum class Dir : std::uint8_t { kLocal = 0, kNorth, kSouth, kEast, kWest };
inline constexpr std::size_t kNumPorts = 5;

/// W x H mesh with XY-dimension-ordered routing helpers.
class Mesh2D {
 public:
  Mesh2D(std::size_t width, std::size_t height)
      : w_(width), h_(height) {
    if (width == 0 || height == 0) {
      throw holms::InvalidArgument("Mesh2D: empty mesh");
    }
  }

  std::size_t width() const { return w_; }
  std::size_t height() const { return h_; }
  std::size_t num_tiles() const { return w_ * h_; }

  std::size_t x_of(TileId t) const { return t % w_; }
  std::size_t y_of(TileId t) const { return t / w_; }
  TileId tile_at(std::size_t x, std::size_t y) const { return y * w_ + x; }

  /// Manhattan hop distance — the XY-routing path length.
  std::size_t hops(TileId a, TileId b) const {
    return static_cast<std::size_t>(
               std::abs(static_cast<long>(x_of(a)) -
                        static_cast<long>(x_of(b)))) +
           static_cast<std::size_t>(
               std::abs(static_cast<long>(y_of(a)) -
                        static_cast<long>(y_of(b))));
  }

  /// Next output direction under XY routing from `here` toward `dest`.
  Dir xy_next(TileId here, TileId dest) const {
    if (here == dest) return Dir::kLocal;
    const std::size_t hx = x_of(here), dx = x_of(dest);
    if (hx < dx) return Dir::kEast;
    if (hx > dx) return Dir::kWest;
    return y_of(here) < y_of(dest) ? Dir::kSouth : Dir::kNorth;
  }

  /// Neighbor tile in a direction; throws if off-mesh.
  TileId neighbor(TileId t, Dir d) const {
    const std::size_t x = x_of(t), y = y_of(t);
    switch (d) {
      case Dir::kNorth:
        if (y == 0) break;
        return tile_at(x, y - 1);
      case Dir::kSouth:
        if (y + 1 >= h_) break;
        return tile_at(x, y + 1);
      case Dir::kEast:
        if (x + 1 >= w_) break;
        return tile_at(x + 1, y);
      case Dir::kWest:
        if (x == 0) break;
        return tile_at(x - 1, y);
      case Dir::kLocal:
        return t;
    }
    throw holms::OutOfRange("Mesh2D::neighbor: off-mesh");
  }

  bool has_neighbor(TileId t, Dir d) const {
    switch (d) {
      case Dir::kNorth: return y_of(t) > 0;
      case Dir::kSouth: return y_of(t) + 1 < h_;
      case Dir::kEast: return x_of(t) + 1 < w_;
      case Dir::kWest: return x_of(t) > 0;
      case Dir::kLocal: return true;
    }
    return false;
  }

  /// Enumerates the XY route (sequence of tiles, inclusive of endpoints).
  std::vector<TileId> xy_route(TileId src, TileId dst) const {
    std::vector<TileId> path{src};
    TileId cur = src;
    while (cur != dst) {
      cur = neighbor(cur, xy_next(cur, dst));
      path.push_back(cur);
    }
    return path;
  }

  /// Number of directed inter-tile links (4 outgoing per tile; edge tiles
  /// simply never use their off-mesh slots).
  std::size_t num_links() const { return num_tiles() * 4; }

  /// Dense index of the directed link leaving `from` in direction `d`
  /// (d != kLocal).  Shared by evaluate_mapping and the route table so link
  /// loads computed by either agree slot for slot.
  std::size_t link_index(TileId from, Dir d) const {
    return from * 4 + (static_cast<std::size_t>(d) - 1);
  }

  /// Number of physical (undirected) inter-tile links: (w-1)*h horizontal +
  /// w*(h-1) vertical.  This is the id namespace fault::FaultSchedule uses
  /// for Target::kLink events — a physical link failing takes out both
  /// directed channels at once.
  std::size_t num_undirected_links() const {
    return (w_ - 1) * h_ + w_ * (h_ - 1);
  }

  /// Canonical (tile, direction) endpoint of undirected link `id`:
  /// horizontal links first (row-major, East from their west endpoint), then
  /// vertical links (row-major, South from their north endpoint).
  std::pair<TileId, Dir> undirected_link(std::size_t id) const {
    const std::size_t horizontal = (w_ - 1) * h_;
    if (id < horizontal) {
      return {tile_at(id % (w_ - 1), id / (w_ - 1)), Dir::kEast};
    }
    id -= horizontal;
    if (id < w_ * (h_ - 1)) {
      return {tile_at(id % w_, id / w_), Dir::kSouth};
    }
    throw holms::OutOfRange("Mesh2D::undirected_link: bad link id");
  }

 private:
  std::size_t w_;
  std::size_t h_;
};

/// Precomputed XY routes for every (src, dst) tile pair, stored as spans of
/// directed-link indices (CSR layout over the pair index src*T+dst).  Walking
/// a route via xy_next/neighbor costs a div/mod pair per hop; the table
/// reduces it to a contiguous span load, which is what makes delta-cost
/// mapping moves O(hops) with a tiny constant.  Memory is O(T^2 * mean_hops)
/// — fine for the on-chip meshes this library targets (T <= a few hundred).
class XyRouteTable {
 public:
  explicit XyRouteTable(const Mesh2D& mesh) : tiles_(mesh.num_tiles()) {
    offsets_.reserve(tiles_ * tiles_ + 1);
    offsets_.push_back(0);
    // Total route length = sum of hop counts; reserve exactly.
    std::size_t total = 0;
    for (TileId s = 0; s < tiles_; ++s)
      for (TileId d = 0; d < tiles_; ++d) total += mesh.hops(s, d);
    links_.reserve(total);
    for (TileId s = 0; s < tiles_; ++s) {
      for (TileId d = 0; d < tiles_; ++d) {
        TileId cur = s;
        while (cur != d) {
          const Dir dir = mesh.xy_next(cur, d);
          links_.push_back(static_cast<std::uint32_t>(mesh.link_index(cur, dir)));
          cur = mesh.neighbor(cur, dir);
        }
        offsets_.push_back(static_cast<std::uint32_t>(links_.size()));
      }
    }
  }

  /// Directed-link indices of the XY route src -> dst, in route order.
  std::span<const std::uint32_t> links(TileId src, TileId dst) const {
    const std::size_t p = src * tiles_ + dst;
    return {links_.data() + offsets_[p],
            links_.data() + offsets_[p + 1]};
  }

  /// Hop count (route length) — same value as Mesh2D::hops, table lookup.
  std::size_t hops(TileId src, TileId dst) const {
    const std::size_t p = src * tiles_ + dst;
    return offsets_[p + 1] - offsets_[p];
  }

  /// Number of tiles the table was built for (mesh-compatibility checks when
  /// one table is shared across SA runs).
  std::size_t tiles() const { return tiles_; }

 private:
  std::size_t tiles_;
  std::vector<std::uint32_t> offsets_;  // pair index -> start in links_
  std::vector<std::uint32_t> links_;
};

/// Bit-energy model in the style of Hu–Marculescu [20][23]:
/// moving one bit across h hops costs (h+1) router traversals and h link
/// traversals.
struct EnergyModel {
  double e_router_pj = 0.98;  // pJ per bit per router
  double e_link_pj = 1.74;    // pJ per bit per inter-tile link
  double e_buffer_pj = 1.10;  // pJ per bit buffered under contention

  double bit_energy(std::size_t hops) const {
    return static_cast<double>(hops + 1) * e_router_pj +
           static_cast<double>(hops) * e_link_pj;
  }
  /// Joules for `bits` over `hops`.
  double transfer_energy(double bits, std::size_t hops) const {
    return bits * bit_energy(hops) * 1e-12;
  }
};

}  // namespace holms::noc
