#include "noc/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "exec/metrics.hpp"

namespace holms::noc {
namespace {

// Directed link index: 4 outgoing links per tile (N,S,E,W).
std::size_t link_index(const Mesh2D& mesh, TileId from, Dir d) {
  return from * 4 + (static_cast<std::size_t>(d) - 1);
  (void)mesh;
}

double penalized_cost(const AppGraph& g, const Mesh2D& mesh,
                      const EnergyModel& energy, const Mapping& m,
                      const SaOptions& opts) {
  const MappingEval ev =
      evaluate_mapping(g, mesh, energy, m, opts.link_capacity_bps);
  double cost = ev.comm_energy_j;
  if (opts.link_capacity_bps > 0.0 &&
      ev.max_link_load_bps > opts.link_capacity_bps) {
    const double overload = ev.max_link_load_bps / opts.link_capacity_bps;
    cost *= 1.0 + opts.infeasibility_penalty * (overload - 1.0);
  }
  return cost;
}

}  // namespace

MappingEval evaluate_mapping(const AppGraph& g, const Mesh2D& mesh,
                             const EnergyModel& energy, const Mapping& m,
                             double link_capacity_bps) {
  if (m.size() != g.num_nodes()) {
    throw std::invalid_argument("evaluate_mapping: mapping size mismatch");
  }
  MappingEval ev;
  std::vector<double> link_load(mesh.num_tiles() * 4, 0.0);
  double vol = 0.0, vol_hops = 0.0;
  for (const auto& e : g.edges()) {
    const TileId src = m[e.src], dst = m[e.dst];
    const std::size_t h = mesh.hops(src, dst);
    ev.comm_energy_j += energy.transfer_energy(e.volume_bits, h);
    vol += e.volume_bits;
    vol_hops += e.volume_bits * static_cast<double>(h);
    const double bw = e.bandwidth_bps > 0.0 ? e.bandwidth_bps : e.volume_bits;
    TileId cur = src;
    while (cur != dst) {
      const Dir d = mesh.xy_next(cur, dst);
      link_load[link_index(mesh, cur, d)] += bw;
      cur = mesh.neighbor(cur, d);
    }
  }
  ev.volume_weighted_hops = vol > 0.0 ? vol_hops / vol : 0.0;
  ev.max_link_load_bps =
      link_load.empty() ? 0.0
                        : *std::max_element(link_load.begin(), link_load.end());
  ev.bandwidth_feasible = link_capacity_bps <= 0.0 ||
                          ev.max_link_load_bps <= link_capacity_bps;
  return ev;
}

Mapping random_mapping(std::size_t num_cores, const Mesh2D& mesh,
                       sim::Rng& rng) {
  if (num_cores > mesh.num_tiles()) {
    throw std::invalid_argument("random_mapping: more cores than tiles");
  }
  std::vector<TileId> tiles(mesh.num_tiles());
  std::iota(tiles.begin(), tiles.end(), 0);
  // Fisher–Yates using our Rng for reproducibility.
  for (std::size_t i = tiles.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(tiles[i - 1], tiles[j]);
  }
  return Mapping(tiles.begin(), tiles.begin() + static_cast<long>(num_cores));
}

Mapping greedy_mapping(const AppGraph& g, const Mesh2D& mesh,
                       const EnergyModel& energy) {
  const std::size_t n = g.num_nodes();
  if (n > mesh.num_tiles()) {
    throw std::invalid_argument("greedy_mapping: more cores than tiles");
  }
  Mapping m(n, 0);
  std::vector<bool> core_placed(n, false);
  std::vector<bool> tile_used(mesh.num_tiles(), false);

  // Seed: the highest-traffic core goes to the mesh center.
  std::size_t seed = 0;
  double best_traffic = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = g.node_traffic(i);
    if (t > best_traffic) {
      best_traffic = t;
      seed = i;
    }
  }
  const TileId center = mesh.tile_at(mesh.width() / 2, mesh.height() / 2);
  m[seed] = center;
  core_placed[seed] = true;
  tile_used[center] = true;

  for (std::size_t placed = 1; placed < n; ++placed) {
    // Pick the unplaced core most connected to the placed set.
    std::size_t next = n;
    double best_conn = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (core_placed[i]) continue;
      double conn = 0.0;
      for (const auto& e : g.edges()) {
        if (e.src == i && core_placed[e.dst]) conn += e.volume_bits;
        if (e.dst == i && core_placed[e.src]) conn += e.volume_bits;
      }
      if (conn > best_conn) {
        best_conn = conn;
        next = i;
      }
    }
    // Place it on the free tile minimizing incremental energy.
    TileId best_tile = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (TileId t = 0; t < mesh.num_tiles(); ++t) {
      if (tile_used[t]) continue;
      double cost = 0.0;
      for (const auto& e : g.edges()) {
        if (e.src == next && core_placed[e.dst]) {
          cost += energy.transfer_energy(e.volume_bits, mesh.hops(t, m[e.dst]));
        }
        if (e.dst == next && core_placed[e.src]) {
          cost += energy.transfer_energy(e.volume_bits, mesh.hops(m[e.src], t));
        }
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_tile = t;
      }
    }
    m[next] = best_tile;
    core_placed[next] = true;
    tile_used[best_tile] = true;
  }
  return m;
}

Mapping sa_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy, sim::Rng& rng,
                   const SaOptions& opts) {
  const std::size_t n = g.num_nodes();
  // Start from the greedy solution; SA then escapes its local minimum.
  Mapping m = greedy_mapping(g, mesh, energy);

  // Tile -> core occupancy (n = empty marker).
  std::vector<std::size_t> occupant(mesh.num_tiles(), n);
  for (std::size_t c = 0; c < n; ++c) occupant[m[c]] = c;

  double cost = penalized_cost(g, mesh, energy, m, opts);
  double best_cost = cost;
  Mapping best = m;
  double temp = opts.initial_temperature * std::max(cost, 1e-12);
  // Accumulated locally and flushed once: the Metropolis loop is the mapper's
  // hot path and must not take the metrics fast-path branch per move.
  std::uint64_t accepted = 0, rejected = 0;

  for (std::size_t it = 0; it < opts.iterations; ++it) {
    // Swap the contents of two tiles (core<->core or core<->empty).
    const TileId a = static_cast<TileId>(
        rng.uniform_int(0, static_cast<std::int64_t>(mesh.num_tiles()) - 1));
    const TileId b = static_cast<TileId>(
        rng.uniform_int(0, static_cast<std::int64_t>(mesh.num_tiles()) - 1));
    if (a == b || (occupant[a] == n && occupant[b] == n)) continue;
    const std::size_t ca = occupant[a], cb = occupant[b];
    if (ca != n) m[ca] = b;
    if (cb != n) m[cb] = a;
    std::swap(occupant[a], occupant[b]);

    const double new_cost = penalized_cost(g, mesh, energy, m, opts);
    const double delta = new_cost - cost;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      ++accepted;
      cost = new_cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = m;
      }
    } else {
      ++rejected;
      // Undo.
      if (ca != n) m[ca] = a;
      if (cb != n) m[cb] = b;
      std::swap(occupant[a], occupant[b]);
    }
    temp *= opts.cooling;
  }
  exec::count("sa.moves_accepted", accepted);
  exec::count("sa.moves_rejected", rejected);
  exec::observe("sa.final_temperature", temp);
  return best;
}

namespace {

struct BbState {
  const AppGraph* graph = nullptr;
  const Mesh2D* mesh = nullptr;
  const EnergyModel* energy = nullptr;
  std::vector<std::size_t> order;      // cores in placement order
  std::vector<TileId> placement;       // placement[k] = tile of order[k]
  std::vector<bool> tile_used;
  Mapping best;
  double best_cost = 0.0;
  double min_edge_energy = 0.0;        // energy of a 1-hop transfer per bit
  std::size_t nodes_expanded = 0;
  std::size_t node_budget = 0;

  // Cost of edges whose both endpoints are among the first `k` placed cores.
  double partial_cost(std::size_t k, TileId candidate) const {
    double cost = 0.0;
    const std::size_t core = order[k];
    for (const auto& e : graph->edges()) {
      const std::size_t other = e.src == core ? e.dst
                                : e.dst == core ? e.src
                                                : graph->num_nodes();
      if (other >= graph->num_nodes()) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (order[j] == other) {
          cost += energy->transfer_energy(
              e.volume_bits, mesh->hops(candidate, placement[j]));
        }
      }
    }
    return cost;
  }

  // Optimistic bound: every not-yet-bound edge costs at least one hop.
  double remaining_bound(std::size_t k) const {
    double vol = 0.0;
    for (const auto& e : graph->edges()) {
      bool src_placed = false, dst_placed = false;
      for (std::size_t j = 0; j <= k; ++j) {
        if (order[j] == e.src) src_placed = true;
        if (order[j] == e.dst) dst_placed = true;
      }
      if (!(src_placed && dst_placed)) vol += e.volume_bits;
    }
    return vol * min_edge_energy;
  }

  void search(std::size_t k, double cost_so_far) {
    if (node_budget && nodes_expanded >= node_budget) return;
    ++nodes_expanded;
    if (k == order.size()) {
      if (cost_so_far < best_cost) {
        best_cost = cost_so_far;
        for (std::size_t j = 0; j < order.size(); ++j) {
          best[order[j]] = placement[j];
        }
      }
      return;
    }
    for (TileId t = 0; t < mesh->num_tiles(); ++t) {
      if (tile_used[t]) continue;
      const double added = partial_cost(k, t);
      const double lower = cost_so_far + added;
      if (lower + (k + 1 < order.size() ? remaining_bound(k) : 0.0) >=
          best_cost) {
        continue;  // prune
      }
      placement[k] = t;
      tile_used[t] = true;
      search(k + 1, lower);
      tile_used[t] = false;
    }
  }
};

}  // namespace

Mapping bb_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy, std::size_t node_budget) {
  const std::size_t n = g.num_nodes();
  if (n > mesh.num_tiles()) {
    throw std::invalid_argument("bb_mapping: more cores than tiles");
  }
  BbState st;
  st.graph = &g;
  st.mesh = &mesh;
  st.energy = &energy;
  st.node_budget = node_budget;
  st.min_edge_energy = energy.bit_energy(1) * 1e-12;
  // Place high-traffic cores first: tight bounds early.
  st.order.resize(n);
  std::iota(st.order.begin(), st.order.end(), 0);
  std::sort(st.order.begin(), st.order.end(),
            [&](std::size_t a, std::size_t b) {
              return g.node_traffic(a) > g.node_traffic(b);
            });
  st.placement.assign(n, 0);
  st.tile_used.assign(mesh.num_tiles(), false);
  // Incumbent: the greedy solution (also the fallback under a budget).
  st.best = greedy_mapping(g, mesh, energy);
  st.best_cost = evaluate_mapping(g, mesh, energy, st.best).comm_energy_j;
  st.search(0, 0.0);
  return st.best;
}

}  // namespace holms::noc
