// HOLMS_LINT_ALLOW_FILE(D006): the full-evaluation oracle, constructive
// greedy and rebuild() walk the edge list in its fixed declaration order —
// they define the reference answer the O(deg) hot path is tested against.
// The hot path (swap_step) reduces through exec::simd::transfer_delta.
#include "noc/mapping.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "exec/metrics.hpp"
#include "exec/simd.hpp"

#include "exec/error.hpp"

namespace holms::noc {
namespace {

double penalized_cost(const AppGraph& g, const Mesh2D& mesh,
                      const EnergyModel& energy, const Mapping& m,
                      const SaOptions& opts) {
  const MappingEval ev =
      evaluate_mapping(g, mesh, energy, m, opts.link_capacity_bps);
  double cost = ev.comm_energy_j;
  if (opts.link_capacity_bps > 0.0 &&
      ev.max_link_load_bps > opts.link_capacity_bps) {
    const double overload = ev.max_link_load_bps / opts.link_capacity_bps;
    cost *= 1.0 + opts.infeasibility_penalty * (overload - 1.0);
  }
  return cost;
}

// Metropolis acceptance for an uphill move with scaled delta x = delta/temp.
// Shared by the incremental and full-evaluation SA loops so both consume the
// identical RNG stream.  exp(-46) < 1e-19 sits below the smallest value
// Rng::uniform() produces at its 53-bit resolution, so a certain rejection
// skips the draw-and-exp entirely — late in a cooling schedule that is almost
// every uphill move.
bool metropolis_accept(sim::Rng& rng, double x) {
  if (x >= 46.0) return false;
  return rng.uniform() < std::exp(-x);
}

}  // namespace

MappingEval evaluate_mapping(const AppGraph& g, const Mesh2D& mesh,
                             const EnergyModel& energy, const Mapping& m,
                             double link_capacity_bps) {
  if (m.size() != g.num_nodes()) {
    throw holms::InvalidArgument("evaluate_mapping: mapping size mismatch");
  }
  MappingEval ev;
  // Per-thread scratch: the link-load table was the only allocation on this
  // hot path (one vector per evaluation, millions of evaluations per
  // explore); assign() reuses the high-water capacity after the first call.
  thread_local std::vector<double> link_load;
  link_load.assign(mesh.num_links(), 0.0);
  double vol = 0.0, vol_hops = 0.0;
  for (const auto& e : g.edges()) {
    const TileId src = m[e.src], dst = m[e.dst];
    const std::size_t h = mesh.hops(src, dst);
    ev.comm_energy_j += energy.transfer_energy(e.volume_bits, h);
    vol += e.volume_bits;
    vol_hops += e.volume_bits * static_cast<double>(h);
    const double bw = e.bandwidth_bps > 0.0 ? e.bandwidth_bps : e.volume_bits;
    TileId cur = src;
    while (cur != dst) {
      const Dir d = mesh.xy_next(cur, dst);
      link_load[mesh.link_index(cur, d)] += bw;
      cur = mesh.neighbor(cur, d);
    }
  }
  ev.volume_weighted_hops = vol > 0.0 ? vol_hops / vol : 0.0;
  ev.max_link_load_bps =
      link_load.empty() ? 0.0
                        : *std::max_element(link_load.begin(), link_load.end());
  ev.bandwidth_feasible = link_capacity_bps <= 0.0 ||
                          ev.max_link_load_bps <= link_capacity_bps;
  return ev;
}

Mapping random_mapping(std::size_t num_cores, const Mesh2D& mesh,
                       sim::Rng& rng) {
  if (num_cores > mesh.num_tiles()) {
    throw holms::InvalidArgument("random_mapping: more cores than tiles");
  }
  std::vector<TileId> tiles(mesh.num_tiles());
  std::iota(tiles.begin(), tiles.end(), 0);
  // Fisher–Yates using our Rng for reproducibility.
  for (std::size_t i = tiles.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(tiles[i - 1], tiles[j]);
  }
  return Mapping(tiles.begin(), tiles.begin() + static_cast<long>(num_cores));
}

namespace {

// Incident-occurrence CSR over cores: occurrence = edge_index * 2 + role
// (role 1 = the core is the edge's src).  Per-core occurrence lists are in
// edge order with the src role first, so any per-core accumulation visits
// edges in exactly the order a full scan over g.edges() would — sums stay
// bitwise identical to the pre-index code.
struct IncidenceIndex {
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> occ;

  explicit IncidenceIndex(const AppGraph& g) {
    const std::size_t n = g.num_nodes();
    std::vector<std::uint32_t> degree(n, 0);
    for (const auto& e : g.edges()) {
      ++degree[e.src];
      ++degree[e.dst];
    }
    offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + degree[i];
    occ.resize(offsets[n]);
    std::vector<std::uint32_t> fill(offsets.begin(), offsets.end() - 1);
    for (std::size_t ei = 0; ei < g.edges().size(); ++ei) {
      const auto& e = g.edges()[ei];
      occ[fill[e.src]++] = static_cast<std::uint32_t>(ei * 2 + 1);
      occ[fill[e.dst]++] = static_cast<std::uint32_t>(ei * 2);
    }
  }

  std::span<const std::uint32_t> of(std::size_t core) const {
    return {occ.data() + offsets[core], occ.data() + offsets[core + 1]};
  }
};

}  // namespace

Mapping greedy_mapping(const AppGraph& g, const Mesh2D& mesh,
                       const EnergyModel& energy) {
  const std::size_t n = g.num_nodes();
  if (n > mesh.num_tiles()) {
    throw holms::InvalidArgument("greedy_mapping: more cores than tiles");
  }
  Mapping m(n, 0);
  std::vector<bool> core_placed(n, false);
  std::vector<bool> tile_used(mesh.num_tiles(), false);
  const IncidenceIndex inc(g);

  // Seed: the highest-traffic core goes to the mesh center.
  std::size_t seed = 0;
  double best_traffic = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = g.node_traffic(i);
    if (t > best_traffic) {
      best_traffic = t;
      seed = i;
    }
  }
  const TileId center = mesh.tile_at(mesh.width() / 2, mesh.height() / 2);
  m[seed] = center;
  core_placed[seed] = true;
  tile_used[center] = true;

  // Pins of the core being placed: the already-placed endpoints of its
  // incident edges, with coordinates hoisted so the tile loop below does
  // pure integer Manhattan arithmetic instead of re-scanning every edge and
  // re-deriving mesh coordinates per candidate tile.
  struct Pin {
    std::size_t x, y;
    double volume_bits;
  };
  std::vector<Pin> pins;
  pins.reserve(g.edges().size());

  for (std::size_t placed = 1; placed < n; ++placed) {
    // Pick the unplaced core most connected to the placed set.
    std::size_t next = n;
    double best_conn = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (core_placed[i]) continue;
      double conn = 0.0;
      for (const std::uint32_t o : inc.of(i)) {
        const auto& e = g.edges()[o >> 1];
        const std::size_t other = (o & 1) ? e.dst : e.src;
        if (core_placed[other]) conn += e.volume_bits;
      }
      if (conn > best_conn) {
        best_conn = conn;
        next = i;
      }
    }
    // Place it on the free tile minimizing incremental energy.
    pins.clear();
    for (const std::uint32_t o : inc.of(next)) {
      const auto& e = g.edges()[o >> 1];
      const std::size_t other = (o & 1) ? e.dst : e.src;
      if (!core_placed[other]) continue;
      const TileId ot = m[other];
      pins.push_back(Pin{mesh.x_of(ot), mesh.y_of(ot), e.volume_bits});
    }
    TileId best_tile = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (TileId t = 0; t < mesh.num_tiles(); ++t) {
      if (tile_used[t]) continue;
      const std::size_t tx = mesh.x_of(t), ty = mesh.y_of(t);
      double cost = 0.0;
      for (const Pin& p : pins) {
        const std::size_t h = (tx > p.x ? tx - p.x : p.x - tx) +
                              (ty > p.y ? ty - p.y : p.y - ty);
        cost += energy.transfer_energy(p.volume_bits, h);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_tile = t;
      }
    }
    m[next] = best_tile;
    core_placed[next] = true;
    tile_used[best_tile] = true;
  }
  return m;
}

namespace {

// Builds the tile-content swap sequence a cluster-relocate move denotes: the
// seed core plus its up-to-two heaviest-volume neighbors (volume aggregated
// per neighbor, ties broken by lower core index) translate rigidly by the
// (dx, dy) taking the seed's tile to `target`, clamped at the mesh rim.  All
// sources and destinations come from the *pre-move* placement; a member
// displaced by an earlier swap of the same move simply rides along — the
// move stays a bijection on tile contents, so unwinding the swaps in reverse
// is an exact inverse.  Shared by SwapEvaluator::apply_move and the
// debug_full_eval oracle so both execute identical swap sequences.
// The membership is graph-only (it never looks at the mapping), so it is
// precomputed once per SA run / evaluator as a per-core {count, n1, n2} row
// by cluster_neighbor_table() — a cluster move then costs only its swap
// deltas, not an edge-list rescan.
std::vector<std::array<std::size_t, 3>> cluster_neighbor_table(
    const AppGraph& g) {
  // (core, total volume), per core, in first-encounter edge order — the same
  // aggregation order as a per-seed scan of the edge list.
  std::vector<std::vector<std::pair<std::size_t, double>>> nb(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (e.src == e.dst) continue;  // self-loop carries no placement cost
    const auto add = [&](std::size_t core, std::size_t other) {
      auto& v = nb[core];
      const auto it =
          std::find_if(v.begin(), v.end(),
                       [&](const std::pair<std::size_t, double>& p) {
                         return p.first == other;
                       });
      if (it == v.end()) {
        v.emplace_back(other, e.volume_bits);
      } else {
        it->second += e.volume_bits;
      }
    };
    add(e.src, e.dst);
    add(e.dst, e.src);
  }
  std::vector<std::array<std::size_t, 3>> top(g.num_nodes(), {0, 0, 0});
  for (std::size_t c = 0; c < g.num_nodes(); ++c) {
    auto& v = nb[c];
    // Only the two heaviest neighbors ride along: selection, not a full sort.
    const std::size_t k = std::min<std::size_t>(v.size(), 2);
    std::partial_sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                      v.end(),
                      [](const std::pair<std::size_t, double>& x,
                         const std::pair<std::size_t, double>& y) {
                        return x.second != y.second ? x.second > y.second
                                                    : x.first < y.first;
                      });
    top[c][0] = k;
    for (std::size_t i = 0; i < k; ++i) top[c][i + 1] = v[i].first;
  }
  return top;
}

void expand_cluster(const Mesh2D& mesh, const Mapping& m,
                    const std::array<std::size_t, 3>& top,
                    std::size_t seed_core, TileId target,
                    std::vector<std::pair<TileId, TileId>>& steps) {
  const auto w = static_cast<std::ptrdiff_t>(mesh.width());
  const auto h = static_cast<std::ptrdiff_t>(mesh.height());
  const TileId seed_tile = m[seed_core];
  const std::ptrdiff_t dx = static_cast<std::ptrdiff_t>(mesh.x_of(target)) -
                            static_cast<std::ptrdiff_t>(mesh.x_of(seed_tile));
  const std::ptrdiff_t dy = static_cast<std::ptrdiff_t>(mesh.y_of(target)) -
                            static_cast<std::ptrdiff_t>(mesh.y_of(seed_tile));
  const std::size_t members = top[0];
  for (std::size_t k = 0; k <= members; ++k) {
    const std::size_t core = k == 0 ? seed_core : top[k];
    const TileId src = m[core];
    const std::ptrdiff_t nx = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(mesh.x_of(src)) + dx, 0, w - 1);
    const std::ptrdiff_t ny = std::clamp<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(mesh.y_of(src)) + dy, 0, h - 1);
    const TileId dst = mesh.tile_at(static_cast<std::size_t>(nx),
                                    static_cast<std::size_t>(ny));
    if (src != dst) steps.emplace_back(src, dst);
  }
}

// Expands a move descriptor into its tile-content swap sequence, derived
// entirely from the pre-move placement `m`.
void expand_move(const std::vector<std::array<std::size_t, 3>>& cluster_top,
                 const Mesh2D& mesh, const Mapping& m, const MoveDesc& mv,
                 std::vector<std::pair<TileId, TileId>>& steps) {
  steps.clear();
  switch (mv.kind) {
    case SaMove::kSwap:
      if (mv.a != mv.b) steps.emplace_back(mv.a, mv.b);
      break;
    case SaMove::k2OptSegmentReversal:
      for (TileId lo = mv.a, hi = mv.b; lo < hi; ++lo, --hi) {
        steps.emplace_back(lo, hi);
      }
      break;
    case SaMove::kClusterRelocate:
      expand_cluster(mesh, m, cluster_top[mv.core], mv.core, mv.target, steps);
      break;
  }
}

}  // namespace

MoveDesc sample_move(sim::Rng& rng, const SaOptions& opts, std::size_t tiles,
                     std::size_t num_cores) {
  MoveDesc mv;
  const bool mixed =
      opts.w_segment_reversal > 0.0 || opts.w_cluster_relocate > 0.0;
  if (mixed) {
    const double total =
        opts.w_swap + opts.w_segment_reversal + opts.w_cluster_relocate;
    const double u = rng.uniform(0.0, total);
    if (u < opts.w_swap) {
      mv.kind = SaMove::kSwap;
    } else if (u < opts.w_swap + opts.w_segment_reversal) {
      mv.kind = SaMove::k2OptSegmentReversal;
    } else {
      mv.kind = SaMove::kClusterRelocate;
    }
  }
  if (mv.kind == SaMove::kClusterRelocate && num_cores == 0) {
    mv.kind = SaMove::kSwap;  // degenerate graph; keep the draw count fixed
  }
  if (mv.kind == SaMove::kClusterRelocate) {
    mv.core = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_cores) - 1));
    mv.target = static_cast<TileId>(
        rng.uniform_int(0, static_cast<std::int64_t>(tiles) - 1));
  } else {
    // Same single draw over the T^2 pair space as the legacy swap loop.
    const auto pair = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(tiles * tiles) - 1));
    TileId a = static_cast<TileId>(pair / tiles);
    TileId b = static_cast<TileId>(pair % tiles);
    if (mv.kind == SaMove::k2OptSegmentReversal && a > b) std::swap(a, b);
    mv.a = a;
    mv.b = b;
  }
  return mv;
}

// ---------------------------------------------------------------------------
// SwapEvaluator — O(deg) delta-cost move evaluation for sa_mapping.
// ---------------------------------------------------------------------------

SwapEvaluator::SwapEvaluator(const AppGraph& g, const Mesh2D& mesh,
                             const EnergyModel& energy, Mapping m,
                             double link_capacity_bps,
                             double infeasibility_penalty,
                             const XyRouteTable* shared_routes)
    : g_(g),
      mesh_(mesh),
      energy_(energy),
      capacity_(link_capacity_bps),
      penalty_(infeasibility_penalty),
      m_(std::move(m)) {
  if (shared_routes != nullptr) {
    if (shared_routes->tiles() != mesh.num_tiles()) {
      throw holms::InvalidArgument(
          "SwapEvaluator: shared route table was built for a different mesh");
    }
    routes_ = shared_routes;
  } else {
    owned_routes_.emplace(mesh);
    routes_ = &*owned_routes_;
  }
  if (m_.size() != g_.num_nodes()) {
    throw holms::InvalidArgument("SwapEvaluator: mapping size mismatch");
  }
  const IncidenceIndex inc(g_);
  inc_offsets_ = inc.offsets;
  inc_edges_ = inc.occ;
  cluster_top_ = cluster_neighbor_table(g_);
  // A move touches the routes of deg(a) + deg(b) edges, each route once per
  // endpoint in the worst case.
  undo_links_.reserve(64);
  rebuild();
}

void SwapEvaluator::rebuild() {
  const std::size_t n = g_.num_nodes();
  occupant_.assign(mesh_.num_tiles(), kEmpty);
  for (std::size_t c = 0; c < n; ++c) occupant_[m_[c]] = c;
  link_load_.assign(mesh_.num_links(), 0.0);
  // Accumulate energy and loads in edge order — the exact summation order of
  // evaluate_mapping, so the initial state is bitwise identical to a full
  // evaluation of the same mapping.
  energy_j_ = 0.0;
  for (const auto& e : g_.edges()) {
    const TileId src = m_[e.src], dst = m_[e.dst];
    energy_j_ += energy_.transfer_energy(e.volume_bits, routes_->hops(src, dst));
    const double bw = e.bandwidth_bps > 0.0 ? e.bandwidth_bps : e.volume_bits;
    for (const std::uint32_t link : routes_->links(src, dst)) {
      link_load_[link] += bw;
    }
  }
  max_load_ = link_load_.empty()
                  ? 0.0
                  : *std::max_element(link_load_.begin(), link_load_.end());
  max_dirty_ = false;
  move_open_ = false;
}

double SwapEvaluator::max_link_load_bps() {
  if (max_dirty_) {
    max_load_ = link_load_.empty()
                    ? 0.0
                    : *std::max_element(link_load_.begin(), link_load_.end());
    max_dirty_ = false;
  }
  return max_load_;
}

double SwapEvaluator::cost() {
  double c = energy_j_;
  if (capacity_ > 0.0) {
    const double ml = max_link_load_bps();
    if (ml > capacity_) {
      c *= 1.0 + penalty_ * (ml / capacity_ - 1.0);
    }
  }
  return c;
}

void SwapEvaluator::add_route_load(TileId src, TileId dst, double bw) {
  for (const std::uint32_t link : routes_->links(src, dst)) {
    double& load = link_load_[link];
    undo_links_.emplace_back(link, load);
    load += bw;
    if (!max_dirty_ && load > max_load_) max_load_ = load;
  }
}

void SwapEvaluator::sub_route_load(TileId src, TileId dst, double bw) {
  for (const std::uint32_t link : routes_->links(src, dst)) {
    double& load = link_load_[link];
    undo_links_.emplace_back(link, load);
    // Decrementing the busiest link dethrones the cached maximum; rescan
    // lazily on the next cost() instead of per adjustment.
    if (load == max_load_) max_dirty_ = true;
    load -= bw;
  }
}

void SwapEvaluator::begin_move() {
  undo_links_.clear();
  undo_swaps_.clear();
  undo_energy_ = energy_j_;
  undo_max_ = max_load_;
  undo_dirty_ = max_dirty_;
  move_open_ = true;
}

void SwapEvaluator::swap_step(TileId a, TileId b) {
  assert(move_open_ && a != b);
  const std::size_t ca = occupant_[a], cb = occupant_[b];
  undo_swaps_.emplace_back(a, b);

  // Tile of a core after the swap (m_ still holds the pre-swap placement).
  const auto tile_after = [&](std::size_t core) -> TileId {
    if (core == ca) return b;
    if (core == cb) return a;
    return m_[core];
  };
  // Touch each affected edge once: every edge of ca, then edges of cb that
  // do not also touch ca.  Link loads only feed the overload penalty, so an
  // unconstrained run (capacity <= 0, e.g. the E4 energy study) skips their
  // maintenance entirely and a move is pure delta-energy arithmetic.
  const bool track_loads = capacity_ > 0.0;
  // Gather the touched edges' {volume, old hops, new hops} in visit order,
  // then evaluate the whole delta as one exec::simd transfer_delta call
  // (8-lane reduction in that order).  Link loads stay inline: they are
  // integer-free bookkeeping per route hop, not part of the reduction.
  delta_vol_.clear();
  delta_old_hops_.clear();
  delta_new_hops_.clear();
  const auto apply_edge = [&](const AppEdge& e) {
    const TileId os = m_[e.src], od = m_[e.dst];
    const TileId ns = tile_after(e.src), nd = tile_after(e.dst);
    if (os == ns && od == nd) return;  // both endpoints moved in lockstep
    delta_vol_.push_back(e.volume_bits);
    delta_old_hops_.push_back(static_cast<double>(routes_->hops(os, od)));
    delta_new_hops_.push_back(static_cast<double>(routes_->hops(ns, nd)));
    if (track_loads) {
      const double bw =
          e.bandwidth_bps > 0.0 ? e.bandwidth_bps : e.volume_bits;
      sub_route_load(os, od, bw);
      add_route_load(ns, nd, bw);
    }
  };
  if (ca != kEmpty) {
    for (const std::uint32_t o : std::span(inc_edges_)
             .subspan(inc_offsets_[ca], inc_offsets_[ca + 1] - inc_offsets_[ca])) {
      apply_edge(g_.edges()[o >> 1]);
    }
  }
  if (cb != kEmpty) {
    for (const std::uint32_t o : std::span(inc_edges_)
             .subspan(inc_offsets_[cb], inc_offsets_[cb + 1] - inc_offsets_[cb])) {
      const AppEdge& e = g_.edges()[o >> 1];
      if (ca != kEmpty && (e.src == ca || e.dst == ca)) continue;  // done above
      apply_edge(e);
    }
  }
  energy_j_ += exec::simd::kernels().transfer_delta(
      delta_vol_.data(), delta_old_hops_.data(), delta_new_hops_.data(),
      delta_vol_.size(), energy_.e_router_pj, energy_.e_link_pj);

  // Commit the placement swap.
  if (ca != kEmpty) m_[ca] = b;
  if (cb != kEmpty) m_[cb] = a;
  std::swap(occupant_[a], occupant_[b]);
}

double SwapEvaluator::apply_swap(TileId a, TileId b) {
  assert(!move_open_ && "apply_swap before resolving the previous move");
  assert(a != b);
  begin_move();
  swap_step(a, b);
  return cost();
}

double SwapEvaluator::apply_move(const MoveDesc& mv) {
  assert(!move_open_ && "apply_move before resolving the previous move");
  begin_move();
  if (mv.kind == SaMove::kSwap) {
    // A swap is its own one-step sequence — skip the expansion scratch, it
    // costs a measurable fraction of the O(deg) delta on small graphs.
    if (mv.a != mv.b) swap_step(mv.a, mv.b);
    return cost();
  }
  // Expand fully before executing: cluster sources/destinations must all be
  // derived from the pre-move placement (see expand_cluster).
  expand_move(cluster_top_, mesh_, m_, mv, move_steps_);
  for (const auto& [a, b] : move_steps_) swap_step(a, b);
  return cost();
}

void SwapEvaluator::revert_move() {
  assert(move_open_ && "revert without a pending move");
  move_open_ = false;
  // Restore touched link loads in reverse so repeated touches of one link
  // unwind correctly; everything else comes back from scalar snapshots.
  for (auto it = undo_links_.rbegin(); it != undo_links_.rend(); ++it) {
    link_load_[it->first] = it->second;
  }
  energy_j_ = undo_energy_;
  max_load_ = undo_max_;
  max_dirty_ = undo_dirty_;
  // Unwind the swap sequence in reverse — the exact inverse of the move.
  for (auto it = undo_swaps_.rbegin(); it != undo_swaps_.rend(); ++it) {
    const TileId a = it->first, b = it->second;
    // occupant_ was swapped by the step: the core now on a came from b and
    // vice versa.  Swap back and restore the mapping entries.
    const std::size_t ca = occupant_[a], cb = occupant_[b];
    if (ca != kEmpty) m_[ca] = b;
    if (cb != kEmpty) m_[cb] = a;
    std::swap(occupant_[a], occupant_[b]);
  }
}

namespace {

// The pre-incremental Metropolis loop: one full evaluate_mapping per move.
// Kept verbatim behind SaOptions::debug_full_eval as the baseline bench_micro
// measures against and the oracle the equivalence tests drive.
Mapping sa_mapping_full(const AppGraph& g, const Mesh2D& mesh,
                        const EnergyModel& energy, sim::Rng& rng,
                        const SaOptions& opts, Mapping m) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> occupant(mesh.num_tiles(), n);
  for (std::size_t c = 0; c < n; ++c) occupant[m[c]] = c;

  double cost = penalized_cost(g, mesh, energy, m, opts);
  double best_cost = cost;
  Mapping best = m;
  double temp = opts.initial_temperature * std::max(cost, 1e-12);
  std::uint64_t accepted = 0, rejected = 0, reheats = 0;
  std::size_t since_accept = 0;

  const std::size_t tiles = mesh.num_tiles();
  const auto cluster_top = cluster_neighbor_table(g);
  std::vector<std::pair<TileId, TileId>> steps;  // expand_move scratch
  for (std::size_t it = 0; it < opts.iterations; ++it) {
    const MoveDesc mv = sample_move(rng, opts, tiles, n);
    if (mv.kind == SaMove::kSwap &&
        (mv.a == mv.b || (occupant[mv.a] == n && occupant[mv.b] == n))) {
      continue;
    }
    if (mv.kind == SaMove::k2OptSegmentReversal && mv.a == mv.b) continue;
    // Execute the move's swap sequence on the plain arrays (the evaluator
    // path executes the identical sequence via swap_step).
    expand_move(cluster_top, mesh, m, mv, steps);
    for (const auto& [a, b] : steps) {
      const std::size_t ca = occupant[a], cb = occupant[b];
      if (ca != n) m[ca] = b;
      if (cb != n) m[cb] = a;
      std::swap(occupant[a], occupant[b]);
    }

    const double new_cost = penalized_cost(g, mesh, energy, m, opts);
    const double delta = new_cost - cost;
    if (delta <= 0.0 || metropolis_accept(rng, delta / temp)) {
      ++accepted;
      since_accept = 0;
      cost = new_cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = m;
      }
    } else {
      ++rejected;
      // Undo by unwinding the swaps in reverse.
      for (auto rit = steps.rbegin(); rit != steps.rend(); ++rit) {
        const TileId a = rit->first, b = rit->second;
        const std::size_t ca = occupant[a], cb = occupant[b];
        if (ca != n) m[ca] = b;
        if (cb != n) m[cb] = a;
        std::swap(occupant[a], occupant[b]);
      }
      if (opts.reheat_after > 0 && ++since_accept >= opts.reheat_after) {
        temp *= opts.reheat_factor;
        since_accept = 0;
        ++reheats;
      }
    }
    temp *= opts.cooling;
  }
  exec::count("sa.moves_accepted", accepted);
  exec::count("sa.moves_rejected", rejected);
  if (reheats > 0) exec::count("sa.reheats", reheats);
  exec::observe("sa.final_temperature", temp);
  return best;
}

}  // namespace

Mapping sa_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy, sim::Rng& rng,
                   const SaOptions& opts) {
  // Start from the greedy solution; SA then escapes its local minimum.
  return sa_mapping_from(g, mesh, energy, greedy_mapping(g, mesh, energy),
                         rng, opts);
}

Mapping sa_mapping_from(const AppGraph& g, const Mesh2D& mesh,
                        const EnergyModel& energy, Mapping initial,
                        sim::Rng& rng, const SaOptions& opts) {
  opts.validate();
  if (opts.debug_full_eval) {
    return sa_mapping_full(g, mesh, energy, rng, opts, std::move(initial));
  }

  // Delta-cost path: the evaluator keeps per-link loads and the running
  // energy, so a move costs O(deg(a) + deg(b)) route adjustments instead of
  // a full O(edges * hops) re-evaluation.  The RNG draw sequence is the same
  // as the full path's, so both modes explore the same move trajectory
  // (modulo accept flips within the ~1e-12 incremental/full cost gap).
  SwapEvaluator ev(g, mesh, energy, std::move(initial),
                   opts.link_capacity_bps, opts.infeasibility_penalty,
                   opts.routes);
  double cost = ev.cost();
  double best_cost = cost;
  Mapping best = ev.mapping();
  double temp = opts.initial_temperature * std::max(cost, 1e-12);
  // Accumulated locally and flushed once: the Metropolis loop is the mapper's
  // hot path and must not take the metrics fast-path branch per move.
  std::uint64_t accepted = 0, rejected = 0, reheats = 0;
  std::size_t since_accept = 0;
  const std::size_t n = g.num_nodes();
  const bool mixed =
      opts.w_segment_reversal > 0.0 || opts.w_cluster_relocate > 0.0;

  const std::size_t tiles = mesh.num_tiles();
  for (std::size_t it = 0; it < opts.iterations; ++it) {
    double new_cost;
    if (!mixed) {
      // Legacy swap-only fast path: swap the contents of two tiles
      // (core<->core or core<->empty); one draw over the T^2 pair space
      // replaces two per-tile draws, and no move-selector draw happens, so
      // the stream matches pre-move-set builds exactly.
      const auto pair = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(tiles * tiles) - 1));
      const TileId a = pair / tiles, b = pair % tiles;
      if (a == b || (ev.occupant(a) == SwapEvaluator::kEmpty &&
                     ev.occupant(b) == SwapEvaluator::kEmpty)) {
        continue;
      }
      new_cost = ev.apply_swap(a, b);
    } else {
      const MoveDesc mv = sample_move(rng, opts, tiles, n);
      if (mv.kind == SaMove::kSwap &&
          (mv.a == mv.b ||
           (ev.occupant(mv.a) == SwapEvaluator::kEmpty &&
            ev.occupant(mv.b) == SwapEvaluator::kEmpty))) {
        continue;
      }
      if (mv.kind == SaMove::k2OptSegmentReversal && mv.a == mv.b) continue;
      // Swaps (the bulk of any mix) take the single-step entry directly.
      new_cost = mv.kind == SaMove::kSwap ? ev.apply_swap(mv.a, mv.b)
                                          : ev.apply_move(mv);
    }
    const double delta = new_cost - cost;
    if (delta <= 0.0 || metropolis_accept(rng, delta / temp)) {
      ++accepted;
      since_accept = 0;
      ev.commit_move();
      cost = new_cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = ev.mapping();
      }
    } else {
      ++rejected;
      ev.revert_move();
      if (opts.reheat_after > 0 && ++since_accept >= opts.reheat_after) {
        temp *= opts.reheat_factor;
        since_accept = 0;
        ++reheats;
      }
    }
    temp *= opts.cooling;
  }
  exec::count("sa.moves_accepted", accepted);
  exec::count("sa.moves_rejected", rejected);
  if (reheats > 0) exec::count("sa.reheats", reheats);
  exec::observe("sa.final_temperature", temp);
  return best;
}

namespace {

struct BbState {
  const AppGraph* graph = nullptr;
  const Mesh2D* mesh = nullptr;
  const EnergyModel* energy = nullptr;
  std::vector<std::size_t> order;      // cores in placement order
  std::vector<TileId> placement;       // placement[k] = tile of order[k]
  std::vector<bool> tile_used;
  Mapping best;
  double best_cost = 0.0;
  double min_edge_energy = 0.0;        // energy of a 1-hop transfer per bit
  std::size_t nodes_expanded = 0;
  std::size_t node_budget = 0;

  // Cost of edges whose both endpoints are among the first `k` placed cores.
  double partial_cost(std::size_t k, TileId candidate) const {
    double cost = 0.0;
    const std::size_t core = order[k];
    for (const auto& e : graph->edges()) {
      const std::size_t other = e.src == core ? e.dst
                                : e.dst == core ? e.src
                                                : graph->num_nodes();
      if (other >= graph->num_nodes()) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (order[j] == other) {
          cost += energy->transfer_energy(
              e.volume_bits, mesh->hops(candidate, placement[j]));
        }
      }
    }
    return cost;
  }

  // Optimistic bound: every not-yet-bound edge costs at least one hop.
  double remaining_bound(std::size_t k) const {
    double vol = 0.0;
    for (const auto& e : graph->edges()) {
      bool src_placed = false, dst_placed = false;
      for (std::size_t j = 0; j <= k; ++j) {
        if (order[j] == e.src) src_placed = true;
        if (order[j] == e.dst) dst_placed = true;
      }
      if (!(src_placed && dst_placed)) vol += e.volume_bits;
    }
    return vol * min_edge_energy;
  }

  void search(std::size_t k, double cost_so_far) {
    if (node_budget && nodes_expanded >= node_budget) return;
    ++nodes_expanded;
    if (k == order.size()) {
      if (cost_so_far < best_cost) {
        best_cost = cost_so_far;
        for (std::size_t j = 0; j < order.size(); ++j) {
          best[order[j]] = placement[j];
        }
      }
      return;
    }
    for (TileId t = 0; t < mesh->num_tiles(); ++t) {
      if (tile_used[t]) continue;
      const double added = partial_cost(k, t);
      const double lower = cost_so_far + added;
      if (lower + (k + 1 < order.size() ? remaining_bound(k) : 0.0) >=
          best_cost) {
        continue;  // prune
      }
      placement[k] = t;
      tile_used[t] = true;
      search(k + 1, lower);
      tile_used[t] = false;
    }
  }
};

}  // namespace

Mapping bb_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy, std::size_t node_budget) {
  const std::size_t n = g.num_nodes();
  if (n > mesh.num_tiles()) {
    throw holms::InvalidArgument("bb_mapping: more cores than tiles");
  }
  BbState st;
  st.graph = &g;
  st.mesh = &mesh;
  st.energy = &energy;
  st.node_budget = node_budget;
  st.min_edge_energy = energy.bit_energy(1) * 1e-12;
  // Place high-traffic cores first: tight bounds early.
  st.order.resize(n);
  std::iota(st.order.begin(), st.order.end(), 0);
  std::sort(st.order.begin(), st.order.end(),
            [&](std::size_t a, std::size_t b) {
              return g.node_traffic(a) > g.node_traffic(b);
            });
  st.placement.assign(n, 0);
  st.tile_used.assign(mesh.num_tiles(), false);
  // Incumbent: the greedy solution (also the fallback under a budget).
  st.best = greedy_mapping(g, mesh, energy);
  st.best_cost = evaluate_mapping(g, mesh, energy, st.best).comm_energy_j;
  st.search(0, 0.0);
  return st.best;
}

}  // namespace holms::noc
