#pragma once
// Application characterization graphs for NoC design (paper §3.3).
//
// "Given the target application described as a set of concurrent tasks, its
//  communication profile, a pre-selected architecture and set of available
//  IPs ..."
//
// An AppGraph is the APCG of Hu–Marculescu [20]: vertices are IP cores
// (already clustered tasks), directed edges carry the communication volume
// between them.  Factories provide the two workloads the paper names — a
// multimedia (video/audio encoder+decoder) system and the §3.2 video
// surveillance pipeline — plus a random TGFF-style generator for sweeps.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace holms::noc {

struct AppNode {
  std::string name;
  double compute_cycles = 0.0;  // per application iteration
};

struct AppEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  double volume_bits = 0.0;     // bits communicated per iteration
  double bandwidth_bps = 0.0;   // sustained bandwidth demand
};

/// Directed communication graph of an application.
class AppGraph {
 public:
  std::size_t add_node(std::string name, double compute_cycles = 0.0);
  void add_edge(std::size_t src, std::size_t dst, double volume_bits,
                double bandwidth_bps = 0.0);

  std::size_t num_nodes() const { return nodes_.size(); }
  const AppNode& node(std::size_t i) const { return nodes_.at(i); }
  const std::vector<AppEdge>& edges() const { return edges_; }
  double total_volume() const;

  /// Edges incident to node i (for greedy mapping).
  double node_traffic(std::size_t i) const;

 private:
  std::vector<AppNode> nodes_;
  std::vector<AppEdge> edges_;
};

/// A 16-core multimedia system (MP3 audio enc/dec + H.26x-class video
/// enc/dec sharing memories), with communication volumes patterned on the
/// published MMS benchmark used in [20][23].
AppGraph mms_graph();

/// The paper's §3.2 example: "a video surveillance system that has to
/// perform such diverse tasks as motion detection, filtering, rendering,
/// object matching" — a mostly-linear high-bandwidth pipeline with side
/// channels for user input and storage.
AppGraph video_surveillance_graph();

/// Random TGFF-style layered DAG with n nodes.
AppGraph random_graph(std::size_t n, sim::Rng& rng, double mean_volume = 1e6);

/// True if every edge goes from a lower to a higher node index (the
/// precondition of the schedulers in scheduling.hpp).
bool is_topologically_ordered(const AppGraph& g);

/// DAG variant of the surveillance pipeline: the pattern-db feedback is
/// folded into a forward annotation edge so the graph is schedulable
/// (mapping studies should keep using video_surveillance_graph()).
AppGraph video_surveillance_dag();

/// DAG variant of the MMS system: decode + encode + audio chains without
/// the memory write-back cycles; compute/volume figures match mms_graph().
AppGraph mms_dag();

/// Scaled-out surveillance workload for 32x32+ mapping sweeps: `cameras`
/// independent §3.2 front-end pipelines (camera -> motion-detect -> filter ->
/// object-match), every 4 cameras fanned into one rendering stage, all
/// renderers merged by a shared encode -> {storage, net-out} back end, plus
/// the low-bandwidth controller / pattern-db side channels.  Node indices are
/// topologically ordered (schedulable as-is); 3 + 4*cameras + ceil(cameras/4)
/// + 3 nodes total, so cameras = 46 gives the ~200-task graph the island
/// sweeps use.  Deterministic — no RNG, same graph every call.
AppGraph surveillance_farm_graph(std::size_t cameras);

}  // namespace holms::noc
