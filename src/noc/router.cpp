#include "noc/router.hpp"

#include <algorithm>
#include <stdexcept>

#include "noc/taskgraph.hpp"

#include "exec/error.hpp"
#include "exec/metrics.hpp"

namespace holms::noc {
namespace {

constexpr std::size_t port_of(Dir d) { return static_cast<std::size_t>(d); }

// The input port of the *neighbor* that a flit leaving via `out` lands on.
Dir entry_port(Dir out) {
  switch (out) {
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kSouth: return Dir::kNorth;
    case Dir::kEast: return Dir::kWest;
    case Dir::kWest: return Dir::kEast;
    case Dir::kLocal: return Dir::kLocal;
  }
  return Dir::kLocal;
}

}  // namespace

NocSim::NocSim(const Mesh2D& mesh, const Config& cfg, sim::Rng rng)
    : mesh_(mesh), cfg_(cfg), rng_(rng), routers_(mesh.num_tiles()),
      source_(mesh.num_tiles()) {
  if (cfg_.buffer_depth == 0 || cfg_.virtual_channels == 0) {
    throw holms::InvalidArgument("NocSim: need buffer_depth, VCs >= 1");
  }
  const std::size_t v = cfg_.virtual_channels;
  for (auto& r : routers_) {
    r.in.resize(kNumPorts);
    for (auto& p : r.in) p.vc.resize(v);
    r.vc_owner.assign(kNumPorts * v, -1);
  }
  if (cfg_.routing == RoutingAlgo::kFaultTolerant) {
    ft_on_demand_ = mesh_.num_tiles() >= cfg_.ft_on_demand_min_tiles;
    rebuild_ft_tables();
  }
}

void NocSim::arm_faults() {
  if (!link_up_.empty()) return;
  link_up_.assign(mesh_.num_links(), 1);
  router_up_.assign(mesh_.num_tiles(), 1);
}

void NocSim::attach_fault_schedule(const fault::FaultSchedule* schedule) {
  if (schedule != nullptr) {
    for (const fault::FaultEvent& e : schedule->events()) {
      const bool ok = e.target == fault::Target::kLink
                          ? e.id < mesh_.num_undirected_links()
                          : e.id < mesh_.num_tiles();
      if (!ok) {
        throw holms::InvalidArgument(
            "NocSim::attach_fault_schedule: event id out of range");
      }
    }
    arm_faults();
  }
  fault_schedule_ = schedule;
  injector_.reset(schedule);
}

void NocSim::set_link_up(TileId t, Dir d, bool up) {
  if (d == Dir::kLocal || t >= mesh_.num_tiles() || !mesh_.has_neighbor(t, d)) {
    throw holms::InvalidArgument("NocSim::set_link_up: no such link");
  }
  arm_faults();
  const TileId nb = mesh_.neighbor(t, d);
  const std::uint8_t v = up ? 1 : 0;
  const bool was_up = link_up_[mesh_.link_index(t, d)] != 0;
  link_up_[mesh_.link_index(t, d)] = v;
  link_up_[mesh_.link_index(nb, entry_port(d))] = v;
  if (was_up && !up) {
    // Drop worms currently allocated across either directed channel: their
    // flits straddle (or are about to straddle) a link that no longer exists.
    std::unordered_set<std::uint64_t> doomed;
    const std::size_t vcs = cfg_.virtual_channels;
    auto collect = [&](TileId router, Dir out) {
      for (auto& port : routers_[router].in) {
        for (std::size_t vi = 0; vi < vcs; ++vi) {
          const VirtualChannel& vc = port.vc[vi];
          if (vc.out_port == static_cast<int>(port_of(out)) &&
              vc.cur_packet != 0) {
            doomed.insert(vc.cur_packet);
          }
        }
      }
    };
    collect(t, d);
    collect(nb, entry_port(d));
    purge_packets(doomed);
  }
  if (cfg_.routing == RoutingAlgo::kFaultTolerant) rebuild_ft_tables();
}

void NocSim::set_router_up(TileId t, bool up) {
  if (t >= mesh_.num_tiles()) {
    throw holms::InvalidArgument("NocSim::set_router_up: no such tile");
  }
  arm_faults();
  const bool was_up = router_up_[t] != 0;
  router_up_[t] = up ? 1 : 0;
  if (was_up && !up) {
    std::unordered_set<std::uint64_t> doomed;
    const std::size_t vcs = cfg_.virtual_channels;
    // Everything buffered in or allocated out of the dead router dies.
    for (auto& port : routers_[t].in) {
      for (std::size_t vi = 0; vi < vcs; ++vi) {
        const VirtualChannel& vc = port.vc[vi];
        if (vc.cur_packet != 0) doomed.insert(vc.cur_packet);
        for (const Flit& fl : vc.buffer) doomed.insert(fl.packet);
      }
    }
    // Plus worms allocated *into* it from the neighbors.
    for (std::size_t op = 1; op < kNumPorts; ++op) {
      const Dir toward_t = static_cast<Dir>(op);
      if (!mesh_.has_neighbor(t, toward_t)) continue;
      const TileId nb = mesh_.neighbor(t, toward_t);
      const Dir nb_out = entry_port(toward_t);  // nb's port facing t
      for (auto& port : routers_[nb].in) {
        for (std::size_t vi = 0; vi < vcs; ++vi) {
          const VirtualChannel& vc = port.vc[vi];
          if (vc.out_port == static_cast<int>(port_of(nb_out)) &&
              vc.cur_packet != 0) {
            doomed.insert(vc.cur_packet);
          }
        }
      }
    }
    // Plus packets still queued at the dead tile's source.
    for (const Flit& fl : source_[t].queue) doomed.insert(fl.packet);
    purge_packets(doomed);
  }
  if (cfg_.routing == RoutingAlgo::kFaultTolerant) rebuild_ft_tables();
}

void NocSim::apply_fault_event(const fault::FaultEvent& e) {
  // Soft faults corrupt payloads, they do not change link/router liveness;
  // the NoC models hard outages only, so a merged schedule's soft events
  // pass through without touching the admit tables or the applied counter.
  if (e.kind == fault::FaultKind::kSoftFail ||
      e.kind == fault::FaultKind::kScrub) {
    return;
  }
  const bool up = e.kind == fault::FaultKind::kRepair;
  if (e.target == fault::Target::kLink) {
    const auto [t, d] = mesh_.undirected_link(e.id);
    set_link_up(t, d, up);
  } else {
    set_router_up(e.id, up);
  }
  ++faults_applied_;
}

void NocSim::purge_packets(const std::unordered_set<std::uint64_t>& pids) {
  if (pids.empty()) return;
  const std::size_t vcs = cfg_.virtual_channels;
  for (Router& r : routers_) {
    for (std::size_t ip = 0; ip < kNumPorts; ++ip) {
      for (std::size_t vi = 0; vi < vcs; ++vi) {
        VirtualChannel& vc = r.in[ip].vc[vi];
        if (vc.cur_packet != 0 && pids.count(vc.cur_packet)) {
          if (vc.out_port >= 0) {
            r.vc_owner[static_cast<std::size_t>(vc.out_port) * vcs +
                       static_cast<std::size_t>(vc.out_vc)] = -1;
          }
          vc.out_port = -1;
          vc.out_vc = -1;
          vc.cur_packet = 0;
          vc.head_stall = 0;
        }
        auto& buf = vc.buffer;
        const std::size_t before = buf.size();
        buf.erase(std::remove_if(buf.begin(), buf.end(),
                                 [&](const Flit& fl) {
                                   return pids.count(fl.packet) != 0;
                                 }),
                  buf.end());
        // The front flit changed: the stall count belonged to the old head.
        if (buf.size() != before) vc.head_stall = 0;
      }
    }
  }
  for (SourceState& src : source_) {
    if (src.remaining > 0 && !src.queue.empty() &&
        pids.count(src.queue.front().packet)) {
      src.remaining = 0;  // the packet mid-stream into its VC is gone
    }
    src.queue.erase(std::remove_if(src.queue.begin(), src.queue.end(),
                                   [&](const Flit& fl) {
                                     return pids.count(fl.packet) != 0;
                                   }),
                    src.queue.end());
  }
  dropped_ += pids.size();
}

bool NocSim::move_legal(TileId t_from, Dir in_from, Dir move) const {
  if (move == Dir::kLocal || move == in_from) return false;  // no 180° turns
  if (!mesh_.has_neighbor(t_from, move)) return false;
  if (!link_live(t_from, move) || !router_live(t_from) ||
      !router_live(mesh_.neighbor(t_from, move))) {
    return false;
  }
  if (in_from != Dir::kLocal) {
    // Odd-even turn model (Chiu): EN/ES turns forbidden in even columns,
    // NW/SW turns forbidden in odd columns.  The prohibited-turn set is
    // static — independent of fault state — which is what keeps every
    // reconfigured route table deadlock-free (DESIGN.md §5e).
    const Dir prev = entry_port(in_from);  // direction of the previous hop
    const bool even_col = mesh_.x_of(t_from) % 2 == 0;
    if (prev == Dir::kEast && even_col &&
        (move == Dir::kNorth || move == Dir::kSouth)) {
      return false;
    }
    if ((prev == Dir::kNorth || prev == Dir::kSouth) && !even_col &&
        move == Dir::kWest) {
      return false;
    }
  }
  return true;
}

void NocSim::rebuild_ft_tables() {
  if (ft_on_demand_) {
    // Large mesh: no O(T^2 * 5) table.  Bumping the epoch turns every cached
    // per-destination table stale; each is recomputed lazily on next use.
    ++ft_epoch_;
    return;
  }
  const std::size_t T = mesh_.num_tiles();
  ft_admit_.assign(T * T * kNumPorts, 0);
  for (TileId dst = 0; dst < T; ++dst) {
    compute_ft_admit(dst, ft_admit_.data() + dst * T * kNumPorts);
  }
}

void NocSim::compute_ft_admit(TileId dst, std::uint8_t* admit) const {
  const std::size_t T = mesh_.num_tiles();
  constexpr std::uint32_t kInf = 0xffffffffu;
  // Reverse BFS from the destination over (tile, in_port) states: a state
  // records through which port the worm *entered* the tile, because the
  // turn model constrains the next move by the previous one.
  ft_dist_.assign(T * kNumPorts, kInf);
  ft_queue_.clear();
  ft_queue_.reserve(T * kNumPorts);
  std::vector<std::uint32_t>& dist = ft_dist_;
  std::vector<std::uint32_t>& queue = ft_queue_;
  if (router_live(dst)) {
    for (std::size_t in = 0; in < kNumPorts; ++in) {
      dist[dst * kNumPorts + in] = 0;
      queue.push_back(static_cast<std::uint32_t>(dst * kNumPorts + in));
    }
  }
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    const std::size_t state = queue[qi];
    const TileId t_to = state / kNumPorts;
    const Dir in_to = static_cast<Dir>(state % kNumPorts);
    // kLocal entry states are injection-only: no move produces them.
    if (in_to == Dir::kLocal || !mesh_.has_neighbor(t_to, in_to)) continue;
    const Dir d_move = entry_port(in_to);  // the move that entered via in_to
    const TileId t_from = mesh_.neighbor(t_to, in_to);
    for (std::size_t in_from = 0; in_from < kNumPorts; ++in_from) {
      if (!move_legal(t_from, static_cast<Dir>(in_from), d_move)) continue;
      const std::size_t s2 = t_from * kNumPorts + in_from;
      if (dist[s2] == kInf) {
        dist[s2] = dist[state] + 1;
        queue.push_back(static_cast<std::uint32_t>(s2));
      }
    }
  }
  for (TileId t = 0; t < T; ++t) {
    for (std::size_t in = 0; in < kNumPorts; ++in) {
      std::uint8_t mask = 0;
      if (t == dst) {
        mask = 1u << port_of(Dir::kLocal);
      } else if (dist[t * kNumPorts + in] != kInf) {
        const std::uint32_t d = dist[t * kNumPorts + in];
        for (std::size_t m = 1; m < kNumPorts; ++m) {
          const Dir dm = static_cast<Dir>(m);
          if (!move_legal(t, static_cast<Dir>(in), dm)) continue;
          const std::size_t s2 = mesh_.neighbor(t, dm) * kNumPorts +
                                 port_of(entry_port(dm));
          if (dist[s2] != kInf && dist[s2] + 1 == d) mask |= 1u << m;
        }
      }
      admit[t * kNumPorts + in] = mask;
    }
  }
}

const std::uint8_t* NocSim::ft_table_for(TileId dst) const {
  // MRU shortcut: consecutive route_admits calls overwhelmingly share dst.
  if (ft_mru_ < ft_cache_.size()) {
    FtCacheEntry& e = ft_cache_[ft_mru_];
    if (e.dst == dst && e.epoch == ft_epoch_) {
      e.last_use = ++ft_cache_tick_;
      return e.admit.data();
    }
  }
  for (std::size_t i = 0; i < ft_cache_.size(); ++i) {
    FtCacheEntry& e = ft_cache_[i];
    if (e.dst == dst && e.epoch == ft_epoch_) {
      e.last_use = ++ft_cache_tick_;
      ft_mru_ = i;
      return e.admit.data();
    }
  }
  // Miss (cold or stale epoch): BFS into a fresh or least-recently-used slot.
  exec::count("noc.ft_bfs_on_demand");
  std::size_t slot = ft_cache_.size();
  if (slot < kFtCacheCapacity) {
    ft_cache_.emplace_back();
  } else {
    slot = 0;
    for (std::size_t i = 1; i < ft_cache_.size(); ++i) {
      if (ft_cache_[i].last_use < ft_cache_[slot].last_use) slot = i;
    }
  }
  FtCacheEntry& e = ft_cache_[slot];
  e.dst = dst;
  e.epoch = ft_epoch_;
  e.last_use = ++ft_cache_tick_;
  e.admit.assign(mesh_.num_tiles() * kNumPorts, 0);
  compute_ft_admit(dst, e.admit.data());
  ft_mru_ = slot;
  return e.admit.data();
}

void NocSim::add_flow(const Flow& f) {
  if (f.src >= mesh_.num_tiles() || f.dst >= mesh_.num_tiles() ||
      f.src == f.dst || f.packet_flits == 0 ||
      !(f.packets_per_cycle >= 0.0 && f.packets_per_cycle <= 1.0)) {
    throw holms::InvalidArgument("NocSim::add_flow: invalid flow");
  }
  flows_.push_back(f);
}

void NocSim::inject_phase() {
  // Generate new packets into per-tile source queues.
  for (const Flow& f : flows_) {
    if (rng_.bernoulli(f.packets_per_cycle)) {
      ++injected_;
      if (faults_armed() && !router_live(f.src)) {
        // The source tile's router is down: the packet is generated by the
        // core but lost at the network interface.  The Bernoulli draw is
        // consumed either way, so the injection sequence of healthy flows
        // matches the fault-free run exactly.
        ++dropped_;
        continue;
      }
      const std::uint64_t pid = next_packet_++;
      for (std::size_t i = 0; i < f.packet_flits; ++i) {
        Flit fl;
        fl.packet = pid;
        fl.src = f.src;
        fl.dst = f.dst;
        fl.injected_cycle = cycle_;
        if (f.packet_flits == 1) {
          fl.type = FlitType::kHeadTail;
        } else if (i == 0) {
          fl.type = FlitType::kHead;
        } else if (i + 1 == f.packet_flits) {
          fl.type = FlitType::kTail;
        } else {
          fl.type = FlitType::kBody;
        }
        source_[f.src].queue.push_back(fl);
      }
    }
  }
  // Move flits into the local input port.  A packet streams into exactly one
  // VC; a new packet only claims an idle, empty VC (atomic VC allocation).
  const std::size_t v = cfg_.virtual_channels;
  for (TileId t = 0; t < mesh_.num_tiles(); ++t) {
    if (faults_armed() && !router_live(t)) continue;  // dead NI streams nothing
    SourceState& src = source_[t];
    auto& port = routers_[t].in[port_of(Dir::kLocal)];
    for (;;) {
      if (src.queue.empty()) break;
      if (src.remaining == 0) {
        // Find an idle empty VC for the next packet.
        std::size_t chosen = v;
        for (std::size_t i = 0; i < v; ++i) {
          const auto& cand = port.vc[(src.inject_vc + 1 + i) % v];
          if (cand.buffer.empty() && cand.out_port < 0) {
            chosen = (src.inject_vc + 1 + i) % v;
            break;
          }
        }
        if (chosen == v) break;  // all VCs busy this cycle
        src.inject_vc = chosen;
        // Count the whole packet; flits stream in as space allows.
        src.remaining = 1;
        while (src.remaining < src.queue.size() &&
               src.queue[src.remaining - 1].type != FlitType::kTail &&
               src.queue[src.remaining - 1].type != FlitType::kHeadTail) {
          ++src.remaining;
        }
      }
      auto& vc = port.vc[src.inject_vc];
      if (vc.buffer.size() >= cfg_.buffer_depth) break;
      vc.buffer.push_back(src.queue.front());
      src.queue.pop_front();
      --src.remaining;
      energy_pj_ += cfg_.energy.e_buffer_pj * cfg_.flit_bits;
    }
  }
}

bool NocSim::route_admits(TileId here, TileId dst, Dir out,
                          Dir in_port) const {
  if (cfg_.routing == RoutingAlgo::kXY) {
    return mesh_.xy_next(here, dst) == out;
  }
  if (cfg_.routing == RoutingAlgo::kFaultTolerant) {
    const std::uint8_t* admit =
        ft_on_demand_ ? ft_table_for(dst)
                      : ft_admit_.data() + dst * mesh_.num_tiles() * kNumPorts;
    const std::uint8_t mask = admit[here * kNumPorts + port_of(in_port)];
    return (mask >> port_of(out)) & 1u;
  }
  // West-first turn model: any westward progress must happen before other
  // turns, so while dst is to the west only kWest is admissible; afterwards
  // every productive direction is.
  if (here == dst) return out == Dir::kLocal;
  const std::size_t hx = mesh_.x_of(here), dx = mesh_.x_of(dst);
  const std::size_t hy = mesh_.y_of(here), dy = mesh_.y_of(dst);
  if (dx < hx) return out == Dir::kWest;
  switch (out) {
    case Dir::kEast: return dx > hx;
    case Dir::kNorth: return dy < hy;
    case Dir::kSouth: return dy > hy;
    case Dir::kLocal: return dx == hx && dy == hy;
    case Dir::kWest: return false;
  }
  return false;
}

bool NocSim::downstream_vc_has_space(TileId router, Dir out, int vc) const {
  if (out == Dir::kLocal) return true;  // ejection is never blocked
  const TileId nb = mesh_.neighbor(router, out);
  const auto& port = routers_[nb].in[port_of(entry_port(out))];
  return port.vc[static_cast<std::size_t>(vc)].buffer.size() <
         cfg_.buffer_depth;
}

int NocSim::free_downstream_vc(TileId router, Dir out) const {
  const std::size_t v = cfg_.virtual_channels;
  const Router& r = routers_[router];
  for (std::size_t i = 0; i < v; ++i) {
    if (r.vc_owner[port_of(out) * v + i] < 0) return static_cast<int>(i);
  }
  return -1;
}

void NocSim::allocate_phase() {
  const std::size_t v = cfg_.virtual_channels;
  std::unordered_set<std::uint64_t> stall_drops;
  for (TileId t = 0; t < mesh_.num_tiles(); ++t) {
    Router& r = routers_[t];
    for (std::size_t ip = 0; ip < kNumPorts; ++ip) {
      for (std::size_t vi = 0; vi < v; ++vi) {
        VirtualChannel& vc = r.in[ip].vc[vi];
        if (vc.out_port >= 0 || vc.buffer.empty()) continue;
        const Flit& head = vc.buffer.front();
        if (head.type != FlitType::kHead &&
            head.type != FlitType::kHeadTail) {
          continue;  // mid-worm flits wait for their head's allocation
        }
        // Candidate outputs under the routing function; adaptive algorithms
        // prefer one with a free downstream VC that currently has space.
        int best_op = -1, best_vc = -1;
        for (std::size_t op = 0; op < kNumPorts; ++op) {
          const Dir out = static_cast<Dir>(op);
          if (!route_admits(t, head.dst, out, static_cast<Dir>(ip))) continue;
          if (faults_armed() && out != Dir::kLocal &&
              (!link_live(t, out) ||
               !router_live(mesh_.neighbor(t, out)))) {
            continue;  // never allocate onto a dead link or into a dead router
          }
          const int vout = free_downstream_vc(t, out);
          if (vout < 0) continue;
          if (best_op < 0) {
            best_op = static_cast<int>(op);
            best_vc = vout;
          }
          if (cfg_.routing != RoutingAlgo::kXY &&
              downstream_vc_has_space(t, out, vout)) {
            best_op = static_cast<int>(op);
            best_vc = vout;
            break;
          }
        }
        if (best_op < 0) {
          if (faults_armed() && ++vc.head_stall >= cfg_.head_stall_drop_cycles) {
            stall_drops.insert(head.packet);  // blackholed — give up on it
          }
          continue;
        }
        vc.out_port = best_op;
        vc.out_vc = best_vc;
        vc.cur_packet = head.packet;
        vc.head_stall = 0;
        r.vc_owner[static_cast<std::size_t>(best_op) * v +
                   static_cast<std::size_t>(best_vc)] =
            static_cast<int>(ip * v + vi);
      }
    }
  }
  purge_packets(stall_drops);
}

void NocSim::switch_phase() {
  // Two-phase update: decide all moves against the pre-cycle state, then
  // apply, so a flit advances at most one hop per cycle and each output
  // port carries at most one flit per cycle.
  struct Move {
    TileId router;
    std::size_t ip;
    std::size_t vi;
  };
  std::vector<Move> moves;
  moves.reserve(mesh_.num_tiles() * 2);
  const std::size_t v = cfg_.virtual_channels;

  for (TileId t = 0; t < mesh_.num_tiles(); ++t) {
    Router& r = routers_[t];
    for (std::size_t op = 0; op < kNumPorts; ++op) {
      // Round-robin over (input port, vc) candidates targeting this output.
      const std::size_t slots = kNumPorts * v;
      for (std::size_t k = 0; k < slots; ++k) {
        const std::size_t idx = (r.rr[op] + k) % slots;
        const std::size_t ip = idx / v, vi = idx % v;
        const VirtualChannel& vc = r.in[ip].vc[vi];
        if (vc.out_port != static_cast<int>(op) || vc.buffer.empty()) {
          continue;
        }
        if (!downstream_vc_has_space(t, static_cast<Dir>(op), vc.out_vc)) {
          continue;
        }
        moves.push_back(Move{t, ip, vi});
        r.rr[op] = (idx + 1) % slots;
        break;  // one flit per output port per cycle
      }
    }
  }

  for (const Move& mv : moves) {
    Router& r = routers_[mv.router];
    VirtualChannel& vc = r.in[mv.ip].vc[mv.vi];
    const Flit fl = vc.buffer.front();
    vc.buffer.pop_front();
    const auto op = static_cast<std::size_t>(vc.out_port);
    const Dir out = static_cast<Dir>(op);
    const int vout = vc.out_vc;
    const bool ends = fl.type == FlitType::kTail ||
                      fl.type == FlitType::kHeadTail;
    energy_pj_ += cfg_.energy.e_router_pj * cfg_.flit_bits;
    if (out == Dir::kLocal) {
      ++flits_ejected_;
      if (ends) {
        ++delivered_;
        const double lat = static_cast<double>(cycle_ - fl.injected_cycle);
        latency_.add(lat);
        latency_hist_.add(lat);
      }
    } else {
      energy_pj_ += cfg_.energy.e_link_pj * cfg_.flit_bits;
      ++flit_hops_;
      const TileId nb = mesh_.neighbor(mv.router, out);
      if (cfg_.routing == RoutingAlgo::kFaultTolerant &&
          (fl.type == FlitType::kHead || fl.type == FlitType::kHeadTail) &&
          mesh_.hops(nb, fl.dst) >= mesh_.hops(mv.router, fl.dst)) {
        ++reroute_hops_;  // detour: this hop did not close the distance
      }
      routers_[nb]
          .in[port_of(entry_port(out))]
          .vc[static_cast<std::size_t>(vout)]
          .buffer.push_back(fl);
    }
    if (ends) {
      r.vc_owner[op * cfg_.virtual_channels +
                 static_cast<std::size_t>(vout)] = -1;
      vc.out_port = -1;
      vc.out_vc = -1;
      vc.cur_packet = 0;
    }
  }
}

void NocSim::run(std::uint64_t cycles) {
  for (std::uint64_t c = 0; c < cycles; ++c) {
    if (fault_schedule_ != nullptr) {
      injector_.poll(static_cast<double>(cycle_),
                     [this](const fault::FaultEvent& e) {
                       apply_fault_event(e);
                     });
    }
    inject_phase();
    allocate_phase();
    switch_phase();
    // Sample buffer occupancy once per cycle.
    std::uint64_t total = 0;
    for (const auto& r : routers_) {
      for (const auto& p : r.in) {
        for (const auto& vc : p.vc) total += vc.buffer.size();
      }
    }
    occupancy_accum_ += static_cast<double>(total) /
                        static_cast<double>(routers_.size() * kNumPorts);
    ++occupancy_samples_;
    ++cycle_;
  }
}

NocStats NocSim::stats() const {
  NocStats s;
  s.packets_injected = injected_;
  s.packets_delivered = delivered_;
  s.flit_hops = flit_hops_;
  s.mean_packet_latency = latency_.mean();
  s.p99_packet_latency = latency_hist_.quantile(0.99);
  s.mean_buffer_occupancy =
      occupancy_samples_
          ? occupancy_accum_ / static_cast<double>(occupancy_samples_)
          : 0.0;
  s.accepted_flits_per_cycle =
      cycle_ ? static_cast<double>(flit_hops_) / static_cast<double>(cycle_)
             : 0.0;
  s.energy_joules = energy_pj_ * 1e-12;
  // Payload bits exclude one header flit per delivered packet.
  const double payload_flits =
      static_cast<double>(flits_ejected_) - static_cast<double>(delivered_);
  const double bits_delivered = payload_flits * cfg_.flit_bits;
  s.energy_per_bit_pj = bits_delivered > 0.0 ? energy_pj_ / bits_delivered
                                             : 0.0;
  s.packets_dropped = dropped_;
  s.delivery_ratio =
      injected_ ? static_cast<double>(delivered_) /
                      static_cast<double>(injected_)
                : 1.0;
  s.reroute_hops = reroute_hops_;
  s.faults_applied = faults_applied_;
  return s;
}

void add_pattern_flows(NocSim& sim, const Mesh2D& mesh, TrafficPattern p,
                       double packets_per_cycle, std::size_t packet_flits) {
  const std::size_t n = mesh.num_tiles();
  for (TileId src = 0; src < n; ++src) {
    switch (p) {
      case TrafficPattern::kUniformRandom: {
        // Spread the per-tile rate evenly over all other destinations.
        const double per_dst =
            packets_per_cycle / static_cast<double>(n - 1);
        for (TileId dst = 0; dst < n; ++dst) {
          if (dst == src) continue;
          sim.add_flow(Flow{src, dst, per_dst, packet_flits});
        }
        break;
      }
      case TrafficPattern::kTranspose: {
        const TileId dst = mesh.tile_at(mesh.y_of(src), mesh.x_of(src));
        if (dst != src) {
          sim.add_flow(Flow{src, dst, packets_per_cycle, packet_flits});
        }
        break;
      }
      case TrafficPattern::kBitComplement: {
        const TileId dst = n - 1 - src;
        if (dst != src) {
          sim.add_flow(Flow{src, dst, packets_per_cycle, packet_flits});
        }
        break;
      }
      case TrafficPattern::kHotspot: {
        const TileId dst =
            mesh.tile_at(mesh.width() / 2, mesh.height() / 2);
        if (dst != src) {
          sim.add_flow(Flow{src, dst, packets_per_cycle, packet_flits});
        }
        break;
      }
    }
  }
}

void add_appgraph_flows(NocSim& sim, const AppGraph& g,
                        const std::vector<TileId>& mapping,
                        double aggregate_packets_per_cycle,
                        std::size_t packet_flits) {
  if (mapping.size() != g.num_nodes()) {
    throw holms::InvalidArgument("add_appgraph_flows: mapping size mismatch");
  }
  double routed_volume = 0.0;
  for (const auto& e : g.edges()) {
    // HOLMS_LINT_ALLOW(D006): one-off feasibility sum over the edge list at flow setup
    if (mapping[e.src] != mapping[e.dst]) routed_volume += e.volume_bits;
  }
  if (routed_volume <= 0.0) return;  // everything co-located: no traffic
  for (const auto& e : g.edges()) {
    if (mapping[e.src] == mapping[e.dst]) continue;
    Flow f;
    f.src = mapping[e.src];
    f.dst = mapping[e.dst];
    f.packet_flits = packet_flits;
    f.packets_per_cycle =
        aggregate_packets_per_cycle * e.volume_bits / routed_volume;
    sim.add_flow(f);
  }
}

std::vector<SweepPoint> latency_throughput_sweep(
    const Mesh2D& mesh, TrafficPattern pattern,
    const std::vector<double>& rates, std::uint64_t cycles,
    const NocSim::Config& cfg, std::uint64_t seed) {
  std::vector<SweepPoint> out;
  out.reserve(rates.size());
  for (double rate : rates) {
    NocSim sim(mesh, cfg, sim::Rng(seed));
    add_pattern_flows(sim, mesh, pattern, rate, 8);
    sim.run(cycles);
    const NocStats s = sim.stats();
    SweepPoint pt;
    pt.injection_rate = rate;
    pt.mean_latency = s.mean_packet_latency;
    pt.p99_latency = s.p99_packet_latency;
    pt.accepted_flits_per_cycle = s.accepted_flits_per_cycle;
    pt.delivery_ratio =
        s.packets_injected
            ? static_cast<double>(s.packets_delivered) /
                  static_cast<double>(s.packets_injected)
            : 0.0;
    out.push_back(pt);
  }
  return out;
}

}  // namespace holms::noc
