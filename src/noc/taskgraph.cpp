#include "noc/taskgraph.hpp"

#include <stdexcept>

#include "exec/error.hpp"

namespace holms::noc {

std::size_t AppGraph::add_node(std::string name, double compute_cycles) {
  nodes_.push_back(AppNode{std::move(name), compute_cycles});
  return nodes_.size() - 1;
}

void AppGraph::add_edge(std::size_t src, std::size_t dst, double volume_bits,
                        double bandwidth_bps) {
  if (src >= nodes_.size() || dst >= nodes_.size() || src == dst) {
    throw holms::InvalidArgument("AppGraph::add_edge: bad endpoints");
  }
  if (!(volume_bits > 0.0)) {
    throw holms::InvalidArgument("AppGraph::add_edge: volume must be > 0");
  }
  edges_.push_back(AppEdge{src, dst, volume_bits, bandwidth_bps});
}

double AppGraph::total_volume() const {
  double v = 0.0;
  // HOLMS_LINT_ALLOW(D006): graph-constant volume sum in edge declaration order
  for (const auto& e : edges_) v += e.volume_bits;
  return v;
}

double AppGraph::node_traffic(std::size_t i) const {
  double v = 0.0;
  for (const auto& e : edges_) {
    // HOLMS_LINT_ALLOW(D006): graph-constant per-node traffic sum in edge declaration order
    if (e.src == i || e.dst == i) v += e.volume_bits;
  }
  return v;
}

AppGraph mms_graph() {
  AppGraph g;
  // Cores (compute cycles per 40 ms application iteration).
  const auto asic1 = g.add_node("asic1-vld", 2.0e6);
  const auto asic2 = g.add_node("asic2-iq", 1.2e6);
  const auto asic3 = g.add_node("asic3-idct", 3.5e6);
  const auto asic4 = g.add_node("asic4-mc", 2.4e6);
  const auto dsp1 = g.add_node("dsp1-audio-dec", 1.8e6);
  const auto dsp2 = g.add_node("dsp2-audio-fft", 2.2e6);
  const auto dsp3 = g.add_node("dsp3-audio-filt", 1.5e6);
  const auto dsp4 = g.add_node("dsp4-video-enc", 4.0e6);
  const auto dsp5 = g.add_node("dsp5-me", 4.5e6);
  const auto dsp6 = g.add_node("dsp6-dct", 2.8e6);
  const auto dsp7 = g.add_node("dsp7-vlc", 1.6e6);
  const auto dsp8 = g.add_node("dsp8-audio-enc", 2.0e6);
  const auto mem1 = g.add_node("mem1-frame", 0.0);
  const auto mem2 = g.add_node("mem2-ref", 0.0);
  const auto mem3 = g.add_node("mem3-audio", 0.0);
  const auto cpu = g.add_node("cpu-ctrl", 0.8e6);

  // Volumes in bits per iteration (video paths dominate; values scaled from
  // the MMS benchmark's kB-per-slot communication profile).
  auto kb = [](double k) { return k * 8192.0; };
  // Video decode chain.
  g.add_edge(asic1, asic2, kb(70));
  g.add_edge(asic2, asic3, kb(362));
  g.add_edge(asic3, asic4, kb(362));
  g.add_edge(asic4, mem1, kb(500));
  g.add_edge(mem1, asic4, kb(250));
  g.add_edge(cpu, asic1, kb(120));
  // Video encode chain.
  g.add_edge(mem2, dsp5, kb(670));
  g.add_edge(dsp5, dsp4, kb(380));
  g.add_edge(dsp4, dsp6, kb(362));
  g.add_edge(dsp6, dsp7, kb(362));
  g.add_edge(dsp7, cpu, kb(49));
  g.add_edge(dsp4, mem2, kb(353));
  // Audio decode.
  g.add_edge(cpu, dsp1, kb(25));
  g.add_edge(dsp1, dsp2, kb(91));
  g.add_edge(dsp2, dsp3, kb(91));
  g.add_edge(dsp3, mem3, kb(32));
  // Audio encode.
  g.add_edge(mem3, dsp8, kb(64));
  g.add_edge(dsp8, cpu, kb(16));
  // Cross traffic: control and synchronization.
  g.add_edge(cpu, mem1, kb(75));
  g.add_edge(cpu, dsp5, kb(27));
  return g;
}

AppGraph video_surveillance_graph() {
  AppGraph g;
  const auto cam0 = g.add_node("camera-in-0", 0.2e6);
  const auto cam1 = g.add_node("camera-in-1", 0.2e6);
  const auto md = g.add_node("motion-detect", 5.0e6);
  const auto filt = g.add_node("filtering", 3.2e6);
  const auto om = g.add_node("object-match", 6.5e6);
  const auto rend = g.add_node("rendering", 2.5e6);
  const auto enc = g.add_node("mpeg-encode", 4.8e6);
  const auto store = g.add_node("storage", 0.0);
  const auto net = g.add_node("net-out", 0.3e6);
  const auto ui = g.add_node("user-input", 0.1e6);
  const auto db = g.add_node("pattern-db", 0.0);
  const auto ctrl = g.add_node("controller", 0.5e6);

  auto mb = [](double m) { return m * 1e6 * 8.0; };
  // The §3.2 observation: the data flow passes motion-detect -> filtering ->
  // ... along that path the network should provide the highest bandwidth.
  g.add_edge(cam0, md, mb(3.0));
  g.add_edge(cam1, md, mb(3.0));
  g.add_edge(md, filt, mb(5.5));
  g.add_edge(filt, om, mb(4.8));
  g.add_edge(om, rend, mb(2.2));
  g.add_edge(rend, enc, mb(2.0));
  g.add_edge(enc, store, mb(0.6));
  g.add_edge(enc, net, mb(0.6));
  g.add_edge(db, om, mb(1.5));
  g.add_edge(om, db, mb(0.3));
  // Low-bandwidth control: "reading and interpreting user input requires
  // less bandwidth, as well as lesser frequent communication."
  g.add_edge(ui, ctrl, mb(0.01));
  g.add_edge(ctrl, md, mb(0.02));
  g.add_edge(ctrl, enc, mb(0.02));
  g.add_edge(ctrl, rend, mb(0.01));
  return g;
}

AppGraph random_graph(std::size_t n, sim::Rng& rng, double mean_volume) {
  if (n < 2) throw holms::InvalidArgument("random_graph: need >= 2 nodes");
  AppGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node("t" + std::to_string(i), rng.uniform(0.5e6, 5e6));
  }
  // Layered DAG: every node gets 1..3 successors among the next few nodes.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t fanout =
        static_cast<std::size_t>(rng.uniform_int(1, 3));
    for (std::size_t k = 0; k < fanout; ++k) {
      const std::size_t span = std::min<std::size_t>(n - 1 - i, 4);
      const std::size_t dst =
          i + 1 + static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(span) - 1));
      if (dst != i) {
        g.add_edge(i, dst, rng.exponential(1.0 / mean_volume));
      }
    }
  }
  return g;
}

bool is_topologically_ordered(const AppGraph& g) {
  for (const auto& e : g.edges()) {
    if (e.src >= e.dst) return false;
  }
  return true;
}

AppGraph video_surveillance_dag() {
  AppGraph g;
  const auto ui = g.add_node("user-input", 0.1e6);
  const auto ctrl = g.add_node("controller", 0.5e6);
  const auto cam0 = g.add_node("camera-in-0", 0.2e6);
  const auto cam1 = g.add_node("camera-in-1", 0.2e6);
  const auto db = g.add_node("pattern-db", 0.1e6);
  const auto md = g.add_node("motion-detect", 5.0e6);
  const auto filt = g.add_node("filtering", 3.2e6);
  const auto om = g.add_node("object-match", 6.5e6);
  const auto rend = g.add_node("rendering", 2.5e6);
  const auto enc = g.add_node("mpeg-encode", 4.8e6);
  const auto store = g.add_node("storage", 0.1e6);
  const auto net = g.add_node("net-out", 0.3e6);

  auto mb = [](double m) { return m * 1e6 * 8.0; };
  g.add_edge(ui, ctrl, mb(0.01));
  g.add_edge(ctrl, md, mb(0.02));
  g.add_edge(ctrl, rend, mb(0.01));
  g.add_edge(ctrl, enc, mb(0.02));
  g.add_edge(cam0, md, mb(3.0));
  g.add_edge(cam1, md, mb(3.0));
  g.add_edge(db, om, mb(1.5));
  g.add_edge(md, filt, mb(5.5));
  g.add_edge(filt, om, mb(4.8));
  g.add_edge(om, rend, mb(2.2));
  g.add_edge(rend, enc, mb(2.0));
  g.add_edge(enc, store, mb(0.6));
  g.add_edge(enc, net, mb(0.6));
  return g;
}

AppGraph mms_dag() {
  AppGraph g;
  const auto cpu = g.add_node("cpu-ctrl", 0.8e6);
  const auto asic1 = g.add_node("asic1-vld", 2.0e6);
  const auto asic2 = g.add_node("asic2-iq", 1.2e6);
  const auto asic3 = g.add_node("asic3-idct", 3.5e6);
  const auto asic4 = g.add_node("asic4-mc", 2.4e6);
  const auto mem1 = g.add_node("mem1-frame", 0.1e6);
  const auto mem2 = g.add_node("mem2-ref", 0.1e6);
  const auto dsp5 = g.add_node("dsp5-me", 4.5e6);
  const auto dsp4 = g.add_node("dsp4-video-enc", 4.0e6);
  const auto dsp6 = g.add_node("dsp6-dct", 2.8e6);
  const auto dsp7 = g.add_node("dsp7-vlc", 1.6e6);
  const auto dsp1 = g.add_node("dsp1-audio-dec", 1.8e6);
  const auto dsp2 = g.add_node("dsp2-audio-fft", 2.2e6);
  const auto dsp3 = g.add_node("dsp3-audio-filt", 1.5e6);
  const auto mem3 = g.add_node("mem3-audio", 0.1e6);
  const auto dsp8 = g.add_node("dsp8-audio-enc", 2.0e6);

  auto kb = [](double k) { return k * 8192.0; };
  g.add_edge(cpu, asic1, kb(120));
  g.add_edge(asic1, asic2, kb(70));
  g.add_edge(asic2, asic3, kb(362));
  g.add_edge(asic3, asic4, kb(362));
  g.add_edge(asic4, mem1, kb(500));
  g.add_edge(cpu, mem2, kb(75));
  g.add_edge(mem2, dsp5, kb(670));
  g.add_edge(dsp5, dsp4, kb(380));
  g.add_edge(dsp4, dsp6, kb(362));
  g.add_edge(dsp6, dsp7, kb(362));
  g.add_edge(cpu, dsp1, kb(25));
  g.add_edge(dsp1, dsp2, kb(91));
  g.add_edge(dsp2, dsp3, kb(91));
  g.add_edge(dsp3, mem3, kb(32));
  g.add_edge(mem3, dsp8, kb(64));
  return g;
}

AppGraph surveillance_farm_graph(std::size_t cameras) {
  if (cameras == 0) {
    throw holms::InvalidArgument("surveillance_farm_graph: need >= 1 camera");
  }
  AppGraph g;
  auto mb = [](double m) { return m * 1e6 * 8.0; };

  // Shared front matter first so every edge runs low -> high index.
  const auto ui = g.add_node("user-input", 0.1e6);
  const auto ctrl = g.add_node("controller", 0.5e6);
  const auto db = g.add_node("pattern-db", 0.1e6);
  g.add_edge(ui, ctrl, mb(0.01));

  // Per-camera §3.2 front end: camera -> motion-detect -> filter -> match.
  std::vector<std::size_t> match(cameras);
  for (std::size_t c = 0; c < cameras; ++c) {
    const std::string tag = "-" + std::to_string(c);
    const auto cam = g.add_node("camera-in" + tag, 0.2e6);
    const auto md = g.add_node("motion-detect" + tag, 5.0e6);
    const auto filt = g.add_node("filtering" + tag, 3.2e6);
    const auto om = g.add_node("object-match" + tag, 6.5e6);
    g.add_edge(cam, md, mb(3.0));
    g.add_edge(md, filt, mb(5.5));
    g.add_edge(filt, om, mb(4.8));
    g.add_edge(db, om, mb(1.5));
    // Sparse control fan-out: poking every camera would make the controller
    // a star hub; every 8th pipeline keeps it a side channel.
    if (c % 8 == 0) g.add_edge(ctrl, md, mb(0.02));
    match[c] = om;
  }

  // Every 4 cameras share one rendering stage; renderers merge into the
  // encode -> {storage, net-out} back end.
  const std::size_t groups = (cameras + 3) / 4;
  std::vector<std::size_t> rend(groups);
  for (std::size_t r = 0; r < groups; ++r) {
    rend[r] = g.add_node("rendering-" + std::to_string(r), 2.5e6);
  }
  const auto enc = g.add_node("mpeg-encode", 4.8e6);
  const auto store = g.add_node("storage", 0.1e6);
  const auto net = g.add_node("net-out", 0.3e6);
  for (std::size_t c = 0; c < cameras; ++c) {
    g.add_edge(match[c], rend[c / 4], mb(2.2));
    // Match logs ride to storage directly (the forward stand-in for the
    // om -> pattern-db write-back of video_surveillance_graph()).
    g.add_edge(match[c], store, mb(0.05));
  }
  for (std::size_t r = 0; r < groups; ++r) {
    g.add_edge(rend[r], enc, mb(2.0));
  }
  g.add_edge(enc, store, mb(0.6));
  g.add_edge(enc, net, mb(0.6));
  return g;
}

}  // namespace holms::noc
