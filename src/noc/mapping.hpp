#pragma once
// Energy-aware IP-to-tile mapping (paper §3.3, ref [20]).
//
// "a recently proposed algorithm for energy-aware mapping of the IPs onto
//  regular NoC architectures shows that more than 50% energy savings are
//  possible, for a complex video/audio application, compared to an ad-hoc
//  implementation."
//
// Three mappers are provided so the claim can be regenerated and ablated
// (experiment E4): the ad-hoc baseline (random placement), a constructive
// greedy placer, and a simulated-annealing optimizer under bandwidth
// constraints (the branch-and-bound of [20] is approximated by SA, which
// reaches the same quality regime on graphs of this size).

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "exec/aligned.hpp"
#include "exec/error.hpp"
#include "noc/taskgraph.hpp"
#include "noc/topology.hpp"
#include "sim/random.hpp"

namespace holms::noc {

/// mapping[core] = tile; injective (one core per tile at most).
using Mapping = std::vector<TileId>;

struct MappingEval {
  double comm_energy_j = 0.0;     // per application iteration
  double volume_weighted_hops = 0.0;
  double max_link_load_bps = 0.0; // busiest directed mesh link (XY routing)
  bool bandwidth_feasible = true; // all links within capacity
};

/// Evaluates a mapping: bit-energy over XY routes plus per-link bandwidth
/// accumulation.  `link_capacity_bps <= 0` disables feasibility checking.
MappingEval evaluate_mapping(const AppGraph& g, const Mesh2D& mesh,
                             const EnergyModel& energy, const Mapping& m,
                             double link_capacity_bps = 0.0);

/// Ad-hoc baseline: uniformly random injective placement.
Mapping random_mapping(std::size_t num_cores, const Mesh2D& mesh,
                       sim::Rng& rng);

/// Constructive greedy: highest-traffic core at the mesh center, then each
/// next core (by connectivity to the placed set) on the free tile minimizing
/// incremental communication energy.
Mapping greedy_mapping(const AppGraph& g, const Mesh2D& mesh,
                       const EnergyModel& energy);

/// SA move kinds (DESIGN.md §5g).  Every kind decomposes into a sequence of
/// tile-content swaps derived from the pre-move placement, so one undo
/// mechanism (unwind the swaps in reverse) reverts any of them bitwise.
enum class SaMove : std::uint8_t {
  kSwap,                 // exchange the contents of two tiles (legacy move)
  k2OptSegmentReversal,  // reverse the occupant sequence of tiles [a, b]
  kClusterRelocate,      // translate a core + its heaviest neighbors rigidly
};

/// One sampled SA move.  Field meaning depends on `kind`: kSwap uses (a, b)
/// as the two tiles; k2OptSegmentReversal uses [a, b] (a <= b) as the tile
/// range to reverse; kClusterRelocate moves `core`'s cluster so that `core`
/// lands on (or is clamped toward) tile `target`.
struct MoveDesc {
  SaMove kind = SaMove::kSwap;
  TileId a = 0;
  TileId b = 0;
  std::size_t core = 0;
  TileId target = 0;
};

struct SaOptions {
  std::size_t iterations = 20000;
  double initial_temperature = 1.0;  // relative to initial cost
  double cooling = 0.9995;
  double link_capacity_bps = 0.0;    // 0 = unconstrained
  double infeasibility_penalty = 2.0;  // cost multiplier per violation ratio
  /// Debug baseline: re-run the full O(edges * hops) evaluate_mapping for
  /// every move instead of the O(deg) delta-cost path.  Kept for A/B
  /// benchmarking and as the correctness oracle the equivalence tests and
  /// bench_micro compare against.
  bool debug_full_eval = false;

  /// Move-mix weights (DESIGN.md §5g).  With the default swap-only mix the
  /// loop consumes exactly the legacy RNG draw sequence (no selector draw);
  /// any nonzero non-swap weight switches both SA paths to the shared
  /// sample_move() stream.  Weights are relative, not normalized.
  double w_swap = 1.0;
  double w_segment_reversal = 0.0;
  double w_cluster_relocate = 0.0;

  /// Temperature reheating: after `reheat_after` consecutive rejected moves
  /// the temperature is multiplied by `reheat_factor` (a cheap restart that
  /// costs no RNG draws, so enabling it never perturbs the move stream).
  /// 0 disables reheating.
  std::size_t reheat_after = 0;
  double reheat_factor = 8.0;

  /// Optional precomputed route table for the target mesh, shared read-only
  /// across concurrent SA runs.  The table is O(tiles^2 * mean_hops) — ~90 MB
  /// at 32x32 — so the explorers build exactly one and hand it to every
  /// restart / island instead of letting each SwapEvaluator rebuild its own.
  /// nullptr = the evaluator builds (and owns) a private table.
  const XyRouteTable* routes = nullptr;

  /// Contract rule C001; called by sa_mapping.
  void validate() const {
    if (iterations == 0) {
      throw holms::InvalidArgument("SaOptions: iterations must be >= 1");
    }
    if (!(initial_temperature > 0.0)) {
      throw holms::InvalidArgument(
          "SaOptions: initial_temperature must be > 0");
    }
    if (!(cooling > 0.0 && cooling <= 1.0)) {
      throw holms::InvalidArgument("SaOptions: cooling must be in (0, 1]");
    }
    if (!(link_capacity_bps >= 0.0)) {
      throw holms::InvalidArgument(
          "SaOptions: link_capacity_bps must be >= 0");
    }
    if (!(infeasibility_penalty >= 0.0)) {
      throw holms::InvalidArgument(
          "SaOptions: infeasibility_penalty must be >= 0");
    }
    if (!(w_swap >= 0.0 && w_segment_reversal >= 0.0 &&
          w_cluster_relocate >= 0.0) ||
        !(w_swap + w_segment_reversal + w_cluster_relocate > 0.0)) {
      throw holms::InvalidArgument(
          "SaOptions: move weights must be >= 0 with a positive sum");
    }
    if (!(reheat_factor >= 1.0)) {
      throw holms::InvalidArgument("SaOptions: reheat_factor must be >= 1");
    }
  }
};

/// Draws the next SA move from the configured mix.  Shared by the incremental
/// and debug_full_eval loops so both consume the identical RNG stream: a
/// swap-only mix skips the selector draw entirely (preserving the legacy
/// sequence), mixed runs draw one selector then the kind-specific indices.
MoveDesc sample_move(sim::Rng& rng, const SaOptions& opts, std::size_t tiles,
                     std::size_t num_cores);

/// Incremental (delta-cost) mapping evaluator: the state behind sa_mapping's
/// O(deg(a) + deg(b)) swap moves.  Maintains the per-link load table, the
/// running communication energy and the busiest-link load for a mapping, and
/// updates all three by touching only the edges incident to the two swapped
/// tiles (routes come from a precomputed XyRouteTable).  apply_swap snapshots
/// every value it mutates, so revert_swap restores the pre-move state
/// *bitwise* — rejected moves (the vast majority, late in an SA schedule)
/// leave no floating-point residue.  Accepted moves accumulate one rounding
/// step each; the equivalence suite in tests/test_hotpath.cpp pins the drift
/// against full re-evaluation to < 1e-9 over 10k+ move sequences.
class SwapEvaluator {
 public:
  /// Marker for "no core on this tile" in occupant().
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  /// `shared_routes` (optional) is a caller-owned XyRouteTable for `mesh`,
  /// shared read-only across evaluators; nullptr builds a private table.
  /// Throws holms::InvalidArgument when the table's tile count mismatches.
  SwapEvaluator(const AppGraph& g, const Mesh2D& mesh,
                const EnergyModel& energy, Mapping m,
                double link_capacity_bps = 0.0,
                double infeasibility_penalty = 2.0,
                const XyRouteTable* shared_routes = nullptr);

  /// Current penalized cost: comm energy, scaled by the same overload
  /// penalty sa_mapping's full-evaluation path applies.
  double cost();
  double comm_energy_j() const { return energy_j_; }
  /// Load of the busiest directed link (lazily rescanned after a decrement
  /// dethroned the previous maximum).  Loads are maintained across moves
  /// only under a bandwidth constraint (link_capacity_bps > 0) — they only
  /// feed the overload penalty, so unconstrained runs skip the bookkeeping;
  /// there this reflects the mapping as of the last rebuild().
  double max_link_load_bps();

  const Mapping& mapping() const { return m_; }
  std::size_t occupant(TileId t) const { return occupant_[t]; }

  /// Swaps the contents of tiles a and b (core<->core or core<->empty) and
  /// returns the new penalized cost.  Cost of the update is
  /// O((deg(a)+deg(b)) * mean_hops) link-load adjustments.
  double apply_swap(TileId a, TileId b);

  /// Applies a full move descriptor (swap / segment reversal / cluster
  /// relocation) as one transaction and returns the new penalized cost.
  /// Every move is executed as the tile-content swap sequence expand_move
  /// derives from the pre-move placement, each swap O(deg)-incremental, so
  /// a k-swap move costs k swap updates and reverts bitwise like a single
  /// swap (DESIGN.md §5g).
  double apply_move(const MoveDesc& mv);

  /// Restores the exact pre-apply state (bitwise) of the pending move,
  /// whether opened by apply_swap or apply_move.  Only valid once per move.
  void revert_move();
  void revert_swap() { revert_move(); }

  /// Accepts the pending move: discards the undo log.  Every apply_* must
  /// be resolved by exactly one commit or revert.
  void commit_move() { move_open_ = false; }
  void commit_swap() { move_open_ = false; }

  /// Recomputes every cached quantity from the mapping (drift control /
  /// debugging; never required by sa_mapping).
  void rebuild();

 private:
  void begin_move();
  void swap_step(TileId a, TileId b);
  void add_route_load(TileId src, TileId dst, double bw);
  void sub_route_load(TileId src, TileId dst, double bw);

  const AppGraph& g_;
  const Mesh2D& mesh_;
  const EnergyModel& energy_;
  double capacity_;
  double penalty_;

  std::optional<XyRouteTable> owned_routes_;  // absent when sharing
  const XyRouteTable* routes_;                // table in use (owned or shared)
  // Incident-occurrence CSR: for each core, the edges touching it, encoded
  // as edge_index * 2 + (1 if the core is the edge's src endpoint).
  std::vector<std::uint32_t> inc_offsets_;
  std::vector<std::uint32_t> inc_edges_;

  Mapping m_;
  std::vector<std::size_t> occupant_;  // tile -> core, kEmpty if free
  std::vector<double> link_load_;
  double energy_j_ = 0.0;
  double max_load_ = 0.0;
  bool max_dirty_ = false;

  // Undo log of the pending move: touched link loads (unwound in reverse),
  // scalar snapshots, and the executed tile-swap sequence (unwound in
  // reverse — the exact inverse of any multi-swap transaction).
  std::vector<std::pair<std::uint32_t, double>> undo_links_;
  double undo_energy_ = 0.0;
  double undo_max_ = 0.0;
  bool undo_dirty_ = false;
  std::vector<std::pair<TileId, TileId>> undo_swaps_;
  std::vector<std::pair<TileId, TileId>> move_steps_;  // expand_move scratch
  // swap_step gather scratch for the exec::simd transfer_delta kernel: the
  // touched edges' {volume, old hops, new hops}, in visit order.
  exec::aligned_vector<double> delta_vol_;
  exec::aligned_vector<double> delta_old_hops_;
  exec::aligned_vector<double> delta_new_hops_;
  // Per-core {count, n1, n2}: the <=2 heaviest-volume neighbors that ride
  // along on a cluster relocation.  Graph-only, so built once at
  // construction instead of rescanning the edge list on every cluster move.
  std::vector<std::array<std::size_t, 3>> cluster_top_;
  bool move_open_ = false;
};

/// Simulated-annealing energy-aware mapping (swap moves, Metropolis accept).
/// Starts from the greedy seed; equivalent to
/// sa_mapping_from(greedy_mapping(...)).
Mapping sa_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy, sim::Rng& rng,
                   const SaOptions& opts = {});

/// SA refinement from a caller-supplied initial placement — the island
/// explorer's incumbent-seeded local search (DESIGN.md §5l).  Same Metropolis
/// loop and RNG draw sequence as sa_mapping(), only the starting point (which
/// costs no draws) differs.
Mapping sa_mapping_from(const AppGraph& g, const Mesh2D& mesh,
                        const EnergyModel& energy, Mapping initial,
                        sim::Rng& rng, const SaOptions& opts = {});

/// Exact branch-and-bound mapping — the actual algorithm of [20].  Explores
/// core placements in traffic order, pruning any partial placement whose
/// cost plus an optimistic single-hop bound on the unplaced edges already
/// exceeds the incumbent.  Exponential worst case: intended for graphs of
/// up to ~10 cores (optimality reference for the heuristics).
/// `node_budget` caps the search (0 = unlimited); returns the incumbent.
Mapping bb_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy,
                   std::size_t node_budget = 0);

}  // namespace holms::noc
