#pragma once
// Energy-aware IP-to-tile mapping (paper §3.3, ref [20]).
//
// "a recently proposed algorithm for energy-aware mapping of the IPs onto
//  regular NoC architectures shows that more than 50% energy savings are
//  possible, for a complex video/audio application, compared to an ad-hoc
//  implementation."
//
// Three mappers are provided so the claim can be regenerated and ablated
// (experiment E4): the ad-hoc baseline (random placement), a constructive
// greedy placer, and a simulated-annealing optimizer under bandwidth
// constraints (the branch-and-bound of [20] is approximated by SA, which
// reaches the same quality regime on graphs of this size).

#include <vector>

#include "noc/taskgraph.hpp"
#include "noc/topology.hpp"
#include "sim/random.hpp"

namespace holms::noc {

/// mapping[core] = tile; injective (one core per tile at most).
using Mapping = std::vector<TileId>;

struct MappingEval {
  double comm_energy_j = 0.0;     // per application iteration
  double volume_weighted_hops = 0.0;
  double max_link_load_bps = 0.0; // busiest directed mesh link (XY routing)
  bool bandwidth_feasible = true; // all links within capacity
};

/// Evaluates a mapping: bit-energy over XY routes plus per-link bandwidth
/// accumulation.  `link_capacity_bps <= 0` disables feasibility checking.
MappingEval evaluate_mapping(const AppGraph& g, const Mesh2D& mesh,
                             const EnergyModel& energy, const Mapping& m,
                             double link_capacity_bps = 0.0);

/// Ad-hoc baseline: uniformly random injective placement.
Mapping random_mapping(std::size_t num_cores, const Mesh2D& mesh,
                       sim::Rng& rng);

/// Constructive greedy: highest-traffic core at the mesh center, then each
/// next core (by connectivity to the placed set) on the free tile minimizing
/// incremental communication energy.
Mapping greedy_mapping(const AppGraph& g, const Mesh2D& mesh,
                       const EnergyModel& energy);

struct SaOptions {
  std::size_t iterations = 20000;
  double initial_temperature = 1.0;  // relative to initial cost
  double cooling = 0.9995;
  double link_capacity_bps = 0.0;    // 0 = unconstrained
  double infeasibility_penalty = 2.0;  // cost multiplier per violation ratio
};

/// Simulated-annealing energy-aware mapping (swap moves, Metropolis accept).
Mapping sa_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy, sim::Rng& rng,
                   const SaOptions& opts = {});

/// Exact branch-and-bound mapping — the actual algorithm of [20].  Explores
/// core placements in traffic order, pruning any partial placement whose
/// cost plus an optimistic single-hop bound on the unplaced edges already
/// exceeds the incumbent.  Exponential worst case: intended for graphs of
/// up to ~10 cores (optimality reference for the heuristics).
/// `node_budget` caps the search (0 = unlimited); returns the incumbent.
Mapping bb_mapping(const AppGraph& g, const Mesh2D& mesh,
                   const EnergyModel& energy,
                   std::size_t node_budget = 0);

}  // namespace holms::noc
