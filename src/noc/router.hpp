#pragma once
// Flit-level wormhole NoC simulator (paper §3.2/§3.3, refs [21][22]).
//
// Cycle-driven 2D-mesh network: 5-port routers with finite per-virtual-
// channel input buffers, XY or west-first routing, per-output round-robin
// switch arbitration, and wormhole switching — once a head flit claims an
// (output port, downstream VC) pair the worm holds it until the tail
// passes.  This is exactly the mechanism behind the paper's packet-size
// trade-off: "large packets might prohibitively long block a network link
// causing a degradation in the allowable network throughput."  Virtual
// channels relieve that head-of-line blocking at a buffer-area cost — a
// §3.3-style customization knob.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "noc/topology.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

#include "exec/error.hpp"

namespace holms::noc {

enum class FlitType : std::uint8_t { kHead, kBody, kTail, kHeadTail };

struct Flit {
  FlitType type = FlitType::kHead;
  std::uint64_t packet = 0;
  TileId src = 0;
  TileId dst = 0;
  std::uint64_t injected_cycle = 0;  // when the packet entered the source queue
};

/// A constant-rate or Bernoulli packet flow between two tiles.
struct Flow {
  TileId src = 0;
  TileId dst = 0;
  double packets_per_cycle = 0.01;  // Bernoulli injection probability
  std::size_t packet_flits = 8;     // including the head flit
};

struct NocStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flit_hops = 0;
  double mean_packet_latency = 0.0;   // cycles, source-queue entry -> tail eject
  double p99_packet_latency = 0.0;
  double mean_buffer_occupancy = 0.0; // flits per router input port
  double accepted_flits_per_cycle = 0.0;
  double energy_joules = 0.0;
  /// Energy per delivered *payload* bit (one flit per packet is the header).
  double energy_per_bit_pj = 0.0;
  /// Packets lost to faults: worms purged off failing links/routers, packets
  /// sourced at a dead router, and heads that exceeded the stall-drop budget
  /// (blackholed by a non-fault-tolerant routing function).
  std::uint64_t packets_dropped = 0;
  /// delivered / injected (1.0 when nothing was injected).
  double delivery_ratio = 1.0;
  /// Non-productive head-flit hops taken by kFaultTolerant detours (hops
  /// that did not reduce the Manhattan distance to the destination).
  std::uint64_t reroute_hops = 0;
  /// Fault-schedule events applied so far.
  std::uint64_t faults_applied = 0;
};

/// Routing function used by the routers.
enum class RoutingAlgo {
  kXY,            // deterministic dimension-ordered (deadlock-free)
  kWestFirst,     // partially adaptive turn-model routing (deadlock-free):
                  // all westward hops first, then adapt among the productive
                  // east/north/south outputs by downstream buffer space
  kFaultTolerant, // odd-even turn-model adaptive routing over the *live*
                  // subgraph: per-destination BFS route tables rebuilt on
                  // every fault/repair event detour around dead links and
                  // routers, possibly non-minimally (counted as
                  // reroute_hops), while the static odd-even turn
                  // prohibitions keep every reachable configuration
                  // deadlock-free (DESIGN.md §5e)
};

/// The cycle-driven mesh network.
class NocSim {
 public:
  struct Config {
    std::size_t buffer_depth = 4;     // flits per virtual channel
    std::size_t virtual_channels = 1; // VCs per input port
    double flit_bits = 32.0;
    EnergyModel energy{};
    RoutingAlgo routing = RoutingAlgo::kXY;
    /// Anti-wedge safety valve, consulted only once faults are armed: a head
    /// flit that fails allocation this many consecutive cycles (its
    /// destination unreachable or its only admissible link dead) has its
    /// whole packet dropped and counted, so a blackhole never wedges the
    /// cycle loop or starves the VCs behind it.
    std::uint32_t head_stall_drop_cycles = 1024;
    /// kFaultTolerant admit-mask memory: meshes with at least this many tiles
    /// skip the O(tiles^2 * 5) precomputed table and run per-destination
    /// reverse BFS on demand, caching results in a small LRU keyed by fault
    /// epoch (every fault/repair event starts a new epoch).  Routes are
    /// identical either way; only the memory/latency trade-off moves.  The
    /// default flips at 32x32.
    std::size_t ft_on_demand_min_tiles = 1024;
  };

  NocSim(const Mesh2D& mesh, const Config& cfg, sim::Rng rng);

  void add_flow(const Flow& f);

  /// Advances `cycles` network cycles.
  void run(std::uint64_t cycles);

  NocStats stats() const;
  std::uint64_t now() const { return cycle_; }

  /// Arms fault injection from a shared schedule.  Event times are cycles;
  /// Target::kLink ids are Mesh2D undirected-link ids, Target::kNode /
  /// Target::kTile ids are tile ids (both address the tile's router).
  /// Out-of-range ids throw holms::InvalidArgument.  The schedule must
  /// outlive the simulator.
  void attach_fault_schedule(const fault::FaultSchedule* schedule);

  /// Manual fault control (also used by the schedule replay): fails/repairs
  /// the physical link leaving `t` in direction `d` — both directed channels
  /// — purging in-flight worms on failure.
  void set_link_up(TileId t, Dir d, bool up);
  /// Fails/repairs a tile's router, purging everything buffered in or
  /// allocated into it on failure.
  void set_router_up(TileId t, bool up);

  bool link_up(TileId t, Dir d) const {
    return link_up_.empty() || link_up_[mesh_.link_index(t, d)] != 0;
  }
  bool router_up(TileId t) const {
    return router_up_.empty() || router_up_[t] != 0;
  }

 private:
  struct VirtualChannel {
    std::deque<Flit> buffer;
    int out_port = -1;  // output port the resident worm holds (-1 free)
    int out_vc = -1;    // downstream VC the worm was allocated
    std::uint64_t cur_packet = 0;  // packet id of the allocated worm (0 none)
    std::uint32_t head_stall = 0;  // consecutive failed head allocations
  };

  struct InputPort {
    std::vector<VirtualChannel> vc;
  };

  struct Router {
    std::vector<InputPort> in;  // kNumPorts entries
    // owner[op * V + v]: which (input port, input vc) owns downstream VC v
    // of output port op; -1 = free.  Encoded as ip * V + vc_in.
    std::vector<int> vc_owner;
    // Round-robin pointer per output port for switch arbitration.
    std::size_t rr[kNumPorts] = {0, 0, 0, 0, 0};
  };

  struct SourceState {
    std::deque<Flit> queue;       // flits awaiting injection, packet order
    std::size_t inject_vc = 0;    // VC the current packet streams into
    std::size_t remaining = 0;    // flits of the current packet still to go
  };

  void inject_phase();
  void allocate_phase();
  void switch_phase();
  bool route_admits(TileId here, TileId dst, Dir out, Dir in_port) const;
  /// Free downstream VC index at neighbor entry port, or -1.
  int free_downstream_vc(TileId router, Dir out) const;
  bool downstream_vc_has_space(TileId router, Dir out, int vc) const;

  // --- fault machinery (inert until armed: link_up_ stays empty) ---
  bool faults_armed() const { return !link_up_.empty(); }
  void arm_faults();
  bool link_live(TileId t, Dir d) const {
    return link_up_.empty() || link_up_[mesh_.link_index(t, d)] != 0;
  }
  bool router_live(TileId t) const {
    return router_up_.empty() || router_up_[t] != 0;
  }
  void apply_fault_event(const fault::FaultEvent& e);
  /// Removes every trace of the given packets: VC allocations (via
  /// cur_packet), buffered flits, and source-queue flits; counts them as
  /// dropped.
  void purge_packets(const std::unordered_set<std::uint64_t>& pids);
  /// True iff the odd-even turn model admits moving in direction `move` out
  /// of `t_from` for a worm that entered via `in_from`, over live links only.
  bool move_legal(TileId t_from, Dir in_from, Dir move) const;
  /// Rebuilds the kFaultTolerant per-destination admit masks (BFS over the
  /// (tile, in_port) state graph on live links honoring the turn model).
  /// In on-demand mode this only bumps ft_epoch_, invalidating the LRU.
  void rebuild_ft_tables();
  /// One destination's reverse BFS: fills `admit` (num_tiles * kNumPorts
  /// masks).  Shared verbatim by the full-table and on-demand paths so their
  /// routes are identical by construction.
  void compute_ft_admit(TileId dst, std::uint8_t* admit) const;
  /// On-demand mode: current-epoch admit table for `dst` from the LRU,
  /// recomputed via compute_ft_admit on a miss.
  const std::uint8_t* ft_table_for(TileId dst) const;

  const Mesh2D& mesh_;
  Config cfg_;
  sim::Rng rng_;
  std::vector<Router> routers_;
  std::vector<Flow> flows_;
  std::vector<SourceState> source_;
  std::uint64_t cycle_ = 0;
  std::uint64_t next_packet_ = 1;

  const fault::FaultSchedule* fault_schedule_ = nullptr;
  fault::FaultInjector injector_;
  std::vector<std::uint8_t> link_up_;    // per directed link; empty = armed off
  std::vector<std::uint8_t> router_up_;  // per tile; empty = armed off
  // kFaultTolerant admit masks: [(dst*T + tile)*kNumPorts + in_port] -> 5-bit
  // output-direction mask.  Rebuilt only on fault/repair events.  Empty in
  // on-demand mode, where ft_cache_ holds per-destination tables instead.
  std::vector<std::uint8_t> ft_admit_;
  bool ft_on_demand_ = false;       // num_tiles >= cfg.ft_on_demand_min_tiles
  std::uint64_t ft_epoch_ = 0;      // bumped per fault/repair; stale = miss
  struct FtCacheEntry {
    TileId dst = 0;
    std::uint64_t epoch = 0;
    std::uint64_t last_use = 0;     // LRU clock; evict the minimum
    std::vector<std::uint8_t> admit;  // num_tiles * kNumPorts masks
  };
  static constexpr std::size_t kFtCacheCapacity = 64;
  // route_admits() is const and hot, so the cache bookkeeping is mutable.
  mutable std::vector<FtCacheEntry> ft_cache_;
  mutable std::uint64_t ft_cache_tick_ = 0;
  mutable std::size_t ft_mru_ = 0;  // last hit — checked before the scan
  // BFS scratch reused across compute_ft_admit calls.
  mutable std::vector<std::uint32_t> ft_dist_;
  mutable std::vector<std::uint32_t> ft_queue_;

  std::uint64_t injected_ = 0, delivered_ = 0, flit_hops_ = 0;
  std::uint64_t flits_ejected_ = 0;
  std::uint64_t dropped_ = 0, reroute_hops_ = 0, faults_applied_ = 0;
  double energy_pj_ = 0.0;
  sim::OnlineStats latency_;
  sim::Histogram latency_hist_{0.0, 4096.0, 4096};
  double occupancy_accum_ = 0.0;
  std::uint64_t occupancy_samples_ = 0;
};

/// Classic synthetic traffic patterns for network characterization.
enum class TrafficPattern {
  kUniformRandom,   // every source spreads over all destinations
  kTranspose,       // (x, y) -> (y, x)
  kBitComplement,   // tile i -> N-1-i
  kHotspot,         // everyone -> the center tile
};

/// Installs one pattern's flows at `packets_per_cycle` injection per tile.
void add_pattern_flows(NocSim& sim, const Mesh2D& mesh, TrafficPattern p,
                       double packets_per_cycle, std::size_t packet_flits);

/// Replays an application's communication graph under a mapping: one flow
/// per edge whose endpoints landed on distinct tiles, with injection rates
/// proportional to edge volume and normalized so they sum to
/// `aggregate_packets_per_cycle`.
class AppGraph;  // fwd (taskgraph.hpp)
void add_appgraph_flows(NocSim& sim, const class AppGraph& g,
                        const std::vector<TileId>& mapping,
                        double aggregate_packets_per_cycle,
                        std::size_t packet_flits);

/// One point of the latency/throughput characterization curve.
struct SweepPoint {
  double injection_rate = 0.0;  // packets per cycle per tile
  double mean_latency = 0.0;
  double p99_latency = 0.0;
  double accepted_flits_per_cycle = 0.0;
  double delivery_ratio = 0.0;
};

/// Sweeps injection rate for a pattern — the standard NoC evaluation curve
/// ([21][22]): flat latency at low load, knee near saturation, then
/// divergence while accepted throughput flattens.
std::vector<SweepPoint> latency_throughput_sweep(
    const Mesh2D& mesh, TrafficPattern pattern,
    const std::vector<double>& rates, std::uint64_t cycles,
    const NocSim::Config& cfg, std::uint64_t seed);

}  // namespace holms::noc
