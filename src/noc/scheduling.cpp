#include "noc/scheduling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::noc {
namespace {

// Longest-path-to-sink priority (in seconds at the given per-task times).
std::vector<double> critical_lengths(const SchedProblem& p,
                                     const std::vector<double>& exec_time) {
  const std::size_t n = p.tasks.size();
  std::vector<double> cl(n, 0.0);
  // Process in reverse topological order; tasks are required to be listed in
  // topological order (factories guarantee it; validated here).
  for (std::size_t i = n; i-- > 0;) {
    cl[i] = exec_time[i];
    for (const auto& d : p.deps) {
      if (d.src == i) {
        if (d.dst <= i) {
          throw holms::InvalidArgument(
              "SchedProblem: tasks must be topologically ordered");
        }
        cl[i] = std::max(cl[i], exec_time[i] + cl[d.dst]);
      }
    }
  }
  return cl;
}

double comm_delay(const SchedProblem& p, const SchedDep& d) {
  const TileId a = p.tile_of[d.src], b = p.tile_of[d.dst];
  if (a == b) return 0.0;
  const std::size_t h = p.mesh.hops(a, b);
  return d.volume_bits / p.link_bandwidth_bps +
         static_cast<double>(h) * p.hop_latency_s;
}

ScheduleResult list_schedule(const SchedProblem& p,
                             const std::vector<std::size_t>& level_of) {
  const std::size_t n = p.tasks.size();
  ScheduleResult r;
  r.placement.resize(n);
  std::vector<double> exec(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& op = p.points.at(level_of[i]);
    exec[i] = p.tasks[i].cycles / op.frequency_hz;
    r.placement[i].dvs_level = level_of[i];
  }
  const std::vector<double> prio = critical_lengths(p, exec);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return prio[a] > prio[b];
  });

  std::vector<double> tile_free(p.mesh.num_tiles(), 0.0);
  std::vector<bool> scheduled(n, false);
  std::size_t done = 0;
  while (done < n) {
    bool progressed = false;
    for (std::size_t idx : order) {
      if (scheduled[idx]) continue;
      // All predecessors scheduled?
      double ready = 0.0;
      bool ok = true;
      for (const auto& d : p.deps) {
        if (d.dst != idx) continue;
        if (!scheduled[d.src]) {
          ok = false;
          break;
        }
        ready = std::max(ready, r.placement[d.src].finish + comm_delay(p, d));
      }
      if (!ok) continue;
      const TileId tile = p.tile_of[idx];
      const double start = std::max(ready, tile_free[tile]);
      r.placement[idx].start = start;
      r.placement[idx].finish = start + exec[idx];
      tile_free[tile] = r.placement[idx].finish;
      scheduled[idx] = true;
      ++done;
      progressed = true;
    }
    if (!progressed) {
      throw holms::InvalidArgument("list_schedule: dependency cycle");
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    r.makespan_s = std::max(r.makespan_s, r.placement[i].finish);
    r.compute_energy_j +=
        p.power.energy_for_cycles(p.tasks[i].cycles, p.points[level_of[i]]);
  }
  for (const auto& d : p.deps) {
    const std::size_t h = p.mesh.hops(p.tile_of[d.src], p.tile_of[d.dst]);
    r.comm_energy_j += p.noc_energy.transfer_energy(d.volume_bits, h);
  }
  // Idle (leakage) energy over the period on every tile actually used.
  std::vector<double> busy(p.mesh.num_tiles(), 0.0);
  for (std::size_t i = 0; i < n; ++i) busy[p.tile_of[i]] += exec[i];
  for (TileId t = 0; t < p.mesh.num_tiles(); ++t) {
    if (busy[t] > 0.0) {
      r.idle_energy_j +=
          p.idle_power_w * std::max(0.0, p.deadline_s - busy[t]);
    }
  }
  r.total_energy_j = r.compute_energy_j + r.comm_energy_j + r.idle_energy_j;
  r.deadline_met = r.makespan_s <= p.deadline_s + 1e-12;
  return r;
}

void validate_problem(const SchedProblem& p) {
  if (p.tasks.empty() || p.tile_of.size() != p.tasks.size()) {
    throw holms::InvalidArgument("SchedProblem: mapping/task size mismatch");
  }
  for (TileId t : p.tile_of) {
    if (t >= p.mesh.num_tiles()) {
      throw holms::InvalidArgument("SchedProblem: tile out of range");
    }
  }
  if (p.points.empty()) {
    throw holms::InvalidArgument("SchedProblem: need operating points");
  }
}

}  // namespace

ScheduleResult schedule_edf(const SchedProblem& p) {
  validate_problem(p);
  const std::vector<std::size_t> top(p.tasks.size(), p.points.size() - 1);
  return list_schedule(p, top);
}

ScheduleResult schedule_energy_aware(const SchedProblem& p,
                                     SlackPolicy policy) {
  validate_problem(p);
  const std::size_t n = p.tasks.size();
  const std::size_t top = p.points.size() - 1;
  std::vector<std::size_t> levels(n, top);
  ScheduleResult fast = list_schedule(p, levels);
  if (!fast.deadline_met) return fast;  // no slack to spend

  const double slack_factor = p.deadline_s / std::max(fast.makespan_s, 1e-12);

  if (policy == SlackPolicy::kProportional) {
    // Stretch everything by the global factor (with a safety margin), then
    // repair by raising levels on violation.
    for (std::size_t i = 0; i < n; ++i) {
      const double t_fast = p.tasks[i].cycles / p.points[top].frequency_hz;
      const double target = t_fast * slack_factor * 0.97;
      std::size_t lvl = top;
      for (std::size_t l = 0; l <= top; ++l) {
        if (p.tasks[i].cycles / p.points[l].frequency_hz <= target) {
          lvl = l;
          break;
        }
      }
      levels[i] = lvl;
    }
    ScheduleResult r = list_schedule(p, levels);
    // Repair loop: bump the level of tasks on the critical path until the
    // deadline holds again (terminates at all-top).
    while (!r.deadline_met) {
      // Find the latest-finishing task that is below top level.
      std::size_t worst = n;
      double worst_finish = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (levels[i] < top && r.placement[i].finish > worst_finish) {
          worst_finish = r.placement[i].finish;
          worst = i;
        }
      }
      if (worst == n) break;
      ++levels[worst];
      r = list_schedule(p, levels);
    }
    return r;
  }

  // kGreedyLongest: lower the DVS level of the most energy-hungry tasks one
  // step at a time while the deadline still holds.
  ScheduleResult best = fast;
  for (;;) {
    std::vector<std::size_t> cand_order(n);
    std::iota(cand_order.begin(), cand_order.end(), 0);
    std::sort(cand_order.begin(), cand_order.end(),
              [&](std::size_t a, std::size_t b) {
                return p.tasks[a].cycles > p.tasks[b].cycles;
              });
    bool improved = false;
    for (std::size_t i : cand_order) {
      if (levels[i] == 0) continue;
      --levels[i];
      ScheduleResult r = list_schedule(p, levels);
      if (r.deadline_met && r.total_energy_j < best.total_energy_j) {
        best = r;
        improved = true;
      } else {
        ++levels[i];
      }
    }
    if (!improved) break;
  }
  return best;
}

bool schedule_is_valid(const SchedProblem& p, const ScheduleResult& r) {
  const std::size_t n = p.tasks.size();
  if (r.placement.size() != n) return false;
  for (const auto& d : p.deps) {
    if (r.placement[d.dst].start <
        r.placement[d.src].finish + comm_delay(p, d) - 1e-9) {
      return false;
    }
  }
  // Tile exclusivity.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (p.tile_of[a] != p.tile_of[b]) continue;
      const auto& pa = r.placement[a];
      const auto& pb = r.placement[b];
      if (pa.start < pb.finish - 1e-9 && pb.start < pa.finish - 1e-9) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace holms::noc
