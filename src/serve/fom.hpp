#pragma once
// holms::serve — session state machines for the multi-tenant service layer
// (DESIGN.md §5h).
//
// The scheduling model follows the request-handler ("reqh"/FOM) pattern from
// large storage servers: a *FOM* (fault-tolerant operation machine) is a
// resumable state machine representing one in-flight operation — here, one
// streaming session.  FOMs never block and never own a thread.  Each FOM
// advances by running `step()`, which executes exactly one phase transition
// and then *yields*, telling the scheduler when it must run next.  Sessions
// are sharded across a fixed number of *localities* — independent scheduling
// domains, each with its own DES kernel (`sim::Simulator`) and its own
// statistics — and a worker pool runs localities, not sessions.  The result:
//
//   * thread-per-session is replaced by state-machine-per-session, so tens
//     of thousands of concurrent sessions cost memory, not threads;
//   * all blocking is replaced by yielding to the locality's event queue —
//     enforced tree-wide by holms_lint rule D005;
//   * the locality count is fixed by configuration (never by thread count),
//     and localities share no mutable state, so aggregate results are
//     bitwise thread-count invariant (same discipline as core::explore()).
//
// The concrete session machines live with their domains —
// streaming::FgsSessionFom (per-timeslot FGS adaptation) and
// stream::Mpeg2SessionFom (Fig.1(b) decoder network on a shared kernel) —
// and plug into the ServiceManager through the protocol below.

#include <concepts>

namespace holms::serve {

/// The step protocol every session state machine implements.
///
///   double step();   // run one phase transition; returns the simulated
///                    // delay until the next step: 0.0 = again within the
///                    // same timestamp, > 0 = park for that long on the
///                    // locality's event queue, < 0 = finished
///   bool done();     // true once the final report is available
///
/// step() must be non-blocking (no sleeps, no lock waits — lint rule D005)
/// and must touch only session-local state plus the locality's Simulator,
/// so every FOM on a locality can interleave at event granularity.
template <typename T>
concept SessionFom = requires(T t, const T ct) {
  { t.step() } -> std::convertible_to<double>;
  { ct.done() } -> std::convertible_to<bool>;
};

}  // namespace holms::serve
