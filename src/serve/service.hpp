#pragma once
// ServiceManager: a multi-tenant streaming server multiplexing many FGS and
// MPEG-2 sessions as non-blocking state machines (serve/fom.hpp) over a
// fixed set of localities, each a private DES kernel, run by an
// exec::ThreadPool.  DESIGN.md §5h.
//
// Determinism contract: session ids, per-session RNG streams
// (exec::stream_seed(seed, id)), locality assignment (id % localities) and
// the per-locality event order are all pure functions of the configuration
// and admission order.  Localities are merged in index order, so the report
// — including its fingerprint() — is bitwise identical for any thread count.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/schedule.hpp"
#include "sim/stats.hpp"
#include "stream/mpeg2.hpp"
#include "streaming/fgs.hpp"
#include "traffic/video.hpp"

namespace holms::serve {

struct ServeOptions {
  /// Scheduling domains.  This — not the thread count — is the unit of
  /// parallelism and of determinism: results depend on `localities`, never
  /// on `threads`.
  std::size_t localities = 8;
  std::size_t threads = 0;  // 0 = hardware concurrency, 1 = serial
  /// Admission control: sessions beyond this are rejected outright.
  std::size_t max_sessions = 100000;
  /// Load shedding: FGS sessions admitted at or above
  /// `degrade_watermark * max_sessions` active sessions are forced onto the
  /// kGracefulDegradation ladder (shed enhancement first, protect base).
  double degrade_watermark = 0.85;
  /// > 0 quantizes every inter-step delay up to the next multiple of this
  /// grid: sessions with equal slot lengths then dispatch in same-timestamp
  /// batches, and the induced lag is recorded in ServeReport::dispatch_lag.
  double dispatch_quantum_s = 0.0;
  /// Channel loss for FGS sessions on a locality while a scheduled fault
  /// (Target::kNode, id == locality index) is active / not active.
  double fault_loss = 0.3;
  double nominal_loss = 0.0;
  /// Loss while only transient soft faults (kSoftFail, cleared by kScrub
  /// scrubbing passes — see fault::FaultSchedule::soft) are pending on the
  /// locality; negative = reuse fault_loss.  Soft corruption drives the
  /// graceful-degradation ladder without a repair crew ever being involved.
  double soft_loss = -1.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Aggregate service-level report, merged across localities in index order.
struct ServeReport {
  std::size_t sessions_offered = 0;
  std::size_t sessions_admitted = 0;
  std::size_t sessions_rejected = 0;
  std::size_t sessions_degraded = 0;  // forced onto the graceful ladder
  std::size_t sessions_completed = 0;
  std::uint64_t events_dispatched = 0;  // FOM steps executed
  std::size_t faults_in_window = 0;     // scheduled fault events <= horizon

  sim::OnlineStats session_psnr_db;      // per-session mean PSNR
  sim::OnlineStats session_energy_j;     // per-session client energy
  sim::OnlineStats session_shed;         // per-session mean enhancement shed
  sim::OnlineStats mpeg2_frame_latency;  // per-session mean frame latency
  std::uint64_t mpeg2_frames_out = 0;

  // Streaming quantile sketches (p50/p99/p999) over *every* slot served.
  sim::QuantileSketch slot_psnr_db{1.0, 128.0, 32};
  sim::QuantileSketch slot_load{1e-3, 64.0, 32};
  sim::QuantileSketch dispatch_lag_s{1e-6, 64.0, 32};  // quantum mode only

  /// Order-insensitive digest of counters, sketch contents and session
  /// aggregates; the thread-count-invariance gate compares these bitwise.
  std::uint64_t fingerprint() const;
};

/// Per-slice progress callback: (locality index, locality sim time, events
/// dispatched so far on that locality).  With threads > 1 it is invoked
/// concurrently from pool workers and must be thread-safe.
using SliceObserver =
    std::function<void(std::size_t, double, std::uint64_t)>;

class ServiceManager {
 public:
  /// Returned by add_* when admission control rejects the session.
  static constexpr std::size_t kRejected = static_cast<std::size_t>(-1);

  explicit ServiceManager(const ServeOptions& opt);
  ~ServiceManager();
  ServiceManager(const ServiceManager&) = delete;
  ServiceManager& operator=(const ServiceManager&) = delete;

  /// Arms per-locality fault feeds: events with Target::kNode and
  /// id == locality index give that locality's FGS sessions a SlotLossTrace
  /// (loss `fault_loss` while active), which drives the graceful-degradation
  /// ladder.  Must be called before the first session is admitted; throws
  /// RuntimeError otherwise.  Pass nullptr to clear.
  void attach_fault_schedule(const fault::FaultSchedule* schedule);

  /// Admits one FGS session of `slots` timeslots; returns its id, or
  /// kRejected when the admission cap is reached.  Above the degrade
  /// watermark the session is forced onto FgsPolicy::kGracefulDegradation.
  std::size_t add_fgs_session(streaming::FgsPolicy policy,
                              const streaming::FgsConfig& cfg,
                              std::size_t slots);

  /// Admits one MPEG-2 decode session (its own Fig.1(b) network on the
  /// locality's kernel); the frame trace is drawn at admission from a
  /// counter-based stream, so it is independent of run order.
  std::size_t add_mpeg2_session(
      const stream::Mpeg2Config& cfg,
      const traffic::VideoTraceGenerator::Params& video_params,
      std::size_t num_frames, double extra_drain_time = 2.0);

  std::size_t active_sessions() const { return admitted_; }
  std::size_t num_localities() const;

  /// Runs every locality to `horizon` (one locality per pool task) and
  /// merges their statistics in index order.  `slice_s` > 0 pauses each
  /// locality every `slice_s` of simulated time to invoke `observer`.
  /// One-shot: a second call throws RuntimeError.
  ServeReport run(double horizon, double slice_s = 0.0,
                  const SliceObserver& observer = {});

 private:
  struct FgsSession;
  struct Mpeg2Session;
  struct Locality;

  void pump_fgs(Locality& loc, FgsSession& s);
  void pump_mpeg2(Locality& loc, Mpeg2Session& s);
  void run_locality(Locality& loc, std::size_t index, double horizon,
                    double slice_s, const SliceObserver& observer);
  void run_locality_waves(Locality& loc, double horizon, double slot_s);

  ServeOptions opt_;
  std::vector<std::unique_ptr<Locality>> localities_;
  std::size_t offered_ = 0;
  std::size_t admitted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t degraded_ = 0;
  std::size_t next_id_ = 0;
  bool ran_ = false;
};

}  // namespace holms::serve
