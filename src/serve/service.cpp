#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "dvfs/dvfs.hpp"
#include "exec/error.hpp"
#include "exec/rng_stream.hpp"
#include "exec/thread_pool.hpp"
#include "serve/fom.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace holms::serve {

// The ServiceManager schedules any machine speaking the step protocol; pin
// the two concrete session types to it at compile time.
static_assert(SessionFom<streaming::FgsSessionFom>);
static_assert(SessionFom<stream::Mpeg2SessionFom>);

void ServeOptions::validate() const {
  if (localities == 0) {
    throw holms::InvalidArgument("ServeOptions: localities must be > 0");
  }
  if (max_sessions == 0) {
    throw holms::InvalidArgument("ServeOptions: max_sessions must be > 0");
  }
  if (!(degrade_watermark > 0.0 && degrade_watermark <= 1.0)) {
    throw holms::InvalidArgument(
        "ServeOptions: degrade_watermark must be in (0, 1]");
  }
  if (!(dispatch_quantum_s >= 0.0)) {
    throw holms::InvalidArgument(
        "ServeOptions: dispatch_quantum_s must be >= 0");
  }
  if (!(fault_loss >= 0.0 && fault_loss <= 1.0) ||
      !(nominal_loss >= 0.0 && nominal_loss <= 1.0) || !(soft_loss <= 1.0)) {
    throw holms::InvalidArgument("ServeOptions: loss must be in [0, 1]");
  }
}

std::uint64_t ServeReport::fingerprint() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return exec::splitmix64(h ^ exec::splitmix64(v));
  };
  auto mixd = [&mix](std::uint64_t h, double v) {
    return mix(h, std::bit_cast<std::uint64_t>(v));
  };
  std::uint64_t h = 0x5e55101ceull;
  h = mix(h, sessions_offered);
  h = mix(h, sessions_admitted);
  h = mix(h, sessions_rejected);
  h = mix(h, sessions_degraded);
  h = mix(h, sessions_completed);
  h = mix(h, events_dispatched);
  h = mix(h, faults_in_window);
  h = mixd(h, session_psnr_db.mean());
  h = mixd(h, session_psnr_db.sum());
  h = mixd(h, session_energy_j.sum());
  h = mixd(h, session_shed.sum());
  h = mixd(h, mpeg2_frame_latency.sum());
  h = mix(h, mpeg2_frames_out);
  h = mix(h, slot_psnr_db.fingerprint());
  h = mix(h, slot_load.fingerprint());
  h = mix(h, dispatch_lag_s.fingerprint());
  return h;
}

/// One admitted FGS session: the client model (DVFS processor, channel,
/// optional fault-driven loss trace) plus its state machine.  Heap-pinned —
/// the FOM holds references into its siblings.
struct ServiceManager::FgsSession {
  FgsSession(std::size_t id_, streaming::FgsPolicy policy,
             const streaming::FgsConfig& cfg, std::size_t slots,
             std::uint64_t seed, const fault::FaultSchedule* faults,
             double nominal_loss, double fault_loss, double soft_loss)
      : id(id_), cpu(dvfs::xscale_points(), dvfs::PowerModel{}),
        channel(sim::Rng(exec::stream_seed(seed, id_))),
        loss(faults != nullptr
                 ? std::make_unique<streaming::SlotLossTrace>(
                       faults, cfg.slot_s, nominal_loss, fault_loss,
                       soft_loss)
                 : nullptr),
        fom(policy, cfg, cpu, channel, slots, loss.get()) {}

  std::size_t id;
  dvfs::Processor cpu;
  streaming::ChannelTrace channel;
  std::unique_ptr<streaming::SlotLossTrace> loss;
  streaming::FgsSessionFom fom;
};

/// One admitted MPEG-2 session: its frame source plus the decoder-network
/// state machine bound to the locality's kernel.
struct ServiceManager::Mpeg2Session {
  Mpeg2Session(sim::Simulator& sim, std::size_t id_,
               const stream::Mpeg2Config& cfg,
               const traffic::VideoTraceGenerator::Params& vp,
               std::size_t num_frames, double extra_drain_time,
               std::uint64_t seed)
      : id(id_), video(vp, sim::Rng(exec::stream_seed(seed, id_))),
        fom(sim, video, num_frames, cfg, extra_drain_time) {}

  std::size_t id;
  traffic::VideoTraceGenerator video;
  stream::Mpeg2SessionFom fom;
};

/// One scheduling domain: a private DES kernel, the sessions sharded onto
/// it, its slice of the fault schedule, and its own statistics (merged into
/// the ServeReport in locality-index order).  Sessions are declared after
/// the Simulator so they are destroyed first — their pending events are then
/// discarded, never invoked, by ~Simulator.
struct ServiceManager::Locality {
  Locality() : sim(&sim::EventPoolCache::this_thread()) {}

  sim::Simulator sim;
  fault::FaultSchedule faults;  // kNode events addressed to this locality
  std::vector<std::unique_ptr<FgsSession>> fgs;
  std::vector<std::unique_ptr<Mpeg2Session>> mpeg2;

  std::uint64_t events = 0;
  std::size_t completed = 0;
  sim::OnlineStats session_psnr;
  sim::OnlineStats session_energy;
  sim::OnlineStats session_shed;
  sim::OnlineStats mpeg2_latency;
  std::uint64_t mpeg2_frames_out = 0;
  sim::QuantileSketch slot_psnr{1.0, 128.0, 32};
  sim::QuantileSketch slot_load{1e-3, 64.0, 32};
  sim::QuantileSketch lag{1e-6, 64.0, 32};
};

ServiceManager::ServiceManager(const ServeOptions& opt) : opt_(opt) {
  opt_.validate();
  localities_.reserve(opt_.localities);
  for (std::size_t i = 0; i < opt_.localities; ++i) {
    localities_.push_back(std::make_unique<Locality>());
  }
}

ServiceManager::~ServiceManager() = default;

std::size_t ServiceManager::num_localities() const {
  return localities_.size();
}

void ServiceManager::attach_fault_schedule(
    const fault::FaultSchedule* schedule) {
  if (offered_ != 0) {
    throw holms::RuntimeError(
        "ServiceManager: attach_fault_schedule() after sessions were "
        "admitted");
  }
  for (std::size_t li = 0; li < localities_.size(); ++li) {
    std::vector<fault::FaultEvent> mine;
    if (schedule != nullptr) {
      for (const fault::FaultEvent& e : schedule->events()) {
        if (e.target == fault::Target::kNode && e.id == li) {
          mine.push_back(e);
        }
      }
    }
    localities_[li]->faults = fault::FaultSchedule::from_trace(std::move(mine));
  }
}

std::size_t ServiceManager::add_fgs_session(streaming::FgsPolicy policy,
                                            const streaming::FgsConfig& cfg,
                                            std::size_t slots) {
  ++offered_;
  if (admitted_ >= opt_.max_sessions) {
    ++rejected_;
    return kRejected;
  }
  const std::size_t id = next_id_++;
  // Load shedding, stage 1: past the watermark every new session is served
  // on the graceful-degradation ladder, trading enhancement-layer quality
  // for base-layer protection before admission control rejects outright.
  const double watermark =
      opt_.degrade_watermark * static_cast<double>(opt_.max_sessions);
  streaming::FgsPolicy effective = policy;
  if (policy != streaming::FgsPolicy::kGracefulDegradation &&
      static_cast<double>(admitted_) >= watermark) {
    effective = streaming::FgsPolicy::kGracefulDegradation;
    ++degraded_;
  }
  Locality& loc = *localities_[id % localities_.size()];
  loc.fgs.push_back(std::make_unique<FgsSession>(
      id, effective, cfg, slots, opt_.seed,
      loc.faults.empty() ? nullptr : &loc.faults, opt_.nominal_loss,
      opt_.fault_loss, opt_.soft_loss));
  ++admitted_;
  return id;
}

std::size_t ServiceManager::add_mpeg2_session(
    const stream::Mpeg2Config& cfg,
    const traffic::VideoTraceGenerator::Params& video_params,
    std::size_t num_frames, double extra_drain_time) {
  ++offered_;
  if (admitted_ >= opt_.max_sessions) {
    ++rejected_;
    return kRejected;
  }
  const std::size_t id = next_id_++;
  Locality& loc = *localities_[id % localities_.size()];
  loc.mpeg2.push_back(std::make_unique<Mpeg2Session>(
      loc.sim, id, cfg, video_params, num_frames, extra_drain_time,
      opt_.seed));
  ++admitted_;
  return id;
}

void ServiceManager::pump_fgs(Locality& loc, FgsSession& s) {
  const std::size_t before = s.fom.slots_done();
  const double d = s.fom.step();
  ++loc.events;
  if (s.fom.slots_done() > before) {
    loc.slot_psnr.add(s.fom.last_psnr_db());
    loc.slot_load.add(s.fom.last_load());
  }
  if (d < 0.0) {
    const streaming::FgsReport& r = s.fom.report();
    ++loc.completed;
    loc.session_psnr.add(r.mean_psnr_db);
    loc.session_energy.add(r.client_total_energy_j);
    loc.session_shed.add(r.mean_enhancement_shed);
    return;
  }
  double when = loc.sim.now() + d;
  if (opt_.dispatch_quantum_s > 0.0) {
    const double q = opt_.dispatch_quantum_s;
    const double aligned = std::ceil(when / q) * q;
    loc.lag.add(aligned - when);
    when = aligned;
  }
  loc.sim.schedule_at(when, [this, &loc, &s] { pump_fgs(loc, s); });
}

void ServiceManager::pump_mpeg2(Locality& loc, Mpeg2Session& s) {
  const double d = s.fom.step();
  ++loc.events;
  if (d < 0.0) {
    const stream::Mpeg2Report& r = s.fom.report();
    ++loc.completed;
    loc.mpeg2_latency.add(r.mean_frame_latency);
    loc.mpeg2_frames_out += r.frames_out;
    return;
  }
  double when = loc.sim.now() + d;
  if (opt_.dispatch_quantum_s > 0.0) {
    const double q = opt_.dispatch_quantum_s;
    const double aligned = std::ceil(when / q) * q;
    loc.lag.add(aligned - when);
    when = aligned;
  }
  loc.sim.schedule_at(when, [this, &loc, &s] { pump_mpeg2(loc, s); });
}

// Wave scheduler: the homogeneous-FGS fast path.  When a locality hosts only
// FGS sessions with one common slot length and nothing observes intermediate
// time (no slicing, no dispatch quantum), the DES degenerates to lockstep
// waves: every live session fires at t = 0, slot_s, 2*slot_s, ... in
// admission order.  Replaying that schedule directly — one step_batch call
// per wave — produces the identical event count, the identical per-session
// arithmetic (the batch kernel is elementwise) and the identical
// statistics-insertion order, so the ServeReport fingerprint matches the
// event-driven path bitwise while the slot math runs through one
// exec::simd::fgs_slots call per wave instead of per session.
void ServiceManager::run_locality_waves(Locality& loc, double horizon,
                                        double slot_s) {
  // t = 0: the kInit wave (admission order), exactly as the armed events
  // would have run.  Zero-slot sessions finish here.
  std::vector<streaming::FgsSessionFom*> active;
  active.reserve(loc.fgs.size());
  for (std::unique_ptr<FgsSession>& s : loc.fgs) {
    const double d = s->fom.step();
    ++loc.events;
    if (d < 0.0) {
      const streaming::FgsReport& r = s->fom.report();
      ++loc.completed;
      loc.session_psnr.add(r.mean_psnr_db);
      loc.session_energy.add(r.client_total_energy_j);
      loc.session_shed.add(r.mean_enhancement_shed);
    } else {
      active.push_back(&s->fom);
    }
  }
  // Slot waves.  The DES executes events with when <= horizon; each wave's
  // timestamp accumulates exactly like the event chain's now() + slot_s.
  streaming::FgsBatchScratch scratch;
  std::vector<double> delays;
  for (double t = 0.0; t <= horizon && !active.empty(); t += slot_s) {
    delays.resize(active.size());
    streaming::FgsSessionFom::step_batch(active, scratch, delays);
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      streaming::FgsSessionFom& fom = *active[i];
      ++loc.events;
      loc.slot_psnr.add(fom.last_psnr_db());
      loc.slot_load.add(fom.last_load());
      if (delays[i] < 0.0) {
        const streaming::FgsReport& r = fom.report();
        ++loc.completed;
        loc.session_psnr.add(r.mean_psnr_db);
        loc.session_energy.add(r.client_total_energy_j);
        loc.session_shed.add(r.mean_enhancement_shed);
      } else {
        active[keep++] = active[i];  // stable compaction keeps wave order
      }
    }
    active.resize(keep);
  }
}

void ServiceManager::run_locality(Locality& loc, std::size_t index,
                                  double horizon, double slice_s,
                                  const SliceObserver& observer) {
  if (slice_s <= 0.0 && opt_.dispatch_quantum_s <= 0.0 && loc.mpeg2.empty() &&
      !loc.fgs.empty()) {
    const double slot_s = loc.fgs.front()->fom.slot_s();
    bool uniform = slot_s > 0.0;
    for (const std::unique_ptr<FgsSession>& s : loc.fgs) {
      uniform = uniform && s->fom.slot_s() == slot_s;
    }
    if (uniform) {
      run_locality_waves(loc, horizon, slot_s);
      return;
    }
  }
  // Arm every session's first step at t=0 in admission order; the kernel's
  // same-timestamp batching then dispatches each wave of aligned slots as
  // one cohort in insertion order.
  for (std::unique_ptr<FgsSession>& s : loc.fgs) {
    FgsSession* p = s.get();
    loc.sim.schedule_at(0.0, [this, &loc, p] { pump_fgs(loc, *p); });
  }
  for (std::unique_ptr<Mpeg2Session>& s : loc.mpeg2) {
    Mpeg2Session* p = s.get();
    loc.sim.schedule_at(0.0, [this, &loc, p] { pump_mpeg2(loc, *p); });
  }
  if (slice_s > 0.0) {
    double t = 0.0;
    while (t < horizon) {
      t = std::min(t + slice_s, horizon);
      loc.sim.run(t);
      if (observer) observer(index, loc.sim.now(), loc.events);
    }
  } else {
    loc.sim.run(horizon);
  }
}

ServeReport ServiceManager::run(double horizon, double slice_s,
                                const SliceObserver& observer) {
  if (ran_) {
    throw holms::RuntimeError("ServiceManager: run() may only be called once");
  }
  if (!(horizon >= 0.0)) {
    throw holms::InvalidArgument("ServiceManager: horizon must be >= 0");
  }
  ran_ = true;

  exec::ThreadPool pool(exec::resolve_threads(opt_.threads));
  exec::parallel_for_each(
      pool.size() > 1 ? &pool : nullptr, localities_.size(),
      [&](std::size_t li) {
        run_locality(*localities_[li], li, horizon, slice_s, observer);
      });

  ServeReport rep;
  rep.sessions_offered = offered_;
  rep.sessions_admitted = admitted_;
  rep.sessions_rejected = rejected_;
  rep.sessions_degraded = degraded_;
  for (const std::unique_ptr<Locality>& lp : localities_) {
    const Locality& loc = *lp;
    rep.sessions_completed += loc.completed;
    rep.events_dispatched += loc.events;
    for (const fault::FaultEvent& e : loc.faults.events()) {
      if (e.time <= horizon) ++rep.faults_in_window;
    }
    rep.session_psnr_db.merge(loc.session_psnr);
    rep.session_energy_j.merge(loc.session_energy);
    rep.session_shed.merge(loc.session_shed);
    rep.mpeg2_frame_latency.merge(loc.mpeg2_latency);
    rep.mpeg2_frames_out += loc.mpeg2_frames_out;
    rep.slot_psnr_db.merge(loc.slot_psnr);
    rep.slot_load.merge(loc.slot_load);
    rep.dispatch_lag_s.merge(loc.lag);
  }
  return rep;
}

}  // namespace holms::serve
