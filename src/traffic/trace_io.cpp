#include "traffic/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::traffic {
namespace {

FrameType type_from_string(const std::string& s, std::size_t line) {
  if (s == "I") return FrameType::kI;
  if (s == "P") return FrameType::kP;
  if (s == "B") return FrameType::kB;
  throw holms::RuntimeError("trace line " + std::to_string(line) +
                           ": unknown frame type '" + s + "'");
}

}  // namespace

void write_trace_csv(std::ostream& out,
                     const std::vector<VideoFrame>& trace) {
  out.precision(17);  // lossless double round-trip
  out << "index,type,size_bits,decode_complexity\n";
  for (const auto& f : trace) {
    out << f.index << ',' << VideoTraceGenerator::type_name(f.type) << ','
        << f.size_bits << ',' << f.decode_complexity << '\n';
  }
}

std::vector<VideoFrame> read_trace_csv(std::istream& in) {
  std::vector<VideoFrame> trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (lineno == 1 && line.rfind("index,", 0) == 0) continue;  // header
    std::istringstream row(line);
    std::string idx, type, size, cx;
    if (!std::getline(row, idx, ',') || !std::getline(row, type, ',') ||
        !std::getline(row, size, ',') || !std::getline(row, cx)) {
      throw holms::RuntimeError("trace line " + std::to_string(lineno) +
                               ": expected 4 comma-separated fields");
    }
    VideoFrame f;
    try {
      f.index = std::stoull(idx);
      f.size_bits = std::stod(size);
      f.decode_complexity = std::stod(cx);
    } catch (const std::exception&) {
      throw holms::RuntimeError("trace line " + std::to_string(lineno) +
                               ": malformed number");
    }
    f.type = type_from_string(type, lineno);
    if (f.size_bits < 0.0 || f.decode_complexity < 0.0) {
      throw holms::RuntimeError("trace line " + std::to_string(lineno) +
                               ": negative size/complexity");
    }
    trace.push_back(f);
  }
  return trace;
}

void save_trace(const std::string& path,
                const std::vector<VideoFrame>& trace) {
  std::ofstream out(path);
  if (!out) throw holms::RuntimeError("save_trace: cannot open " + path);
  write_trace_csv(out, trace);
}

std::vector<VideoFrame> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw holms::RuntimeError("load_trace: cannot open " + path);
  return read_trace_csv(in);
}

TracePlaybackSource::TracePlaybackSource(std::vector<VideoFrame> trace,
                                         double frame_rate)
    : trace_(std::move(trace)), frame_rate_(frame_rate) {
  if (trace_.empty() || !(frame_rate > 0.0)) {
    throw holms::InvalidArgument(
        "TracePlaybackSource: need non-empty trace, rate > 0");
  }
}

double TracePlaybackSource::next_interarrival() {
  last_bits_ = trace_[next_].size_bits;
  next_ = (next_ + 1) % trace_.size();
  return 1.0 / frame_rate_;
}

}  // namespace holms::traffic
