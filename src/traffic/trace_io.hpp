#pragma once
// Trace import/export and empirical playback.
//
// Real evaluations replay recorded traces (the paper's §2.2 complaint is
// exactly about the volume of such traces).  HolMS stores traces as plain
// CSV — `index,type,size_bits,decode_complexity` per frame — so generated
// workloads can be saved, inspected, and replayed, and externally recorded
// frame-size traces can be fed to every consumer of VideoFrame sequences.

#include <iosfwd>
#include <string>
#include <vector>

#include "traffic/sources.hpp"
#include "traffic/video.hpp"

namespace holms::traffic {

/// Serializes frames as CSV (with a header line).
void write_trace_csv(std::ostream& out, const std::vector<VideoFrame>& trace);

/// Parses a CSV trace; throws std::runtime_error with the offending line
/// number on malformed input.
std::vector<VideoFrame> read_trace_csv(std::istream& in);

/// Convenience file wrappers.
void save_trace(const std::string& path, const std::vector<VideoFrame>& t);
std::vector<VideoFrame> load_trace(const std::string& path);

/// Plays a recorded frame trace back as an arrival process: one packet per
/// frame at the trace's frame rate (wrapping around at the end), so
/// empirical traces drive the same queues synthetic sources do.
class TracePlaybackSource final : public ArrivalProcess {
 public:
  TracePlaybackSource(std::vector<VideoFrame> trace, double frame_rate);

  double next_interarrival() override;
  double mean_rate() const override { return frame_rate_; }

  /// Size of the frame that the most recent arrival carried.
  double last_frame_bits() const { return last_bits_; }

 private:
  std::vector<VideoFrame> trace_;
  double frame_rate_;
  std::size_t next_ = 0;
  double last_bits_ = 0.0;
};

}  // namespace holms::traffic
