// HOLMS_LINT_ALLOW_FILE(D006): offline self-similarity analysis (Hurst
// estimators, R/S and variance-time statistics) over fixed-order trace
// vectors in one TU; cold path, iteration order is part of the estimator's
// definition.
#include "traffic/selfsim.hpp"

#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::traffic {

double fgn_autocovariance(double h, std::size_t lag) {
  if (lag == 0) return 1.0;
  const double k = static_cast<double>(lag);
  const double h2 = 2.0 * h;
  return 0.5 * (std::pow(k + 1.0, h2) - 2.0 * std::pow(k, h2) +
                std::pow(k - 1.0, h2));
}

std::vector<double> fgn_hosking(std::size_t n, double h, sim::Rng& rng) {
  if (!(h > 0.0 && h < 1.0)) {
    throw holms::InvalidArgument("fgn_hosking: H must be in (0,1)");
  }
  std::vector<double> out;
  out.reserve(n);
  if (n == 0) return out;

  // Hosking's recursion maintains the partial linear-prediction coefficients
  // phi and the innovation variance v.
  std::vector<double> phi;     // current AR coefficients
  std::vector<double> phi_new;
  double v = 1.0;
  out.push_back(rng.normal(0.0, 1.0));
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t m = phi.size();  // == i - 1
    // Reflection coefficient.
    double num = fgn_autocovariance(h, i);
    for (std::size_t j = 0; j < m; ++j)
      num -= phi[j] * fgn_autocovariance(h, i - 1 - j);
    const double kappa = num / v;
    phi_new.assign(m + 1, 0.0);
    phi_new[m] = kappa;
    for (std::size_t j = 0; j < m; ++j)
      phi_new[j] = phi[j] - kappa * phi[m - 1 - j];
    phi.swap(phi_new);
    v *= (1.0 - kappa * kappa);
    if (v < 1e-300) v = 1e-300;
    // Conditional mean given history.
    double mean = 0.0;
    for (std::size_t j = 0; j < phi.size(); ++j)
      mean += phi[j] * out[i - 1 - j];
    out.push_back(mean + std::sqrt(v) * rng.normal(0.0, 1.0));
  }
  return out;
}

double ls_slope(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double den = n * sxx - sx * sx;
  if (den == 0.0) return 0.0;
  return (n * sxy - sx * sy) / den;
}

namespace {

// Classic R/S statistic of one block.
double rescaled_range(std::span<const double> xs) {
  const std::size_t n = xs.size();
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double cum = 0.0, lo = 0.0, hi = 0.0, ss = 0.0;
  for (double x : xs) {
    cum += x - mean;
    lo = std::min(lo, cum);
    hi = std::max(hi, cum);
    ss += (x - mean) * (x - mean);
  }
  const double s = std::sqrt(ss / static_cast<double>(n));
  if (s == 0.0) return 0.0;
  return (hi - lo) / s;
}

}  // namespace

double hurst_rs(std::span<const double> xs) {
  if (xs.size() < 32) throw holms::InvalidArgument("hurst_rs: trace too short");
  std::vector<double> log_m, log_rs;
  for (std::size_t m = 8; m <= xs.size() / 4; m *= 2) {
    const std::size_t blocks = xs.size() / m;
    double acc = 0.0;
    std::size_t used = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const double rs = rescaled_range(xs.subspan(b * m, m));
      if (rs > 0.0) {
        acc += rs;
        ++used;
      }
    }
    if (used == 0) continue;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_rs.push_back(std::log(acc / static_cast<double>(used)));
  }
  if (log_m.size() < 2) throw holms::RuntimeError("hurst_rs: degenerate trace");
  return ls_slope(log_m, log_rs);
}

double hurst_aggregated_variance(std::span<const double> xs) {
  if (xs.size() < 64) {
    throw holms::InvalidArgument("hurst_aggregated_variance: trace too short");
  }
  std::vector<double> log_m, log_var;
  for (std::size_t m = 1; m <= xs.size() / 16; m *= 2) {
    const std::size_t blocks = xs.size() / m;
    sim::OnlineStats agg;
    for (std::size_t b = 0; b < blocks; ++b) {
      double sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) sum += xs[b * m + i];
      agg.add(sum / static_cast<double>(m));
    }
    const double var = agg.variance();
    if (var <= 0.0) continue;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(var));
  }
  if (log_m.size() < 2) {
    throw holms::RuntimeError("hurst_aggregated_variance: degenerate trace");
  }
  // slope = 2H - 2.
  const double slope = ls_slope(log_m, log_var);
  return std::clamp(1.0 + slope / 2.0, 0.0, 1.0);
}

double hurst_periodogram(std::span<const double> xs,
                         double low_frequency_fraction) {
  const std::size_t n = xs.size();
  if (n < 128) {
    throw holms::InvalidArgument("hurst_periodogram: trace too short");
  }
  if (!(low_frequency_fraction > 0.0 && low_frequency_fraction <= 0.5)) {
    throw holms::InvalidArgument("hurst_periodogram: bad frequency fraction");
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);

  // Naive DFT over the lowest-frequency bins only: k = 1 .. K where
  // K = fraction * n/2.  O(n*K), fine for the 2^13..2^14 traces used here.
  const std::size_t kmax = std::max<std::size_t>(
      8, static_cast<std::size_t>(low_frequency_fraction *
                                  static_cast<double>(n) / 2.0));
  std::vector<double> log_f, log_i;
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (std::size_t k = 1; k <= kmax; ++k) {
    const double w = two_pi * static_cast<double>(k) / static_cast<double>(n);
    double re = 0.0, im = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double v = xs[t] - mean;
      re += v * std::cos(w * static_cast<double>(t));
      im -= v * std::sin(w * static_cast<double>(t));
    }
    const double periodogram =
        (re * re + im * im) / (two_pi * static_cast<double>(n));
    if (periodogram <= 0.0) continue;
    log_f.push_back(std::log(w));
    log_i.push_back(std::log(periodogram));
  }
  if (log_f.size() < 4) {
    throw holms::RuntimeError("hurst_periodogram: degenerate spectrum");
  }
  // slope = 1 - 2H.
  const double slope = ls_slope(log_f, log_i);
  return std::clamp((1.0 - slope) / 2.0, 0.0, 1.0);
}

}  // namespace holms::traffic
