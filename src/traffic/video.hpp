#pragma once
// Synthetic compressed-video workload generator.
//
// Substitute for real MPEG bitstreams (DESIGN.md §2): "a few minutes of
// compressed MPEG-2 video can easily require a few Gbytes of input data to
// simulate" — instead we synthesize GOP-structured frame sequences whose
// first- and second-order statistics (frame-type size ratios, lognormal
// marginals, scene-level long-range dependence) match published MPEG trace
// characterizations.  Every stream/streaming/NoC experiment that needs video
// input draws from this generator.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::traffic {

enum class FrameType { kI, kP, kB };

struct VideoFrame {
  FrameType type = FrameType::kI;
  std::size_t index = 0;        // display order
  double size_bits = 0.0;       // coded size
  double decode_complexity = 0.0;  // abstract decode cycles (prop. to size)
};

/// GOP-structured MPEG-like video source.
class VideoTraceGenerator {
 public:
  struct Params {
    std::size_t gop_length = 12;       // frames per GOP (IBBPBBPBBPBB)
    std::size_t b_per_anchor = 2;      // B frames between I/P anchors
    double frame_rate = 30.0;          // frames per second
    double mean_bitrate = 4e6;         // bits per second
    double size_cv = 0.35;             // coeff. of variation within a type
    double i_to_p_ratio = 3.0;         // mean I size / mean P size
    double p_to_b_ratio = 2.0;         // mean P size / mean B size
    double scene_hurst = 0.8;          // LRD of scene-activity modulation
    double scene_strength = 0.3;       // modulation depth (0 = none)
    double cycles_per_bit = 120.0;     // decode complexity scaling

    /// Contract rule C001; called by the generator constructor.
    void validate() const {
      if (gop_length == 0 || !(frame_rate > 0.0) || !(mean_bitrate > 0.0) ||
          !(i_to_p_ratio >= 1.0) || !(p_to_b_ratio >= 1.0)) {
        throw holms::InvalidArgument("VideoTraceGenerator: invalid params");
      }
      if (!(size_cv >= 0.0) || !(cycles_per_bit >= 0.0)) {
        throw holms::InvalidArgument(
            "VideoTraceGenerator: size_cv and cycles_per_bit must be >= 0");
      }
    }
  };

  VideoTraceGenerator(const Params& p, sim::Rng rng);

  /// Generates `n` frames in display order.
  std::vector<VideoFrame> generate(std::size_t n);

  /// Frame period in seconds.
  double frame_period() const { return 1.0 / p_.frame_rate; }
  const Params& params() const { return p_; }

  static std::string type_name(FrameType t);

 private:
  FrameType type_at(std::size_t index) const;

  Params p_;
  sim::Rng rng_;
  double mean_i_ = 0.0, mean_p_ = 0.0, mean_b_ = 0.0;
};

/// Aggregate statistics of a generated trace (for tests and benches).
struct TraceStats {
  double mean_bitrate = 0.0;
  double mean_i = 0.0, mean_p = 0.0, mean_b = 0.0;
  std::size_t count_i = 0, count_p = 0, count_b = 0;
};
TraceStats summarize(const std::vector<VideoFrame>& frames,
                     double frame_rate);

}  // namespace holms::traffic
