#include "traffic/sources.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::traffic {

CbrSource::CbrSource(double rate) : period_(1.0 / rate) {
  if (!(rate > 0.0)) throw holms::InvalidArgument("CbrSource: rate must be > 0");
}

PoissonSource::PoissonSource(double rate, sim::Rng rng)
    : rate_(rate), rng_(rng) {
  if (!(rate > 0.0)) {
    throw holms::InvalidArgument("PoissonSource: rate must be > 0");
  }
}

double PoissonSource::next_interarrival() { return rng_.exponential(rate_); }

MmppSource::MmppSource(double rate0, double rate1, double switch01,
                       double switch10, sim::Rng rng)
    : rates_{rate0, rate1}, switch_rates_{switch01, switch10}, rng_(rng) {
  if (!(rate0 >= 0.0) || !(rate1 >= 0.0) || !(switch01 > 0.0) ||
      !(switch10 > 0.0) || (rate0 <= 0.0 && rate1 <= 0.0)) {
    throw holms::InvalidArgument("MmppSource: invalid rates");
  }
  time_to_switch_ = rng_.exponential(switch_rates_[0]);
}

double MmppSource::mean_rate() const {
  // Stationary probability of state 0 is switch10 / (switch01 + switch10).
  const double p0 = switch_rates_[1] / (switch_rates_[0] + switch_rates_[1]);
  return p0 * rates_[0] + (1.0 - p0) * rates_[1];
}

double MmppSource::next_interarrival() {
  double waited = 0.0;
  for (;;) {
    const double rate = rates_[state_];
    const double to_arrival = rate > 0.0
                                  ? rng_.exponential(rate)
                                  : std::numeric_limits<double>::infinity();
    if (to_arrival < time_to_switch_) {
      time_to_switch_ -= to_arrival;
      return waited + to_arrival;
    }
    // Phase switch happens first; memorylessness lets us redraw the arrival.
    waited += time_to_switch_;
    state_ ^= 1;
    time_to_switch_ = rng_.exponential(switch_rates_[state_]);
  }
}

OnOffParetoSource::OnOffParetoSource(const Params& p, sim::Rng rng)
    : p_(p), rng_(rng) {
  p.validate();
  // Pareto(alpha, xm) has mean alpha*xm/(alpha-1); solve xm for target mean.
  xm_on_ = p.mean_on * (p.alpha_on - 1.0) / p.alpha_on;
  xm_off_ = p.mean_off * (p.alpha_off - 1.0) / p.alpha_off;
  on_remaining_ = draw_on();  // start in ON so the first arrival is finite
}

double OnOffParetoSource::draw_on() { return rng_.pareto(p_.alpha_on, xm_on_); }
double OnOffParetoSource::draw_off() {
  return rng_.pareto(p_.alpha_off, xm_off_);
}

double OnOffParetoSource::mean_rate() const {
  return p_.peak_rate * p_.mean_on / (p_.mean_on + p_.mean_off);
}

double OnOffParetoSource::hurst() const {
  const double alpha = std::min(p_.alpha_on, p_.alpha_off);
  return (3.0 - alpha) / 2.0;
}

double OnOffParetoSource::next_interarrival() {
  const double gap = 1.0 / p_.peak_rate;  // deterministic spacing while ON
  double waited = 0.0;
  for (;;) {
    if (on_remaining_ >= gap) {
      on_remaining_ -= gap;
      return waited + gap;
    }
    // Burn the tail of the ON period, then a whole OFF period.
    waited += on_remaining_ + draw_off();
    on_remaining_ = draw_on();
  }
}

SuperposedSource::SuperposedSource(
    std::vector<std::unique_ptr<ArrivalProcess>> sources)
    : sources_(std::move(sources)) {
  if (sources_.empty()) {
    throw holms::InvalidArgument("SuperposedSource: need >= 1 source");
  }
  next_time_.reserve(sources_.size());
  for (auto& s : sources_) next_time_.push_back(s->next_interarrival());
}

double SuperposedSource::mean_rate() const {
  double sum = 0.0;
  // HOLMS_LINT_ALLOW(D006): mean-rate sum over a handful of component sources; cold
  for (const auto& s : sources_) sum += s->mean_rate();
  return sum;
}

double SuperposedSource::next_interarrival() {
  const auto it = std::min_element(next_time_.begin(), next_time_.end());
  const std::size_t idx = static_cast<std::size_t>(it - next_time_.begin());
  const double when = *it;
  const double gap = when - now_;
  now_ = when;
  next_time_[idx] = when + sources_[idx]->next_interarrival();
  return gap;
}

std::unique_ptr<ArrivalProcess> make_selfsimilar_aggregate(
    std::size_t n, double target_rate, double alpha, sim::Rng& rng) {
  if (n == 0) throw holms::InvalidArgument("aggregate: need >= 1 source");
  std::vector<std::unique_ptr<ArrivalProcess>> sources;
  sources.reserve(n);
  OnOffParetoSource::Params p;
  p.alpha_on = alpha;
  p.alpha_off = alpha;
  p.mean_on = 1.0;
  p.mean_off = 4.0;
  // Each source contributes target_rate/n on average; duty cycle is
  // mean_on / (mean_on + mean_off) = 0.2.
  const double duty = p.mean_on / (p.mean_on + p.mean_off);
  p.peak_rate = target_rate / (static_cast<double>(n) * duty);
  for (std::size_t i = 0; i < n; ++i) {
    sources.push_back(std::make_unique<OnOffParetoSource>(p, rng.fork()));
  }
  return std::make_unique<SuperposedSource>(std::move(sources));
}

std::vector<double> arrivals_per_slot(ArrivalProcess& src, double dt,
                                      std::size_t slots) {
  assert(dt > 0.0);
  std::vector<double> counts(slots, 0.0);
  double t = src.next_interarrival();
  const double horizon = dt * static_cast<double>(slots);
  while (t < horizon) {
    counts[static_cast<std::size_t>(t / dt)] += 1.0;
    t += src.next_interarrival();
  }
  return counts;
}

}  // namespace holms::traffic
