#pragma once
// Arrival-process models for multimedia traffic (paper §3.2).
//
// "the bursty nature of the multimedia traffic makes self-similarity a
//  critical design factor ... self-similar processes typically obey some
//  power-law decay of the autocorrelation function."
//
// The short-range-dependent (Markovian) family here — CBR, Poisson, MMPP —
// is the *baseline* the paper says classical analysis covers; the
// long-range-dependent family (ON/OFF Pareto superposition, fGn-driven rate)
// is what breaks it.  Experiment E3 feeds both into the same router queue.

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "exec/error.hpp"

namespace holms::traffic {

/// A point process: successive inter-arrival times of fixed-size packets.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Returns the time until the next arrival (> 0).
  virtual double next_interarrival() = 0;
  /// Long-run mean arrival rate (packets per unit time).
  virtual double mean_rate() const = 0;
};

/// Constant bit rate: deterministic spacing (isochronous audio).
class CbrSource final : public ArrivalProcess {
 public:
  explicit CbrSource(double rate);
  double next_interarrival() override { return period_; }
  double mean_rate() const override { return 1.0 / period_; }

 private:
  double period_;
};

/// Poisson arrivals: the memoryless baseline.
class PoissonSource final : public ArrivalProcess {
 public:
  PoissonSource(double rate, sim::Rng rng);
  double next_interarrival() override;
  double mean_rate() const override { return rate_; }

 private:
  double rate_;
  sim::Rng rng_;
};

/// Two-state Markov-modulated Poisson process: bursty but still
/// short-range dependent.  State 0 emits at rate0, state 1 at rate1;
/// exponential sojourns.
class MmppSource final : public ArrivalProcess {
 public:
  MmppSource(double rate0, double rate1, double switch01, double switch10,
             sim::Rng rng);
  double next_interarrival() override;
  double mean_rate() const override;

 private:
  double rates_[2];
  double switch_rates_[2];  // out of state 0, out of state 1
  int state_ = 0;
  double time_to_switch_;
  sim::Rng rng_;
};

/// Single ON/OFF source with Pareto-distributed ON and OFF periods.  During
/// ON, packets are emitted at `peak_rate`; OFF is silent.  With shape
/// 1 < alpha < 2 the superposition of many such sources converges to a
/// self-similar process with Hurst H = (3 - alpha) / 2 (Taqqu et al.) — the
/// canonical construction behind multimedia LRD traffic.
class OnOffParetoSource final : public ArrivalProcess {
 public:
  struct Params {
    double peak_rate = 10.0;   // packets per unit time while ON
    double mean_on = 1.0;      // mean ON duration
    double mean_off = 4.0;     // mean OFF duration
    double alpha_on = 1.5;     // Pareto shape of ON periods
    double alpha_off = 1.5;    // Pareto shape of OFF periods

    /// Contract rule C001; called by the source constructor.  Shapes must
    /// exceed 1 so the mean ON/OFF durations exist.
    void validate() const {
      if (!(peak_rate > 0.0) || !(mean_on > 0.0) || !(mean_off > 0.0) ||
          !(alpha_on > 1.0) || !(alpha_off > 1.0)) {
        throw holms::InvalidArgument(
            "OnOffParetoSource: rates/means > 0, shapes > 1 required");
      }
    }
  };
  OnOffParetoSource(const Params& p, sim::Rng rng);

  double next_interarrival() override;
  double mean_rate() const override;
  /// Theoretical Hurst parameter of the aggregate, min over both shapes.
  double hurst() const;

 private:
  double draw_on();
  double draw_off();

  Params p_;
  double xm_on_;
  double xm_off_;
  double on_remaining_ = 0.0;  // time left in current ON period
  sim::Rng rng_;
};

/// Superposition of independent arrival processes, itself an arrival
/// process.  Maintains a small calendar of per-source next-arrival times.
class SuperposedSource final : public ArrivalProcess {
 public:
  explicit SuperposedSource(
      std::vector<std::unique_ptr<ArrivalProcess>> sources);
  double next_interarrival() override;
  double mean_rate() const override;

 private:
  std::vector<std::unique_ptr<ArrivalProcess>> sources_;
  std::vector<double> next_time_;  // absolute next arrival per source
  double now_ = 0.0;
};

/// Builds the standard LRD aggregate used in E3: `n` homogeneous ON/OFF
/// Pareto sources scaled so the aggregate mean rate equals `target_rate`.
std::unique_ptr<ArrivalProcess> make_selfsimilar_aggregate(
    std::size_t n, double target_rate, double alpha, sim::Rng& rng);

/// Bins an arrival process into counts per slot of width `dt` — the input
/// format for the Hurst estimators.
std::vector<double> arrivals_per_slot(ArrivalProcess& src, double dt,
                                      std::size_t slots);

}  // namespace holms::traffic
