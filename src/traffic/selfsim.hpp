#pragma once
// Self-similarity toolkit: exact fractional-Gaussian-noise synthesis and the
// two classical Hurst estimators (paper §3.2, ref [19]).
//
// Long-range dependence is what separates multimedia traffic from the
// Markovian models classical queueing assumes; estimating H from a trace and
// synthesizing traces with prescribed H are both needed by experiment E3.

#include <cstddef>
#include <span>
#include <vector>

#include "sim/random.hpp"

namespace holms::traffic {

/// Generates `n` samples of fractional Gaussian noise with Hurst parameter
/// `h` in (0, 1), zero mean and unit variance, using the Hosking (1984)
/// recursive method (exact, O(n^2) — fine for the 2^14..2^16 sample traces
/// used here).
std::vector<double> fgn_hosking(std::size_t n, double h, sim::Rng& rng);

/// Theoretical autocovariance of fGn at the given lag.
double fgn_autocovariance(double h, std::size_t lag);

/// Rescaled-range (R/S) estimate of the Hurst parameter: slope of
/// log(R/S) vs log(block size) over dyadic block sizes.
double hurst_rs(std::span<const double> xs);

/// Aggregated-variance estimate of H: Var(X^(m)) ~ m^(2H-2); slope of
/// log Var vs log m gives 2H - 2.
double hurst_aggregated_variance(std::span<const double> xs);

/// Periodogram estimate of H: for an LRD process the spectral density
/// behaves as f^(1-2H) near the origin, so the slope of log I(f) vs log f
/// over the lowest frequencies gives 1 - 2H.  Complements the time-domain
/// estimators (frequency-domain estimators are less biased by short-range
/// structure).
double hurst_periodogram(std::span<const double> xs,
                         double low_frequency_fraction = 0.1);

/// Least-squares slope of y against x (shared by the estimators; exposed for
/// testing).
double ls_slope(std::span<const double> x, std::span<const double> y);

}  // namespace holms::traffic
