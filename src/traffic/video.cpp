// HOLMS_LINT_ALLOW_FILE(D006): GOP-structure bookkeeping sums over the
// fixed frame-type sequence at trace generation; cold, order fixed by the
// GOP pattern itself.
#include "traffic/video.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "traffic/selfsim.hpp"

#include "exec/error.hpp"

namespace holms::traffic {

VideoTraceGenerator::VideoTraceGenerator(const Params& p, sim::Rng rng)
    : p_(p), rng_(rng) {
  p.validate();
  // Solve per-type mean sizes so the GOP-average bitrate hits mean_bitrate.
  // Count frame types in one GOP.
  std::size_t ni = 0, np = 0, nb = 0;
  for (std::size_t i = 0; i < p_.gop_length; ++i) {
    switch (type_at(i)) {
      case FrameType::kI: ++ni; break;
      case FrameType::kP: ++np; break;
      case FrameType::kB: ++nb; break;
    }
  }
  const double bits_per_gop =
      p_.mean_bitrate * static_cast<double>(p_.gop_length) / p_.frame_rate;
  // mean_i = r_ip * r_pb * mean_b ; mean_p = r_pb * mean_b.
  const double rip = p_.i_to_p_ratio, rpb = p_.p_to_b_ratio;
  const double denom = static_cast<double>(ni) * rip * rpb +
                       static_cast<double>(np) * rpb +
                       static_cast<double>(nb);
  mean_b_ = bits_per_gop / denom;
  mean_p_ = rpb * mean_b_;
  mean_i_ = rip * mean_p_;
}

FrameType VideoTraceGenerator::type_at(std::size_t index) const {
  const std::size_t pos = index % p_.gop_length;
  if (pos == 0) return FrameType::kI;
  const std::size_t cycle = p_.b_per_anchor + 1;
  return (pos % cycle == 0) ? FrameType::kP : FrameType::kB;
}

std::vector<VideoFrame> VideoTraceGenerator::generate(std::size_t n) {
  std::vector<VideoFrame> frames;
  frames.reserve(n);
  // Scene-activity modulation: a slowly varying LRD multiplier shared by all
  // frames, produced from fGn smoothed at one-value-per-GOP granularity.
  std::vector<double> scene;
  if (p_.scene_strength > 0.0 && n > 0) {
    const std::size_t gops = n / p_.gop_length + 2;
    scene = fgn_hosking(gops, p_.scene_hurst, rng_);
  }
  // Lognormal with mean 1 and cv = size_cv: sigma^2 = ln(1 + cv^2).
  const double sigma2 = std::log(1.0 + p_.size_cv * p_.size_cv);
  const double sigma = std::sqrt(sigma2);
  const double mu = -0.5 * sigma2;
  for (std::size_t i = 0; i < n; ++i) {
    VideoFrame f;
    f.index = i;
    f.type = type_at(i);
    double mean = 0.0;
    switch (f.type) {
      case FrameType::kI: mean = mean_i_; break;
      case FrameType::kP: mean = mean_p_; break;
      case FrameType::kB: mean = mean_b_; break;
    }
    double mod = 1.0;
    if (!scene.empty()) {
      const double z = scene[i / p_.gop_length];
      mod = std::max(0.1, 1.0 + p_.scene_strength * z);
    }
    f.size_bits = mean * mod * rng_.lognormal(mu, sigma);
    f.decode_complexity = f.size_bits * p_.cycles_per_bit;
    frames.push_back(f);
  }
  return frames;
}

std::string VideoTraceGenerator::type_name(FrameType t) {
  switch (t) {
    case FrameType::kI: return "I";
    case FrameType::kP: return "P";
    case FrameType::kB: return "B";
  }
  return "?";
}

TraceStats summarize(const std::vector<VideoFrame>& frames,
                     double frame_rate) {
  TraceStats s;
  if (frames.empty()) return s;
  double total = 0.0, ti = 0.0, tp = 0.0, tb = 0.0;
  for (const auto& f : frames) {
    total += f.size_bits;
    switch (f.type) {
      case FrameType::kI: ti += f.size_bits; ++s.count_i; break;
      case FrameType::kP: tp += f.size_bits; ++s.count_p; break;
      case FrameType::kB: tb += f.size_bits; ++s.count_b; break;
    }
  }
  const double duration = static_cast<double>(frames.size()) / frame_rate;
  s.mean_bitrate = total / duration;
  if (s.count_i) s.mean_i = ti / static_cast<double>(s.count_i);
  if (s.count_p) s.mean_p = tp / static_cast<double>(s.count_p);
  if (s.count_b) s.mean_b = tb / static_cast<double>(s.count_b);
  return s;
}

}  // namespace holms::traffic
