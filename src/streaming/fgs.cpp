#include "streaming/fgs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/error.hpp"

namespace holms::streaming {

SlotLossTrace::SlotLossTrace(const fault::FaultSchedule* schedule,
                             double slot_s, double nominal_loss,
                             double faulty_loss)
    : injector_(schedule), slot_s_(slot_s), nominal_(nominal_loss),
      faulty_(faulty_loss) {
  if (!(slot_s > 0.0)) {
    throw holms::InvalidArgument("SlotLossTrace: slot_s must be > 0");
  }
  if (!(nominal_loss >= 0.0 && nominal_loss <= 1.0) ||
      !(faulty_loss >= 0.0 && faulty_loss <= 1.0)) {
    throw holms::InvalidArgument("SlotLossTrace: loss must be in [0, 1]");
  }
}

double SlotLossTrace::loss_for_slot(std::size_t slot) {
  // Apply every event up to the start of this slot; the active-fault count
  // is what's left standing.
  injector_.poll(static_cast<double>(slot) * slot_s_,
                 [this](const fault::FaultEvent& e) {
                   if (e.kind == fault::FaultKind::kFail) {
                     ++active_faults_;
                   } else if (active_faults_ > 0) {
                     --active_faults_;
                   }
                 });
  return active_faults_ > 0 ? faulty_ : nominal_;
}

ChannelTrace::ChannelTrace(sim::Rng rng, double good_bps, double mid_bps,
                           double bad_bps)
    : rng_(rng), rates_{good_bps, mid_bps, bad_bps} {}

double ChannelTrace::next_capacity_bps() {
  // Sticky three-state Markov chain: 80% stay, 20% move to a neighbor state
  // (reflecting at the ends) — slot-scale coherence like an indoor channel.
  if (rng_.bernoulli(0.2)) {
    if (state_ == 0) {
      state_ = 1;
    } else if (state_ == 2) {
      state_ = 1;
    } else {
      state_ = rng_.bernoulli(0.5) ? 0 : 2;
    }
  }
  // Small lognormal wobble within the state.
  return rates_[state_] * std::exp(rng_.normal(0.0, 0.08));
}

namespace {

double psnr_at_rate(const FgsConfig& cfg, double decoded_bps) {
  if (decoded_bps < cfg.base_layer_bps) {
    // Base layer incomplete: severe degradation, scaled by coverage.
    const double frac = decoded_bps / cfg.base_layer_bps;
    return cfg.psnr_base_db * std::max(0.3, frac);
  }
  const double ratio = decoded_bps / cfg.base_layer_bps;
  return cfg.psnr_base_db +
         cfg.psnr_gain_db_per_doubling * std::log2(ratio + 1e-12);
}

/// One client's slot under the given policy, channel share, and loss
/// fraction.
void process_slot(FgsPolicy policy, const FgsConfig& cfg,
                  dvfs::Processor& cpu, double capacity_bps, double loss,
                  FgsSlotAccum& st) {
  const double max_stream_bps = cfg.base_layer_bps + cfg.max_enhancement_bps;
  const bool feedback = policy == FgsPolicy::kClientFeedback ||
                        policy == FgsPolicy::kGracefulDegradation;

  // --- client advertises its decoding aptitude ---
  if (feedback) {
    const double expected_bps = std::min(capacity_bps, max_stream_bps);
    const double needed_cycles = expected_bps * cfg.slot_s *
                                 cfg.decode_cycles_per_bit /
                                 cfg.target_normalized_load;
    std::size_t lvl = cpu.num_points() - 1;
    for (std::size_t l = 0; l < cpu.num_points(); ++l) {
      if (cpu.point(l).frequency_hz * cfg.slot_s >= needed_cycles) {
        lvl = l;
        break;
      }
    }
    cpu.set_level(lvl);
    st.rx_energy_j += cfg.feedback_tx_nj * 1e-9;  // per-slot feedback cost
  }
  const double aptitude_bits =
      cpu.current().frequency_hz * cfg.slot_s / cfg.decode_cycles_per_bit;

  // --- degradation ladder (graceful only): shed enhancement, protect base ---
  double shed = 0.0, fec_margin = 0.0;
  if (policy == FgsPolicy::kGracefulDegradation) {
    shed = std::clamp(cfg.loss_shed_gain * st.loss_ewma, 0.0, 1.0);
    if (st.loss_ewma >= cfg.base_only_loss_threshold) shed = 1.0;
    // Repetition FEC sized so base survives the estimated loss:
    // (1+m)(1-L) >= 1  =>  m >= L/(1-L), capped.
    fec_margin = std::min(
        st.loss_ewma / std::max(1.0 - st.loss_ewma, 1e-9), cfg.base_fec_cap);
  }

  // --- server picks the send rate ---
  double send_bps;
  double base_sent_bps = cfg.base_layer_bps;
  if (policy == FgsPolicy::kGracefulDegradation) {
    const double cap =
        std::min({capacity_bps, max_stream_bps, aptitude_bits / cfg.slot_s});
    base_sent_bps = std::min(cfg.base_layer_bps * (1.0 + fec_margin), cap);
    const double enh_budget_bps = cfg.max_enhancement_bps * (1.0 - shed);
    send_bps =
        base_sent_bps + std::min(enh_budget_bps,
                                 std::max(0.0, cap - base_sent_bps));
  } else if (policy == FgsPolicy::kClientFeedback) {
    send_bps =
        std::min({capacity_bps, max_stream_bps, aptitude_bits / cfg.slot_s});
  } else {
    send_bps = std::min(capacity_bps, max_stream_bps);
  }
  const double sent_bits = send_bps * cfg.slot_s;

  // --- channel loss ---
  // Graceful degradation marks enhancement packets droppable, so loss
  // consumes the enhancement first, then eats into the (FEC-protected) base;
  // every other policy loses bits uniformly across the stream.
  const double lost_bits = loss * sent_bits;
  const double rx_bits = sent_bits - lost_bits;  // what reaches the radio
  double useful_bits;  // arrived bits that carry decodable video
  const double base_target_bits = cfg.base_layer_bps * cfg.slot_s;
  if (policy == FgsPolicy::kGracefulDegradation) {
    const double base_sent_bits = base_sent_bps * cfg.slot_s;
    const double enh_sent_bits = sent_bits - base_sent_bits;
    const double enh_lost = std::min(lost_bits, enh_sent_bits);
    const double base_arrived = base_sent_bits - (lost_bits - enh_lost);
    const double base_usable = std::min(base_arrived, base_target_bits);
    useful_bits = base_usable + (enh_sent_bits - enh_lost);
  } else {
    useful_bits = rx_bits;
  }

  // --- client receives and decodes ---
  const double decodable_bits = std::min(useful_bits, aptitude_bits);
  st.rx_bits += rx_bits;
  st.wasted_bits += rx_bits - decodable_bits;  // incl. surviving FEC copies
  st.rx_energy_j += cfg.rx_nj_per_bit * 1e-9 * rx_bits;

  const double decode_cycles = decodable_bits * cfg.decode_cycles_per_bit;
  st.cpu_energy_j += cpu.energy_for_cycles(decode_cycles);
  const double busy_s = decode_cycles / cpu.current().frequency_hz;
  const double idle_s = std::max(0.0, cfg.slot_s - busy_s);
  st.cpu_energy_j +=
      0.25 * cpu.model().total_power(cpu.current()) * idle_s;

  st.load.add(aptitude_bits > 0.0 ? rx_bits / aptitude_bits : 0.0);
  st.loss.add(loss);
  st.shed.add(shed);
  const double decoded_bps = decodable_bits / cfg.slot_s;
  if (decoded_bps < cfg.base_layer_bps) ++st.base_misses;
  const double psnr = psnr_at_rate(cfg, decoded_bps);
  st.psnr.add(psnr);
  st.min_psnr = std::min(st.min_psnr, psnr);
  st.loss_ewma =
      cfg.loss_ewma_alpha * loss + (1.0 - cfg.loss_ewma_alpha) * st.loss_ewma;
  st.last_psnr = psnr;
  st.last_load = aptitude_bits > 0.0 ? rx_bits / aptitude_bits : 0.0;
}

FgsReport make_report(const FgsSlotAccum& st, std::size_t slots) {
  FgsReport rep;
  rep.slots = slots;
  rep.mean_psnr_db = st.psnr.mean();
  rep.min_psnr_db = slots ? st.min_psnr : 0.0;
  rep.client_rx_energy_j = st.rx_energy_j;
  rep.client_cpu_energy_j = st.cpu_energy_j;
  rep.client_total_energy_j = st.rx_energy_j + st.cpu_energy_j;
  rep.mean_normalized_load = st.load.count() ? st.load.mean() : 0.0;
  rep.wasted_rx_fraction =
      st.rx_bits > 0.0 ? st.wasted_bits / st.rx_bits : 0.0;
  rep.base_layer_misses = st.base_misses;
  rep.mean_loss = st.loss.count() ? st.loss.mean() : 0.0;
  rep.mean_enhancement_shed = st.shed.count() ? st.shed.mean() : 0.0;
  return rep;
}

}  // namespace

FgsSessionFom::FgsSessionFom(FgsPolicy policy, const FgsConfig& cfg,
                             dvfs::Processor& client_cpu,
                             ChannelTrace& channel, std::size_t slots,
                             SlotLossTrace* loss)
    : policy_(policy), cfg_(cfg), cpu_(client_cpu), channel_(channel),
      loss_(loss), slots_(slots) {}

double FgsSessionFom::step() {
  switch (phase_) {
    case FgsFomPhase::kInit:
      if (policy_ == FgsPolicy::kNonAdaptive) {
        cpu_.set_level(cpu_.num_points() - 1);
      }
      if (slots_ == 0) {
        report_ = make_report(accum_, 0);
        phase_ = FgsFomPhase::kDone;
        return kFinished;
      }
      phase_ = FgsFomPhase::kSlot;
      return kAgain;
    case FgsFomPhase::kSlot: {
      // Evaluation order matters for bitwise equivalence with the original
      // loop: the loss cursor advances before the channel draws its RNG.
      const double l = loss_ != nullptr ? loss_->loss_for_slot(slot_) : 0.0;
      process_slot(policy_, cfg_, cpu_, channel_.next_capacity_bps(), l,
                   accum_);
      ++slot_;
      if (slot_ >= slots_) {
        report_ = make_report(accum_, slots_);
        phase_ = FgsFomPhase::kDone;
        return kFinished;
      }
      return cfg_.slot_s;
    }
    case FgsFomPhase::kDone:
      return kFinished;
  }
  return kFinished;  // unreachable
}

const FgsReport& FgsSessionFom::report() const {
  if (phase_ != FgsFomPhase::kDone) {
    throw holms::RuntimeError("FgsSessionFom: report() before done()");
  }
  return report_;
}

FgsReport run_fgs_session(FgsPolicy policy, const FgsConfig& cfg,
                          dvfs::Processor& client_cpu, ChannelTrace& channel,
                          std::size_t slots, SlotLossTrace* loss) {
  FgsSessionFom fom(policy, cfg, client_cpu, channel, slots, loss);
  while (!fom.done()) fom.step();
  return fom.report();
}

AdhocReport run_fgs_adhoc(FgsPolicy policy, const FgsConfig& cfg,
                          std::vector<dvfs::Processor>& clients,
                          ChannelTrace& shared_channel, std::size_t slots,
                          SlotLossTrace* loss) {
  AdhocReport rep;
  if (clients.empty()) return rep;
  if (policy == FgsPolicy::kNonAdaptive) {
    for (auto& c : clients) c.set_level(c.num_points() - 1);
  }
  std::vector<FgsSlotAccum> states(clients.size());
  for (std::size_t s = 0; s < slots; ++s) {
    // Fair medium share: every active stream gets capacity / N this slot
    // (every multimedia host also forwards/receives, §4.2 — here they all
    // contend for the same spectrum).
    const double share = shared_channel.next_capacity_bps() /
                         static_cast<double>(clients.size());
    const double l = loss != nullptr ? loss->loss_for_slot(s) : 0.0;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      process_slot(policy, cfg, clients[c], share, l, states[c]);
    }
  }
  rep.min_psnr_db = std::numeric_limits<double>::infinity();
  sim::OnlineStats psnr;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    rep.per_client.push_back(make_report(states[c], slots));
    rep.total_client_energy_j += rep.per_client.back().client_total_energy_j;
    psnr.add(rep.per_client.back().mean_psnr_db);
    rep.min_psnr_db =
        std::min(rep.min_psnr_db, rep.per_client.back().min_psnr_db);
  }
  rep.mean_psnr_db = psnr.mean();
  if (slots == 0) rep.min_psnr_db = 0.0;
  return rep;
}

}  // namespace holms::streaming
