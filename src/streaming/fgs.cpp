#include "streaming/fgs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/aligned.hpp"
#include "exec/error.hpp"
#include "exec/simd.hpp"

namespace holms::streaming {

SlotLossTrace::SlotLossTrace(const fault::FaultSchedule* schedule,
                             double slot_s, double nominal_loss,
                             double faulty_loss, double soft_loss)
    : injector_(schedule), slot_s_(slot_s), nominal_(nominal_loss),
      faulty_(faulty_loss),
      soft_(soft_loss < 0.0 ? faulty_loss : soft_loss) {
  if (!(slot_s > 0.0)) {
    throw holms::InvalidArgument("SlotLossTrace: slot_s must be > 0");
  }
  if (!(nominal_loss >= 0.0 && nominal_loss <= 1.0) ||
      !(faulty_loss >= 0.0 && faulty_loss <= 1.0) || !(soft_ <= 1.0)) {
    throw holms::InvalidArgument("SlotLossTrace: loss must be in [0, 1]");
  }
}

double SlotLossTrace::loss_for_slot(std::size_t slot) {
  // Apply every event up to the start of this slot; the active hard and
  // soft counts are what's left standing.
  injector_.poll(static_cast<double>(slot) * slot_s_,
                 [this](const fault::FaultEvent& e) {
                   switch (e.kind) {
                     case fault::FaultKind::kFail:
                       ++active_faults_;
                       break;
                     case fault::FaultKind::kRepair:
                       if (active_faults_ > 0) --active_faults_;
                       break;
                     case fault::FaultKind::kSoftFail:
                       ++active_soft_;
                       break;
                     case fault::FaultKind::kScrub:
                       if (active_soft_ > 0) {
                         --active_soft_;
                         ++scrubs_applied_;
                       }
                       break;
                   }
                 });
  if (active_faults_ > 0) return faulty_;
  return active_soft_ > 0 ? soft_ : nominal_;
}

ChannelTrace::ChannelTrace(sim::Rng rng, double good_bps, double mid_bps,
                           double bad_bps)
    : rng_(rng), rates_{good_bps, mid_bps, bad_bps} {}

double ChannelTrace::next_capacity_bps() {
  // Sticky three-state Markov chain: 80% stay, 20% move to a neighbor state
  // (reflecting at the ends) — slot-scale coherence like an indoor channel.
  if (rng_.bernoulli(0.2)) {
    if (state_ == 0) {
      state_ = 1;
    } else if (state_ == 2) {
      state_ = 1;
    } else {
      state_ = rng_.bernoulli(0.5) ? 0 : 2;
    }
  }
  // Small lognormal wobble within the state.
  return rates_[state_] * std::exp(rng_.normal(0.0, 0.08));
}

namespace {

double psnr_at_rate(const FgsConfig& cfg, double decoded_bps) {
  if (decoded_bps < cfg.base_layer_bps) {
    // Base layer incomplete: severe degradation, scaled by coverage.
    const double frac = decoded_bps / cfg.base_layer_bps;
    return cfg.psnr_base_db * std::max(0.3, frac);
  }
  const double ratio = decoded_bps / cfg.base_layer_bps;
  return cfg.psnr_base_db +
         cfg.psnr_gain_db_per_doubling * std::log2(ratio + 1e-12);
}

/// One session's slot work order for the batched step below.
struct SlotInput {
  FgsPolicy policy;
  const FgsConfig* cfg;
  dvfs::Processor* cpu;
  double capacity_bps;
  double loss;
  FgsSlotAccum* st;
};

// Batch staging layout: kBatchFields arrays of n doubles carved out of one
// buffer, in FgsSlotBatch field order (16 inputs then 8 outputs).
constexpr std::size_t kBatchFields = 24;

/// A batch of per-client slots in three phases: (A) per-session adaptation
/// in batch order — the DVFS level search, feedback energy debit, and input
/// staging mutate Processor/accumulator state, so they stay scalar and
/// ordered; (B) the slot arithmetic as one exec::simd::fgs_slots call,
/// purely elementwise so each session's numbers are bitwise independent of
/// the batch grouping and the ISA; (C) per-session accumulator mutations in
/// the original process_slot order.  `buf` holds kBatchFields * n doubles,
/// one array per FgsSlotBatch field in declaration order.
void process_slots(std::span<const SlotInput> in, double* buf) {
  const std::size_t n = in.size();
  double* f[kBatchFields];
  for (std::size_t k = 0; k < kBatchFields; ++k) f[k] = buf + k * n;
  exec::simd::FgsSlotBatch b;
  b.n = n;
  b.capacity_bps = f[0];
  b.loss = f[1];
  b.policy_graceful = f[2];
  b.policy_feedback = f[3];
  b.freq_hz = f[4];
  b.total_power_w = f[5];
  b.max_stream_bps = f[6];
  b.base_layer_bps = f[7];
  b.slot_s = f[8];
  b.decode_cycles_per_bit = f[9];
  b.rx_nj_per_bit = f[10];
  b.loss_shed_gain = f[11];
  b.base_only_loss_threshold = f[12];
  b.base_fec_cap = f[13];
  b.max_enhancement_bps = f[14];
  b.loss_ewma = f[15];
  b.shed = f[16];
  b.rx_bits = f[17];
  b.decodable_bits = f[18];
  b.rx_energy_j = f[19];
  b.cpu_decode_energy_j = f[20];
  b.cpu_idle_energy_j = f[21];
  b.load_norm = f[22];
  b.decoded_bps = f[23];

  for (std::size_t i = 0; i < n; ++i) {
    const SlotInput& s = in[i];
    const FgsConfig& cfg = *s.cfg;
    dvfs::Processor& cpu = *s.cpu;
    const double max_stream_bps = cfg.base_layer_bps + cfg.max_enhancement_bps;
    const bool feedback = s.policy == FgsPolicy::kClientFeedback ||
                          s.policy == FgsPolicy::kGracefulDegradation;

    // --- client advertises its decoding aptitude ---
    if (feedback) {
      const double expected_bps = std::min(s.capacity_bps, max_stream_bps);
      const double needed_cycles = expected_bps * cfg.slot_s *
                                   cfg.decode_cycles_per_bit /
                                   cfg.target_normalized_load;
      std::size_t lvl = cpu.num_points() - 1;
      for (std::size_t l = 0; l < cpu.num_points(); ++l) {
        if (cpu.point(l).frequency_hz * cfg.slot_s >= needed_cycles) {
          lvl = l;
          break;
        }
      }
      cpu.set_level(lvl);
      s.st->rx_energy_j += cfg.feedback_tx_nj * 1e-9;  // per-slot feedback
    }
    f[0][i] = s.capacity_bps;
    f[1][i] = s.loss;
    f[2][i] = s.policy == FgsPolicy::kGracefulDegradation ? 1.0 : 0.0;
    f[3][i] = s.policy == FgsPolicy::kClientFeedback ? 1.0 : 0.0;
    f[4][i] = cpu.current().frequency_hz;
    f[5][i] = cpu.model().total_power(cpu.current());
    f[6][i] = max_stream_bps;
    f[7][i] = cfg.base_layer_bps;
    f[8][i] = cfg.slot_s;
    f[9][i] = cfg.decode_cycles_per_bit;
    f[10][i] = cfg.rx_nj_per_bit;
    f[11][i] = cfg.loss_shed_gain;
    f[12][i] = cfg.base_only_loss_threshold;
    f[13][i] = cfg.base_fec_cap;
    f[14][i] = cfg.max_enhancement_bps;
    f[15][i] = s.st->loss_ewma;
  }

  exec::simd::kernels().fgs_slots(b);

  for (std::size_t i = 0; i < n; ++i) {
    const SlotInput& s = in[i];
    const FgsConfig& cfg = *s.cfg;
    FgsSlotAccum& st = *s.st;
    st.rx_bits += b.rx_bits[i];
    st.wasted_bits += b.rx_bits[i] - b.decodable_bits[i];  // incl. FEC copies
    st.rx_energy_j += b.rx_energy_j[i];
    st.cpu_energy_j += b.cpu_decode_energy_j[i];
    st.cpu_energy_j += b.cpu_idle_energy_j[i];
    st.load.add(b.load_norm[i]);
    st.loss.add(s.loss);
    st.shed.add(b.shed[i]);
    const double decoded_bps = b.decoded_bps[i];
    if (decoded_bps < cfg.base_layer_bps) ++st.base_misses;
    const double psnr = psnr_at_rate(cfg, decoded_bps);
    st.psnr.add(psnr);
    st.min_psnr = std::min(st.min_psnr, psnr);
    st.loss_ewma = cfg.loss_ewma_alpha * s.loss +
                   (1.0 - cfg.loss_ewma_alpha) * st.loss_ewma;
    st.last_psnr = psnr;
    st.last_load = b.load_norm[i];
  }
}

/// One client's slot under the given policy, channel share, and loss
/// fraction: a batch of one on stack storage, so the DES per-event path
/// stays allocation-free while sharing the exec::simd kernel with the wave
/// scheduler's big batches (bitwise identical either way — the kernel is
/// elementwise).
void process_slot(FgsPolicy policy, const FgsConfig& cfg,
                  dvfs::Processor& cpu, double capacity_bps, double loss,
                  FgsSlotAccum& st) {
  const SlotInput one{policy, &cfg, &cpu, capacity_bps, loss, &st};
  double buf[kBatchFields];
  process_slots({&one, 1}, buf);
}

FgsReport make_report(const FgsSlotAccum& st, std::size_t slots) {
  FgsReport rep;
  rep.slots = slots;
  rep.mean_psnr_db = st.psnr.mean();
  rep.min_psnr_db = slots ? st.min_psnr : 0.0;
  rep.client_rx_energy_j = st.rx_energy_j;
  rep.client_cpu_energy_j = st.cpu_energy_j;
  rep.client_total_energy_j = st.rx_energy_j + st.cpu_energy_j;
  rep.mean_normalized_load = st.load.count() ? st.load.mean() : 0.0;
  rep.wasted_rx_fraction =
      st.rx_bits > 0.0 ? st.wasted_bits / st.rx_bits : 0.0;
  rep.base_layer_misses = st.base_misses;
  rep.mean_loss = st.loss.count() ? st.loss.mean() : 0.0;
  rep.mean_enhancement_shed = st.shed.count() ? st.shed.mean() : 0.0;
  return rep;
}

}  // namespace

struct FgsBatchScratch::Impl {
  exec::aligned_vector<double> buf;  // kBatchFields arrays of n doubles
  std::vector<SlotInput> inputs;
};

FgsBatchScratch::FgsBatchScratch() : impl_(std::make_unique<Impl>()) {}
FgsBatchScratch::~FgsBatchScratch() = default;
FgsBatchScratch::FgsBatchScratch(FgsBatchScratch&&) noexcept = default;
FgsBatchScratch& FgsBatchScratch::operator=(FgsBatchScratch&&) noexcept =
    default;

FgsSessionFom::FgsSessionFom(FgsPolicy policy, const FgsConfig& cfg,
                             dvfs::Processor& client_cpu,
                             ChannelTrace& channel, std::size_t slots,
                             SlotLossTrace* loss)
    : policy_(policy), cfg_(cfg), cpu_(client_cpu), channel_(channel),
      loss_(loss), slots_(slots) {}

double FgsSessionFom::step() {
  switch (phase_) {
    case FgsFomPhase::kInit:
      if (policy_ == FgsPolicy::kNonAdaptive) {
        cpu_.set_level(cpu_.num_points() - 1);
      }
      if (slots_ == 0) {
        report_ = make_report(accum_, 0);
        phase_ = FgsFomPhase::kDone;
        return kFinished;
      }
      phase_ = FgsFomPhase::kSlot;
      return kAgain;
    case FgsFomPhase::kSlot: {
      // Evaluation order matters for bitwise equivalence with the original
      // loop: the loss cursor advances before the channel draws its RNG.
      const double l = loss_ != nullptr ? loss_->loss_for_slot(slot_) : 0.0;
      process_slot(policy_, cfg_, cpu_, channel_.next_capacity_bps(), l,
                   accum_);
      ++slot_;
      if (slot_ >= slots_) {
        report_ = make_report(accum_, slots_);
        phase_ = FgsFomPhase::kDone;
        return kFinished;
      }
      return cfg_.slot_s;
    }
    case FgsFomPhase::kDone:
      return kFinished;
  }
  return kFinished;  // unreachable
}

void FgsSessionFom::step_batch(std::span<FgsSessionFom* const> sessions,
                               FgsBatchScratch& scratch,
                               std::span<double> delay_out) {
  const std::size_t n = sessions.size();
  assert(delay_out.size() >= n);
  auto& impl = *scratch.impl_;
  impl.buf.resize(kBatchFields * n);
  impl.inputs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    FgsSessionFom& f = *sessions[i];
    assert(f.phase_ == FgsFomPhase::kSlot);
    // Per-session order within the batch matches a DES draining the
    // same-timestamp cohort; per session, the loss cursor advances before
    // the channel draws its RNG (the documented kSlot contract).
    const double l = f.loss_ != nullptr ? f.loss_->loss_for_slot(f.slot_) : 0.0;
    impl.inputs[i] = SlotInput{f.policy_, &f.cfg_, &f.cpu_,
                               f.channel_.next_capacity_bps(), l, &f.accum_};
  }
  process_slots(impl.inputs, impl.buf.data());
  for (std::size_t i = 0; i < n; ++i) {
    FgsSessionFom& f = *sessions[i];
    ++f.slot_;
    if (f.slot_ >= f.slots_) {
      f.report_ = make_report(f.accum_, f.slots_);
      f.phase_ = FgsFomPhase::kDone;
      delay_out[i] = kFinished;
    } else {
      delay_out[i] = f.cfg_.slot_s;
    }
  }
}

const FgsReport& FgsSessionFom::report() const {
  if (phase_ != FgsFomPhase::kDone) {
    throw holms::RuntimeError("FgsSessionFom: report() before done()");
  }
  return report_;
}

FgsReport run_fgs_session(FgsPolicy policy, const FgsConfig& cfg,
                          dvfs::Processor& client_cpu, ChannelTrace& channel,
                          std::size_t slots, SlotLossTrace* loss) {
  FgsSessionFom fom(policy, cfg, client_cpu, channel, slots, loss);
  while (!fom.done()) fom.step();
  return fom.report();
}

AdhocReport run_fgs_adhoc(FgsPolicy policy, const FgsConfig& cfg,
                          std::vector<dvfs::Processor>& clients,
                          ChannelTrace& shared_channel, std::size_t slots,
                          SlotLossTrace* loss) {
  AdhocReport rep;
  if (clients.empty()) return rep;
  if (policy == FgsPolicy::kNonAdaptive) {
    for (auto& c : clients) c.set_level(c.num_points() - 1);
  }
  std::vector<FgsSlotAccum> states(clients.size());
  std::vector<SlotInput> inputs(clients.size());
  exec::aligned_vector<double> buf(kBatchFields * clients.size());
  for (std::size_t s = 0; s < slots; ++s) {
    // Fair medium share: every active stream gets capacity / N this slot
    // (every multimedia host also forwards/receives, §4.2 — here they all
    // contend for the same spectrum).  The whole slot is one batched
    // exec::simd call across the clients — bitwise identical to the old
    // per-client loop because the kernel is elementwise.
    const double share = shared_channel.next_capacity_bps() /
                         static_cast<double>(clients.size());
    const double l = loss != nullptr ? loss->loss_for_slot(s) : 0.0;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      inputs[c] = SlotInput{policy, &cfg, &clients[c], share, l, &states[c]};
    }
    process_slots(inputs, buf.data());
  }
  rep.min_psnr_db = std::numeric_limits<double>::infinity();
  sim::OnlineStats psnr;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    rep.per_client.push_back(make_report(states[c], slots));
    rep.total_client_energy_j += rep.per_client.back().client_total_energy_j;
    psnr.add(rep.per_client.back().mean_psnr_db);
    rep.min_psnr_db =
        std::min(rep.min_psnr_db, rep.per_client.back().min_psnr_db);
  }
  rep.mean_psnr_db = psnr.mean();
  if (slots == 0) rep.min_psnr_db = 0.0;
  return rep;
}

}  // namespace holms::streaming
