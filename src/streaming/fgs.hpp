#pragma once
// Energy-aware MPEG-4 FGS video streaming (paper §4.1, refs [28][29]).
//
// "a low energy MPEG-4 FGS streaming policy using a client-feedback method
//  is presented, where the client decoding aptitude in each timeslot is
//  communicated to the server, and the server subsequently determines the
//  additional amount of data in the form of enhancement layers on top of the
//  MPEG-4 base layer. ... a dynamic voltage and frequency scaling technique
//  is used to adjust the decoding aptitude of the client ... the notion of a
//  normalized decoding load is introduced ... a video streaming system that
//  maintains this normalized load at unity produces the optimum video
//  quality with no energy waste."
//
// The session advances in timeslots.  Each slot the wireless channel offers
// a capacity, the server picks a send rate (base layer + FGS enhancement
// truncated at any bit position), the client receives and decodes.  Data
// received beyond the client's decoding aptitude is pure communication-
// energy waste; aptitude beyond the received data is compute-energy waste.

#include <cstddef>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace holms::streaming {

enum class FgsPolicy {
  kNonAdaptive,      // server sends max enhancement; client at max frequency
  kClientFeedback,   // [28]: per-slot aptitude feedback + client DVFS
};

struct FgsConfig {
  double slot_s = 0.5;               // feedback timeslot
  double base_layer_bps = 256e3;     // BL must always be decoded
  double max_enhancement_bps = 2.0e6;  // FGS cap on top of BL
  double decode_cycles_per_bit = 180.0;
  double rx_nj_per_bit = 230.0;      // WLAN receive energy (client side)
  double feedback_tx_nj = 4000.0;    // per-slot feedback message cost
  double target_normalized_load = 1.0;
  // Quality model: PSNR grows logarithmically in rate above the base layer.
  double psnr_base_db = 30.0;
  double psnr_gain_db_per_doubling = 2.8;
};

/// Markov-modulated wireless channel capacity per slot (three states).
class ChannelTrace {
 public:
  ChannelTrace(sim::Rng rng, double good_bps = 3.0e6, double mid_bps = 1.2e6,
               double bad_bps = 0.35e6);
  /// Capacity offered in the next slot.
  double next_capacity_bps();

 private:
  sim::Rng rng_;
  double rates_[3];
  std::size_t state_ = 0;
};

struct FgsReport {
  double mean_psnr_db = 0.0;
  double min_psnr_db = 0.0;
  double client_rx_energy_j = 0.0;     // communication energy at the client
  double client_cpu_energy_j = 0.0;
  double client_total_energy_j = 0.0;
  double mean_normalized_load = 0.0;
  double wasted_rx_fraction = 0.0;     // received bits never decoded
  std::size_t base_layer_misses = 0;   // slots where BL couldn't be decoded
  std::size_t slots = 0;
};

/// Runs one streaming session for `slots` timeslots.
FgsReport run_fgs_session(FgsPolicy policy, const FgsConfig& cfg,
                          dvfs::Processor& client_cpu, ChannelTrace& channel,
                          std::size_t slots);

/// Distributed (ad hoc mode, §4.1) streaming: several peer-to-peer streams
/// share one wireless medium.  Each slot the channel capacity is divided
/// equally among the streams that want to transmit (CSMA-style fair share);
/// each client then applies its own policy against its share.
struct AdhocReport {
  std::vector<FgsReport> per_client;
  double total_client_energy_j = 0.0;
  double mean_psnr_db = 0.0;
  double min_psnr_db = 0.0;
};

AdhocReport run_fgs_adhoc(FgsPolicy policy, const FgsConfig& cfg,
                          std::vector<dvfs::Processor>& clients,
                          ChannelTrace& shared_channel, std::size_t slots);

}  // namespace holms::streaming
