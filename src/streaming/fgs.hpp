#pragma once
// Energy-aware MPEG-4 FGS video streaming (paper §4.1, refs [28][29]).
//
// "a low energy MPEG-4 FGS streaming policy using a client-feedback method
//  is presented, where the client decoding aptitude in each timeslot is
//  communicated to the server, and the server subsequently determines the
//  additional amount of data in the form of enhancement layers on top of the
//  MPEG-4 base layer. ... a dynamic voltage and frequency scaling technique
//  is used to adjust the decoding aptitude of the client ... the notion of a
//  normalized decoding load is introduced ... a video streaming system that
//  maintains this normalized load at unity produces the optimum video
//  quality with no energy waste."
//
// The session advances in timeslots.  Each slot the wireless channel offers
// a capacity, the server picks a send rate (base layer + FGS enhancement
// truncated at any bit position), the client receives and decodes.  Data
// received beyond the client's decoding aptitude is pure communication-
// energy waste; aptitude beyond the received data is compute-energy waste.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace holms::streaming {

enum class FgsPolicy {
  kNonAdaptive,      // server sends max enhancement; client at max frequency
  kClientFeedback,   // [28]: per-slot aptitude feedback + client DVFS
  kGracefulDegradation,  // kClientFeedback + loss-driven degradation ladder:
                         // under sustained loss the server sheds FGS
                         // enhancement bits first and spends part of the
                         // freed budget on base-layer repetition (FEC
                         // margin), dropping to base-only under severe loss
                         // and recovering as the channel heals
};

struct FgsConfig {
  double slot_s = 0.5;               // feedback timeslot
  double base_layer_bps = 256e3;     // BL must always be decoded
  double max_enhancement_bps = 2.0e6;  // FGS cap on top of BL
  double decode_cycles_per_bit = 180.0;
  double rx_nj_per_bit = 230.0;      // WLAN receive energy (client side)
  double feedback_tx_nj = 4000.0;    // per-slot feedback message cost
  double target_normalized_load = 1.0;
  // Quality model: PSNR grows logarithmically in rate above the base layer.
  double psnr_base_db = 30.0;
  double psnr_gain_db_per_doubling = 2.8;
  // Graceful-degradation ladder (kGracefulDegradation only).  The loss EWMA
  // tracks sustained channel loss; the shed fraction of the enhancement
  // budget grows `loss_shed_gain` times faster than the EWMA; above
  // `base_only_loss_threshold` only the base layer is sent; the base layer
  // is protected with a repetition-FEC margin of loss/(1-loss), capped at
  // `base_fec_cap` extra copies.
  double loss_ewma_alpha = 0.3;
  double loss_shed_gain = 2.0;
  double base_only_loss_threshold = 0.5;
  double base_fec_cap = 1.0;
};

/// Per-slot packet-loss fraction derived from a shared FaultSchedule (event
/// times in seconds).  While any hard fault (kFail .. kRepair) is active the
/// channel loses `faulty_loss` of the bits in flight; while only transient
/// soft faults (kSoftFail .. kScrub) are pending, `soft_loss` (pass a
/// negative value to reuse `faulty_loss`); otherwise `nominal_loss`.  Hard
/// outages dominate soft corruption when both are active.  Slots must be
/// queried in increasing order (replay cursor).
class SlotLossTrace {
 public:
  SlotLossTrace(const fault::FaultSchedule* schedule, double slot_s,
                double nominal_loss = 0.0, double faulty_loss = 0.3,
                double soft_loss = -1.0);

  /// Loss fraction for slot `slot` (slots queried monotonically).
  double loss_for_slot(std::size_t slot);

  /// Soft faults cleared by scrub events replayed so far.
  std::size_t scrubs_applied() const { return scrubs_applied_; }

 private:
  fault::FaultInjector injector_;
  double slot_s_;
  double nominal_;
  double faulty_;
  double soft_;
  std::size_t active_faults_ = 0;
  std::size_t active_soft_ = 0;
  std::size_t scrubs_applied_ = 0;
};

/// Markov-modulated wireless channel capacity per slot (three states).
class ChannelTrace {
 public:
  ChannelTrace(sim::Rng rng, double good_bps = 3.0e6, double mid_bps = 1.2e6,
               double bad_bps = 0.35e6);
  /// Capacity offered in the next slot.
  double next_capacity_bps();

 private:
  sim::Rng rng_;
  double rates_[3];
  std::size_t state_ = 0;
};

struct FgsReport {
  double mean_psnr_db = 0.0;
  double min_psnr_db = 0.0;
  double client_rx_energy_j = 0.0;     // communication energy at the client
  double client_cpu_energy_j = 0.0;
  double client_total_energy_j = 0.0;
  double mean_normalized_load = 0.0;
  double wasted_rx_fraction = 0.0;     // received bits never decoded
  std::size_t base_layer_misses = 0;   // slots where BL couldn't be decoded
  std::size_t slots = 0;
  double mean_loss = 0.0;              // mean channel-loss fraction seen
  double mean_enhancement_shed = 0.0;  // mean shed fraction (graceful only)
};

/// Per-slot accumulators for one client.  A detail of the slot step shared
/// by the session state machine and the ad hoc simulation; results are read
/// through FgsReport, but the struct lives here so FgsSessionFom can embed
/// it without heap indirection.
struct FgsSlotAccum {
  sim::OnlineStats psnr;
  sim::OnlineStats load;
  sim::OnlineStats loss;
  sim::OnlineStats shed;
  double rx_bits = 0.0;
  double wasted_bits = 0.0;
  double rx_energy_j = 0.0;
  double cpu_energy_j = 0.0;
  double min_psnr = std::numeric_limits<double>::infinity();
  std::size_t base_misses = 0;
  double loss_ewma = 0.0;  // sustained-loss estimate driving the ladder
  double last_psnr = 0.0;  // most recent slot (serve-layer telemetry)
  double last_load = 0.0;
};

/// Reusable SoA staging buffers for FgsSessionFom::step_batch (pimpl — the
/// layout is a detail of fgs.cpp's exec::simd batch kernel).  One scratch
/// per caller; capacity grows to the largest batch seen and is reused.
class FgsBatchScratch {
 public:
  FgsBatchScratch();
  ~FgsBatchScratch();
  FgsBatchScratch(FgsBatchScratch&&) noexcept;
  FgsBatchScratch& operator=(FgsBatchScratch&&) noexcept;

 private:
  friend class FgsSessionFom;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Explicit phases of one streaming session, reqh/FOM style.
enum class FgsFomPhase : std::uint8_t {
  kInit,  // one-time policy setup (non-adaptive pins the max DVFS level)
  kSlot,  // one timeslot of adapt -> send -> lose -> decode per step()
  kDone,  // report available
};

/// Resumable, non-blocking state machine for one FGS streaming session.
///
/// Each step() executes exactly one phase transition and returns the
/// simulated delay until the machine must run again — kAgain (0.0) to
/// continue within the same timestamp, cfg.slot_s between slots, or a
/// negative value (kFinished) once the session is done.  The FOM never
/// blocks and holds no thread: a scheduler (serve::ServiceManager) parks it
/// between steps as a DES event, so tens of thousands of sessions multiplex
/// onto one locality.  The legacy one-shot run_fgs_session() below is a thin
/// driver over this machine and produces bitwise-identical reports.
///
/// Holds references to the client's Processor and ChannelTrace; the FOM must
/// not outlive them and must not move once stepping begins (sessions are
/// heap-pinned by the service layer).
class FgsSessionFom {
 public:
  static constexpr double kAgain = 0.0;
  static constexpr double kFinished = -1.0;

  FgsSessionFom(FgsPolicy policy, const FgsConfig& cfg,
                dvfs::Processor& client_cpu, ChannelTrace& channel,
                std::size_t slots, SlotLossTrace* loss = nullptr);

  /// Runs one phase transition; see class comment for the return protocol.
  double step();

  /// Steps a batch of sessions, all in phase kSlot, through one timeslot
  /// each: per-session adaptation (loss cursor, channel draw, DVFS feedback)
  /// runs scalar in batch order — exactly the order a DES executing the
  /// same-timestamp cohort would use — then the slot arithmetic runs as ONE
  /// exec::simd::fgs_slots call, and the accumulator mutations replay
  /// per-session in the original order.  The kernel is purely elementwise,
  /// so each session's results are bitwise identical to stepping it alone;
  /// delay_out[i] receives what sessions[i]->step() would have returned
  /// (cfg.slot_s or kFinished).  serve's wave scheduler uses this to batch a
  /// locality's runnable sessions per slot.
  static void step_batch(std::span<FgsSessionFom* const> sessions,
                         FgsBatchScratch& scratch,
                         std::span<double> delay_out);

  bool done() const { return phase_ == FgsFomPhase::kDone; }
  FgsFomPhase phase() const { return phase_; }
  std::size_t slots_done() const { return slot_; }
  double slot_s() const { return cfg_.slot_s; }

  /// Telemetry of the most recent completed slot (serve feeds these into
  /// its streaming quantile sketches without touching the accumulators).
  double last_psnr_db() const { return accum_.last_psnr; }
  double last_load() const { return accum_.last_load; }

  /// Valid once done(); throws RuntimeError before that.
  const FgsReport& report() const;

 private:
  FgsPolicy policy_;
  FgsConfig cfg_;
  dvfs::Processor& cpu_;
  ChannelTrace& channel_;
  SlotLossTrace* loss_;
  std::size_t slots_;
  std::size_t slot_ = 0;
  FgsFomPhase phase_ = FgsFomPhase::kInit;
  FgsSlotAccum accum_;
  FgsReport report_;
};

/// Runs one streaming session for `slots` timeslots.  An optional loss trace
/// injects per-slot channel loss; graceful degradation sheds enhancement
/// before the base layer, every other policy loses bits uniformly.
/// (Thin synchronous driver over FgsSessionFom.)
FgsReport run_fgs_session(FgsPolicy policy, const FgsConfig& cfg,
                          dvfs::Processor& client_cpu, ChannelTrace& channel,
                          std::size_t slots, SlotLossTrace* loss = nullptr);

/// Distributed (ad hoc mode, §4.1) streaming: several peer-to-peer streams
/// share one wireless medium.  Each slot the channel capacity is divided
/// equally among the streams that want to transmit (CSMA-style fair share);
/// each client then applies its own policy against its share.
struct AdhocReport {
  std::vector<FgsReport> per_client;
  double total_client_energy_j = 0.0;
  double mean_psnr_db = 0.0;
  double min_psnr_db = 0.0;
};

AdhocReport run_fgs_adhoc(FgsPolicy policy, const FgsConfig& cfg,
                          std::vector<dvfs::Processor>& clients,
                          ChannelTrace& shared_channel, std::size_t slots,
                          SlotLossTrace* loss = nullptr);

}  // namespace holms::streaming
