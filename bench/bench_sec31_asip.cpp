// E1 — §3.1 claim: "a complete voice recognition system ... base processor
// core enhanced with less than 10 low-complexity custom instructions ...
// speed-up factors between 5x-10x ... total gate count less than 200k."
#include <cstdio>
#include <vector>

#include "asip/extensions.hpp"
#include "asip/jpeg.hpp"
#include "asip/kernels.hpp"
#include "bench_util.hpp"

using namespace holms::asip;

namespace {

struct ConfigRow {
  const char* label;
  CoreConfig cfg;
  std::vector<std::string> exts;
};

}  // namespace

int main() {
  holms::bench::BenchReport report("sec31_asip");
  holms::bench::title("E1", "ASIP customization for voice recognition (5-10x)");
  VoiceRecognitionApp app;

  CoreConfig base;
  CoreConfig blocks = base;
  blocks.include_mac_block = true;
  CoreConfig tuned = blocks;
  tuned.dcache_lines = 256;

  const std::vector<ConfigRow> rows = {
      {"base core", base, {}},
      {"+MAC block", blocks, {}},
      {"+dcache 256", tuned, {}},
      {"+mac.load", tuned, {kExtMacLoad}},
      {"+sqd.load", tuned, {kExtMacLoad, kExtSqdLoad}},
      {"+absdiff", tuned, {kExtMacLoad, kExtSqdLoad, kExtAbsDiff}},
      {"+dtw.cell (full)",
       tuned,
       {kExtMacLoad, kExtSqdLoad, kExtAbsDiff, kExtDtwCell}},
  };

  std::printf("%-18s %6s %12s %10s %10s %10s %8s\n", "configuration",
              "#ext", "cycles", "speedup", "gates", "energy-uJ", "word");
  double base_cycles = 0.0;
  for (const auto& row : rows) {
    std::int32_t word = -1;
    const RunResult r = evaluate_app(app, row.cfg, row.exts, 42, &word);
    if (base_cycles == 0.0) base_cycles = static_cast<double>(r.cycles);
    std::vector<Extension> sel;
    for (const auto& n : row.exts) sel.push_back(find_extension(n));
    std::printf("%-18s %6zu %12llu %10.2f %10.0f %10.2f %8d\n", row.label,
                row.exts.size(), static_cast<unsigned long long>(r.cycles),
                base_cycles / static_cast<double>(r.cycles),
                total_gates(row.cfg, sel), r.energy_pj * 1e-6, word);
  }
  // Platform reuse (§1): the same catalog accelerates a second application.
  holms::bench::rule();
  holms::bench::note("same extension catalog on a JPEG-style encoder:");
  {
    holms::asip::JpegEncoderApp jpeg;
    const RunResult jb = evaluate_jpeg(jpeg, base, {});
    const RunResult ja =
        evaluate_jpeg(jpeg, tuned, {kExtMacLoad, kExtShiftMac});
    std::printf("  jpeg base: %llu cycles; +{mac.load, shift.mac}: %llu "
                "cycles (%.2fx)\n",
                static_cast<unsigned long long>(jb.cycles),
                static_cast<unsigned long long>(ja.cycles),
                static_cast<double>(jb.cycles) /
                    static_cast<double>(ja.cycles));
  }

  holms::bench::rule();
  holms::bench::note(
      "paper claim: 5x-10x speedup, <10 custom instructions, <200k gates.");
  holms::bench::note(
      "expected shape: the full configuration lands in the 5-10x band with "
      "4 extensions and well under 200k gates; the recognized word is "
      "bit-identical across all configurations.");
  return 0;
}
