// E4 — §3.3 [20]: "more than 50% energy savings are possible, for a complex
// video/audio application, compared to an ad-hoc implementation" via
// energy-aware mapping of IPs onto a regular NoC.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/mapping.hpp"
#include "noc/taskgraph.hpp"

using namespace holms::noc;
using holms::sim::Rng;

namespace {

void run_case(const char* name, const AppGraph& g, const Mesh2D& mesh,
              double link_bw) {
  EnergyModel em;
  Rng rng(7);

  // Ad-hoc baseline: average over random placements (what an unoptimized
  // design ends up with).
  double adhoc = 0.0;
  double adhoc_hops = 0.0;
  const int trials = 25;
  for (int i = 0; i < trials; ++i) {
    const auto m = random_mapping(g.num_nodes(), mesh, rng);
    const auto ev = evaluate_mapping(g, mesh, em, m, link_bw);
    adhoc += ev.comm_energy_j;
    adhoc_hops += ev.volume_weighted_hops;
  }
  adhoc /= trials;
  adhoc_hops /= trials;

  const auto greedy = greedy_mapping(g, mesh, em);
  const auto eg = evaluate_mapping(g, mesh, em, greedy, link_bw);

  SaOptions sa;
  sa.iterations = 20000;
  sa.link_capacity_bps = link_bw;
  const auto best = sa_mapping(g, mesh, em, rng, sa);
  const auto eb = evaluate_mapping(g, mesh, em, best, link_bw);

  std::printf("\napplication: %s (%zu cores, %zu edges) on %zux%zu mesh\n",
              name, g.num_nodes(), g.edges().size(), mesh.width(),
              mesh.height());
  std::printf("%-22s %14s %10s %10s %10s\n", "mapper", "energy-uJ",
              "savings", "avg-hops", "feasible");
  std::printf("%-22s %14.3f %10s %10.2f %10s\n", "ad-hoc (random avg)",
              adhoc * 1e6, "-", adhoc_hops, "-");
  std::printf("%-22s %14.3f %9.1f%% %10.2f %10s\n", "greedy constructive",
              eg.comm_energy_j * 1e6, 100.0 * (1.0 - eg.comm_energy_j / adhoc),
              eg.volume_weighted_hops, eg.bandwidth_feasible ? "yes" : "NO");
  std::printf("%-22s %14.3f %9.1f%% %10.2f %10s\n", "energy-aware (SA)",
              eb.comm_energy_j * 1e6, 100.0 * (1.0 - eb.comm_energy_j / adhoc),
              eb.volume_weighted_hops, eb.bandwidth_feasible ? "yes" : "NO");
}

}  // namespace

int main() {
  holms::bench::BenchReport report("sec33_mapping");
  holms::bench::title("E4", "Energy-aware NoC mapping vs ad-hoc (>50% claim)");
  run_case("MMS video/audio enc+dec", mms_graph(), Mesh2D(4, 4), 60e6);
  run_case("video surveillance (sec 3.2)", video_surveillance_graph(),
           Mesh2D(4, 4), 0.0);
  Rng rng(11);
  run_case("random TGFF-style DAG (24 cores)", random_graph(24, rng, 2e6),
           Mesh2D(5, 5), 0.0);
  // Optimality reference on a small instance ([20] is a branch-and-bound
  // mapper; ours verifies how close the heuristics land).
  holms::bench::rule();
  holms::bench::note("optimality check (8 cores on 3x3, exact B&B):");
  {
    Rng rng(13);
    const AppGraph g = random_graph(8, rng, 2e6);
    const Mesh2D mesh(3, 3);
    EnergyModel em;
    const double opt =
        evaluate_mapping(g, mesh, em, bb_mapping(g, mesh, em)).comm_energy_j;
    const double grd =
        evaluate_mapping(g, mesh, em, greedy_mapping(g, mesh, em))
            .comm_energy_j;
    SaOptions sa;
    sa.iterations = 10000;
    const double ann =
        evaluate_mapping(g, mesh, em, sa_mapping(g, mesh, em, rng, sa))
            .comm_energy_j;
    std::printf("  optimal(B&B) %.3f uJ | greedy %.3f uJ (+%.1f%%) | "
                "SA %.3f uJ (+%.1f%%)\n",
                opt * 1e6, grd * 1e6, 100.0 * (grd / opt - 1.0), ann * 1e6,
                100.0 * (ann / opt - 1.0));
  }

  holms::bench::rule();
  holms::bench::note(
      "paper claim [20]: >50% energy savings vs ad-hoc for video/audio.");
  holms::bench::note(
      "expected shape: SA mapping cuts communication energy by >=50% vs the "
      "random-average baseline, with volume-weighted hop count near 1.");
  return 0;
}
