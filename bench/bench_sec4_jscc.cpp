// E8 — §4 [27]: energy-optimized image transmission via joint source-channel
// coding: "a global optimization problem is solved by using the feasible
// direction methods.  This results in an average of 60% energy saving for
// different channel conditions."
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "wireless/jscc.hpp"

using namespace holms::wireless;

int main() {
  holms::bench::BenchReport report("sec4_jscc");
  holms::bench::title("E8", "JSCC image transmission energy (60% claim)");
  JsccOptimizer opt(ImageModel{}, RadioModel{}, JsccOptimizer::Options{});

  // Indoor multipath link budget: the worst channel needs full power and a
  // deep code; the best lets the radio idle down — [27]'s operating regime.
  const double worst_gain = 5e-13;  // about -123 dB
  const auto base = opt.baseline(worst_gain);
  std::printf("non-adaptive baseline (worst-case design): R=%.2f bpp, "
              "P=%.2f W, K=%d -> %.2f mJ, PSNR %.1f dB\n",
              base.source_rate_bpp, base.tx_power_w,
              base.code.constraint_length, base.total_energy_j * 1e3,
              base.psnr_db);

  holms::bench::rule();
  std::printf("%-16s %8s %8s %4s %12s %10s %10s %9s\n", "channel-gain(dB)",
              "R(bpp)", "P(W)", "K", "energy-mJ", "PSNR-dB", "base-mJ",
              "saving");
  double save_sum = 0.0;
  int n = 0;
  for (double db = -123.0; db <= -99.0; db += 3.0) {
    const double gain = std::pow(10.0, db / 10.0);
    const auto tuned = opt.optimize(gain);
    const auto base_here = opt.evaluate(base, gain);
    if (!tuned.feasible) {
      std::printf("%-16.1f  (infeasible at distortion budget)\n", db);
      continue;
    }
    const double saving =
        1.0 - tuned.total_energy_j / base_here.total_energy_j;
    save_sum += saving;
    ++n;
    std::printf("%-16.1f %8.2f %8.2f %4d %12.3f %10.1f %10.3f %8.1f%%\n",
                db, tuned.source_rate_bpp, tuned.tx_power_w,
                tuned.code.constraint_length, tuned.total_energy_j * 1e3,
                tuned.psnr_db, base_here.total_energy_j * 1e3,
                100.0 * saving);
  }
  holms::bench::rule();
  std::printf("average energy saving across channel conditions: %.1f%%\n",
              100.0 * save_sum / std::max(n, 1));
  holms::bench::note("paper claim [27]: ~60% average energy saving.");
  holms::bench::note(
      "expected shape: on good channels the optimizer drops source rate to "
      "the distortion floor, sheds power and coding, and saves a large "
      "majority of the baseline energy; savings shrink toward the worst "
      "channel where the baseline is actually needed.");
  return 0;
}
