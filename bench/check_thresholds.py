#!/usr/bin/env python3
"""Gate a BENCH_*.json report against bench/thresholds.json.

Usage: check_thresholds.py <report.json> [thresholds.json] [--append-history]

The thresholds file may hold one section per report name (keyed by the
report's "name" field, e.g. "fault" for BENCH_fault.json); reports without
their own section use the top-level "min" block.  Every key under the
selected "min" must be present in the report (top level) and >= the
threshold; every key under "max" must be present and <= the threshold
(used by the "lint" section to pin graph_rules_findings and
stale_suppressions at zero).  Exits non-zero listing all violations.

A section may also carry a "min_if" list of conditional gates:

    {"key": "solve_thread_speedup_n4096", "floor": 2.0,
     "requires": "hw_threads", "at_least": 4}

enforces report[key] >= floor only when report[requires] >= at_least —
machine-dependent floors (threaded speedups) skip gracefully on starved
runners instead of failing on hardware the gate cannot measure.

--append-history appends one JSON line per run (report name, UTC timestamp,
every numeric top-level field) to bench/history.jsonl, building the
perf-trajectory record the ROADMAP calls for.

--render-history regenerates bench/HISTORY.md from bench/history.jsonl: one
markdown table per report name, rows in run order, headline columns first
(capped at 8 per table so the file stays reviewable).  The flag works
standalone — `check_thresholds.py --render-history` with no report argument
only renders.
"""
import datetime
import json
import os
import sys

HISTORY_PATH = os.path.join(os.path.dirname(__file__), "history.jsonl")
HISTORY_MD_PATH = os.path.join(os.path.dirname(__file__), "HISTORY.md")

# Columns surfaced first in HISTORY.md, per report name; anything else fills
# the remaining width in first-seen order.
HEADLINE_KEYS = {
    "micro": [
        "sim_events_per_s",
        "sa_moves_per_s_incremental",
        "sa_speedup_vs_full",
        "spmv_simd_speedup",
        "sa_delta_simd_speedup",
        "solve_thread_speedup_n4096",
        "wall_time_s",
    ],
    "fault": [
        "ft_delivery_ratio_5pct",
        "xy_delivery_gap_5pct",
        "fgs_min_psnr_db_30loss",
        "bitwise_reproducible",
        "slo_fraction_burst",
        "worst_window_availability",
        "crew_queue_max_depth",
        "wall_time_s",
    ],
    "explore_parallel": [
        "island_convergence_speedup",
        "island_thread_invariant",
        "island_resume_identity",
        "sweep32_cluster_wins",
        "island_k4_energy_j",
        "cache_hits",
        "deterministic",
        "wall_time_s",
    ],
    "serve": [
        "serve_concurrent_sessions",
        "serve_events_per_s",
        "serve_event_p99_us",
        "serve_thread_invariant",
        "serve_bitwise_reproducible",
        "wall_time_s",
    ],
    "lint": [
        "files",
        "files_per_s",
        "lint_ms",
        "graph_build_ms",
        "total_findings",
        "graph_rules_findings",
        "stale_suppressions",
        "suppressed",
    ],
}
MAX_COLUMNS = 8


def fmt(value) -> str:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value:.4g}"
    return str(value)


def render_history() -> None:
    if not os.path.exists(HISTORY_PATH):
        print(f"history: {HISTORY_PATH} does not exist; nothing to render")
        return
    rows = []
    with open(HISTORY_PATH) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))

    groups: dict = {}  # name -> list of rows, insertion-ordered
    for row in rows:
        groups.setdefault(row.get("name", "?"), []).append(row)

    out = [
        "# Bench history",
        "",
        "Perf trajectory across CI runs, one table per bench report.",
        "Generated from `bench/history.jsonl` by",
        "`check_thresholds.py --render-history` — do not edit by hand.",
        "",
    ]
    for name, group in groups.items():
        keys = list(HEADLINE_KEYS.get(name, []))
        for row in group:
            for key in row:
                if key in ("name", "timestamp") or key in keys:
                    continue
                if isinstance(row[key], (int, float)):
                    keys.append(key)
        dropped = len(keys) - MAX_COLUMNS
        keys = keys[:MAX_COLUMNS]
        out.append(f"## {name}")
        out.append("")
        out.append("| timestamp | " + " | ".join(keys) + " |")
        out.append("|---" * (len(keys) + 1) + "|")
        for row in group:
            cells = [fmt(row[k]) if k in row else "" for k in keys]
            out.append(
                "| " + row.get("timestamp", "?") + " | "
                + " | ".join(cells) + " |")
        if dropped > 0:
            out.append("")
            out.append(
                f"({dropped} more field(s) recorded in history.jsonl "
                "but not shown)")
        out.append("")
    with open(HISTORY_MD_PATH, "w") as f:
        f.write("\n".join(out))
    print(
        f"history: rendered {len(rows)} run(s), {len(groups)} report(s) "
        f"to {HISTORY_MD_PATH}")


def append_history(report: dict) -> None:
    line = {
        "name": report.get("name"),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    for key, value in report.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            line[key] = value
    with open(HISTORY_PATH, "a") as f:
        f.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"history: appended {line['name']} run to {HISTORY_PATH}")


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = {a for a in sys.argv[1:] if a.startswith("--")}
    unknown = flags - {"--append-history", "--render-history"}
    if unknown:
        print(f"unknown flags: {' '.join(sorted(unknown))}\n{__doc__}")
        return 2
    if not args:
        if "--render-history" in flags:
            render_history()
            return 0
        print(__doc__)
        return 2
    report_path = args[0]
    thresholds_path = args[1] if len(args) > 1 else "bench/thresholds.json"
    with open(report_path) as f:
        report = json.load(f)
    with open(thresholds_path) as f:
        thresholds = json.load(f)

    section = thresholds.get(report.get("name"), thresholds)
    if not isinstance(section, dict) or not (
        "min" in section or "max" in section or "min_if" in section
    ):
        section = thresholds

    failures = []
    for key, floor in section.get("min", {}).items():
        value = report.get(key)
        if value is None:
            failures.append(f"{key}: missing from {report_path}")
        elif value < floor:
            failures.append(f"{key}: {value:.6g} < required {floor:.6g}")
        else:
            print(f"ok  {key}: {value:.6g} >= {floor:.6g}")
    for key, ceiling in section.get("max", {}).items():
        value = report.get(key)
        if value is None:
            failures.append(f"{key}: missing from {report_path}")
        elif value > ceiling:
            failures.append(f"{key}: {value:.6g} > allowed {ceiling:.6g}")
        else:
            print(f"ok  {key}: {value:.6g} <= {ceiling:.6g}")
    for gate in section.get("min_if", []):
        key, floor = gate["key"], gate["floor"]
        requires, at_least = gate["requires"], gate["at_least"]
        available = report.get(requires)
        if available is None or available < at_least:
            print(
                f"skip {key}: {requires}={available} < {at_least} "
                "(gate not applicable on this machine)"
            )
            continue
        value = report.get(key)
        if value is None:
            failures.append(f"{key}: missing from {report_path}")
        elif value < floor:
            failures.append(
                f"{key}: {value:.6g} < required {floor:.6g} "
                f"({requires}={available:.6g})"
            )
        else:
            print(f"ok  {key}: {value:.6g} >= {floor:.6g}")

    if "--append-history" in flags:
        append_history(report)
    if "--render-history" in flags:
        render_history()

    if failures:
        print("\nperf-smoke FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nperf-smoke passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
