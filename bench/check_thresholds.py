#!/usr/bin/env python3
"""Gate a BENCH_*.json report against bench/thresholds.json.

Usage: check_thresholds.py <report.json> [thresholds.json] [--append-history]

The thresholds file may hold one section per report name (keyed by the
report's "name" field, e.g. "fault" for BENCH_fault.json); reports without
their own section use the top-level "min" block.  Every key under the
selected "min" must be present in the report (top level) and >= the
threshold.  Exits non-zero listing all violations.

A section may also carry a "min_if" list of conditional gates:

    {"key": "solve_thread_speedup_n4096", "floor": 2.0,
     "requires": "hw_threads", "at_least": 4}

enforces report[key] >= floor only when report[requires] >= at_least —
machine-dependent floors (threaded speedups) skip gracefully on starved
runners instead of failing on hardware the gate cannot measure.

--append-history appends one JSON line per run (report name, UTC timestamp,
every numeric top-level field) to bench/history.jsonl, building the
perf-trajectory record the ROADMAP calls for.
"""
import datetime
import json
import os
import sys

HISTORY_PATH = os.path.join(os.path.dirname(__file__), "history.jsonl")


def append_history(report: dict) -> None:
    line = {
        "name": report.get("name"),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    for key, value in report.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            line[key] = value
    with open(HISTORY_PATH, "a") as f:
        f.write(json.dumps(line, sort_keys=True) + "\n")
    print(f"history: appended {line['name']} run to {HISTORY_PATH}")


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = {a for a in sys.argv[1:] if a.startswith("--")}
    unknown = flags - {"--append-history"}
    if unknown:
        print(f"unknown flags: {' '.join(sorted(unknown))}\n{__doc__}")
        return 2
    if not args:
        print(__doc__)
        return 2
    report_path = args[0]
    thresholds_path = args[1] if len(args) > 1 else "bench/thresholds.json"
    with open(report_path) as f:
        report = json.load(f)
    with open(thresholds_path) as f:
        thresholds = json.load(f)

    section = thresholds.get(report.get("name"), thresholds)
    if not isinstance(section, dict) or "min" not in section:
        section = thresholds

    failures = []
    for key, floor in section.get("min", {}).items():
        value = report.get(key)
        if value is None:
            failures.append(f"{key}: missing from {report_path}")
        elif value < floor:
            failures.append(f"{key}: {value:.6g} < required {floor:.6g}")
        else:
            print(f"ok  {key}: {value:.6g} >= {floor:.6g}")
    for gate in section.get("min_if", []):
        key, floor = gate["key"], gate["floor"]
        requires, at_least = gate["requires"], gate["at_least"]
        available = report.get(requires)
        if available is None or available < at_least:
            print(
                f"skip {key}: {requires}={available} < {at_least} "
                "(gate not applicable on this machine)"
            )
            continue
        value = report.get(key)
        if value is None:
            failures.append(f"{key}: missing from {report_path}")
        elif value < floor:
            failures.append(
                f"{key}: {value:.6g} < required {floor:.6g} "
                f"({requires}={available:.6g})"
            )
        else:
            print(f"ok  {key}: {value:.6g} >= {floor:.6g}")

    if "--append-history" in flags:
        append_history(report)

    if failures:
        print("\nperf-smoke FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nperf-smoke passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
