#!/usr/bin/env python3
"""Gate a BENCH_*.json report against bench/thresholds.json.

Usage: check_thresholds.py <report.json> [thresholds.json]

The thresholds file may hold one section per report name (keyed by the
report's "name" field, e.g. "fault" for BENCH_fault.json); reports without
their own section use the top-level "min" block.  Every key under the
selected "min" must be present in the report (top level) and >= the
threshold.  Exits non-zero listing all violations.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    report_path = sys.argv[1]
    thresholds_path = (
        sys.argv[2] if len(sys.argv) > 2 else "bench/thresholds.json"
    )
    with open(report_path) as f:
        report = json.load(f)
    with open(thresholds_path) as f:
        thresholds = json.load(f)

    section = thresholds.get(report.get("name"), thresholds)
    if not isinstance(section, dict) or "min" not in section:
        section = thresholds

    failures = []
    for key, floor in section.get("min", {}).items():
        value = report.get(key)
        if value is None:
            failures.append(f"{key}: missing from {report_path}")
        elif value < floor:
            failures.append(f"{key}: {value:.6g} < required {floor:.6g}")
        else:
            print(f"ok  {key}: {value:.6g} >= {floor:.6g}")
    if failures:
        print("\nperf-smoke FAILED:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nperf-smoke passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
