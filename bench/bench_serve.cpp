// Service-layer scale experiment (DESIGN.md §5h).
//
// Runs a multi-tenant ServiceManager fleet — >10k concurrent FGS sessions
// plus a handful of MPEG-2 decoder networks, sharded over 16 localities —
// and measures sustained FOM-step throughput, per-event dispatch latency
// (p50/p99/p999 over wall-clock slices) and the determinism contract: the
// aggregate report fingerprint must be bitwise identical across thread
// counts and across repeat runs.  Emits BENCH_serve.json, gated by the
// "serve" section of bench/thresholds.json:
//   serve_concurrent_sessions  >= 10000  (admitted sessions in the fleet)
//   serve_thread_invariant     >= 1.0    (threads=1 fp == threads=hw fp)
//   serve_bitwise_reproducible >= 1.0    (repeat run fp identical)
//   serve_events_per_s         >= 3e5    (sustained FOM steps per second)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "fault/schedule.hpp"
#include "serve/service.hpp"
#include "sim/stats.hpp"
#include "stream/mpeg2.hpp"
#include "streaming/fgs.hpp"
#include "traffic/video.hpp"

namespace {

using holms::serve::ServeOptions;
using holms::serve::ServeReport;
using holms::serve::ServiceManager;
using holms::serve::SliceObserver;
using holms::streaming::FgsPolicy;

constexpr std::size_t kFgsSessions = 12288;
constexpr std::size_t kMpeg2Sessions = 32;
constexpr std::size_t kSlots = 200;  // 100 s of streaming at slot_s = 0.5

double fleet_horizon() {
  const holms::streaming::FgsConfig cfg;
  return static_cast<double>(kSlots) * cfg.slot_s + 5.0;
}

/// Builds the headline fleet: a 3:1 mix of feedback-adaptive and
/// non-adaptive clients plus a graceful-degradation cohort, and a few
/// MPEG-2 decoder networks as heterogeneous tenants.
std::unique_ptr<ServiceManager> make_fleet(std::size_t threads) {
  ServeOptions o;
  o.localities = 16;
  o.threads = threads;
  o.max_sessions = 20000;     // fleet fits: admission control stays out of
  o.degrade_watermark = 1.0;  // the way for the throughput measurement
  o.seed = 2026;
  auto m = std::make_unique<ServiceManager>(o);
  const holms::streaming::FgsConfig cfg;
  const FgsPolicy mix[4] = {
      FgsPolicy::kClientFeedback, FgsPolicy::kClientFeedback,
      FgsPolicy::kNonAdaptive, FgsPolicy::kGracefulDegradation};
  for (std::size_t i = 0; i < kFgsSessions; ++i) {
    m->add_fgs_session(mix[i % 4], cfg, kSlots);
  }
  const holms::stream::Mpeg2Config mcfg;
  const holms::traffic::VideoTraceGenerator::Params vp;
  for (std::size_t i = 0; i < kMpeg2Sessions; ++i) {
    m->add_mpeg2_session(mcfg, vp, 60);
  }
  return m;
}

}  // namespace

int main() {
  holms::bench::BenchReport report("serve");
  holms::bench::title("5h", "multi-tenant service layer at scale");

  const std::size_t hw = holms::exec::resolve_threads(0);
  holms::bench::note("fleet: " + std::to_string(kFgsSessions) + " FGS + " +
                     std::to_string(kMpeg2Sessions) +
                     " MPEG-2 sessions on 16 localities, " +
                     std::to_string(hw) + " hardware threads");

  // --- throughput: the full fleet on all cores, wall-clock timed ---
  using clock = std::chrono::steady_clock;
  const std::unique_ptr<ServiceManager> fleet = make_fleet(0);
  const std::size_t admitted = fleet->active_sessions();
  const auto t0 = clock::now();
  const ServeReport hw_run = fleet->run(fleet_horizon());
  const double wall = std::chrono::duration<double>(clock::now() - t0).count();
  const double events_per_s =
      wall > 0.0 ? static_cast<double>(hw_run.events_dispatched) / wall : 0.0;
  std::printf(
      "%zu sessions, %llu FOM steps in %.2f s -> %.0f events/s "
      "(%.0f sessions/core)\n",
      admitted, static_cast<unsigned long long>(hw_run.events_dispatched),
      wall, events_per_s,
      static_cast<double>(admitted) / static_cast<double>(hw));
  std::printf(
      "slot psnr p50/p99 %.2f/%.2f dB (p1 tail %.2f dB), "
      "session energy mean %.3f J, mpeg2 frames out %llu\n",
      hw_run.slot_psnr_db.p50(), hw_run.slot_psnr_db.p99(),
      hw_run.slot_psnr_db.quantile(0.01), hw_run.session_energy_j.mean(),
      static_cast<unsigned long long>(hw_run.mpeg2_frames_out));
  report.set("serve_concurrent_sessions", static_cast<double>(admitted));
  report.set("serve_events_per_s", events_per_s);
  report.set("serve_sessions_per_core",
             static_cast<double>(admitted) / static_cast<double>(hw));
  report.set("serve_slot_psnr_p99_db", hw_run.slot_psnr_db.p99());
  report.set("serve_slot_psnr_p1_db", hw_run.slot_psnr_db.quantile(0.01));
  report.set("hw_threads", static_cast<double>(hw));

  // --- determinism: thread-count invariance and repeat reproducibility ---
  const ServeReport serial_run = make_fleet(1)->run(fleet_horizon());
  const ServeReport repeat_run = make_fleet(0)->run(fleet_horizon());
  const bool invariant = serial_run.fingerprint() == hw_run.fingerprint();
  const bool reproducible = repeat_run.fingerprint() == hw_run.fingerprint();
  holms::bench::note(
      std::string("fingerprint ") + std::to_string(hw_run.fingerprint()) +
      (invariant ? ", thread-count invariant" : ", THREAD-COUNT DIVERGED") +
      (reproducible ? ", repeat identical" : ", REPEAT DIVERGED"));
  report.set("serve_thread_invariant", invariant ? 1.0 : 0.0);
  report.set("serve_bitwise_reproducible", reproducible ? 1.0 : 0.0);

  // --- dispatch latency: sliced serial run, wall time per FOM step ---
  // Each locality pauses every 5 simulated seconds; the observer converts
  // (wall elapsed / events dispatched) per slice into microseconds per event
  // and feeds a quantile sketch.  Serial execution keeps the timing clean.
  {
    holms::sim::QuantileSketch lat_us(1e-3, 1e4, 32);
    std::vector<std::uint64_t> prev_events(16, 0);
    auto prev_wall = clock::now();
    const SliceObserver observer = [&](std::size_t li, double /*sim_time*/,
                                       std::uint64_t events) {
      const auto now = clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(now - prev_wall).count();
      const std::uint64_t delta = events - prev_events[li];
      if (delta > 0) lat_us.add(us / static_cast<double>(delta));
      prev_events[li] = events;
      prev_wall = now;
    };
    make_fleet(1)->run(fleet_horizon(), 5.0, observer);
    std::printf(
        "dispatch latency per FOM step: p50 %.3f us, p99 %.3f us, "
        "p999 %.3f us (%zu slices)\n",
        lat_us.p50(), lat_us.p99(), lat_us.p999(), lat_us.count());
    report.set("serve_event_p50_us", lat_us.p50());
    report.set("serve_event_p99_us", lat_us.p99());
    report.set("serve_event_p999_us", lat_us.p999());
  }

  // --- load shedding: watermark + node faults drive the graceful ladder ---
  {
    ServeOptions o;
    o.localities = 4;
    o.threads = 0;
    o.max_sessions = 4096;
    o.degrade_watermark = 0.75;
    o.fault_loss = 0.35;
    o.seed = 7;
    const holms::fault::FaultSchedule sched =
        holms::fault::FaultSchedule::from_trace(
            {{10.0, holms::fault::FaultKind::kFail,
              holms::fault::Target::kNode, 0},
             {10.0, holms::fault::FaultKind::kFail,
              holms::fault::Target::kNode, 1},
             {40.0, holms::fault::FaultKind::kRepair,
              holms::fault::Target::kNode, 0},
             {40.0, holms::fault::FaultKind::kRepair,
              holms::fault::Target::kNode, 1}});
    ServiceManager m(o);
    m.attach_fault_schedule(&sched);
    const holms::streaming::FgsConfig cfg;
    for (std::size_t i = 0; i < 4096; ++i) {
      m.add_fgs_session(FgsPolicy::kClientFeedback, cfg, 120);
    }
    const ServeReport r = m.run(65.0);
    const double degraded_frac =
        static_cast<double>(r.sessions_degraded) /
        static_cast<double>(r.sessions_admitted);
    std::printf(
        "overload+faults: %zu/%zu sessions degraded (%.1f%%), mean shed "
        "%.3f, faults in window %zu\n",
        r.sessions_degraded, r.sessions_admitted, degraded_frac * 100.0,
        r.session_shed.mean(), r.faults_in_window);
    report.set("serve_degraded_fraction", degraded_frac);
    report.set("serve_mean_shed_faulted", r.session_shed.mean());
  }

  return 0;
}
