// Substrate micro-benchmarks (google-benchmark): the kernels every
// experiment leans on — DES event dispatch, steady-state solvers, fGn
// synthesis, flit routing, ISS execution, mapping evaluation.
//
// Custom main(): besides the google-benchmark tables, a set of hand-timed
// headline rates (SA moves/s full vs incremental, stationary solve wall
// time, simulator events/s, scalar-vs-SIMD kernel speedups) is written into
// BENCH_micro.json — the CI perf-smoke job gates those numbers against
// bench/thresholds.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <cstdio>
#include <string>
#include <thread>

#include "asip/kernels.hpp"
#include "bench_util.hpp"
#include "exec/aligned.hpp"
#include "exec/simd.hpp"
#include "markov/chain.hpp"
#include "markov/jackson.hpp"
#include "markov/queueing.hpp"
#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "noc/taskgraph.hpp"
#include "sim/simulator.hpp"
#include "traffic/selfsim.hpp"
#include "wireless/link_sim.hpp"

namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    holms::sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_in(1.0, tick);
    };
    sim.schedule_in(1.0, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_SteadyState(benchmark::State& state) {
  const auto method =
      static_cast<holms::markov::SteadyStateMethod>(state.range(0));
  holms::markov::ProducerConsumerModel m;
  m.producer_rate = 95.0;
  m.consumer_rate = 100.0;
  m.buffer_capacity = static_cast<std::size_t>(state.range(1));
  const auto chain = m.to_ctmc();
  holms::markov::SolveOptions opts;
  opts.method = method;
  for (auto _ : state) {
    auto r = chain.steady_state(opts);
    benchmark::DoNotOptimize(r.distribution.data());
  }
}
BENCHMARK(BM_SteadyState)
    ->ArgsProduct({{0, 1, 2}, {16, 64, 256}})
    ->ArgNames({"method", "states"});

void BM_FgnHosking(benchmark::State& state) {
  holms::sim::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto xs = holms::traffic::fgn_hosking(n, 0.8, rng);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FgnHosking)->Arg(1024)->Arg(4096);

void BM_NocCycle(benchmark::State& state) {
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{},
                         holms::sim::Rng(2));
  for (holms::noc::TileId t = 1; t < mesh.num_tiles(); ++t) {
    holms::noc::Flow f;
    f.src = t;
    f.dst = 0;
    f.packet_flits = 8;
    f.packets_per_cycle = 0.02;
    sim.add_flow(f);
  }
  for (auto _ : state) {
    sim.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NocCycle);

void BM_IssVoiceApp(benchmark::State& state) {
  holms::asip::VoiceRecognitionApp app;
  const bool accel = state.range(0) != 0;
  const std::vector<std::string> exts =
      accel ? std::vector<std::string>{holms::asip::kExtMacLoad,
                                       holms::asip::kExtSqdLoad,
                                       holms::asip::kExtAbsDiff,
                                       holms::asip::kExtDtwCell}
            : std::vector<std::string>{};
  for (auto _ : state) {
    auto r = holms::asip::evaluate_app(app, holms::asip::CoreConfig{}, exts);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_IssVoiceApp)->Arg(0)->Arg(1)->ArgName("accel");

void BM_MappingEvaluate(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::sim::Rng rng(3);
  const auto m = holms::noc::random_mapping(g.num_nodes(), mesh, rng);
  for (auto _ : state) {
    auto ev = holms::noc::evaluate_mapping(g, mesh, em, m, 1e9);
    benchmark::DoNotOptimize(ev.comm_energy_j);
  }
}
BENCHMARK(BM_MappingEvaluate);

void BM_SaMapping(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    holms::sim::Rng rng(4);
    auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SaMapping)->Arg(1000)->Arg(5000)->ArgName("iters");

// Full re-evaluation (SaOptions::debug_full_eval) vs the O(deg) delta-cost
// path, on the E4 video/audio configuration (mms_graph, 4x4 mesh).
void BM_SaMappingMode(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = 20000;
  opts.debug_full_eval = state.range(0) == 0;
  for (auto _ : state) {
    holms::sim::Rng rng(4);
    auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opts.iterations));
}
BENCHMARK(BM_SaMappingMode)->Arg(0)->Arg(1)->ArgName("incremental");

holms::markov::Dtmc birth_death_chain(std::size_t n) {
  holms::markov::Dtmc d(n);
  for (std::size_t i = 0; i < n; ++i) {
    double stay = 0.2;
    if (i + 1 < n) d.set(i, i + 1, 0.5); else stay += 0.5;
    if (i > 0) d.set(i, i - 1, 0.3); else stay += 0.3;
    d.set(i, i, stay);
  }
  return d;
}

// Both sparsity modes now execute the same exec::simd CSR kernels (the
// dense O(n^2) sweeps are gone); this tracks that the kDense request path
// carries no residual overhead over an explicit kSparse request.
void BM_StationarySparsity(benchmark::State& state) {
  const auto d = birth_death_chain(static_cast<std::size_t>(state.range(1)));
  holms::markov::SolveOptions opts;
  opts.sparsity = state.range(0) != 0 ? holms::markov::SparsityMode::kSparse
                                      : holms::markov::SparsityMode::kDense;
  for (auto _ : state) {
    auto r = d.steady_state(opts);
    benchmark::DoNotOptimize(r.distribution.data());
  }
}
BENCHMARK(BM_StationarySparsity)
    ->ArgsProduct({{0, 1}, {128, 512, 1024}})
    ->ArgNames({"sparse", "states"});

void BM_JacksonSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> mus(n, 10.0);
  auto net = holms::markov::tandem_network(mus, 5.0);
  for (auto _ : state) {
    auto sol = net.solve();
    benchmark::DoNotOptimize(sol.total_jobs);
  }
}
BENCHMARK(BM_JacksonSolve)->Arg(8)->Arg(64)->ArgName("stations");

void BM_BbMapping(benchmark::State& state) {
  holms::sim::Rng rng(5);
  const auto g =
      holms::noc::random_graph(static_cast<std::size_t>(state.range(0)), rng,
                               1e6);
  holms::noc::Mesh2D mesh(3, 3);
  holms::noc::EnergyModel em;
  for (auto _ : state) {
    auto m = holms::noc::bb_mapping(g, mesh, em);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_BbMapping)->Arg(6)->Arg(8)->ArgName("cores");

void BM_AwgnLinkSim(benchmark::State& state) {
  holms::sim::Rng rng(6);
  const auto m = static_cast<holms::wireless::Modulation>(state.range(0));
  for (auto _ : state) {
    auto r = holms::wireless::simulate_awgn_ber(m, 4.0, 10000, rng);
    benchmark::DoNotOptimize(r.bit_errors);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_AwgnLinkSim)->Arg(0)->Arg(3)->ArgName("modulation");

// ---------------------------------------------------------------------------
// Headline rates for the perf trajectory (BENCH_micro.json).
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// SA moves/s on the E4 configuration; `full` selects the debug baseline.
double sa_moves_per_s(bool full) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = full ? 100000 : 300000;
  opts.cooling = 1.0 - 1.0 / static_cast<double>(opts.iterations);
  opts.debug_full_eval = full;
  {  // warmup: route tables, caches, branch predictors
    holms::sim::Rng rng(4);
    holms::noc::SaOptions w = opts;
    w.iterations = 2000;
    benchmark::DoNotOptimize(holms::noc::sa_mapping(g, mesh, em, rng, w));
  }
  holms::sim::Rng rng(4);
  const auto t0 = std::chrono::steady_clock::now();
  auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
  const double dt = seconds_since(t0);
  benchmark::DoNotOptimize(m.data());
  return static_cast<double>(opts.iterations) / dt;
}

// Stationary solve wall time at n states (power iteration, birth-death).
double stationary_seconds(std::size_t n, holms::markov::SparsityMode mode) {
  const auto d = birth_death_chain(n);
  holms::markov::SolveOptions opts;
  opts.sparsity = mode;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = d.steady_state(opts);
  benchmark::DoNotOptimize(r.distribution.data());
  return seconds_since(t0);
}

double sim_events_per_s() {
  holms::sim::Simulator sim;
  std::size_t count = 0;
  constexpr std::size_t kEvents = 1000000;
  struct Chain {
    holms::sim::Simulator& sim;
    std::size_t& count;
    std::size_t remaining;
    void operator()() const {
      ++count;
      if (remaining > 0) sim.schedule_in(1.0, Chain{sim, count, remaining - 1});
    }
  };
  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule_in(1.0, Chain{sim, count, kEvents - 1});
  sim.run();
  const double dt = seconds_since(t0);
  benchmark::DoNotOptimize(count);
  return static_cast<double>(kEvents) / dt;
}

// Banded chain (band neighbors each side, forward drift): n=4096 with band 8
// gives ~69k nonzeros — comfortably past the sharding floors.
holms::markov::Dtmc banded_chain(std::size_t n, std::size_t band) {
  holms::markov::Dtmc d(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n - 1, i + band);
    double off = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) {
      if (j == i) continue;
      const double side = j > i ? 0.3 : 0.2;
      const std::size_t count = j > i ? hi - i : i - lo;
      const double w = side / static_cast<double>(count);
      d.set(i, j, w);
      off += w;
    }
    d.set(i, i, 1.0 - off);
  }
  return d;
}

// Sharded sparse power iteration wall time at a fixed sweep count (the
// tolerance is unreachable, so every thread count does identical work —
// the solves are bitwise identical by design, only the wall time moves).
double threaded_solve_seconds(const holms::markov::Dtmc& d,
                              std::size_t threads) {
  holms::markov::SolveOptions opts;
  opts.sparsity = holms::markov::SparsityMode::kSparse;
  opts.parallel_min_states = 256;
  opts.parallel_min_nnz = 1024;
  opts.threads = threads;
  opts.max_iterations = 400;
  opts.tolerance = 1e-300;  // never met: exactly 400 sweeps
  const auto t0 = std::chrono::steady_clock::now();
  auto r = d.steady_state(opts);
  benchmark::DoNotOptimize(r.distribution.data());
  return seconds_since(t0);
}

// SA move-mix ablation on the E4 configuration: moves/s and final mapping
// cost per mix, so the move-set's value (quality per wall-second) is recorded
// alongside its throughput cost.
struct MoveMix {
  const char* key;
  double w_swap, w_seg, w_cluster;
  std::size_t reheat_after;
};

void sa_move_mix_metrics(holms::bench::BenchReport& report) {
  static constexpr MoveMix kMixes[] = {
      {"swap", 1.0, 0.0, 0.0, 0},
      {"swap2opt", 0.7, 0.3, 0.0, 0},
      {"swapcluster", 0.7, 0.0, 0.3, 0},
      {"mixed", 0.6, 0.2, 0.2, 0},
      {"mixed_reheat", 0.6, 0.2, 0.2, 2000},
  };
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  double swap_rate = 0.0, mixed_rate = 0.0;
  constexpr std::size_t kNumMixes = std::size(kMixes);
  constexpr int kReps = 5;
  std::array<holms::noc::SaOptions, kNumMixes> opt;
  std::array<double, kNumMixes> best_dt;
  std::array<holms::noc::Mapping, kNumMixes> map;
  for (std::size_t i = 0; i < kNumMixes; ++i) {
    // Long enough (~100ms/rep) that a scheduler quantum of interference
    // averages out instead of poisoning a whole repetition.
    opt[i].iterations = 600000;
    opt[i].cooling = 1.0 - 1.0 / static_cast<double>(opt[i].iterations);
    opt[i].w_swap = kMixes[i].w_swap;
    opt[i].w_segment_reversal = kMixes[i].w_seg;
    opt[i].w_cluster_relocate = kMixes[i].w_cluster;
    opt[i].reheat_after = kMixes[i].reheat_after;
    best_dt[i] = std::numeric_limits<double>::infinity();
    {  // warmup
      holms::sim::Rng rng(4);
      holms::noc::SaOptions w = opt[i];
      w.iterations = 2000;
      benchmark::DoNotOptimize(holms::noc::sa_mapping(g, mesh, em, rng, w));
    }
  }
  // Per-mix rate is best-of-kReps, and the repetitions are interleaved
  // round-robin across mixes: a stretch of machine-state drift (thermal,
  // co-tenant load) then lands on every mix instead of poisoning one side
  // of the mixed/swap ratio gate.
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < kNumMixes; ++i) {
      holms::sim::Rng rng(4);
      const auto t0 = std::chrono::steady_clock::now();
      map[i] = holms::noc::sa_mapping(g, mesh, em, rng, opt[i]);
      best_dt[i] = std::min(best_dt[i], seconds_since(t0));
    }
  }
  for (std::size_t i = 0; i < kNumMixes; ++i) {
    const double rate =
        static_cast<double>(opt[i].iterations) / best_dt[i];
    const double cost =
        holms::noc::evaluate_mapping(g, mesh, em, map[i]).comm_energy_j;
    report.set(std::string("sa_moves_per_s_") + kMixes[i].key, rate);
    report.set(std::string("sa_final_cost_") + kMixes[i].key, cost);
    report.set(std::string("sa_cost_per_wall_s_") + kMixes[i].key,
               cost / best_dt[i]);
    std::printf("-- SA mix %-13s %.3g moves/s, final E4 cost %.6g J\n",
                kMixes[i].key, rate, cost);
    if (std::string(kMixes[i].key) == "swap") swap_rate = rate;
    if (std::string(kMixes[i].key) == "mixed") mixed_rate = rate;
  }
  report.set("sa_move_mix_throughput_ratio",
             swap_rate > 0.0 ? mixed_rate / swap_rate : 0.0);
  std::printf("-- SA mixed/swap throughput ratio: %.2f\n",
              swap_rate > 0.0 ? mixed_rate / swap_rate : 0.0);
}

// Scalar-vs-SIMD wall-clock speedups for the two reduction-heavy kernels,
// measured through kernels_for() so the numbers reflect what the hardware
// can do regardless of the HOLMS_SIMD setting.  The two tables produce
// bitwise identical results by construction (test_hotpath proves it); only
// the wall time differs, and thresholds.json gates the ratio when the AVX2
// table is live (simd_avx2 == 1).
void simd_kernel_metrics(holms::bench::BenchReport& report) {
  namespace simd = holms::exec::simd;
  const bool avx2 = simd::isa_available(simd::Isa::kAvx2);
  report.set("simd_avx2", avx2 ? 1.0 : 0.0);
  const simd::Kernels& scalar = simd::kernels_for(simd::Isa::kScalar);
  const simd::Kernels& best = simd::kernels_for(simd::best_isa());

  // Gather-form banded CSR, n=4096 with 8 neighbors each side (~69k
  // nonzeros) — the same shape threaded_solve_metrics runs end to end.
  constexpr std::size_t kN = 4096, kBand = 8;
  holms::sim::Rng rng(9);
  holms::exec::aligned_vector<std::size_t> offsets(kN + 1, 0);
  holms::exec::aligned_vector<std::uint32_t> srcs;
  holms::exec::aligned_vector<double> vals;
  for (std::size_t c = 0; c < kN; ++c) {
    const std::size_t lo = c > kBand ? c - kBand : 0;
    const std::size_t hi = std::min(kN - 1, c + kBand);
    for (std::size_t r = lo; r <= hi; ++r) {
      srcs.push_back(static_cast<std::uint32_t>(r));
      vals.push_back(rng.uniform(0.0, 1.0));
    }
    offsets[c + 1] = srcs.size();
  }
  holms::exec::aligned_vector<double> x(kN), out(kN, 0.0);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  constexpr int kSpmvReps = 200;
  const auto time_spmv = [&](const simd::Kernels& k) {
    k.spmv_cols(offsets.data(), srcs.data(), vals.data(), x.data(),
                out.data(), 0, kN);  // warmup
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kSpmvReps; ++rep) {
      k.spmv_cols(offsets.data(), srcs.data(), vals.data(), x.data(),
                  out.data(), 0, kN);
      benchmark::DoNotOptimize(out.data());
    }
    return seconds_since(t0);
  };

  // SwapEvaluator-shaped delta evaluation: deg=16 touched edges per call,
  // rotating through 64 distinct buffers so the call cannot be hoisted.
  constexpr std::size_t kDeg = 16, kBufs = 64;
  holms::exec::aligned_vector<double> vol(kDeg * kBufs), old_hops(kDeg * kBufs),
      new_hops(kDeg * kBufs);
  for (std::size_t i = 0; i < kDeg * kBufs; ++i) {
    vol[i] = rng.uniform(1e3, 1e6);
    old_hops[i] = static_cast<double>(rng.uniform_int(1, 6));
    new_hops[i] = static_cast<double>(rng.uniform_int(1, 6));
  }
  constexpr int kDeltaCalls = 400000;
  const auto time_delta = [&](const simd::Kernels& k) {
    double acc = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kDeltaCalls; ++i) {
      const std::size_t b = static_cast<std::size_t>(i) % kBufs * kDeg;
      acc += k.transfer_delta(vol.data() + b, old_hops.data() + b,
                              new_hops.data() + b, kDeg, 0.98, 1.74);
    }
    benchmark::DoNotOptimize(acc);
    return seconds_since(t0);
  };

  // Best-of-3 with the scalar/SIMD repetitions interleaved, so machine-state
  // drift lands on both sides of each ratio instead of poisoning one.
  double spmv_scalar = std::numeric_limits<double>::infinity();
  double spmv_simd = spmv_scalar, delta_scalar = spmv_scalar,
         delta_simd = spmv_scalar;
  for (int rep = 0; rep < 3; ++rep) {
    spmv_scalar = std::min(spmv_scalar, time_spmv(scalar));
    spmv_simd = std::min(spmv_simd, time_spmv(best));
    delta_scalar = std::min(delta_scalar, time_delta(scalar));
    delta_simd = std::min(delta_simd, time_delta(best));
  }
  const double spmv_speedup = spmv_simd > 0.0 ? spmv_scalar / spmv_simd : 0.0;
  const double delta_speedup =
      delta_simd > 0.0 ? delta_scalar / delta_simd : 0.0;
  report.set("spmv_simd_speedup", spmv_speedup);
  report.set("sa_delta_simd_speedup", delta_speedup);
  std::printf(
      "-- SIMD kernels (%s vs scalar): spmv n=4096 band=8 %.2fx, "
      "transfer_delta deg=16 %.2fx\n",
      best.name, spmv_speedup, delta_speedup);
}

void threaded_solve_metrics(holms::bench::BenchReport& report) {
  const auto d = banded_chain(4096, 8);
  benchmark::DoNotOptimize(threaded_solve_seconds(d, 1));  // warmup
  const double t1 = threaded_solve_seconds(d, 1);
  const double t2 = threaded_solve_seconds(d, 2);
  const double t4 = threaded_solve_seconds(d, 4);
  report.set("stationary_sparse_s_n4096_t1", t1);
  report.set("stationary_sparse_s_n4096_t2", t2);
  report.set("stationary_sparse_s_n4096_t4", t4);
  report.set("solve_thread_speedup_n4096", t4 > 0.0 ? t1 / t4 : 0.0);
  report.set("hw_threads",
             static_cast<double>(std::thread::hardware_concurrency()));
  std::printf(
      "-- sharded solve n=4096: t1 %.3gs, t2 %.3gs, t4 %.3gs (4T %.2fx, "
      "%u hw threads)\n",
      t1, t2, t4, t4 > 0.0 ? t1 / t4 : 0.0,
      std::thread::hardware_concurrency());
}

void headline_metrics(holms::bench::BenchReport& report) {
  const double full = sa_moves_per_s(true);
  const double inc = sa_moves_per_s(false);
  report.set("sa_moves_per_s_full", full);
  report.set("sa_moves_per_s_incremental", inc);
  report.set("sa_speedup_vs_full", inc / full);
  std::printf("-- SA moves/s: full %.3g, incremental %.3g (%.2fx)\n", full,
              inc, inc / full);

  // Both sparsity modes run the same exec::simd CSR kernels now; only the
  // CSR wall time is a headline.  BM_StationarySparsity still tracks the
  // dense-request parity in the google-benchmark tables.
  const double sparse =
      stationary_seconds(512, holms::markov::SparsityMode::kSparse);
  report.set("stationary_sparse_s_n512", sparse);
  std::printf("-- stationary n=512 (CSR): %.3gs\n", sparse);

  const double events = sim_events_per_s();
  report.set("sim_events_per_s", events);
  std::printf("-- simulator events/s: %.3g\n", events);

  simd_kernel_metrics(report);
  threaded_solve_metrics(report);
  sa_move_mix_metrics(report);
}

}  // namespace

int main(int argc, char** argv) {
  holms::bench::BenchReport report("micro");
  headline_metrics(report);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
