// Substrate micro-benchmarks (google-benchmark): the kernels every
// experiment leans on — DES event dispatch, steady-state solvers, fGn
// synthesis, flit routing, ISS execution, mapping evaluation.
#include <benchmark/benchmark.h>

#include "asip/kernels.hpp"
#include "markov/jackson.hpp"
#include "markov/queueing.hpp"
#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "noc/taskgraph.hpp"
#include "sim/simulator.hpp"
#include "traffic/selfsim.hpp"
#include "wireless/link_sim.hpp"

namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    holms::sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_in(1.0, tick);
    };
    sim.schedule_in(1.0, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_SteadyState(benchmark::State& state) {
  const auto method =
      static_cast<holms::markov::SteadyStateMethod>(state.range(0));
  holms::markov::ProducerConsumerModel m;
  m.producer_rate = 95.0;
  m.consumer_rate = 100.0;
  m.buffer_capacity = static_cast<std::size_t>(state.range(1));
  const auto chain = m.to_ctmc();
  holms::markov::SolveOptions opts;
  opts.method = method;
  for (auto _ : state) {
    auto r = chain.steady_state(opts);
    benchmark::DoNotOptimize(r.distribution.data());
  }
}
BENCHMARK(BM_SteadyState)
    ->ArgsProduct({{0, 1, 2}, {16, 64, 256}})
    ->ArgNames({"method", "states"});

void BM_FgnHosking(benchmark::State& state) {
  holms::sim::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto xs = holms::traffic::fgn_hosking(n, 0.8, rng);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FgnHosking)->Arg(1024)->Arg(4096);

void BM_NocCycle(benchmark::State& state) {
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{},
                         holms::sim::Rng(2));
  for (holms::noc::TileId t = 1; t < mesh.num_tiles(); ++t) {
    holms::noc::Flow f;
    f.src = t;
    f.dst = 0;
    f.packet_flits = 8;
    f.packets_per_cycle = 0.02;
    sim.add_flow(f);
  }
  for (auto _ : state) {
    sim.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NocCycle);

void BM_IssVoiceApp(benchmark::State& state) {
  holms::asip::VoiceRecognitionApp app;
  const bool accel = state.range(0) != 0;
  const std::vector<std::string> exts =
      accel ? std::vector<std::string>{holms::asip::kExtMacLoad,
                                       holms::asip::kExtSqdLoad,
                                       holms::asip::kExtAbsDiff,
                                       holms::asip::kExtDtwCell}
            : std::vector<std::string>{};
  for (auto _ : state) {
    auto r = holms::asip::evaluate_app(app, holms::asip::CoreConfig{}, exts);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_IssVoiceApp)->Arg(0)->Arg(1)->ArgName("accel");

void BM_MappingEvaluate(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::sim::Rng rng(3);
  const auto m = holms::noc::random_mapping(g.num_nodes(), mesh, rng);
  for (auto _ : state) {
    auto ev = holms::noc::evaluate_mapping(g, mesh, em, m, 1e9);
    benchmark::DoNotOptimize(ev.comm_energy_j);
  }
}
BENCHMARK(BM_MappingEvaluate);

void BM_SaMapping(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    holms::sim::Rng rng(4);
    auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SaMapping)->Arg(1000)->Arg(5000)->ArgName("iters");

void BM_JacksonSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> mus(n, 10.0);
  auto net = holms::markov::tandem_network(mus, 5.0);
  for (auto _ : state) {
    auto sol = net.solve();
    benchmark::DoNotOptimize(sol.total_jobs);
  }
}
BENCHMARK(BM_JacksonSolve)->Arg(8)->Arg(64)->ArgName("stations");

void BM_BbMapping(benchmark::State& state) {
  holms::sim::Rng rng(5);
  const auto g =
      holms::noc::random_graph(static_cast<std::size_t>(state.range(0)), rng,
                               1e6);
  holms::noc::Mesh2D mesh(3, 3);
  holms::noc::EnergyModel em;
  for (auto _ : state) {
    auto m = holms::noc::bb_mapping(g, mesh, em);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_BbMapping)->Arg(6)->Arg(8)->ArgName("cores");

void BM_AwgnLinkSim(benchmark::State& state) {
  holms::sim::Rng rng(6);
  const auto m = static_cast<holms::wireless::Modulation>(state.range(0));
  for (auto _ : state) {
    auto r = holms::wireless::simulate_awgn_ber(m, 4.0, 10000, rng);
    benchmark::DoNotOptimize(r.bit_errors);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_AwgnLinkSim)->Arg(0)->Arg(3)->ArgName("modulation");

}  // namespace
