// Substrate micro-benchmarks (google-benchmark): the kernels every
// experiment leans on — DES event dispatch, steady-state solvers, fGn
// synthesis, flit routing, ISS execution, mapping evaluation.
//
// Custom main(): besides the google-benchmark tables, a set of hand-timed
// headline rates (SA moves/s full vs incremental, dense vs sparse stationary
// solve, simulator events/s) is written into BENCH_micro.json — the CI
// perf-smoke job gates those numbers against bench/thresholds.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "asip/kernels.hpp"
#include "bench_util.hpp"
#include "markov/chain.hpp"
#include "markov/jackson.hpp"
#include "markov/queueing.hpp"
#include "noc/mapping.hpp"
#include "noc/router.hpp"
#include "noc/taskgraph.hpp"
#include "sim/simulator.hpp"
#include "traffic/selfsim.hpp"
#include "wireless/link_sim.hpp"

namespace {

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    holms::sim::Simulator sim;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_in(1.0, tick);
    };
    sim.schedule_in(1.0, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_SteadyState(benchmark::State& state) {
  const auto method =
      static_cast<holms::markov::SteadyStateMethod>(state.range(0));
  holms::markov::ProducerConsumerModel m;
  m.producer_rate = 95.0;
  m.consumer_rate = 100.0;
  m.buffer_capacity = static_cast<std::size_t>(state.range(1));
  const auto chain = m.to_ctmc();
  holms::markov::SolveOptions opts;
  opts.method = method;
  for (auto _ : state) {
    auto r = chain.steady_state(opts);
    benchmark::DoNotOptimize(r.distribution.data());
  }
}
BENCHMARK(BM_SteadyState)
    ->ArgsProduct({{0, 1, 2}, {16, 64, 256}})
    ->ArgNames({"method", "states"});

void BM_FgnHosking(benchmark::State& state) {
  holms::sim::Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto xs = holms::traffic::fgn_hosking(n, 0.8, rng);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FgnHosking)->Arg(1024)->Arg(4096);

void BM_NocCycle(benchmark::State& state) {
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::NocSim sim(mesh, holms::noc::NocSim::Config{},
                         holms::sim::Rng(2));
  for (holms::noc::TileId t = 1; t < mesh.num_tiles(); ++t) {
    holms::noc::Flow f;
    f.src = t;
    f.dst = 0;
    f.packet_flits = 8;
    f.packets_per_cycle = 0.02;
    sim.add_flow(f);
  }
  for (auto _ : state) {
    sim.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_NocCycle);

void BM_IssVoiceApp(benchmark::State& state) {
  holms::asip::VoiceRecognitionApp app;
  const bool accel = state.range(0) != 0;
  const std::vector<std::string> exts =
      accel ? std::vector<std::string>{holms::asip::kExtMacLoad,
                                       holms::asip::kExtSqdLoad,
                                       holms::asip::kExtAbsDiff,
                                       holms::asip::kExtDtwCell}
            : std::vector<std::string>{};
  for (auto _ : state) {
    auto r = holms::asip::evaluate_app(app, holms::asip::CoreConfig{}, exts);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_IssVoiceApp)->Arg(0)->Arg(1)->ArgName("accel");

void BM_MappingEvaluate(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::sim::Rng rng(3);
  const auto m = holms::noc::random_mapping(g.num_nodes(), mesh, rng);
  for (auto _ : state) {
    auto ev = holms::noc::evaluate_mapping(g, mesh, em, m, 1e9);
    benchmark::DoNotOptimize(ev.comm_energy_j);
  }
}
BENCHMARK(BM_MappingEvaluate);

void BM_SaMapping(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    holms::sim::Rng rng(4);
    auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_SaMapping)->Arg(1000)->Arg(5000)->ArgName("iters");

// Full re-evaluation (SaOptions::debug_full_eval) vs the O(deg) delta-cost
// path, on the E4 video/audio configuration (mms_graph, 4x4 mesh).
void BM_SaMappingMode(benchmark::State& state) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = 20000;
  opts.debug_full_eval = state.range(0) == 0;
  for (auto _ : state) {
    holms::sim::Rng rng(4);
    auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opts.iterations));
}
BENCHMARK(BM_SaMappingMode)->Arg(0)->Arg(1)->ArgName("incremental");

holms::markov::Dtmc birth_death_chain(std::size_t n) {
  holms::markov::Dtmc d(n);
  for (std::size_t i = 0; i < n; ++i) {
    double stay = 0.2;
    if (i + 1 < n) d.set(i, i + 1, 0.5); else stay += 0.5;
    if (i > 0) d.set(i, i - 1, 0.3); else stay += 0.3;
    d.set(i, i, stay);
  }
  return d;
}

// Dense vs CSR power iteration as the chain grows; the iterates (and
// therefore iteration counts) are identical, only the sweep cost differs.
void BM_StationarySparsity(benchmark::State& state) {
  const auto d = birth_death_chain(static_cast<std::size_t>(state.range(1)));
  holms::markov::SolveOptions opts;
  opts.sparsity = state.range(0) != 0 ? holms::markov::SparsityMode::kSparse
                                      : holms::markov::SparsityMode::kDense;
  for (auto _ : state) {
    auto r = d.steady_state(opts);
    benchmark::DoNotOptimize(r.distribution.data());
  }
}
BENCHMARK(BM_StationarySparsity)
    ->ArgsProduct({{0, 1}, {128, 512, 1024}})
    ->ArgNames({"sparse", "states"});

void BM_JacksonSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> mus(n, 10.0);
  auto net = holms::markov::tandem_network(mus, 5.0);
  for (auto _ : state) {
    auto sol = net.solve();
    benchmark::DoNotOptimize(sol.total_jobs);
  }
}
BENCHMARK(BM_JacksonSolve)->Arg(8)->Arg(64)->ArgName("stations");

void BM_BbMapping(benchmark::State& state) {
  holms::sim::Rng rng(5);
  const auto g =
      holms::noc::random_graph(static_cast<std::size_t>(state.range(0)), rng,
                               1e6);
  holms::noc::Mesh2D mesh(3, 3);
  holms::noc::EnergyModel em;
  for (auto _ : state) {
    auto m = holms::noc::bb_mapping(g, mesh, em);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_BbMapping)->Arg(6)->Arg(8)->ArgName("cores");

void BM_AwgnLinkSim(benchmark::State& state) {
  holms::sim::Rng rng(6);
  const auto m = static_cast<holms::wireless::Modulation>(state.range(0));
  for (auto _ : state) {
    auto r = holms::wireless::simulate_awgn_ber(m, 4.0, 10000, rng);
    benchmark::DoNotOptimize(r.bit_errors);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_AwgnLinkSim)->Arg(0)->Arg(3)->ArgName("modulation");

// ---------------------------------------------------------------------------
// Headline rates for the perf trajectory (BENCH_micro.json).
// ---------------------------------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// SA moves/s on the E4 configuration; `full` selects the debug baseline.
double sa_moves_per_s(bool full) {
  const auto g = holms::noc::mms_graph();
  holms::noc::Mesh2D mesh(4, 4);
  holms::noc::EnergyModel em;
  holms::noc::SaOptions opts;
  opts.iterations = full ? 100000 : 300000;
  opts.cooling = 1.0 - 1.0 / static_cast<double>(opts.iterations);
  opts.debug_full_eval = full;
  {  // warmup: route tables, caches, branch predictors
    holms::sim::Rng rng(4);
    holms::noc::SaOptions w = opts;
    w.iterations = 2000;
    benchmark::DoNotOptimize(holms::noc::sa_mapping(g, mesh, em, rng, w));
  }
  holms::sim::Rng rng(4);
  const auto t0 = std::chrono::steady_clock::now();
  auto m = holms::noc::sa_mapping(g, mesh, em, rng, opts);
  const double dt = seconds_since(t0);
  benchmark::DoNotOptimize(m.data());
  return static_cast<double>(opts.iterations) / dt;
}

// Stationary solve wall time at n states (power iteration, birth-death).
double stationary_seconds(std::size_t n, holms::markov::SparsityMode mode) {
  const auto d = birth_death_chain(n);
  holms::markov::SolveOptions opts;
  opts.sparsity = mode;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = d.steady_state(opts);
  benchmark::DoNotOptimize(r.distribution.data());
  return seconds_since(t0);
}

double sim_events_per_s() {
  holms::sim::Simulator sim;
  std::size_t count = 0;
  constexpr std::size_t kEvents = 1000000;
  struct Chain {
    holms::sim::Simulator& sim;
    std::size_t& count;
    std::size_t remaining;
    void operator()() const {
      ++count;
      if (remaining > 0) sim.schedule_in(1.0, Chain{sim, count, remaining - 1});
    }
  };
  const auto t0 = std::chrono::steady_clock::now();
  sim.schedule_in(1.0, Chain{sim, count, kEvents - 1});
  sim.run();
  const double dt = seconds_since(t0);
  benchmark::DoNotOptimize(count);
  return static_cast<double>(kEvents) / dt;
}

void headline_metrics(holms::bench::BenchReport& report) {
  const double full = sa_moves_per_s(true);
  const double inc = sa_moves_per_s(false);
  report.set("sa_moves_per_s_full", full);
  report.set("sa_moves_per_s_incremental", inc);
  report.set("sa_speedup_vs_full", inc / full);
  std::printf("-- SA moves/s: full %.3g, incremental %.3g (%.2fx)\n", full,
              inc, inc / full);

  const double dense =
      stationary_seconds(512, holms::markov::SparsityMode::kDense);
  const double sparse =
      stationary_seconds(512, holms::markov::SparsityMode::kSparse);
  report.set("stationary_dense_s_n512", dense);
  report.set("stationary_sparse_s_n512", sparse);
  report.set("sparse_speedup_n512", dense / sparse);
  std::printf("-- stationary n=512: dense %.3gs, sparse %.3gs (%.2fx)\n",
              dense, sparse, dense / sparse);

  const double events = sim_events_per_s();
  report.set("sim_events_per_s", events);
  std::printf("-- simulator events/s: %.3g\n", events);
}

}  // namespace

int main(int argc, char** argv) {
  holms::bench::BenchReport report("micro");
  headline_metrics(report);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
