// F2 — Fig.2 reproduction: the extensible-processor design flow
// (profile -> identify -> define -> retarget -> verify, iterated) run as an
// executable loop on the voice-recognition application.
#include <cstdio>

#include "asip/flow.hpp"
#include "bench_util.hpp"

int main() {
  holms::bench::BenchReport report("fig2_flow");
  holms::bench::title("F2", "Extensible processor design flow (Fig.2)");
  holms::asip::VoiceRecognitionApp app;
  holms::asip::FlowOptions opts;
  const auto fr = run_design_flow(app, opts);

  holms::bench::note("base core profile (the Profiling box):");
  std::printf("%-14s %14s %14s %12s\n", "region", "cycles", "instr",
              "energy-uJ");
  for (const auto& [name, prof] : holms::asip::hotspots(fr.base.result)) {
    std::printf("%-14s %14llu %14llu %12.3f\n", name.c_str(),
                static_cast<unsigned long long>(prof.cycles),
                static_cast<unsigned long long>(prof.instructions),
                prof.energy_pj * 1e-6);
  }

  holms::bench::rule();
  holms::bench::note("exploration trace (one row per accepted move):");
  std::printf("%-26s %14s %10s %10s\n", "move", "cycles", "gates",
              "speedup");
  std::printf("%-26s %14llu %10.0f %10.2f\n", "(base core)",
              static_cast<unsigned long long>(fr.base.result.cycles),
              fr.base.gates, 1.0);
  for (const auto& s : fr.trace) {
    std::printf("%-26s %14llu %10.0f %10.2f\n", s.move.c_str(),
                static_cast<unsigned long long>(s.cycles), s.gates,
                s.speedup_vs_base);
  }

  holms::bench::rule();
  std::printf("final: %zu custom instructions, %.0f gates, speedup %.2fx, "
              "energy ratio %.2f\n",
              fr.best.extensions.size(), fr.best.gates,
              fr.best.speedup_vs_base, fr.best.energy_ratio_vs_base);
  holms::bench::note(
      "expected shape: monotone cycle reduction per iteration, converging "
      "within the gate budget after a handful of moves.");
  return 0;
}
