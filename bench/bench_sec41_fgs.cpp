// E9 — §4.1 [28]: energy-aware MPEG-4 FGS streaming with client feedback:
// "a video streaming system that maintains this normalized load at unity
// produces the optimum video quality with no energy waste ... an average of
// 15% communication energy reduction in the client."
#include <cstdio>

#include "bench_util.hpp"
#include "dvfs/dvfs.hpp"
#include "streaming/fgs.hpp"

using namespace holms::streaming;
using holms::sim::Rng;

namespace {

holms::dvfs::Processor make_client(double max_mhz) {
  std::vector<holms::dvfs::OperatingPoint> pts;
  for (const auto& p : holms::dvfs::xscale_points()) {
    if (p.frequency_hz <= max_mhz * 1e6) pts.push_back(p);
  }
  if (pts.empty()) pts.push_back({max_mhz * 1e6, 1.0});
  return holms::dvfs::Processor(pts, holms::dvfs::PowerModel{});
}

void run_pair(const char* label, double client_mhz, std::uint64_t seed,
              std::size_t slots) {
  ChannelTrace t1{Rng(seed)};
  ChannelTrace t2{Rng(seed)};
  auto c1 = make_client(client_mhz);
  auto c2 = make_client(client_mhz);
  const FgsConfig cfg;
  const auto blind =
      run_fgs_session(FgsPolicy::kNonAdaptive, cfg, c1, t1, slots);
  const auto fb =
      run_fgs_session(FgsPolicy::kClientFeedback, cfg, c2, t2, slots);

  auto row = [&](const char* policy, const FgsReport& r) {
    std::printf("%-26s %-13s %9.2f %9.2f %9.2f %8.2f %8.1f%% %9.1f\n", label,
                policy, r.client_rx_energy_j, r.client_cpu_energy_j,
                r.client_total_energy_j, r.mean_normalized_load,
                100.0 * r.wasted_rx_fraction, r.mean_psnr_db);
  };
  row("non-adaptive", blind);
  row("client-feedback", fb);
  std::printf("%-26s comm-energy saving: %.1f%%   total saving: %.1f%%\n",
              label,
              100.0 * (1.0 - fb.client_rx_energy_j / blind.client_rx_energy_j),
              100.0 * (1.0 -
                       fb.client_total_energy_j / blind.client_total_energy_j));
  holms::bench::rule();
}

}  // namespace

int main() {
  holms::bench::BenchReport report("sec41_fgs");
  holms::bench::title("E9", "Energy-aware MPEG-4 FGS streaming (15% claim)");
  std::printf("%-26s %-13s %9s %9s %9s %8s %8s %9s\n", "client", "policy",
              "rx-J", "cpu-J", "total-J", "norm-ld", "waste", "PSNR-dB");
  holms::bench::rule();
  // A decode-limited handheld: the server's blind enhancement push exceeds
  // what the client can decode -> pure RX waste the feedback removes.
  run_pair("handheld (150 MHz max)", 150.0, 3, 4000);
  // A mid-class client: waste appears only in good channel states.
  run_pair("PDA (400 MHz max)", 400.0, 4, 4000);
  // A capable client: comm is matched; DVFS provides the savings.
  run_pair("laptop (1 GHz max)", 1000.0, 5, 4000);

  // Ablation: feedback timeslot length (DESIGN.md §6).  Long slots react
  // late to channel swings; short ones pay more feedback overhead.
  holms::bench::note("feedback-period ablation (handheld, 150 MHz max):");
  std::printf("%-10s %10s %10s %10s %10s\n", "slot-s", "total-J", "waste",
              "norm-ld", "PSNR-dB");
  for (const double slot : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    FgsConfig cfg;
    cfg.slot_s = slot;
    ChannelTrace tr{Rng(8)};
    auto cpu = make_client(150.0);
    const std::size_t slots = static_cast<std::size_t>(2000.0 / slot);
    const FgsReport r =
        run_fgs_session(FgsPolicy::kClientFeedback, cfg, cpu, tr, slots);
    std::printf("%-10.2f %10.2f %9.1f%% %10.2f %10.1f\n", slot,
                r.client_total_energy_j, 100.0 * r.wasted_rx_fraction,
                r.mean_normalized_load, r.mean_psnr_db);
  }
  holms::bench::rule();

  // Ad hoc (distributed) mode: peers share one medium (§4.1 "both
  // client-server (infrastructure mode) and distributed (ad hoc mode)").
  holms::bench::note("ad hoc mode: N peer streams share the medium");
  std::printf("%-8s %-15s %12s %10s %10s\n", "peers", "policy", "total-J",
              "PSNR-dB", "min-PSNR");
  for (const std::size_t peers : {2u, 4u, 8u}) {
    for (const FgsPolicy pol :
         {FgsPolicy::kNonAdaptive, FgsPolicy::kClientFeedback}) {
      ChannelTrace tr{Rng(9)};
      std::vector<holms::dvfs::Processor> cpus(
          peers, holms::dvfs::Processor(holms::dvfs::xscale_points(),
                                        holms::dvfs::PowerModel{}));
      const AdhocReport r = run_fgs_adhoc(pol, FgsConfig{}, cpus, tr, 2000);
      std::printf("%-8zu %-15s %12.2f %10.1f %10.1f\n", peers,
                  pol == FgsPolicy::kNonAdaptive ? "non-adaptive"
                                                 : "client-feedback",
                  r.total_client_energy_j, r.mean_psnr_db, r.min_psnr_db);
    }
  }
  holms::bench::rule();

  holms::bench::note("paper claim [28]: ~15% client communication energy "
                     "reduction; normalized load pinned at unity is "
                     "optimal-quality-no-waste.");
  holms::bench::note(
      "expected shape: feedback holds normalized load <= 1 with ~zero RX "
      "waste; comm savings are largest for decode-limited clients and taper "
      "for capable ones, where DVFS supplies the CPU-side savings instead.");
  return 0;
}
