// E2 — §2.2: analytical steady-state evaluation matches simulation on the
// producer-consumer stream model at a fraction of the runtime.
//
// "the advantage of having available analytical tools that can quickly
//  derive power/performance estimates becomes evident."
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "markov/queueing.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct SimResult {
  double mean_occupancy = 0.0;
  double throughput = 0.0;
  double ms = 0.0;
};

// DES reference for the producer-consumer chain.
SimResult simulate(double prod, double cons, std::size_t cap,
                   double horizon, std::uint64_t seed) {
  holms::sim::Simulator sim;
  holms::sim::Rng rng(seed);
  std::size_t occupancy = 0;
  holms::sim::TimeWeightedStats occ;
  std::uint64_t consumed = 0;
  bool busy = false;
  std::function<void()> arrive;
  std::function<void()> consume = [&] {
    if (busy || occupancy == 0) return;
    busy = true;
    sim.schedule_in(rng.exponential(cons), [&] {
      --occupancy;
      occ.update(sim.now(), static_cast<double>(occupancy));
      ++consumed;
      busy = false;
      consume();
    });
  };
  arrive = [&] {
    if (occupancy < cap) {
      ++occupancy;
      occ.update(sim.now(), static_cast<double>(occupancy));
      consume();
    }
    sim.schedule_in(rng.exponential(prod), arrive);
  };
  const auto t0 = Clock::now();
  sim.schedule_in(rng.exponential(prod), arrive);
  sim.run(horizon);
  occ.finish(sim.now());
  SimResult r;
  r.mean_occupancy = occ.mean();
  r.throughput = static_cast<double>(consumed) / sim.now();
  r.ms = ms_since(t0);
  return r;
}

}  // namespace

int main() {
  holms::bench::BenchReport report("sec22_analysis");
  holms::bench::title("E2", "Analytical vs simulated steady state (Fig.1 "
                            "producer-consumer)");
  std::printf("%-22s %10s %10s %10s %10s %9s %9s %8s\n", "case (p/c/cap)",
              "occ(sim)", "occ(ana)", "thr(sim)", "thr(ana)", "sim-ms",
              "ana-ms", "speedup");
  struct Case {
    double prod, cons;
    std::size_t cap;
  };
  const Case cases[] = {
      {40.0, 50.0, 4},  {40.0, 50.0, 16}, {50.0, 50.0, 8},
      {80.0, 50.0, 8},  {20.0, 60.0, 4},  {120.0, 100.0, 32},
  };
  for (const auto& c : cases) {
    const SimResult s = simulate(c.prod, c.cons, c.cap, 3000.0, 7);
    const auto t0 = Clock::now();
    holms::markov::ProducerConsumerModel m;
    m.producer_rate = c.prod;
    m.consumer_rate = c.cons;
    m.buffer_capacity = c.cap;
    holms::markov::SolveOptions opts;
    opts.method = holms::markov::SteadyStateMethod::kDirectLU;
    const auto a = m.analyze(opts);
    const double ana_ms = ms_since(t0);
    char label[64];
    std::snprintf(label, sizeof label, "%.0f/%.0f/%zu", c.prod, c.cons,
                  c.cap);
    std::printf("%-22s %10.3f %10.3f %10.2f %10.2f %9.2f %9.4f %8.0fx\n",
                label, s.mean_occupancy, a.mean_occupancy, s.throughput,
                a.throughput, s.ms, ana_ms,
                ana_ms > 0.0 ? s.ms / ana_ms : 0.0);
  }

  holms::bench::rule();
  holms::bench::note("solver ablation on a 101-state birth-death chain:");
  std::printf("%-18s %12s %12s\n", "method", "iterations", "ms");
  holms::markov::ProducerConsumerModel big;
  big.producer_rate = 95.0;
  big.consumer_rate = 100.0;
  big.buffer_capacity = 100;
  const auto chain = big.to_ctmc();
  using SM = holms::markov::SteadyStateMethod;
  const struct {
    const char* name;
    SM m;
  } methods[] = {{"power-iteration", SM::kPowerIteration},
                 {"gauss-seidel", SM::kGaussSeidel},
                 {"direct-LU", SM::kDirectLU}};
  for (const auto& meth : methods) {
    holms::markov::SolveOptions o;
    o.method = meth.m;
    const auto t0 = Clock::now();
    const auto r = chain.steady_state(o);
    std::printf("%-18s %12zu %12.3f\n", meth.name, r.iterations,
                ms_since(t0));
  }
  holms::bench::note(
      "expected shape: occupancy/throughput agree within a few percent; the "
      "analytical solve is orders of magnitude faster than the simulation.");
  return 0;
}
