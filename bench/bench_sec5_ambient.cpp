// E11 — §5 (extension): ambient multimedia must "operate with limited
// resources and failing parts" while users "behave non-deterministically".
// Availability of the surveillance application under tile failures, with a
// static design-time mapping vs run-time adaptive remapping ([33]'s
// fault-tolerant behaviour).
#include <cstdio>

#include "bench_util.hpp"
#include "core/ambient.hpp"
#include "noc/taskgraph.hpp"

using namespace holms::core;

int main() {
  holms::bench::BenchReport report("sec5_ambient");
  holms::bench::title("E11", "Ambient operation under failures (sec 5)");

  // The surveillance pipeline (schedulable DAG form) on a 4x4 platform:
  // 4 spare tiles absorb failures.
  Application app;
  app.name = "ambient-surveillance";
  app.graph = holms::noc::video_surveillance_dag();
  const Platform plat = Platform::homogeneous(4, 4);
  // Deadline pinned at 1.35x the healthy makespan: loose enough that the
  // intact system always meets it, tight enough that doubling tasks up on
  // shared tiles (after many failures) visibly degrades QoS.
  {
    app.qos.period_s = 10.0;  // placeholder for the probe evaluation
    const auto healthy = evaluate_design(
        app, plat,
        holms::noc::greedy_mapping(app.graph, plat.mesh, plat.noc_energy),
        false);
    app.qos.period_s = healthy.schedule.makespan_s * 1.35;
  }
  std::printf("period: %.1f ms (1.35x healthy makespan)\n",
              app.qos.period_s * 1e3);

  std::printf("%-12s %-10s %12s %12s %12s %12s %10s %8s\n", "MTBF-s",
              "policy", "avail", "ok", "degraded", "failed", "energy-kJ",
              "remaps");
  for (const double mtbf : {3600.0, 1800.0, 900.0, 450.0}) {
    for (const FaultPolicy pol :
         {FaultPolicy::kStatic, FaultPolicy::kAdaptiveRemap}) {
      AmbientConfig cfg;
      cfg.duration_s = 1200.0;
      cfg.tile_mtbf_s = mtbf;
      cfg.seed = 21;
      const AmbientResult r = run_ambient_scenario(app, plat, pol, cfg);
      std::printf("%-12.0f %-10s %12.3f %12zu %12zu %12zu %10.3f %8zu\n",
                  mtbf, pol == FaultPolicy::kStatic ? "static" : "adaptive",
                  r.availability, r.periods_ok, r.periods_degraded,
                  r.periods_failed, r.energy_j * 1e-3, r.remaps_performed);
    }
  }
  holms::bench::rule();
  holms::bench::note(
      "expected shape: static availability collapses as MTBF shrinks (any "
      "failure hitting a used tile is fatal); adaptive remapping degrades "
      "gracefully by migrating tasks to spare tiles — the ambient-"
      "intelligence requirement of sec 5.");
  return 0;
}
