#pragma once
// Shared helpers for the experiment regenerators in bench/.
// Each bench binary prints the rows/series its DESIGN.md experiment calls
// for; EXPERIMENTS.md records paper-claim vs measured for each.
//
// Every bench also emits a machine-readable BENCH_<name>.json run report:
// instantiate one BenchReport at the top of main().  It installs an
// exec::MetricsRegistry as the process sink (so explorer / SA / simulator
// instrumentation is captured), times the whole run, derives the headline
// rates (candidates/s, cache hit rate) and writes the file on destruction.

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exec/metrics.hpp"

namespace holms::bench {

inline void title(const std::string& id, const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), text.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Per-bench run report: BENCH_<name>.json in the working directory.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        sink_(registry_),
        start_(std::chrono::steady_clock::now()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Attaches an extra scalar to the report (speedups, problem sizes, ...).
  void set(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    extras_.emplace_back(key, buf);
  }

  exec::MetricsRegistry& registry() { return registry_; }

  ~BenchReport() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double candidates =
        static_cast<double>(registry_.counter("explore.candidates").value());
    const double hits =
        static_cast<double>(registry_.counter("explore.cache_hits").value());
    const double misses =
        static_cast<double>(registry_.counter("explore.cache_misses").value());
    const double lookups = hits + misses;

    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"name\":\"%s\",\"wall_time_s\":%.6f", name_.c_str(),
                 wall);
    std::fprintf(f, ",\"candidates_per_s\":%.3f",
                 wall > 0.0 ? candidates / wall : 0.0);
    std::fprintf(f, ",\"cache_hit_rate\":%.6f",
                 lookups > 0.0 ? hits / lookups : 0.0);
    for (const auto& [k, v] : extras_) {
      std::fprintf(f, ",\"%s\":%s", k.c_str(), v.c_str());
    }
    std::fprintf(f, ",\"metrics\":%s}\n", registry_.dump_json().c_str());
    std::fclose(f);
    std::printf("-- run report: %s\n", path.c_str());
  }

 private:
  std::string name_;
  exec::MetricsRegistry registry_;
  exec::ScopedMetricsSink sink_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> extras_;
};

}  // namespace holms::bench
