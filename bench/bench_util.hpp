#pragma once
// Shared table-printing helpers for the experiment regenerators in bench/.
// Each bench binary prints the rows/series its DESIGN.md experiment calls
// for; EXPERIMENTS.md records paper-claim vs measured for each.

#include <cstdio>
#include <string>

namespace holms::bench {

inline void title(const std::string& id, const std::string& text) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id.c_str(), text.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("-- %s\n", text.c_str());
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace holms::bench
