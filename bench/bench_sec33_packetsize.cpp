// E5 — §3.3 [21][22]: "deciding the packet size is also of paramount
// importance ... large packets might prohibitively long block a network
// link causing a degradation in the allowable network throughput."
//
// Fixed payload demand, swept packetization, measured on the flit-accurate
// wormhole simulator with cross traffic.
#include <cstdio>

#include "bench_util.hpp"
#include <vector>

#include "noc/router.hpp"

using namespace holms::noc;
using holms::sim::Rng;

int main() {
  holms::bench::BenchReport report("sec33_packetsize");
  holms::bench::title("E5", "Packet-size trade-off on the wormhole NoC");

  const Mesh2D mesh(4, 4);
  const double payload_flits_per_cycle = 0.06;  // per flow, fixed demand

  std::printf("%-12s %12s %12s %12s %12s %12s\n", "pkt-flits",
              "hdr-overhead", "latency-cyc", "p99-cyc", "accepted-f/c",
              "energy-pJ/b");
  for (const std::size_t flits : {2u, 4u, 8u, 16u, 32u, 64u}) {
    NocSim sim(mesh, NocSim::Config{}, Rng(3));
    // Four long-haul flows crossing the mesh both ways plus two hot-spot
    // flows into the center: enough contention that long worms block links.
    const Flow flows[] = {
        {mesh.tile_at(0, 0), mesh.tile_at(3, 3), 0.0, flits},
        {mesh.tile_at(3, 0), mesh.tile_at(0, 3), 0.0, flits},
        {mesh.tile_at(0, 3), mesh.tile_at(3, 0), 0.0, flits},
        {mesh.tile_at(3, 3), mesh.tile_at(0, 0), 0.0, flits},
        {mesh.tile_at(1, 0), mesh.tile_at(2, 2), 0.0, flits},
        {mesh.tile_at(2, 3), mesh.tile_at(1, 1), 0.0, flits},
    };
    for (Flow f : flows) {
      // One flit per packet is the header: the payload rate is fixed, so the
      // packet rate falls as packets grow and the header tax shrinks.
      f.packets_per_cycle =
          payload_flits_per_cycle / static_cast<double>(flits - 1);
      sim.add_flow(f);
    }
    sim.run(60000);
    const auto s = sim.stats();
    std::printf("%-12zu %11.1f%% %12.1f %12.1f %12.3f %12.2f\n", flits,
                100.0 / static_cast<double>(flits), s.mean_packet_latency,
                s.p99_packet_latency, s.accepted_flits_per_cycle,
                s.energy_per_bit_pj);
  }
  // Ablation: routing algorithm under the same load (XY vs west-first).
  holms::bench::rule();
  holms::bench::note("routing ablation at 8-flit packets:");
  std::printf("%-12s %12s %12s %12s\n", "routing", "latency-cyc", "p99-cyc",
              "accepted-f/c");
  for (const RoutingAlgo algo : {RoutingAlgo::kXY, RoutingAlgo::kWestFirst}) {
    NocSim::Config cfg;
    cfg.routing = algo;
    NocSim sim(mesh, cfg, Rng(4));
    const Flow flows[] = {
        {mesh.tile_at(0, 0), mesh.tile_at(3, 3), 0.0, 8},
        {mesh.tile_at(3, 0), mesh.tile_at(0, 3), 0.0, 8},
        {mesh.tile_at(0, 3), mesh.tile_at(3, 0), 0.0, 8},
        {mesh.tile_at(3, 3), mesh.tile_at(0, 0), 0.0, 8},
        {mesh.tile_at(1, 0), mesh.tile_at(2, 2), 0.0, 8},
        {mesh.tile_at(2, 3), mesh.tile_at(1, 1), 0.0, 8},
    };
    for (Flow f : flows) {
      f.packets_per_cycle = payload_flits_per_cycle / 7.0;
      sim.add_flow(f);
    }
    sim.run(60000);
    const auto s = sim.stats();
    std::printf("%-12s %12.1f %12.1f %12.3f\n",
                algo == RoutingAlgo::kXY ? "XY" : "west-first",
                s.mean_packet_latency, s.p99_packet_latency,
                s.accepted_flits_per_cycle);
  }

  // Ablation: virtual channels at the saturation knee.
  holms::bench::rule();
  holms::bench::note(
      "virtual-channel ablation (uniform traffic at 0.04 pkt/cycle/tile):");
  std::printf("%-8s %12s %12s %12s %12s\n", "VCs", "latency-cyc", "p99-cyc",
              "accepted-f/c", "delivery");
  for (const std::size_t vcs : {1u, 2u, 4u}) {
    NocSim::Config cfg;
    cfg.virtual_channels = vcs;
    cfg.buffer_depth = 4;
    const auto pt = latency_throughput_sweep(
        mesh, TrafficPattern::kUniformRandom, {0.04}, 30000, cfg, 6)[0];
    std::printf("%-8zu %12.1f %12.1f %12.3f %12.3f\n", vcs, pt.mean_latency,
                pt.p99_latency, pt.accepted_flits_per_cycle,
                pt.delivery_ratio);
  }

  // Latency/throughput characterization per traffic pattern.
  holms::bench::rule();
  holms::bench::note(
      "latency vs injection rate per synthetic pattern (8-flit packets):");
  const std::vector<double> rates{0.002, 0.005, 0.01, 0.02, 0.04, 0.08};
  struct PatRow {
    const char* name;
    TrafficPattern p;
  };
  for (const PatRow pr :
       {PatRow{"uniform", TrafficPattern::kUniformRandom},
        PatRow{"transpose", TrafficPattern::kTranspose},
        PatRow{"bit-compl", TrafficPattern::kBitComplement},
        PatRow{"hotspot", TrafficPattern::kHotspot}}) {
    std::printf("%-10s", pr.name);
    const auto curve = latency_throughput_sweep(mesh, pr.p, rates, 30000,
                                                NocSim::Config{}, 5);
    for (const auto& pt : curve) {
      std::printf(" %8.1f", pt.mean_latency);
    }
    std::printf("   (mean cyc @ rates");
    for (double r : rates) std::printf(" %.3f", r);
    std::printf(")\n");
  }

  holms::bench::note(
      "expected shape: tiny packets pay header overhead (more flits moved "
      "per payload bit); huge packets hold links and inflate latency, "
      "especially p99 — the optimum sits in the middle, which is [21]'s "
      "packetization result; hotspot traffic saturates far before uniform.");
  return 0;
}
