// E7 — §4 [26]: "the modulation level and transmit power of the transmitter
// and the complexity of the channel decoder of the receiver are dynamically
// changed to match the characteristics of the communication channel ...
// an average of 12% reduction in the overall energy consumption of the
// transceivers without any appreciable performance penalty."
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "wireless/transceiver.hpp"

using namespace holms::wireless;
using holms::sim::Rng;

int main() {
  holms::bench::BenchReport report("sec4_transceiver");
  holms::bench::title("E7",
                      "Game-theoretic transceiver adaptation (12% claim)");
  RadioModel radio;
  EnergyManager::Options opts;
  EnergyManager mgr(radio, opts);

  // Slow log-normal shadowing around a -93 dB median path gain, clamped to
  // the provisioning range.
  const double median_gain = 5e-10;
  const double worst_gain = 1e-10;
  const auto fixed = mgr.static_config(worst_gain);

  std::printf("static worst-case design: %s, %.2f W, K=%d, %.2f nJ/bit\n",
              modulation_name(fixed.modulation).c_str(), fixed.tx_power_w,
              fixed.code.constraint_length, fixed.energy_per_bit_j * 1e9);

  holms::bench::rule();
  std::printf("%-10s %-22s %-22s %12s\n", "slot", "channel-gain(dB)",
              "adapted config", "nJ/bit");
  Rng rng(5);
  holms::sim::OnlineStats e_static, e_adapt, e_oracle;
  TransceiverConfig prev = fixed;
  std::uint64_t misses = 0;
  const int slots = 400;
  double log_gain = std::log(median_gain);
  for (int s = 0; s < slots; ++s) {
    // AR(1) shadowing in log domain.
    log_gain = 0.9 * log_gain + 0.1 * std::log(median_gain) +
               rng.normal(0.0, 0.25);
    const double gain =
        std::max(worst_gain, std::min(std::exp(log_gain), 1e-8));

    const auto adapted = mgr.game_theoretic(gain, prev);
    const auto oracle = mgr.optimal(gain);
    const auto still_fixed = mgr.evaluate(fixed.modulation, fixed.tx_power_w,
                                          fixed.code, gain);
    e_static.add(still_fixed.energy_per_bit_j);
    e_adapt.add(adapted.energy_per_bit_j);
    e_oracle.add(oracle.feasible ? oracle.energy_per_bit_j
                                 : adapted.energy_per_bit_j);
    if (!adapted.feasible) ++misses;
    prev = adapted;
    if (s % 80 == 0) {
      char cfgbuf[64];
      std::snprintf(cfgbuf, sizeof cfgbuf, "%s %.2fW K=%d",
                    modulation_name(adapted.modulation).c_str(),
                    adapted.tx_power_w, adapted.code.constraint_length);
      std::printf("%-10d %-22.1f %-22s %12.2f\n", s,
                  10.0 * std::log10(gain), cfgbuf,
                  adapted.energy_per_bit_j * 1e9);
    }
  }

  holms::bench::rule();
  std::printf("%-28s %14s %10s\n", "policy", "nJ/bit (avg)", "saving");
  std::printf("%-28s %14.2f %10s\n", "static (worst-case design)",
              e_static.mean() * 1e9, "-");
  std::printf("%-28s %14.2f %9.1f%%\n", "game-theoretic adaptation",
              e_adapt.mean() * 1e9,
              100.0 * (1.0 - e_adapt.mean() / e_static.mean()));
  std::printf("%-28s %14.2f %9.1f%%\n", "oracle (exhaustive)",
              e_oracle.mean() * 1e9,
              100.0 * (1.0 - e_oracle.mean() / e_static.mean()));
  std::printf("BER-target misses under adaptation: %llu / %d slots\n",
              static_cast<unsigned long long>(misses), slots);
  holms::bench::note("paper claim [26]: ~12% average transceiver energy "
                     "reduction with no appreciable performance penalty.");
  holms::bench::note(
      "expected shape: adaptation saves a double-digit percentage vs the "
      "static design and tracks the oracle closely, with zero BER misses.");
  return 0;
}
