// E3 — §3.2: self-similar multimedia traffic vs Markovian traffic at the
// same mean load: power-law autocorrelation and much heavier queueing at a
// NoC router buffer.
//
// "the self-similar processes typically obey some power-law decay of the
//  autocorrelation function.  This produces scenarios which are drastically
//  different from those experienced with traditional short-range dependent
//  models such as Markovian processes."
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "sim/random.hpp"
#include "stream/stream_system.hpp"
#include "traffic/selfsim.hpp"
#include "traffic/sources.hpp"

using holms::sim::Rng;

int main() {
  holms::bench::BenchReport report("sec32_selfsim");
  holms::bench::title("E3",
                      "Self-similar vs Markovian traffic at a router buffer");

  const double service_rate = 100.0;  // packets per second
  const double rate = 70.0;           // offered load rho = 0.7

  // --- Hurst estimates and autocorrelation decay of the two inputs.
  holms::bench::note("input characterization (8192 one-second slots):");
  Rng rng(1);
  auto lrd = holms::traffic::make_selfsimilar_aggregate(32, rate, 1.4, rng);
  holms::traffic::PoissonSource poisson(rate, Rng(2));
  const auto counts_l = holms::traffic::arrivals_per_slot(*lrd, 1.0, 8192);
  const auto counts_p =
      holms::traffic::arrivals_per_slot(poisson, 1.0, 8192);
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "source", "H(aggvar)",
              "acf@1", "acf@8", "acf@32", "acf@128");
  auto acf_row = [](const char* name, const std::vector<double>& xs) {
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %10.3f\n", name,
                holms::traffic::hurst_aggregated_variance(xs),
                holms::sim::autocorrelation(xs, 1),
                holms::sim::autocorrelation(xs, 8),
                holms::sim::autocorrelation(xs, 32),
                holms::sim::autocorrelation(xs, 128));
  };
  acf_row("on/off-par.", counts_l);
  acf_row("poisson", counts_p);
  std::printf("(theory: H = (3 - 1.4)/2 = 0.8 for the aggregate; 0.5 for "
              "Poisson)\n");

  // --- Queueing: loss vs buffer size at equal load.
  holms::bench::rule();
  holms::bench::note(
      "router input queue at rho = 0.7: loss and occupancy vs buffer depth");
  std::printf("%-8s %14s %14s %14s %14s\n", "buffer", "loss(poisson)",
              "loss(lrd)", "occ(poisson)", "occ(lrd)");
  for (const std::size_t buf : {4u, 8u, 16u, 32u, 64u}) {
    holms::stream::StreamConfig cfg;
    cfg.packet_size_bits = 1000.0;
    cfg.link.bits_per_second = 1000.0 * service_rate;
    cfg.link.propagation_delay = 0.0;
    cfg.tx_capacity = buf;
    holms::traffic::PoissonSource p2(rate, Rng(3));
    Rng rng2(4);
    auto l2 = holms::traffic::make_selfsimilar_aggregate(32, rate, 1.4, rng2);
    holms::stream::IidErrorModel e1(0.0, Rng(5)), e2(0.0, Rng(6));
    const auto qp = run_stream(p2, e1, cfg, 800.0);
    const auto ql = run_stream(*l2, e2, cfg, 800.0);
    std::printf("%-8zu %14.5f %14.5f %14.3f %14.3f\n", buf, qp.loss_rate,
                ql.loss_rate, qp.mean_tx_occupancy, ql.mean_tx_occupancy);
  }
  holms::bench::rule();
  holms::bench::note(
      "expected shape: Poisson loss collapses exponentially with buffer "
      "size; LRD loss decays only polynomially, so provisioning buffers by "
      "Markovian analysis badly undersizes them — the §3.2 design warning.");
  return 0;
}
