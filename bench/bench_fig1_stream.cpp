// F1 — Fig.1 reproduction: the generic multimedia stream
// (Source -> Tx-buffer -> Channel -> Rx-buffer -> Sink) is simulatable and
// its QoS metrics respond to the channel error rate, ARQ budget and buffer
// sizing exactly as §2.1 describes.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/random.hpp"
#include "stream/lipsync.hpp"
#include "stream/mpeg2.hpp"
#include "stream/stream_system.hpp"
#include "traffic/sources.hpp"
#include "traffic/video.hpp"

using holms::sim::Rng;

int main() {
  holms::bench::BenchReport report("fig1_stream");
  holms::bench::title("F1", "Generic multimedia stream of Fig.1(a)/(b)");

  // --- Series 1: loss/latency/energy vs channel error rate, with/without ARQ.
  holms::bench::note(
      "series 1: QoS vs packet error rate (CBR 100 pkt/s over 10 Mbps link)");
  std::printf("%-8s %-6s %12s %12s %12s %12s\n", "PER", "ARQ", "loss-rate",
              "latency-ms", "jitter-ms", "tx-energy-J");
  for (const double per : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    for (const int arq : {0, 4}) {
      holms::stream::StreamConfig cfg;
      cfg.packet_size_bits = 8000;
      cfg.link.bits_per_second = 10e6;
      cfg.link.propagation_delay = 1e-4;
      cfg.arq_max_retransmissions = static_cast<std::uint32_t>(arq);
      holms::traffic::CbrSource src(100.0);
      holms::stream::IidErrorModel err(per, Rng(1));
      const auto q = run_stream(src, err, cfg, 60.0);
      std::printf("%-8.2f %-6d %12.4f %12.3f %12.3f %12.5f\n", per, arq,
                  q.loss_rate, q.mean_latency * 1e3, q.jitter * 1e3,
                  q.tx_energy_joules);
    }
  }

  // --- Series 2: Rx-buffer sizing under a bursty Gilbert-Elliott channel.
  holms::bench::rule();
  holms::bench::note(
      "series 2: Rx-buffer occupancy/loss vs buffer size (Gilbert-Elliott "
      "channel, slow 55 pkt/s display)");
  std::printf("%-10s %12s %12s %12s\n", "rx-buf", "rx-occupancy",
              "rx-overflow", "loss-rate");
  for (const std::size_t rx : {2u, 4u, 8u, 16u, 32u}) {
    holms::stream::StreamConfig cfg;
    cfg.packet_size_bits = 8000;
    cfg.link.bits_per_second = 10e6;
    cfg.rx_capacity = rx;
    cfg.sink_service_time = 1.0 / 55.0;
    cfg.arq_max_retransmissions = 2;
    holms::traffic::PoissonSource src(50.0, Rng(2));
    holms::stream::GilbertElliottModel::Params gep;
    holms::stream::GilbertElliottModel err(gep, Rng(3));
    const auto q = run_stream(src, err, cfg, 120.0);
    std::printf("%-10zu %12.3f %12llu %12.4f\n", rx, q.mean_rx_occupancy,
                static_cast<unsigned long long>(q.lost_rx_overflow),
                q.loss_rate);
  }

  // --- Series 3: Fig.1(b) MPEG-2 decoder buffer utilization vs CPU speed.
  holms::bench::rule();
  holms::bench::note(
      "series 3: MPEG-2 decoder process network (B2/B3/B4 mean occupancy)");
  std::printf("%-10s %8s %8s %8s %10s %10s %8s\n", "cpu-MHz", "B2", "B3",
              "B4", "lat-ms", "util", "fps");
  for (const double mhz : {150.0, 250.0, 400.0, 800.0}) {
    holms::traffic::VideoTraceGenerator::Params vp;
    vp.mean_bitrate = 2e6;
    vp.scene_strength = 0.0;
    holms::traffic::VideoTraceGenerator video(vp, Rng(4));
    holms::stream::Mpeg2Config cfg;
    cfg.cpu_frequency_hz = mhz * 1e6;
    const auto r = run_mpeg2_decoder(video, 600, cfg, 1.0);
    std::printf("%-10.0f %8.2f %8.2f %8.2f %10.2f %10.3f %8.1f\n", mhz,
                r.mean_b2, r.mean_b3, r.mean_b4,
                r.mean_frame_latency * 1e3, r.cpu0_utilization, r.fps_out);
  }
  // --- Series 4: lip synchronization of the audio/video pair (§2.1:
  // "the audio and video streams needs to be synchronized at precise time
  // instances").
  holms::bench::rule();
  holms::bench::note(
      "series 4: lip-sync quality vs video path jitter (80 ms tolerance)");
  std::printf("%-12s %12s %10s %10s %12s %12s\n", "jitter-ms", "in-sync",
              "resyncs", "late", "mean-skew-ms", "vid-buffer");
  for (const double jitter_ms : {2.0, 10.0, 50.0, 120.0, 250.0}) {
    holms::stream::LipSyncConfig cfg;
    cfg.video.jitter_stddev = jitter_ms * 1e-3;
    cfg.playout_offset = 0.150;
    const auto r = holms::stream::run_lipsync(cfg, 300.0, 11);
    std::printf("%-12.0f %12.4f %10llu %10llu %12.1f %12.2f\n", jitter_ms,
                r.in_sync_fraction,
                static_cast<unsigned long long>(r.resyncs),
                static_cast<unsigned long long>(r.video_late),
                r.mean_abs_skew * 1e3, r.mean_video_buffer);
  }

  holms::bench::note(
      "expected shape: loss tracks PER without ARQ and collapses with ARQ at "
      "a latency/energy cost; B2 occupancy and latency grow as the CPU "
      "slows (\"average buffer length reflects utilization\"); lip-sync "
      "holds until jitter approaches the playout offset, then resyncs and "
      "freezes take over.");
  return 0;
}
