// Fault-injection robustness experiment (DESIGN.md §5e, §5j).
//
// Sweeps the fraction of failed mesh links against the three NoC routing
// functions, measuring delivery ratio and detour overhead; replays one
// schedule twice to pin bitwise reproducibility; runs the FGS graceful-
// degradation ladder under sustained 30% channel loss; and exercises the
// failure-domain burst generator (correlated enclosure/rack outages, one
// repair crew) against the windowed availability SLO.  Emits
// BENCH_fault.json, gated by the "fault" section of bench/thresholds.json:
//   ft_delivery_ratio_5pct         >= 0.95  (kFaultTolerant, 5% links dead)
//   xy_delivery_gap_5pct           >= 0.30  (kXY demonstrably blackholes)
//   fgs_min_psnr_db_30loss         >= 30.0  (base-layer PSNR intact)
//   bitwise_reproducible           >= 1.0   (same (seed, schedule) => same stats)
//   burst_fingerprint_reproducible >= 1.0   (same (seed, tree, spec) => same trace)
//   crew_queue_max_depth           >= 2     (the single crew visibly saturates)
//   slo_fraction_burst             >= 0.999 (adaptive remap rides out bursts)
//   slo_mean_divergence_burst      >= 1.0   (mean >= 0.999 while SLO < 1.0)
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/ambient.hpp"
#include "dvfs/dvfs.hpp"
#include "fault/domain.hpp"
#include "fault/schedule.hpp"
#include "manet/routing.hpp"
#include "noc/router.hpp"
#include "streaming/fgs.hpp"

namespace {

using holms::fault::FaultEvent;
using holms::fault::FaultKind;
using holms::fault::FaultSchedule;
using holms::fault::Target;
using holms::sim::Rng;

constexpr std::uint64_t kCycles = 12000;
constexpr double kFailAt = 2000.0;  // links die after warm-up, stay dead

holms::noc::NocStats run_noc(const holms::noc::Mesh2D& mesh,
                             holms::noc::RoutingAlgo algo,
                             const FaultSchedule* schedule) {
  holms::noc::NocSim::Config cfg;
  cfg.virtual_channels = 2;
  cfg.routing = algo;
  holms::noc::NocSim sim(mesh, cfg, Rng(99));
  add_pattern_flows(sim, mesh, holms::noc::TrafficPattern::kUniformRandom,
                    0.02, 4);
  if (schedule != nullptr) sim.attach_fault_schedule(schedule);
  sim.run(kCycles);
  return sim.stats();
}

/// Fails ~frac of the undirected links (every round(1/frac)-th id, the same
/// spread tests/test_fault.cpp pins) at kFailAt.
FaultSchedule link_kill_schedule(const holms::noc::Mesh2D& mesh,
                                 double frac) {
  std::vector<FaultEvent> trace;
  if (frac > 0.0) {
    const std::size_t stride =
        static_cast<std::size_t>(1.0 / frac + 0.5);
    for (std::size_t id = 0; id < mesh.num_undirected_links(); id += stride) {
      trace.push_back({kFailAt, FaultKind::kFail, Target::kLink, id});
    }
  }
  return FaultSchedule::from_trace(trace);
}

const char* algo_name(holms::noc::RoutingAlgo a) {
  switch (a) {
    case holms::noc::RoutingAlgo::kXY: return "xy";
    case holms::noc::RoutingAlgo::kWestFirst: return "west-first";
    case holms::noc::RoutingAlgo::kFaultTolerant: return "fault-tolerant";
  }
  return "?";
}

bool stats_equal(const holms::noc::NocStats& a, const holms::noc::NocStats& b) {
  return a.packets_injected == b.packets_injected &&
         a.packets_delivered == b.packets_delivered &&
         a.packets_dropped == b.packets_dropped &&
         a.flit_hops == b.flit_hops && a.reroute_hops == b.reroute_hops &&
         a.faults_applied == b.faults_applied &&
         a.mean_packet_latency == b.mean_packet_latency &&
         a.energy_joules == b.energy_joules;
}

}  // namespace

int main() {
  holms::bench::BenchReport report("fault");
  holms::bench::title("5e", "cross-layer fault injection and degradation");

  // --- NoC: delivery ratio vs failed-link fraction, per routing algo ---
  const holms::noc::Mesh2D mesh(8, 8);
  const std::vector<double> fracs = {0.0, 0.02, 0.05, 0.10};
  const std::vector<holms::noc::RoutingAlgo> algos = {
      holms::noc::RoutingAlgo::kXY, holms::noc::RoutingAlgo::kWestFirst,
      holms::noc::RoutingAlgo::kFaultTolerant};

  holms::bench::note(
      "8x8 mesh, uniform traffic 0.02 pkt/cyc/tile, links fail at cycle "
      "2000 and stay dead");
  std::printf("%-15s %8s %10s %9s %10s %12s\n", "routing", "links", "delivery",
              "dropped", "latency", "reroute/hop");
  double ft_5 = 0.0, xy_5 = 0.0, ft_reroute_5 = 0.0;
  for (const double frac : fracs) {
    const FaultSchedule sched = link_kill_schedule(mesh, frac);
    for (const auto algo : algos) {
      const auto st =
          run_noc(mesh, algo, sched.empty() ? nullptr : &sched);
      const double reroute =
          st.flit_hops > 0
              ? static_cast<double>(st.reroute_hops) /
                    static_cast<double>(st.flit_hops)
              : 0.0;
      std::printf("%-15s %7.0f%% %10.4f %9llu %10.1f %12.5f\n",
                  algo_name(algo), frac * 100.0, st.delivery_ratio,
                  static_cast<unsigned long long>(st.packets_dropped),
                  st.mean_packet_latency, reroute);
      if (frac == 0.05) {
        if (algo == holms::noc::RoutingAlgo::kFaultTolerant) {
          ft_5 = st.delivery_ratio;
          ft_reroute_5 = reroute;
        } else if (algo == holms::noc::RoutingAlgo::kXY) {
          xy_5 = st.delivery_ratio;
        }
      }
    }
    holms::bench::rule();
  }
  report.set("ft_delivery_ratio_5pct", ft_5);
  report.set("xy_delivery_ratio_5pct", xy_5);
  report.set("xy_delivery_gap_5pct", ft_5 - xy_5);
  report.set("ft_reroute_overhead_5pct", ft_reroute_5);

  // --- bitwise reproducibility: one Poisson schedule, two replays ---
  FaultSchedule::PoissonSpec spec;
  spec.target = Target::kLink;
  spec.num_targets = mesh.num_undirected_links();
  spec.fail_rate = 1.0 / 4000.0;
  spec.repair_rate = 1.0 / 1500.0;
  spec.horizon = static_cast<double>(kCycles);
  const FaultSchedule poisson = FaultSchedule::poisson(21, spec);
  const auto r1 =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, &poisson);
  const auto r2 =
      run_noc(mesh, holms::noc::RoutingAlgo::kFaultTolerant, &poisson);
  const bool reproducible = stats_equal(r1, r2);
  holms::bench::note(
      "poisson link fail/repair replayed twice: fingerprint " +
      std::to_string(poisson.fingerprint()) +
      (reproducible ? ", stats bitwise identical" : ", STATS DIVERGED"));
  report.set("bitwise_reproducible", reproducible ? 1.0 : 0.0);
  report.set("poisson_faults_applied", static_cast<double>(r1.faults_applied));

  // --- FGS: graceful degradation under sustained 30% loss ---
  // Driven through the FgsSessionFom step protocol (bitwise-identical to the
  // one-shot run) so per-slot PSNR telemetry can feed a quantile sketch.
  const FaultSchedule always_bad =
      FaultSchedule::from_trace({{0.0, FaultKind::kFail, Target::kLink, 0}});
  holms::streaming::FgsConfig fgs_cfg;
  holms::dvfs::Processor cpu(holms::dvfs::xscale_points(),
                             holms::dvfs::PowerModel{});
  holms::streaming::ChannelTrace ch(Rng(31), 3.0e6, 1.2e6, 0.6e6);
  holms::streaming::SlotLossTrace loss(&always_bad, fgs_cfg.slot_s, 0.0, 0.3);
  holms::streaming::FgsSessionFom fom(
      holms::streaming::FgsPolicy::kGracefulDegradation, fgs_cfg, cpu, ch,
      400, &loss);
  holms::sim::QuantileSketch slot_psnr(1.0, 128.0, 32);
  while (!fom.done()) {
    const std::size_t before = fom.slots_done();
    fom.step();
    if (fom.slots_done() > before) slot_psnr.add(fom.last_psnr_db());
  }
  const holms::streaming::FgsReport& fgs = fom.report();
  std::printf(
      "fgs graceful @30%% loss: min psnr %.2f dB, base misses %zu, "
      "mean shed %.3f, slot psnr p50/p1 %.2f/%.2f dB\n",
      fgs.min_psnr_db, fgs.base_layer_misses, fgs.mean_enhancement_shed,
      slot_psnr.p50(), slot_psnr.quantile(0.01));
  report.set("fgs_min_psnr_db_30loss", fgs.min_psnr_db);
  report.set("fgs_base_misses_30loss",
             static_cast<double>(fgs.base_layer_misses));
  report.set("fgs_mean_shed_30loss", fgs.mean_enhancement_shed);
  report.set("fgs_slot_psnr_p50_db_30loss", slot_psnr.p50());
  report.set("fgs_slot_psnr_p1_db_30loss", slot_psnr.quantile(0.01));

  // --- MANET: route repair keeps sessions alive through node crashes ---
  holms::manet::Manet::Params mp;
  mp.num_nodes = 30;
  FaultSchedule::PoissonSpec crash;
  crash.target = Target::kNode;
  crash.num_targets = mp.num_nodes;
  crash.fail_rate = 1.0 / 200.0;
  crash.repair_rate = 1.0 / 60.0;
  crash.horizon = 800.0;
  const FaultSchedule crashes = FaultSchedule::poisson(13, crash);
  holms::manet::LifetimeConfig mcfg;
  mcfg.max_time_s = 800.0;
  mcfg.num_flows = 4;
  const auto manet = holms::manet::simulate_lifetime(
      holms::manet::Protocol::kBatteryCost, mp, mcfg, 17, &crashes);
  std::printf(
      "manet w/ crashes: delivery %.4f, repairs %llu, blackholed %llu, "
      "faults %llu\n",
      manet.delivery_ratio,
      static_cast<unsigned long long>(manet.route_repairs),
      static_cast<unsigned long long>(manet.packets_blackholed),
      static_cast<unsigned long long>(manet.faults_applied));
  report.set("manet_delivery_ratio_crashes", manet.delivery_ratio);
  report.set("manet_route_repairs", static_cast<double>(manet.route_repairs));

  // --- failure domains: correlated bursts, crew queue, availability SLO ---
  // rack -> 2 enclosures -> 9 tiles of a 3x3 platform (enc0 owns 0..4).
  holms::fault::FailureDomainTree tree("rack");
  const std::size_t enc0 = tree.add_domain(
      holms::fault::FailureDomainTree::kRoot, "enc0");
  const std::size_t enc1 = tree.add_domain(
      holms::fault::FailureDomainTree::kRoot, "enc1");
  for (std::size_t t = 0; t < 9; ++t) {
    tree.map_target(Target::kTile, t, t < 5 ? enc0 : enc1);
  }

  holms::core::Application app;
  app.name = "pipe";
  const auto ta = app.graph.add_node("a", 4e6);
  const auto tb = app.graph.add_node("b", 6e6);
  const auto tc = app.graph.add_node("c", 5e6);
  app.graph.add_edge(ta, tb, 1e5);
  app.graph.add_edge(tb, tc, 1e5);
  const auto plat = holms::core::Platform::homogeneous(3, 3);

  holms::core::AmbientConfig amb;
  amb.duration_s = 3600.0;
  amb.activity_low = 1.0;  // pin activity: availability is fault-driven only
  const std::size_t kWindow = 250;  // 10 s of 40 ms QoS periods

  // Enclosure bursts with one repair crew: the adaptive-remap baseline must
  // ride them out (tasks shift to the live enclosure within the period).
  FaultSchedule::BurstSpec bspec;
  bspec.domains = {enc0};
  bspec.burst_rate = 1.0 / 40.0;
  bspec.onset_jitter = 0.5;
  bspec.repair_time = 2.0;
  bspec.repair_stagger = 1.0;
  bspec.horizon = 200.0;
  bspec.crews = 1;
  FaultSchedule::BurstStats bstats;
  const FaultSchedule burst = FaultSchedule::bursts(5, tree, bspec, &bstats);
  const bool burst_repro =
      FaultSchedule::bursts(5, tree, bspec).fingerprint() ==
      burst.fingerprint();

  holms::core::AmbientOptions aopts;
  aopts.schedule = &burst;
  const auto adaptive = holms::core::run_ambient_scenario(
      app, plat, holms::core::FaultPolicy::kAdaptiveRemap, amb, aopts);
  const auto adaptive_slo =
      holms::core::availability_slo(adaptive.period_ok, 0.999, kWindow);

  std::printf(
      "enclosure bursts (crews=1): %zu bursts, %zu target fails, queue depth "
      "%zu; adaptive remap: availability %.6f, slo %.6f (%zu/%zu windows)\n",
      bstats.bursts, bstats.targets_failed, bstats.crew_queue_max_depth,
      adaptive.availability, adaptive_slo.slo_fraction,
      adaptive_slo.windows_met, adaptive_slo.windows);
  report.set("burst_fingerprint_reproducible", burst_repro ? 1.0 : 0.0);
  report.set("crew_queue_max_depth",
             static_cast<double>(bstats.crew_queue_max_depth));
  report.set("slo_fraction_burst", adaptive_slo.slo_fraction);
  report.set("burst_remaps_performed",
             static_cast<double>(adaptive.remaps_performed));

  // One rack-wide burst against a static design: the mean clears three
  // nines while the burst window collapses — the divergence the windowed
  // SLO score exists to expose (tests/test_fault.cpp pins the same trace).
  FaultSchedule::BurstSpec rspec;
  rspec.domains = {holms::fault::FailureDomainTree::kRoot};
  rspec.burst_rate = 1.0 / 100.0;
  rspec.onset_jitter = 0.05;
  rspec.repair_time = 0.4;
  rspec.repair_stagger = 0.1;
  rspec.horizon = 100.0;
  rspec.crews = 1;
  const FaultSchedule rack = FaultSchedule::bursts(41, tree, rspec);
  aopts.schedule = &rack;
  const auto static_res = holms::core::run_ambient_scenario(
      app, plat, holms::core::FaultPolicy::kStatic, amb, aopts);
  const auto static_slo =
      holms::core::availability_slo(static_res.period_ok, 0.999, kWindow);
  const bool diverged =
      static_res.availability >= 0.999 && static_slo.slo_fraction < 1.0;
  std::printf(
      "rack burst vs static design: mean availability %.6f, slo %.6f, worst "
      "window %.4f -> mean %s the burst, the slo does not\n",
      static_res.availability, static_slo.slo_fraction,
      static_slo.worst_window_availability, diverged ? "hides" : "SHOWS");
  report.set("mean_availability_rack_burst", static_res.availability);
  report.set("slo_fraction_rack_burst", static_slo.slo_fraction);
  report.set("worst_window_availability",
             static_slo.worst_window_availability);
  report.set("slo_mean_divergence_burst", diverged ? 1.0 : 0.0);

  return 0;
}
