// EP — parallel design-space exploration (ISSUE 1): serial vs parallel
// explore() on the holms::exec thread pool, with the determinism contract
// checked on every run (threads=N must reproduce threads=1 bitwise).
//
// The ISSUE names a "6x6 mesh, 64-task app"; mappings are injective (one
// core per tile), so 64 tasks need an 8x8 mesh — we run the 6x6 mesh at its
// injective capacity-half (32 tasks) and the 64-task app on 8x8.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "noc/taskgraph.hpp"

using namespace holms::core;
using holms::sim::Rng;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunStats {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

RunStats run_case(const char* name, std::size_t tasks, std::size_t mesh_w,
                  std::size_t mesh_h, std::size_t threads) {
  Application app;
  Rng graph_rng(17);
  app.graph = holms::noc::random_graph(tasks, graph_rng, 5e5);
  app.qos.period_s = 0.08;
  const Platform plat = Platform::homogeneous(mesh_w, mesh_h);

  ExploreOptions opts;
  opts.restarts = 6;
  opts.sa.iterations = 4000;

  RunStats st;
  opts.threads = 1;
  Rng serial_rng(42);
  auto t0 = std::chrono::steady_clock::now();
  const ExploreResult serial = explore(app, plat, serial_rng, opts);
  st.serial_s = seconds_since(t0);

  opts.threads = threads;
  Rng parallel_rng(42);
  t0 = std::chrono::steady_clock::now();
  const ExploreResult parallel = explore(app, plat, parallel_rng, opts);
  st.parallel_s = seconds_since(t0);

  st.speedup = st.parallel_s > 0.0 ? st.serial_s / st.parallel_s : 0.0;
  st.identical =
      serial.best.eval.total_energy_j == parallel.best.eval.total_energy_j &&
      serial.best.mapping == parallel.best.mapping &&
      serial.pareto.size() == parallel.pareto.size() &&
      serial.evaluated == parallel.evaluated;

  std::printf("%-28s %3zu tasks on %zux%zu  serial %7.3fs  parallel(%zu) "
              "%7.3fs  speedup %5.2fx  identical %s\n",
              name, tasks, mesh_w, mesh_h, st.serial_s, threads,
              st.parallel_s, st.speedup, st.identical ? "yes" : "NO");
  return st;
}

}  // namespace

int main() {
  holms::bench::BenchReport report("explore_parallel");
  holms::bench::title("EP", "Parallel DSE: holms::exec speedup + determinism");
  const std::size_t hw = std::thread::hardware_concurrency();
  // At least 4 so the pool path is exercised (and determinism checked under
  // real interleaving) even on small machines; speedup obviously needs the
  // physical cores to back it.
  const std::size_t threads = hw < 4 ? 4 : hw;
  holms::bench::note("hardware threads: " + std::to_string(hw) +
                     ", pool threads: " + std::to_string(threads));

  const RunStats small = run_case("6x6 mesh (inj. capacity/2)", 32, 6, 6,
                                  threads);
  const RunStats large = run_case("64-task app", 64, 8, 8, threads);

  holms::bench::rule();
  holms::bench::note("expected shape: speedup -> thread count while restarts "
                     ">= threads; identical must always be yes.");

  report.set("hardware_threads", static_cast<double>(hw));
  report.set("pool_threads", static_cast<double>(threads));
  report.set("serial_s_6x6", small.serial_s);
  report.set("parallel_s_6x6", small.parallel_s);
  report.set("speedup_6x6", small.speedup);
  report.set("serial_s_8x8", large.serial_s);
  report.set("parallel_s_8x8", large.parallel_s);
  report.set("speedup_8x8", large.speedup);
  report.set("deterministic",
             (small.identical && large.identical) ? 1.0 : 0.0);
  return (small.identical && large.identical) ? 0 : 1;
}
