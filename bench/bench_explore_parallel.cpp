// EP — parallel design-space exploration: serial vs parallel explore() on
// the holms::exec thread pool (ISSUE 1), plus the island-model sections
// (ISSUE 10): K-island convergence scaling on a 32x32 surveillance farm,
// checkpoint/resume identity, thread-count invariance, and the
// cluster-relocate vs swap-only move-mix verdict at scale.  Determinism is
// checked on every run: threads=N must reproduce threads=1 bitwise, and a
// resumed island run must reproduce the uninterrupted one bitwise.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/explorer.hpp"
#include "core/islands.hpp"
#include "noc/taskgraph.hpp"
#include "noc/topology.hpp"

using namespace holms::core;
using holms::sim::Rng;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunStats {
  double serial_s = 0.0;
  double parallel_s = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

RunStats run_case(const char* name, std::size_t tasks, std::size_t mesh_w,
                  std::size_t mesh_h, std::size_t threads) {
  Application app;
  Rng graph_rng(17);
  app.graph = holms::noc::random_graph(tasks, graph_rng, 5e5);
  app.qos.period_s = 0.08;
  const Platform plat = Platform::homogeneous(mesh_w, mesh_h);

  ExploreOptions opts;
  opts.restarts = 6;
  opts.sa.iterations = 4000;

  RunStats st;
  opts.threads = 1;
  Rng serial_rng(42);
  auto t0 = std::chrono::steady_clock::now();
  const ExploreResult serial = explore(app, plat, serial_rng, opts);
  st.serial_s = seconds_since(t0);

  opts.threads = threads;
  Rng parallel_rng(42);
  t0 = std::chrono::steady_clock::now();
  const ExploreResult parallel = explore(app, plat, parallel_rng, opts);
  st.parallel_s = seconds_since(t0);

  st.speedup = st.parallel_s > 0.0 ? st.serial_s / st.parallel_s : 0.0;
  st.identical =
      serial.best.eval.total_energy_j == parallel.best.eval.total_energy_j &&
      serial.best.mapping == parallel.best.mapping &&
      serial.pareto.size() == parallel.pareto.size() &&
      serial.evaluated == parallel.evaluated;

  std::printf("%-28s %3zu tasks on %zux%zu  serial %7.3fs  parallel(%zu) "
              "%7.3fs  speedup %5.2fx  identical %s\n",
              name, tasks, mesh_w, mesh_h, st.serial_s, threads,
              st.parallel_s, st.speedup, st.identical ? "yes" : "NO");
  return st;
}

// ---- island scaling on the 32x32 surveillance farm -------------------------

Application farm_app() {
  Application app;
  app.name = "surveillance-farm";
  app.graph = holms::noc::surveillance_farm_graph(46);  // 202 tasks
  app.qos.period_s = 1.0;
  return app;
}

/// 32x32 platform in the regime the NoC mapping literature studies.  Two
/// deliberate departures from the stock homogeneous() numbers:
///  * per-flit energies x100 (a deep-submicron wire-dominated design point):
///    on a homogeneous mesh the compute term is mapping-invariant, so with
///    stock coefficients every mapping prices within ~2% and the sweep would
///    measure noise — scaled, communication is the majority term;
///  * link bandwidth cut to 240 Mbps, ~60% of the greedy mapping's busiest
///    link (402 Mbps).  The greedy packing funnels all 46 camera chains into
///    the aggregation tiles and saturates the links around them, so greedy
///    is *infeasible* here and the mapper has to spread traffic to get a
///    design at all.  That is what makes the search problem real: on an
///    unconstrained mesh the greedy seed is already swap-optimal (measured:
///    300k SA moves never improve it) and every explorer just returns it.
Platform farm_platform() {
  Platform plat = Platform::homogeneous(32, 32);
  plat.noc_energy.e_router_pj *= 100.0;
  plat.noc_energy.e_link_pj *= 100.0;
  plat.noc_energy.e_buffer_pj *= 100.0;
  plat.link_bandwidth_bps = 2.4e8;
  return plat;
}

struct IslandRun {
  std::vector<std::pair<std::uint64_t, double>> trajectory;
  double final_energy = 0.0;
  std::uint64_t evaluated = 0;
  bool found = false;
  double wall_s = 0.0;
};

IslandRun run_islands(const Application& app, const Platform& plat,
                      const holms::noc::XyRouteTable& routes,
                      std::size_t islands, std::size_t epochs,
                      std::size_t sa_iters, std::size_t threads) {
  IslandOptions opts;
  opts.islands = islands;
  opts.epochs = epochs;
  opts.sa.iterations = sa_iters;
  // Refinement regime: the default T0 (1.0 x initial cost) randomizes a good
  // incumbent away; 0.02 keeps the chain near it while still crossing small
  // barriers.  The cluster move is what lets a chain drain a saturated
  // aggregation link in one step (see the move-mix verdict below).
  opts.sa.initial_temperature = 0.02;
  opts.sa.w_cluster_relocate = 0.3;
  opts.sa.routes = &routes;
  opts.threads = threads;
  Rng rng(42);
  const auto t0 = std::chrono::steady_clock::now();
  IslandExplorer ex(app, plat, rng, opts);
  while (ex.step()) {
  }
  IslandRun run;
  run.trajectory = ex.trajectory();
  const ExploreResult res = ex.result();
  run.final_energy = res.best.eval.total_energy_j;
  run.evaluated = res.evaluated;
  run.found = res.found_feasible;
  run.wall_s = seconds_since(t0);
  return run;
}

/// 1-based epoch at which the run's best feasible energy reached `target`
/// (0 if it never did).  Both runs are fully seeded, so the comparison is
/// deterministic — no wall clock involved.
std::size_t epochs_to_target(const IslandRun& run, double target) {
  for (std::size_t e = 0; e < run.trajectory.size(); ++e) {
    if (run.trajectory[e].second <= target) return e + 1;
  }
  return 0;
}

}  // namespace

int main() {
  holms::bench::BenchReport report("explore_parallel");
  holms::bench::title("EP", "Parallel DSE: exec speedup, island scaling, "
                            "checkpoint/resume identity");
  const std::size_t hw = std::thread::hardware_concurrency();
  // At least 4 so the pool path is exercised (and determinism checked under
  // real interleaving) even on small machines; speedup obviously needs the
  // physical cores to back it.
  const std::size_t threads = hw < 4 ? 4 : hw;
  holms::bench::note("hardware threads: " + std::to_string(hw) +
                     ", pool threads: " + std::to_string(threads));

  const RunStats small = run_case("6x6 mesh (inj. capacity/2)", 32, 6, 6,
                                  threads);
  const RunStats large = run_case("64-task app", 64, 8, 8, threads);

  // ---- island scaling: K=4 vs K=1 at a fixed evaluation budget ------------
  holms::bench::rule();
  holms::bench::note("island scaling: surveillance_farm_graph(46) = 202 "
                     "tasks on a 32x32 mesh, K=4 x E epochs vs K=1 x 4E "
                     "epochs (same SA budget per island per epoch)");
  const Application farm = farm_app();
  const Platform mesh32 = farm_platform();
  // One shared route table (~90 MB at 32x32) for every island run and the
  // move-mix sweep below.
  const auto t_routes = std::chrono::steady_clock::now();
  const holms::noc::XyRouteTable routes32(mesh32.mesh);
  holms::bench::note("XyRouteTable(32x32) built in " +
                     std::to_string(seconds_since(t_routes)) + " s");
  const std::size_t kEpochs4 = 6;
  const std::size_t kSaIters = 3000;
  const IslandRun k4 =
      run_islands(farm, mesh32, routes32, 4, kEpochs4, kSaIters, threads);
  const IslandRun k1 =
      run_islands(farm, mesh32, routes32, 1, 4 * kEpochs4, kSaIters, threads);

  std::printf("  K=4 trajectory:");
  for (const auto& [e, j] : k4.trajectory) {
    std::printf("  %llu:%.4g", static_cast<unsigned long long>(e), j);
  }
  std::printf("\n  K=1 trajectory:");
  for (const auto& [e, j] : k1.trajectory) {
    std::printf("  %llu:%.4g", static_cast<unsigned long long>(e), j);
  }
  std::printf("\n");

  // Machine-independent convergence metric: epochs needed to reach the
  // weaker run's final best feasible energy.  An epoch is the wall-clock
  // unit when islands run on parallel workers, and both runs burn the same
  // per-island per-epoch SA budget, so this is time-to-target at fixed eval
  // budget.  Both runs are seeded and bitwise deterministic, so the ratio is
  // a constant of the code, not the host.  A run that never found a feasible
  // design contributes no target (its best is an infeasible placeholder);
  // if K=1 never reaches the target within its (4x longer) epoch budget,
  // that budget is the conservative lower bound on its time-to-target.
  double target = k4.final_energy;
  if (k1.found && k1.final_energy > target) target = k1.final_energy;
  const std::size_t k4_epochs = epochs_to_target(k4, target);
  std::size_t k1_epochs = epochs_to_target(k1, target);
  const bool k1_reached = k1_epochs > 0;
  if (!k1_reached) k1_epochs = k1.trajectory.size();
  const double convergence_speedup =
      k4_epochs > 0 ? static_cast<double>(k1_epochs) /
                          static_cast<double>(k4_epochs)
                    : 0.0;
  std::printf("  final: K=4 %.8g J (feasible %s), K=1 %.8g J (feasible %s), "
              "budget %llu vs %llu evals, wall %.2fs vs %.2fs\n",
              k4.final_energy, k4.found ? "yes" : "NO", k1.final_energy,
              k1.found ? "yes" : "no",
              static_cast<unsigned long long>(k4.evaluated),
              static_cast<unsigned long long>(k1.evaluated), k4.wall_s,
              k1.wall_s);
  std::printf("  epochs to shared target %.8g J: K=1 %zu%s, K=4 %zu -> "
              "convergence speedup %.2fx\n",
              target, k1_epochs, k1_reached ? "" : " (never; budget bound)",
              k4_epochs, convergence_speedup);

  // ---- resume identity + thread invariance (8x8 island scenario) ----------
  holms::bench::rule();
  Application app8;
  Rng graph_rng(17);
  app8.graph = holms::noc::random_graph(64, graph_rng, 5e5);
  app8.qos.period_s = 0.08;
  const Platform plat8 = Platform::homogeneous(8, 8);
  IslandOptions iopts;
  iopts.islands = 4;
  iopts.epochs = 4;
  iopts.sa.iterations = 2000;

  const auto island_fp = [&](std::size_t run_threads) {
    IslandOptions opts = iopts;
    opts.threads = run_threads;
    Rng rng(42);
    IslandExplorer ex(app8, plat8, rng, opts);
    while (ex.step()) {
    }
    return ex.result_fingerprint();
  };
  const std::uint64_t fp_serial = island_fp(1);
  const std::uint64_t fp_pool = island_fp(threads);
  const bool thread_invariant = fp_serial == fp_pool;

  std::uint64_t fp_resumed = 0;
  {
    IslandOptions opts = iopts;
    opts.threads = threads;
    Rng rng(42);
    IslandExplorer part(app8, plat8, rng, opts);
    part.step(2);
    const std::vector<std::uint8_t> blob = part.checkpoint();
    IslandExplorer resumed =
        IslandExplorer::resume(app8, plat8, opts, blob);
    resumed.step(2);
    fp_resumed = resumed.result_fingerprint();
  }
  const bool resume_identity = fp_resumed == fp_serial;
  holms::bench::note(std::string("island fingerprints: serial ") +
                     std::to_string(fp_serial) + ", pool " +
                     std::to_string(fp_pool) + ", resumed " +
                     std::to_string(fp_resumed));
  std::printf("  thread invariance %s, resume identity %s\n",
              thread_invariant ? "yes" : "NO",
              resume_identity ? "yes" : "NO");

  // ---- move-mix verdict at 32x32: cluster-relocate vs swap-only -----------
  holms::bench::rule();
  holms::bench::note("SA move mix on the bandwidth-capped 32x32 farm (greedy "
                     "start, 50000 iterations, 3 seeds): swap-only vs "
                     "+cluster-relocate.  A seed is a win for the cluster mix "
                     "if its design is feasible where swap-only's is not, or "
                     "both match on feasibility and it prices lower.");
  double swap_sum = 0.0, cluster_sum = 0.0;
  std::size_t cluster_wins = 0, swap_feasible = 0, cluster_feasible = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    holms::noc::SaOptions swap_only;
    swap_only.iterations = 50000;
    swap_only.initial_temperature = 0.02;
    swap_only.link_capacity_bps = mesh32.link_bandwidth_bps;
    swap_only.routes = &routes32;
    holms::noc::SaOptions cluster = swap_only;
    cluster.w_cluster_relocate = 0.5;

    Rng rs(seed), rc(seed);
    const holms::noc::Mapping ms = holms::noc::sa_mapping(
        farm.graph, mesh32.mesh, mesh32.noc_energy, rs, swap_only);
    const holms::noc::Mapping mc = holms::noc::sa_mapping(
        farm.graph, mesh32.mesh, mesh32.noc_energy, rc, cluster);
    const Evaluation es = evaluate_design(farm, mesh32, ms, true);
    const Evaluation ec = evaluate_design(farm, mesh32, mc, true);
    const bool win = ec.feasible != es.feasible
                         ? ec.feasible
                         : ec.total_energy_j < es.total_energy_j;
    std::printf("  seed %llu: swap-only %.6g J (feasible %s), +cluster %.6g "
                "J (feasible %s) -> %s\n",
                static_cast<unsigned long long>(seed), es.total_energy_j,
                es.feasible ? "yes" : "no", ec.total_energy_j,
                ec.feasible ? "yes" : "no",
                win ? "cluster wins" : "swap holds");
    swap_sum += es.total_energy_j;
    cluster_sum += ec.total_energy_j;
    if (win) ++cluster_wins;
    if (es.feasible) ++swap_feasible;
    if (ec.feasible) ++cluster_feasible;
  }
  const double swap_mean = swap_sum / 3.0;
  const double cluster_mean = cluster_sum / 3.0;
  std::printf("  feasible designs: swap-only %zu/3, +cluster-relocate %zu/3; "
              "cluster wins %zu/3\n",
              swap_feasible, cluster_feasible, cluster_wins);

  // ---- cache counters (satellite: EvalCache telemetry) ---------------------
  holms::bench::rule();
  const auto counter = [&](const char* name) {
    return static_cast<double>(report.registry().counter(name).value());
  };
  const double cache_hits = counter("explore.cache_hits");
  const double cache_misses = counter("explore.cache_misses");
  const double cache_inserts = counter("explore.cache_inserts");
  std::printf("EvalCache telemetry: %.0f hits, %.0f misses, %.0f inserts "
              "(hit rate %.3f)\n",
              cache_hits, cache_misses, cache_inserts,
              cache_hits + cache_misses > 0.0
                  ? cache_hits / (cache_hits + cache_misses)
                  : 0.0);

  holms::bench::rule();
  holms::bench::note("expected shape: explore speedup -> thread count while "
                     "restarts >= threads; identical / invariant / resume "
                     "identity must always be yes; island convergence "
                     "speedup is seeded and machine-independent.");

  report.set("hardware_threads", static_cast<double>(hw));
  report.set("pool_threads", static_cast<double>(threads));
  report.set("serial_s_6x6", small.serial_s);
  report.set("parallel_s_6x6", small.parallel_s);
  report.set("speedup_6x6", small.speedup);
  report.set("serial_s_8x8", large.serial_s);
  report.set("parallel_s_8x8", large.parallel_s);
  report.set("speedup_8x8", large.speedup);
  report.set("island_k4_energy_j", k4.final_energy);
  report.set("island_k1_energy_j", k1.final_energy);
  report.set("island_convergence_speedup", convergence_speedup);
  report.set("island_thread_invariant", thread_invariant ? 1.0 : 0.0);
  report.set("island_resume_identity", resume_identity ? 1.0 : 0.0);
  report.set("sweep32_swap_energy_j", swap_mean);
  report.set("sweep32_cluster_energy_j", cluster_mean);
  report.set("sweep32_swap_feasible", static_cast<double>(swap_feasible));
  report.set("sweep32_cluster_feasible",
             static_cast<double>(cluster_feasible));
  report.set("sweep32_cluster_wins", static_cast<double>(cluster_wins) / 3.0);
  report.set("cache_hits", cache_hits);
  report.set("cache_misses", cache_misses);
  report.set("cache_inserts", cache_inserts);
  report.set("deterministic",
             (small.identical && large.identical && thread_invariant &&
              resume_identity)
                 ? 1.0
                 : 0.0);
  // K=1 finding a feasible design is NOT required: on the capped farm the
  // greedy-seeded single island may legitimately never escape the saturated
  // packing — that is the island model's selling point, not a bench failure.
  const bool ok = small.identical && large.identical && thread_invariant &&
                  resume_identity && k4.found;
  return ok ? 0 : 1;
}
