// E10 — §4.2: power-aware MANET routing: "simulations show that they
// improve the network lifetime by more than 20%, on average", at the cost of
// additional control traffic, versus minimum-power routing whose least-cost
// relays die early.
#include <cstdio>

#include "bench_util.hpp"
#include "manet/routing.hpp"

using namespace holms::manet;

int main() {
  holms::bench::BenchReport report("sec42_manet");
  holms::bench::title("E10", "Energy-aware MANET routing lifetime (>20%)");

  Manet::Params params;
  params.num_nodes = 36;
  params.field_m = 350.0;
  params.battery_j = 8.0;

  LifetimeConfig cfg;
  cfg.num_flows = 8;
  cfg.packets_per_second = 15.0;
  cfg.max_time_s = 20000.0;
  cfg.route_refresh_s = 10.0;
  cfg.mobile = false;  // static nodes first: isolates the energy effect

  const Protocol protocols[] = {Protocol::kMinPower, Protocol::kBatteryCost,
                                Protocol::kLifetimePrediction,
                                Protocol::kGafSleep};
  const int seeds = 5;

  for (const bool mobile : {false, true}) {
    cfg.mobile = mobile;
    std::printf("\n%s scenario, %zu hosts, %zu CBR flows, avg over %d "
                "topologies:\n",
                mobile ? "mobile (random waypoint)" : "static",
                params.num_nodes, cfg.num_flows, seeds);
    std::printf("%-28s %12s %12s %10s %10s %12s\n", "protocol",
                "1st-death-s", "lifetime-s", "vs-MPR", "delivery",
                "ctrl-energy-J");
    double mpr_lifetime = 0.0;
    for (const Protocol p : protocols) {
      double first = 0.0, life = 0.0, deliv = 0.0, ctrl = 0.0;
      for (int s = 0; s < seeds; ++s) {
        const auto r = simulate_lifetime(p, params, cfg, 500 + s);
        first += r.first_death_s;
        life += r.lifetime_s;
        deliv += r.delivery_ratio;
        ctrl += r.control_energy_j;
      }
      first /= seeds;
      life /= seeds;
      deliv /= seeds;
      ctrl /= seeds;
      if (p == Protocol::kMinPower) mpr_lifetime = life;
      std::printf("%-28s %12.0f %12.0f %9.1f%% %10.3f %12.3f\n",
                  protocol_name(p).c_str(), first, life,
                  100.0 * (life / mpr_lifetime - 1.0), deliv, ctrl);
    }
  }

  // Ablation: route-refresh period (DESIGN.md §6) — the control-overhead
  // vs route-freshness trade-off the paper flags ("tend to create
  // additional control traffic").
  holms::bench::rule();
  holms::bench::note(
      "route-refresh ablation (BCLAR, mobile, avg over 3 topologies):");
  std::printf("%-12s %12s %12s %14s %10s\n", "refresh-s", "lifetime-s",
              "1st-death-s", "ctrl-energy-J", "delivery");
  cfg.mobile = true;
  for (const double refresh : {2.0, 5.0, 10.0, 30.0, 90.0}) {
    cfg.route_refresh_s = refresh;
    double life = 0.0, first = 0.0, ctrl = 0.0, deliv = 0.0;
    const int n = 3;
    for (int s = 0; s < n; ++s) {
      const auto r = simulate_lifetime(Protocol::kBatteryCost, params, cfg,
                                       700 + s);
      life += r.lifetime_s;
      first += r.first_death_s;
      ctrl += r.control_energy_j;
      deliv += r.delivery_ratio;
    }
    std::printf("%-12.0f %12.0f %12.0f %14.3f %10.3f\n", refresh, life / n,
                first / n, ctrl / n, deliv / n);
  }
  cfg.route_refresh_s = 10.0;

  holms::bench::rule();
  holms::bench::note("paper claim: lifetime-aware protocols improve network "
                     "lifetime by >20% on average despite extra control "
                     "traffic.");
  holms::bench::note(
      "expected shape: BCLAR and LPR delay both first death and the "
      "20%-dead lifetime versus min-power routing, which re-uses (and "
      "kills) the same cheap relays.");
  return 0;
}
