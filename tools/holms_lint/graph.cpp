// Whole-program index + graph rule pack for holms_lint (DESIGN.md §5k).
//
// Everything here is token-level, like the per-file rules: no libclang, no
// preprocessor evaluation.  The include DAG is exact over `#include "..."`
// directives; the call graph is an over-approximation built from
// namespace-qualified function definitions and qualified-suffix call-site
// resolution.  All containers are iterated in sorted order so every output
// (findings, LINT_graph.json, the fingerprint) is bit-identical across runs.

#include <algorithm>
#include <cctype>
#include <deque>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "graph.hpp"

namespace holms::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::kPunct && t.text == text;
}

// ---- minimal JSON reader ---------------------------------------------------
// Parses the subset emitted by graph_to_json / checked into layers.json:
// objects, arrays, strings (with \" \\ \n \t escapes), integers, booleans.

struct Jv {
  enum Kind { kNull, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  double num = 0;
  std::string str;
  std::vector<Jv> arr;
  std::vector<std::pair<std::string, Jv>> obj;

  const Jv* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonReader {
  const std::string& s;
  std::size_t i = 0;

  explicit JsonReader(const std::string& text) : s(text) {}

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("json: ") + what + " at offset " +
                             std::to_string(i));
  }
  void ws() {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  char peek() {
    ws();
    if (i >= s.size()) fail("unexpected end");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++i;
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          default: out.push_back(s[i]);
        }
      } else {
        out.push_back(s[i]);
      }
      ++i;
    }
    if (i >= s.size()) fail("unterminated string");
    ++i;
    return out;
  }
  Jv value() {
    const char c = peek();
    Jv v;
    if (c == '{') {
      ++i;
      v.kind = Jv::kObj;
      if (peek() == '}') {
        ++i;
        return v;
      }
      while (true) {
        std::string key = string();
        expect(':');
        v.obj.emplace_back(std::move(key), value());
        const char d = peek();
        ++i;
        if (d == '}') break;
        if (d != ',') fail("expected , or }");
      }
      return v;
    }
    if (c == '[') {
      ++i;
      v.kind = Jv::kArr;
      if (peek() == ']') {
        ++i;
        return v;
      }
      while (true) {
        v.arr.push_back(value());
        const char d = peek();
        ++i;
        if (d == ']') break;
        if (d != ',') fail("expected , or ]");
      }
      return v;
    }
    if (c == '"') {
      v.kind = Jv::kStr;
      v.str = string();
      return v;
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      v.kind = Jv::kNum;
      std::size_t start = i;
      if (s[i] == '-') ++i;
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) ||
              s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
              s[i] == '-')) {
        ++i;
      }
      v.num = std::stod(s.substr(start, i - start));
      return v;
    }
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      v.kind = Jv::kNum;
      v.num = 1;
      return v;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      v.kind = Jv::kNum;
      return v;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      return v;
    }
    fail("unexpected value");
  }
};

Jv parse_json(const std::string& text) {
  JsonReader r(text);
  Jv v = r.value();
  return v;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// ---- path helpers ----------------------------------------------------------

/// Lexically joins and normalizes: drops "./" segments and resolves "a/..".
std::string normalize_path(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (cur == "..") {
        if (!parts.empty() && parts.back() != "..") {
          parts.pop_back();
        } else {
          parts.push_back(cur);
        }
      } else if (!cur.empty() && cur != ".") {
        parts.push_back(cur);
      }
      cur.clear();
    } else {
      cur.push_back(path[i]);
    }
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += "/";
    out += p;
  }
  if (!path.empty() && path[0] == '/') out = "/" + out;
  return out;
}

/// Path relative to its src/ segment ("markov/chain.hpp"), or "" if the path
/// has no src/ segment.
std::string src_relative(const std::string& path) {
  if (path.rfind("src/", 0) == 0) return path.substr(4);
  const std::size_t pos = path.find("/src/");
  if (pos != std::string::npos) return path.substr(pos + 5);
  return "";
}

bool matches_prefix_of(const std::string& rel,
                       const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes) {
    if (rel.rfind(p, 0) == 0) return true;
  }
  return false;
}

// ---- function & call-site extraction ---------------------------------------

struct RawCall {
  int caller = -1;                 // index into the global FunctionDef list
  std::vector<std::string> chain;  // e.g. {"markov", "helper"}
  std::size_t line = 0;
};

const std::unordered_set<std::string>& not_a_call() {
  // Keywords and type names that read as `ident (` but are neither calls nor
  // function definitions (casts, control flow, operators).
  static const std::unordered_set<std::string> kSet{
      "if",       "for",      "while",    "switch",   "return",
      "catch",    "sizeof",   "alignof",  "alignas",  "noexcept",
      "decltype", "typeid",   "static_assert",        "assert",
      "throw",    "new",      "delete",   "operator", "defined",
      "co_await", "co_return",            "co_yield",
      "int",      "double",   "float",    "bool",     "char",
      "void",     "auto",     "unsigned", "signed",   "long",
      "short",    "wchar_t",  "char8_t",  "char16_t", "char32_t",
      "size_t",   "ptrdiff_t",
      "int8_t",   "int16_t",  "int32_t",  "int64_t",
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "uintptr_t",
  };
  return kSet;
}

/// One extraction pass over a lexed file.  Appends definitions (with body
/// line extents) and raw call sites to the global lists.  Scope tracking is
/// heuristic: namespaces, type bodies and function bodies are classified by
/// lookahead; anything unrecognized becomes a plain block.  Calls are only
/// recorded inside recognized function bodies; operator overload and
/// namespace-scope lambda bodies are therefore invisible (DESIGN.md §5k
/// records the limitation).
void extract_functions(const SourceFile& f, std::vector<FunctionDef>& defs,
                       std::vector<RawCall>& calls) {
  const std::vector<Token>& T = f.tokens;
  const std::size_t n = T.size();

  struct Scope {
    enum Kind { kBlock, kNamespace, kType, kFunction } kind = kBlock;
    std::string name;
    int fn = -1;
  };
  std::vector<Scope> st;

  auto cur_fn = [&]() -> int {
    for (auto it = st.rbegin(); it != st.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->fn;
    }
    return -1;
  };
  // Returns the index just past the token matching T[k] (which must be
  // `open`), or n when unbalanced.
  auto skip_balanced = [&](std::size_t k, const char* open,
                           const char* close) -> std::size_t {
    int depth = 0;
    for (; k < n; ++k) {
      if (is_punct(T[k], open)) {
        ++depth;
      } else if (is_punct(T[k], close) && --depth == 0) {
        return k + 1;
      }
    }
    return n;
  };
  auto skip_angles = [&](std::size_t k) -> std::size_t {
    int depth = 0;
    for (; k < n; ++k) {
      if (is_punct(T[k], "<")) {
        ++depth;
      } else if (is_punct(T[k], ">") && --depth == 0) {
        return k + 1;
      }
    }
    return n;
  };

  std::size_t i = 0;
  while (i < n) {
    const Token& t = T[i];
    if (is_punct(t, "{")) {
      st.push_back(Scope{Scope::kBlock, "", -1});
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!st.empty()) {
        if (st.back().kind == Scope::kFunction && st.back().fn >= 0) {
          defs[static_cast<std::size_t>(st.back().fn)].body_end = t.line;
        }
        st.pop_back();
      }
      ++i;
      continue;
    }

    if (cur_fn() >= 0) {
      // Inside a function body: record call sites only.
      if (t.kind == Token::kIdent && i + 1 < n && is_punct(T[i + 1], "(") &&
          not_a_call().count(t.text) == 0) {
        RawCall c;
        c.caller = cur_fn();
        c.line = t.line;
        c.chain.push_back(t.text);
        std::size_t lo = i;
        while (lo >= 2 && is_punct(T[lo - 1], "::") &&
               T[lo - 2].kind == Token::kIdent) {
          c.chain.insert(c.chain.begin(), T[lo - 2].text);
          lo -= 2;
        }
        calls.push_back(std::move(c));
      }
      ++i;
      continue;
    }

    // --- namespace / extern "C" ---
    if (is_ident(t, "namespace")) {
      std::string name;
      std::size_t j = i + 1;
      while (j < n && (T[j].kind == Token::kIdent || is_punct(T[j], "::"))) {
        if (T[j].kind == Token::kIdent) {
          if (!name.empty()) name += "::";
          name += T[j].text;
        }
        ++j;
      }
      if (j < n && is_punct(T[j], "{")) {
        st.push_back(Scope{Scope::kNamespace, name, -1});
        i = j + 1;
      } else {
        i = j;  // namespace alias or malformed; resume at the terminator
      }
      continue;
    }
    if (is_ident(t, "extern") && i + 1 < n &&
        T[i + 1].kind == Token::kString) {
      if (i + 2 < n && is_punct(T[i + 2], "{")) {
        st.push_back(Scope{Scope::kNamespace, "", -1});
        i += 3;
      } else {
        i += 2;
      }
      continue;
    }
    if (is_ident(t, "using") || is_ident(t, "typedef")) {
      while (i < n && !is_punct(T[i], ";")) ++i;
      ++i;
      continue;
    }
    if (is_ident(t, "template")) {
      i = (i + 1 < n && is_punct(T[i + 1], "<")) ? skip_angles(i + 1) : i + 1;
      continue;
    }

    // --- class/struct/union/enum definitions ---
    if (is_ident(t, "class") || is_ident(t, "struct") ||
        is_ident(t, "union") || is_ident(t, "enum")) {
      std::size_t j = i + 1;
      if (is_ident(t, "enum") && j < n &&
          (is_ident(T[j], "class") || is_ident(T[j], "struct"))) {
        ++j;
      }
      std::string name;
      while (j < n) {
        if (T[j].kind == Token::kIdent) {
          if (is_ident(T[j], "alignas") && j + 1 < n &&
              is_punct(T[j + 1], "(")) {
            j = skip_balanced(j + 1, "(", ")");
            continue;
          }
          if (is_ident(T[j], "final")) {
            ++j;
            continue;
          }
          name = T[j].text;
          ++j;
          continue;
        }
        if (is_punct(T[j], "::")) {
          ++j;
          continue;
        }
        if (is_punct(T[j], "[")) {  // [[attribute]]
          j = skip_balanced(j, "[", "]");
          continue;
        }
        break;
      }
      std::size_t k = j;  // scan the (possibly templated) base clause
      int ang = 0;
      while (k < n) {
        if (is_punct(T[k], "<")) ++ang;
        if (is_punct(T[k], ">") && ang > 0) --ang;
        if (ang == 0 &&
            (is_punct(T[k], "{") || is_punct(T[k], ";") ||
             is_punct(T[k], "=") || is_punct(T[k], "(") ||
             is_punct(T[k], ")"))) {
          break;
        }
        ++k;
      }
      if (k < n && is_punct(T[k], "{")) {
        // enum bodies are not member scopes; push them as plain blocks.
        if (is_ident(t, "enum")) {
          st.push_back(Scope{Scope::kBlock, "", -1});
        } else {
          st.push_back(Scope{Scope::kType, name, -1});
        }
        i = k + 1;
      } else {
        i = k;  // forward declaration or `struct X x;`
      }
      continue;
    }

    // --- function definition candidate: ident '(' ---
    if (t.kind == Token::kIdent && i + 1 < n && is_punct(T[i + 1], "(") &&
        not_a_call().count(t.text) == 0 && !is_ident(t, "final") &&
        !is_ident(t, "override")) {
      const bool member_access =
          i > 0 && (is_punct(T[i - 1], ".") || is_punct(T[i - 1], "->"));
      std::vector<std::string> chain{t.text};
      std::size_t lo = i;
      while (lo >= 2 && is_punct(T[lo - 1], "::") &&
             T[lo - 2].kind == Token::kIdent) {
        chain.insert(chain.begin(), T[lo - 2].text);
        lo -= 2;
      }
      const bool dtor = lo > 0 && is_punct(T[lo - 1], "~");
      std::size_t k = skip_balanced(i + 1, "(", ")");
      bool is_def = false;
      // Scan past trailing qualifiers / trailing return / ctor-init list to
      // decide whether a body follows.
      while (k < n) {
        const Token& q = T[k];
        if (is_ident(q, "const") || is_ident(q, "noexcept") ||
            is_ident(q, "override") || is_ident(q, "final") ||
            is_ident(q, "mutable") || is_ident(q, "volatile") ||
            is_ident(q, "try") || is_punct(q, "&")) {
          if (is_ident(q, "noexcept") && k + 1 < n &&
              is_punct(T[k + 1], "(")) {
            k = skip_balanced(k + 1, "(", ")");
          } else {
            ++k;
          }
          continue;
        }
        if (is_punct(q, "->")) {  // trailing return type
          ++k;
          int ang = 0;
          while (k < n) {
            if (is_punct(T[k], "<")) ++ang;
            if (is_punct(T[k], ">") && ang > 0) --ang;
            if (is_punct(T[k], "(")) {
              k = skip_balanced(k, "(", ")");
              continue;
            }
            if (ang == 0 && (is_punct(T[k], "{") || is_punct(T[k], ";") ||
                             is_punct(T[k], "="))) {
              break;
            }
            ++k;
          }
          continue;
        }
        if (is_punct(q, ":")) {  // constructor initializer list
          ++k;
          bool parsed_group = false;
          while (k < n) {
            if (parsed_group) {
              if (is_punct(T[k], ",")) {
                ++k;
                parsed_group = false;
                continue;
              }
              break;  // '{' here is the body; anything else aborts
            }
            const std::size_t start = k;
            while (k < n &&
                   (T[k].kind == Token::kIdent || is_punct(T[k], "::"))) {
              ++k;
            }
            if (k < n && is_punct(T[k], "<")) k = skip_angles(k);
            if (k < n && is_punct(T[k], "(")) {
              k = skip_balanced(k, "(", ")");
              parsed_group = true;
              continue;
            }
            if (k < n && is_punct(T[k], "{") && k > start) {
              k = skip_balanced(k, "{", "}");
              parsed_group = true;
              continue;
            }
            break;
          }
          if (k < n && is_punct(T[k], "{")) is_def = true;
          break;
        }
        if (is_punct(q, "{")) is_def = true;
        break;  // ';' (declaration), '=' (default/delete/variable), etc.
      }
      if (is_def && !member_access && k < n) {
        std::string qual;
        for (const Scope& s : st) {
          if ((s.kind == Scope::kNamespace || s.kind == Scope::kType) &&
              !s.name.empty()) {
            if (!qual.empty()) qual += "::";
            qual += s.name;
          }
        }
        for (std::size_t c = 0; c < chain.size(); ++c) {
          if (!qual.empty()) qual += "::";
          if (dtor && c + 1 == chain.size()) qual += "~";
          qual += chain[c];
        }
        FunctionDef d;
        d.qualified = std::move(qual);
        d.name = (dtor ? "~" : "") + chain.back();
        d.file = f.path;
        d.line = t.line;
        d.body_end = t.line;
        defs.push_back(std::move(d));
        st.push_back(
            Scope{Scope::kFunction, "", static_cast<int>(defs.size()) - 1});
        i = k + 1;
        continue;
      }
      ++i;
      continue;
    }

    ++i;
  }
}

std::vector<std::string> split_qualified(const std::string& q) {
  std::vector<std::string> out;
  std::string cur;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (i + 1 < q.size() && q[i] == ':' && q[i + 1] == ':') {
      out.push_back(cur);
      cur.clear();
      ++i;
    } else {
      cur.push_back(q[i]);
    }
  }
  out.push_back(cur);
  return out;
}

// ---- include resolution ----------------------------------------------------

struct IncludeResolver {
  std::map<std::string, int> by_path;
  std::multimap<std::string, int> by_suffix;  // "/"+target suffix matching

  explicit IncludeResolver(const std::vector<std::string>& files) {
    for (std::size_t i = 0; i < files.size(); ++i) {
      by_path[files[i]] = static_cast<int>(i);
    }
  }

  std::vector<int> resolve(const std::string& includer,
                           const std::string& target) const {
    std::vector<int> out;
    auto try_path = [&](const std::string& p) {
      auto it = by_path.find(normalize_path(p));
      if (it != by_path.end() &&
          std::find(out.begin(), out.end(), it->second) == out.end()) {
        out.push_back(it->second);
      }
    };
    const std::size_t slash = includer.rfind('/');
    if (slash != std::string::npos) {
      try_path(includer.substr(0, slash + 1) + target);
    }
    try_path("src/" + target);
    try_path(target);
    if (out.empty()) {
      // Last resort: unique suffix match (covers out-of-tree include dirs
      // like tests including "lint.hpp" from tools/holms_lint).
      const std::string suffix = "/" + target;
      for (const auto& [path, idx] : by_path) {
        if (path.size() > suffix.size() &&
            path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
          out.push_back(idx);
        }
      }
    }
    return out;
  }
};

// ---- Tarjan SCC over the include graph -------------------------------------

std::vector<std::vector<int>> include_sccs(
    std::size_t node_count, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(node_count);
  for (const auto& [a, b] : edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
  }
  std::vector<int> index(node_count, -1), low(node_count, 0);
  std::vector<bool> on_stack(node_count, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  // Iterative Tarjan: frame = (node, next child position).
  struct Frame {
    int v;
    std::size_t child;
  };
  for (std::size_t root = 0; root < node_count; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{Frame{static_cast<int>(root), 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(static_cast<int>(root));
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child < adj[v].size()) {
        const auto w = static_cast<std::size_t>(adj[v][f.child++]);
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(static_cast<int>(w));
          on_stack[w] = true;
          frames.push_back(Frame{static_cast<int>(w), 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        std::vector<int> scc;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          scc.push_back(w);
          if (w == f.v) break;
        }
        if (scc.size() > 1) {
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const auto p = static_cast<std::size_t>(frames.back().v);
        low[p] = std::min(low[p], low[v]);
      }
    }
  }
  std::sort(sccs.begin(), sccs.end());
  return sccs;
}

}  // namespace

// ---- layer configuration ---------------------------------------------------

LayerConfig parse_layers_json(const std::string& text) {
  Jv root;
  try {
    root = parse_json(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("layers: ") + e.what());
  }
  if (root.kind != Jv::kObj) throw std::runtime_error("layers: not an object");
  const Jv* layers = root.find("layers");
  if (layers == nullptr || layers->kind != Jv::kArr || layers->arr.empty()) {
    throw std::runtime_error("layers: missing \"layers\" array");
  }
  LayerConfig cfg;
  for (const Jv& band : layers->arr) {
    if (band.kind != Jv::kArr) {
      throw std::runtime_error("layers: each layer must be an array");
    }
    std::vector<std::string> modules;
    for (const Jv& m : band.arr) {
      if (m.kind != Jv::kStr || m.str.empty()) {
        throw std::runtime_error("layers: module names must be strings");
      }
      if (!cfg.rank
               .emplace(m.str, static_cast<int>(cfg.layers.size()))
               .second) {
        throw std::runtime_error("layers: duplicate module '" + m.str + "'");
      }
      modules.push_back(m.str);
    }
    cfg.layers.push_back(std::move(modules));
  }
  auto read_strings = [](const Jv* v, std::vector<std::string>& out) {
    if (v == nullptr) return;
    if (v->kind != Jv::kArr) {
      throw std::runtime_error("layers: expected an array of strings");
    }
    for (const Jv& s : v->arr) {
      if (s.kind != Jv::kStr) {
        throw std::runtime_error("layers: expected an array of strings");
      }
      out.push_back(s.str);
    }
  };
  read_strings(root.find("internal_markers"), cfg.internal_markers);
  read_strings(root.find("escape_boundaries"), cfg.escape_boundaries);
  if (const Jv* homes = root.find("rule_homes")) {
    if (homes->kind != Jv::kObj) {
      throw std::runtime_error("layers: \"rule_homes\" must be an object");
    }
    for (const auto& [rule, paths] : homes->obj) {
      read_strings(&paths, cfg.rule_homes[rule]);
    }
  }
  cfg.loaded = true;
  return cfg;
}

bool load_layers_file(const std::string& path, LayerConfig& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = parse_layers_json(buf.str());
  return true;
}

std::string module_of_path(const std::string& path) {
  const std::string rel = src_relative(normalize_path(path));
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) return "";
  return rel.substr(0, slash);
}

// ---- index construction ----------------------------------------------------

ProgramGraph build_graph(const std::vector<SourceFile>& files) {
  ProgramGraph g;
  std::vector<const SourceFile*> sorted;
  sorted.reserve(files.size());
  for (const SourceFile& f : files) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const SourceFile* a, const SourceFile* b) {
              return a->path < b->path;
            });
  for (const SourceFile* f : sorted) {
    g.files.push_back(f->path);
    g.modules.push_back(module_of_path(f->path));
  }

  IncludeResolver resolver(g.files);
  std::set<std::pair<int, int>> edge_set;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    for (const IncludeDirective& inc : sorted[i]->includes) {
      for (int target : resolver.resolve(g.files[i], inc.target)) {
        if (target != static_cast<int>(i)) {
          edge_set.emplace(static_cast<int>(i), target);
        }
      }
    }
  }
  g.include_edges.assign(edge_set.begin(), edge_set.end());
  g.sccs = include_sccs(g.files.size(), g.include_edges);

  std::vector<RawCall> calls;
  for (const SourceFile* f : sorted) {
    extract_functions(*f, g.functions, calls);
  }
  // Functions come out ordered by (file, line) already — files are iterated
  // sorted and extraction is a forward pass — but sort defensively so the
  // fingerprint never depends on extraction order details.
  std::vector<std::size_t> order(g.functions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const FunctionDef& fa = g.functions[a];
                     const FunctionDef& fb = g.functions[b];
                     if (fa.file != fb.file) return fa.file < fb.file;
                     if (fa.line != fb.line) return fa.line < fb.line;
                     return fa.qualified < fb.qualified;
                   });
  std::vector<std::size_t> rank_of(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) rank_of[order[i]] = i;
  {
    std::vector<FunctionDef> reordered(g.functions.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      reordered[i] = std::move(g.functions[order[i]]);
    }
    g.functions = std::move(reordered);
  }

  // Name resolution: last-component lookup filtered by qualified suffix.
  std::unordered_map<std::string, std::vector<int>> by_name;
  std::vector<std::vector<std::string>> components(g.functions.size());
  for (std::size_t i = 0; i < g.functions.size(); ++i) {
    by_name[g.functions[i].name].push_back(static_cast<int>(i));
    components[i] = split_qualified(g.functions[i].qualified);
  }
  std::set<std::pair<int, int>> call_set;
  for (const RawCall& c : calls) {
    const int caller = static_cast<int>(rank_of[static_cast<std::size_t>(
        c.caller)]);
    auto it = by_name.find(c.chain.back());
    if (it == by_name.end()) continue;
    for (int cand : it->second) {
      const std::vector<std::string>& comp =
          components[static_cast<std::size_t>(cand)];
      if (comp.size() < c.chain.size()) continue;
      bool suffix = true;
      for (std::size_t k = 0; k < c.chain.size(); ++k) {
        if (comp[comp.size() - c.chain.size() + k] != c.chain[k]) {
          suffix = false;
          break;
        }
      }
      if (suffix && cand != caller) call_set.emplace(caller, cand);
    }
  }
  g.call_edges.assign(call_set.begin(), call_set.end());
  return g;
}

// ---- graph rules -----------------------------------------------------------

std::vector<Finding> run_graph_rules(const std::vector<SourceFile>& files,
                                     const ProgramGraph& g,
                                     const LayerConfig& layers,
                                     const std::vector<Finding>& per_file) {
  std::vector<Finding> out;
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;
  std::map<std::string, int> file_index;
  for (std::size_t i = 0; i < g.files.size(); ++i) {
    file_index[g.files[i]] = static_cast<int>(i);
  }

  // --- A001: layering + non-public header includes (src files only) ---
  if (layers.loaded) {
    IncludeResolver resolver(g.files);
    for (const std::string& path : g.files) {
      const SourceFile* f = by_path.at(path);
      const std::string fmod = module_of_path(path);
      if (fmod.empty()) continue;  // tests/bench/tools include freely
      for (const IncludeDirective& inc : f->includes) {
        std::string tmod;
        const std::vector<int> targets = resolver.resolve(path, inc.target);
        if (!targets.empty()) {
          tmod = g.modules[static_cast<std::size_t>(targets.front())];
        } else {
          // Unresolved: classify by the include text when its first segment
          // names a ranked module (a not-yet-created or generated header);
          // anything else is an external library include.
          const std::size_t slash = inc.target.find('/');
          if (slash != std::string::npos) {
            const std::string head = inc.target.substr(0, slash);
            if (layers.rank.count(head) > 0) tmod = head;
          }
        }
        if (tmod.empty() || tmod == fmod) continue;
        bool internal = false;
        for (const std::string& marker : layers.internal_markers) {
          if (inc.target.find(marker) != std::string::npos) {
            internal = true;
            break;
          }
        }
        if (internal) {
          out.push_back(Finding{
              "A001", path, inc.line,
              "include of module-internal header \"" + inc.target +
                  "\" from module '" + fmod +
                  "': cross-module includes may only target public headers "
                  "(tools/holms_lint/layers.json internal_markers)",
              false,
              {}});
          continue;
        }
        auto fr = layers.rank.find(fmod);
        auto tr = layers.rank.find(tmod);
        if (fr == layers.rank.end() || tr == layers.rank.end()) {
          const std::string& missing =
              fr == layers.rank.end() ? fmod : tmod;
          out.push_back(Finding{
              "A001", path, inc.line,
              "module '" + missing +
                  "' is not ranked in tools/holms_lint/layers.json; add it "
                  "to the layer DAG before wiring cross-module includes",
              false,
              {}});
        } else if (tr->second >= fr->second) {
          out.push_back(Finding{
              "A001", path, inc.line,
              "architecture-layering violation: module '" + fmod +
                  "' (layer " + std::to_string(fr->second) +
                  ") includes \"" + inc.target + "\" from module '" + tmod +
                  "' (layer " + std::to_string(tr->second) +
                  "); dependencies must point strictly down the DAG in "
                  "tools/holms_lint/layers.json",
              false,
              {}});
        }
      }
    }
  }

  // --- A002: include cycles (one finding per SCC, at its first file) ---
  for (const std::vector<int>& scc : g.sccs) {
    std::string members;
    for (int v : scc) {
      if (!members.empty()) members += " -> ";
      members += g.files[static_cast<std::size_t>(v)];
    }
    const std::string& anchor = g.files[static_cast<std::size_t>(scc[0])];
    std::size_t line = 1;
    const SourceFile* f = by_path.at(anchor);
    for (const IncludeDirective& inc : f->includes) {
      // Anchor at the first include that participates in the cycle.
      for (int target : IncludeResolver(g.files).resolve(anchor, inc.target)) {
        if (std::binary_search(scc.begin(), scc.end(), target)) {
          line = inc.line;
          break;
        }
      }
      if (line != 1) break;
    }
    out.push_back(Finding{
        "A002", anchor, line,
        "include cycle: " + members + " -> " + anchor +
            "; break the strongly-connected component (forward-declare or "
            "split the shared types into a lower-layer header)",
        false,
        {}});
  }

  // --- D007: interprocedural determinism escape ---
  {
    static const char* kEscapeRules[] = {"D001", "D002", "D005"};
    static const std::map<std::string, std::string> kPrimitiveKind = {
        {"D001", "banned randomness"},
        {"D002", "wall-clock read"},
        {"D005", "blocking primitive"}};

    // Function lookup per file, and the boundary set.
    std::map<std::string, std::vector<int>> fns_of_file;
    for (std::size_t i = 0; i < g.functions.size(); ++i) {
      fns_of_file[g.functions[i].file].push_back(static_cast<int>(i));
    }
    std::vector<bool> is_boundary(g.functions.size(), false);
    std::vector<bool> is_library(g.functions.size(), false);
    for (std::size_t i = 0; i < g.functions.size(); ++i) {
      const std::string rel = src_relative(g.functions[i].file);
      is_library[i] = !rel.empty();
      is_boundary[i] =
          !rel.empty() && matches_prefix_of(rel, layers.escape_boundaries);
    }
    auto enclosing = [&](const std::string& file, std::size_t line) -> int {
      auto it = fns_of_file.find(file);
      if (it == fns_of_file.end()) return -1;
      int best = -1;
      for (int idx : it->second) {
        const FunctionDef& d = g.functions[static_cast<std::size_t>(idx)];
        if (d.line <= line && line <= d.body_end) best = idx;  // innermost
      }
      return best;
    };

    // Reverse adjacency restricted to library functions.
    std::vector<std::vector<int>> callers_of(g.functions.size());
    for (const auto& [caller, callee] : g.call_edges) {
      if (is_library[static_cast<std::size_t>(caller)]) {
        callers_of[static_cast<std::size_t>(callee)].push_back(caller);
      }
    }

    for (const char* rule : kEscapeRules) {
      std::vector<std::string> homes;
      auto hit = layers.rule_homes.find(rule);
      if (hit != layers.rule_homes.end()) homes = hit->second;

      // Sources: primitive findings (suppressed or not) outside the rule's
      // sanctioned home, mapped to their enclosing function.
      struct Site {
        std::string file;
        std::size_t line;
      };
      std::map<int, Site> source_site;  // fn -> first primitive site
      for (const Finding& fd : per_file) {
        if (fd.rule != rule) continue;
        const std::string rel = src_relative(fd.file);
        if (rel.empty() || matches_prefix_of(rel, homes)) continue;
        const int fn = enclosing(fd.file, fd.line);
        if (fn < 0 || is_boundary[static_cast<std::size_t>(fn)]) continue;
        source_site.emplace(fn, Site{fd.file, fd.line});
      }
      if (source_site.empty()) continue;

      // BFS up the call graph; parent[fn] = callee the taint arrived from
      // (-1 for sources).  Deterministic: sources and caller lists sorted.
      std::map<int, int> parent;
      std::deque<int> queue;
      for (const auto& [fn, site] : source_site) {
        parent[fn] = -1;
        queue.push_back(fn);
      }
      for (auto& cs : callers_of) std::sort(cs.begin(), cs.end());
      while (!queue.empty()) {
        const int fn = queue.front();
        queue.pop_front();
        for (int caller : callers_of[static_cast<std::size_t>(fn)]) {
          if (parent.count(caller) > 0 ||
              is_boundary[static_cast<std::size_t>(caller)]) {
            continue;
          }
          parent[caller] = fn;
          queue.push_back(caller);
        }
      }

      // Report at roots: tainted non-source functions with no tainted
      // caller (mutually-recursive dead cycles have no root and stay
      // silent — DESIGN.md §5k).
      for (const auto& [fn, par] : parent) {
        if (par < 0) continue;  // the source itself: the per-file rule's job
        bool has_tainted_caller = false;
        for (int caller : callers_of[static_cast<std::size_t>(fn)]) {
          if (parent.count(caller) > 0) {
            has_tainted_caller = true;
            break;
          }
        }
        if (has_tainted_caller) continue;
        std::string chain;
        int walk = fn;
        while (walk >= 0) {
          if (!chain.empty()) chain += " -> ";
          chain += g.functions[static_cast<std::size_t>(walk)].qualified;
          walk = parent.at(walk);
        }
        const Site& site = source_site.at([&] {
          int leaf = fn;
          while (parent.at(leaf) >= 0) leaf = parent.at(leaf);
          return leaf;
        }());
        const FunctionDef& root = g.functions[static_cast<std::size_t>(fn)];
        out.push_back(Finding{
            "D007", root.file, root.line,
            "interprocedural determinism escape: '" + root.qualified +
                "' reaches a " + kPrimitiveKind.at(rule) + " (" + rule +
                ") at " + site.file + ":" + std::to_string(site.line) +
                " via " + chain +
                "; route through the sanctioned module or carry a reviewed "
                "HOLMS_LINT_ALLOW(D007)",
            false,
            {}});
      }
    }
  }

  // Apply suppressions to the graph findings (A-rules and D007 are
  // suppressible like any other rule; X002 below is not).
  for (Finding& fd : out) {
    auto it = by_path.find(fd.file);
    if (it == by_path.end()) continue;
    for (const Suppression& s : it->second->suppressions) {
      if (s.malformed || s.rule != fd.rule) continue;
      if (s.file_level || s.anchor_line == fd.line) {
        fd.suppressed = true;
        fd.suppress_reason = s.reason;
        break;
      }
    }
  }

  // --- X002: stale suppressions ---
  // A well-formed HOLMS_LINT_ALLOW[_FILE] must still match at least one
  // finding (per-file or graph).  The one it matched is suppressed, so the
  // check is: does any suppressed finding of that rule anchor to it?
  {
    auto used = [&](const SourceFile& f, const Suppression& s) {
      auto matches = [&](const Finding& fd) {
        return fd.suppressed && fd.file == f.path && fd.rule == s.rule &&
               (s.file_level || fd.line == s.anchor_line);
      };
      for (const Finding& fd : per_file) {
        if (matches(fd)) return true;
      }
      for (const Finding& fd : out) {
        if (matches(fd)) return true;
      }
      return false;
    };
    for (const std::string& path : g.files) {
      const SourceFile* f = by_path.at(path);
      for (const Suppression& s : f->suppressions) {
        if (s.malformed || used(*f, s)) continue;
        out.push_back(Finding{
            "X002", path, s.comment_line,
            std::string("stale suppression: HOLMS_LINT_ALLOW") +
                (s.file_level ? "_FILE" : "") + "(" + s.rule +
                ") matches no finding on its line any more; delete it so "
                "the suppression inventory stays honest",
            false,
            {}});
      }
    }
  }

  // Deterministic order: by (file, line, rule, message).
  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return out;
}

// ---- LINT_graph.json -------------------------------------------------------

GraphDump make_graph_dump(
    const ProgramGraph& g, const LayerConfig& layers,
    const std::map<std::string, std::size_t>& rule_counts) {
  GraphDump d;
  d.layers = layers.layers;
  d.paths = g.files;
  d.modules = g.modules;
  d.ranks.reserve(g.files.size());
  for (const std::string& m : g.modules) {
    auto it = layers.rank.find(m);
    d.ranks.push_back(it == layers.rank.end() ? -1 : it->second);
  }
  d.include_edges = g.include_edges;
  d.sccs = g.sccs;
  d.functions = g.functions.size();
  d.call_edges = g.call_edges.size();
  d.rule_counts = rule_counts;
  return d;
}

std::uint64_t graph_fingerprint(const GraphDump& d) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix_byte = [&](unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  auto mix_str = [&](const std::string& s) {
    for (char c : s) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0xff);
  };
  auto mix_num = [&](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) mix_byte((v >> (8 * b)) & 0xff);
  };
  mix_str("layers");
  for (const auto& band : d.layers) {
    mix_num(band.size());
    for (const std::string& m : band) mix_str(m);
  }
  mix_str("nodes");
  mix_num(d.paths.size());
  for (std::size_t i = 0; i < d.paths.size(); ++i) {
    mix_str(d.paths[i]);
    mix_str(i < d.modules.size() ? d.modules[i] : "");
    mix_num(static_cast<std::uint64_t>(
        i < d.ranks.size() ? d.ranks[i] + 1 : 0));
  }
  mix_str("include_edges");
  mix_num(d.include_edges.size());
  for (const auto& [a, b] : d.include_edges) {
    mix_num(static_cast<std::uint64_t>(a));
    mix_num(static_cast<std::uint64_t>(b));
  }
  mix_str("sccs");
  mix_num(d.sccs.size());
  for (const auto& scc : d.sccs) {
    mix_num(scc.size());
    for (int v : scc) mix_num(static_cast<std::uint64_t>(v));
  }
  mix_str("calls");
  mix_num(d.functions);
  mix_num(d.call_edges);
  mix_str("rules");
  for (const auto& [rule, count] : d.rule_counts) {
    mix_str(rule);
    mix_num(count);
  }
  return h;
}

namespace {

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string graph_to_json(const GraphDump& d) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"holms_lint_graph\",\n  \"version\": 1,\n";
  os << "  \"fingerprint\": \"" << hex64(graph_fingerprint(d)) << "\",\n";
  os << "  \"layers\": [";
  for (std::size_t i = 0; i < d.layers.size(); ++i) {
    os << (i ? ", [" : "[");
    for (std::size_t j = 0; j < d.layers[i].size(); ++j) {
      os << (j ? ", " : "") << '"' << json_escape(d.layers[i][j]) << '"';
    }
    os << "]";
  }
  os << "],\n  \"nodes\": [";
  for (std::size_t i = 0; i < d.paths.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << "{\"path\": \""
       << json_escape(d.paths[i]) << "\", \"module\": \""
       << json_escape(i < d.modules.size() ? d.modules[i] : "")
       << "\", \"rank\": " << (i < d.ranks.size() ? d.ranks[i] : -1) << "}";
  }
  os << (d.paths.empty() ? "]" : "\n  ]") << ",\n  \"include_edges\": [";
  for (std::size_t i = 0; i < d.include_edges.size(); ++i) {
    os << (i ? ", " : "") << "[" << d.include_edges[i].first << ", "
       << d.include_edges[i].second << "]";
  }
  os << "],\n  \"sccs\": [";
  for (std::size_t i = 0; i < d.sccs.size(); ++i) {
    os << (i ? ", [" : "[");
    for (std::size_t j = 0; j < d.sccs[i].size(); ++j) {
      os << (j ? ", " : "") << d.sccs[i][j];
    }
    os << "]";
  }
  os << "],\n  \"functions\": " << d.functions
     << ",\n  \"call_edges\": " << d.call_edges << ",\n  \"rule_counts\": {";
  bool first = true;
  for (const auto& [rule, count] : d.rule_counts) {
    os << (first ? "" : ", ") << '"' << rule << "\": " << count;
    first = false;
  }
  os << "}\n}\n";
  return os.str();
}

GraphDump parse_graph_json(const std::string& text,
                           std::string* stored_fingerprint) {
  Jv root = parse_json(text);
  if (root.kind != Jv::kObj) {
    throw std::runtime_error("graph json: not an object");
  }
  auto require = [&](const char* key) -> const Jv& {
    const Jv* v = root.find(key);
    if (v == nullptr) {
      throw std::runtime_error(std::string("graph json: missing \"") + key +
                               "\"");
    }
    return *v;
  };
  if (stored_fingerprint != nullptr) {
    *stored_fingerprint = require("fingerprint").str;
  }
  GraphDump d;
  for (const Jv& band : require("layers").arr) {
    std::vector<std::string> modules;
    for (const Jv& m : band.arr) modules.push_back(m.str);
    d.layers.push_back(std::move(modules));
  }
  for (const Jv& node : require("nodes").arr) {
    const Jv* path = node.find("path");
    const Jv* module = node.find("module");
    const Jv* rank = node.find("rank");
    if (path == nullptr || module == nullptr || rank == nullptr) {
      throw std::runtime_error("graph json: malformed node");
    }
    d.paths.push_back(path->str);
    d.modules.push_back(module->str);
    d.ranks.push_back(static_cast<int>(rank->num));
  }
  for (const Jv& e : require("include_edges").arr) {
    if (e.arr.size() != 2) {
      throw std::runtime_error("graph json: malformed include edge");
    }
    d.include_edges.emplace_back(static_cast<int>(e.arr[0].num),
                                 static_cast<int>(e.arr[1].num));
  }
  for (const Jv& scc : require("sccs").arr) {
    std::vector<int> members;
    for (const Jv& v : scc.arr) members.push_back(static_cast<int>(v.num));
    d.sccs.push_back(std::move(members));
  }
  d.functions = static_cast<std::size_t>(require("functions").num);
  d.call_edges = static_cast<std::size_t>(require("call_edges").num);
  for (const auto& [rule, count] : require("rule_counts").obj) {
    d.rule_counts[rule] = static_cast<std::size_t>(count.num);
  }
  return d;
}

}  // namespace holms::lint
