// Baseline handling + JSON emission for holms_lint.
//
// The baseline file (tools/holms_lint/baseline.json) grandfathers findings
// that predate the analyzer so CI fails only on regressions.  Keys are
// (rule, file, whitespace-normalized source line) — stable across edits that
// merely shift line numbers — and values are occurrence counts, so dropping
// a finding never hides a new one appearing elsewhere in the same file.

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lint.hpp"

namespace holms::lint {

namespace {

std::string normalize_ws(const std::string& s) {
  std::string out;
  bool in_space = true;  // also trims leading whitespace
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string source_line_of(const std::map<std::string, const SourceFile*>& files,
                           const Finding& f) {
  auto it = files.find(f.file);
  if (it == files.end() || it->second == nullptr) return "";
  const auto& lines = it->second->lines;
  if (f.line == 0 || f.line > lines.size()) return "";
  return lines[f.line - 1];
}

}  // namespace

std::string baseline_key(const Finding& f, const std::string& source_line) {
  return f.rule + "|" + f.file + "|" + normalize_ws(source_line);
}

Baseline make_baseline(const std::vector<Finding>& findings,
                       const std::map<std::string, const SourceFile*>& files) {
  Baseline b;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;  // suppressions are already explicit
    ++b[baseline_key(f, source_line_of(files, f))];
  }
  return b;
}

std::string baseline_to_json(const Baseline& b) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"entries\": {";
  bool first = true;
  for (const auto& [key, count] : b) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << json_escape(key) << "\": " << count;
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
  return os.str();
}

Baseline parse_baseline_json(const std::string& text) {
  // Minimal parser for the subset baseline_to_json writes: one flat
  // string->integer object under "entries".
  Baseline b;
  const std::size_t entries = text.find("\"entries\"");
  if (entries == std::string::npos) {
    throw std::runtime_error("baseline: no \"entries\" object");
  }
  std::size_t i = text.find('{', entries);
  if (i == std::string::npos) {
    throw std::runtime_error("baseline: malformed \"entries\"");
  }
  ++i;
  while (i < text.size()) {
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ',')) {
      ++i;
    }
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] != '"') throw std::runtime_error("baseline: expected key");
    std::string key;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n': key.push_back('\n'); break;
          case 't': key.push_back('\t'); break;
          default: key.push_back(text[i]);
        }
      } else {
        key.push_back(text[i]);
      }
      ++i;
    }
    ++i;  // closing quote
    while (i < text.size() && (text[i] == ':' ||
                               std::isspace(static_cast<unsigned char>(text[i])))) {
      ++i;
    }
    std::size_t count = 0;
    if (i >= text.size() || !std::isdigit(static_cast<unsigned char>(text[i]))) {
      throw std::runtime_error("baseline: expected count for " + key);
    }
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      count = count * 10 + static_cast<std::size_t>(text[i] - '0');
      ++i;
    }
    b[key] = count;
  }
  return b;
}

std::vector<Finding> subtract_baseline(
    const std::vector<Finding>& findings,
    const std::map<std::string, const SourceFile*>& files,
    const Baseline& base) {
  Baseline budget = base;
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    const std::string key = baseline_key(f, source_line_of(files, f));
    auto it = budget.find(key);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(f);
  }
  return fresh;
}

Baseline prune_baseline(const Baseline& base,
                        const std::map<std::string, const SourceFile*>& files,
                        std::vector<std::string>* dropped) {
  Baseline pruned;
  for (const auto& [key, count] : base) {
    // key = rule|file|normalized-line; the file component is everything
    // between the first and last '|' (paths never contain '|').
    const std::size_t first = key.find('|');
    const std::size_t last = key.rfind('|');
    bool keep = false;
    if (first != std::string::npos && last != std::string::npos &&
        last > first) {
      keep = files.count(key.substr(first + 1, last - first - 1)) > 0;
    }
    if (keep) {
      pruned[key] = count;
    } else if (dropped != nullptr) {
      dropped->push_back(key);
    }
  }
  return pruned;
}

namespace {

std::string ms_fixed(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace

std::string report_to_json(const std::vector<Finding>& all,
                           const std::vector<Finding>& fresh, bool strict,
                           const ReportStats& stats) {
  std::size_t suppressed = 0;
  std::size_t graph_rules = 0;
  std::size_t stale = 0;
  std::map<std::string, std::size_t> by_rule;
  for (const Finding& f : all) {
    if (f.suppressed) {
      ++suppressed;
    } else {
      ++by_rule[f.rule];
      if (f.rule == "A001" || f.rule == "A002" || f.rule == "D007") {
        ++graph_rules;
      }
      if (f.rule == "X002") ++stale;
    }
  }
  const double total_ms = stats.lint_ms + stats.graph_ms;
  const double files_per_s =
      total_ms > 0.0 ? static_cast<double>(stats.files) / (total_ms / 1000.0)
                     : 0.0;
  std::ostringstream os;
  os << "{\n  \"name\": \"lint\",\n  \"tool\": \"holms_lint\",\n"
     << "  \"version\": 2,\n  \"strict\": "
     << (strict ? "true" : "false") << ",\n  \"files\": " << stats.files
     << ",\n  \"lint_ms\": " << ms_fixed(stats.lint_ms)
     << ",\n  \"graph_build_ms\": " << ms_fixed(stats.graph_ms)
     << ",\n  \"files_per_s\": " << ms_fixed(files_per_s)
     << ",\n  \"total_findings\": "
     << (all.size() - suppressed) << ",\n  \"suppressed\": " << suppressed
     << ",\n  \"graph_rules_findings\": " << graph_rules
     << ",\n  \"stale_suppressions\": " << stale
     << ",\n  \"new_findings\": " << fresh.size() << ",\n  \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : by_rule) {
    if (!first) os << ',';
    first = false;
    os << "\n    \"" << rule << "\": " << count;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"findings\": [";
  first = true;
  for (const Finding& f : all) {
    if (!first) os << ',';
    first = false;
    os << "\n    {\"rule\": \"" << f.rule << "\", \"file\": \""
       << json_escape(f.file) << "\", \"line\": " << f.line
       << ", \"suppressed\": " << (f.suppressed ? "true" : "false");
    if (f.suppressed) {
      os << ", \"reason\": \"" << json_escape(f.suppress_reason) << "\"";
    }
    os << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

bool lint_file(const std::string& path, std::vector<Finding>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const SourceFile f = lex(path, buf.str(), classify_path(path));
  std::vector<Finding> findings = run_rules(f);
  out.insert(out.end(), findings.begin(), findings.end());
  return true;
}

}  // namespace holms::lint
