#pragma once
// holms_lint whole-program index (DESIGN.md §5k).
//
// PR 9 upgrades the analyzer from a per-file token scanner to a two-pass
// whole-program analysis:
//
//   pass 1 (per TU, already done by lex()): token stream, suppressions, and
//          the file's `#include "..."` directives;
//   pass 2 (here): (a) the header include DAG over every linted file and
//          (b) an over-approximate name-resolution call graph built from
//          namespace-qualified function definitions and call sites.
//
// On top of the index sit the graph rule pack:
//
//   A001  architecture-layering violation — an include edge that goes
//         against the layer DAG declared in tools/holms_lint/layers.json,
//         into a module the DAG does not rank, or into another module's
//         non-public header (path matches an `internal_markers` entry)
//   A002  include cycle — a strongly-connected component of the include
//         graph (reported once per SCC, at its lexicographically first file)
//   D007  interprocedural determinism escape — a library function that
//         transitively reaches a D001 randomness / D002 wall-clock / D005
//         blocking primitive through any call chain, flagged at the
//         outermost tainted frame with the full chain as evidence.
//         Primitives inside their sanctioned home (layers.json
//         `rule_homes`: sim/random.hpp for D001, exec/metrics for D002,
//         exec/ for D005) do not taint; files listed under
//         `escape_boundaries` neither source nor propagate taint (the
//         reviewed EvalCache shard locks).
//   X002  stale suppression — a well-formed HOLMS_LINT_ALLOW[_FILE] that no
//         finding (per-file or graph) matched; keeps the reasoned
//         suppressions honest as the code under them evolves
//
// The call graph is deliberately over-approximate (qualified-suffix name
// resolution, no overload or template machinery): it may add edges between
// unrelated same-named functions, never miss a direct named call.  Bodies
// reached only through operator overloads or function pointers are outside
// its reach; DESIGN.md §5k records the limits.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace holms::lint {

// ---- layer configuration (tools/holms_lint/layers.json) -------------------

struct LayerConfig {
  /// Bands, bottom-up: a module may include same-module headers and any
  /// module in a strictly lower band.  Mirrors DESIGN.md §5's diagram.
  std::vector<std::vector<std::string>> layers;
  std::map<std::string, int> rank;  // module -> band index (derived)
  /// Substrings that mark a header as module-internal (non-public).
  std::vector<std::string> internal_markers;
  /// rule id -> src/-relative path prefixes where the primitive is
  /// sanctioned and does not seed D007 taint.
  std::map<std::string, std::vector<std::string>> rule_homes;
  /// src/-relative path prefixes whose functions neither source nor
  /// propagate D007 taint (reviewed concurrency boundaries).
  std::vector<std::string> escape_boundaries;
  bool loaded = false;
};

/// Parses the checked-in layers.json subset; throws std::runtime_error on
/// malformed input (missing "layers", duplicate module, non-string entries).
LayerConfig parse_layers_json(const std::string& text);

/// Convenience: read + parse.  Returns false when the file can't be read
/// (leaves `out` untouched); still throws on malformed content.
bool load_layers_file(const std::string& path, LayerConfig& out);

// ---- the whole-program index ----------------------------------------------

struct FunctionDef {
  std::string qualified;       // e.g. "holms::markov::solve"
  std::string name;            // last component
  std::string file;
  std::size_t line = 0;        // definition line (D007 findings anchor here)
  std::size_t body_end = 0;    // last body line (encloses primitive findings)
};

struct ProgramGraph {
  std::vector<std::string> files;    // sorted paths; node id = index
  std::vector<std::string> modules;  // parallel: "" for non-src files
  /// Resolved `#include "..."` edges (includer, includee), sorted + deduped.
  std::vector<std::pair<int, int>> include_edges;
  /// Include-graph SCCs of size > 1, members sorted, reported by A002.
  std::vector<std::vector<int>> sccs;
  std::vector<FunctionDef> functions;  // sorted by (file, line)
  /// Resolved call edges (caller fn index, callee fn index), sorted+deduped.
  std::vector<std::pair<int, int>> call_edges;
};

/// "markov" for src/markov/x.hpp (any path containing a src/ segment),
/// "" for tests/bench/tools files.
std::string module_of_path(const std::string& path);

ProgramGraph build_graph(const std::vector<SourceFile>& files);

/// Runs A001/A002/D007/X002.  `per_file` is the concatenated run_rules()
/// output for the same files (suppressed findings included — they seed D007
/// and mark suppressions used for X002).  A001 needs `layers.loaded`; the
/// other rules run regardless.  Suppressions apply to A001/A002/D007
/// findings through the normal HOLMS_LINT_ALLOW machinery; X002 findings are
/// never suppressible (like X001).
std::vector<Finding> run_graph_rules(const std::vector<SourceFile>& files,
                                     const ProgramGraph& g,
                                     const LayerConfig& layers,
                                     const std::vector<Finding>& per_file);

// ---- LINT_graph.json -------------------------------------------------------

/// The serializable subset of the index: everything the dump carries is
/// folded into the fingerprint, so dump -> parse -> graph_fingerprint()
/// reproduces the embedded value exactly (the round-trip gate).
struct GraphDump {
  std::vector<std::vector<std::string>> layers;
  std::vector<std::string> paths;
  std::vector<std::string> modules;
  std::vector<int> ranks;  // -1 for unranked (non-src) nodes
  std::vector<std::pair<int, int>> include_edges;
  std::vector<std::vector<int>> sccs;
  std::size_t functions = 0;
  std::size_t call_edges = 0;
  std::map<std::string, std::size_t> rule_counts;  // unsuppressed, per rule
};

GraphDump make_graph_dump(const ProgramGraph& g, const LayerConfig& layers,
                          const std::map<std::string, std::size_t>& rule_counts);

/// FNV-1a over a canonical serialization of every GraphDump field.
std::uint64_t graph_fingerprint(const GraphDump& d);

/// JSON with the fingerprint embedded as "fingerprint": "<hex>".
std::string graph_to_json(const GraphDump& d);

/// Parses the subset graph_to_json emits; fills `stored_fingerprint` with
/// the embedded hex value.  Throws std::runtime_error on malformed input.
GraphDump parse_graph_json(const std::string& text,
                           std::string* stored_fingerprint = nullptr);

}  // namespace holms::lint
