// Rule engine for holms_lint.  Every rule is a pass over the token stream of
// one file; see lint.hpp for the catalogue and DESIGN.md §5f for rationale.

#include <array>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint.hpp"

namespace holms::lint {

namespace {

// HOLMS_LINT_ALLOW_FILE(D003): the rule tables below are compile-time
// constant string sets that no result-producing code ever iterates.
const std::unordered_set<std::string>& std_engines() {
  static const std::unordered_set<std::string> kSet{
      "random_device",   "mt19937",        "mt19937_64",
      "minstd_rand",     "minstd_rand0",   "default_random_engine",
      "knuth_b",         "ranlux24",       "ranlux24_base",
      "ranlux48",        "ranlux48_base",  "random_shuffle",
  };
  return kSet;
}

const std::unordered_set<std::string>& std_distributions() {
  static const std::unordered_set<std::string> kSet{
      "uniform_real_distribution",    "uniform_int_distribution",
      "bernoulli_distribution",       "binomial_distribution",
      "negative_binomial_distribution", "geometric_distribution",
      "poisson_distribution",         "exponential_distribution",
      "gamma_distribution",           "weibull_distribution",
      "extreme_value_distribution",   "normal_distribution",
      "lognormal_distribution",       "chi_squared_distribution",
      "cauchy_distribution",          "fisher_f_distribution",
      "student_t_distribution",       "discrete_distribution",
      "piecewise_constant_distribution", "piecewise_linear_distribution",
  };
  return kSet;
}

const std::unordered_set<std::string>& unordered_containers() {
  static const std::unordered_set<std::string> kSet{
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "flat_hash_map", "flat_hash_set"};
  return kSet;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == Token::kPunct && t.text == text;
}

class Pass {
 public:
  Pass(const SourceFile& f, std::vector<Finding>& out) : f_(f), out_(out) {}

  const Token& tok(std::size_t i) const { return f_.tokens[i]; }
  std::size_t size() const { return f_.tokens.size(); }

  void report(const char* rule, std::size_t line, std::string message) {
    out_.push_back(Finding{rule, f_.path, line, std::move(message), false, {}});
  }

  /// True when the identifier at `i` is written bare or reached through a
  /// qualifier chain containing `std` (so `std::mt19937`, `std::chrono::…`
  /// and unqualified uses match, while `mylib::mt19937` and member accesses
  /// `obj.rand(...)` do not).
  bool bare_or_std(std::size_t i) const {
    if (i == 0) return true;
    const Token& p = f_.tokens[i - 1];
    if (is_punct(p, ".") || is_punct(p, "->")) return false;
    if (!is_punct(p, "::")) return true;
    // Walk the qualifier chain: ident :: ident :: X
    std::size_t j = i - 1;
    while (j >= 1 && is_punct(f_.tokens[j], "::")) {
      if (j == 0) break;
      const Token& q = f_.tokens[j - 1];
      if (q.kind != Token::kIdent) return true;  // ::X — global qualification
      if (q.text == "std") return true;
      if (j < 2) break;
      j -= 2;
    }
    return false;
  }

  bool next_is(std::size_t i, const char* text) const {
    return i + 1 < size() && (f_.tokens[i + 1].kind == Token::kPunct
                                  ? f_.tokens[i + 1].text == text
                                  : false);
  }

  const SourceFile& file() const { return f_; }

 protected:
  const SourceFile& f_;
  std::vector<Finding>& out_;
};

// ---- D001: banned randomness primitives -----------------------------------

void rule_d001(Pass& p) {
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Token& t = p.tok(i);
    if (t.kind != Token::kIdent) continue;
    const bool engine = std_engines().count(t.text) > 0;
    const bool dist = std_distributions().count(t.text) > 0;
    bool call_like = engine || dist;
    if (!call_like && (t.text == "rand" || t.text == "srand")) {
      call_like = p.next_is(i, "(");  // only calls, not variables named rand
    } else if (!engine && !dist) {
      continue;
    }
    if (!call_like || !p.bare_or_std(i)) continue;
    p.report("D001", t.line,
             "banned randomness primitive '" + t.text +
                 "' outside the RNG module; draw through sim::Rng "
                 "(exec::stream_seed for parallel streams)");
  }
}

// ---- D002: wall-clock reads -----------------------------------------------

void rule_d002(Pass& p) {
  static const std::array<const char*, 3> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Token& t = p.tok(i);
    if (t.kind != Token::kIdent) continue;
    for (const char* clk : kClocks) {
      if (t.text == clk && i + 2 < p.size() && is_punct(p.tok(i + 1), "::") &&
          is_ident(p.tok(i + 2), "now")) {
        p.report("D002", t.line,
                 std::string("wall-clock read '") + clk +
                     "::now()' in library code; simulation state must come "
                     "from sim::Simulator time, wall time only via "
                     "exec::metrics");
      }
    }
    if ((t.text == "time" || t.text == "clock" || t.text == "gettimeofday" ||
         t.text == "clock_gettime") &&
        p.next_is(i, "(") && p.bare_or_std(i)) {
      p.report("D002", t.line,
               "wall-clock read '" + t.text + "()' in library code");
    }
  }
}

// ---- D003: range-for over unordered containers ----------------------------

void rule_d003(Pass& p) {
  // Pass 0: type names that *are* unordered containers in this file — the
  // std ones plus any typedef/using alias whose target mentions one.  Run to
  // a fixpoint so aliases of aliases resolve regardless of declaration
  // order.  (Purely lexical, like the rest of the scanner: an alias declared
  // in another header is invisible, same as any cross-file type info.)
  std::set<std::string> unordered_types(unordered_containers().begin(),
                                        unordered_containers().end());
  for (bool grew = true; grew;) {
    grew = false;
    for (std::size_t i = 0; i + 2 < p.size(); ++i) {
      if (p.tok(i).kind != Token::kIdent) continue;
      std::size_t name = 0, body_lo = 0;
      if (is_ident(p.tok(i), "using") && p.tok(i + 1).kind == Token::kIdent &&
          is_punct(p.tok(i + 2), "=")) {
        name = i + 1;  // using NAME = <body> ;
        body_lo = i + 3;
      } else if (is_ident(p.tok(i), "typedef")) {
        body_lo = i + 1;  // typedef <body> NAME ;
      } else {
        continue;
      }
      std::size_t semi = body_lo;
      while (semi < p.size() && !is_punct(p.tok(semi), ";")) ++semi;
      if (semi >= p.size()) continue;
      if (name == 0) {  // typedef: the declared name is the token before ';'
        if (semi == body_lo || p.tok(semi - 1).kind != Token::kIdent) continue;
        name = semi - 1;
      }
      bool aliases_unordered = false;
      for (std::size_t j = body_lo; j < semi; ++j) {
        if (j == name) continue;
        if (p.tok(j).kind == Token::kIdent &&
            unordered_types.count(p.tok(j).text) > 0 && p.bare_or_std(j)) {
          aliases_unordered = true;
          break;
        }
      }
      if (aliases_unordered &&
          unordered_types.insert(p.tok(name).text).second) {
        grew = true;
      }
    }
  }

  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p.tok(i).kind != Token::kIdent ||
        unordered_types.count(p.tok(i).text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    // Skip template argument list.
    if (j < p.size() && is_punct(p.tok(j), "<")) {
      int depth = 0;
      for (; j < p.size(); ++j) {
        if (is_punct(p.tok(j), "<")) ++depth;
        if (is_punct(p.tok(j), ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    // Skip refs/pointers/cv between type and name.
    while (j < p.size() &&
           (is_punct(p.tok(j), "&") || is_punct(p.tok(j), "*") ||
            is_ident(p.tok(j), "const") || is_ident(p.tok(j), "constexpr"))) {
      ++j;
    }
    // The token after the type must be a *variable* name: alias definitions
    // put another type name there (typedef unordered_map<K,V> MyMap;) and
    // pass 0 already classified those as types, not instances.
    if (j < p.size() && p.tok(j).kind == Token::kIdent &&
        unordered_types.count(p.tok(j).text) == 0) {
      unordered_names.insert(p.tok(j).text);
    }
  }
  if (unordered_names.empty()) return;

  // Pass 2: for ( ... : <expr mentioning such a name> ).
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!is_ident(p.tok(i), "for") || !is_punct(p.tok(i + 1), "(")) continue;
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < p.size(); ++j) {
      if (is_punct(p.tok(j), "(")) ++depth;
      if (is_punct(p.tok(j), ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && colon == 0 && is_punct(p.tok(j), ":")) colon = j;
    }
    if (colon == 0 || close == 0) continue;  // classic for, or unterminated
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (p.tok(j).kind == Token::kIdent &&
          unordered_names.count(p.tok(j).text) > 0) {
        p.report("D003", p.tok(i).line,
                 "range-for over unordered container '" + p.tok(j).text +
                     "': iteration order is implementation-defined; iterate "
                     "a sorted copy or an ordered container on "
                     "result-producing paths");
        break;
      }
    }
  }
}

// ---- D004: mutable statics at namespace scope -----------------------------

void rule_d004(Pass& p) {
  // Scope tracking: push a kind per '{'; namespace scope = every open brace
  // is a namespace (or extern "C") block.
  enum Kind { kNamespace, kOther };
  std::vector<Kind> stack;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Token& t = p.tok(i);
    if (is_punct(t, "{")) {
      // Look back for what opened this brace.
      Kind k = kOther;
      for (std::size_t back = 1; back <= 8 && back <= i; ++back) {
        const Token& b = p.tok(i - back);
        if (is_punct(b, ";") || is_punct(b, "}") || is_punct(b, "{") ||
            is_punct(b, ")")) {
          break;  // statement boundary or function body — not a namespace
        }
        if (is_ident(b, "namespace")) {
          k = kNamespace;
          break;
        }
        if (is_ident(b, "extern")) {
          k = kNamespace;  // extern "C" { ... } keeps namespace scope
          break;
        }
        if (is_ident(b, "class") || is_ident(b, "struct") ||
            is_ident(b, "union") || is_ident(b, "enum")) {
          break;
        }
      }
      stack.push_back(k);
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (!is_ident(t, "static")) continue;
    bool at_namespace_scope = true;
    for (Kind k : stack) at_namespace_scope &= (k == kNamespace);
    if (!at_namespace_scope) continue;
    // Scan the declaration: a '(' before '=' / ';' / '{' means a function;
    // const/constexpr/constinit means immutable.
    bool is_function = false, is_const = false;
    std::size_t line = t.line;
    int angle = 0;
    for (std::size_t j = i + 1; j < p.size(); ++j) {
      const Token& d = p.tok(j);
      if (is_punct(d, "<")) ++angle;
      if (is_punct(d, ">") && angle > 0) --angle;
      if (angle > 0) continue;
      if (is_punct(d, "(")) {
        is_function = true;
        break;
      }
      if (is_ident(d, "const") || is_ident(d, "constexpr") ||
          is_ident(d, "constinit")) {
        is_const = true;
      }
      if (is_punct(d, ";") || is_punct(d, "=") || is_punct(d, "{")) break;
    }
    if (!is_function && !is_const) {
      p.report("D004", line,
               "mutable `static` at namespace scope: hidden global state "
               "breaks run-to-run and thread-count invariance; thread it "
               "through the owning object or make it constexpr");
    }
  }
}

// ---- D005: blocking primitives outside exec/ ------------------------------

const std::unordered_set<std::string>& blocking_sync_types() {
  static const std::unordered_set<std::string> kSet{
      "mutex",          "timed_mutex",        "recursive_mutex",
      "recursive_timed_mutex",                "shared_mutex",
      "shared_timed_mutex",                   "condition_variable",
      "condition_variable_any",               "lock_guard",
      "unique_lock",    "scoped_lock",        "shared_lock",
      "counting_semaphore",                   "binary_semaphore",
      "latch",          "barrier",
  };
  return kSet;
}

void rule_d005(Pass& p) {
  // The exec module owns the worker pool and is the one place allowed to
  // block; everywhere else a session is a non-blocking state machine that
  // yields to the DES kernel between steps (serve/fom.hpp), so sleeps and
  // lock waits in library code would stall a whole locality.
  if (p.file().path.find("exec/") != std::string::npos) return;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Token& t = p.tok(i);
    if (t.kind != Token::kIdent) continue;
    if (i > 0) {
      const Token& prev = p.tok(i - 1);
      // `struct mutex;` in a non-std namespace declares a new type, not a
      // use of the std primitive.
      if (is_ident(prev, "struct") || is_ident(prev, "class") ||
          is_ident(prev, "enum")) {
        continue;
      }
    }
    const bool sleep_call =
        (t.text == "sleep_for" || t.text == "sleep_until" ||
         t.text == "usleep" || t.text == "nanosleep" || t.text == "sleep") &&
        p.next_is(i, "(");
    const bool sync_type = blocking_sync_types().count(t.text) > 0;
    if ((sleep_call || sync_type) && p.bare_or_std(i)) {
      p.report("D005", t.line,
               "blocking primitive '" + t.text +
                   "' in library code: sessions must yield to the DES kernel "
                   "instead of blocking (serve/fom.hpp); blocking "
                   "synchronization lives only under exec/");
    }
  }
}

// ---- D006: scalar floating-point reduction loops ---------------------------

void rule_d006(Pass& p) {
  // A `+=` / `*=` onto a double/float accumulator inside a loop sums in
  // source order, so its result depends on iteration order — the exact
  // sensitivity the exec::simd lane model exists to pin down (DESIGN.md
  // §5i).  Hot paths must reduce through the fixed-lane kernels; cold or
  // provably order-fixed sites carry a HOLMS_LINT_ALLOW(D006) reason.
  // The simd layer itself is the blessed home of reduction loops.
  if (p.file().path.find("exec/simd") != std::string::npos) return;

  // Pass 0: names declared with a floating-point type in this file (purely
  // lexical, like D003's alias scan: cross-file type info is invisible).
  std::set<std::string> fp_names;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!is_ident(p.tok(i), "double") && !is_ident(p.tok(i), "float")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < p.size() &&
           (is_punct(p.tok(j), "*") || is_punct(p.tok(j), "&") ||
            is_ident(p.tok(j), "const"))) {
      ++j;
    }
    // Collect the declarator chain `double a = .., b = ..;` but not function
    // names (`double f(...)`).
    while (j < p.size() && p.tok(j).kind == Token::kIdent) {
      if (j + 1 < p.size() && is_punct(p.tok(j + 1), "(")) break;
      fp_names.insert(p.tok(j).text);
      // Advance to the next declarator in this statement, if any.
      std::size_t k = j + 1;
      int depth = 0;
      for (; k < p.size(); ++k) {
        if (is_punct(p.tok(k), "(") || is_punct(p.tok(k), "[") ||
            is_punct(p.tok(k), "{")) {
          ++depth;
        }
        if (is_punct(p.tok(k), ")") || is_punct(p.tok(k), "]") ||
            is_punct(p.tok(k), "}")) {
          if (depth == 0) break;
          --depth;
        }
        if (depth == 0 && (is_punct(p.tok(k), ";") || is_punct(p.tok(k), ","))) {
          break;
        }
      }
      if (k >= p.size() || !is_punct(p.tok(k), ",")) break;
      j = k + 1;
    }
  }
  if (fp_names.empty()) return;

  // Pass 1: loop bodies.  For each for/while, find the body token range —
  // `{...}` block or single statement — and flag `name +=` / `name *=`
  // where `name` is a known floating-point variable and the loop walks a
  // container: a range-for, or a right-hand side reading a subscripted
  // element.  Scalar recurrences (`t += dt`, `temp *= cooling`) depend on
  // iteration *count*, not order, so they are not reductions and stay
  // clean.  (Subscripted stores `arr[i] +=` put `]` before the operator,
  // so they never match as the target; member targets only match when the
  // member itself was declared double/float in this file.)
  std::set<std::size_t> reported;  // token index of the accumulator
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!is_ident(p.tok(i), "for") && !is_ident(p.tok(i), "while")) continue;
    if (!is_punct(p.tok(i + 1), "(")) continue;
    int depth = 0;
    std::size_t close = 0;
    bool range_for = false;
    for (std::size_t j = i + 1; j < p.size(); ++j) {
      if (is_punct(p.tok(j), "(")) ++depth;
      if (is_punct(p.tok(j), ")") && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && is_punct(p.tok(j), ":") && !is_punct(p.tok(j - 1), ":") &&
          !(j + 1 < p.size() && is_punct(p.tok(j + 1), ":"))) {
        range_for = is_ident(p.tok(i), "for");
      }
    }
    if (close == 0 || close + 1 >= p.size()) continue;
    std::size_t body_lo = close + 1, body_hi = body_lo;
    if (is_punct(p.tok(body_lo), "{")) {
      int braces = 0;
      for (std::size_t j = body_lo; j < p.size(); ++j) {
        if (is_punct(p.tok(j), "{")) ++braces;
        if (is_punct(p.tok(j), "}") && --braces == 0) {
          body_hi = j;
          break;
        }
      }
    } else {
      while (body_hi < p.size() && !is_punct(p.tok(body_hi), ";")) ++body_hi;
    }
    for (std::size_t j = body_lo; j + 2 < body_hi; ++j) {
      const Token& t = p.tok(j);
      if (t.kind != Token::kIdent || fp_names.count(t.text) == 0) continue;
      const bool compound =
          (is_punct(p.tok(j + 1), "+") || is_punct(p.tok(j + 1), "*")) &&
          is_punct(p.tok(j + 2), "=");
      if (!compound) continue;
      // Container evidence: range-for, or a `[` in the right-hand side.
      bool subscripted = false;
      for (std::size_t k = j + 3; k < body_hi && !is_punct(p.tok(k), ";");
           ++k) {
        if (is_punct(p.tok(k), "[")) {
          subscripted = true;
          break;
        }
      }
      if ((!range_for && !subscripted) || !reported.insert(j).second) {
        continue;
      }
      p.report("D006", t.line,
               "floating-point container reduction '" + t.text + " " +
                   p.tok(j + 1).text +
                   "= ...' in a loop: source-order accumulation; reduce "
                   "through exec::simd's fixed-lane kernels or annotate the "
                   "order-insensitive/cold site with HOLMS_LINT_ALLOW(D006)");
    }
  }
}

// ---- C001: Params/Options structs must expose validate() ------------------

bool params_like(const std::string& name) {
  auto ends_with = [&](const char* suffix) {
    const std::string s = suffix;
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("Params") || ends_with("Options");
}

void rule_c001(Pass& p) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!is_ident(p.tok(i), "struct") && !is_ident(p.tok(i), "class")) {
      continue;
    }
    const Token& name = p.tok(i + 1);
    if (name.kind != Token::kIdent || !params_like(name.text)) continue;
    // Find the opening brace of the definition (skip final / base clause);
    // stop at ';' (forward declaration) or '=' (alias-like, not ours).
    std::size_t open = 0;
    for (std::size_t j = i + 2; j < p.size(); ++j) {
      if (is_punct(p.tok(j), "{")) {
        open = j;
        break;
      }
      if (is_punct(p.tok(j), ";") || is_punct(p.tok(j), "=") ||
          is_punct(p.tok(j), ")")) {
        break;  // fwd decl, or `struct X` used inside another declaration
      }
    }
    if (open == 0) continue;
    int depth = 0;
    bool has_validate = false;
    std::size_t j = open;
    for (; j < p.size(); ++j) {
      if (is_punct(p.tok(j), "{")) ++depth;
      if (is_punct(p.tok(j), "}") && --depth == 0) break;
      if (is_ident(p.tok(j), "validate") && j + 1 < p.size() &&
          is_punct(p.tok(j + 1), "(")) {
        has_validate = true;
      }
    }
    if (!has_validate) {
      p.report("C001", name.line,
               "public struct '" + name.text +
                   "' has no validate() member; every Params/Options struct "
                   "must carry its contract checks (throwing "
                   "holms::InvalidArgument)");
    }
  }
}

// ---- C002: typed exception hierarchy only ---------------------------------

void rule_c002(Pass& p) {
  for (std::size_t i = 0; i + 2 < p.size(); ++i) {
    if (!is_ident(p.tok(i), "throw")) continue;
    if (is_ident(p.tok(i + 1), "std") && is_punct(p.tok(i + 2), "::")) {
      const std::string what =
          i + 3 < p.size() ? p.tok(i + 3).text : std::string("?");
      p.report("C002", p.tok(i).line,
               "`throw std::" + what +
                   "`: public APIs must throw the typed holms hierarchy "
                   "(holms::InvalidArgument / OutOfRange / RuntimeError, "
                   "exec/error.hpp)");
    }
  }
}

// ---- C003: no `using namespace` in headers --------------------------------

void rule_c003(Pass& p) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (is_ident(p.tok(i), "using") && is_ident(p.tok(i + 1), "namespace")) {
      p.report("C003", p.tok(i).line,
               "`using namespace` in a header leaks into every includer");
    }
  }
}

// ---- H001: no direct stdout/stderr in library code ------------------------

void rule_h001(Pass& p) {
  for (std::size_t i = 0; i < p.size(); ++i) {
    const Token& t = p.tok(i);
    if (t.kind != Token::kIdent) continue;
    const bool stream = t.text == "cout" || t.text == "cerr" ||
                        t.text == "clog";
    const bool fn = (t.text == "printf" || t.text == "fprintf" ||
                     t.text == "puts" || t.text == "putchar" ||
                     t.text == "fputs") &&
                    p.next_is(i, "(");
    if ((stream || fn) && p.bare_or_std(i)) {
      p.report("H001", t.line,
               "direct console output '" + t.text +
                   "' in library code; route through exec::metrics / trace "
                   "hooks so callers own the I/O policy");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules{
      {"D001", "banned randomness primitive outside the RNG module"},
      {"D002", "wall-clock read in library code"},
      {"D003", "range-for over an unordered container in library code"},
      {"D004", "mutable static at namespace scope"},
      {"D005", "blocking primitive (sleep / lock wait) outside exec/"},
      {"D006", "scalar floating-point reduction loop outside exec/simd"},
      {"C001", "Params/Options struct without validate() member"},
      {"C002", "throw of a bare std:: exception (use exec/error.hpp types)"},
      {"C003", "using namespace in a header"},
      {"C004", "header without #pragma once"},
      {"H001", "direct console output in library code"},
      {"X001", "malformed HOLMS_LINT_ALLOW (unknown rule or missing reason)"},
      {"X002", "stale HOLMS_LINT_ALLOW that no finding matches any more"},
      {"A001", "architecture-layering violation (include against layers.json)"},
      {"A002", "include cycle (SCC over the header include graph)"},
      {"D007", "interprocedural determinism escape (transitive D001/D002/D005)"},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalogue()) {
    if (id == r.id) return true;
  }
  return false;
}

std::vector<Finding> run_rules(const SourceFile& f) {
  std::vector<Finding> findings;
  Pass p(f, findings);

  if (f.is_library()) {
    rule_d001(p);
    rule_d002(p);
    rule_d003(p);
    rule_d004(p);
    rule_d005(p);
    rule_d006(p);
    rule_c002(p);
    rule_h001(p);
  }
  if (f.is_header()) {
    rule_c003(p);
    if (f.kind == FileKind::kLibraryHeader) rule_c001(p);
    if (!f.has_pragma_once) {
      findings.push_back(Finding{"C004", f.path, 1,
                                 "header is missing #pragma once", false, {}});
    }
  }
  // X001 findings for malformed annotations (never suppressible).
  for (const Suppression& s : f.suppressions) {
    if (s.malformed) {
      findings.push_back(
          Finding{"X001", f.path, s.comment_line,
                  "malformed HOLMS_LINT_ALLOW: need a known rule id and a "
                  "non-empty reason (`// HOLMS_LINT_ALLOW(D001): why`)",
                  false, {}});
    }
  }

  // Apply suppressions.
  for (Finding& fd : findings) {
    if (fd.rule == "X001") continue;
    for (const Suppression& s : f.suppressions) {
      if (s.malformed || s.rule != fd.rule) continue;
      if (s.file_level || s.anchor_line == fd.line) {
        fd.suppressed = true;
        fd.suppress_reason = s.reason;
        break;
      }
    }
  }
  return findings;
}

}  // namespace holms::lint
