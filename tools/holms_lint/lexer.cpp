// Tokenizer for holms_lint: enough C++ lexing to make token-sequence rules
// reliable — comments, string/char/raw-string literals and preprocessor
// logical lines are consumed here so the rules never see their contents.

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "lint.hpp"

namespace holms::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `HOLMS_LINT_ALLOW(rule): reason` / `HOLMS_LINT_ALLOW_FILE(...)`
/// out of a comment body.  Malformed annotations are kept (flagged as X001).
void parse_allow(const std::string& comment, std::size_t line,
                 bool code_before_comment, SourceFile& out) {
  const std::string tag = "HOLMS_LINT_ALLOW";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  std::size_t p = pos + tag.size();
  Suppression s;
  s.comment_line = line;
  if (comment.compare(p, 5, "_FILE") == 0) {
    s.file_level = true;
    p += 5;
  }
  // (rule-id)
  if (p >= comment.size() || comment[p] != '(') {
    s.malformed = true;
    out.suppressions.push_back(std::move(s));
    return;
  }
  const std::size_t close = comment.find(')', p);
  if (close == std::string::npos) {
    s.malformed = true;
    out.suppressions.push_back(std::move(s));
    return;
  }
  s.rule = comment.substr(p + 1, close - p - 1);
  // ": reason"
  std::size_t r = close + 1;
  while (r < comment.size() && (comment[r] == ' ' || comment[r] == '\t')) ++r;
  if (r < comment.size() && comment[r] == ':') {
    ++r;
    while (r < comment.size() && (comment[r] == ' ' || comment[r] == '\t')) ++r;
    s.reason = comment.substr(r);
    while (!s.reason.empty() &&
           (s.reason.back() == ' ' || s.reason.back() == '\t')) {
      s.reason.pop_back();
    }
  }
  if (s.reason.empty() || !is_known_rule(s.rule)) s.malformed = true;
  // A trailing comment suppresses its own line; a comment-only line
  // suppresses the next code line (resolved after lexing — anchor_line = 0
  // marks "pending").
  s.anchor_line = (code_before_comment && !s.file_level) ? line : 0;
  out.suppressions.push_back(std::move(s));
}

}  // namespace

SourceFile lex(std::string path, const std::string& content, FileKind kind) {
  SourceFile out;
  out.path = std::move(path);
  out.kind = kind;

  // Raw lines (for baseline keys).
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= content.size(); ++i) {
      if (i == content.size() || content[i] == '\n') {
        out.lines.push_back(content.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t last_token_line = 0;  // to know if a comment trails code

  auto push = [&](Token::Kind k, std::string text) {
    out.tokens.push_back(Token{k, std::move(text), line});
    last_token_line = line;
  };

  const std::size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_allow(content.substr(i + 2, end - i - 2), line,
                  last_token_line == line, out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      line += static_cast<std::size_t>(
          std::count(content.begin() + static_cast<std::ptrdiff_t>(i),
                     content.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(end, n)),
                     '\n'));
      i = std::min(end + 2, n);
      continue;
    }
    // Preprocessor logical line (only at start of line, possibly indented —
    // last_token_line check is unnecessary: '#' is not a token we emit).
    if (c == '#') {
      const std::size_t directive_line = line;
      std::size_t end = i;
      std::string directive;
      while (end < n) {
        if (content[end] == '\n') {
          // Backslash continuation, tolerating CRLF ("\\\r\n").
          std::size_t back = end;
          if (back > 0 && content[back - 1] == '\r') --back;
          if (back > 0 && content[back - 1] == '\\') {
            ++line;
            ++end;
            continue;
          }
          break;
        }
        directive.push_back(content[end]);
        ++end;
      }
      if (directive.find("pragma") != std::string::npos &&
          directive.find("once") != std::string::npos) {
        out.has_pragma_once = true;
      }
      // Record quoted includes for the whole-program pass (graph.hpp).
      // System includes (<...>) carry no architecture information.
      {
        std::size_t p = 1;  // past '#'
        while (p < directive.size() &&
               (directive[p] == ' ' || directive[p] == '\t')) {
          ++p;
        }
        if (directive.compare(p, 7, "include") == 0) {
          const std::size_t open = directive.find('"', p + 7);
          if (open != std::string::npos) {
            const std::size_t close = directive.find('"', open + 1);
            if (close != std::string::npos && close > open + 1) {
              out.includes.push_back(IncludeDirective{
                  directive.substr(open + 1, close - open - 1),
                  directive_line});
            }
          }
        }
      }
      i = end;
      continue;
    }
    // Raw string literal R"delim( ... )delim", with optional encoding prefix
    // (u8R, uR, UR, LR).  Handled before the identifier branch so the prefix
    // doesn't get lexed as an ident and the body as code.
    {
      std::size_t raw_r = std::string::npos;  // index of the 'R'
      if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
        raw_r = i;
      } else if ((c == 'u' || c == 'U' || c == 'L') && i + 2 < n) {
        std::size_t r = i + 1;
        if (c == 'u' && content[r] == '8') ++r;  // u8R"..."
        if (r + 1 < n && content[r] == 'R' && content[r + 1] == '"') raw_r = r;
      }
      if (raw_r != std::string::npos) {
        std::size_t p = raw_r + 2;
        std::string delim;
        while (p < n && content[p] != '(') delim.push_back(content[p++]);
        const std::string closer = ")" + delim + "\"";
        std::size_t end = content.find(closer, p);
        if (end == std::string::npos) end = n;
        line += static_cast<std::size_t>(
            std::count(content.begin() + static_cast<std::ptrdiff_t>(i),
                       content.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(end, n)),
                       '\n'));
        push(Token::kString, "<raw-string>");
        i = std::min(end + closer.size(), n);
        continue;
      }
    }
    // Encoding-prefixed ordinary literal (u8"...", u'.', U"...", L"...").
    // Skip the prefix; the string/char branch below consumes the body.
    if ((c == 'u' || c == 'U' || c == 'L') && i + 1 < n) {
      std::size_t q = i + 1;
      if (c == 'u' && content[q] == '8' && q + 1 < n) ++q;
      if (content[q] == '"' || content[q] == '\'') {
        i = q;
        // fall through to the literal branch via the loop: re-dispatch
        const char quote = content[i];
        std::size_t p = i + 1;
        while (p < n && content[p] != quote) {
          if (content[p] == '\\' && p + 1 < n) ++p;
          if (content[p] == '\n') ++line;
          ++p;
        }
        push(Token::kString, quote == '"' ? "<string>" : "<char>");
        i = p + 1;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && content[p] != quote) {
        if (content[p] == '\\' && p + 1 < n) ++p;
        if (content[p] == '\n') ++line;
        ++p;
      }
      push(Token::kString, quote == '"' ? "<string>" : "<char>");
      i = p + 1;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(content[p])) ++p;
      push(Token::kIdent, content.substr(i, p - i));
      i = p;
      continue;
    }
    // Number (incl. 0x..., digit separators, suffixes — swallowed greedily).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i + 1;
      while (p < n && (ident_char(content[p]) || content[p] == '\'' ||
                       ((content[p] == '+' || content[p] == '-') &&
                        (content[p - 1] == 'e' || content[p - 1] == 'E')))) {
        ++p;
      }
      push(Token::kNumber, content.substr(i, p - i));
      i = p;
      continue;
    }
    // Multi-char puncts the rules care about.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      push(Token::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      push(Token::kPunct, "->");
      i += 2;
      continue;
    }
    push(Token::kPunct, std::string(1, c));
    ++i;
  }

  // Resolve comment-only suppressions to the next line holding a token.
  for (Suppression& s : out.suppressions) {
    if (s.file_level || s.anchor_line != 0) continue;
    for (const Token& t : out.tokens) {
      if (t.line > s.comment_line) {
        s.anchor_line = t.line;
        break;
      }
    }
    if (s.anchor_line == 0) s.anchor_line = s.comment_line;  // trailing EOF
  }
  return out;
}

FileKind classify_path(const std::string& path) {
  const bool header = path.size() >= 4 &&
                      (path.rfind(".hpp") == path.size() - 4 ||
                       path.rfind(".h") == path.size() - 2);
  // Normalize: a path is library code when it lives under a src/ directory.
  const bool lib = path.rfind("src/", 0) == 0 ||
                   path.find("/src/") != std::string::npos;
  if (lib) return header ? FileKind::kLibraryHeader : FileKind::kLibrarySource;
  return header ? FileKind::kOtherHeader : FileKind::kOtherSource;
}

}  // namespace holms::lint
