// holms_lint CLI.
//
//   holms_lint [options] <path>...           (files or directories)
//
//   --baseline FILE        grandfather findings listed in FILE
//   --strict               ignore the baseline: fail on ANY unsuppressed
//                          finding (suppressions stay honored — they are
//                          explicit, reviewed annotations)
//   --json FILE            write the machine-readable report (default
//                          LINT_report.json; "-" disables)
//   --layers FILE          layer DAG for the A001 rule (default:
//                          tools/holms_lint/layers.json when present)
//   --graph-dump FILE      write the whole-program index (LINT_graph.json:
//                          nodes, edges, layer ranks, SCCs, rule counts)
//   --write-baseline FILE  regenerate a baseline from the current findings
//                          (canonically sorted; entries whose file is gone
//                          are dropped and reported)
//   --list-rules           print the rule catalogue and exit
//   --quiet                summary only, no per-finding lines
//
// Exit codes: 0 clean (w.r.t. baseline unless --strict), 1 findings,
// 2 usage / IO error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph.hpp"
#include "lint.hpp"

namespace fs = std::filesystem;
using namespace holms::lint;  // HOLMS_LINT_ALLOW(C003): main.cpp, not a header

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

bool skipped_dir(const std::string& name) {
  // lint_fixtures hold deliberate violations for the golden tests; build
  // trees hold generated code.
  return name == "lint_fixtures" || name == ".git" ||
         name.rfind("build", 0) == 0;
}

void collect(const fs::path& root, std::vector<std::string>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable_extension(root)) out.push_back(root.generic_string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skipped_dir(it->path().filename().string())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      out.push_back(it->path().generic_string());
    }
  }
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string json_path = "LINT_report.json";
  std::string write_baseline_path;
  std::string layers_path;  // empty -> probe the default location
  std::string graph_dump_path;
  bool strict = false, quiet = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto need_value = [&](const char* flag) -> std::string {
      if (a + 1 >= argc) {
        std::cerr << "holms_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--baseline") {
      baseline_path = need_value("--baseline");
    } else if (arg == "--json") {
      json_path = need_value("--json");
    } else if (arg == "--write-baseline") {
      write_baseline_path = need_value("--write-baseline");
    } else if (arg == "--layers") {
      layers_path = need_value("--layers");
    } else if (arg == "--graph-dump") {
      graph_dump_path = need_value("--graph-dump");
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalogue()) {
        std::printf("%s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: holms_lint [--strict] [--baseline FILE] [--json FILE]\n"
          "                  [--layers FILE] [--graph-dump FILE]\n"
          "                  [--write-baseline FILE] [--list-rules]\n"
          "                  [--quiet] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "holms_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "holms_lint: no paths given (try: holms_lint src tests "
                 "bench)\n";
    return 2;
  }

  std::vector<std::string> paths;
  for (const std::string& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "holms_lint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, paths);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  using clock = std::chrono::steady_clock;
  const auto ms_between = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  const auto t_lint0 = clock::now();
  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  std::vector<Finding> findings;
  for (const std::string& p : paths) {
    bool ok = true;
    const std::string content = read_file(p, ok);
    if (!ok) {
      std::cerr << "holms_lint: cannot read " << p << "\n";
      return 2;
    }
    sources.push_back(lex(p, content, classify_path(p)));
    const std::vector<Finding> fs_ = run_rules(sources.back());
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& s : sources) by_path[s.path] = &s;
  const auto t_lint1 = clock::now();

  // Whole-program pass: layer config, include/call graph, graph rule pack.
  LayerConfig layers;
  {
    std::string path = layers_path;
    const bool required = !path.empty();
    if (path.empty() && fs::exists("tools/holms_lint/layers.json")) {
      path = "tools/holms_lint/layers.json";
    }
    if (!path.empty()) {
      try {
        if (!load_layers_file(path, layers) && required) {
          std::cerr << "holms_lint: cannot read layers file " << path << "\n";
          return 2;
        }
      } catch (const std::exception& e) {
        std::cerr << "holms_lint: " << path << ": " << e.what() << "\n";
        return 2;
      }
    }
  }
  const ProgramGraph graph = build_graph(sources);
  {
    const std::vector<Finding> graph_findings =
        run_graph_rules(sources, graph, layers, findings);
    findings.insert(findings.end(), graph_findings.begin(),
                    graph_findings.end());
  }
  const auto t_graph1 = clock::now();

  ReportStats stats;
  stats.files = paths.size();
  stats.lint_ms = ms_between(t_lint0, t_lint1);
  stats.graph_ms = ms_between(t_lint1, t_graph1);

  if (!graph_dump_path.empty()) {
    std::map<std::string, std::size_t> rule_counts;
    for (const Finding& f : findings) {
      if (!f.suppressed) ++rule_counts[f.rule];
    }
    const GraphDump dump = make_graph_dump(graph, layers, rule_counts);
    std::ofstream out(graph_dump_path, std::ios::binary);
    if (!out) {
      std::cerr << "holms_lint: cannot write " << graph_dump_path << "\n";
      return 2;
    }
    out << graph_to_json(dump);
  }

  if (!write_baseline_path.empty()) {
    // Regenerate from scratch (std::map keeps entries canonically sorted),
    // prune anything keyed to a file outside this run, and report entries
    // from the previous baseline that disappear — keeps diffs reviewable.
    std::vector<std::string> dropped;
    const Baseline b =
        prune_baseline(make_baseline(findings, by_path), by_path, &dropped);
    {
      bool ok = true;
      const std::string old_text = read_file(write_baseline_path, ok);
      if (ok) {
        try {
          prune_baseline(parse_baseline_json(old_text), by_path, &dropped);
        } catch (const std::exception&) {
          // Unreadable previous baseline: nothing to report dropping.
        }
      }
    }
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "holms_lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    out << baseline_to_json(b);
    std::printf("holms_lint: wrote %zu baseline entr%s to %s\n", b.size(),
                b.size() == 1 ? "y" : "ies", write_baseline_path.c_str());
    for (const std::string& key : dropped) {
      std::printf("holms_lint: dropped stale baseline entry: %s\n",
                  key.c_str());
    }
    return 0;
  }

  Baseline base;
  if (!baseline_path.empty() && !strict) {
    bool ok = true;
    const std::string text = read_file(baseline_path, ok);
    if (!ok) {
      std::cerr << "holms_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    try {
      base = parse_baseline_json(text);
    } catch (const std::exception& e) {
      std::cerr << "holms_lint: " << e.what() << "\n";
      return 2;
    }
  }

  const std::vector<Finding> fresh = subtract_baseline(findings, by_path, base);

  std::size_t suppressed = 0, total = 0;
  for (const Finding& f : findings) {
    f.suppressed ? ++suppressed : ++total;
  }

  if (!quiet) {
    for (const Finding& f : fresh) {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    if (strict) {
      // --strict surfaces the explicit suppressions too, with their reasons,
      // so "what is being allowed and why" is one command away.
      for (const Finding& f : findings) {
        if (f.suppressed) {
          std::printf("%s:%zu: [%s] suppressed: %s\n", f.file.c_str(), f.line,
                      f.rule.c_str(), f.suppress_reason.c_str());
        }
      }
    }
  }

  if (json_path != "-") {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "holms_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << report_to_json(findings, fresh, strict, stats);
  }

  std::printf(
      "holms_lint: %zu file%s, %zu finding%s (%zu new, %zu baselined, %zu "
      "suppressed)%s\n",
      paths.size(), paths.size() == 1 ? "" : "s", total, total == 1 ? "" : "s",
      fresh.size(), total - fresh.size(), suppressed,
      strict ? " [strict]" : "");
  return fresh.empty() ? 0 : 1;
}
