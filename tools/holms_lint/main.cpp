// holms_lint CLI.
//
//   holms_lint [options] <path>...           (files or directories)
//
//   --baseline FILE        grandfather findings listed in FILE
//   --strict               ignore the baseline: fail on ANY unsuppressed
//                          finding (suppressions stay honored — they are
//                          explicit, reviewed annotations)
//   --json FILE            write the machine-readable report (default
//                          LINT_report.json; "-" disables)
//   --write-baseline FILE  regenerate a baseline from the current findings
//   --list-rules           print the rule catalogue and exit
//   --quiet                summary only, no per-finding lines
//
// Exit codes: 0 clean (w.r.t. baseline unless --strict), 1 findings,
// 2 usage / IO error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace holms::lint;  // HOLMS_LINT_ALLOW(C003): main.cpp, not a header

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

bool skipped_dir(const std::string& name) {
  // lint_fixtures hold deliberate violations for the golden tests; build
  // trees hold generated code.
  return name == "lint_fixtures" || name == ".git" ||
         name.rfind("build", 0) == 0;
}

void collect(const fs::path& root, std::vector<std::string>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable_extension(root)) out.push_back(root.generic_string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (auto it = fs::recursive_directory_iterator(root);
       it != fs::recursive_directory_iterator(); ++it) {
    if (it->is_directory() && skipped_dir(it->path().filename().string())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      out.push_back(it->path().generic_string());
    }
  }
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_path;
  std::string json_path = "LINT_report.json";
  std::string write_baseline_path;
  bool strict = false, quiet = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto need_value = [&](const char* flag) -> std::string {
      if (a + 1 >= argc) {
        std::cerr << "holms_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--baseline") {
      baseline_path = need_value("--baseline");
    } else if (arg == "--json") {
      json_path = need_value("--json");
    } else if (arg == "--write-baseline") {
      write_baseline_path = need_value("--write-baseline");
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : rule_catalogue()) {
        std::printf("%s  %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: holms_lint [--strict] [--baseline FILE] [--json FILE]\n"
          "                  [--write-baseline FILE] [--list-rules]\n"
          "                  [--quiet] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "holms_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "holms_lint: no paths given (try: holms_lint src tests "
                 "bench)\n";
    return 2;
  }

  std::vector<std::string> paths;
  for (const std::string& r : roots) {
    if (!fs::exists(r)) {
      std::cerr << "holms_lint: no such path: " << r << "\n";
      return 2;
    }
    collect(r, paths);
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> sources;
  sources.reserve(paths.size());
  std::vector<Finding> findings;
  for (const std::string& p : paths) {
    bool ok = true;
    const std::string content = read_file(p, ok);
    if (!ok) {
      std::cerr << "holms_lint: cannot read " << p << "\n";
      return 2;
    }
    sources.push_back(lex(p, content, classify_path(p)));
    const std::vector<Finding> fs_ = run_rules(sources.back());
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& s : sources) by_path[s.path] = &s;

  if (!write_baseline_path.empty()) {
    const Baseline b = make_baseline(findings, by_path);
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::cerr << "holms_lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    out << baseline_to_json(b);
    std::printf("holms_lint: wrote %zu baseline entr%s to %s\n", b.size(),
                b.size() == 1 ? "y" : "ies", write_baseline_path.c_str());
    return 0;
  }

  Baseline base;
  if (!baseline_path.empty() && !strict) {
    bool ok = true;
    const std::string text = read_file(baseline_path, ok);
    if (!ok) {
      std::cerr << "holms_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    try {
      base = parse_baseline_json(text);
    } catch (const std::exception& e) {
      std::cerr << "holms_lint: " << e.what() << "\n";
      return 2;
    }
  }

  const std::vector<Finding> fresh = subtract_baseline(findings, by_path, base);

  std::size_t suppressed = 0, total = 0;
  for (const Finding& f : findings) {
    f.suppressed ? ++suppressed : ++total;
  }

  if (!quiet) {
    for (const Finding& f : fresh) {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    if (strict) {
      // --strict surfaces the explicit suppressions too, with their reasons,
      // so "what is being allowed and why" is one command away.
      for (const Finding& f : findings) {
        if (f.suppressed) {
          std::printf("%s:%zu: [%s] suppressed: %s\n", f.file.c_str(), f.line,
                      f.rule.c_str(), f.suppress_reason.c_str());
        }
      }
    }
  }

  if (json_path != "-") {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "holms_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << report_to_json(findings, fresh, strict);
  }

  std::printf(
      "holms_lint: %zu file%s, %zu finding%s (%zu new, %zu baselined, %zu "
      "suppressed)%s\n",
      paths.size(), paths.size() == 1 ? "" : "s", total, total == 1 ? "" : "s",
      fresh.size(), total - fresh.size(), suppressed,
      strict ? " [strict]" : "");
  return fresh.empty() ? 0 : 1;
}
