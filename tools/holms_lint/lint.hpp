#pragma once
// holms_lint — in-tree determinism & contract static analyzer (DESIGN.md §5f).
//
// A preprocessor-aware token scanner over the HolMS sources enforcing the
// project invariants that runtime tests cannot see:
//
//   D-rules (determinism — the bitwise-reproducibility guarantee of §5c–§5e)
//     D001  banned randomness primitive (std engines / distributions /
//           rand / srand / random_device) outside the allowlisted RNG module
//     D002  wall-clock read (steady_clock::now, time(), ...) in library code
//     D003  range-for iteration over an unordered container in library code
//           (iteration order is implementation-defined -> result order isn't)
//     D004  mutable `static` at namespace scope (hidden cross-run state)
//     D005  blocking primitive (this_thread::sleep_for, std::mutex and
//           friends) in library code outside exec/ — the serve layer's
//           never-block discipline: sessions are state machines that yield
//           to the DES kernel, and only the exec worker pool may block
//
//   C-rules (contracts — machine-checkable API conventions)
//     C001  public Params/Options struct without a validate() member
//     C002  `throw std::...` instead of the typed holms exception hierarchy
//     C003  `using namespace` in a header
//     C004  header without `#pragma once`
//
//   H-rules (hygiene)
//     H001  std::cout / printf-family output in library code (route through
//           exec::metrics / trace hooks instead)
//
//   X-rules (lint hygiene)
//     X001  malformed suppression: unknown rule id or missing reason
//     X002  stale suppression: a well-formed HOLMS_LINT_ALLOW that no
//           finding matches any more (graph pass, see graph.hpp)
//
//   A-rules + D007 (whole-program, PR 9 — see graph.hpp)
//     A001  architecture-layering violation (include edge against the layer
//           DAG in tools/holms_lint/layers.json, or into another module's
//           non-public header)
//     A002  include cycle (SCC over the header include graph)
//     D007  interprocedural determinism escape (transitive reach of a
//           D001/D002/D005 primitive, flagged at the outermost frame)
//
// Suppression: `// HOLMS_LINT_ALLOW(rule-id): reason` on the offending line,
// or alone on the line directly above it.  `HOLMS_LINT_ALLOW_FILE(rule-id):
// reason` anywhere in a file suppresses the rule for the whole file (used by
// the allowlisted RNG module, src/sim/random.hpp).
//
// No libclang: the scanner tokenizes C++ (comments, string/char/raw-string
// literals, preprocessor lines) and the rules pattern-match token sequences.
// That trades soundness for zero dependencies; the golden-fixture suite in
// tests/test_lint.cpp pins one positive and one negative case per rule.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace holms::lint {

/// What a path is, for rule scoping.  Library code gets every rule; tests
/// and benches legitimately use clocks, ad-hoc randomness and stdout, so
/// only the header-wide C-rules apply there.
enum class FileKind {
  kLibrarySource,  // src/**/*.cpp
  kLibraryHeader,  // src/**/*.hpp
  kOtherSource,    // tests/ bench/ examples/ tools/ *.cpp
  kOtherHeader,    // tests/ bench/ examples/ tools/ *.hpp
};

/// Path-based classification used by the CLI (tests use explicit kinds).
FileKind classify_path(const std::string& path);

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = kPunct;
  std::string text;
  std::size_t line = 0;
};

/// One `#include "..."` directive (quoted form only — system includes carry
/// no architecture information).  Raw target text, as written.
struct IncludeDirective {
  std::string target;
  std::size_t line = 0;
};

struct Suppression {
  std::string rule;
  std::string reason;
  std::size_t comment_line = 0;  // where the comment sits
  std::size_t anchor_line = 0;   // line whose findings it suppresses
  bool file_level = false;
  bool malformed = false;        // unknown rule or empty reason -> X001
};

/// A lexed translation unit plus everything the rules need.
struct SourceFile {
  std::string path;
  FileKind kind = FileKind::kLibrarySource;
  std::vector<Token> tokens;
  std::vector<std::string> lines;  // raw source lines, 1-based via line-1
  std::vector<Suppression> suppressions;
  std::vector<IncludeDirective> includes;  // quoted includes, in file order
  bool has_pragma_once = false;

  bool is_header() const {
    return kind == FileKind::kLibraryHeader || kind == FileKind::kOtherHeader;
  }
  bool is_library() const {
    return kind == FileKind::kLibrarySource || kind == FileKind::kLibraryHeader;
  }
};

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  bool suppressed = false;     // matched a HOLMS_LINT_ALLOW
  std::string suppress_reason;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};
const std::vector<RuleInfo>& rule_catalogue();
bool is_known_rule(const std::string& id);

/// Tokenizes `content`; handles //, /* */, string/char/raw-string literals
/// and preprocessor logical lines (with \ continuations), and collects
/// HOLMS_LINT_ALLOW annotations.
SourceFile lex(std::string path, const std::string& content, FileKind kind);

/// Runs every applicable rule on a lexed file and applies its suppressions.
std::vector<Finding> run_rules(const SourceFile& f);

/// Convenience: read + lex + run_rules with path-based classification.
/// Returns false (and leaves `out` untouched) when the file can't be read.
bool lint_file(const std::string& path, std::vector<Finding>& out);

// ---- baseline -------------------------------------------------------------
//
// The baseline grandfathers pre-existing findings so CI fails only on
// regressions.  Keys are (rule, file, whitespace-normalized source line), so
// entries survive unrelated edits that shift line numbers; values are
// occurrence counts, so a key regresses only when new copies appear.

using Baseline = std::map<std::string, std::size_t>;

std::string baseline_key(const Finding& f, const std::string& source_line);
Baseline make_baseline(const std::vector<Finding>& findings,
                       const std::map<std::string, const SourceFile*>& files);
std::string baseline_to_json(const Baseline& b);
/// Parses the subset of JSON baseline_to_json emits; throws std::runtime_error
/// on malformed input.
Baseline parse_baseline_json(const std::string& text);

/// Partitions `findings` (non-suppressed only) into baselined vs new given
/// the per-key budget in `base`.  Marks nothing; returns the new ones.
std::vector<Finding> subtract_baseline(
    const std::vector<Finding>& findings,
    const std::map<std::string, const SourceFile*>& files, const Baseline& base);

/// Drops baseline keys whose file component is not among `existing_files`
/// (linted this run), so --write-baseline output never carries entries for
/// deleted or renamed files.  Returns the pruned baseline; appends the
/// dropped keys to `dropped` when non-null.  std::map keeps the survivors
/// canonically sorted.
Baseline prune_baseline(const Baseline& base,
                        const std::map<std::string, const SourceFile*>& files,
                        std::vector<std::string>* dropped = nullptr);

/// Analyzer cost counters surfaced in LINT_report.json (and from there in
/// bench/history.jsonl via check_thresholds.py --append-history).
struct ReportStats {
  std::size_t files = 0;
  double lint_ms = 0.0;   // lex + per-file rules
  double graph_ms = 0.0;  // whole-program index + graph rules
};

/// Machine-readable report (LINT_report.json).  `all` holds every finding
/// including the graph pack's; graph_rules_findings / stale_suppressions are
/// derived here so check_thresholds.py can gate them.
std::string report_to_json(const std::vector<Finding>& all,
                           const std::vector<Finding>& fresh, bool strict,
                           const ReportStats& stats = {});

}  // namespace holms::lint
