file(REMOVE_RECURSE
  "CMakeFiles/wireless_streaming.dir/wireless_streaming.cpp.o"
  "CMakeFiles/wireless_streaming.dir/wireless_streaming.cpp.o.d"
  "wireless_streaming"
  "wireless_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
