# Empty dependencies file for wireless_streaming.
# This may be replaced when dependencies are built.
