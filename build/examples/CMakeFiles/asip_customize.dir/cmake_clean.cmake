file(REMOVE_RECURSE
  "CMakeFiles/asip_customize.dir/asip_customize.cpp.o"
  "CMakeFiles/asip_customize.dir/asip_customize.cpp.o.d"
  "asip_customize"
  "asip_customize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asip_customize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
