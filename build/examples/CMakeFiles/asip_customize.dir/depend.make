# Empty dependencies file for asip_customize.
# This may be replaced when dependencies are built.
