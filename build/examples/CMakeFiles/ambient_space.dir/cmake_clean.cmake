file(REMOVE_RECURSE
  "CMakeFiles/ambient_space.dir/ambient_space.cpp.o"
  "CMakeFiles/ambient_space.dir/ambient_space.cpp.o.d"
  "ambient_space"
  "ambient_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambient_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
