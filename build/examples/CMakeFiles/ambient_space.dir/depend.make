# Empty dependencies file for ambient_space.
# This may be replaced when dependencies are built.
