# Empty dependencies file for manet_lifetime.
# This may be replaced when dependencies are built.
