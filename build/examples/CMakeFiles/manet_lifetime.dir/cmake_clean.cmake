file(REMOVE_RECURSE
  "CMakeFiles/manet_lifetime.dir/manet_lifetime.cpp.o"
  "CMakeFiles/manet_lifetime.dir/manet_lifetime.cpp.o.d"
  "manet_lifetime"
  "manet_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manet_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
